// Domain example: the paper's motivating scenario end to end.
//
// An Alpha-style execution core issues loads; their data words travel over
// the 6 mm memory read bus into double-sampling flip-flops at the memory
// unit (paper Fig. 1). This example runs the whole SPEC2000-substitute
// suite back to back under the closed-loop controller — at a PVT corner of
// your choice — and reports per-program energy, error and voltage numbers,
// i.e. a miniature Table 1 + Fig. 8.
//
//   $ ./examples/memory_read_bus --corner=typical --temp=100 --ir=0 --cycles=500000
#include <cstdio>
#include <iostream>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/kernels.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace razorbus;

  const CliFlags flags(argc, argv);
  tech::PvtCorner corner;
  corner.process = tech::process_corner_from_string(flags.get("corner", "typical"));
  corner.temp_c = flags.get_double("temp", 100.0);
  corner.ir_drop_fraction = flags.get_double("ir", 0.0);
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 500000));
  flags.reject_unused();

  core::DvsBusSystem system(interconnect::BusDesign::paper_bus());
  std::printf("Memory read bus at %s\n", corner.name().c_str());
  std::printf("  fixed-VS supply %4.0f mV | DVS floor %4.0f mV | worst delay %3.0f ps\n",
              to_mV(system.fixed_vs_supply(corner.process)),
              to_mV(system.dvs_floor(corner.process)),
              to_ps(system.nominal_worst_delay(corner)));

  std::vector<trace::Trace> traces;
  for (const auto& bench : cpu::spec2000_suite()) traces.push_back(bench.capture(cycles));

  core::DvsRunConfig cfg;
  cfg.record_series = true;
  const core::ConsecutiveRunReport report =
      core::run_consecutive(system, corner, traces, cfg);

  Table table({"Benchmark", "Gain (%)", "Avg err (%)", "Avg V (mV)", "Errors", "Cycles"});
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& r = report.per_trace[i];
    table.row()
        .add(traces[i].name)
        .add(100.0 * r.energy_gain(), 1)
        .add(100.0 * r.totals.error_rate(), 2)
        .add(to_mV(r.average_supply), 0)
        .add(static_cast<long long>(r.totals.errors))
        .add(static_cast<long long>(r.totals.cycles));
  }
  table.print(std::cout);

  // A coarse "strip chart" of the supply voltage across the whole run.
  std::printf("\nSupply voltage over time (each char = %zu windows):\n",
              std::max<std::size_t>(1, report.series.size() / 72));
  const std::size_t stride = std::max<std::size_t>(1, report.series.size() / 72);
  std::string strip;
  for (std::size_t i = 0; i < report.series.size(); i += stride) {
    const double v = report.series[i].supply;
    // Map 0.84..1.20 V to '0'..'9'.
    const int level =
        std::max(0, std::min(9, static_cast<int>((v - 0.84) / (1.20 - 0.84) * 9.99)));
    strip += static_cast<char>('0' + level);
  }
  std::printf("  1.2V=9 .. 0.84V=0 : %s\n", strip.c_str());
  return 0;
}

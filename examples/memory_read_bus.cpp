// Domain example: the paper's motivating scenario, scaled to a 64-wire
// memory bus.
//
// An Alpha-style execution core issues loads; pairs of consecutive 32-bit
// data words are packed into 64-bit flits and travel over the 6 mm memory
// read bus into double-sampling flip-flops at the memory unit (paper
// Fig. 1, at 2x the paper's width — the width-generic datapath makes this
// a config change, DESIGN.md §10). This example runs the whole
// SPEC2000-substitute suite back to back under the closed-loop controller
// — at a PVT corner of your choice — and reports per-program energy, error
// and voltage numbers, i.e. a miniature Table 1 + Fig. 8 on a 64-wire bus.
//
// At the default configuration the report is asserted against a golden
// summary, so any regression in the wide datapath fails the example run.
//
//   $ ./examples/memory_read_bus --corner=typical --temp=100 --ir=0 --cycles=500000
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/kernels.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

constexpr int kBusBits = 64;

struct Summary {
  std::uint64_t cycles = 0;
  std::uint64_t errors = 0;
  std::uint64_t shadow_failures = 0;
  double total_gain = 0.0;   // suite-wide energy gain vs nominal baseline
  double avg_supply = 0.0;   // cycle-weighted average across the suite (V)
};

// Golden summary of the default run (typical corner, 100C, no IR drop,
// 500k captured cycles per benchmark -> 250k 64-bit flits each). Counts
// are exact — the simulation is deterministic; the analog aggregates get
// a small tolerance so table re-characterization noise cannot flake it.
constexpr Summary kGolden = {2500000u, 114436u, 0u, 0.364788, 0.936904};

int check_against_golden(const Summary& s) {
  int failures = 0;
  const auto fail = [&failures](const char* what, double got, double want) {
    std::fprintf(stderr, "GOLDEN MISMATCH: %s = %.6g, expected %.6g\n", what, got, want);
    ++failures;
  };
  if (s.cycles != kGolden.cycles)
    fail("cycles", static_cast<double>(s.cycles), static_cast<double>(kGolden.cycles));
  if (s.errors != kGolden.errors)
    fail("errors", static_cast<double>(s.errors), static_cast<double>(kGolden.errors));
  if (s.shadow_failures != kGolden.shadow_failures)
    fail("shadow_failures", static_cast<double>(s.shadow_failures),
         static_cast<double>(kGolden.shadow_failures));
  if (std::abs(s.total_gain - kGolden.total_gain) > 0.005)
    fail("total_gain", s.total_gain, kGolden.total_gain);
  if (std::abs(s.avg_supply - kGolden.avg_supply) > 0.005)
    fail("avg_supply", s.avg_supply, kGolden.avg_supply);
  return failures;
}

int run(const razorbus::CliFlags& flags) {
  using namespace razorbus;

  tech::PvtCorner corner;
  corner.process = tech::process_corner_from_string(flags.get("corner", "typical"));
  corner.temp_c = flags.get_double("temp", 100.0);
  corner.ir_drop_fraction = flags.get_double("ir", 0.0);
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 500000));
  flags.reject_unused();
  // razorlint: allow(float-eq): detects the untouched default flag values —
  // exact constants parsed from defaults, never arithmetic results.
  const bool default_run = corner.temp_c == 100.0 && corner.ir_drop_fraction == 0.0 &&
                           corner.process == tech::ProcessCorner::typical &&
                           cycles == 500000;

  core::DvsBusSystem system(interconnect::BusDesign::wide_bus(kBusBits));
  std::printf("%d-wire memory read bus at %s\n", kBusBits, corner.name().c_str());
  std::printf("  fixed-VS supply %4.0f mV | DVS floor %4.0f mV | worst delay %3.0f ps\n",
              to_mV(system.fixed_vs_supply(corner.process)),
              to_mV(system.dvs_floor(corner.process)),
              to_ps(system.nominal_worst_delay(corner)));

  // Two consecutive 32-bit load words form one 64-bit flit.
  std::vector<trace::Trace> traces;
  for (const auto& bench : cpu::spec2000_suite())
    traces.push_back(trace::widen(bench.capture(cycles), kBusBits / 32));

  core::DvsRunConfig cfg;
  cfg.record_series = true;
  const core::ConsecutiveRunReport report =
      core::run_consecutive(system, corner, traces, cfg);

  Table table({"Benchmark", "Gain (%)", "Avg err (%)", "Avg V (mV)", "Errors", "Cycles"});
  Summary summary;
  double energy = 0.0;
  double baseline = 0.0;
  double supply_cycles = 0.0;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& r = report.per_trace[i];
    table.row()
        .add(traces[i].name)
        .add(100.0 * r.energy_gain(), 1)
        .add(100.0 * r.totals.error_rate(), 2)
        .add(to_mV(r.average_supply), 0)
        .add(static_cast<long long>(r.totals.errors))
        .add(static_cast<long long>(r.totals.cycles));
    summary.cycles += r.totals.cycles;
    summary.errors += r.totals.errors;
    summary.shadow_failures += r.totals.shadow_failures;
    energy += r.totals.total_energy();
    baseline += r.baseline_bus_energy;
    supply_cycles += r.average_supply * static_cast<double>(r.totals.cycles);
  }
  table.print(std::cout);
  summary.total_gain = baseline > 0.0 ? 1.0 - energy / baseline : 0.0;
  summary.avg_supply =
      summary.cycles ? supply_cycles / static_cast<double>(summary.cycles) : 0.0;
  std::printf("\nSuite: %.1f%% energy gain, %llu corrected errors, %llu silent "
              "corruptions, %4.0f mV average\n",
              100.0 * summary.total_gain,
              static_cast<unsigned long long>(summary.errors),
              static_cast<unsigned long long>(summary.shadow_failures),
              to_mV(summary.avg_supply));

  // A coarse "strip chart" of the supply voltage across the whole run.
  std::printf("\nSupply voltage over time (each char = %zu windows):\n",
              std::max<std::size_t>(1, report.series.size() / 72));
  const std::size_t stride = std::max<std::size_t>(1, report.series.size() / 72);
  std::string strip;
  for (std::size_t i = 0; i < report.series.size(); i += stride) {
    const double v = report.series[i].supply;
    // Map 0.84..1.20 V to '0'..'9'.
    const int level =
        std::max(0, std::min(9, static_cast<int>((v - 0.84) / (1.20 - 0.84) * 9.99)));
    strip += static_cast<char>('0' + level);
  }
  std::printf("  1.2V=9 .. 0.84V=0 : %s\n", strip.c_str());

  // Invariants hold for any configuration; the golden summary only for the
  // default one.
  if (summary.shadow_failures != 0) {
    std::fprintf(stderr, "FAIL: silent corruptions above the regulator floor\n");
    return 1;
  }
  if (default_run) {
    const int failures = check_against_golden(summary);
    if (failures != 0) return 1;
    std::printf("\n[golden summary check: OK]\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return razorbus::cli_main(argc, argv, run); }

// Domain example: interconnect architecture exploration (paper Section 6).
//
// Sweeps the Cc/Cg coupling ratio of the bus (holding the worst-case load
// and wire resistance constant, so the worst-case delay never changes) and
// reports how the typical-case delay, the shadow-safe voltage floor, and
// the achievable 2%-error-rate gain respond. This is the experiment behind
// the paper's claim that coupling-dominated wires — i.e. scaled technology
// nodes — favour error-tolerant DVS.
//
//   $ ./examples/interconnect_explorer --ratios=1.0,1.5,1.95,2.5
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

int run(const razorbus::CliFlags& flags) {
  using namespace razorbus;

  const std::string ratio_list = flags.get("ratios", "1.0,1.5,1.95,2.5");
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 150000));
  flags.reject_unused();

  std::vector<double> ratios;
  std::stringstream ss(ratio_list);
  for (std::string item; std::getline(ss, item, ',');) ratios.push_back(std::stod(item));

  // A mid-activity synthetic workload keeps the comparison apples-to-apples
  // across bus variants.
  trace::SyntheticConfig tcfg;
  tcfg.style = trace::SyntheticStyle::uniform;
  tcfg.cycles = cycles;
  tcfg.load_rate = 0.35;
  const trace::Trace workload = trace::generate_synthetic(tcfg, "uniform");

  const auto corner = tech::typical_corner();
  std::printf("Coupling-ratio sweep at %s, workload: %zu uniform cycles\n",
              corner.name().c_str(), cycles);

  Table table({"Cc/Cg multiplier", "Cc/Cg", "Worst delay (ps)", "Best delay (ps)",
               "Shadow floor (mV)", "Gain @2% (%)"});

  for (const double ratio : ratios) {
    std::fprintf(stderr, "[characterising ratio %.2f]\n", ratio);
    interconnect::BusDesign design = interconnect::BusDesign::modified_bus(ratio);
    const core::DvsBusSystem system(design);

    const double worst = system.nominal_worst_delay(corner);
    const int best_cls = lut::PatternClass::encode(
        lut::VictimActivity::rise, lut::NeighborActivity::rise,
        lut::NeighborActivity::rise);
    const double best = system.table().delay(best_cls, corner.process, corner.temp_c,
                                             design.node.vdd_nominal);
    const auto gains = core::gains_for_targets(
        core::static_voltage_sweep(system, corner, {workload}), {0.02});

    table.row()
        .add(ratio, 2)
        .add(system.design().parasitics.cc_to_cg_ratio(), 2)
        .add(to_ps(worst), 0)
        .add(to_ps(best), 0)
        .add(to_mV(system.shadow_floor(corner)), 0)
        .add(100.0 * gains[0].energy_gain, 1);
  }
  table.print(std::cout);

  std::printf(
      "\nReading the table: the worst-case delay is invariant by construction;\n"
      "higher coupling ratios speed up the typical case, deepening the voltage\n"
      "the bus can run at for the same error budget.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return razorbus::cli_main(argc, argv, run); }

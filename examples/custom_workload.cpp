// Domain example: bring your own workload.
//
// Shows the two ways to feed the bus: (1) write a program for the mini-ISA
// and capture its memory-read-bus trace, and (2) drive the cycle simulator
// directly with raw words. Useful as a template for evaluating the DVS bus
// on traffic that is not part of the built-in suite.
//
//   $ ./examples/custom_workload
#include <cstdio>

#include "bus/simulator.hpp"
#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/machine.hpp"
#include "cpu/program.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

namespace {

int run(const razorbus::CliFlags& flags) {
  using namespace razorbus;

  // Takes no flags: anything on the command line is a typo and fails
  // loudly rather than silently running the default configuration.
  flags.reject_unused();

  core::DvsBusSystem system(interconnect::BusDesign::paper_bus());
  const auto corner = tech::typical_corner();

  // --- (1) A custom mini-ISA program: strided array sum. ------------------
  // r1 = index, r2 = base, r7 = accumulator.
  cpu::ProgramBuilder builder("strided_sum");
  builder.label("loop")
      .andi(1, 1, 1023)
      .add(3, 2, 1)
      .load(4, 3, 0)     // data word -> memory read bus
      .add(7, 7, 4)
      .addi(1, 1, 17)    // stride 17 words
      .jmp("loop");
  cpu::Machine machine(builder.build());
  // Fill the array with a sawtooth (low switching between neighbours).
  for (std::uint32_t i = 0; i < 1024; ++i) machine.set_mem(i, (i * 3) & 0xFF);

  const trace::Trace trace = cpu::capture_bus_trace(machine, 400000, "strided_sum");
  const core::DvsRunReport report =
      core::run_closed_loop(system, corner, trace, core::DvsRunConfig{});
  std::printf("custom program '%s': %.1f%% energy gain, %.2f%% errors, avg %4.0f mV\n",
              trace.name.c_str(), 100.0 * report.energy_gain(),
              100.0 * report.error_rate(), to_mV(report.average_supply));

  // --- (2) Raw words straight into the cycle simulator. -------------------
  bus::BusSimulator sim = system.make_simulator(corner);
  sim.set_supply(0.96);  // a hand-picked aggressive operating point
  std::uint64_t errors = 0;
  const std::uint32_t frames[4] = {0x00FF00FFu, 0x0000FFFFu, 0x00FF00FFu, 0xFFFF0000u};
  for (int i = 0; i < 100000; ++i)
    if (sim.step(frames[i & 3]).error) ++errors;

  std::printf("raw frame loop at 960 mV: %.2f%% error rate, %.1f pJ/cycle bus energy\n",
              100.0 * static_cast<double>(errors) / 1e5,
              to_pJ(sim.totals().bus_energy / static_cast<double>(sim.totals().cycles)));
  std::printf("  (%llu unrecoverable captures — must be zero above the shadow floor "
              "of %4.0f mV)\n",
              static_cast<unsigned long long>(sim.totals().shadow_failures),
              to_mV(system.shadow_floor(corner)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return razorbus::cli_main(argc, argv, run); }

// Trace tooling walkthrough: capture, SimPoint reduction, file round-trip.
//
// The paper evaluates 10M-instruction SimPoint windows of SPEC2000. This
// example shows the equivalent workflow in this library: capture a long
// trace from a benchmark kernel, select representative windows, verify that
// an experiment on the reduced trace approximates the full result, and
// save/reload the trace from disk.
//
//   $ ./examples/trace_tools --benchmark=mgrid --cycles=800000
#include <cstdio>
#include <filesystem>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/kernels.hpp"
#include "cpu/simpoint.hpp"
#include "trace/io.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

namespace {

int run(const razorbus::CliFlags& flags) {
  using namespace razorbus;

  const std::string name = flags.get("benchmark", "mgrid");
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 800000));
  flags.reject_unused();

  // 1. Capture the full trace.
  const trace::Trace full = cpu::benchmark_by_name(name).capture(cycles);
  const trace::TraceStats stats = trace::compute_stats(full);
  std::printf("%s: %zu cycles, toggle rate %.3f, worst-pattern rate %.4f\n",
              full.name.c_str(), full.cycles(), stats.toggle_rate,
              stats.worst_pattern_rate);

  // 2. SimPoint selection: 10k-cycle windows, 5 clusters.
  cpu::SimPointConfig spc;
  spc.window_cycles = 10000;
  spc.clusters = 5;
  const cpu::SimPointResult points = cpu::select_simpoints(full, spc);
  std::printf("\nselected %zu simpoints out of %zu windows:\n", points.points.size(),
              points.total_windows);
  for (const auto& p : points.points)
    std::printf("  window %3zu (cycle %7zu)  weight %.2f\n", p.window_index,
                p.begin_cycle, p.weight);
  const trace::Trace reduced = cpu::materialize_simpoints(full, points, 10);

  // 3. Cross-check: a closed-loop DVS run on the reduced trace approximates
  //    the full-trace result at a fraction of the simulation cost.
  core::DvsBusSystem system(interconnect::BusDesign::paper_bus());
  const auto corner = tech::typical_corner();
  core::DvsRunConfig cfg;
  cfg.start_supply = system.dvs_floor(corner.process) + 0.1;  // skip the descent
  const auto on_full = core::run_closed_loop(system, corner, full, cfg);
  const auto on_reduced = core::run_closed_loop(system, corner, reduced, cfg);
  std::printf(
      "\nDVS gain: full trace %.1f%% (%zu cycles) vs simpoints %.1f%% (%zu cycles)\n",
              100.0 * on_full.energy_gain(), full.cycles(),
              100.0 * on_reduced.energy_gain(), reduced.cycles());

  // 4. File round-trip.
  const std::string path = "./" + full.name + ".rbtrace";
  trace::save_trace_file(full, path);
  const trace::Trace loaded = trace::load_trace_file(path);
  std::printf("\nsaved and reloaded %s (%zu cycles, %.1f MiB)\n", path.c_str(),
              loaded.cycles(),
              static_cast<double>(std::filesystem::file_size(path)) / (1024.0 * 1024.0));
  std::filesystem::remove(path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return razorbus::cli_main(argc, argv, run); }

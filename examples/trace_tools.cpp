// Trace tooling walkthrough: capture, SimPoint reduction, file round-trip,
// and the streaming pipeline.
//
// The paper evaluates 10M-instruction SimPoint windows of SPEC2000. This
// example shows the equivalent workflow in this library: capture a long
// trace from a benchmark kernel, select representative windows, verify that
// an experiment on the reduced trace approximates the full result, and
// save/reload the trace from disk.
//
//   $ ./examples/trace_tools --benchmark=mgrid --cycles=800000
//
// --stream switches to the streaming demonstration (DESIGN.md §12,
// docs/architecture.md): a closed-loop DVS run over a synthetic stream of
// --stream_cycles cycles (default 10^8 — materialized, that trace would be
// ~1.6 GB) executed through one --block-word buffer, with the block
// accounting printed at the end:
//
//   $ ./examples/trace_tools --stream --stream_cycles=100000000
#include <cstdio>
#include <filesystem>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/kernels.hpp"
#include "cpu/simpoint.hpp"
#include "trace/io.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

namespace {

// A 10^8-cycle closed-loop scenario at bounded memory: the trace is never
// materialized — the generator state (an Rng and the previous word) and
// one block buffer are all that exists, however many cycles stream.
int run_streaming_demo(const razorbus::CliFlags& flags) {
  using namespace razorbus;

  trace::SyntheticConfig cfg;
  cfg.style = trace::synthetic_style_from_string(flags.get("style", "uniform"));
  cfg.cycles = static_cast<std::size_t>(flags.get_int("stream_cycles", 100000000));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 24101));
  const auto block = static_cast<std::size_t>(
      flags.get_int("block", static_cast<std::int64_t>(trace::kDefaultBlockCycles)));
  flags.reject_unused();

  const auto source = trace::make_synthetic_source(cfg, trace::to_string(cfg.style));
  std::printf("streaming %zu cycles of '%s' traffic through a %zu-word buffer\n",
              cfg.cycles, source->name().c_str(), block);
  std::printf("  materialized, this trace would hold %.2f GiB of BusWords;\n",
              static_cast<double>(cfg.cycles) * sizeof(razorbus::BusWord) /
                  (1024.0 * 1024.0 * 1024.0));
  std::printf("  streamed, trace memory is %.2f MiB, independent of length\n\n",
              static_cast<double>(block) * sizeof(razorbus::BusWord) /
                  (1024.0 * 1024.0));

  core::DvsBusSystem system(interconnect::BusDesign::paper_bus());
  const auto corner = tech::typical_corner();
  core::DvsRunConfig run_cfg;
  run_cfg.start_supply = system.dvs_floor(corner.process) + 0.1;  // skip the descent

  core::StreamStats stats;
  const core::DvsRunReport report = core::run_closed_loop_streamed(
      system, corner, *source, run_cfg, core::StreamConfig{block}, &stats);

  std::printf("closed-loop DVS over the stream:\n");
  std::printf("  energy gain  %.1f%%  (error rate %.2f%%)\n",
              100.0 * report.energy_gain(), 100.0 * report.error_rate());
  std::printf("  avg supply   %.0f mV (floor %.0f mV)\n", to_mV(report.average_supply),
              to_mV(report.floor_supply));
  std::printf("block accounting (the BENCH_*.json stream_* metrics):\n");
  std::printf("  cycles streamed    %llu\n",
              static_cast<unsigned long long>(stats.cycles));
  std::printf("  blocks pulled      %llu\n",
              static_cast<unsigned long long>(stats.blocks));
  std::printf("  peak trace buffer  %zu words (%.2f MiB)\n", stats.peak_buffer_words,
              static_cast<double>(stats.peak_buffer_words) *
                  sizeof(razorbus::BusWord) / (1024.0 * 1024.0));
  if (stats.peak_buffer_words > block) {
    std::fprintf(stderr, "FAIL: trace buffer exceeded the configured block\n");
    return 1;
  }
  return 0;
}

int run(const razorbus::CliFlags& flags) {
  using namespace razorbus;

  if (flags.get_bool("stream", false)) return run_streaming_demo(flags);

  const std::string name = flags.get("benchmark", "mgrid");
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 800000));
  flags.reject_unused();

  // 1. Capture the full trace.
  const trace::Trace full = cpu::benchmark_by_name(name).capture(cycles);
  const trace::TraceStats stats = trace::compute_stats(full);
  std::printf("%s: %zu cycles, toggle rate %.3f, worst-pattern rate %.4f\n",
              full.name.c_str(), full.cycles(), stats.toggle_rate,
              stats.worst_pattern_rate);

  // 2. SimPoint selection: 10k-cycle windows, 5 clusters.
  cpu::SimPointConfig spc;
  spc.window_cycles = 10000;
  spc.clusters = 5;
  const cpu::SimPointResult points = cpu::select_simpoints(full, spc);
  std::printf("\nselected %zu simpoints out of %zu windows:\n", points.points.size(),
              points.total_windows);
  for (const auto& p : points.points)
    std::printf("  window %3zu (cycle %7zu)  weight %.2f\n", p.window_index,
                p.begin_cycle, p.weight);
  const trace::Trace reduced = cpu::materialize_simpoints(full, points, 10);

  // 3. Cross-check: a closed-loop DVS run on the reduced trace approximates
  //    the full-trace result at a fraction of the simulation cost.
  core::DvsBusSystem system(interconnect::BusDesign::paper_bus());
  const auto corner = tech::typical_corner();
  core::DvsRunConfig cfg;
  cfg.start_supply = system.dvs_floor(corner.process) + 0.1;  // skip the descent
  const auto on_full = core::run_closed_loop(system, corner, full, cfg);
  const auto on_reduced = core::run_closed_loop(system, corner, reduced, cfg);
  std::printf(
      "\nDVS gain: full trace %.1f%% (%zu cycles) vs simpoints %.1f%% (%zu cycles)\n",
              100.0 * on_full.energy_gain(), full.cycles(),
              100.0 * on_reduced.energy_gain(), reduced.cycles());

  // 4. File round-trip.
  const std::string path = "./" + full.name + ".rbtrace";
  trace::save_trace_file(full, path);
  const trace::Trace loaded = trace::load_trace_file(path);
  std::printf("\nsaved and reloaded %s (%zu cycles, %.1f MiB)\n", path.c_str(),
              loaded.cycles(),
              static_cast<double>(std::filesystem::file_size(path)) / (1024.0 * 1024.0));
  std::filesystem::remove(path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return razorbus::cli_main(argc, argv, run); }

// Quickstart: build the paper's bus, run closed-loop DVS on one benchmark,
// and print the headline numbers.
//
//   $ ./examples/quickstart
//
// The first run characterises the bus with transient circuit simulations
// (~half a minute); results are cached on disk for subsequent runs.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/kernels.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

namespace {

int run(const razorbus::CliFlags& flags) {
  using namespace razorbus;

  // Takes no flags: anything on the command line is a typo and fails
  // loudly rather than silently running the default configuration.
  flags.reject_unused();

  // 1. The paper's bus: 32 bits, 6 mm, 0.8 um pitch, shields every 4 wires,
  //    repeaters every 1.5 mm, 1.5 GHz. The constructor sizes the repeaters
  //    for 600 ps worst-case delay and characterises delay/energy tables.
  core::DvsBusSystem system(interconnect::BusDesign::paper_bus());
  std::printf("Bus ready: repeater size %.0fx unit inverter, worst-case delay %.0f ps\n",
              system.design().repeater_size,
              to_ps(system.nominal_worst_delay(tech::worst_case_corner())));

  // 2. A workload: the crafty (chess) kernel's memory-read-bus trace.
  const trace::Trace trace = cpu::benchmark_by_name("crafty").capture(1000000);

  // 3. Closed-loop DVS at the typical corner: double-sampling flops detect
  //    and correct timing errors while the controller holds the error rate
  //    in the [1%, 2%] band.
  const auto corner = tech::typical_corner();
  const core::DvsRunReport dvs =
      core::run_closed_loop(system, corner, trace, core::DvsRunConfig{});

  // 4. Compare with the conventional alternative (fixed voltage scaling).
  const core::DvsRunReport fixed = core::run_fixed_vs(system, corner, trace);

  std::printf("\nWorkload: %s, %zu cycles at %s\n", trace.name.c_str(), trace.cycles(),
              corner.name().c_str());
  std::printf("  fixed VS   : %5.1f%% energy gain at %4.0f mV (error-free)\n",
              100.0 * fixed.energy_gain(), to_mV(fixed.average_supply));
  std::printf("  razor DVS  : %5.1f%% energy gain at %4.0f mV average "
              "(%.2f%% errors corrected, %llu unrecoverable)\n",
              100.0 * dvs.energy_gain(), to_mV(dvs.average_supply),
              100.0 * dvs.error_rate(),
              static_cast<unsigned long long>(dvs.totals.shadow_failures));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return razorbus::cli_main(argc, argv, run); }

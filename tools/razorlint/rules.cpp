// Rule implementations for razorlint (docs/static-analysis.md).
//
// Each rule is a deterministic scan over the token stream from lexer.cpp.
// Without type information every detector is a heuristic; the comments below
// state exactly what fires and what is missed, and docs/static-analysis.md
// repeats it for users. The bias is always "miss, don't false-positive":
// a silent miss costs nothing (the runtime parity suites still stand behind
// the contract), a false positive trains people to scatter allow() comments.
#include "razorlint.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace razorlint {

namespace {

const std::set<std::string>& clock_idents() {
  static const std::set<std::string> kSet = {
      "steady_clock",     "system_clock", "high_resolution_clock",
      "gettimeofday",     "clock_gettime", "timespec_get", "utc_clock",
      "tai_clock",        "gps_clock",     "file_clock",
  };
  return kSet;
}

const std::set<std::string>& random_idents() {
  static const std::set<std::string> kSet = {
      "random_device",       "mt19937",       "mt19937_64",
      "minstd_rand",         "minstd_rand0",  "default_random_engine",
      "knuth_b",             "ranlux24",      "ranlux48",
      "ranlux24_base",       "ranlux48_base", "random_shuffle",
      "uniform_int_distribution",  "uniform_real_distribution",
      "normal_distribution",       "bernoulli_distribution",
      "poisson_distribution",      "exponential_distribution",
  };
  return kSet;
}

const std::set<std::string>& unordered_idents() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
  };
  return kSet;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

struct Ctx {
  const LexedFile& file;
  const std::string& path;
  std::vector<Diagnostic> raw;  // pre-suppression

  void diag(int line, const char* rule, std::string message) {
    raw.push_back(Diagnostic{path, line, rule, std::move(message)});
  }
};

// ----------------------------------------------------------------- float-eq
//
// Fires on `==` / `!=` whose adjacent operand is a floating literal
// (optionally behind unary +/-). Blind spot: `a == b` where both sides are
// floating *variables* needs type knowledge this tool does not have; the
// shared tolerance helpers (util/units.hpp kSupplyToleranceVolts and
// friends) remain the reviewed idiom for those.
void rule_float_eq(Ctx& ctx) {
  const auto& t = ctx.file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::punct || (t[i].text != "==" && t[i].text != "!="))
      continue;
    bool floating = i > 0 && t[i - 1].kind == TokKind::number && t[i - 1].is_float;
    std::size_t r = i + 1;
    if (r < t.size() && t[r].kind == TokKind::punct &&
        (t[r].text == "-" || t[r].text == "+"))
      ++r;
    floating = floating ||
               (r < t.size() && t[r].kind == TokKind::number && t[r].is_float);
    if (floating)
      ctx.diag(t[i].line, "float-eq",
               "raw floating-point " + t[i].text +
                   " comparison; use the shared tolerance helpers "
                   "(util/units.hpp) or justify the exact-IEEE fast path");
  }
}

// ------------------------------------------------------------- no-wallclock
//
// Wall-clock reads make results depend on when and how fast the host runs.
// Fires on the std::chrono clock type names (which also catches
// `using clock = std::chrono::steady_clock` aliases at the root), the POSIX
// clock calls, and bare or std-qualified `time(` / `clock(` calls. Member
// calls `x.time()` / `x->clock()` are our own accessors, not wall clocks.
void rule_no_wallclock(Ctx& ctx) {
  for (const std::string& allowed : wallclock_whitelist())
    if (ctx.path == allowed) return;
  const auto& t = ctx.file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier) continue;
    const std::string& id = t[i].text;
    if (clock_idents().count(id)) {
      ctx.diag(t[i].line, "no-wallclock",
               "wall-clock source '" + id +
                   "' outside the bench timing whitelist; simulation results "
                   "must not depend on host time");
      continue;
    }
    if ((id == "time" || id == "clock") && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::punct && t[i + 1].text == "(") {
      const bool member = i > 0 && t[i - 1].kind == TokKind::punct &&
                          (t[i - 1].text == "." || t[i - 1].text == "->");
      // `BankCycleResult clock(...)` declares a method of that name — the
      // preceding identifier is its return type, not a call context.
      const bool declaration = i > 0 && t[i - 1].kind == TokKind::identifier &&
                               t[i - 1].text != "return";
      const bool std_qualified = i >= 2 && t[i - 1].text == "::" &&
                                 t[i - 2].kind == TokKind::identifier &&
                                 t[i - 2].text == "std";
      const bool qualified_other =
          i > 0 && t[i - 1].text == "::" && !std_qualified;
      if (!member && !declaration && !qualified_other)
        ctx.diag(t[i].line, "no-wallclock",
                 "call to '" + id + "()' reads the host clock");
    }
  }
}

// ----------------------------------------------------------- no-raw-random
//
// Every random draw must come from the util Rng (fixed xoshiro256**, pinned
// draw order, portable across standard libraries). std:: engines and
// std::random_device are not portable and not replayable, and C rand() is
// process-global mutable state on top.
void rule_no_raw_random(Ctx& ctx) {
  const auto& t = ctx.file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier) continue;
    const std::string& id = t[i].text;
    if (random_idents().count(id)) {
      ctx.diag(t[i].line, "no-raw-random",
               "raw randomness source '" + id +
                   "'; draw from the seeded util Rng (src/util/rng.hpp) so "
                   "goldens stay pinned");
      continue;
    }
    if ((id == "rand" || id == "srand") && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::punct && t[i + 1].text == "(") {
      const bool member = i > 0 && t[i - 1].kind == TokKind::punct &&
                          (t[i - 1].text == "." || t[i - 1].text == "->");
      const bool declaration = i > 0 && t[i - 1].kind == TokKind::identifier &&
                               t[i - 1].text != "return";
      if (!member && !declaration)
        ctx.diag(t[i].line, "no-raw-random",
                 "call to '" + id + "()' uses the C library RNG");
    }
  }
}

// ---------------------------------------------------- no-unordered-iteration
//
// Iteration order of unordered containers is implementation-defined, so any
// range-for over one feeds hash-order into downstream state — the classic
// source of "same binary, different report". Fires when the range expression
// of a range-for either names an unordered container type directly or names
// a variable this file declared with an unordered type. Blind spot:
// unordered containers passed across file boundaries.
void rule_no_unordered_iteration(Ctx& ctx) {
  const auto& t = ctx.file.tokens;

  // Pass 1: variables declared with an unordered type in this file. After
  // `unordered_map<...>` the next identifier at angle-depth zero is taken as
  // the declared name (covers locals, members, and parameters).
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier || !unordered_idents().count(t[i].text))
      continue;
    std::size_t j = i + 1;
    int angle = 0;
    for (; j < t.size(); ++j) {
      if (t[j].kind == TokKind::punct) {
        if (t[j].text == "<") ++angle;
        else if (t[j].text == ">") --angle;
        else if (t[j].text == ">>") angle -= 2;
        else if (angle == 0 && t[j].text != "&" && t[j].text != "*" &&
                 t[j].text != "::")
          break;
      } else if (angle == 0 && t[j].kind == TokKind::identifier) {
        unordered_vars.insert(t[j].text);
        break;
      }
      if (angle < 0) break;
    }
  }

  // Pass 2: range-fors. Find `for (` ... `:` at paren depth 1, then scan the
  // range expression up to the closing paren.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::identifier || t[i].text != "for") continue;
    if (t[i + 1].kind != TokKind::punct || t[i + 1].text != "(") continue;
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < t.size() && close == 0; ++j) {
      if (t[j].kind != TokKind::punct) continue;
      if (t[j].text == "(") ++depth;
      else if (t[j].text == ")") {
        if (--depth == 0) close = j;
      } else if (t[j].text == ":" && depth == 1 && colon == 0) {
        colon = j;
      } else if (t[j].text == ";" && depth == 1) {
        break;  // classic three-clause for
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind != TokKind::identifier) continue;
      if (unordered_idents().count(t[j].text) || unordered_vars.count(t[j].text)) {
        ctx.diag(t[i].line, "no-unordered-iteration",
                 "range-for over unordered container '" + t[j].text +
                     "'; iteration order is hash-order — use an ordered "
                     "container or sort first");
        break;
      }
    }
  }
}

// -------------------------------------------------------- no-mutable-static
//
// Shared mutable statics are cross-run, cross-thread state: they break the
// "every shard owns its state" executor contract (DESIGN.md §9) and they are
// exactly the argv-lifetime class of bug perf_microbench shipped once.
// Applies to src/ (library code) only.
//
// Scope classification is token-heuristic: each `{` is classified as code
// (function/control body), class, namespace or braced-init by looking at
// what precedes it. Fires on (a) block-scope `static` / `thread_local`
// declarations and class-scope `static` data members without
// const/constexpr, and (b) namespace-scope variable definitions (named or
// anonymous namespace — with or without the `static` keyword) without
// const/constexpr. Function declarations are recognised by a `(` at
// angle-depth zero in the declaration head and skipped.
enum class Scope { namespace_, class_, code, init };

Scope classify_brace(const std::vector<Token>& t, std::size_t i) {
  // Walk back over type-ish tokens; reaching `)` means a parameter list or
  // control clause — a code body either way.
  std::size_t j = i;
  while (j > 0) {
    --j;
    const Token& p = t[j];
    if (p.kind == TokKind::identifier) {
      if (p.text == "try" || p.text == "do" || p.text == "else") return Scope::code;
      if (p.text == "namespace") return Scope::namespace_;
      continue;  // name, type, const, noexcept, override, final, ...
    }
    if (p.kind == TokKind::punct) {
      if (p.text == ")" || p.text == "]") return Scope::code;
      if (p.text == "::" || p.text == "<" || p.text == ">" || p.text == "*" ||
          p.text == "&" || p.text == "->" || p.text == ":" || p.text == ",")
        continue;  // base clauses, template args, trailing return types
      if (p.text == "=" || p.text == "(" || p.text == "{" || p.text == "[")
        return Scope::init;
      if (p.text == ";" || p.text == "}") break;
      break;
    }
    if (p.kind == TokKind::number || p.kind == TokKind::string) continue;
    break;
  }
  // Statement fragment between the previous ;/{/} and the brace: class-ish
  // keywords win, otherwise assume a braced initializer (misses flag nothing).
  std::size_t begin = i;
  while (begin > 0) {
    const Token& p = t[begin - 1];
    if (p.kind == TokKind::punct && (p.text == ";" || p.text == "{" || p.text == "}"))
      break;
    --begin;
  }
  for (std::size_t k = begin; k < i; ++k)
    if (t[k].kind == TokKind::identifier &&
        (t[k].text == "class" || t[k].text == "struct" || t[k].text == "union" ||
         t[k].text == "enum"))
      return Scope::class_;
  return Scope::init;
}

// Scans a declaration head starting at `decl` (index of the first token of
// the declaration) up to the first `=`, initializer `{`, or `;` at
// angle-depth zero. Reports whether the head carries const/constexpr and
// whether it declares a function (identifier followed by `(`).
struct DeclHead {
  bool is_const = false;
  bool is_function = false;
  bool has_name = false;
  int line = 0;
};

DeclHead scan_decl_head(const std::vector<Token>& t, std::size_t decl) {
  DeclHead head;
  head.line = t[decl].line;
  int angle = 0;
  for (std::size_t j = decl; j < t.size(); ++j) {
    const Token& tok = t[j];
    if (tok.kind == TokKind::identifier) {
      if (tok.text == "const" || tok.text == "constexpr" || tok.text == "constinit")
        head.is_const = true;
      else if (tok.text == "operator" || tok.text == "namespace") {
        // Operator overloads are functions; `inline namespace x {` opens a
        // scope. Neither declares a mutable variable.
        head.is_function = true;
        return head;
      } else if (angle == 0)
        head.has_name = true;
      continue;
    }
    if (tok.kind != TokKind::punct) continue;
    if (tok.text == "<") ++angle;
    else if (tok.text == ">") angle = std::max(0, angle - 1);
    else if (tok.text == ">>") angle = std::max(0, angle - 2);
    else if (angle > 0) continue;
    else if (tok.text == "(") {
      // `(` directly after an identifier at angle-depth zero: a function
      // declarator (or a most-vexing-parse init, which we accept missing).
      head.is_function = j > 0 && t[j - 1].kind == TokKind::identifier;
      return head;
    } else if (tok.text == "=" || tok.text == "{" || tok.text == ";") {
      return head;
    }
  }
  return head;
}

void rule_no_mutable_static(Ctx& ctx) {
  if (!starts_with(ctx.path, "src/")) return;
  const auto& t = ctx.file.tokens;

  std::vector<Scope> stack = {Scope::namespace_};  // file scope
  bool statement_start = true;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::punct) {
      if (tok.text == "{") {
        const Scope kind = classify_brace(t, i);
        stack.push_back(kind);
        // A braced initializer sits mid-expression: `Cfg c = {},` in a
        // parameter list must not make the next parameter look like a fresh
        // namespace-scope statement.
        statement_start = kind != Scope::init;
      } else if (tok.text == "}") {
        Scope popped = Scope::init;
        if (stack.size() > 1) {
          popped = stack.back();
          stack.pop_back();
        }
        statement_start = popped != Scope::init;
      } else if (tok.text == ";") {
        statement_start = true;
      }
      continue;
    }

    const Scope scope = stack.back();
    const bool at_start = statement_start;
    statement_start = false;

    if (tok.kind != TokKind::identifier) continue;

    // (a) explicit static / thread_local in code or class scope.
    if ((tok.text == "static" || tok.text == "thread_local") &&
        (scope == Scope::code || scope == Scope::class_)) {
      const DeclHead head = scan_decl_head(t, i + 1);
      if (!head.is_const && !head.is_function && head.has_name)
        ctx.diag(tok.line, "no-mutable-static",
                 std::string(tok.text == "static" ? "function-local or member"
                                                  : "thread_local") +
                     " mutable static in library code; shard-owned state or a "
                     "justified allow() is required (DESIGN.md §9)");
      // Skip past the head so its tokens are not re-examined as a statement.
      continue;
    }

    // (b) namespace-scope variable definitions, `static` keyword or not.
    if (scope == Scope::namespace_ && at_start) {
      static const std::set<std::string> kSkip = {
          "using",   "typedef", "template", "static_assert", "friend",
          "class",   "struct",  "union",    "enum",          "namespace",
          "extern",  "public",  "private",  "protected",     "return",
      };
      if (kSkip.count(tok.text)) continue;
      const DeclHead head = scan_decl_head(t, i);
      if (!head.is_const && !head.is_function && head.has_name)
        ctx.diag(tok.line, "no-mutable-static",
                 "namespace-scope mutable variable in library code; make it "
                 "const, move it behind an owner, or justify with allow()");
    }
  }
}

// ---------------------------------------------------------------- layer-dag
//
// The docs/architecture.md layer map as an enforced DAG: a src/ file may
// quote-include only its own layer and the layers listed for it in
// layer_dag() (layers.cpp). bench/, tests/, examples/ and tools/ sit above
// the library and may include anything.
void rule_layer_dag(Ctx& ctx) {
  if (!starts_with(ctx.path, "src/")) return;
  const std::string rel = ctx.path.substr(4);
  const std::size_t slash = rel.find('/');
  if (slash == std::string::npos) return;
  const std::string own = rel.substr(0, slash);

  const auto& dag = layer_dag();
  const auto self = std::find_if(dag.begin(), dag.end(),
                                 [&](const auto& e) { return e.first == own; });
  for (const Include& inc : ctx.file.includes) {
    if (!inc.quoted) continue;  // system includes are not layer edges
    const std::size_t inc_slash = inc.path.find('/');
    if (inc_slash == std::string::npos) {
      ctx.diag(inc.line, "layer-dag",
               "quoted include \"" + inc.path +
                   "\" has no layer prefix; src/ includes must be "
                   "layer-qualified (e.g. \"util/rng.hpp\")");
      continue;
    }
    const std::string target = inc.path.substr(0, inc_slash);
    if (target == own) continue;
    const bool known_layer =
        std::any_of(dag.begin(), dag.end(),
                    [&](const auto& e) { return e.first == target; });
    const bool allowed =
        self != dag.end() &&
        std::find(self->second.begin(), self->second.end(), target) !=
            self->second.end();
    if (!known_layer)
      ctx.diag(inc.line, "layer-dag",
               "include \"" + inc.path + "\" targets '" + target +
                   "', which is not a src/ layer — library code must not "
                   "reach outside src/");
    else if (!allowed)
      ctx.diag(inc.line, "layer-dag",
               "layer '" + own + "' may not include layer '" + target +
                   "' (docs/architecture.md layer map; edges point strictly "
                   "downward)");
  }
}

// ------------------------------------------------------------- suppressions

// Applies allow() comments: a diagnostic is suppressed by an allow naming
// its rule on the same line or the line directly above. Malformed allows
// (no justification, unknown rule) are diagnostics themselves, under the
// reserved rule name "suppression" — which cannot be suppressed.
std::vector<Diagnostic> apply_suppressions(const Ctx& ctx) {
  // An allow() covers its own line and the next line that carries any code
  // token — so a multi-line justification comment still reaches the code
  // directly below it.
  std::set<int> token_lines;
  for (const Token& t : ctx.file.tokens) token_lines.insert(t.line);
  const auto reach = [&](int line) {
    const auto it = token_lines.upper_bound(line);
    return it == token_lines.end() ? line : *it;
  };

  std::map<int, std::set<std::string>> allowed_at;
  std::vector<Diagnostic> out;
  const auto& names = rule_names();
  for (const Suppression& s : ctx.file.suppressions) {
    if (s.rules.empty() || s.justification.empty()) {
      out.push_back(Diagnostic{ctx.path, s.line, "suppression",
                               "allow() requires a rule list and a written "
                               "justification: // razorlint: "
                               "allow(<rule>): <why this is safe>"});
      continue;
    }
    for (const std::string& r : s.rules) {
      if (std::find(names.begin(), names.end(), r) == names.end()) {
        out.push_back(Diagnostic{ctx.path, s.line, "suppression",
                                 "allow() names unknown rule '" + r + "'"});
        continue;
      }
      allowed_at[s.line].insert(r);
      allowed_at[reach(s.line)].insert(r);
    }
  }
  for (const Diagnostic& d : ctx.raw) {
    const auto it = allowed_at.find(d.line);
    if (it != allowed_at.end() && it->second.count(d.rule)) continue;
    out.push_back(d);
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "float-eq",          "no-wallclock",      "no-raw-random",
      "no-unordered-iteration", "no-mutable-static", "layer-dag",
  };
  return kNames;
}

const std::vector<std::string>& wallclock_whitelist() {
  static const std::vector<std::string> kPaths = {
      "bench/bench_common.cpp",       // the shared bench runner's wall timer
      "bench/scenarios/engine.cpp",   // engine cycles/sec measurement
      "bench/campaign.cpp",           // campaign wall-clock accounting
  };
  return kPaths;
}

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

std::vector<Diagnostic> lint_file(const LexedFile& file,
                                  const std::string& virtual_path) {
  Ctx ctx{file, virtual_path, {}};
  rule_float_eq(ctx);
  rule_no_wallclock(ctx);
  rule_no_raw_random(ctx);
  rule_no_unordered_iteration(ctx);
  rule_no_mutable_static(ctx);
  rule_layer_dag(ctx);
  return apply_suppressions(ctx);
}

std::vector<Diagnostic> lint_path(const std::string& fs_path,
                                  const std::string& virtual_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) {
    return {Diagnostic{virtual_path, 0, "io", "cannot read " + fs_path}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_file(lex(buf.str()), virtual_path);
}

}  // namespace razorlint

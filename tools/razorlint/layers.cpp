// The src/ layer DAG (docs/architecture.md "Layer map"), as data.
//
// razorlint enforces these edges on every quoted #include in src/: a layer
// may include itself and the layers listed here, nothing else. The table is
// the single source of truth — docs/architecture.md describes it, the
// layer-dag rule enforces it, and layer_dag_cycle() proves it stays a DAG
// (tests/lint_test.cpp runs that proof).
#include "razorlint.hpp"

#include <functional>
#include <map>

namespace razorlint {

const std::vector<std::pair<std::string, std::vector<std::string>>>& layer_dag() {
  static const std::vector<std::pair<std::string, std::vector<std::string>>> kDag = {
      // multi-bus shared-supply systems — composes the drivers' machinery
      {"sys", {"bus", "core", "drift", "dvs", "tech", "trace", "util"}},
      // campaign service (queue/cache/scheduler) — sits above the drivers
      {"svc", {"core", "bus", "cpu", "dvs", "gatesim", "interconnect", "lut",
               "razor", "spice", "tech", "trace", "util"}},
      // experiment drivers — may see the whole library
      {"core", {"bus", "cpu", "dvs", "gatesim", "interconnect", "lut", "razor",
                "spice", "tech", "trace", "util"}},
      // control loop — engine and below, plus the trace types it consumes
      {"dvs", {"bus", "interconnect", "lut", "razor", "tech", "trace", "util"}},
      // cycle engine
      {"bus", {"interconnect", "lut", "razor", "tech", "trace", "util"}},
      // receivers
      {"razor", {"lut", "tech", "util"}},
      // characterization
      {"lut", {"interconnect", "spice", "tech", "util"}},
      // gate-level reference sim (standalone circuits-adjacent layer)
      {"gatesim", {"tech", "util"}},
      // lifetime drift schedules (pure corner math, no engine dependency)
      {"drift", {"tech", "util"}},
      // circuits
      {"interconnect", {"spice", "tech", "util"}},
      {"spice", {"tech", "util"}},
      {"tech", {"util"}},
      // workloads
      {"cpu", {"trace", "util"}},
      {"trace", {"util"}},
      // support — the floor: may never include upward
      {"util", {}},
  };
  return kDag;
}

std::string layer_dag_cycle() {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [layer, deps] : layer_dag()) adj[layer] = deps;

  // Iterative DFS with colors; returns the first cycle found (deterministic:
  // layers and edge lists are iterated in table order).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::string cycle;
  std::function<bool(const std::string&, std::vector<std::string>&)> visit =
      [&](const std::string& node, std::vector<std::string>& path) -> bool {
    color[node] = 1;
    path.push_back(node);
    for (const std::string& next : adj[node]) {
      if (!adj.count(next)) continue;  // edges to unknown layers are rule errors
      if (color[next] == 1) {
        cycle = next;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          cycle += " <- " + *it;
          if (*it == next) break;
        }
        return true;
      }
      if (color[next] == 0 && visit(next, path)) return true;
    }
    path.pop_back();
    color[node] = 2;
    return false;
  };
  for (const auto& [layer, deps] : layer_dag()) {
    (void)deps;
    std::vector<std::string> path;
    if (color[layer] == 0 && visit(layer, path)) return cycle;
  }
  return "";
}

}  // namespace razorlint

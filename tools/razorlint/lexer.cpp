// Tokenizer for razorlint (docs/static-analysis.md).
//
// A real C++ lexer minus everything the rules don't need: comments and
// literal *contents* vanish (so a forbidden identifier inside a string or a
// commented-out line never fires), line numbers survive, and two comment
// shapes get harvested instead of dropped — `// razorlint: allow(...)`
// suppressions and `#include` directives.
#include "razorlint.hpp"

#include <cctype>

namespace razorlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the rules care about are matched longest-first
// so `==` never tokenizes as two `=`. Everything else falls through as a
// single character, which is good enough for pattern scanning.
const char* kPuncts[] = {"<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=",
                         ">=",  "&&",  "||",  "<<",  ">>", "+=", "-=", "*=", "/=",
                         "%=",  "&=",  "|=",  "^=",  "++", "--", ".*"};

// Parses `razorlint: allow(rule[,rule...]): justification` out of a comment
// body. Returns false if the comment is not a razorlint directive at all.
bool parse_allow(const std::string& body, int line, Suppression& out) {
  std::size_t i = body.find("razorlint:");
  if (i == std::string::npos) return false;
  i += 10;
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
  if (body.compare(i, 5, "allow") != 0) return false;
  i += 5;
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
  if (i >= body.size() || body[i] != '(') return false;
  ++i;
  out.line = line;
  std::string rule;
  for (; i < body.size() && body[i] != ')'; ++i) {
    const char c = body[i];
    if (c == ',') {
      if (!rule.empty()) out.rules.push_back(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule += c;
    }
  }
  if (!rule.empty()) out.rules.push_back(rule);
  // Rule names are kebab-case. A "rule" containing anything else — `<rule>`,
  // `rule[,rule...]` — is documentation *about* the syntax (razorlint's own
  // sources and docs quote it), not a directive: ignore the comment.
  for (const std::string& r : out.rules)
    for (const char c : r)
      if (!(std::islower(static_cast<unsigned char>(c)) ||
            std::isdigit(static_cast<unsigned char>(c)) || c == '-'))
        return false;
  if (i < body.size()) ++i;  // ')'
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
  if (i < body.size() && body[i] == ':') {
    ++i;
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    out.justification = body.substr(i);
    while (!out.justification.empty() &&
           std::isspace(static_cast<unsigned char>(out.justification.back())))
      out.justification.pop_back();
  }
  return true;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexedFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && line_start_) {
        directive();
        continue;
      }
      line_start_ = false;
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        block_comment();
        continue;
      }
      if (c == '"' || c == '\'') {
        // A raw string looks like R"delim( ... )delim"; detect the R/LR/u8R…
        // prefix by peeking at the identifier just consumed? Simpler: the
        // prefix was lexed as an identifier token ending in R — patch here.
        if (c == '"' && !out_.tokens.empty() &&
            out_.tokens.back().kind == TokKind::identifier &&
            out_.tokens.back().line == line_ && raw_prefix(out_.tokens.back().text)) {
          out_.tokens.pop_back();
          raw_string();
        } else {
          quoted(c);
        }
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])))) {
        number();
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  static bool raw_prefix(const std::string& t) {
    return t == "R" || t == "LR" || t == "uR" || t == "UR" || t == "u8R";
  }

  void emit(TokKind kind, std::string text, bool is_float = false) {
    out_.tokens.push_back(Token{kind, std::move(text), line_, is_float});
  }

  // #include is harvested; every other directive is skipped through its
  // line-continuations. Blind spot (documented): tokens inside macro bodies
  // are not rule-checked.
  void directive() {
    const int line = line_;
    std::size_t i = pos_ + 1;
    while (i < src_.size() && (src_[i] == ' ' || src_[i] == '\t')) ++i;
    if (src_.compare(i, 7, "include") == 0) {
      i += 7;
      while (i < src_.size() && (src_[i] == ' ' || src_[i] == '\t')) ++i;
      if (i < src_.size() && (src_[i] == '"' || src_[i] == '<')) {
        const char close = src_[i] == '"' ? '"' : '>';
        const bool is_quoted = src_[i] == '"';
        const std::size_t start = ++i;
        while (i < src_.size() && src_[i] != close && src_[i] != '\n') ++i;
        out_.includes.push_back(
            Include{line, src_.substr(start, i - start), is_quoted});
      }
    }
    skip_directive_tail();
  }

  void skip_directive_tail() {
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      ++pos_;
    }
  }

  void line_comment() {
    const int line = line_;
    const std::size_t start = pos_ + 2;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    Suppression s;
    if (parse_allow(src_.substr(start, pos_ - start), line, s))
      out_.suppressions.push_back(std::move(s));
  }

  void block_comment() {
    const int line = line_;
    const std::size_t start = pos_ + 2;
    pos_ += 2;
    while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    const std::size_t end = pos_ < src_.size() ? pos_ : src_.size();
    pos_ = end + 2 <= src_.size() ? end + 2 : src_.size();
    Suppression s;
    if (parse_allow(src_.substr(start, end - start), line, s))
      out_.suppressions.push_back(std::move(s));
  }

  void quoted(char close) {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != close) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      if (src_[pos_] == '\n') ++line_;  // unterminated literal; stay sane
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
    emit(TokKind::string, "");
  }

  void raw_string() {
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    const std::string close = ")" + delim + "\"";
    const std::size_t end = src_.find(close, pos_);
    for (std::size_t i = pos_; i < (end == std::string::npos ? src_.size() : end); ++i)
      if (src_[i] == '\n') ++line_;
    pos_ = end == std::string::npos ? src_.size() : end + close.size();
    emit(TokKind::string, "");
  }

  void number() {
    const std::size_t start = pos_;
    bool is_float = false;
    const bool hex = src_[pos_] == '0' && pos_ + 1 < src_.size() &&
                     (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X');
    if (hex) pos_ += 2;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '\'' || c == '.' ||
          c == '_') {
        if (c == '.') is_float = true;
        // Exponents: e/E (decimal) and p/P (hex float) may be followed by a
        // sign that belongs to the literal.
        const bool exp = hex ? (c == 'p' || c == 'P') : (c == 'e' || c == 'E');
        if (exp) {
          is_float = true;
          ++pos_;
          if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) ++pos_;
          continue;
        }
        ++pos_;
        continue;
      }
      break;
    }
    emit(TokKind::number, src_.substr(start, pos_ - start), is_float);
  }

  void identifier() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    emit(TokKind::identifier, src_.substr(start, pos_ - start));
  }

  void punct() {
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      if (src_.compare(pos_, n, p) == 0) {
        emit(TokKind::punct, p);
        pos_ += n;
        return;
      }
    }
    emit(TokKind::punct, std::string(1, src_[pos_]));
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace razorlint

// razorlint CLI (docs/static-analysis.md).
//
//   razorlint --root <repo>            lint the whole tree, exit 1 on findings
//   razorlint [--as <path>] <files>    lint specific files; --as sets the
//                                      repo-relative path used for scoping
//                                      (layer-dag / no-mutable-static / the
//                                      wallclock whitelist) — this is how the
//                                      lint fixtures impersonate src/ files
//   razorlint --list-rules             print the rule set and the whitelist
#include "razorlint.hpp"

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  using namespace razorlint;

  std::string root;
  std::string as;
  std::vector<std::string> files;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "razorlint: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") root = value("--root");
    else if (arg == "--as") as = value("--as");
    else if (arg == "--list-rules") list_rules = true;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: razorlint --root <repo> | [--as <path>] <files> |"
                   " --list-rules\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "razorlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (list_rules) {
    std::cout << "rules:\n";
    for (const auto& r : rule_names()) std::cout << "  " << r << "\n";
    std::cout << "no-wallclock whitelist:\n";
    for (const auto& p : wallclock_whitelist()) std::cout << "  " << p << "\n";
    return 0;
  }

  // The layer table itself must be a DAG before it is fit to judge anyone.
  const std::string cycle = layer_dag_cycle();
  if (!cycle.empty()) {
    std::cerr << "razorlint: internal error: layer table has a cycle: " << cycle
              << "\n";
    return 2;
  }

  std::vector<Diagnostic> diags;
  if (!root.empty()) {
    diags = lint_tree(root);
  } else if (!files.empty()) {
    for (const std::string& f : files) {
      const std::string virtual_path = as.empty() ? f : as;
      auto d = lint_path(f, virtual_path);
      diags.insert(diags.end(), d.begin(), d.end());
    }
  } else {
    std::cerr << "razorlint: nothing to lint (use --root or pass files)\n";
    return 2;
  }

  for (const auto& d : diags) std::cout << format(d) << "\n";
  if (!diags.empty()) {
    std::cerr << "razorlint: " << diags.size() << " diagnostic"
              << (diags.size() == 1 ? "" : "s")
              << " (suppress intentional ones with"
                 " \"// razorlint: allow(<rule>): <justification>\")\n";
    return 1;
  }
  return 0;
}

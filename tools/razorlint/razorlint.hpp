// razorlint — the project's determinism & concurrency lint (docs/static-analysis.md).
//
// Every result in this codebase is contractually bit-identical across thread
// counts, engines, widths and streamed vs. materialized paths; the runtime
// parity suites catch a violation only after it ships. razorlint rejects the
// source patterns that breed nondeterminism at lint time instead: raw float
// equality, wall-clock reads, unseeded randomness, unordered-container
// iteration order, shared mutable statics, and upward layer dependencies.
//
// The checker is deliberately token-level ("AST-lite"): no libclang, builds
// and runs under the tier-1 cmake configure on a bare toolchain. That buys
// zero dependencies at the cost of type knowledge — each rule documents the
// heuristic it uses and the blind spots that follow. Intentional violations
// are annotated in place:
//
//   ... flagged code ...  // razorlint: allow(<rule>): <justification>
//
// on the flagged line or the line directly above it. The justification is
// mandatory; an allow() without one is itself a diagnostic.
#pragma once

#include <string>
#include <vector>

namespace razorlint {

// ------------------------------------------------------------------ tokens

enum class TokKind {
  identifier,
  number,        // numeric literal; `is_float` distinguishes 1.0 / 1e3 from 10
  punct,         // operators and punctuation, longest-match ("==", "::", ...)
  string,        // string or char literal (contents dropped)
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
  bool is_float = false;  // numbers only
};

// One `// razorlint: allow(rule[,rule...]): justification` comment.
struct Suppression {
  int line = 0;
  std::vector<std::string> rules;
  std::string justification;  // may be empty — rules.cpp diagnoses that
};

// One #include directive.
struct Include {
  int line = 0;
  std::string path;   // as written between the delimiters
  bool quoted = false;  // "..." (project include) vs <...> (system include)
};

// Lexed view of one translation unit: comments and literal contents are
// stripped (suppression comments and include directives are harvested into
// their own lists), line numbers are preserved.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<Include> includes;
};

LexedFile lex(const std::string& source);

// -------------------------------------------------------------- diagnostics

struct Diagnostic {
  std::string path;   // virtual path (repo-relative) the rule saw
  int line = 0;
  std::string rule;
  std::string message;
};

// "path:line: [rule] message" — the format CI greps and editors jump on.
std::string format(const Diagnostic& d);

// ------------------------------------------------------------------- rules

// All rule names, in documentation order.
const std::vector<std::string>& rule_names();

// Paths (repo-relative) where the no-wallclock rule is silent: the bench
// timing harness reads steady_clock by design — wall time is what a bench
// measures — and the readings only ever land in reporting fields, never in
// simulation state. Kept as a named list (not inline suppressions) so the
// whitelist is reviewable in one place.
const std::vector<std::string>& wallclock_whitelist();

// Lint one already-lexed file. `virtual_path` is the repo-relative path used
// for scoping decisions (layer-dag and no-mutable-static apply to src/ only,
// the wallclock whitelist matches against it) and for diagnostics.
std::vector<Diagnostic> lint_file(const LexedFile& file, const std::string& virtual_path);

// Convenience: read, lex and lint one file from disk.
std::vector<Diagnostic> lint_path(const std::string& fs_path,
                                  const std::string& virtual_path);

// ---------------------------------------------------------------- layer DAG

// The allowed dependency edges between src/ top-level directories, mirroring
// the layer map in docs/architecture.md. Key: layer; value: layers it may
// #include from. Returned as sorted pairs for deterministic iteration.
const std::vector<std::pair<std::string, std::vector<std::string>>>& layer_dag();

// Verifies layer_dag() is acyclic (a self-check run at startup and under
// test); returns a human-readable cycle description, or "" if acyclic.
std::string layer_dag_cycle();

// --------------------------------------------------------------- tree walk

// Repo-relative source files razorlint covers: *.cpp / *.hpp under src/,
// bench/, tests/, examples/ and tools/, minus tests/lint_fixtures/ (fixtures
// contain violations on purpose). Sorted, so diagnostics order is stable.
std::vector<std::string> collect_sources(const std::string& root);

// Lint the whole tree rooted at `root` (the repo checkout).
std::vector<Diagnostic> lint_tree(const std::string& root);

}  // namespace razorlint

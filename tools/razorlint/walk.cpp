// Tree walk: which files razorlint covers, and the whole-tree entry point.
#include "razorlint.hpp"

#include <algorithm>
#include <filesystem>

namespace razorlint {

std::vector<std::string> collect_sources(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const char* top : {"src", "bench", "tests", "examples", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      const std::string rel = fs::relative(entry.path(), root).generic_string();
      if (rel.find("tests/lint_fixtures/") == 0) continue;  // violations by design
      out.push_back(rel);
    }
  }
  // Sorted so diagnostics, and therefore CI logs, are byte-stable run to run.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Diagnostic> lint_tree(const std::string& root) {
  std::vector<Diagnostic> out;
  for (const std::string& rel : collect_sources(root)) {
    auto file = lint_path((std::filesystem::path(root) / rel).string(), rel);
    out.insert(out.end(), file.begin(), file.end());
  }
  return out;
}

}  // namespace razorlint

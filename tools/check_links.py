#!/usr/bin/env python3
"""Fail on dead relative links in markdown files.

Usage: tools/check_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Scans every given markdown file (directories are walked for *.md) for
inline links/images `[text](target)` and reference definitions
`[label]: target`. External schemes (http/https/mailto) and pure
in-page anchors (#...) are ignored; everything else must resolve,
relative to the containing file, to an existing file or directory
(fragments are stripped before the check). Exit code 1 lists every dead
link; 0 means all links resolve.
"""

import os
import re
import sys

# Inline [text](target) — target up to the first unescaped ')' — plus
# reference-style "[label]: target" definitions at line start.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield path


def check(md_file):
    dead = []
    with open(md_file, encoding="utf-8") as handle:
        text = handle.read()
    targets = INLINE.findall(text) + REFDEF.findall(text)
    for target in targets:
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(md_file), target.split("#", 1)[0])
        )
        if not os.path.exists(resolved):
            dead.append((target, resolved))
    return dead


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for md_file in markdown_files(argv[1:]):
        checked += 1
        for target, resolved in check(md_file):
            failures += 1
            print(f"DEAD LINK {md_file}: ({target}) -> {resolved}")
    print(f"checked {checked} markdown file(s), {failures} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

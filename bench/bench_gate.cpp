// CI bench-regression gate CLI (DESIGN.md §11).
//
//   bench_gate <baseline.json> <current.json> [--threshold=0.20]
//              [--allow-missing-baseline]
//
// Compares the gated metrics of two bench reports (single scenario
// reports or aggregated BENCH_campaign.json files) — "_cps" throughput
// keys, where a drop regresses, and "_sims" characterization-cost keys,
// where a rise regresses — and exits non-zero when any metric regressed
// by more than the threshold. A missing baseline file is exit 0 with
// --allow-missing-baseline (first run on a branch, expired artifact) and
// exit 2 otherwise; malformed input is always exit 2. Improvements and
// added/removed metrics never fail.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/bench_gate.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace razorbus;

int main(int argc, char** argv) {
  return cli_main(argc, argv, [](const CliFlags& flags) {
    const double threshold = flags.get_double("threshold", 0.20);
    const bool allow_missing = flags.get_bool("allow-missing-baseline", false);
    if (flags.positional().size() != 2)
      throw std::invalid_argument(
          "usage: bench_gate <baseline.json> <current.json> [--threshold=F] "
          "[--allow-missing-baseline]");
    flags.reject_unused();
    const std::string& baseline_path = flags.positional()[0];
    const std::string& current_path = flags.positional()[1];

    if (allow_missing && !std::ifstream(baseline_path)) {
      std::printf("bench_gate: no baseline at %s — nothing to compare, passing\n",
                  baseline_path.c_str());
      return 0;
    }

    const core::BenchGateResult result = core::compare_bench_reports(
        Json::parse_file(baseline_path), Json::parse_file(current_path), threshold);

    if (result.compared.empty()) {
      std::printf("bench_gate: no _cps/_sims gated metrics in %s — passing\n",
                  baseline_path.c_str());
      return 0;
    }

    Table table({"Metric", "Baseline", "Current", "Ratio", "Verdict"});
    for (const auto& finding : result.compared) {
      table.row()
          .add(finding.path + (finding.cost ? " [cost]" : ""))
          .add(finding.baseline, 0)
          .add(finding.current, 0)
          .add(finding.ratio, 3)
          .add(finding.regression ? "REGRESSED" : "ok");
    }
    table.print(std::cout);
    for (const auto& path : result.missing)
      std::printf("note: %s present in baseline only (scenario removed?)\n",
                  path.c_str());
    for (const auto& path : result.added)
      std::printf("note: %s is new in this run\n", path.c_str());

    if (!result.ok()) {
      std::printf(
          "\nbench_gate: %zu metric(s) regressed by more than %.0f%% vs %s.\n"
          "If the slowdown is expected, include [bench-skip] in the commit message.\n",
          result.regressions(), 100.0 * threshold, baseline_path.c_str());
      return 1;
    }
    std::printf("\nbench_gate: %zu metric(s) within the %.0f%% threshold\n",
                result.compared.size(), 100.0 * threshold);
    return 0;
  });
}

// CI bench-regression gate CLI (DESIGN.md §11).
//
//   bench_gate <baseline.json> <current.json> [--threshold=0.20]
//              [--allow-missing-baseline]
//   bench_gate --history=DIR <current.json> [--window=10] [--threshold=0.20]
//              [--allow-missing-baseline]
//
// Compares the gated metrics of bench reports (single scenario reports or
// aggregated BENCH_campaign.json files) — "_cps" throughput keys, where a
// drop regresses, and "_sims" characterization-cost keys, where a rise
// regresses — and exits non-zero when any metric regressed by more than
// the threshold. With --history=DIR the baseline is the per-metric lower
// median of the last --window reports in DIR (sorted by filename, the CI
// result-history convention), so one noisy main-branch entry cannot move
// the bar the way diffing a single artifact could; unparseable entries
// are skipped with a note. A missing baseline (file, directory, or an
// empty/unreadable history window) exits 0 with --allow-missing-baseline
// (first run on a branch, expired cache) and otherwise exits 2 with a
// message saying how to seed one; malformed current input is always exit
// 2. Improvements and added/removed metrics never fail.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/bench_gate.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace razorbus;

namespace fs = std::filesystem;

namespace {

int no_baseline(const std::string& what, bool allow_missing) {
  if (allow_missing) {
    std::printf("bench_gate: no baseline %s — nothing to compare, passing\n",
                what.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "bench_gate: no baseline %s.\n"
               "A baseline is required: seed one from a main-branch run (CI "
               "records BENCH_*.json into the bench-history cache on every "
               "main build), or pass --allow-missing-baseline to accept an "
               "ungated first run.\n",
               what.c_str());
  return 2;
}

int print_and_judge(const core::BenchGateResult& result, const std::string& against,
                    double threshold) {
  if (result.compared.empty()) {
    std::printf("bench_gate: no _cps/_sims gated metrics in %s — passing\n",
                against.c_str());
    return 0;
  }
  Table table({"Metric", "Baseline", "Current", "Ratio", "Verdict"});
  for (const auto& finding : result.compared) {
    table.row()
        .add(finding.path + (finding.cost ? " [cost]" : ""))
        .add(finding.baseline, 0)
        .add(finding.current, 0)
        .add(finding.ratio, 3)
        .add(finding.regression ? "REGRESSED" : "ok");
  }
  table.print(std::cout);
  for (const auto& path : result.missing)
    std::printf("note: %s present in baseline only (scenario removed?)\n",
                path.c_str());
  for (const auto& path : result.added)
    std::printf("note: %s is new in this run\n", path.c_str());

  if (!result.ok()) {
    std::printf(
        "\nbench_gate: %zu metric(s) regressed by more than %.0f%% vs %s.\n"
        "If the slowdown is expected, include [bench-skip] in the commit message.\n",
        result.regressions(), 100.0 * threshold, against.c_str());
    return 1;
  }
  std::printf("\nbench_gate: %zu metric(s) within the %.0f%% threshold\n",
              result.compared.size(), 100.0 * threshold);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return cli_main(argc, argv, [](const CliFlags& flags) {
    const double threshold = flags.get_double("threshold", 0.20);
    const bool allow_missing = flags.get_bool("allow-missing-baseline", false);
    const std::string history_dir = flags.get("history", "");

    if (!history_dir.empty()) {
      if (flags.positional().size() != 1)
        throw std::invalid_argument(
            "usage: bench_gate --history=DIR <current.json> [--window=N] "
            "[--threshold=F] [--allow-missing-baseline]");
      const auto window = static_cast<std::size_t>(
          std::max<std::int64_t>(1, flags.get_int("window", 10)));
      flags.reject_unused();
      const Json current = Json::parse_file(flags.positional()[0]);

      std::vector<std::string> paths;
      if (fs::is_directory(history_dir))
        for (const auto& entry : fs::directory_iterator(history_dir))
          if (entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
      if (paths.empty()) return no_baseline("history in " + history_dir, allow_missing);

      // Filenames are the history order (CI zero-pads run numbers); gate
      // against the newest `window` entries.
      std::sort(paths.begin(), paths.end());
      if (paths.size() > window) paths.erase(paths.begin(), paths.end() - window);
      std::vector<Json> history;
      for (const auto& path : paths) {
        try {
          history.push_back(Json::parse_file(path));
        } catch (const std::exception&) {
          std::printf("note: skipping unparseable history entry %s\n", path.c_str());
        }
      }
      if (history.empty())
        return no_baseline("(no parseable entry) in " + history_dir, allow_missing);

      const auto label = history_dir + " (last " + std::to_string(history.size()) +
                         " entr" + (history.size() == 1 ? "y" : "ies") +
                         ", lower-median baseline)";
      std::printf("bench_gate: gating against %s\n", label.c_str());
      return print_and_judge(core::compare_bench_history(history, current, threshold),
                             label, threshold);
    }

    if (flags.positional().size() != 2)
      throw std::invalid_argument(
          "usage: bench_gate <baseline.json> <current.json> [--threshold=F] "
          "[--allow-missing-baseline] | bench_gate --history=DIR <current.json>");
    flags.reject_unused();
    const std::string& baseline_path = flags.positional()[0];
    const std::string& current_path = flags.positional()[1];

    if (!std::ifstream(baseline_path))
      return no_baseline("at " + baseline_path, allow_missing);

    return print_and_judge(
        core::compare_bench_reports(Json::parse_file(baseline_path),
                                    Json::parse_file(current_path), threshold),
        baseline_path, threshold);
  });
}

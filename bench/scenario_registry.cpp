#include "scenario_registry.hpp"

#include <stdexcept>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> scenarios = [] {
    std::vector<Scenario> out;
    out.push_back(make_fig4_voltage_sweep_scenario());
    out.push_back(make_fig5_pvt_gains_scenario());
    out.push_back(make_fig6_voltage_distribution_scenario());
    out.push_back(make_fig8_dvs_trace_scenario());
    out.push_back(make_table1_dvs_gains_scenario());
    out.push_back(make_fig10_modified_bus_scenario());
    out.push_back(make_ablation_controller_scenario());
    out.push_back(make_ablation_encoding_scenario());
    out.push_back(make_ablation_pvt_sampling_scenario());
    out.push_back(make_ablation_repeater_scenario());
    out.push_back(make_scaling_study_scenario());
    out.push_back(make_width_sweep_scenario());
    out.push_back(make_engine_scenario());
    return out;
  }();
  return scenarios;
}

const Scenario& scenario_by_name(const std::string& name) {
  for (const auto& scenario : all_scenarios())
    if (scenario.name == name) return scenario;
  std::string known;
  for (const auto& scenario : all_scenarios())
    known += (known.empty() ? "" : ", ") + scenario.name;
  throw std::invalid_argument("unknown scenario '" + name + "' (known: " + known + ")");
}

}  // namespace razorbus::bench

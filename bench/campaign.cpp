// Declarative scenario-campaign runner (DESIGN.md §11).
//
//   campaign run <campaign.json> [--out=DIR] [--jobs=N] [--force]
//                [--dry_run] [--json=PATH]
//   campaign list [<campaign.json>]
//   campaign run-one <job.spec.json> --json=PATH   (internal)
//
// `run` expands the campaign file into the scenario cross product
// (scenarios x widths x controllers), executes the jobs as shards on the
// ThreadPool (--jobs children at a time; each child is a `campaign
// run-one` subprocess whose stdout/stderr land in <out>/<job>.log), and
// aggregates the per-job reports into one consolidated BENCH_campaign.json.
//
// Runs are RESUMABLE: a job whose <out>/BENCH_<job>.json already exists
// and parses is skipped, so an interrupted campaign continues where it
// stopped (--force reruns everything; a half-written report fails the
// parse and reruns). Jobs referencing a registered bench scenario run the
// exact legacy harness code path, so their reports are byte-identical to
// the standalone binaries' (modulo wall-clock fields) — enforced by
// tests/campaign_test.cpp.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bus/businvert.hpp"
#include "core/scenario_spec.hpp"
#include "scenario_registry.hpp"
#include "trace/io.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"
#include "util/parallel.hpp"

using namespace razorbus;
using namespace razorbus::bench;

namespace fs = std::filesystem;

namespace {

// POSIX-shell single-quoting: inhibits every expansion, survives spaces,
// '$', backticks and double quotes in operator-supplied paths.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

// ------------------------------------------------- declarative experiments

// The bus system a declarative job runs on: the paper bus at the job's
// width, characterised adaptively when the job sets `lut_tolerance`. The
// characterised tables are width-independent, so every width shares the
// paper system's cached characterization (DESIGN.md §10); adaptive tables
// additionally share the design's point store, so a dense table and an
// adaptive one re-simulate nothing in common.
const core::DvsBusSystem& system_for_job(int width, double lut_tolerance) {
  if (width == 32 && lut_tolerance <= 0.0) return paper_system();
  static core::DvsBusSystem* cached = nullptr;
  static int cached_width = 0;
  static double cached_tol = 0.0;
  if (cached == nullptr || cached_width != width || cached_tol != lut_tolerance) {
    interconnect::BusDesign design = width == 32
                                         ? paper_system().design()
                                         : interconnect::BusDesign::wide_bus(width);
    design.repeater_size = paper_system().design().repeater_size;
    core::SystemOptions options = options_with_progress("campaign bus");
    options.lut_config =
        core::lut_config_for_tolerance(lut_tolerance, options.lut_config);
    delete cached;
    cached = new core::DvsBusSystem(design, options);
    cached_width = width;
    cached_tol = lut_tolerance;
  }
  return *cached;
}

// Materialise the job's traces at the job's width.
std::vector<trace::Trace> traces_for(const core::ScenarioSpec& spec,
                                     std::size_t cycles) {
  const int width = spec.widths.at(0);
  std::vector<trace::Trace> traces;
  switch (spec.trace.source) {
    case core::TraceSpec::Source::synthetic: {
      trace::SyntheticConfig cfg;
      cfg.style = spec.trace.style;
      cfg.cycles = cycles;
      cfg.load_rate = spec.trace.load_rate;
      cfg.activity = spec.trace.activity;
      cfg.seed = spec.trace.seed;
      cfg.n_bits = width;
      traces.push_back(
          trace::generate_synthetic(cfg, trace::to_string(spec.trace.style)));
      break;
    }
    case core::TraceSpec::Source::benchmark:
    case core::TraceSpec::Source::suite: {
      // Mini-CPU kernels capture 32-bit load streams; wider buses pack
      // consecutive words into flits (README "memory bus" recipe).
      if (width % 32 != 0)
        throw std::invalid_argument("benchmark traces require a width that is a "
                                    "multiple of 32, got " +
                                    std::to_string(width));
      const int factor = width / 32;
      const auto capture = [&](const cpu::Benchmark& bench) {
        const trace::Trace t = bench.capture(cycles * static_cast<std::size_t>(factor));
        return factor == 1 ? t : trace::widen(t, factor);
      };
      if (spec.trace.source == core::TraceSpec::Source::benchmark) {
        traces.push_back(capture(cpu::benchmark_by_name(spec.trace.benchmark)));
      } else {
        for (const auto& bench : cpu::spec2000_suite()) {
          std::fprintf(stderr, "[tracing %s]\n", bench.name.c_str());
          traces.push_back(capture(bench));
        }
      }
      break;
    }
    case core::TraceSpec::Source::file: {
      trace::Trace t = trace::load_trace_file(spec.trace.path);
      if (t.n_bits != width)
        throw std::invalid_argument("trace file " + spec.trace.path + " is " +
                                    std::to_string(t.n_bits) + " wires, job wants " +
                                    std::to_string(width));
      traces.push_back(std::move(t));
      break;
    }
  }
  if (spec.bus_invert)
    for (auto& t : traces) t = bus::bus_invert_encode(t).encoded;
  return traces;
}

// Streamed twin of traces_for (DESIGN.md §12): one TraceSource per trace
// the materialized path would have built, producing the identical word
// sequences and names — which is what keeps a "stream": true job's
// experiment metrics byte-identical to the materialized job's.
std::vector<std::unique_ptr<trace::TraceSource>> sources_for(
    const core::ScenarioSpec& spec, std::size_t cycles) {
  const int width = spec.widths.at(0);
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  switch (spec.trace.source) {
    case core::TraceSpec::Source::synthetic: {
      trace::SyntheticConfig cfg;
      cfg.style = spec.trace.style;
      cfg.cycles = cycles;
      cfg.load_rate = spec.trace.load_rate;
      cfg.activity = spec.trace.activity;
      cfg.seed = spec.trace.seed;
      cfg.n_bits = width;
      sources.push_back(
          trace::make_synthetic_source(cfg, trace::to_string(spec.trace.style)));
      break;
    }
    case core::TraceSpec::Source::benchmark:
    case core::TraceSpec::Source::suite: {
      if (width % 32 != 0)
        throw std::invalid_argument("benchmark traces require a width that is a "
                                    "multiple of 32, got " +
                                    std::to_string(width));
      const int factor = width / 32;
      const auto stream_one = [&](const cpu::Benchmark& bench) {
        auto s = bench.stream(cycles * static_cast<std::size_t>(factor));
        if (factor > 1) s = trace::widen_source(std::move(s), factor);
        return s;
      };
      if (spec.trace.source == core::TraceSpec::Source::benchmark) {
        sources.push_back(stream_one(cpu::benchmark_by_name(spec.trace.benchmark)));
      } else {
        for (const auto& bench : cpu::spec2000_suite())
          sources.push_back(stream_one(bench));
      }
      break;
    }
    case core::TraceSpec::Source::file: {
      auto s = trace::open_trace_stream(spec.trace.path);
      if (s->n_bits() != width)
        throw std::invalid_argument("trace file " + spec.trace.path + " is " +
                                    std::to_string(s->n_bits()) + " wires, job wants " +
                                    std::to_string(width));
      sources.push_back(std::move(s));
      break;
    }
  }
  if (spec.bus_invert)
    for (auto& s : sources) s = bus::bus_invert_encode_source(std::move(s));
  return sources;
}

// Block accounting of a streamed job, surfaced next to the experiment
// metrics (docs/bench-reports.md): how much trace was pulled and the
// peak-RSS-relevant per-shard buffer bound.
void record_stream_stats(ScenarioContext& ctx, const core::StreamStats& stats) {
  ctx.metric("stream_block_cycles", static_cast<double>(stats.block_cycles));
  ctx.metric("stream_blocks", static_cast<double>(stats.blocks));
  ctx.metric("stream_cycles", static_cast<double>(stats.cycles));
  ctx.metric("stream_peak_buffer_words", static_cast<double>(stats.peak_buffer_words));
}

std::string corner_key(const tech::PvtCorner& corner) {
  std::string key = tech::to_string(corner.process) + "_" +
                    std::to_string(static_cast<int>(corner.temp_c)) + "C";
  if (corner.ir_drop_fraction > 0.0)
    key += "_" + std::to_string(static_cast<int>(corner.ir_drop_fraction * 100.0 + 0.5)) +
           "ir";
  return key;
}

void run_closed_loop_job(const core::ScenarioSpec& spec, ScenarioContext& ctx) {
  const auto& system = system_for_job(spec.widths.at(0), spec.lut_tolerance);
  const core::ControllerSpec& controller = spec.controllers.at(0);

  // Either every trace resident (legacy) or one lazily-executed stream per
  // trace: the reports — and therefore every metric below — are
  // bit-identical between the two paths (tests/stream_test.cpp).
  std::vector<trace::Trace> traces;
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  std::vector<std::string> trace_names;
  if (spec.stream) {
    sources = sources_for(spec, ctx.cycles);
    for (const auto& s : sources) trace_names.push_back(s->name());
  } else {
    traces = traces_for(spec, ctx.cycles);
    for (const auto& t : traces) trace_names.push_back(t.name);
  }
  core::StreamStats stream_stats;

  Table table({"Corner", "Trace", "Gain (%)", "Err (%)", "Avg V (mV)", "Floor (mV)"});
  for (const auto& corner : spec.corners) {
    std::fprintf(stderr, "[%s @ %s]\n", controller.label().c_str(),
                 corner.name().c_str());
    std::vector<core::DvsRunReport> reports;
    switch (controller.kind) {
      case dvs::ControllerKind::threshold: {
        core::DvsRunConfig cfg;
        cfg.controller = controller.threshold;
        cfg.engine = spec.engine;
        cfg.timing_jitter_sigma = spec.timing_jitter_sigma;
        cfg.lut_tolerance = spec.lut_tolerance;
        reports = spec.stream
                      ? core::run_closed_loop_suite_streamed(system, corner, sources,
                                                             cfg, {}, &stream_stats)
                      : core::run_closed_loop_suite(system, corner, traces, cfg);
        break;
      }
      case dvs::ControllerKind::proportional: {
        core::ProportionalRunConfig cfg;
        cfg.controller = controller.proportional;
        cfg.engine = spec.engine;
        cfg.timing_jitter_sigma = spec.timing_jitter_sigma;
        if (spec.stream) {
          for (const auto& s : sources)
            reports.push_back(core::run_closed_loop_proportional_streamed(
                system, corner, *s, cfg, {}, &stream_stats));
        } else {
          for (const auto& t : traces)
            reports.push_back(
                core::run_closed_loop_proportional(system, corner, t, cfg));
        }
        break;
      }
      case dvs::ControllerKind::fixed_vs:
        reports = spec.stream
                      ? core::run_fixed_vs_suite_streamed(system, corner, sources,
                                                          spec.engine,
                                                          spec.timing_jitter_sigma, {},
                                                          &stream_stats)
                      : core::run_fixed_vs_suite(system, corner, traces, spec.engine,
                                                 spec.timing_jitter_sigma);
        break;
    }
    for (std::size_t t = 0; t < trace_names.size(); ++t) {
      const core::DvsRunReport& r = reports[t];
      table.row()
          .add(corner.name())
          .add(trace_names[t])
          .add(100.0 * r.energy_gain(), 1)
          .add(100.0 * r.error_rate(), 2)
          .add(to_mV(r.average_supply), 0)
          .add(to_mV(r.floor_supply), 0);
      const std::string key = corner_key(corner) + "_" + trace_names[t];
      ctx.metric(key + "_gain", r.energy_gain());
      ctx.metric(key + "_error_rate", r.error_rate());
      ctx.metric(key + "_avg_supply", r.average_supply);
    }
  }
  ctx.table("closed_loop", table);
  ctx.note("controller", controller.label());
  ctx.note("engine", bus::to_string(spec.engine));
  ctx.note("width", std::to_string(spec.widths.at(0)));
  ctx.note("trace_mode", spec.stream ? "streamed" : "materialized");
  if (spec.lut_tolerance > 0.0)
    ctx.note("lut_tolerance", std::to_string(spec.lut_tolerance));
  if (spec.stream) record_stream_stats(ctx, stream_stats);
}

void run_static_sweep_job(const core::ScenarioSpec& spec, ScenarioContext& ctx) {
  const auto& system = system_for_job(spec.widths.at(0), spec.lut_tolerance);
  std::vector<trace::Trace> traces;
  std::unique_ptr<trace::TraceSource> source;
  if (spec.stream) {
    // The materialized sweep runs its traces back to back through one
    // simulator, so the streamed sweep sees their concatenation.
    auto parts = sources_for(spec, ctx.cycles);
    source = parts.size() == 1
                 ? std::move(parts.front())
                 : trace::concatenate_sources(std::move(parts), "suite");
  } else {
    traces = traces_for(spec, ctx.cycles);
  }
  core::StreamStats stream_stats;

  for (const auto& corner : spec.corners) {
    std::fprintf(stderr, "[sweeping %s]\n", corner.name().c_str());
    const core::StaticSweepResult sweep =
        spec.stream ? core::static_voltage_sweep_streamed(
                          system, corner, *source, spec.timing_jitter_sigma,
                          spec.engine, {}, &stream_stats)
                    : core::static_voltage_sweep(system, corner, traces,
                                                 spec.timing_jitter_sigma, spec.engine);
    Table table({"Supply (mV)", "Error Rate (%)", "Bus Energy (norm)",
                 "Bus+Recovery (norm)"});
    for (auto it = sweep.points.rbegin(); it != sweep.points.rend(); ++it) {
      table.row()
          .add(to_mV(it->supply), 0)
          .add(100.0 * it->error_rate, 2)
          .add(it->norm_bus_energy, 3)
          .add(it->norm_total_energy, 3);
    }
    ctx.table(corner_key(corner), table);
    ctx.metric(corner_key(corner) + "_floor_mV", to_mV(sweep.floor_supply));
    ctx.metric(corner_key(corner) + "_norm_energy_at_floor",
               sweep.points.front().norm_total_energy);
  }
  ctx.note("engine", bus::to_string(spec.engine));
  ctx.note("width", std::to_string(spec.widths.at(0)));
  ctx.note("trace_mode", spec.stream ? "streamed" : "materialized");
  if (spec.lut_tolerance > 0.0)
    ctx.note("lut_tolerance", std::to_string(spec.lut_tolerance));
  if (spec.stream) record_stream_stats(ctx, stream_stats);
}

// ----------------------------------------------------------------- run-one

// Executes one expanded job in-process through the shared run_scenario
// path (identical reports to the legacy binaries by construction).
int run_one(const std::string& spec_path, const std::string& json_flag) {
  const core::ScenarioSpec spec =
      core::ScenarioSpec::from_json(Json::parse_file(spec_path));

  Scenario scenario;
  if (spec.kind == core::ScenarioSpec::Kind::bench) {
    scenario = scenario_by_name(spec.bench);
  } else {
    if (spec.cycles == 0)
      throw std::invalid_argument("job '" + spec.name +
                                  "': declarative scenarios need a cycle budget "
                                  "(scenario 'cycles' or campaign defaults)");
    scenario.name = spec.name;
    scenario.description =
        spec.kind == core::ScenarioSpec::Kind::closed_loop
            ? "declarative closed-loop DVS (" + spec.controllers.at(0).label() + ", " +
                  std::to_string(spec.widths.at(0)) + " wires)"
            : "declarative static voltage sweep (" +
                  std::to_string(spec.widths.at(0)) + " wires)";
    if (spec.stream) scenario.description += " [streamed]";
    scenario.paper_ref = "campaign spec " + spec_path;
    scenario.default_cycles = spec.cycles;
    scenario.run = [spec](ScenarioContext& ctx) {
      if (spec.kind == core::ScenarioSpec::Kind::closed_loop)
        run_closed_loop_job(spec, ctx);
      else
        run_static_sweep_job(spec, ctx);
    };
  }

  // Synthesize the exact argv the standalone binary would have been given.
  std::vector<std::string> args;
  args.push_back("campaign run-one");
  if (scenario.default_cycles > 0 && spec.cycles > 0)
    args.push_back("--cycles=" + std::to_string(spec.cycles));
  args.push_back("--threads=" + std::to_string(spec.threads));
  args.push_back(json_flag);
  for (const auto& [key, value] : spec.flags) args.push_back("--" + key + "=" + value);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& arg : args) argv.push_back(arg.data());
  return run_scenario(static_cast<int>(argv.size()), argv.data(), scenario);
}

// --------------------------------------------------------------------- run

struct JobState {
  core::ScenarioJob job;
  fs::path spec_path;
  fs::path report_path;
  fs::path log_path;
  bool cached = false;
  bool ok = false;
};

bool report_is_complete(const fs::path& path) {
  try {
    Json::parse_file(path.string());
    return true;
  } catch (const std::exception&) {
    return false;  // missing, or half-written by an interrupted run: redo
  }
}

int run_campaign(const std::string& self, const std::string& campaign_path,
                 CliFlags& flags) {
  const core::CampaignSpec campaign = core::CampaignSpec::from_file(campaign_path);
  std::vector<core::ScenarioJob> jobs = core::expand_campaign(campaign);
  // Fail-fast contract (DESIGN.md §11): a typo'd bench name must surface
  // now, not after the jobs ahead of it have burned their budgets.
  for (const auto& job : jobs)
    if (job.spec.kind == core::ScenarioSpec::Kind::bench)
      scenario_by_name(job.spec.bench);  // throws, listing the known names

  const fs::path out_dir = flags.get("out", "campaign_out/" + campaign.name);
  const auto jobs_width = static_cast<unsigned>(
      std::max<std::int64_t>(1, flags.get_int("jobs", 1)));
  const bool force = flags.get_bool("force", false);
  const bool dry_run = flags.get_bool("dry_run", false);
  const std::string consolidated = flags.get("json", "BENCH_campaign.json");
  flags.reject_unused();

  std::printf("campaign '%s': %zu scenario(s) -> %zu job(s)\n", campaign.name.c_str(),
              campaign.scenarios.size(), jobs.size());
  if (dry_run) {
    for (const auto& job : jobs) std::printf("  %s\n", job.name.c_str());
    return 0;
  }

  fs::create_directories(out_dir);
  spit((out_dir / "campaign.json").string(), campaign.to_json().dump(2) + "\n");

  std::vector<JobState> states;
  for (auto& job : jobs) {
    JobState state;
    state.spec_path = out_dir / (job.name + ".spec.json");
    state.report_path = out_dir / ("BENCH_" + job.name + ".json");
    state.log_path = out_dir / (job.name + ".log");
    state.job = std::move(job);
    const std::string spec_text = state.job.spec.to_json().dump(2) + "\n";
    // A job resumes from its result file only when its resolved spec is
    // exactly what the previous run executed — editing the campaign file
    // invalidates the jobs it changes even though their names persist.
    bool spec_unchanged = false;
    try {
      spec_unchanged = slurp(state.spec_path.string()) == spec_text;
    } catch (const std::runtime_error&) {
      // No previous spec: first run of this job.
    }
    state.cached =
        !force && spec_unchanged && report_is_complete(state.report_path);
    state.ok = state.cached;
    // Stale report first, marker second: a crash in between leaves either
    // a marker mismatch or no report — both rerun the job. The reverse
    // order would let the next run pair a fresh marker with old results.
    if (!state.cached) fs::remove(state.report_path);
    spit(state.spec_path.string(), spec_text);
    states.push_back(std::move(state));
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (states[i].cached)
      std::printf("  [cached] %s\n", states[i].job.name.c_str());
    else
      pending.push_back(i);
  }

  // One shard per pending job on the PR-2 ThreadPool; each shard waits on
  // a `campaign run-one` child whose output is captured in <job>.log. The
  // static shard->lane assignment keeps at most --jobs children alive.
  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> done{0};
  util::ThreadPool pool(std::min<unsigned>(jobs_width,
                                           static_cast<unsigned>(std::max<std::size_t>(
                                               pending.size(), 1))));
  pool.parallel_for(pending.size(), [&](std::size_t p) {
    JobState& state = states[pending[p]];
    const std::string cmd = shell_quote(self) + " run-one " +
                            shell_quote(state.spec_path.string()) + " " +
                            shell_quote("--json=" + state.report_path.string()) + " > " +
                            shell_quote(state.log_path.string()) + " 2>&1";
    const int status = std::system(cmd.c_str());
    state.ok = status == 0;
    std::printf("  [%zu/%zu] %s %s\n", done.fetch_add(1) + 1, pending.size(),
                state.ok ? "done" : "FAILED", state.job.name.c_str());
    std::fflush(stdout);
  });
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Aggregate every job report into the consolidated trajectory file.
  Json aggregate = Json::object();
  aggregate.set("campaign", campaign.name);
  if (!campaign.description.empty()) aggregate.set("description", campaign.description);
  aggregate.set("out_dir", out_dir.string());
  aggregate.set("jobs", static_cast<long long>(states.size()));
  aggregate.set("cached", static_cast<long long>(states.size() - pending.size()));
  aggregate.set("wall_seconds", wall_seconds);
  Json scenarios = Json::object();
  std::size_t failures = 0;
  for (const auto& state : states) {
    if (state.ok) {
      scenarios.set(state.job.name, Json::parse_file(state.report_path.string()));
    } else {
      ++failures;
      std::printf("\n%s failed; last lines of %s:\n", state.job.name.c_str(),
                  state.log_path.string().c_str());
      std::ifstream log(state.log_path);
      std::vector<std::string> lines;
      for (std::string line; std::getline(log, line);) lines.push_back(line);
      for (std::size_t i = lines.size() > 10 ? lines.size() - 10 : 0; i < lines.size();
           ++i)
        std::printf("    %s\n", lines[i].c_str());
    }
  }
  aggregate.set("scenarios", std::move(scenarios));
  spit(consolidated, aggregate.dump(2) + "\n");
  std::printf("\n[%s: %zu job(s), %zu cached, %zu failed, %.2f s] wrote %s\n",
              campaign.name.c_str(), states.size(), states.size() - pending.size(),
              failures, wall_seconds, consolidated.c_str());
  return failures == 0 ? 0 : 1;
}

int list_scenarios(const CliFlags& flags) {
  if (!flags.positional().empty() && flags.positional().size() >= 2) {
    const core::CampaignSpec campaign =
        core::CampaignSpec::from_file(flags.positional()[1]);
    std::printf("campaign '%s': %zu scenario(s)\n", campaign.name.c_str(),
                campaign.scenarios.size());
    for (const auto& job : core::expand_campaign(campaign))
      std::printf("  %s\n", job.name.c_str());
    return 0;
  }
  std::printf("registered bench scenarios (usable as \"bench\" spec entries):\n");
  for (const auto& scenario : all_scenarios())
    std::printf("  %-26s %s\n", scenario.name.c_str(), scenario.description.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    const auto& positional = flags.positional();
    const std::string command = positional.empty() ? "" : positional[0];

    if (command == "list") {
      const int rc = list_scenarios(flags);
      flags.reject_unused();
      return rc;
    }
    if (command == "run") {
      if (positional.size() != 2)
        throw std::invalid_argument("usage: campaign run <campaign.json> [--out=DIR] "
                                    "[--jobs=N] [--force] [--dry_run] [--json=PATH]");
      return run_campaign(argv[0], positional[1], flags);
    }
    if (command == "run-one") {
      if (positional.size() != 2)
        throw std::invalid_argument("usage: campaign run-one <job.spec.json> "
                                    "[--json=PATH]");
      const std::string json_flag = "--json=" + flags.get("json", "true");
      flags.reject_unused();
      return run_one(positional[1], json_flag);
    }
    throw std::invalid_argument(
        "usage: campaign run <campaign.json> | campaign list [<campaign.json>] | "
        "campaign run-one <job.spec.json>");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign: %s\n", e.what());
    return 2;
  }
}

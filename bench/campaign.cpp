// Declarative scenario-campaign runner (DESIGN.md §11) — a thin client
// over the campaign service (docs/campaignd.md).
//
//   campaign run <campaign.json> [--out=DIR] [--jobs=N] [--cache=DIR]
//                [--force] [--dry_run] [--json=PATH]
//   campaign list [<campaign.json>]
//   campaign run-one <job.spec.json> --json=PATH   (internal)
//
// `run` expands the campaign file into the scenario cross product
// (scenarios x widths x controllers) and hands the jobs to
// svc::CampaignService: the durable queue under <out>/queue makes runs
// resumable after any kill, and the content-hash result cache under
// <out>/cache (shareable via --cache) replays previously-completed jobs'
// BENCH_<job>.json byte-for-byte without simulating. Each executed job is
// a `campaign run-one` subprocess (--jobs at a time) whose stdout/stderr
// land in <out>/<job>.log; per-job reports aggregate into one consolidated
// BENCH_campaign.json. A half-written report or queue record from an
// interrupted run fails its parse and reruns — the same torn-file
// tolerance lut::PointStore applies. Jobs referencing a registered bench
// scenario run the exact legacy harness code path, so their reports are
// byte-identical to the standalone binaries' (modulo wall-clock fields) —
// enforced by tests/campaign_test.cpp. `campaignd` drives the same
// service with workers, shard manifests and a status surface.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "bus/businvert.hpp"
#include "core/scenario_spec.hpp"
#include "scenario_registry.hpp"
#include "svc/fsio.hpp"
#include "svc/service.hpp"
#include "sys/bus_system.hpp"
#include "trace/io.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"

using namespace razorbus;
using namespace razorbus::bench;

namespace fs = std::filesystem;

namespace {

// ------------------------------------------------- declarative experiments

// The bus system a declarative job runs on: the paper bus at the job's
// width, characterised adaptively when the job sets `lut_tolerance`. The
// characterised tables are width-independent, so every width shares the
// paper system's cached characterization (DESIGN.md §10); adaptive tables
// additionally share the design's point store, so a dense table and an
// adaptive one re-simulate nothing in common.
const core::DvsBusSystem& system_for_job(int width, double lut_tolerance) {
  if (width == 32 && lut_tolerance <= 0.0) return paper_system();
  // Keyed cache rather than a single slot: a multi_bus job builds one
  // system per distinct lane width and holds references to ALL of them for
  // the whole run, so earlier entries must survive later constructions.
  static std::map<std::string, std::unique_ptr<core::DvsBusSystem>> cache;
  const std::string key =
      std::to_string(width) + ":" + std::to_string(lut_tolerance);
  auto it = cache.find(key);
  if (it == cache.end()) {
    interconnect::BusDesign design = width == 32
                                         ? paper_system().design()
                                         : interconnect::BusDesign::wide_bus(width);
    design.repeater_size = paper_system().design().repeater_size;
    core::SystemOptions options = options_with_progress("campaign bus");
    options.lut_config =
        core::lut_config_for_tolerance(lut_tolerance, options.lut_config);
    it = cache
             .emplace(key, std::make_unique<core::DvsBusSystem>(design, options))
             .first;
  }
  return *it->second;
}

// Materialise the job's traces at the job's width.
std::vector<trace::Trace> traces_for(const core::ScenarioSpec& spec,
                                     std::size_t cycles) {
  const int width = spec.widths.at(0);
  std::vector<trace::Trace> traces;
  switch (spec.trace.source) {
    case core::TraceSpec::Source::synthetic: {
      trace::SyntheticConfig cfg;
      cfg.style = spec.trace.style;
      cfg.cycles = cycles;
      cfg.load_rate = spec.trace.load_rate;
      cfg.activity = spec.trace.activity;
      cfg.seed = spec.trace.seed;
      cfg.n_bits = width;
      traces.push_back(
          trace::generate_synthetic(cfg, trace::to_string(spec.trace.style)));
      break;
    }
    case core::TraceSpec::Source::benchmark:
    case core::TraceSpec::Source::suite: {
      // Mini-CPU kernels capture 32-bit load streams; wider buses pack
      // consecutive words into flits (README "memory bus" recipe).
      if (width % 32 != 0)
        throw std::invalid_argument("benchmark traces require a width that is a "
                                    "multiple of 32, got " +
                                    std::to_string(width));
      const int factor = width / 32;
      const auto capture = [&](const cpu::Benchmark& bench) {
        const trace::Trace t = bench.capture(cycles * static_cast<std::size_t>(factor));
        return factor == 1 ? t : trace::widen(t, factor);
      };
      if (spec.trace.source == core::TraceSpec::Source::benchmark) {
        traces.push_back(capture(cpu::benchmark_by_name(spec.trace.benchmark)));
      } else {
        for (const auto& bench : cpu::spec2000_suite()) {
          std::fprintf(stderr, "[tracing %s]\n", bench.name.c_str());
          traces.push_back(capture(bench));
        }
      }
      break;
    }
    case core::TraceSpec::Source::file: {
      trace::Trace t = trace::load_trace_file(spec.trace.path);
      if (t.n_bits != width)
        throw std::invalid_argument("trace file " + spec.trace.path + " is " +
                                    std::to_string(t.n_bits) + " wires, job wants " +
                                    std::to_string(width));
      traces.push_back(std::move(t));
      break;
    }
  }
  if (spec.bus_invert)
    for (auto& t : traces) t = bus::bus_invert_encode(t).encoded;
  return traces;
}

// Streamed twin of traces_for (DESIGN.md §12): one TraceSource per trace
// the materialized path would have built, producing the identical word
// sequences and names — which is what keeps a "stream": true job's
// experiment metrics byte-identical to the materialized job's.
std::vector<std::unique_ptr<trace::TraceSource>> sources_for(
    const core::ScenarioSpec& spec, std::size_t cycles) {
  const int width = spec.widths.at(0);
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  switch (spec.trace.source) {
    case core::TraceSpec::Source::synthetic: {
      trace::SyntheticConfig cfg;
      cfg.style = spec.trace.style;
      cfg.cycles = cycles;
      cfg.load_rate = spec.trace.load_rate;
      cfg.activity = spec.trace.activity;
      cfg.seed = spec.trace.seed;
      cfg.n_bits = width;
      sources.push_back(
          trace::make_synthetic_source(cfg, trace::to_string(spec.trace.style)));
      break;
    }
    case core::TraceSpec::Source::benchmark:
    case core::TraceSpec::Source::suite: {
      if (width % 32 != 0)
        throw std::invalid_argument("benchmark traces require a width that is a "
                                    "multiple of 32, got " +
                                    std::to_string(width));
      const int factor = width / 32;
      const auto stream_one = [&](const cpu::Benchmark& bench) {
        auto s = bench.stream(cycles * static_cast<std::size_t>(factor));
        if (factor > 1) s = trace::widen_source(std::move(s), factor);
        return s;
      };
      if (spec.trace.source == core::TraceSpec::Source::benchmark) {
        sources.push_back(stream_one(cpu::benchmark_by_name(spec.trace.benchmark)));
      } else {
        for (const auto& bench : cpu::spec2000_suite())
          sources.push_back(stream_one(bench));
      }
      break;
    }
    case core::TraceSpec::Source::file: {
      auto s = trace::open_trace_stream(spec.trace.path);
      if (s->n_bits() != width)
        throw std::invalid_argument("trace file " + spec.trace.path + " is " +
                                    std::to_string(s->n_bits()) + " wires, job wants " +
                                    std::to_string(width));
      sources.push_back(std::move(s));
      break;
    }
  }
  if (spec.bus_invert)
    for (auto& s : sources) s = bus::bus_invert_encode_source(std::move(s));
  return sources;
}

// One lane's trace for a multi_bus job (docs/campaigns.md `buses`): the
// single-trace branches of traces_for at the lane's own width. Suite
// sources and non-multiple-of-32 benchmark widths are rejected by the
// spec parser, so only the three single-stream branches survive to here.
trace::Trace trace_for_lane(const core::TraceSpec& spec, int width,
                            std::size_t cycles, bool bus_invert) {
  trace::Trace t;
  switch (spec.source) {
    case core::TraceSpec::Source::synthetic: {
      trace::SyntheticConfig cfg;
      cfg.style = spec.style;
      cfg.cycles = cycles;
      cfg.load_rate = spec.load_rate;
      cfg.activity = spec.activity;
      cfg.seed = spec.seed;
      cfg.n_bits = width;
      t = trace::generate_synthetic(cfg, trace::to_string(spec.style));
      break;
    }
    case core::TraceSpec::Source::benchmark:
    case core::TraceSpec::Source::suite: {
      const int factor = width / 32;  // width % 32 == 0, parser-checked
      const cpu::Benchmark& bench = cpu::benchmark_by_name(spec.benchmark);
      t = bench.capture(cycles * static_cast<std::size_t>(factor));
      if (factor > 1) t = trace::widen(t, factor);
      break;
    }
    case core::TraceSpec::Source::file: {
      t = trace::load_trace_file(spec.path);
      if (t.n_bits != width)
        throw std::invalid_argument("trace file " + spec.path + " is " +
                                    std::to_string(t.n_bits) + " wires, lane wants " +
                                    std::to_string(width));
      break;
    }
  }
  if (bus_invert) t = bus::bus_invert_encode(t).encoded;
  return t;
}

// Streamed twin of trace_for_lane: identical word sequence and name.
std::unique_ptr<trace::TraceSource> source_for_lane(const core::TraceSpec& spec,
                                                    int width, std::size_t cycles,
                                                    bool bus_invert) {
  std::unique_ptr<trace::TraceSource> s;
  switch (spec.source) {
    case core::TraceSpec::Source::synthetic: {
      trace::SyntheticConfig cfg;
      cfg.style = spec.style;
      cfg.cycles = cycles;
      cfg.load_rate = spec.load_rate;
      cfg.activity = spec.activity;
      cfg.seed = spec.seed;
      cfg.n_bits = width;
      s = trace::make_synthetic_source(cfg, trace::to_string(spec.style));
      break;
    }
    case core::TraceSpec::Source::benchmark:
    case core::TraceSpec::Source::suite: {
      const int factor = width / 32;
      s = cpu::benchmark_by_name(spec.benchmark)
              .stream(cycles * static_cast<std::size_t>(factor));
      if (factor > 1) s = trace::widen_source(std::move(s), factor);
      break;
    }
    case core::TraceSpec::Source::file: {
      s = trace::open_trace_stream(spec.path);
      if (s->n_bits() != width)
        throw std::invalid_argument("trace file " + spec.path + " is " +
                                    std::to_string(s->n_bits()) + " wires, lane wants " +
                                    std::to_string(width));
      break;
    }
  }
  if (bus_invert) s = bus::bus_invert_encode_source(std::move(s));
  return s;
}

// Block accounting of a streamed job, surfaced next to the experiment
// metrics (docs/bench-reports.md): how much trace was pulled and the
// peak-RSS-relevant per-shard buffer bound.
void record_stream_stats(ScenarioContext& ctx, const core::StreamStats& stats) {
  ctx.metric("stream_block_cycles", static_cast<double>(stats.block_cycles));
  ctx.metric("stream_blocks", static_cast<double>(stats.blocks));
  ctx.metric("stream_cycles", static_cast<double>(stats.cycles));
  ctx.metric("stream_peak_buffer_words", static_cast<double>(stats.peak_buffer_words));
}

std::string corner_key(const tech::PvtCorner& corner) {
  std::string key = tech::to_string(corner.process) + "_" +
                    std::to_string(static_cast<int>(corner.temp_c)) + "C";
  if (corner.ir_drop_fraction > 0.0)
    key += "_" + std::to_string(static_cast<int>(corner.ir_drop_fraction * 100.0 + 0.5)) +
           "ir";
  return key;
}

void run_closed_loop_job(const core::ScenarioSpec& spec, ScenarioContext& ctx) {
  const auto& system = system_for_job(spec.widths.at(0), spec.lut_tolerance);
  const core::ControllerSpec& controller = spec.controllers.at(0);

  // Either every trace resident (legacy) or one lazily-executed stream per
  // trace: the reports — and therefore every metric below — are
  // bit-identical between the two paths (tests/stream_test.cpp).
  std::vector<trace::Trace> traces;
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  std::vector<std::string> trace_names;
  if (spec.stream) {
    sources = sources_for(spec, ctx.cycles);
    for (const auto& s : sources) trace_names.push_back(s->name());
  } else {
    traces = traces_for(spec, ctx.cycles);
    for (const auto& t : traces) trace_names.push_back(t.name);
  }
  core::StreamStats stream_stats;

  Table table({"Corner", "Trace", "Gain (%)", "Err (%)", "Avg V (mV)", "Floor (mV)"});
  for (const auto& corner : spec.corners) {
    std::fprintf(stderr, "[%s @ %s]\n", controller.label().c_str(),
                 corner.name().c_str());
    std::vector<core::DvsRunReport> reports;
    std::vector<double> wall_tracking;
    std::uint64_t env_updates = 0;
    switch (controller.kind) {
      case dvs::ControllerKind::threshold: {
        if (spec.drift.enabled) {
          // Drift rides on a 1-lane BusSystem; a zero-drift schedule is
          // byte-identical to the plain drivers (tests/drift_test.cpp),
          // so this branch only fires when the schedule actually moves.
          sys::SystemRunConfig cfg;
          cfg.controller = controller.threshold;
          cfg.engine = spec.engine;
          cfg.timing_jitter_sigma = spec.timing_jitter_sigma;
          cfg.lut_tolerance = spec.lut_tolerance;
          cfg.drift = sys::schedule_from_spec(spec.drift, ctx.cycles);
          const sys::BusSystem one_lane({{&system, 1.0}});
          const std::size_t runs = spec.stream ? sources.size() : traces.size();
          for (std::size_t t = 0; t < runs; ++t) {
            sys::SystemRunReport rep;
            if (spec.stream) {
              std::vector<std::unique_ptr<trace::TraceSource>> one;
              one.push_back(std::move(sources[t]));
              rep = one_lane.run_closed_loop_streamed(corner, one, cfg, {},
                                                      &stream_stats);
              sources[t] = std::move(one.front());  // reused by later corners
            } else {
              rep = one_lane.run_closed_loop(corner, {traces[t]}, cfg);
            }
            reports.push_back(rep.per_bus.front());
            wall_tracking.push_back(rep.wall_tracking_error);
            env_updates += rep.env_updates;
          }
          break;
        }
        core::DvsRunConfig cfg;
        cfg.controller = controller.threshold;
        cfg.engine = spec.engine;
        cfg.timing_jitter_sigma = spec.timing_jitter_sigma;
        cfg.lut_tolerance = spec.lut_tolerance;
        reports = spec.stream
                      ? core::run_closed_loop_suite_streamed(system, corner, sources,
                                                             cfg, {}, &stream_stats)
                      : core::run_closed_loop_suite(system, corner, traces, cfg);
        break;
      }
      case dvs::ControllerKind::proportional: {
        core::ProportionalRunConfig cfg;
        cfg.controller = controller.proportional;
        cfg.engine = spec.engine;
        cfg.timing_jitter_sigma = spec.timing_jitter_sigma;
        if (spec.stream) {
          for (const auto& s : sources)
            reports.push_back(core::run_closed_loop_proportional_streamed(
                system, corner, *s, cfg, {}, &stream_stats));
        } else {
          for (const auto& t : traces)
            reports.push_back(
                core::run_closed_loop_proportional(system, corner, t, cfg));
        }
        break;
      }
      case dvs::ControllerKind::fixed_vs:
        reports = spec.stream
                      ? core::run_fixed_vs_suite_streamed(system, corner, sources,
                                                          spec.engine,
                                                          spec.timing_jitter_sigma, {},
                                                          &stream_stats)
                      : core::run_fixed_vs_suite(system, corner, traces, spec.engine,
                                                 spec.timing_jitter_sigma);
        break;
    }
    for (std::size_t t = 0; t < trace_names.size(); ++t) {
      const core::DvsRunReport& r = reports[t];
      table.row()
          .add(corner.name())
          .add(trace_names[t])
          .add(100.0 * r.energy_gain(), 1)
          .add(100.0 * r.error_rate(), 2)
          .add(to_mV(r.average_supply), 0)
          .add(to_mV(r.floor_supply), 0);
      const std::string key = corner_key(corner) + "_" + trace_names[t];
      ctx.metric(key + "_gain", r.energy_gain());
      ctx.metric(key + "_error_rate", r.error_rate());
      ctx.metric(key + "_avg_supply", r.average_supply);
      if (spec.drift.enabled)
        ctx.metric(key + "_wall_tracking", wall_tracking.at(t));
    }
    if (spec.drift.enabled)
      ctx.metric(corner_key(corner) + "_env_updates",
                 static_cast<double>(env_updates));
  }
  ctx.table("closed_loop", table);
  ctx.note("controller", controller.label());
  ctx.note("engine", bus::to_string(spec.engine));
  ctx.note("width", std::to_string(spec.widths.at(0)));
  ctx.note("trace_mode", spec.stream ? "streamed" : "materialized");
  if (spec.drift.enabled) ctx.note("drift", "enabled");
  if (spec.lut_tolerance > 0.0)
    ctx.note("lut_tolerance", std::to_string(spec.lut_tolerance));
  if (spec.stream) record_stream_stats(ctx, stream_stats);
}

// N buses of mixed widths sharing one regulator (sys::BusSystem): the
// arbitration policy fuses per-lane window error counts into the single
// threshold-controller input; per-lane and system-aggregate metrics land
// under <corner>_bus<i>_* / <corner>_system_* (docs/bench-reports.md).
void run_multi_bus_job(const core::ScenarioSpec& spec, ScenarioContext& ctx) {
  std::vector<sys::BusLane> lanes;
  lanes.reserve(spec.buses.size());
  for (const auto& lane_spec : spec.buses)
    lanes.push_back(
        {&system_for_job(lane_spec.width, spec.lut_tolerance), lane_spec.weight});
  const sys::BusSystem system(std::move(lanes));

  sys::SystemRunConfig cfg;
  cfg.controller = spec.controllers.at(0).threshold;
  cfg.engine = spec.engine;
  cfg.timing_jitter_sigma = spec.timing_jitter_sigma;
  cfg.lut_tolerance = spec.lut_tolerance;
  cfg.arbitration = spec.arbitration;
  cfg.drift = sys::schedule_from_spec(spec.drift, ctx.cycles);

  // Sources are cloned inside the streamed run, so one set serves every
  // corner — mirroring the materialized path's trace reuse.
  std::vector<trace::Trace> traces;
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  for (const auto& lane_spec : spec.buses) {
    if (spec.stream)
      sources.push_back(source_for_lane(lane_spec.trace, lane_spec.width,
                                        ctx.cycles, spec.bus_invert));
    else
      traces.push_back(trace_for_lane(lane_spec.trace, lane_spec.width, ctx.cycles,
                                      spec.bus_invert));
  }
  core::StreamStats stream_stats;

  Table table({"Corner", "Bus", "Gain (%)", "Err (%)", "Avg V (mV)", "Floor (mV)"});
  for (const auto& corner : spec.corners) {
    std::fprintf(stderr, "[%zu-bus %s @ %s]\n", spec.buses.size(),
                 dvs::to_string(spec.arbitration).c_str(), corner.name().c_str());
    const sys::SystemRunReport report =
        spec.stream
            ? system.run_closed_loop_streamed(corner, sources, cfg, {}, &stream_stats)
            : system.run_closed_loop(corner, traces, cfg);
    const std::string ckey = corner_key(corner);
    for (std::size_t b = 0; b < report.per_bus.size(); ++b) {
      const core::DvsRunReport& r = report.per_bus[b];
      table.row()
          .add(corner.name())
          .add("bus" + std::to_string(b) + "_w" + std::to_string(spec.buses[b].width))
          .add(100.0 * r.energy_gain(), 1)
          .add(100.0 * r.error_rate(), 2)
          .add(to_mV(r.average_supply), 0)
          .add(to_mV(r.floor_supply), 0);
      const std::string key = ckey + "_bus" + std::to_string(b);
      ctx.metric(key + "_gain", r.energy_gain());
      ctx.metric(key + "_error_rate", r.error_rate());
      ctx.metric(key + "_avg_supply", r.average_supply);
    }
    ctx.metric(ckey + "_system_gain", report.energy_gain());
    ctx.metric(ckey + "_system_error_rate", report.error_rate());
    ctx.metric(ckey + "_system_avg_supply", report.average_supply);
    ctx.metric(ckey + "_system_wall_tracking", report.wall_tracking_error);
    if (spec.drift.enabled)
      ctx.metric(ckey + "_env_updates", static_cast<double>(report.env_updates));
  }
  ctx.table("multi_bus", table);
  ctx.note("buses", std::to_string(spec.buses.size()));
  ctx.note("arbitration", dvs::to_string(spec.arbitration));
  ctx.note("engine", bus::to_string(spec.engine));
  ctx.note("trace_mode", spec.stream ? "streamed" : "materialized");
  if (spec.drift.enabled) ctx.note("drift", "enabled");
  if (spec.lut_tolerance > 0.0)
    ctx.note("lut_tolerance", std::to_string(spec.lut_tolerance));
  if (spec.stream) record_stream_stats(ctx, stream_stats);
}

void run_static_sweep_job(const core::ScenarioSpec& spec, ScenarioContext& ctx) {
  const auto& system = system_for_job(spec.widths.at(0), spec.lut_tolerance);
  std::vector<trace::Trace> traces;
  std::unique_ptr<trace::TraceSource> source;
  if (spec.stream) {
    // The materialized sweep runs its traces back to back through one
    // simulator, so the streamed sweep sees their concatenation.
    auto parts = sources_for(spec, ctx.cycles);
    source = parts.size() == 1
                 ? std::move(parts.front())
                 : trace::concatenate_sources(std::move(parts), "suite");
  } else {
    traces = traces_for(spec, ctx.cycles);
  }
  core::StreamStats stream_stats;

  for (const auto& corner : spec.corners) {
    std::fprintf(stderr, "[sweeping %s]\n", corner.name().c_str());
    const core::StaticSweepResult sweep =
        spec.stream ? core::static_voltage_sweep_streamed(
                          system, corner, *source, spec.timing_jitter_sigma,
                          spec.engine, {}, &stream_stats)
                    : core::static_voltage_sweep(system, corner, traces,
                                                 spec.timing_jitter_sigma, spec.engine);
    Table table({"Supply (mV)", "Error Rate (%)", "Bus Energy (norm)",
                 "Bus+Recovery (norm)"});
    for (auto it = sweep.points.rbegin(); it != sweep.points.rend(); ++it) {
      table.row()
          .add(to_mV(it->supply), 0)
          .add(100.0 * it->error_rate, 2)
          .add(it->norm_bus_energy, 3)
          .add(it->norm_total_energy, 3);
    }
    ctx.table(corner_key(corner), table);
    ctx.metric(corner_key(corner) + "_floor_mV", to_mV(sweep.floor_supply));
    ctx.metric(corner_key(corner) + "_norm_energy_at_floor",
               sweep.points.front().norm_total_energy);
  }
  ctx.note("engine", bus::to_string(spec.engine));
  ctx.note("width", std::to_string(spec.widths.at(0)));
  ctx.note("trace_mode", spec.stream ? "streamed" : "materialized");
  if (spec.lut_tolerance > 0.0)
    ctx.note("lut_tolerance", std::to_string(spec.lut_tolerance));
  if (spec.stream) record_stream_stats(ctx, stream_stats);
}

// ----------------------------------------------------------------- run-one

// Executes one expanded job in-process through the shared run_scenario
// path (identical reports to the legacy binaries by construction).
int run_one(const std::string& spec_path, const std::string& json_flag) {
  const core::ScenarioSpec spec =
      core::ScenarioSpec::from_json(Json::parse_file(spec_path));

  Scenario scenario;
  if (spec.kind == core::ScenarioSpec::Kind::bench) {
    scenario = scenario_by_name(spec.bench);
  } else {
    if (spec.cycles == 0)
      throw std::invalid_argument("job '" + spec.name +
                                  "': declarative scenarios need a cycle budget "
                                  "(scenario 'cycles' or campaign defaults)");
    scenario.name = spec.name;
    switch (spec.kind) {
      case core::ScenarioSpec::Kind::closed_loop:
        scenario.description = "declarative closed-loop DVS (" +
                               spec.controllers.at(0).label() + ", " +
                               std::to_string(spec.widths.at(0)) + " wires)";
        break;
      case core::ScenarioSpec::Kind::multi_bus:
        scenario.description = "declarative multi-bus shared-supply DVS (" +
                               std::to_string(spec.buses.size()) + " buses, " +
                               dvs::to_string(spec.arbitration) + ")";
        break;
      default:
        scenario.description = "declarative static voltage sweep (" +
                               std::to_string(spec.widths.at(0)) + " wires)";
        break;
    }
    if (spec.drift.enabled) scenario.description += " [drift]";
    if (spec.stream) scenario.description += " [streamed]";
    scenario.paper_ref = "campaign spec " + spec_path;
    scenario.default_cycles = spec.cycles;
    scenario.run = [spec](ScenarioContext& ctx) {
      if (spec.kind == core::ScenarioSpec::Kind::closed_loop)
        run_closed_loop_job(spec, ctx);
      else if (spec.kind == core::ScenarioSpec::Kind::multi_bus)
        run_multi_bus_job(spec, ctx);
      else
        run_static_sweep_job(spec, ctx);
    };
  }

  // Synthesize the exact argv the standalone binary would have been given.
  std::vector<std::string> args;
  args.push_back("campaign run-one");
  if (scenario.default_cycles > 0 && spec.cycles > 0)
    args.push_back("--cycles=" + std::to_string(spec.cycles));
  args.push_back("--threads=" + std::to_string(spec.threads));
  args.push_back(json_flag);
  for (const auto& [key, value] : spec.flags) args.push_back("--" + key + "=" + value);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& arg : args) argv.push_back(arg.data());
  return run_scenario(static_cast<int>(argv.size()), argv.data(), scenario);
}

// --------------------------------------------------------------------- run

int run_campaign(const std::string& self, const std::string& campaign_path,
                 CliFlags& flags) {
  const core::CampaignSpec campaign = core::CampaignSpec::from_file(campaign_path);
  std::vector<core::ScenarioJob> jobs = core::expand_campaign(campaign);
  // Fail-fast contract (DESIGN.md §11): a typo'd bench name must surface
  // now, not after the jobs ahead of it have burned their budgets.
  for (const auto& job : jobs)
    if (job.spec.kind == core::ScenarioSpec::Kind::bench)
      scenario_by_name(job.spec.bench);  // throws, listing the known names

  svc::ServiceConfig config;
  config.out_dir = flags.get("out", "campaign_out/" + campaign.name);
  config.cache_dir = flags.get("cache", "");
  config.runner = self;  // jobs execute as `campaign run-one` children
  config.workers = static_cast<unsigned>(
      std::max<std::int64_t>(1, flags.get_int("jobs", 1)));
  config.force = flags.get_bool("force", false);
  const bool dry_run = flags.get_bool("dry_run", false);
  const std::string consolidated = flags.get("json", "BENCH_campaign.json");
  flags.reject_unused();

  std::printf("campaign '%s': %zu scenario(s) -> %zu job(s)\n", campaign.name.c_str(),
              campaign.scenarios.size(), jobs.size());
  if (dry_run) {
    for (const auto& job : jobs) std::printf("  %s\n", job.name.c_str());
    return 0;
  }

  // All the heavy lifting — durable queue reconciliation (resume), the
  // content-hash result cache, worker scheduling, status snapshots — is
  // the shared service; this client keeps the PR-4 CLI and output shape.
  svc::CampaignService service(campaign, std::move(jobs), std::move(config));
  service.prepare();
  const svc::CampaignService::Summary summary = service.run();

  svc::write_file_atomic(consolidated, service.aggregate().dump(2) + "\n");
  const std::size_t cached =
      summary.cached_prior + static_cast<std::size_t>(summary.cache_hits);
  std::printf("\n[%s: %zu job(s), %zu cached, %zu failed, %.2f s] wrote %s\n",
              campaign.name.c_str(), summary.jobs_total, cached, summary.failed,
              summary.wall_seconds, consolidated.c_str());
  return summary.failed == 0 ? 0 : 1;
}

int list_scenarios(const CliFlags& flags) {
  if (!flags.positional().empty() && flags.positional().size() >= 2) {
    const core::CampaignSpec campaign =
        core::CampaignSpec::from_file(flags.positional()[1]);
    std::printf("campaign '%s': %zu scenario(s)\n", campaign.name.c_str(),
                campaign.scenarios.size());
    for (const auto& job : core::expand_campaign(campaign))
      std::printf("  %s\n", job.name.c_str());
    return 0;
  }
  std::printf("registered bench scenarios (usable as \"bench\" spec entries):\n");
  for (const auto& scenario : all_scenarios())
    std::printf("  %-26s %s\n", scenario.name.c_str(), scenario.description.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    const auto& positional = flags.positional();
    const std::string command = positional.empty() ? "" : positional[0];

    if (command == "list") {
      const int rc = list_scenarios(flags);
      flags.reject_unused();
      return rc;
    }
    if (command == "run") {
      if (positional.size() != 2)
        throw std::invalid_argument("usage: campaign run <campaign.json> [--out=DIR] "
                                    "[--jobs=N] [--force] [--dry_run] [--json=PATH]");
      return run_campaign(argv[0], positional[1], flags);
    }
    if (command == "run-one") {
      if (positional.size() != 2)
        throw std::invalid_argument("usage: campaign run-one <job.spec.json> "
                                    "[--json=PATH]");
      const std::string json_flag = "--json=" + flags.get("json", "true");
      flags.reject_unused();
      return run_one(positional[1], json_flag);
    }
    throw std::invalid_argument(
        "usage: campaign run <campaign.json> | campaign list [<campaign.json>] | "
        "campaign run-one <job.spec.json>");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign: %s\n", e.what());
    return 2;
  }
}

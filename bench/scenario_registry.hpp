// Registry of every reproduction scenario (DESIGN.md §11).
//
// The standalone bench binaries are thin launchers over this registry, and
// the campaign runner resolves `"bench": "<name>"` spec entries against it
// — both run the identical Scenario object through run_scenario(), which is
// what keeps their JSON reports byte-identical.
#pragma once

#include <string>
#include <vector>

#include "bench_common.hpp"

namespace razorbus::bench {

// All registered scenarios, in the DESIGN.md §4 experiment-index order.
const std::vector<Scenario>& all_scenarios();

// Lookup by scenario name ("fig4_voltage_sweep", ..., "engine"); throws
// std::invalid_argument listing the known names on a miss.
const Scenario& scenario_by_name(const std::string& name);

}  // namespace razorbus::bench

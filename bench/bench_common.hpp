// Shared plumbing for the reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper. They all
// need the same setup: the characterised paper bus (cached on disk after
// the first run) and the 10 benchmark traces. Cycle counts default to a
// laptop-friendly fraction of the paper's 10M cycles per benchmark and can
// be raised with --cycles=<n>.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/kernels.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace razorbus::bench {

inline core::SystemOptions options_with_progress(const char* what) {
  core::SystemOptions options;
  std::string label = what;
  options.progress = [label, printed = -1](int done, int total) mutable {
    const int pct = total ? done * 100 / total : 100;
    if (pct / 10 != printed) {
      printed = pct / 10;
      std::fprintf(stderr, "[characterising %s: %d%%]\n", label.c_str(), pct);
    }
  };
  return options;
}

// The characterised paper bus (built once, then loaded from the cache).
inline const core::DvsBusSystem& paper_system() {
  static const core::DvsBusSystem system(interconnect::BusDesign::paper_bus(),
                                         options_with_progress("paper bus"));
  return system;
}

// All 10 benchmark traces at `cycles` cycles each, in Table 1 order.
inline std::vector<trace::Trace> suite_traces(std::size_t cycles) {
  std::vector<trace::Trace> traces;
  for (const auto& bench : cpu::spec2000_suite()) {
    std::fprintf(stderr, "[tracing %s: %zu cycles]\n", bench.name.c_str(), cycles);
    traces.push_back(bench.capture(cycles));
  }
  return traces;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace razorbus::bench

// Shared plumbing for the reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md §4 for the index). They all share the same shape: characterise
// the paper bus (cached on disk after the first run), capture traces, run
// one experiment, print tables. The scenario runner factors that shape out
// of the 13 mains: flag parsing (--cycles, --json, --threads), the banner,
// wall-clock timing, and a machine-readable JSON report so the result and
// perf trajectory of every scenario can be tracked across commits.
// --threads=N sizes the shared execution pool (util::set_global_threads);
// every experiment result is bit-identical at any N (DESIGN.md §9) — only
// wall-clock/timing metrics (wall_seconds, threads, perf_microbench's
// throughput numbers) vary.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "cpu/kernels.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace razorbus::bench {

core::SystemOptions options_with_progress(const char* what);

// The characterised paper bus (built once, then loaded from the cache).
const core::DvsBusSystem& paper_system();

// All 10 benchmark traces at `cycles` cycles each, in Table 1 order.
std::vector<trace::Trace> suite_traces(std::size_t cycles);

void print_header(const char* title, const char* paper_ref);

// ------------------------------------------------------- scenario runner

// Handed to a scenario's run(): parsed flags, the resolved cycle budget,
// and sinks for results. Everything recorded here lands in the JSON report
// when the binary is invoked with --json[=path].
class ScenarioContext {
 public:
  explicit ScenarioContext(CliFlags& flags) : flags_(flags) {}

  CliFlags& flags() { return flags_; }
  std::size_t cycles = 0;  // resolved --cycles (scenario default applied)

  // Record a named scalar result (gain, error rate, throughput, ...).
  void metric(const std::string& name, double value) { metrics_.set(name, value); }
  // Record a named string annotation.
  void note(const std::string& name, const std::string& value) {
    notes_.set(name, value);
  }
  // Pretty-print a table to stdout AND record it in the report.
  void table(const std::string& name, const Table& t);

  Json& metrics() { return metrics_; }

 private:
  friend int run_scenario(int argc, char** argv, const struct Scenario& scenario);

  CliFlags& flags_;
  Json metrics_ = Json::object();
  Json notes_ = Json::object();
  Json tables_ = Json::object();
};

struct Scenario {
  std::string name;         // binary-style identifier (fig4_voltage_sweep)
  std::string description;  // one-line banner text
  std::string paper_ref;    // which table/figure/section it reproduces
  // Default --cycles value; 0 means the scenario takes no cycle budget.
  std::size_t default_cycles = 0;
  // Extra flag names run() will query (beyond --cycles/--json). Declared
  // up front so a typo'd flag fails BEFORE the expensive run, not after.
  std::vector<std::string> extra_flags;
  std::function<void(ScenarioContext&)> run;
};

// Shared main(): parses flags, prints the banner, times run(), rejects
// unknown flags, and with --json[=path] writes the report (default path
// BENCH_<name>.json). Returns the process exit code.
int run_scenario(int argc, char** argv, const Scenario& scenario);

}  // namespace razorbus::bench

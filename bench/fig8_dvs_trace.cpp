// Thin launcher for the fig8_dvs_trace scenario. The body lives in
// bench/scenarios/fig8_dvs_trace.cpp, shared with the campaign runner
// through scenario_registry.hpp — which is what keeps the standalone
// binary's JSON report byte-identical to a campaign job's.
#include "scenario_registry.hpp"

int main(int argc, char** argv) {
  using namespace razorbus::bench;
  return run_scenario(argc, argv, scenario_by_name("fig8_dvs_trace"));
}

// Fig. 8: supply voltage and instantaneous (10k-cycle window) error rate
// while the 10 benchmarks run back to back under the closed-loop DVS
// controller at the typical corner (typical process, 100C, no IR drop).
#include <iostream>

#include "bench_common.hpp"

using namespace razorbus;
using namespace razorbus::bench;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 1000000));
  const auto max_rows = static_cast<std::size_t>(flags.get_int("max_rows", 120));
  flags.reject_unused();

  print_header("fig8_dvs_trace: closed-loop supply & error-rate time series", "Fig. 8");
  std::printf("Cycles per benchmark: %zu (paper: 10M; raise with --cycles=N)\n", cycles);

  const auto corner = tech::typical_corner();
  const auto traces = suite_traces(cycles);

  core::DvsRunConfig cfg;
  cfg.record_series = true;
  const core::ConsecutiveRunReport report =
      core::run_consecutive(paper_system(), corner, traces, cfg);

  // Per-program summary (regions 1..10 of the figure).
  Table summary({"#", "Benchmark", "Avg V (mV)", "Avg err (%)", "Gain (%)"});
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& r = report.per_trace[i];
    summary.row()
        .add(static_cast<long long>(i + 1))
        .add(traces[i].name)
        .add(to_mV(r.average_supply), 0)
        .add(100.0 * r.totals.error_rate(), 2)
        .add(100.0 * r.energy_gain(), 1);
  }
  summary.print(std::cout);

  // Subsampled window series.
  std::printf("\nWindow series (subsampled to <= %zu rows; full series has %zu windows):\n",
              max_rows, report.series.size());
  Table series({"Cycle (k)", "Supply (mV)", "Window err (%)"});
  const std::size_t stride = std::max<std::size_t>(1, report.series.size() / max_rows);
  double max_window = 0.0;
  for (std::size_t i = 0; i < report.series.size(); ++i) {
    max_window = std::max(max_window, report.series[i].error_rate);
    if (i % stride) continue;
    const auto& s = report.series[i];
    series.row()
        .add(static_cast<double>(s.end_cycle) / 1000.0, 0)
        .add(to_mV(s.supply), 0)
        .add(100.0 * s.error_rate, 2);
  }
  series.print(std::cout);
  std::printf("\nPeak instantaneous (10k-window) error rate: %.2f%%\n", 100.0 * max_window);

  std::printf(
      "\nExpected shape (paper): the supply descends from 1.2 V, settles at a\n"
      "program-specific level, and visibly re-adapts at program boundaries;\n"
      "per-program average error rates stay ~<=2%% while instantaneous rates\n"
      "can spike to ~6%% because of the regulator ramp delay.\n");
  return 0;
}

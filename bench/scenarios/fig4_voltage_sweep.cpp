// Fig. 4: normalized energy and error rate vs statically scaled supply,
// for (a) slow process / 100C / 10% IR drop and (b) typical process / 100C /
// no IR drop, with all 10 benchmarks combined.
#include <iostream>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

namespace {

void sweep_for(ScenarioContext& ctx, const tech::PvtCorner& corner,
               const std::vector<trace::Trace>& traces) {
  const core::StaticSweepResult sweep =
      core::static_voltage_sweep(paper_system(), corner, traces);

  std::printf("\nPVT corner: %s  (shadow-safe floor %.0f mV)\n", corner.name().c_str(),
              to_mV(sweep.floor_supply));
  Table table({"Supply (mV)", "Error Rate (%)", "Bus Energy (norm)",
               "Bus+Recovery (norm)"});
  for (auto it = sweep.points.rbegin(); it != sweep.points.rend(); ++it) {
    table.row()
        .add(to_mV(it->supply), 0)
        .add(100.0 * it->error_rate, 2)
        .add(it->norm_bus_energy, 3)
        .add(it->norm_total_energy, 3);
  }
  ctx.table(corner.name(), table);
  ctx.metric(corner.name() + "_floor_mV", to_mV(sweep.floor_supply));
  ctx.metric(corner.name() + "_norm_energy_at_floor",
             sweep.points.front().norm_total_energy);
}

}  // namespace

Scenario make_fig4_voltage_sweep_scenario() {
  Scenario scenario;
  scenario.name = "fig4_voltage_sweep";
  scenario.description = "energy & error rate vs scaled supply";
  scenario.paper_ref = "Fig. 4(a) and 4(b)";
  scenario.default_cycles = 200000;
  scenario.run = [](ScenarioContext& ctx) {
    std::printf("Combined trace: 10 benchmarks x %zu cycles "
                "(paper: 10M each; raise with --cycles=N)\n", ctx.cycles);

    const auto traces = suite_traces(ctx.cycles);
    sweep_for(ctx, tech::worst_case_corner(), traces);  // Fig. 4(a)
    sweep_for(ctx, tech::typical_corner(), traces);     // Fig. 4(b)

    std::printf(
        "\nExpected shape (paper): at the worst corner errors appear immediately\n"
        "below 1200 mV; at the typical corner the bus is error-free down to\n"
        "~980 mV; energy falls roughly quadratically; the recovery overhead\n"
        "curve sits just above the bus energy curve.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

// Ablation: repeater sizing vs DVS opportunity.
//
// The paper sizes repeaters purely for the worst-case delay target (600 ps)
// and cites power-optimal repeater methodologies ([3],[4]) as orthogonal.
// This bench quantifies the interaction: undersized repeaters burn less
// repeater cap but leave no timing slack to convert into voltage; oversized
// ones are faster but pay gate capacitance on every transition. For each
// sizing (relative to the paper's delay-sized value) we report the
// worst-case delay, the per-cycle energy at nominal, and the closed-loop
// DVS gain — when the design still meets the 600 ps worst-case contract.
#include <iostream>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

Scenario make_ablation_repeater_scenario() {
  Scenario scenario;
  scenario.name = "ablation_repeater";
  scenario.description = "repeater sizing vs the DVS opportunity";
  scenario.paper_ref = "sizing philosophy of Section 3 (related work [3],[4])";
  scenario.default_cycles = 300000;
  scenario.run = [](ScenarioContext& ctx) {
    const double nominal_size = paper_system().design().repeater_size;
    const trace::Trace workload = cpu::benchmark_by_name("vortex").capture(ctx.cycles);
    const auto corner = tech::typical_corner();
    const auto worst = tech::worst_case_corner();

    Table table({"Size (x delay-opt)", "Repeater size", "Worst delay @WC (ps)",
                 "Meets 600ps", "E/cycle @nom (pJ)", "DVS gain (%)"});

    for (const double mult : {0.6, 0.8, 1.0, 1.4}) {
      interconnect::BusDesign design = interconnect::BusDesign::paper_bus();
      design.repeater_size = nominal_size * mult;
      char label[32];
      std::snprintf(label, sizeof(label), "repeaters x%.1f", mult);
      const core::DvsBusSystem system(design, options_with_progress(label));

      const double wc_delay = system.nominal_worst_delay(worst);
      const bool meets = wc_delay <= design.main_capture_limit() * 1.001;

      // Per-cycle energy at the nominal supply on the reference bus.
      const auto ref = bus::BusSimulator::run_reference(system.design(), system.table(),
                                                        corner, workload.words);
      const double e_cycle = ref.bus_energy / static_cast<double>(ref.cycles);

      double gain = 0.0;
      if (meets) {
        const auto dvs =
            core::run_closed_loop(system, corner, workload, core::DvsRunConfig{});
        gain = dvs.energy_gain();
        ctx.metric("gain_x" + format_fixed(mult, 1), gain);
      }

      table.row()
          .add(mult, 1)
          .add(design.repeater_size, 1)
          .add(to_ps(wc_delay), 0)
          .add(meets ? "yes" : "NO")
          .add(to_pJ(e_cycle), 2)
          .add(meets ? format_fixed(100.0 * gain, 1) : "n/a");
    }
    ctx.table("repeater_sizing", table);

    std::printf(
        "\nReading the table: the paper's delay-sized repeaters (x1.0) are the\n"
        "smallest that meet the worst-case contract; oversizing buys little\n"
        "extra DVS headroom but pays gate capacitance on every switch, while\n"
        "undersizing violates the 600 ps design contract outright.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

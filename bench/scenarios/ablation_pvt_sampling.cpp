// Ablation / extension: Monte-Carlo PVT sampling.
//
// The paper treats process, temperature and IR drop as independent worst
// cases and notes that "incorporating such dependencies would involve
// complex models". As an extension we sample a population of operating
// conditions (discrete process corner, continuous temperature and IR drop)
// and report the distribution of closed-loop DVS gains — the expected
// energy saving for a part drawn at random, rather than at hand-picked
// corners. The sampling itself lives in core::pvt_sample_gains, sharded
// one sample per shard with a per-sample Rng stream (DESIGN.md §9), so the
// population is identical at any --threads=N.
#include <iostream>

#include "scenarios/scenarios.hpp"
#include "util/stats.hpp"

namespace razorbus::bench {

Scenario make_ablation_pvt_sampling_scenario() {
  Scenario scenario;
  scenario.name = "ablation_pvt_sampling";
  scenario.description = "DVS gain distribution over random PVT";
  scenario.paper_ref = "extension of Section 4 (the paper sweeps corners only)";
  scenario.default_cycles = 300000;
  scenario.extra_flags = {"samples", "seed"};
  scenario.run = [](ScenarioContext& ctx) {
    core::PvtSampleConfig config;
    config.samples = static_cast<int>(ctx.flags().get_int("samples", 24));
    config.seed = static_cast<std::uint64_t>(ctx.flags().get_int("seed", 2025));

    const trace::Trace trace = cpu::benchmark_by_name("vortex").capture(ctx.cycles);
    std::printf("Workload: vortex, %zu cycles, %d sampled operating points\n", ctx.cycles,
                config.samples);

    const core::PvtSampleResult result =
        core::pvt_sample_gains(paper_system(), trace, config);

    Histogram gain_hist(0.0, 0.6, 12);
    Table table({"#", "Process", "Temp (C)", "IR drop (%)", "Gain (%)", "Err (%)"});
    for (std::size_t s = 0; s < result.samples.size(); ++s) {
      const core::PvtSample& sample = result.samples[s];
      gain_hist.add(sample.report.energy_gain());
      table.row()
          .add(static_cast<long long>(s + 1))
          .add(tech::to_string(sample.corner.process))
          .add(sample.corner.temp_c, 0)
          .add(100.0 * sample.corner.ir_drop_fraction, 1)
          .add(100.0 * sample.report.energy_gain(), 1)
          .add(100.0 * sample.report.error_rate(), 2);
    }
    ctx.table("samples", table);
    ctx.metric("gain_mean", result.gain_stats.mean());
    ctx.metric("gain_stddev", result.gain_stats.stddev());
    ctx.metric("gain_min", result.gain_stats.min());
    ctx.metric("gain_max", result.gain_stats.max());
    ctx.metric("err_mean", result.err_stats.mean());

    std::printf(
        "\nGain distribution: mean %.1f%%, stddev %.1f%%, min %.1f%%, max %.1f%%\n",
        100.0 * result.gain_stats.mean(), 100.0 * result.gain_stats.stddev(),
        100.0 * result.gain_stats.min(), 100.0 * result.gain_stats.max());
    std::printf("Average error rate across samples: %.2f%%\n",
                100.0 * result.err_stats.mean());
    std::printf("\nHistogram (gain bucket -> share of samples):\n");
    for (std::size_t b = 0; b < gain_hist.bins(); ++b) {
      // razorlint: allow(float-eq): bucket counts are sums of exact 1.0
      // increments, so "empty bucket" is an exact 0.0.
      if (gain_hist.count(b) == 0.0) continue;
      std::printf("  %4.0f-%4.0f%% : %5.1f%%\n", 100.0 * gain_hist.bin_lo(b),
                  100.0 * gain_hist.bin_hi(b), 100.0 * gain_hist.fraction(b));
    }
    std::printf(
        "\nReading the output: every sampled part saves energy (the controller\n"
        "adapts), with most of the population well above the worst-corner\n"
        "result — the expected-case argument for error-tolerant DVS.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

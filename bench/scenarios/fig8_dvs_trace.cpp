// Fig. 8: supply voltage and instantaneous (10k-cycle window) error rate
// while the 10 benchmarks run back to back under the closed-loop DVS
// controller at the typical corner (typical process, 100C, no IR drop).
#include <algorithm>
#include <iostream>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

Scenario make_fig8_dvs_trace_scenario() {
  Scenario scenario;
  scenario.name = "fig8_dvs_trace";
  scenario.description = "closed-loop supply & error-rate time series";
  scenario.paper_ref = "Fig. 8";
  scenario.default_cycles = 1000000;
  scenario.extra_flags = {"max_rows"};
  scenario.run = [](ScenarioContext& ctx) {
    const auto max_rows = static_cast<std::size_t>(ctx.flags().get_int("max_rows", 120));
    std::printf("Cycles per benchmark: %zu (paper: 10M; raise with --cycles=N)\n",
                ctx.cycles);

    const auto corner = tech::typical_corner();
    const auto traces = suite_traces(ctx.cycles);

    core::DvsRunConfig cfg;
    cfg.record_series = true;
    const core::ConsecutiveRunReport report =
        core::run_consecutive(paper_system(), corner, traces, cfg);

    // Per-program summary (regions 1..10 of the figure).
    Table summary({"#", "Benchmark", "Avg V (mV)", "Avg err (%)", "Gain (%)"});
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto& r = report.per_trace[i];
      summary.row()
          .add(static_cast<long long>(i + 1))
          .add(traces[i].name)
          .add(to_mV(r.average_supply), 0)
          .add(100.0 * r.totals.error_rate(), 2)
          .add(100.0 * r.energy_gain(), 1);
      ctx.metric(traces[i].name + "_gain", r.energy_gain());
    }
    ctx.table("per_program", summary);

    // Subsampled window series.
    std::printf(
        "\nWindow series (subsampled to <= %zu rows; full series has %zu windows):\n",
        max_rows, report.series.size());
    Table series({"Cycle (k)", "Supply (mV)", "Window err (%)"});
    const std::size_t stride = std::max<std::size_t>(1, report.series.size() / max_rows);
    double max_window = 0.0;
    for (std::size_t i = 0; i < report.series.size(); ++i) {
      max_window = std::max(max_window, report.series[i].error_rate);
      if (i % stride) continue;
      const auto& s = report.series[i];
      series.row()
          .add(static_cast<double>(s.end_cycle) / 1000.0, 0)
          .add(to_mV(s.supply), 0)
          .add(100.0 * s.error_rate, 2);
    }
    ctx.table("window_series", series);
    ctx.metric("peak_window_error_rate", max_window);
    std::printf("\nPeak instantaneous (10k-window) error rate: %.2f%%\n",
                100.0 * max_window);

    std::printf(
        "\nExpected shape (paper): the supply descends from 1.2 V, settles at a\n"
        "program-specific level, and visibly re-adapts at program boundaries;\n"
        "per-program average error rates stay ~<=2%% while instantaneous rates\n"
        "can spike to ~6%% because of the regulator ramp delay.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

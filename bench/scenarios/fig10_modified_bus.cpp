// Fig. 10 / Section 6: the modified interconnect architecture (Cc/Cg ratio
// x1.95 at constant wire R and constant worst-case load). The worst-case
// delay — and hence the 0%-error curve — is unchanged; the 2% and 5% curves
// gain, and the closed-loop DVS average gain at the worst corner improves
// (paper: 6.3% -> 8.2%).
#include <iostream>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

Scenario make_fig10_modified_bus_scenario() {
  Scenario scenario;
  scenario.name = "fig10_modified_bus";
  scenario.description = "interconnect architecture study";
  scenario.paper_ref = "Fig. 10 + Sec. 6";
  scenario.default_cycles = 100000;
  scenario.extra_flags = {"dvs_cycles", "ratio"};
  scenario.run = [](ScenarioContext& ctx) {
    const auto dvs_cycles =
        static_cast<std::size_t>(ctx.flags().get_int("dvs_cycles", 500000));
    const double ratio = ctx.flags().get_double("ratio", 1.95);

    static const core::DvsBusSystem modified(interconnect::BusDesign::modified_bus(ratio),
                                             options_with_progress("modified bus"));
    std::printf(
        "Original bus Cc/Cg: %.2f; modified: %.2f (x%.2f), worst-case load held\n",
        paper_system().design().parasitics.cc_to_cg_ratio(),
        modified.design().parasitics.cc_to_cg_ratio(), ratio);

    const auto traces = suite_traces(ctx.cycles);

    Table table({"PVT corner", "Delay@1.2V orig/mod (ps)", "Gain 0%: orig/mod (%)",
                 "Gain 2%: orig/mod (%)", "Gain 5%: orig/mod (%)"});
    for (const auto& corner : tech::fig5_corners()) {
      std::fprintf(stderr, "[sweeping %s]\n", corner.name().c_str());
      const auto orig = core::gains_for_targets(
          core::static_voltage_sweep(paper_system(), corner, traces), {0.0, 0.02, 0.05});
      const auto mod = core::gains_for_targets(
          core::static_voltage_sweep(modified, corner, traces), {0.0, 0.02, 0.05});
      auto pair = [](double a, double b) {
        return format_fixed(100.0 * a, 1) + " / " + format_fixed(100.0 * b, 1);
      };
      table.row()
          .add(corner.name())
          .add(format_fixed(to_ps(paper_system().nominal_worst_delay(corner)), 0) +
               " / " + format_fixed(to_ps(modified.nominal_worst_delay(corner)), 0))
          .add(pair(orig[0].energy_gain, mod[0].energy_gain))
          .add(pair(orig[1].energy_gain, mod[1].energy_gain))
          .add(pair(orig[2].energy_gain, mod[2].energy_gain));
    }
    ctx.table("static_gains", table);

    // Section 6 closed-loop claim at the worst corner.
    std::printf("\nClosed-loop DVS at the worst corner (%zu cycles/benchmark):\n",
                dvs_cycles);
    const auto corner = tech::worst_case_corner();
    const auto dvs_traces = suite_traces(dvs_cycles);
    double orig_base = 0.0, orig_tot = 0.0, mod_base = 0.0, mod_tot = 0.0;
    for (const auto& t : dvs_traces) {
      std::fprintf(stderr, "[closed loop: %s]\n", t.name.c_str());
      const auto o =
          core::run_closed_loop(paper_system(), corner, t, core::DvsRunConfig{});
      const auto m = core::run_closed_loop(modified, corner, t, core::DvsRunConfig{});
      orig_base += o.baseline_bus_energy;
      orig_tot += o.totals.total_energy();
      mod_base += m.baseline_bus_energy;
      mod_tot += m.totals.total_energy();
    }
    const double orig_gain = 1.0 - orig_tot / orig_base;
    const double mod_gain = 1.0 - mod_tot / mod_base;
    ctx.metric("worst_corner_dvs_gain_original", orig_gain);
    ctx.metric("worst_corner_dvs_gain_modified", mod_gain);
    std::printf("Average DVS gain: original %.1f%%, modified %.1f%%\n", 100.0 * orig_gain,
                100.0 * mod_gain);

    std::printf(
        "\nExpected shape (paper): the 0%% column is unchanged (worst-case delay\n"
        "held constant); 2%%/5%% columns slightly higher for the modified bus;\n"
        "worst-corner closed-loop average gain improves (paper: 6.3%% -> 8.2%%).\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

// Ablations of the design choices called out in DESIGN.md section 6:
//   (a) controller error-rate band and window size (paper: [1%, 2%], 10k),
//   (b) regulator ramp delay (paper: 2 us = 3000 cycles),
//   (c) shadow clock delay budget (paper: 33% of the cycle), which sets the
//       regulator's safe floor through the shadow-latch constraint.
#include <iostream>

#include "dvs/fixed_vs.hpp"
#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

namespace {

struct LoopResult {
  double gain;
  double err;
  double avg_v;
};

LoopResult run(const trace::Trace& trace, const core::DvsRunConfig& cfg) {
  const auto r =
      core::run_closed_loop(paper_system(), tech::typical_corner(), trace, cfg);
  return {100.0 * r.energy_gain(), 100.0 * r.error_rate(), to_mV(r.average_supply)};
}

}  // namespace

Scenario make_ablation_controller_scenario() {
  Scenario scenario;
  scenario.name = "ablation_controller";
  scenario.description = "controller/regulator/shadow-delay ablations";
  scenario.paper_ref = "design-choice ablations (DESIGN.md section 6)";
  scenario.default_cycles = 600000;
  scenario.run = [](ScenarioContext& ctx) {
    // A single mid-activity benchmark keeps the comparison legible.
    const trace::Trace trace = cpu::benchmark_by_name("vortex").capture(ctx.cycles);
    std::printf("Workload: vortex, %zu cycles, %s\n", ctx.cycles,
                tech::typical_corner().name().c_str());

    // (a) Controller band / window.
    {
      Table table({"Band (low-high %)", "Window (cycles)", "Gain (%)", "Err (%)",
                   "Avg V (mV)"});
      struct Case {
        double lo, hi;
        std::uint64_t window;
      };
      for (const Case& c : {Case{0.01, 0.02, 10000},   // paper default
                            Case{0.005, 0.01, 10000},  // tighter band
                            Case{0.02, 0.05, 10000},   // looser band
                            Case{0.01, 0.02, 2000},    // short window: noisy estimate
                            Case{0.01, 0.02, 50000}}) {  // slow reaction
        core::DvsRunConfig cfg;
        cfg.controller.low_threshold = c.lo;
        cfg.controller.high_threshold = c.hi;
        cfg.controller.window_cycles = c.window;
        const LoopResult r = run(trace, cfg);
        table.row()
            .add(format_fixed(100.0 * c.lo, 1) + "-" + format_fixed(100.0 * c.hi, 1))
            .add(static_cast<long long>(c.window))
            .add(r.gain, 1)
            .add(r.err, 2)
            .add(r.avg_v, 0);
      }
      std::printf("\n(a) Controller error-rate band and window:\n");
      ctx.table("controller_band", table);
    }

    // (b) Regulator ramp delay.
    {
      Table table({"Ramp delay (cycles)", "Gain (%)", "Err (%)", "Avg V (mV)"});
      for (const std::uint64_t delay : {0ull, 3000ull, 15000ull, 60000ull}) {
        core::DvsRunConfig cfg;
        cfg.regulator_delay_cycles = delay;
        const LoopResult r = run(trace, cfg);
        table.row()
            .add(static_cast<long long>(delay))
            .add(r.gain, 1)
            .add(r.err, 2)
            .add(r.avg_v, 0);
      }
      std::printf("\n(b) Regulator ramp delay (paper: 3000 cycles = 2 us):\n");
      ctx.table("regulator_ramp", table);
    }

    // (c) Shadow clock delay budget: a smaller delayed-clock budget raises the
    // shadow-safe floor (less recoverable slack); a larger one deepens it but
    // tightens the short-path constraint. Report the resulting floors.
    {
      Table table({"Shadow delay (% of cycle)", "DVS floor (mV)", "Fixed VS (mV)",
                   "Min-path limit (ps)"});
      for (const double frac : {0.20, 1.0 / 3.0, 0.40}) {
        interconnect::BusDesign design = paper_system().design();
        design.shadow_delay_fraction = frac;
        const double floor = dvs::dvs_floor_voltage(design, paper_system().table(),
                                                    tech::ProcessCorner::typical);
        const double fixed = dvs::fixed_vs_voltage(design, paper_system().table(),
                                                   tech::ProcessCorner::typical);
        table.row()
            .add(100.0 * frac, 0)
            .add(to_mV(floor), 0)
            .add(to_mV(fixed), 0)
            .add(to_ps(frac * design.clock_period()), 0);
      }
      std::printf("\n(c) Shadow clock delay budget vs regulator floor:\n");
      ctx.table("shadow_delay", table);
      std::printf("Paper: 33%% was the most that still met the short-path (hold)\n"
                  "constraint on this bus; the floor deepens with the budget.\n");
    }

    // (d) Threshold controller vs the proportional controller the paper
    // discusses and rejects: is the added mechanism worth it?
    {
      Table table({"Controller", "Gain (%)", "Err (%)", "Avg V (mV)"});
      {
        const LoopResult r = run(trace, core::DvsRunConfig{});
        table.row()
            .add("threshold [1%,2%] (paper)")
            .add(r.gain, 1)
            .add(r.err, 2)
            .add(r.avg_v, 0);
        ctx.metric("threshold_gain", r.gain / 100.0);
      }
      for (const double gain : {1.0, 2.0, 6.0}) {
        core::ProportionalRunConfig cfg;
        cfg.controller.gain = gain;
        const auto rep = core::run_closed_loop_proportional(
            paper_system(), tech::typical_corner(), trace, cfg);
        table.row()
            .add("proportional, k=" + format_fixed(gain, 1))
            .add(100.0 * rep.energy_gain(), 1)
            .add(100.0 * rep.error_rate(), 2)
            .add(to_mV(rep.average_supply), 0);
      }
      std::printf(
          "\n(d) Threshold vs proportional control (paper Section 5 argument):\n");
      ctx.table("controller_kind", table);
      std::printf("The proportional gains depend on a constant that cannot be derived\n"
                  "(the transfer function is non-linear and program-dependent); the\n"
                  "simple threshold scheme matches it without that tuning burden.\n");
    }
  };
  return scenario;
}

}  // namespace razorbus::bench

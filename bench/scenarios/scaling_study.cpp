// Section 6 technology-scaling study: with scaled nodes, wire resistance
// grows while capacitance per length stays roughly flat, so the delay
// spread between worst-case and typical switching patterns widens (the
// R * Cc term of eq. 2 grows) — and with it the energy-gain opportunity of
// error-tolerant DVS. The paper argues the approach "scales well"; this
// bench quantifies that claim on 130 nm / 90 nm / 65 nm buses, each sized
// for its own worst case at the same 1.5 GHz target.
#include <iostream>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

Scenario make_scaling_study_scenario() {
  Scenario scenario;
  scenario.name = "scaling_study";
  scenario.description = "DVS opportunity across technology nodes";
  scenario.paper_ref = "Section 6 (technology scaling discussion)";
  scenario.default_cycles = 100000;
  scenario.run = [](ScenarioContext& ctx) {
    const auto traces = suite_traces(ctx.cycles);
    const auto corner = tech::typical_corner();

    Table table({"Node", "R (ohm/mm)", "Cc/Cg", "Repeaters", "Worst/best delay*",
                 "Spread (%)", "Gain 2% @typ (%)"});

    for (const auto* name : {"130nm", "90nm", "65nm"}) {
      std::fprintf(stderr, "[node %s]\n", name);
      const tech::TechnologyNode node = tech::node_by_name(name);

      // Scaled wires are far more resistive, so the same 6 mm needs denser
      // repeater insertion to hold the 600 ps contract — find the smallest
      // repeater count that can meet timing (the classic scaling response).
      interconnect::BusDesign design = interconnect::BusDesign::scaled_bus(node);
      const tech::DriverModel driver(node);
      for (int segments : {4, 6, 8, 10, 12}) {
        design.n_segments = segments;
        design.repeater_size = 0.0;
        try {
          interconnect::size_repeaters(design, driver, tech::worst_case_corner());
          break;
        } catch (const std::runtime_error&) {
          if (segments == 12) throw;  // even 12 repeaters cannot make timing
        }
      }
      const core::DvsBusSystem system(design, options_with_progress(name));

      const double vnom = system.design().node.vdd_nominal;
      const tech::PvtCorner eval{corner.process, corner.temp_c, corner.ir_drop_fraction};
      const double worst = system.nominal_worst_delay(eval);
      const int best_cls = lut::PatternClass::encode(
          lut::VictimActivity::rise, lut::NeighborActivity::rise,
          lut::NeighborActivity::rise);
      const double best = system.table().delay(best_cls, eval.process, eval.temp_c, vnom);

      const auto gains = core::gains_for_targets(
          core::static_voltage_sweep(system, eval, traces), {0.02});

      table.row()
          .add(name)
          .add(system.design().parasitics.r_per_m / 1e3, 1)
          .add(system.design().parasitics.cc_to_cg_ratio(), 2)
          .add(static_cast<long long>(system.design().n_segments))
          .add(format_fixed(to_ps(worst), 0) + " / " + format_fixed(to_ps(best), 0) +
               " ps")
          .add(100.0 * (worst - best) / worst, 1)
          .add(100.0 * gains[0].energy_gain, 1);
      ctx.metric(std::string(name) + "_gain_2pct", gains[0].energy_gain);
      ctx.metric(std::string(name) + "_delay_spread", (worst - best) / worst);
    }
    ctx.table("scaling", table);
    std::printf("* at each node's own nominal supply\n");

    std::printf(
        "\nExpected shape (paper): resistance per length grows with scaling while\n"
        "capacitance stays roughly flat, so the worst-vs-typical delay spread\n"
        "widens and the achievable gains do not degrade - the approach scales\n"
        "favourably with technology.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

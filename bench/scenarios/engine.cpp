// Engine microbenchmarks: throughput of the simulation layers the
// reproduction harnesses are built on (the measurement suite behind the
// perf_microbench binary).
//
// The headline numbers are the bus-cycle rates of the two engines
// (EngineMode::reference per-wire golden path vs the bit-parallel batched
// production path) on active, mixed and idle traffic, plus the single- vs
// multi-thread throughput of the sharded characterization build and static
// voltage sweep (--threads=N, DESIGN.md §9). They are printed as tables
// and written to BENCH_engine.json so both speedup trajectories can be
// tracked across commits — and gated by the CI bench-regression job.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>

#include "bus/simulator.hpp"
#include "core/experiments.hpp"
#include "cpu/kernels.hpp"
#include "drift/schedule.hpp"
#include "lut/cache.hpp"
#include "lut/point_store.hpp"
#include "lut/table.hpp"
#include "scenarios/scenarios.hpp"
#include "spice/transient.hpp"
#include "sys/bus_system.hpp"
#include "trace/synthetic.hpp"
#include "util/parallel.hpp"

namespace razorbus::bench {

namespace {

trace::Trace make_trace(trace::SyntheticStyle style, double load_rate, std::size_t cycles,
                        const char* name, int n_bits = 32) {
  trace::SyntheticConfig cfg;
  cfg.style = style;
  cfg.cycles = cycles;
  cfg.load_rate = load_rate;
  cfg.seed = 0xbeef;
  cfg.n_bits = n_bits;
  return trace::generate_synthetic(cfg, name);
}

// Cycles/second of `mode` on `design` over `words`, re-running the trace
// until the measurement window is long enough to trust.
double measure_cps(const interconnect::BusDesign& design, bus::EngineMode mode,
                  const std::vector<BusWord>& words) {
  bus::BusSimulator sim(design, paper_system().table(), tech::typical_corner());
  sim.set_engine_mode(mode);
  sim.set_supply(1.00);
  sim.run(words);  // warm up (and fault in the tables)

  using clock = std::chrono::steady_clock;
  std::uint64_t cycles_done = 0;
  double elapsed = 0.0;
  const auto t0 = clock::now();
  do {
    sim.run(words);
    cycles_done += words.size();
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < 0.25);
  return static_cast<double>(cycles_done) / elapsed;
}

double measure_cps(bus::EngineMode mode, const std::vector<BusWord>& words) {
  return measure_cps(paper_system().design(), mode, words);
}

void engine_showdown(ScenarioContext& ctx) {
  struct Workload {
    const char* name;
    trace::Trace trace;
  };
  const Workload workloads[] = {
      {"active (load 1.0)",
       make_trace(trace::SyntheticStyle::uniform, 1.0, ctx.cycles, "active")},
      {"mixed (load 0.4)",
       make_trace(trace::SyntheticStyle::uniform, 0.4, ctx.cycles, "mixed")},
      {"worst-case toggle",
       make_trace(trace::SyntheticStyle::worst_case, 1.0, ctx.cycles, "toggle")},
      {"idle (load 0.02)",
       make_trace(trace::SyntheticStyle::sparse, 0.02, ctx.cycles, "idle")},
  };

  Table table({"Workload", "Reference (Mcyc/s)", "Bit-parallel (Mcyc/s)", "Speedup"});
  double active_speedup = 0.0;
  for (const auto& w : workloads) {
    const double ref_cps = measure_cps(bus::EngineMode::reference, w.trace.words);
    const double fast_cps = measure_cps(bus::EngineMode::bit_parallel, w.trace.words);
    const double speedup = fast_cps / ref_cps;
    table.row()
        .add(w.name)
        .add(ref_cps / 1e6, 1)
        .add(fast_cps / 1e6, 1)
        .add(speedup, 2);

    std::string key = w.name;
    key = key.substr(0, key.find(' '));
    ctx.metric(key + "_reference_cps", ref_cps);
    ctx.metric(key + "_bit_parallel_cps", fast_cps);
    ctx.metric(key + "_speedup", speedup);
    if (key == "active") active_speedup = speedup;
  }
  ctx.table("engine_throughput", table);
  std::printf(
      "\nThe bit-parallel batched engine is the default; the per-wire\n"
      "reference path remains as the golden model (DESIGN.md §5).\n");
  if (active_speedup < 5.0)
    std::printf("WARNING: active-traffic speedup %.2fx below the 5x budget\n",
                active_speedup);
}

// Throughput vs bus width (DESIGN.md §10): the same electrical design at
// 16, 32, 64 and 128 wires, driven with uniform traffic of that width. The
// characterised table is width-independent, so every width reuses the
// paper system's tables; what changes is the number of shield groups per
// cycle (lookups) and the lane count of the mask algebra. Tracked in
// BENCH_engine.json as width<N>_*_cps.
void width_showdown(ScenarioContext& ctx) {
  Table table(
      {"Width (wires)", "Reference (Mcyc/s)", "Bit-parallel (Mcyc/s)", "Speedup"});
  for (const int width : {16, 32, 64, 128}) {
    interconnect::BusDesign design = paper_system().design();  // sized repeaters
    design.n_bits = width;
    const trace::Trace t = make_trace(trace::SyntheticStyle::uniform, 0.4, ctx.cycles,
                                      "width", width);
    const double ref_cps = measure_cps(design, bus::EngineMode::reference, t.words);
    const double fast_cps = measure_cps(design, bus::EngineMode::bit_parallel, t.words);
    table.row()
        .add(static_cast<long long>(width))
        .add(ref_cps / 1e6, 1)
        .add(fast_cps / 1e6, 1)
        .add(fast_cps / ref_cps, 2);
    const std::string key = "width" + std::to_string(width);
    ctx.metric(key + "_reference_cps", ref_cps);
    ctx.metric(key + "_bit_parallel_cps", fast_cps);
  }
  ctx.table("width_throughput", table);
}

// Wall-clock of fn(), repeated until the window is long enough to trust;
// returns seconds per call.
template <typename Fn>
double measure_seconds(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  int calls = 0;
  double elapsed = 0.0;
  const auto t0 = clock::now();
  do {
    fn();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < 0.3);
  return elapsed / calls;
}

// Multi-operating-point engine (DESIGN.md §13): point-cycles/second of one
// batched pass vs batch size. The scalar loop's point-cycles/sec is flat in
// P by construction (P passes over the trace); the batch engine amortises
// classification and vectorises the per-point arithmetic, so its
// point-cycles/sec should GROW with P. Tracked per width and point count as
// sweep_points_w<W>_p<P>_cps, plus a driver-level scalar-vs-simd A/B on the
// Fig. 4 sweep (same report bytes, fewer passes).
// Closed-loop throughput of the system layer (sys::BusSystem): lockstep
// cycles/second of a 1-bus and a 3-bus shared-supply system, and of a
// 1-bus run under an active drift ramp (window-granular corner
// re-derivation). Every lane simulates its DVS bus AND the lockstep
// nominal baseline, so these rates sit well below the raw engine numbers.
// Tracked in BENCH_engine.json as system_*_cps and gated like the rest.
void system_showdown(ScenarioContext& ctx) {
  const std::size_t cycles = ctx.cycles;
  const auto measure = [&](std::size_t n_lanes, bool with_drift) {
    std::vector<sys::BusLane> lanes(n_lanes, sys::BusLane{&paper_system(), 1.0});
    const sys::BusSystem system(std::move(lanes));
    std::vector<trace::Trace> traces;
    for (std::size_t l = 0; l < n_lanes; ++l)
      traces.push_back(
          make_trace(trace::SyntheticStyle::uniform, 0.4, cycles, "sysbench"));
    sys::SystemRunConfig cfg;
    if (with_drift)
      cfg.drift = drift::Schedule::linear(cycles, 25.0, 100.0, 0.0, 0.05);
    const tech::PvtCorner corner = tech::typical_corner();
    system.run_closed_loop(corner, traces, cfg);  // warm up

    using clock = std::chrono::steady_clock;
    std::uint64_t cycles_done = 0;
    double elapsed = 0.0;
    const auto t0 = clock::now();
    do {
      cycles_done += system.run_closed_loop(corner, traces, cfg).cycles;
      elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    } while (elapsed < 0.25);
    return static_cast<double>(cycles_done) / elapsed;
  };
  const double one_cps = measure(1, false);
  const double three_cps = measure(3, false);
  const double drift_cps = measure(1, true);

  Table table({"System", "Closed loop (Mcyc/s)"});
  table.row().add("1 bus").add(one_cps / 1e6, 1);
  table.row().add("3 buses, shared rail").add(three_cps / 1e6, 1);
  table.row().add("1 bus + drift ramp").add(drift_cps / 1e6, 1);
  ctx.table("system_throughput", table);
  ctx.metric("system_1bus_cps", one_cps);
  ctx.metric("system_3bus_cps", three_cps);
  ctx.metric("system_drift_cps", drift_cps);
}

void multipoint_showdown(ScenarioContext& ctx) {
  const tech::PvtCorner corner = tech::typical_corner();
  const int point_counts[] = {1, 4, 8, 20};

  Table table({"Width (wires)", "P=1 (Mpt-cyc/s)", "P=4", "P=8", "P=20",
               "P=20 vs P=1"});
  for (const int width : {16, 32, 64, 128}) {
    interconnect::BusDesign design = paper_system().design();  // sized repeaters
    design.n_bits = width;
    const trace::Trace t = make_trace(trace::SyntheticStyle::uniform, 0.4, ctx.cycles,
                                      "points", width);
    table.row().add(static_cast<long long>(width));
    double first_cps = 0.0, last_cps = 0.0;
    for (const int n_points : point_counts) {
      std::vector<bus::OperatingPoint> points;
      for (int p = 0; p < n_points; ++p) points.push_back({1.00 + 0.01 * p, corner});
      bus::MultiPointEngine engine(design, paper_system().table(), points);
      engine.run(t.words);  // warm up (and fault in the SoA tables)

      using clock = std::chrono::steady_clock;
      std::uint64_t cycles_done = 0;
      double elapsed = 0.0;
      const auto t0 = clock::now();
      do {
        engine.run(t.words);
        cycles_done += t.words.size();
        elapsed = std::chrono::duration<double>(clock::now() - t0).count();
      } while (elapsed < 0.25);
      const double cps =
          static_cast<double>(n_points) * static_cast<double>(cycles_done) / elapsed;
      table.add(cps / 1e6, 1);
      ctx.metric("sweep_points_w" + std::to_string(width) + "_p" +
                     std::to_string(n_points) + "_cps",
                 cps);
      if (n_points == point_counts[0]) first_cps = cps;
      last_cps = cps;
    }
    table.add(first_cps > 0.0 ? last_cps / first_cps : 0.0, 2);
  }
  ctx.table("multipoint_throughput", table);

  // Fig. 4 sweep A/B: identical grid and report, scalar per-supply sharding
  // vs one EngineMode::simd batch per thread chunk.
  const auto& system = paper_system();
  const trace::Trace sweep_trace =
      make_trace(trace::SyntheticStyle::uniform, 0.4, ctx.cycles, "sweep_ab");
  const std::vector<trace::Trace> traces{sweep_trace};
  const std::size_t supplies =
      core::static_voltage_sweep(system, corner, traces).points.size();
  const double scalar_s = measure_seconds(
      [&] { core::static_voltage_sweep(system, corner, traces); });
  const double simd_s = measure_seconds([&] {
    core::static_voltage_sweep(system, corner, traces, 0.0, bus::EngineMode::simd);
  });
  const double speedup = scalar_s / simd_s;

  Table ab({"Fig. 4 sweep", "Supplies", "Scalar (s)", "SIMD batch (s)", "Speedup"});
  ab.row()
      .add("static_voltage_sweep")
      .add(static_cast<long long>(supplies))
      .add(scalar_s, 3)
      .add(simd_s, 3)
      .add(speedup, 2);
  ctx.table("sweep_engine_ab", ab);
  ctx.metric("sweep_supplies", static_cast<double>(supplies));
  ctx.metric("sweep_scalar_seconds", scalar_s);
  ctx.metric("sweep_simd_seconds", simd_s);
  ctx.metric("sweep_simd_speedup", speedup);
  if (speedup < 2.0)
    std::printf("WARNING: simd sweep speedup %.2fx below the 2x budget\n", speedup);
}

// Single- vs multi-thread throughput of the two sharded workloads
// (DESIGN.md §9): a characterization grid build and a static voltage
// sweep. Both are bit-identical at any width, so this is purely the
// executor's scaling trajectory, tracked in BENCH_engine.json.
void parallel_showdown(ScenarioContext& ctx) {
  const unsigned threads = util::global_threads();
  ctx.metric("threads", static_cast<double>(threads));

  // Characterization microcosm: one corner, one temperature, a short
  // supply grid — the same per-grid-point transient sims as the full
  // build, small enough to time in seconds.
  lut::LutConfig cfg;
  cfg.vmin = 1.08;
  cfg.vmax = 1.20;
  cfg.vstep = 0.02;
  cfg.temps = {100.0};
  cfg.corners = {tech::ProcessCorner::typical};
  const auto& system = paper_system();

  util::set_global_threads(1);
  const double char_1t = measure_seconds(
      [&] { lut::DelayEnergyTable::build(system.design(), system.driver(), cfg); });
  util::set_global_threads(threads);
  const double char_mt = measure_seconds(
      [&] { lut::DelayEnergyTable::build(system.design(), system.driver(), cfg); });

  // Sweep microcosm: the Fig. 4 driver on one synthetic trace.
  const trace::Trace trace =
      make_trace(trace::SyntheticStyle::uniform, 0.4, ctx.cycles, "sweep");
  const std::vector<trace::Trace> traces{trace};
  const tech::PvtCorner corner = tech::typical_corner();

  util::set_global_threads(1);
  const double sweep_1t =
      measure_seconds([&] { core::static_voltage_sweep(system, corner, traces); });
  util::set_global_threads(threads);
  const double sweep_mt =
      measure_seconds([&] { core::static_voltage_sweep(system, corner, traces); });

  const double char_speedup = char_1t / char_mt;
  const double sweep_speedup = sweep_1t / sweep_mt;

  Table table({"Sharded workload", "1 thread (s)", "N threads (s)", "Speedup"});
  table.row().add("characterization build").add(char_1t, 3).add(char_mt, 3).add(
      char_speedup, 2);
  table.row().add("static voltage sweep").add(sweep_1t, 3).add(sweep_mt, 3).add(
      sweep_speedup, 2);
  ctx.table("parallel_throughput", table);
  ctx.metric("characterization_seconds_1t", char_1t);
  ctx.metric("characterization_seconds_mt", char_mt);
  ctx.metric("characterization_parallel_speedup", char_speedup);
  ctx.metric("sweep_seconds_1t", sweep_1t);
  ctx.metric("sweep_seconds_mt", sweep_mt);
  ctx.metric("sweep_parallel_speedup", sweep_speedup);

  std::printf("\nExecutor width: %u thread%s (override with --threads=N)\n", threads,
              threads == 1 ? "" : "s");
  if (threads >= 4 && std::min(char_speedup, sweep_speedup) < 3.0)
    std::printf("WARNING: parallel speedup %.2fx below the 3x budget at %u threads\n",
                std::min(char_speedup, sweep_speedup), threads);
}

// Characterization-cost trajectory (docs/characterization.md): transient
// runs of the dense build vs the adaptive build at the default tolerance
// on one (corner, temperature) of the paper grid, plus a warm rebuild
// against the populated point store — which must perform ZERO transient
// runs, since every candidate point is already stored. Runs inside an
// isolated RAZORBUS_CACHE_DIR so the process's real cache is untouched.
// `lut_build_sims` / `lut_warm_sims` are gated as COST keys (more sims =
// regression) and `lut_build_cps` as throughput.
void characterization_showdown(ScenarioContext& ctx) {
  const auto& system = paper_system();

  lut::LutConfig dense_cfg;  // paper voltage range, one corner and temp
  dense_cfg.temps = {100.0};
  dense_cfg.corners = {tech::ProcessCorner::typical};
  lut::BuildStats dense_stats;
  lut::DelayEnergyTable::build(system.design(), system.driver(), dense_cfg, {}, nullptr,
                               &dense_stats);

  const lut::LutConfig adaptive_cfg =
      core::lut_config_for_tolerance(core::kDefaultLutTolerance, dense_cfg);

  const char* prev_env = std::getenv("RAZORBUS_CACHE_DIR");
  const std::string prev_dir = prev_env ? prev_env : "";
  const std::string tmp_dir = "BENCH_lut_cache.tmp";
  std::error_code ec;
  std::filesystem::remove_all(tmp_dir, ec);
  setenv("RAZORBUS_CACHE_DIR", tmp_dir.c_str(), 1);

  // Cold: empty point store, every kept point costs a transient run.
  lut::BuildStats cold_stats;
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  lut::build_or_load(system.design(), system.driver(), adaptive_cfg, {}, &cold_stats);
  const double cold_s = std::chrono::duration<double>(clock::now() - t0).count();

  // Warm: the same campaign re-characterised against the populated store
  // (a fresh process whose table cache was pruned, say). Built directly —
  // not via build_or_load, whose memo/disk hits would trivially skip the
  // build — so every point goes through the store.
  const auto store = lut::PointStore::open(lut::cache_directory(),
                                           lut::design_content_hash(system.design()));
  lut::BuildStats warm_stats;
  lut::DelayEnergyTable::build(system.design(), system.driver(), adaptive_cfg, {},
                               store.get(), &warm_stats);

  if (prev_env)
    setenv("RAZORBUS_CACHE_DIR", prev_dir.c_str(), 1);
  else
    unsetenv("RAZORBUS_CACHE_DIR");
  std::filesystem::remove_all(tmp_dir, ec);

  const auto dense_sims = static_cast<double>(dense_stats.transient_sims);
  const auto cold_sims = static_cast<double>(cold_stats.transient_sims);
  const double ratio = dense_sims > 0.0 ? cold_sims / dense_sims : 0.0;
  Table table({"Characterization", "Transient sims", "Points", "vs dense"});
  table.row()
      .add("dense grid")
      .add(static_cast<long long>(dense_stats.transient_sims))
      .add(static_cast<long long>(dense_stats.points))
      .add(1.0, 2);
  table.row()
      .add("adaptive (tol 2%)")
      .add(static_cast<long long>(cold_stats.transient_sims))
      .add(static_cast<long long>(cold_stats.points))
      .add(ratio, 2);
  table.row()
      .add("adaptive, warm store")
      .add(static_cast<long long>(warm_stats.transient_sims))
      .add(static_cast<long long>(warm_stats.points))
      .add(0.0, 2);
  ctx.table("characterization_cost", table);

  ctx.metric("lut_build_dense_sims", dense_sims);
  ctx.metric("lut_build_sims", cold_sims);
  ctx.metric("lut_build_cps", cold_s > 0.0 ? cold_sims / cold_s : 0.0);
  ctx.metric("lut_warm_sims", static_cast<double>(warm_stats.transient_sims));
  ctx.metric("lut_warm_store_hits", static_cast<double>(warm_stats.store_hits));

  if (ratio > 0.5)
    std::printf("WARNING: adaptive build used %.0f%% of dense sims (budget 50%%)\n",
                100.0 * ratio);
  if (warm_stats.transient_sims > 0)
    std::printf("WARNING: warm rebuild performed %llu transient sims (expected 0)\n",
                static_cast<unsigned long long>(warm_stats.transient_sims));
}

}  // namespace

Scenario make_engine_scenario() {
  Scenario scenario;
  scenario.name = "engine";
  scenario.description = "perf_microbench: engine throughput (cycles/sec per mode)";
  scenario.paper_ref = "methodology Section 3 (simulation speed enables 10M-cycle runs)";
  scenario.default_cycles = 1 << 18;
  scenario.run = [](ScenarioContext& ctx) {
    engine_showdown(ctx);
    width_showdown(ctx);
    system_showdown(ctx);
    multipoint_showdown(ctx);
    parallel_showdown(ctx);
    characterization_showdown(ctx);
  };
  return scenario;
}

}  // namespace razorbus::bench

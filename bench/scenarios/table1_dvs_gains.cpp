// Table 1: per-benchmark energy gains of fixed voltage scaling (error-free,
// process-corner-aware only) vs the proposed closed-loop DVS scheme, at the
// worst-case corner (slow, 100C, 10% IR) and the typical corner (typical,
// 100C, no IR).
#include <iostream>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

namespace {

void table_for(ScenarioContext& ctx, const tech::PvtCorner& corner,
               const std::vector<trace::Trace>& traces) {
  const double fixed_supply = paper_system().fixed_vs_supply(corner.process);
  std::printf("\nPVT corner: %s\n", corner.name().c_str());
  std::printf("Fixed VS supply: %.0f mV, DVS floor: %.0f mV\n", to_mV(fixed_supply),
              to_mV(paper_system().dvs_floor(corner.process)));

  Table table({"Benchmark", "Fixed VS gain (%)", "DVS gain (%)", "DVS avg err (%)",
               "DVS avg V (mV)"});
  double fixed_total_base = 0.0, fixed_total = 0.0;
  double dvs_total_base = 0.0, dvs_total = 0.0;
  std::uint64_t total_errors = 0, total_cycles = 0;

  // One independent closed-loop run per benchmark: sharded across the
  // executor (one simulator per trace), reports back in Table 1 order.
  std::fprintf(stderr, "[running %zu benchmarks @ %s]\n", traces.size(),
               corner.name().c_str());
  const std::vector<core::DvsRunReport> fixed_reports =
      core::run_fixed_vs_suite(paper_system(), corner, traces);
  const std::vector<core::DvsRunReport> dvs_reports =
      core::run_closed_loop_suite(paper_system(), corner, traces, core::DvsRunConfig{});

  for (std::size_t t = 0; t < traces.size(); ++t) {
    const core::DvsRunReport& fixed = fixed_reports[t];
    const core::DvsRunReport& dvs = dvs_reports[t];

    table.row()
        .add(traces[t].name)
        .add(100.0 * fixed.energy_gain(), 1)
        .add(100.0 * dvs.energy_gain(), 1)
        .add(100.0 * dvs.error_rate(), 2)
        .add(to_mV(dvs.average_supply), 0);

    fixed_total_base += fixed.baseline_bus_energy;
    fixed_total += fixed.totals.total_energy();
    dvs_total_base += dvs.baseline_bus_energy;
    dvs_total += dvs.totals.total_energy();
    total_errors += dvs.totals.errors;
    total_cycles += dvs.totals.cycles;
  }
  const double fixed_gain = 1.0 - fixed_total / fixed_total_base;
  const double dvs_gain = 1.0 - dvs_total / dvs_total_base;
  table.row()
      .add("Total")
      .add(100.0 * fixed_gain, 1)
      .add(100.0 * dvs_gain, 1)
      .add(100.0 * static_cast<double>(total_errors) /
               static_cast<double>(total_cycles),
           2)
      .add("-");
  ctx.table(corner.name(), table);
  ctx.metric(corner.name() + "_fixed_vs_gain", fixed_gain);
  ctx.metric(corner.name() + "_dvs_gain", dvs_gain);
}

}  // namespace

Scenario make_table1_dvs_gains_scenario() {
  Scenario scenario;
  scenario.name = "table1_dvs_gains";
  scenario.description = "fixed VS vs proposed DVS per benchmark";
  scenario.paper_ref = "Table 1";
  scenario.default_cycles = 1000000;
  scenario.run = [](ScenarioContext& ctx) {
    std::printf(
        "Cycles per benchmark: %zu (paper: 10M; raise with --cycles=N).\n"
        "DVS starts at the nominal 1.2 V, so short runs under-report its\n"
        "steady-state gain (the descent transient is amortised in longer runs).\n",
        ctx.cycles);
    const auto traces = suite_traces(ctx.cycles);
    table_for(ctx, tech::worst_case_corner(), traces);
    table_for(ctx, tech::typical_corner(), traces);

    std::printf(
        "\nExpected shape (paper): worst corner - fixed VS gains exactly 0,\n"
        "DVS gains ~1-17%% depending on program activity; typical corner -\n"
        "fixed VS ~17%% uniformly, DVS 35-45%%; average error rates ~2%%.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

// Fig. 5: energy gains achievable with static scaling at target error rates
// of 0%, 2% and 5%, across the five PVT corners, plotted against the
// non-DVS bus delay at 1.2 V.
#include <iostream>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

Scenario make_fig5_pvt_gains_scenario() {
  Scenario scenario;
  scenario.name = "fig5_pvt_gains";
  scenario.description = "static energy gains vs PVT corner delay spread";
  scenario.paper_ref = "Fig. 5";
  scenario.default_cycles = 100000;
  scenario.run = [](ScenarioContext& ctx) {
    const auto traces = suite_traces(ctx.cycles);

    Table table({"PVT corner", "Delay @1.2V (ps)", "Gain 0% (%)", "Gain 2% (%)",
                 "Gain 5% (%)", "V @2% (mV)"});
    for (const auto& corner : tech::fig5_corners()) {
      std::fprintf(stderr, "[sweeping %s]\n", corner.name().c_str());
      const core::StaticSweepResult sweep =
          core::static_voltage_sweep(paper_system(), corner, traces);
      const auto gains = core::gains_for_targets(sweep, {0.0, 0.02, 0.05});
      table.row()
          .add(corner.name())
          .add(to_ps(paper_system().nominal_worst_delay(corner)), 0)
          .add(100.0 * gains[0].energy_gain, 1)
          .add(100.0 * gains[1].energy_gain, 1)
          .add(100.0 * gains[2].energy_gain, 1)
          .add(to_mV(gains[1].chosen_supply), 0);
      ctx.metric(corner.name() + "_gain_2pct", gains[1].energy_gain);
    }
    ctx.table("fig5", table);

    std::printf(
        "\nExpected shape (paper): gains grow monotonically as the corner gets\n"
        "faster (x axis: 600 ps down to ~420 ps); the 0%% and 2%% curves are\n"
        "indistinguishable (error rates jump from 0 straight past 2%% on the\n"
        "20 mV grid); 5%% sits somewhat higher; typical corner ~35%% at 0%%.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

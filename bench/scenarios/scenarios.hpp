// Scenario factories: one per reproduction harness.
//
// Each bench/scenarios/*.cpp builds the Scenario (name, banner, paper
// reference, default cycle budget, run body) that used to live in that
// harness's main(). The standalone binaries and the campaign runner both
// fetch them through scenario_registry.hpp, so a campaign job and the
// legacy binary execute the exact same code path — which is what makes
// their JSON reports byte-identical (enforced by tests/campaign_test.cpp).
#pragma once

#include "bench_common.hpp"

namespace razorbus::bench {

Scenario make_fig4_voltage_sweep_scenario();
Scenario make_fig5_pvt_gains_scenario();
Scenario make_fig6_voltage_distribution_scenario();
Scenario make_fig8_dvs_trace_scenario();
Scenario make_fig10_modified_bus_scenario();
Scenario make_table1_dvs_gains_scenario();
Scenario make_ablation_controller_scenario();
Scenario make_ablation_encoding_scenario();
Scenario make_ablation_pvt_sampling_scenario();
Scenario make_ablation_repeater_scenario();
Scenario make_scaling_study_scenario();
Scenario make_width_sweep_scenario();
// perf_microbench's measurement suite (engine / width / executor
// throughput); the google-benchmark layer stays in the binary.
Scenario make_engine_scenario();

}  // namespace razorbus::bench

// Scenario sweep over bus width: the paper's DVS scheme on 16-, 32-, 64-
// and 128-wire buses (DESIGN.md §10).
//
// The electrical design (wire geometry, repeater sizing, shield cadence)
// is the paper's; only the word width changes, so the characterised tables
// are shared across every width. Per width the scenario runs a closed-loop
// DVS pass and the fixed-VS baseline on uniform traffic of that width and
// reports energy gain, error rate and average supply — quantifying how the
// error-rate-feedback opportunity scales from peripheral buses to
// cacheline flits (a wider bank errs on more cycles at the same per-wire
// margin, so the controller rides at a higher supply).
#include <iostream>

#include "scenarios/scenarios.hpp"
#include "trace/synthetic.hpp"

namespace razorbus::bench {

Scenario make_width_sweep_scenario() {
  Scenario scenario;
  scenario.name = "width_sweep";
  scenario.description = "closed-loop DVS vs bus width (16..128 wires)";
  scenario.paper_ref = "Section 3 bus model, generalised over word width";
  scenario.default_cycles = 400000;
  scenario.run = [](ScenarioContext& ctx) {
    const auto corner = tech::typical_corner();

    Table table({"Width (wires)", "DVS gain (%)", "Fixed-VS gain (%)", "Err (%)",
                 "Avg V (mV)", "Floor (mV)"});
    for (const int width : {16, 32, 64, 128}) {
      std::fprintf(stderr, "[width %d]\n", width);
      // Same sized repeaters and characterised tables as the paper bus:
      // width is purely a config change.
      interconnect::BusDesign design = interconnect::BusDesign::wide_bus(width);
      design.repeater_size = paper_system().design().repeater_size;
      const core::DvsBusSystem system(design, options_with_progress("width bus"));

      trace::SyntheticConfig cfg;
      cfg.style = trace::SyntheticStyle::uniform;
      cfg.cycles = ctx.cycles;
      cfg.load_rate = 0.4;
      cfg.seed = 0x5eed;
      cfg.n_bits = width;
      const trace::Trace trace =
          trace::generate_synthetic(cfg, "uniform" + std::to_string(width));

      const core::DvsRunReport dvs =
          core::run_closed_loop(system, corner, trace, core::DvsRunConfig{});
      const core::DvsRunReport fixed = core::run_fixed_vs(system, corner, trace);

      table.row()
          .add(static_cast<long long>(width))
          .add(100.0 * dvs.energy_gain(), 1)
          .add(100.0 * fixed.energy_gain(), 1)
          .add(100.0 * dvs.error_rate(), 2)
          .add(to_mV(dvs.average_supply), 0)
          .add(to_mV(dvs.floor_supply), 0);

      const std::string key = "width" + std::to_string(width);
      ctx.metric(key + "_dvs_gain", dvs.energy_gain());
      ctx.metric(key + "_fixed_vs_gain", fixed.energy_gain());
      ctx.metric(key + "_error_rate", dvs.error_rate());
      ctx.metric(key + "_avg_supply", dvs.average_supply);
    }
    ctx.table("width_sweep", table);

    std::printf(
        "\nReading the table: the per-wire physics are width-invariant, so the\n"
        "relative gains barely move — but the bank error signal is an OR across\n"
        "all wires, so at the same supply a wider bus pays recovery on more\n"
        "cycles (the Err column grows with width). Fixed-VS never errs and\n"
        "stays flat by construction.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

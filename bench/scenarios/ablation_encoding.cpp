// Ablation: low-power bus coding vs (and combined with) Razor DVS.
//
// The paper cites encoding schemes (e.g. bus-invert) as orthogonal related
// work: they reduce switching activity at a fixed supply, while the DVS
// approach reduces the supply itself. This bench quantifies that claim:
//   1. bus-invert alone (nominal supply),
//   2. razor DVS alone,
//   3. both combined,
// all against the plain bus at nominal supply. The invert line is modelled
// as a 33rd, shielded wire (a one-bit bus of the same length and repeater
// design), so its energy and its own timing behaviour are accounted.
#include <iostream>

#include "bus/businvert.hpp"
#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

namespace {

// A one-bit sidecar bus for the invert line (same wire/repeater design,
// shielded both sides).
const core::DvsBusSystem& invert_line_system() {
  static const core::DvsBusSystem system = [] {
    interconnect::BusDesign design = interconnect::BusDesign::paper_bus();
    design.n_bits = 1;
    design.repeater_size = paper_system().design().repeater_size;
    return core::DvsBusSystem(design, options_with_progress("invert line"));
  }();
  return system;
}

trace::Trace line_trace(const std::vector<bool>& invert_line) {
  trace::Trace t;
  t.name = "invert_line";
  t.n_bits = 1;
  t.words.reserve(invert_line.size());
  for (const bool b : invert_line) t.words.push_back(b ? 1u : 0u);
  return t;
}

}  // namespace

Scenario make_ablation_encoding_scenario() {
  Scenario scenario;
  scenario.name = "ablation_encoding";
  scenario.description = "bus-invert coding vs/plus razor DVS";
  scenario.paper_ref = "orthogonality claim of Section 1 (related work [5])";
  scenario.default_cycles = 400000;
  scenario.run = [](ScenarioContext& ctx) {
    const auto corner = tech::typical_corner();
    const auto traces = suite_traces(ctx.cycles);

    Table table({"Benchmark", "Invert-only gain (%)", "DVS-only gain (%)",
                 "Combined gain (%)", "Inversion rate (%)"});

    double sums[3] = {0.0, 0.0, 0.0};
    double base_sum = 0.0;
    for (const auto& raw : traces) {
      std::fprintf(stderr, "[%s]\n", raw.name.c_str());
      const bus::BusInvertResult enc = bus::bus_invert_encode(raw);
      const trace::Trace side = line_trace(enc.invert_line);

      // Baseline: plain bus at nominal supply.
      const double base = bus::BusSimulator::run_reference(
                              paper_system().design(), paper_system().table(), corner,
                              raw.words)
                              .bus_energy;

      // (1) bus-invert at nominal supply (+ the invert line's energy).
      const double invert_only =
          bus::BusSimulator::run_reference(paper_system().design(),
                                           paper_system().table(), corner,
                                           enc.encoded.words)
              .bus_energy +
          bus::BusSimulator::run_reference(invert_line_system().design(),
                                           invert_line_system().table(), corner,
                                           side.words)
              .bus_energy;

      // (2) DVS on the raw trace.
      const core::DvsRunReport dvs =
          core::run_closed_loop(paper_system(), corner, raw, core::DvsRunConfig{});

      // (3) DVS on the encoded trace + the invert line at the DVS average
      // supply (the line shares the bus supply rail).
      const core::DvsRunReport dvs_enc = core::run_closed_loop(
          paper_system(), corner, enc.encoded, core::DvsRunConfig{});
      bus::BusSimulator line_sim = invert_line_system().make_simulator(corner);
      line_sim.set_supply(dvs_enc.average_supply);
      line_sim.run(side.words);
      const double combined =
          dvs_enc.totals.total_energy() + line_sim.totals().bus_energy;

      const double g1 = 1.0 - invert_only / base;
      const double g2 = dvs.energy_gain();
      const double g3 = 1.0 - combined / base;
      table.row()
          .add(raw.name)
          .add(100.0 * g1, 1)
          .add(100.0 * g2, 1)
          .add(100.0 * g3, 1)
          .add(100.0 * static_cast<double>(enc.inversions) /
                   static_cast<double>(raw.words.size()),
               1);
      sums[0] += invert_only;
      sums[1] += dvs.totals.total_energy();
      sums[2] += combined;
      base_sum += base;
    }
    table.row()
        .add("Total")
        .add(100.0 * (1.0 - sums[0] / base_sum), 1)
        .add(100.0 * (1.0 - sums[1] / base_sum), 1)
        .add(100.0 * (1.0 - sums[2] / base_sum), 1)
        .add("-");
    ctx.table("encoding", table);
    ctx.metric("invert_only_gain", 1.0 - sums[0] / base_sum);
    ctx.metric("dvs_only_gain", 1.0 - sums[1] / base_sum);
    ctx.metric("combined_gain", 1.0 - sums[2] / base_sum);

    std::printf(
        "\nReading the table: coding alone helps high-activity programs a little\n"
        "(and quiet programs not at all); voltage scaling dominates; the two\n"
        "compose — supporting the paper's claim that encoding approaches are\n"
        "orthogonal to DVS with error correction.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

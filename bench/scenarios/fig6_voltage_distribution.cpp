// Fig. 6: with oracle (future-knowledge) voltage selection at a fixed
// target error rate, the % of execution time spent at each supply voltage
// for crafty, vortex and mgrid (typical process, 100C, no IR drop).
#include <array>
#include <iostream>
#include <map>

#include "scenarios/scenarios.hpp"

namespace razorbus::bench {

Scenario make_fig6_voltage_distribution_scenario() {
  Scenario scenario;
  scenario.name = "fig6_voltage_distribution";
  scenario.description = "oracle supply distribution per program";
  scenario.paper_ref = "Fig. 6";
  scenario.default_cycles = 1000000;
  scenario.run = [](ScenarioContext& ctx) {
    const auto corner = tech::typical_corner();

    for (const double target : {0.02, 0.05}) {
      std::printf("\nTarget error rate <= %.0f%%  (%s)\n", 100.0 * target,
                  corner.name().c_str());
      Table table({"Supply (mV)", "crafty (%)", "vortex (%)", "mgrid (%)"});

      // Collect distributions, then join on voltage.
      std::map<double, std::array<double, 3>> rows;
      const char* names[3] = {"crafty", "vortex", "mgrid"};
      std::array<double, 3> achieved{};
      for (int p = 0; p < 3; ++p) {
        const trace::Trace trace = cpu::benchmark_by_name(names[p]).capture(ctx.cycles);
        const core::VoltageDistribution d =
            core::oracle_voltage_distribution(paper_system(), corner, trace, target);
        achieved[static_cast<std::size_t>(p)] = d.achieved_error_rate;
        for (const auto& [v, frac] : d.time_at_voltage)
          rows[v][static_cast<std::size_t>(p)] = 100.0 * frac;
      }
      for (const auto& [v, fractions] : rows) {
        table.row().add(to_mV(v), 0);
        for (const double f : fractions) table.add(f, 1);
      }
      const std::string label = "target_" + format_fixed(100.0 * target, 0) + "pct";
      ctx.table(label, table);
      for (int p = 0; p < 3; ++p)
        ctx.metric(label + "_" + names[p] + "_err",
                   achieved[static_cast<std::size_t>(p)]);
      std::printf("Achieved error rates: crafty %.2f%%, vortex %.2f%%, mgrid %.2f%%\n",
                  100.0 * achieved[0], 100.0 * achieved[1], 100.0 * achieved[2]);
    }

    std::printf(
        "\nExpected shape (paper): at 2%% crafty spends most of its time near\n"
        "900 mV while mgrid cannot drop below ~980 mV even at a 5%% target;\n"
        "vortex falls in between.\n");
  };
  return scenario;
}

}  // namespace razorbus::bench

// Engine microbenchmarks (google-benchmark): throughput of the simulation
// layers that the reproduction harnesses are built on. Useful when tuning
// experiment cycle budgets.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bus/simulator.hpp"
#include "cpu/kernels.hpp"
#include "spice/transient.hpp"
#include "trace/synthetic.hpp"

using namespace razorbus;

namespace {

void BM_BusSimulatorStep(benchmark::State& state) {
  const auto& system = bench::paper_system();
  bus::BusSimulator sim = system.make_simulator(tech::typical_corner());
  sim.set_supply(1.0);
  trace::SyntheticConfig cfg;
  cfg.cycles = 4096;
  cfg.load_rate = 0.4;
  const trace::Trace t = trace::generate_synthetic(cfg, "bench");
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(t.words[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusSimulatorStep);

void BM_BusSimulatorStepIdle(benchmark::State& state) {
  const auto& system = bench::paper_system();
  bus::BusSimulator sim = system.make_simulator(tech::typical_corner());
  sim.set_supply(1.0);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(0u));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusSimulatorStepIdle);

void BM_TableSliceInterpolation(benchmark::State& state) {
  const auto& table = bench::paper_system().table();
  double v = 0.90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.slice(tech::ProcessCorner::typical, 100.0, v));
    v = v >= 1.19 ? 0.90 : v + 0.001;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TableSliceInterpolation);

void BM_MachineStep(benchmark::State& state) {
  cpu::Machine machine = cpu::benchmark_by_name("gap").make_machine();
  std::uint32_t data = 0;
  for (auto _ : state) benchmark::DoNotOptimize(machine.step(data));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineStep);

void BM_TransientClusterRun(benchmark::State& state) {
  const auto& design = bench::paper_system().design();
  const tech::DriverModel driver(design.node);
  const interconnect::ClusterCharacterizer chr(design, driver);
  interconnect::ClusterSpec spec;
  spec.victim = interconnect::WireActivity::rise;
  spec.left = interconnect::WireActivity::fall;
  spec.right = interconnect::WireActivity::fall;
  spec.vdd = 1.0;
  spec.corner = tech::ProcessCorner::typical;
  spec.temp_c = 100.0;
  for (auto _ : state) benchmark::DoNotOptimize(chr.run(spec));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TransientClusterRun);

void BM_OracleCriticalIndex(benchmark::State& state) {
  const auto& system = bench::paper_system();
  const dvs::OracleSelector oracle(system.design(), system.table(),
                                   tech::typical_corner());
  Rng rng(5);
  std::uint32_t prev = 0;
  for (auto _ : state) {
    const auto cur = static_cast<std::uint32_t>(rng.next_u64());
    benchmark::DoNotOptimize(oracle.critical_grid_index(prev, cur));
    prev = cur;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleCriticalIndex);

}  // namespace

BENCHMARK_MAIN();

// Launcher for the "engine" scenario (bench/scenarios/engine.cpp): engine /
// width / executor throughput, always written to BENCH_engine.json — the
// report the CI bench-regression gate diffs against the previous main run.
//
// With --gbench the finer-grained google-benchmark suite (table slice
// interpolation, mini-CPU stepping, transient cluster runs, oracle
// classification) runs as well, when the library is available.
#include <string>
#include <vector>

#include "scenario_registry.hpp"

#if defined(RAZORBUS_HAVE_GBENCH)
#include <benchmark/benchmark.h>

#include "bus/simulator.hpp"
#include "cpu/kernels.hpp"
#include "dvs/oracle.hpp"
#include "lut/table.hpp"
#include "spice/transient.hpp"
#include "trace/synthetic.hpp"
#endif

using namespace razorbus;
using namespace razorbus::bench;

#if defined(RAZORBUS_HAVE_GBENCH)
namespace {

trace::Trace gbench_trace(trace::SyntheticStyle style, double load_rate,
                          std::size_t cycles, const char* name) {
  trace::SyntheticConfig cfg;
  cfg.style = style;
  cfg.cycles = cycles;
  cfg.load_rate = load_rate;
  cfg.seed = 0xbeef;
  return trace::generate_synthetic(cfg, name);
}

void BM_BusSimulatorStepReference(benchmark::State& state) {
  bus::BusSimulator sim = paper_system().make_simulator(tech::typical_corner());
  sim.set_engine_mode(bus::EngineMode::reference);
  sim.set_supply(1.0);
  const trace::Trace t = gbench_trace(trace::SyntheticStyle::uniform, 0.4, 4096, "bench");
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(t.words[i++ & 4095]));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusSimulatorStepReference);

void BM_BusSimulatorStepBitParallel(benchmark::State& state) {
  bus::BusSimulator sim = paper_system().make_simulator(tech::typical_corner());
  sim.set_supply(1.0);
  const trace::Trace t = gbench_trace(trace::SyntheticStyle::uniform, 0.4, 4096, "bench");
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(t.words[i++ & 4095]));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusSimulatorStepBitParallel);

void BM_BusSimulatorStepIdle(benchmark::State& state) {
  bus::BusSimulator sim = paper_system().make_simulator(tech::typical_corner());
  sim.set_supply(1.0);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step(0u));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusSimulatorStepIdle);

void BM_TableSliceInterpolation(benchmark::State& state) {
  const auto& table = paper_system().table();
  double v = 0.90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.slice(tech::ProcessCorner::typical, 100.0, v));
    v = v >= 1.19 ? 0.90 : v + 0.001;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TableSliceInterpolation);

void BM_MachineStep(benchmark::State& state) {
  cpu::Machine machine = cpu::benchmark_by_name("gap").make_machine();
  std::uint32_t data = 0;
  for (auto _ : state) benchmark::DoNotOptimize(machine.step(data));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineStep);

void BM_TransientClusterRun(benchmark::State& state) {
  const auto& design = paper_system().design();
  const tech::DriverModel driver(design.node);
  const interconnect::ClusterCharacterizer chr(design, driver);
  interconnect::ClusterSpec spec;
  spec.victim = interconnect::WireActivity::rise;
  spec.left = interconnect::WireActivity::fall;
  spec.right = interconnect::WireActivity::fall;
  spec.vdd = 1.0;
  spec.corner = tech::ProcessCorner::typical;
  spec.temp_c = 100.0;
  for (auto _ : state) benchmark::DoNotOptimize(chr.run(spec));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TransientClusterRun);

void BM_OracleCriticalIndex(benchmark::State& state) {
  const dvs::OracleSelector oracle(paper_system().design(), paper_system().table(),
                                   tech::typical_corner());
  Rng rng(5);
  std::uint32_t prev = 0;
  for (auto _ : state) {
    const auto cur = static_cast<std::uint32_t>(rng.next_u64());
    benchmark::DoNotOptimize(oracle.critical_grid_index(prev, cur));
    prev = cur;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleCriticalIndex);

}  // namespace
#endif  // RAZORBUS_HAVE_GBENCH

int main(int argc, char** argv) {
  // The scenario runner owns --cycles/--json; strip our extra flags first.
  bool want_gbench = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--gbench")
      want_gbench = true;
    else
      args.push_back(argv[i]);
  }
  int args_count = static_cast<int>(args.size());

  // Always emit the JSON report: BENCH_engine.json is the tracked artifact.
  // Static storage: `args` holds a pointer to it, and argv-style pointers
  // must stay valid for as long as anyone may walk the vector.
  static char default_json[] = "--json";
  bool has_json = false;
  for (int i = 1; i < args_count; ++i)
    if (std::string(args[static_cast<std::size_t>(i)]).rfind("--json", 0) == 0)
      has_json = true;
  if (!has_json) args.push_back(default_json);

  const int rc = run_scenario(static_cast<int>(args.size()), args.data(),
                              scenario_by_name("engine"));
  if (rc != 0) return rc;

  if (want_gbench) {
#if defined(RAZORBUS_HAVE_GBENCH)
    int bench_argc = 1;
    benchmark::Initialize(&bench_argc, argv);
    benchmark::RunSpecifiedBenchmarks();
#else
    std::fprintf(stderr, "google-benchmark support not compiled in\n");
    return 1;
#endif
  }
  return 0;
}

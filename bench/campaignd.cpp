// campaignd — the standing campaign scheduler (docs/campaignd.md).
//
//   campaignd run <campaign.json> [--out=DIR] [--cache=DIR] [--workers=N]
//                 [--runner=BIN] [--force] [--max_jobs=N] [--shard=K/N]
//                 [--json=PATH]
//   campaignd worker [--out=DIR] [--cache=DIR] [--runner=BIN] [--workers=N]
//                 [--max_jobs=N]
//   campaignd status [--out=DIR]      (also: campaignd --status)
//   campaignd manifest <campaign.json> --shards=N [--out=DIR]
//   campaignd hash <campaign.json>
//
// `run` expands the campaign into jobs, reconciles them against the
// durable queue under <out>/queue (a worker killed mid-campaign resumes
// without re-running completed jobs), and schedules them across --workers
// claim loops. Every job is first looked up in the content-hash result
// cache under <out>/cache (shareable across campaigns, CI runs and hosts
// via --cache): a hit replays the stored BENCH_<job>.json byte-for-byte
// with zero simulated cycles. `worker` attaches additional processes to
// the same queue — the O_EXCL claim protocol makes them steal work safely.
// `manifest` splits a campaign across hosts by content hash; each host
// runs its shard (--shard=K/N) against a shared cache. `status` prints
// the live status snapshot campaignd maintains at <out>/status.json.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/job_hash.hpp"
#include "lut/point_store.hpp"
#include "core/scenario_spec.hpp"
#include "scenario_registry.hpp"
#include "svc/fsio.hpp"
#include "svc/service.hpp"
#include "util/cli.hpp"

using namespace razorbus;
using namespace razorbus::bench;

namespace fs = std::filesystem;

namespace {

// The binary whose `run-one` executes a single job: the sibling `campaign`
// client by default (same build directory), overridable for tests.
std::string default_runner(const char* argv0) {
  const fs::path self(argv0);
  const fs::path dir = self.parent_path();
  return (dir.empty() ? fs::path(".") : dir) / "campaign";
}

struct Expanded {
  core::CampaignSpec campaign;
  std::vector<core::ScenarioJob> jobs;
};

Expanded expand(const std::string& campaign_path) {
  Expanded out;
  out.campaign = core::CampaignSpec::from_file(campaign_path);
  out.jobs = core::expand_campaign(out.campaign);
  // Fail-fast contract (DESIGN.md §11): a typo'd bench name must surface
  // before any job burns its budget.
  for (const auto& job : out.jobs)
    if (job.spec.kind == core::ScenarioSpec::Kind::bench)
      scenario_by_name(job.spec.bench);  // throws, listing the known names
  return out;
}

// --shard=K/N ("this host runs hash-assigned shard K of N").
void parse_shard(const std::string& text, svc::ServiceConfig& config) {
  const auto slash = text.find('/');
  if (slash == std::string::npos)
    throw std::invalid_argument("--shard wants K/N, got '" + text + "'");
  const int index = std::stoi(text.substr(0, slash));
  const int count = std::stoi(text.substr(slash + 1));
  if (count <= 0 || index < 0 || index >= count)
    throw std::invalid_argument("--shard=" + text + " out of range");
  config.shard_index = index;
  config.shard_count = count;
}

void print_summary(const char* name, const svc::CampaignService::Summary& s,
                   const std::string& wrote) {
  const auto cached = s.cached_prior + static_cast<std::size_t>(s.cache_hits);
  std::printf("\n[%s: %zu job(s), %zu cached (%llu cache hit(s)), %zu executed, "
              "%zu failed, %.2f s]%s%s\n",
              name, s.jobs_total, cached,
              static_cast<unsigned long long>(s.cache_hits), s.executed, s.failed,
              s.wall_seconds, wrote.empty() ? "" : " wrote ", wrote.c_str());
}

int run(const char* argv0, const std::string& campaign_path, const CliFlags& flags) {
  Expanded ex = expand(campaign_path);

  svc::ServiceConfig config;
  config.out_dir = flags.get("out", "campaign_out/" + ex.campaign.name);
  config.cache_dir = flags.get("cache", "");
  config.runner = flags.get("runner", default_runner(argv0));
  config.workers = static_cast<unsigned>(
      std::max<std::int64_t>(1, flags.get_int("workers", 1)));
  config.force = flags.get_bool("force", false);
  config.max_jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("max_jobs", 0)));
  const std::string shard = flags.get("shard", "");
  if (!shard.empty()) parse_shard(shard, config);
  const std::string consolidated = flags.get(
      "json", (fs::path(config.out_dir) / "BENCH_campaign.json").string());
  flags.reject_unused();

  std::printf("campaignd '%s': %zu scenario(s) -> %zu job(s)%s\n",
              ex.campaign.name.c_str(), ex.campaign.scenarios.size(), ex.jobs.size(),
              shard.empty() ? "" : (" (shard " + shard + ")").c_str());

  svc::CampaignService service(std::move(ex.campaign), std::move(ex.jobs),
                               std::move(config));
  service.prepare();
  const auto summary = service.run();
  svc::write_file_atomic(consolidated, service.aggregate().dump(2) + "\n");
  print_summary(service.config().out_dir.c_str(), summary, consolidated);
  if (!summary.drained)
    std::printf("queue not drained (max_jobs budget or external claims): resume "
                "with `campaignd run` or attach `campaignd worker`\n");
  return summary.failed == 0 ? 0 : 1;
}

int worker(const char* argv0, const CliFlags& flags) {
  svc::ServiceConfig config;
  config.out_dir = flags.get("out", "campaign_out");
  config.cache_dir = flags.get("cache", "");
  config.runner = flags.get("runner", default_runner(argv0));
  config.workers = static_cast<unsigned>(
      std::max<std::int64_t>(1, flags.get_int("workers", 1)));
  config.max_jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("max_jobs", 0)));
  // A worker's status snapshots must not clobber the owning scheduler's.
  config.status_path =
      (fs::path(config.out_dir) / ("status.worker" + std::to_string(::getpid()) +
                                   ".json")).string();
  flags.reject_unused();

  svc::CampaignService service(std::move(config));
  if (service.queue().jobs().empty()) {
    std::printf("campaignd worker: nothing queued under %s\n",
                service.config().out_dir.c_str());
    return 0;
  }
  const auto summary = service.run();
  print_summary("worker", summary, "");
  return summary.failed == 0 ? 0 : 1;
}

int status(const CliFlags& flags) {
  const std::string out_dir = flags.get("out", "campaign_out");
  flags.reject_unused();
  const std::string path = (fs::path(out_dir) / "status.json").string();
  Json status_json;
  try {
    status_json = Json::parse_file(path);
  } catch (const std::exception&) {
    std::printf("campaignd: no status at %s (has a campaign run here?)\n",
                path.c_str());
    return 1;
  }
  const auto count = [&](const char* key) {
    const Json* v = status_json.find(key);
    return v != nullptr && v->is_number() ? v->as_double() : 0.0;
  };
  std::printf("campaign '%s' (%s)\n", status_json.at("campaign").as_string().c_str(),
              out_dir.c_str());
  std::printf("  jobs: %.0f total, %.0f pending, %.0f running, %.0f done, "
              "%.0f failed\n",
              count("jobs_total"), count("pending"), count("running"), count("done"),
              count("failed"));
  std::printf("  cache: %.0f hit(s), %.0f miss(es), hit rate %.0f%%, "
              "%.0f resumed-as-done\n",
              count("cache_hits"), count("cache_misses"),
              100.0 * count("cache_hit_rate"), count("cached_prior"));
  std::printf("  throughput: %.0f executed (%.0f simulated cycles), %.2f s, "
              "%.2f jobs/s\n",
              count("executed"), count("executed_cycles"), count("wall_seconds"),
              count("jobs_per_second"));
  if (const Json* jobs = status_json.find("jobs"); jobs != nullptr && jobs->is_object())
    for (const auto& [name, state] : jobs->members())
      std::printf("    %-40s %s\n", name.c_str(), state.as_string().c_str());
  return 0;
}

int manifest(const std::string& campaign_path, const CliFlags& flags) {
  Expanded ex = expand(campaign_path);
  const auto shards = static_cast<int>(flags.get_int("shards", 0));
  if (shards <= 0) throw std::invalid_argument("manifest wants --shards=N (N >= 1)");
  const std::string out_dir = flags.get("out", "campaign_out/" + ex.campaign.name);
  flags.reject_unused();

  fs::create_directories(out_dir);
  std::vector<Json> lists;
  for (int s = 0; s < shards; ++s) lists.push_back(Json::array());
  for (const auto& job : ex.jobs) {
    const auto shard = static_cast<int>(core::job_content_hash(job) %
                                        static_cast<std::uint64_t>(shards));
    Json entry = Json::object();
    entry.set("name", job.name);
    entry.set("hash", core::job_hash_hex(job));
    lists[static_cast<std::size_t>(shard)].push(std::move(entry));
  }
  for (int s = 0; s < shards; ++s) {
    Json doc = Json::object();
    doc.set("campaign", ex.campaign.name);
    doc.set("shard", s);
    doc.set("shards", shards);
    doc.set("hash_scheme", static_cast<long long>(core::kJobHashSchemeVersion));
    doc.set("jobs", std::move(lists[static_cast<std::size_t>(s)]));
    const std::string path =
        (fs::path(out_dir) / ("shard_" + std::to_string(s) + "_of_" +
                              std::to_string(shards) + ".json")).string();
    svc::write_file_atomic(path, doc.dump(2) + "\n");
    std::printf("  shard %d/%d: %zu job(s) -> %s\n", s, shards,
                doc.at("jobs").size(), path.c_str());
  }
  std::printf("run each shard with `campaignd run %s --shard=K/%d` against a "
              "shared --cache directory\n",
              campaign_path.c_str(), shards);
  return 0;
}

int hash(const std::string& campaign_path, const CliFlags& flags) {
  Expanded ex = expand(campaign_path);
  flags.reject_unused();
  std::printf("hash scheme v%u, simulator v%u\n", core::kJobHashSchemeVersion,
              lut::kSimulatorVersion);
  for (const auto& job : ex.jobs)
    std::printf("  %s  %s\n", core::job_hash_hex(job).c_str(), job.name.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    const auto& positional = flags.positional();
    std::string command = positional.empty() ? "" : positional[0];
    if (command.empty() && flags.has("status")) command = "status";

    if (command == "run") {
      if (positional.size() != 2)
        throw std::invalid_argument(
            "usage: campaignd run <campaign.json> [--out=DIR] [--cache=DIR] "
            "[--workers=N] [--runner=BIN] [--force] [--max_jobs=N] "
            "[--shard=K/N] [--json=PATH]");
      return run(argv[0], positional[1], flags);
    }
    if (command == "worker") return worker(argv[0], flags);
    if (command == "status") {
      (void)flags.get_bool("status", false);  // accept the --status alias
      return status(flags);
    }
    if (command == "manifest") {
      if (positional.size() != 2)
        throw std::invalid_argument(
            "usage: campaignd manifest <campaign.json> --shards=N [--out=DIR]");
      return manifest(positional[1], flags);
    }
    if (command == "hash") {
      if (positional.size() != 2)
        throw std::invalid_argument("usage: campaignd hash <campaign.json>");
      return hash(positional[1], flags);
    }
    throw std::invalid_argument(
        "usage: campaignd run <campaign.json> | campaignd worker | "
        "campaignd status | campaignd manifest <campaign.json> --shards=N | "
        "campaignd hash <campaign.json>");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaignd: %s\n", e.what());
    return 2;
  }
}

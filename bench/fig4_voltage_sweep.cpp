// Thin launcher for the fig4_voltage_sweep scenario. The body lives in
// bench/scenarios/fig4_voltage_sweep.cpp, shared with the campaign runner
// through scenario_registry.hpp — which is what keeps the standalone
// binary's JSON report byte-identical to a campaign job's.
#include "scenario_registry.hpp"

int main(int argc, char** argv) {
  using namespace razorbus::bench;
  return run_scenario(argc, argv, scenario_by_name("fig4_voltage_sweep"));
}

// Fig. 4: normalized energy and error rate vs statically scaled supply,
// for (a) slow process / 100C / 10% IR drop and (b) typical process / 100C /
// no IR drop, with all 10 benchmarks combined.
#include <iostream>

#include "bench_common.hpp"

using namespace razorbus;
using namespace razorbus::bench;

namespace {

void sweep_for(const tech::PvtCorner& corner, const std::vector<trace::Trace>& traces) {
  const core::StaticSweepResult sweep =
      core::static_voltage_sweep(paper_system(), corner, traces);

  std::printf("\nPVT corner: %s  (shadow-safe floor %.0f mV)\n", corner.name().c_str(),
              to_mV(sweep.floor_supply));
  Table table({"Supply (mV)", "Error Rate (%)", "Bus Energy (norm)",
               "Bus+Recovery (norm)"});
  for (auto it = sweep.points.rbegin(); it != sweep.points.rend(); ++it) {
    table.row()
        .add(to_mV(it->supply), 0)
        .add(100.0 * it->error_rate, 2)
        .add(it->norm_bus_energy, 3)
        .add(it->norm_total_energy, 3);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto cycles = static_cast<std::size_t>(flags.get_int("cycles", 200000));
  flags.reject_unused();

  print_header("fig4_voltage_sweep: energy & error rate vs scaled supply",
               "Fig. 4(a) and 4(b)");
  std::printf("Combined trace: 10 benchmarks x %zu cycles "
              "(paper: 10M each; raise with --cycles=N)\n", cycles);

  const auto traces = suite_traces(cycles);
  sweep_for(tech::worst_case_corner(), traces);   // Fig. 4(a)
  sweep_for(tech::typical_corner(), traces);      // Fig. 4(b)

  std::printf(
      "\nExpected shape (paper): at the worst corner errors appear immediately\n"
      "below 1200 mV; at the typical corner the bus is error-free down to\n"
      "~980 mV; energy falls roughly quadratically; the recovery overhead\n"
      "curve sits just above the bus energy curve.\n");
  return 0;
}

// Scenario-runner implementation (see bench_common.hpp).
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>

#include "util/parallel.hpp"

namespace razorbus::bench {

core::SystemOptions options_with_progress(const char* what) {
  core::SystemOptions options;
  std::string label = what;
  options.progress = [label, printed = -1](int done, int total) mutable {
    const int pct = total ? done * 100 / total : 100;
    if (pct / 10 != printed) {
      printed = pct / 10;
      std::fprintf(stderr, "[characterising %s: %d%%]\n", label.c_str(), pct);
    }
  };
  return options;
}

const core::DvsBusSystem& paper_system() {
  static const core::DvsBusSystem system(interconnect::BusDesign::paper_bus(),
                                         options_with_progress("paper bus"));
  return system;
}

std::vector<trace::Trace> suite_traces(std::size_t cycles) {
  std::vector<trace::Trace> traces;
  for (const auto& bench : cpu::spec2000_suite()) {
    std::fprintf(stderr, "[tracing %s: %zu cycles]\n", bench.name.c_str(), cycles);
    traces.push_back(bench.capture(cycles));
  }
  return traces;
}

void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

void ScenarioContext::table(const std::string& name, const Table& t) {
  t.print(std::cout);
  Json jt = Json::object();
  Json headers = Json::array();
  for (const auto& h : t.header()) headers.push(h);
  jt.set("headers", std::move(headers));
  Json rows = Json::array();
  for (const auto& row : t.rows()) {
    Json jr = Json::array();
    for (const auto& cell : row) jr.push(cell);
    rows.push(std::move(jr));
  }
  jt.set("rows", std::move(rows));
  tables_.set(name, std::move(jt));
}

int run_scenario(int argc, char** argv, const Scenario& scenario) {
  try {
    CliFlags flags(argc, argv);
    ScenarioContext ctx(flags);
    if (scenario.default_cycles > 0)
      ctx.cycles = static_cast<std::size_t>(
          flags.get_int("cycles", static_cast<std::int64_t>(scenario.default_cycles)));

    // Shared executor width: --threads=N shards the characterization and
    // the parallel experiment drivers over N threads (0 = hardware
    // concurrency, the default). Results are bit-identical at any width
    // (DESIGN.md §9), so this is purely a wall-clock knob.
    const std::int64_t requested_threads =
        std::max<std::int64_t>(0, flags.get_int("threads", 0));
    util::set_global_threads(static_cast<unsigned>(requested_threads));

    // --json writes BENCH_<name>.json; --json=path overrides the location.
    std::string json_path;
    if (flags.has("json")) {
      json_path = flags.get("json", "true");
      if (json_path == "true" || json_path.empty())
        json_path = "BENCH_" + scenario.name + ".json";
    }

    // Fail fast on stray flags: mark the declared scenario flags as known,
    // then reject anything else before the (possibly long) run starts.
    for (const auto& name : scenario.extra_flags) flags.has(name);
    flags.reject_unused();

    print_header((scenario.name + ": " + scenario.description).c_str(),
                 scenario.paper_ref.c_str());
    std::fprintf(stderr, "[executor: %u thread%s]\n", util::global_threads(),
                 util::global_threads() == 1 ? "" : "s");

    const auto start = std::chrono::steady_clock::now();
    scenario.run(ctx);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    std::printf("\n[%s: %.2f s]\n", scenario.name.c_str(), wall_seconds);

    if (!json_path.empty()) {
      Json report = Json::object();
      report.set("scenario", scenario.name);
      report.set("paper_ref", scenario.paper_ref);
      if (scenario.default_cycles > 0) report.set("cycles", ctx.cycles);
      // --threads=0 (auto) resolves to the hardware concurrency, which
      // differs across runners. Record "auto" in the diffable field and
      // the resolved count separately, so the CI regression gate can
      // compare reports from machines with different core counts.
      if (requested_threads > 0) {
        report.set("threads", static_cast<long long>(util::global_threads()));
      } else {
        report.set("threads", "auto");
        report.set("threads_resolved", static_cast<long long>(util::global_threads()));
      }
      report.set("wall_seconds", wall_seconds);
      report.set("metrics", std::move(ctx.metrics_));
      report.set("notes", std::move(ctx.notes_));
      report.set("tables", std::move(ctx.tables_));
      std::ofstream out(json_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      out << report.dump(2) << "\n";
      std::fprintf(stderr, "[wrote %s]\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", scenario.name.c_str(), e.what());
    return 1;
  }
}

}  // namespace razorbus::bench

// Thin launcher for the ablation_encoding scenario. The body lives in
// bench/scenarios/ablation_encoding.cpp, shared with the campaign runner
// through scenario_registry.hpp — which is what keeps the standalone
// binary's JSON report byte-identical to a campaign job's.
#include "scenario_registry.hpp"

int main(int argc, char** argv) {
  using namespace razorbus::bench;
  return run_scenario(argc, argv, scenario_by_name("ablation_encoding"));
}

#include <gtest/gtest.h>

#include "razor/bank.hpp"
#include "razor/flop.hpp"
#include "util/units.hpp"

namespace razorbus::razor {
namespace {

FlopTiming paper_timing() {
  // 1.5 GHz, 10% setup slack, shadow clock delayed by a third of the cycle.
  FlopTiming t;
  t.main_capture_limit = 600.0_ps;
  t.shadow_capture_limit = 822.0_ps;
  t.min_path_limit = 207.0_ps;
  return t;
}

// ---------------------------------------------------------------- flop

TEST(Flop, CleanCaptureOnTimelyArrival) {
  DoubleSamplingFlop flop(false);
  const auto outcome = flop.clock(true, 500.0_ps, paper_timing());
  EXPECT_EQ(outcome, CaptureOutcome::clean);
  EXPECT_TRUE(flop.q());
  EXPECT_TRUE(flop.shadow());
  EXPECT_FALSE(flop.error_signal());
}

TEST(Flop, LateArrivalIsCorrectedByShadow) {
  DoubleSamplingFlop flop(false);
  const auto outcome = flop.clock(true, 700.0_ps, paper_timing());
  EXPECT_EQ(outcome, CaptureOutcome::corrected);
  EXPECT_TRUE(flop.error_signal());
  // After the Error_L-driven restore, Q carries the correct (shadow) value.
  EXPECT_TRUE(flop.q());
  EXPECT_TRUE(flop.shadow());
}

TEST(Flop, ArrivalPastShadowWindowIsAFailure) {
  DoubleSamplingFlop flop(false);
  const auto outcome = flop.clock(true, 900.0_ps, paper_timing());
  EXPECT_EQ(outcome, CaptureOutcome::shadow_failure);
}

TEST(Flop, HoldCycleIsAlwaysClean) {
  DoubleSamplingFlop flop(true);
  // Same value again, regardless of the arrival annotation.
  EXPECT_EQ(flop.clock(true, -1.0, paper_timing()), CaptureOutcome::clean);
  EXPECT_EQ(flop.clock(true, 9999.0_ps, paper_timing()), CaptureOutcome::clean);
  EXPECT_TRUE(flop.q());
  EXPECT_FALSE(flop.error_signal());
}

TEST(Flop, ExactBoundariesAreInclusive) {
  const FlopTiming t = paper_timing();
  DoubleSamplingFlop a(false);
  EXPECT_EQ(a.clock(true, t.main_capture_limit, t), CaptureOutcome::clean);
  DoubleSamplingFlop b(false);
  EXPECT_EQ(b.clock(true, t.shadow_capture_limit, t), CaptureOutcome::corrected);
}

TEST(Flop, ShortPathViolationFlagged) {
  DoubleSamplingFlop flop(false);
  // Arrives before the delayed shadow clock has closed on the previous
  // value: the shadow latch content is corrupted.
  EXPECT_EQ(flop.clock(true, 100.0_ps, paper_timing()), CaptureOutcome::shadow_failure);
}

TEST(Flop, ShortPathCheckDisabledWhenZero) {
  FlopTiming t = paper_timing();
  t.min_path_limit = 0.0;
  DoubleSamplingFlop flop(false);
  EXPECT_EQ(flop.clock(true, 100.0_ps, t), CaptureOutcome::clean);
}

TEST(Flop, ErrorSignalClearsOnNextCleanCycle) {
  DoubleSamplingFlop flop(false);
  flop.clock(true, 700.0_ps, paper_timing());
  EXPECT_TRUE(flop.error_signal());
  flop.clock(false, 400.0_ps, paper_timing());
  EXPECT_FALSE(flop.error_signal());
  EXPECT_FALSE(flop.q());
}

TEST(Flop, SequenceOfTransitionsTracksData) {
  DoubleSamplingFlop flop(false);
  const FlopTiming t = paper_timing();
  const bool values[] = {true, false, true, true, false};
  const double arrivals[] = {400.0_ps, 650.0_ps, 500.0_ps, -1.0, 810.0_ps};
  for (int i = 0; i < 5; ++i) {
    const auto outcome = flop.clock(values[i], arrivals[i], t);
    EXPECT_NE(outcome, CaptureOutcome::shadow_failure);
    EXPECT_EQ(flop.q(), values[i]);  // always correct after recovery
  }
}

TEST(Flop, InconsistentTimingRejected) {
  DoubleSamplingFlop flop(false);
  FlopTiming bad;
  bad.main_capture_limit = 600.0_ps;
  bad.shadow_capture_limit = 500.0_ps;  // shadow before main: nonsense
  EXPECT_THROW(flop.clock(true, 1.0_ps, bad), std::invalid_argument);
  FlopTiming zero{};
  EXPECT_THROW(flop.clock(true, 1.0_ps, zero), std::invalid_argument);
}

// ---------------------------------------------------------------- bank

TEST(Bank, ErrorIsOrOfLocalErrors) {
  FlopBank bank(4, paper_timing());
  // Bits 0..3 arrive: one late (bit 2).
  const auto r = bank.clock(0b1111, {400.0_ps, 500.0_ps, 700.0_ps, 599.0_ps});
  EXPECT_TRUE(r.error);
  EXPECT_EQ(r.corrected_bits, 1);
  EXPECT_FALSE(r.shadow_failure);
  EXPECT_EQ(r.captured, 0b1111u);  // corrected word is complete
}

TEST(Bank, NoErrorWhenAllTimely) {
  FlopBank bank(8, paper_timing());
  std::vector<double> arrivals(8, 400.0_ps);
  const auto r = bank.clock(0xA5u, arrivals);
  EXPECT_FALSE(r.error);
  EXPECT_EQ(r.corrected_bits, 0);
  EXPECT_EQ(bank.word(), 0xA5u);
}

TEST(Bank, MultipleLateBitsSingleBusError) {
  // Paper: "a single bus timing error represents the assertion of the error
  // signal by ONE OR MORE error detecting flip-flops in a single cycle".
  FlopBank bank(4, paper_timing());
  const auto r = bank.clock(0b1111, {700.0_ps, 700.0_ps, 700.0_ps, 700.0_ps});
  EXPECT_TRUE(r.error);
  EXPECT_EQ(r.corrected_bits, 4);
  EXPECT_EQ(bank.error_cycles(), 1u);  // still one bank-level error
}

TEST(Bank, ShadowFailureDetected) {
  FlopBank bank(2, paper_timing());
  const auto r = bank.clock(0b11, {400.0_ps, 900.0_ps});
  EXPECT_TRUE(r.shadow_failure);
  EXPECT_EQ(bank.shadow_failures(), 1u);
}

TEST(Bank, CountersAccumulate) {
  FlopBank bank(2, paper_timing());
  bank.clock(0b01, {400.0_ps, -1.0});
  bank.clock(0b11, {-1.0, 700.0_ps});
  bank.clock(0b11, {-1.0, -1.0});
  bank.tick_hold();
  EXPECT_EQ(bank.cycles(), 4u);
  EXPECT_EQ(bank.error_cycles(), 1u);
  EXPECT_EQ(bank.shadow_failures(), 0u);
}

TEST(Bank, WordReflectsHeldAndNewBits) {
  FlopBank bank(4, paper_timing());
  bank.clock(0b0101, {400.0_ps, -1.0, 400.0_ps, -1.0});
  EXPECT_EQ(bank.word(), 0b0101u);
  // Bit 0 falls, bit 1 rises (late: corrected), bits 2-3 hold.
  const auto r = bank.clock(0b0110, {500.0_ps, 650.0_ps, -1.0, -1.0});
  EXPECT_TRUE(r.error);
  EXPECT_EQ(bank.word(), 0b0110u);
}

TEST(Bank, ArrivalCountMismatchThrows) {
  FlopBank bank(4, paper_timing());
  EXPECT_THROW(bank.clock(0, {1.0, 2.0}), std::invalid_argument);
}

TEST(Bank, WidthValidation) {
  EXPECT_THROW(FlopBank(0, paper_timing()), std::invalid_argument);
  EXPECT_THROW(FlopBank(BusWord::kMaxBits + 1, paper_timing()), std::invalid_argument);
  EXPECT_NO_THROW(FlopBank(32, paper_timing()));
  EXPECT_NO_THROW(FlopBank(BusWord::kMaxBits, paper_timing()));
}

// ---------------------------------------------------------------- recovery

TEST(RecoveryCost, OverheadScalesWithWidth) {
  RecoveryCostModel m;
  m.shadow_extra_fraction = 0.15;  // enable the standing term for this check
  m.detection_energy_per_cycle = 1e-15;
  EXPECT_GT(m.cycle_overhead(32), m.cycle_overhead(16));
  EXPECT_GT(m.error_overhead(32), m.error_overhead(16));
}

TEST(RecoveryCost, DefaultModelIsRecoveryOnly) {
  // The paper's overhead accounting (Fig. 4 "Bus energy + Recovery
  // overhead") charges errors, not every cycle.
  const RecoveryCostModel m;
  EXPECT_DOUBLE_EQ(m.cycle_overhead(32), 0.0);
  EXPECT_GT(m.error_overhead(32), 0.0);
  // At a 2% error rate the average recovery overhead stays far below one
  // wire transition (~pJ): the overhead curve hugs the bus energy curve.
  EXPECT_LT(0.02 * m.error_overhead(32), 0.05e-12);
}

TEST(RecoveryCost, ZeroedModelIsFree) {
  RecoveryCostModel m;
  m.flop_clock_energy = 0.0;
  m.detection_energy_per_cycle = 0.0;
  EXPECT_DOUBLE_EQ(m.cycle_overhead(32), 0.0);
  EXPECT_DOUBLE_EQ(m.error_overhead(32), 0.0);
}

// Parameterized sweep: arrivals across the whole window map to the right
// outcome for every boundary region.
struct ArrivalCase {
  double arrival_ps;
  CaptureOutcome expected;
};

class FlopArrivalSweep : public ::testing::TestWithParam<ArrivalCase> {};

TEST_P(FlopArrivalSweep, OutcomeMatchesRegion) {
  DoubleSamplingFlop flop(false);
  const auto [arrival_ps, expected] = GetParam();
  EXPECT_EQ(flop.clock(true, arrival_ps * 1e-12, paper_timing()), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Regions, FlopArrivalSweep,
    ::testing::Values(ArrivalCase{150.0, CaptureOutcome::shadow_failure},  // short path
                      ArrivalCase{207.0, CaptureOutcome::clean},
                      ArrivalCase{300.0, CaptureOutcome::clean},
                      ArrivalCase{599.9, CaptureOutcome::clean},
                      ArrivalCase{600.1, CaptureOutcome::corrected},
                      ArrivalCase{750.0, CaptureOutcome::corrected},
                      ArrivalCase{821.9, CaptureOutcome::corrected},
                      ArrivalCase{822.1, CaptureOutcome::shadow_failure},
                      ArrivalCase{1500.0, CaptureOutcome::shadow_failure}));

}  // namespace
}  // namespace razorbus::razor

#include <gtest/gtest.h>

#include "tech/corner.hpp"
#include "tech/device.hpp"
#include "tech/leakage.hpp"
#include "tech/node.hpp"
#include "tech/supply.hpp"
#include "util/units.hpp"

namespace razorbus::tech {
namespace {

// ---------------------------------------------------------------- nodes

TEST(Node, PaperNodeParameters) {
  const TechnologyNode n = node_130nm();
  EXPECT_EQ(n.name, "130nm");
  EXPECT_DOUBLE_EQ(n.vdd_nominal, 1.2);
  EXPECT_DOUBLE_EQ(n.min_pitch(), 0.8_um);  // the paper's minimum pitch
  EXPECT_GT(n.vth0, 0.2);
  EXPECT_LT(n.vth0, 0.5);
}

TEST(Node, ScalingTrendsMatchHoFutureOfWires) {
  // Wire resistance per length grows with scaling; capacitance per length
  // stays roughly flat (paper Section 6 premise).
  const auto n130 = node_130nm();
  const auto n90 = node_90nm();
  const auto n65 = node_65nm();
  auto r_per_m = [](const TechnologyNode& n) {
    return n.resistivity / (n.wire_width * n.wire_thickness);
  };
  EXPECT_GT(r_per_m(n90), r_per_m(n130));
  EXPECT_GT(r_per_m(n65), r_per_m(n90));
  EXPECT_LT(n90.vdd_nominal, n130.vdd_nominal + 1e-12);
  EXPECT_GT(n65.i_leak_unit, n130.i_leak_unit);  // leakage grows with scaling
}

TEST(Node, LookupByName) {
  EXPECT_EQ(node_by_name("130nm").name, "130nm");
  EXPECT_EQ(node_by_name("90nm").name, "90nm");
  EXPECT_EQ(node_by_name("65nm").name, "65nm");
  EXPECT_THROW(node_by_name("45nm"), std::invalid_argument);
}

// ---------------------------------------------------------------- corners

TEST(Corner, StringRoundTrip) {
  for (auto c : {ProcessCorner::slow, ProcessCorner::typical, ProcessCorner::fast})
    EXPECT_EQ(process_corner_from_string(to_string(c)), c);
  EXPECT_THROW(process_corner_from_string("bogus"), std::invalid_argument);
}

TEST(Corner, DriveOrdering) {
  EXPECT_LT(corner_params(ProcessCorner::slow).drive_multiplier,
            corner_params(ProcessCorner::typical).drive_multiplier);
  EXPECT_LT(corner_params(ProcessCorner::typical).drive_multiplier,
            corner_params(ProcessCorner::fast).drive_multiplier);
  EXPECT_GT(corner_params(ProcessCorner::slow).vth_shift, 0.0);
  EXPECT_LT(corner_params(ProcessCorner::fast).vth_shift, 0.0);
}

TEST(Corner, EffectiveSupplyAppliesIrDrop) {
  const PvtCorner corner{ProcessCorner::slow, 100.0, 0.10};
  EXPECT_DOUBLE_EQ(corner.effective_supply(1.2), 1.08);
  const PvtCorner no_drop{ProcessCorner::typical, 25.0, 0.0};
  EXPECT_DOUBLE_EQ(no_drop.effective_supply(1.2), 1.2);
}

TEST(Corner, PaperCornerDefinitions) {
  const PvtCorner worst = worst_case_corner();
  EXPECT_EQ(worst.process, ProcessCorner::slow);
  EXPECT_DOUBLE_EQ(worst.temp_c, 100.0);
  EXPECT_DOUBLE_EQ(worst.ir_drop_fraction, 0.10);

  const PvtCorner typical = typical_corner();
  EXPECT_EQ(typical.process, ProcessCorner::typical);
  EXPECT_DOUBLE_EQ(typical.ir_drop_fraction, 0.0);
}

TEST(Corner, Fig5CornersOrderedSlowestToFastest) {
  const auto corners = fig5_corners();
  ASSERT_EQ(corners.size(), 5u);
  EXPECT_EQ(corners[0].process, ProcessCorner::slow);
  EXPECT_DOUBLE_EQ(corners[0].ir_drop_fraction, 0.10);
  EXPECT_EQ(corners[4].process, ProcessCorner::fast);
  EXPECT_DOUBLE_EQ(corners[4].temp_c, 25.0);
}

TEST(Corner, NameIsHumanReadable) {
  EXPECT_EQ(worst_case_corner().name(), "slow process, 100C, 10% IR drop");
  EXPECT_EQ(typical_corner().name(), "typical process, 100C, no IR drop");
}

// ---------------------------------------------------------------- driver

class DriverModelTest : public ::testing::Test {
 protected:
  DriverModel driver_{node_130nm()};
};

TEST_F(DriverModelTest, NominalResistanceMatchesUnitSpec) {
  // At (Vnom, typical, 25C) a size-1 driver has exactly r_unit.
  EXPECT_NEAR(driver_.effective_resistance(1.0, ProcessCorner::typical, 25.0, 1.2),
              node_130nm().r_unit, 1e-6);
}

TEST_F(DriverModelTest, ResistanceScalesInverselyWithSize) {
  const double r1 = driver_.effective_resistance(1.0, ProcessCorner::typical, 25.0, 1.2);
  const double r80 =
      driver_.effective_resistance(80.0, ProcessCorner::typical, 25.0, 1.2);
  EXPECT_NEAR(r1 / r80, 80.0, 1e-9);
}

TEST_F(DriverModelTest, ResistanceIncreasesAsSupplyDrops) {
  double prev = 0.0;
  for (double v = 1.2; v >= 0.7; v -= 0.1) {
    const double r = driver_.effective_resistance(1.0, ProcessCorner::typical, 25.0, v);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST_F(DriverModelTest, CornerOrderingOnResistance) {
  const double rs = driver_.effective_resistance(1.0, ProcessCorner::slow, 100.0, 1.2);
  const double rt = driver_.effective_resistance(1.0, ProcessCorner::typical, 100.0, 1.2);
  const double rf = driver_.effective_resistance(1.0, ProcessCorner::fast, 100.0, 1.2);
  EXPECT_GT(rs, rt);
  EXPECT_GT(rt, rf);
}

TEST_F(DriverModelTest, HotterIsSlower) {
  const double r25 = driver_.effective_resistance(1.0, ProcessCorner::typical, 25.0, 1.2);
  const double r100 =
      driver_.effective_resistance(1.0, ProcessCorner::typical, 100.0, 1.2);
  EXPECT_GT(r100, r25);
  // ... but only mildly (velocity saturation + Vth(T) compensation): under
  // 25% swing for the 75C step.
  EXPECT_LT(r100 / r25, 1.25);
}

TEST_F(DriverModelTest, ConductionLimit) {
  EXPECT_TRUE(driver_.conducts(ProcessCorner::typical, 25.0, 0.7));
  EXPECT_FALSE(driver_.conducts(ProcessCorner::typical, 25.0, 0.3));
  EXPECT_THROW(driver_.effective_resistance(1.0, ProcessCorner::typical, 25.0, 0.3),
               std::domain_error);
}

TEST_F(DriverModelTest, RejectsNonPositiveSize) {
  EXPECT_THROW(driver_.effective_resistance(0.0, ProcessCorner::typical, 25.0, 1.2),
               std::invalid_argument);
  EXPECT_THROW(driver_.effective_resistance(-3.0, ProcessCorner::typical, 25.0, 1.2),
               std::invalid_argument);
}

TEST_F(DriverModelTest, CapacitancesScaleWithSize) {
  EXPECT_DOUBLE_EQ(driver_.input_capacitance(10.0), 10.0 * node_130nm().c_in_unit);
  EXPECT_DOUBLE_EQ(driver_.self_capacitance(10.0), 10.0 * node_130nm().c_self_unit);
}

TEST_F(DriverModelTest, ShortCircuitEnergyScalesQuadratically) {
  const double e_nom = driver_.short_circuit_energy(1.0, 1.2);
  const double e_half = driver_.short_circuit_energy(1.0, 0.6);
  EXPECT_NEAR(e_half / e_nom, 0.25, 1e-9);
}

TEST_F(DriverModelTest, VthEffIncludesDiblAndTemperature) {
  const double vth_nom = driver_.vth_eff(ProcessCorner::typical, 25.0, 1.2);
  EXPECT_DOUBLE_EQ(vth_nom, node_130nm().vth0);
  // Lower supply raises Vth (less DIBL).
  EXPECT_GT(driver_.vth_eff(ProcessCorner::typical, 25.0, 0.9), vth_nom);
  // Higher temperature lowers Vth.
  EXPECT_LT(driver_.vth_eff(ProcessCorner::typical, 100.0, 1.2), vth_nom);
}

// Alpha-power sanity: the voltage-induced delay ratio from 1.2 V to 0.96 V
// should be in the vicinity of the analytic alpha-power prediction.
TEST_F(DriverModelTest, AlphaPowerVoltageScalingMagnitude) {
  const double r_hi =
      driver_.effective_resistance(1.0, ProcessCorner::typical, 100.0, 1.2);
  const double r_lo =
      driver_.effective_resistance(1.0, ProcessCorner::typical, 100.0, 0.96);
  EXPECT_GT(r_lo / r_hi, 1.10);
  EXPECT_LT(r_lo / r_hi, 1.45);
}

// ---------------------------------------------------------------- leakage

class LeakageTest : public ::testing::Test {
 protected:
  LeakageModel leak_{node_130nm()};
};

TEST_F(LeakageTest, CalibratedAtNominalConditions) {
  EXPECT_NEAR(leak_.current(1.0, ProcessCorner::typical, 25.0, 1.2),
              node_130nm().i_leak_unit, node_130nm().i_leak_unit * 1e-6);
}

TEST_F(LeakageTest, ScalesLinearlyWithSize) {
  const double i1 = leak_.current(1.0, ProcessCorner::typical, 25.0, 1.2);
  const double i50 = leak_.current(50.0, ProcessCorner::typical, 25.0, 1.2);
  EXPECT_NEAR(i50 / i1, 50.0, 1e-9);
}

TEST_F(LeakageTest, GrowsStronglyWithTemperature) {
  const double i25 = leak_.current(1.0, ProcessCorner::typical, 25.0, 1.2);
  const double i100 = leak_.current(1.0, ProcessCorner::typical, 100.0, 1.2);
  EXPECT_GT(i100 / i25, 5.0);    // subthreshold leakage explodes with T
  EXPECT_LT(i100 / i25, 100.0);  // ... but not absurdly
}

TEST_F(LeakageTest, DropsWithSupply) {
  const double i_hi = leak_.current(1.0, ProcessCorner::typical, 100.0, 1.2);
  const double i_lo = leak_.current(1.0, ProcessCorner::typical, 100.0, 0.9);
  EXPECT_LT(i_lo, i_hi);  // DIBL: lower VDD -> higher Vth -> less leakage
}

TEST_F(LeakageTest, FastCornerLeaksMore) {
  const double is = leak_.current(1.0, ProcessCorner::slow, 25.0, 1.2);
  const double it = leak_.current(1.0, ProcessCorner::typical, 25.0, 1.2);
  const double f = leak_.current(1.0, ProcessCorner::fast, 25.0, 1.2);
  EXPECT_LT(is, it);
  EXPECT_LT(it, f);
}

TEST_F(LeakageTest, EnergyIsCurrentTimesVoltageTimesTime) {
  const double i = leak_.current(10.0, ProcessCorner::typical, 100.0, 1.0);
  EXPECT_NEAR(leak_.energy(10.0, ProcessCorner::typical, 100.0, 1.0, 1e-9),
              i * 1.0 * 1e-9, 1e-24);
}

TEST_F(LeakageTest, ZeroVoltageNoLeakage) {
  EXPECT_DOUBLE_EQ(leak_.current(1.0, ProcessCorner::typical, 25.0, 0.0), 0.0);
}

TEST_F(LeakageTest, RejectsNonPositiveSize) {
  EXPECT_THROW(leak_.current(0.0, ProcessCorner::typical, 25.0, 1.2),
               std::invalid_argument);
}

// ---------------------------------------------------------------- supply

TEST(SupplyGrid, PaperGridHas20mVSteps) {
  const SupplyGrid grid(0.66, 1.20, 0.020);
  EXPECT_EQ(grid.size(), 28u);
  EXPECT_DOUBLE_EQ(grid.voltage(0), 0.66);
  EXPECT_NEAR(grid.voltage(27), 1.20, 1e-12);
  EXPECT_NEAR(grid.voltage(1) - grid.voltage(0), 0.020, 1e-12);
}

TEST(SupplyGrid, SnapAndIndex) {
  const SupplyGrid grid(0.9, 1.2, 0.020);
  EXPECT_NEAR(grid.snap(1.013), 1.02, 1e-12);
  EXPECT_NEAR(grid.snap(1.005), 1.00, 1e-12);
  EXPECT_EQ(grid.index_of(0.9), 0u);
  EXPECT_EQ(grid.index_of(10.0), grid.size() - 1);
  EXPECT_EQ(grid.index_of(-1.0), 0u);
}

TEST(SupplyGrid, StepUpAndDownSaturate) {
  const SupplyGrid grid(0.9, 1.0, 0.020);
  EXPECT_NEAR(grid.step_up(0.94), 0.96, 1e-12);
  EXPECT_NEAR(grid.step_down(0.94), 0.92, 1e-12);
  EXPECT_NEAR(grid.step_up(1.0), 1.0, 1e-12);
  EXPECT_NEAR(grid.step_down(0.9), 0.9, 1e-12);
}

TEST(SupplyGrid, VoltagesEnumeratesAll) {
  const SupplyGrid grid(1.0, 1.1, 0.050);
  const auto v = grid.voltages();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NEAR(v[1], 1.05, 1e-12);
}

TEST(SupplyGrid, RejectsBadRanges) {
  EXPECT_THROW(SupplyGrid(1.0, 0.9, 0.02), std::invalid_argument);
  EXPECT_THROW(SupplyGrid(0.9, 1.2, 0.0), std::invalid_argument);
  EXPECT_THROW(SupplyGrid(0.9, 1.2, -0.02), std::invalid_argument);
}

TEST(SupplyGrid, OutOfRangeVoltageIndexThrows) {
  const SupplyGrid grid(0.9, 1.0, 0.020);
  EXPECT_THROW(grid.voltage(99), std::out_of_range);
}

}  // namespace
}  // namespace razorbus::tech

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "interconnect/elmore.hpp"
#include "lut/cache.hpp"
#include "lut/pattern.hpp"
#include "lut/table.hpp"
#include "test_support.hpp"

namespace razorbus::lut {
namespace {

using interconnect::BusDesign;
using test_support::small_lut_config;
using test_support::sized_paper_bus;

// ---------------------------------------------------------------- pattern

TEST(Pattern, EncodeDecodeRoundTrip) {
  for (int v = 0; v < 4; ++v) {
    for (int l = 0; l < 4; ++l) {
      for (int r = 0; r < 4; ++r) {
        const int cls = PatternClass::encode(static_cast<VictimActivity>(v),
                                             static_cast<NeighborActivity>(l),
                                             static_cast<NeighborActivity>(r));
        EXPECT_EQ(static_cast<int>(PatternClass::victim_of(cls)), v);
        EXPECT_EQ(static_cast<int>(PatternClass::left_of(cls)), l);
        EXPECT_EQ(static_cast<int>(PatternClass::right_of(cls)), r);
      }
    }
  }
}

TEST(Pattern, AllClassIdsDistinctAndInRange) {
  std::set<int> ids;
  for (int v = 0; v < 4; ++v)
    for (int l = 0; l < 4; ++l)
      for (int r = 0; r < 4; ++r)
        ids.insert(PatternClass::encode(static_cast<VictimActivity>(v),
                                        static_cast<NeighborActivity>(l),
                                        static_cast<NeighborActivity>(r)));
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(PatternClass::kCount));
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), PatternClass::kCount - 1);
}

TEST(Pattern, CanonicalSwapsNeighbors) {
  const int cls = PatternClass::encode(VictimActivity::rise, NeighborActivity::shield,
                                       NeighborActivity::fall);
  const int canon = PatternClass::canonical(cls);
  EXPECT_EQ(PatternClass::left_of(canon), NeighborActivity::fall);
  EXPECT_EQ(PatternClass::right_of(canon), NeighborActivity::shield);
  EXPECT_EQ(PatternClass::victim_of(canon), VictimActivity::rise);
  EXPECT_TRUE(PatternClass::is_canonical(canon));
  EXPECT_FALSE(PatternClass::is_canonical(cls));
}

TEST(Pattern, CanonicalIsIdempotent) {
  for (int cls = 0; cls < PatternClass::kCount; ++cls)
    EXPECT_EQ(PatternClass::canonical(PatternClass::canonical(cls)),
              PatternClass::canonical(cls));
  EXPECT_THROW(PatternClass::canonical(-1), std::out_of_range);
  EXPECT_THROW(PatternClass::canonical(64), std::out_of_range);
}

TEST(Pattern, VictimSwitchClassification) {
  EXPECT_TRUE(PatternClass::victim_switches(
      PatternClass::encode(VictimActivity::rise, NeighborActivity::hold,
                           NeighborActivity::hold)));
  EXPECT_TRUE(PatternClass::victim_switches(
      PatternClass::encode(VictimActivity::fall, NeighborActivity::hold,
                           NeighborActivity::hold)));
  EXPECT_FALSE(PatternClass::victim_switches(
      PatternClass::encode(VictimActivity::hold_low, NeighborActivity::rise,
                           NeighborActivity::hold)));
  EXPECT_FALSE(PatternClass::victim_switches(
      PatternClass::encode(VictimActivity::hold_high, NeighborActivity::rise,
                           NeighborActivity::hold)));
}

TEST(Pattern, AnySwitchingDetectsQuietClasses) {
  EXPECT_FALSE(PatternClass::any_switching(
      PatternClass::encode(VictimActivity::hold_low, NeighborActivity::hold,
                           NeighborActivity::shield)));
  EXPECT_TRUE(PatternClass::any_switching(
      PatternClass::encode(VictimActivity::hold_low, NeighborActivity::fall,
                           NeighborActivity::shield)));
}

TEST(Pattern, ClassifyVictimFromBits) {
  EXPECT_EQ(classify_victim(false, true), VictimActivity::rise);
  EXPECT_EQ(classify_victim(true, false), VictimActivity::fall);
  EXPECT_EQ(classify_victim(false, false), VictimActivity::hold_low);
  EXPECT_EQ(classify_victim(true, true), VictimActivity::hold_high);
}

TEST(Pattern, ClassifyNeighborFromBits) {
  EXPECT_EQ(classify_neighbor(false, true), NeighborActivity::rise);
  EXPECT_EQ(classify_neighbor(true, false), NeighborActivity::fall);
  EXPECT_EQ(classify_neighbor(false, false), NeighborActivity::hold);
  EXPECT_EQ(classify_neighbor(true, true), NeighborActivity::hold);
}

TEST(Pattern, MillerFactorSums) {
  auto mf = [](VictimActivity v, NeighborActivity l, NeighborActivity r) {
    return miller_factor_sum(PatternClass::encode(v, l, r));
  };
  // Eq. 1: both neighbors opposing a rising victim -> 4.
  EXPECT_DOUBLE_EQ(
      mf(VictimActivity::rise, NeighborActivity::fall, NeighborActivity::fall), 4.0);
  // Both in phase -> 0.
  EXPECT_DOUBLE_EQ(
      mf(VictimActivity::rise, NeighborActivity::rise, NeighborActivity::rise), 0.0);
  // Quiet/shield neighbors -> 1 each.
  EXPECT_DOUBLE_EQ(
      mf(VictimActivity::rise, NeighborActivity::hold, NeighborActivity::shield), 2.0);
  // Falling victim mirrors.
  EXPECT_DOUBLE_EQ(
      mf(VictimActivity::fall, NeighborActivity::rise, NeighborActivity::rise), 4.0);
  // Holding victims have no delay hence no Miller sum.
  EXPECT_DOUBLE_EQ(
      mf(VictimActivity::hold_low, NeighborActivity::fall, NeighborActivity::fall), 0.0);
}

// ---------------------------------------------------------------- table

class TableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const tech::DriverModel driver(sized_paper_bus().node);
    table_ = new DelayEnergyTable(
        DelayEnergyTable::build(sized_paper_bus(), driver, small_lut_config()));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static DelayEnergyTable* table_;
};

DelayEnergyTable* TableTest::table_ = nullptr;

TEST_F(TableTest, AxesMatchConfig) {
  EXPECT_EQ(table_->temps().size(), 1u);
  EXPECT_EQ(table_->corners().size(), 2u);
  EXPECT_EQ(table_->grid().size(), 8u);  // 1.06 .. 1.20 at 20 mV
}

TEST_F(TableTest, WorstPatternSlowestAcrossClasses) {
  const int worst = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                         NeighborActivity::fall);
  const double d_worst = table_->delay(worst, tech::ProcessCorner::slow, 100.0, 1.08);
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    if (!PatternClass::victim_switches(cls)) continue;
    EXPECT_LE(table_->delay(cls, tech::ProcessCorner::slow, 100.0, 1.08),
              d_worst + 1e-15);
  }
}

TEST_F(TableTest, HoldClassesHaveNoDelay) {
  const int hold = PatternClass::encode(VictimActivity::hold_low, NeighborActivity::fall,
                                        NeighborActivity::fall);
  EXPECT_TRUE(std::isnan(table_->delay(hold, tech::ProcessCorner::typical, 100.0, 1.2)));
  // ... but a defined crosstalk-recharge energy, small compared to a full
  // transition. It can be mildly negative: charge pushed back into the rail
  // through held-high repeater stages (the aggressor's own row carries the
  // corresponding positive energy).
  const double e_hold = table_->energy(hold, tech::ProcessCorner::typical, 100.0, 1.2);
  const int swing = PatternClass::encode(VictimActivity::rise, NeighborActivity::hold,
                                         NeighborActivity::hold);
  const double e_swing = table_->energy(swing, tech::ProcessCorner::typical, 100.0, 1.2);
  EXPECT_LT(std::abs(e_hold), 0.6 * e_swing);
}

TEST_F(TableTest, QuietClassesHaveZeroEnergy) {
  const int quiet = PatternClass::encode(VictimActivity::hold_low, NeighborActivity::hold,
                                         NeighborActivity::shield);
  EXPECT_DOUBLE_EQ(table_->energy(quiet, tech::ProcessCorner::typical, 100.0, 1.2), 0.0);
}

TEST_F(TableTest, MirroredClassesShareValues) {
  const int a = PatternClass::encode(VictimActivity::rise, NeighborActivity::shield,
                                     NeighborActivity::fall);
  const int b = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                     NeighborActivity::shield);
  EXPECT_DOUBLE_EQ(table_->delay(a, tech::ProcessCorner::typical, 100.0, 1.1),
                   table_->delay(b, tech::ProcessCorner::typical, 100.0, 1.1));
  EXPECT_DOUBLE_EQ(table_->energy(a, tech::ProcessCorner::typical, 100.0, 1.1),
                   table_->energy(b, tech::ProcessCorner::typical, 100.0, 1.1));
}

TEST_F(TableTest, DelayMonotonicInVoltageAndCorner) {
  const int worst = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                         NeighborActivity::fall);
  double prev = 0.0;
  for (double v = 1.2; v >= 1.06; v -= 0.02) {
    const double d = table_->delay(worst, tech::ProcessCorner::typical, 100.0, v);
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_GT(table_->delay(worst, tech::ProcessCorner::slow, 100.0, 1.2),
            table_->delay(worst, tech::ProcessCorner::typical, 100.0, 1.2));
}

TEST_F(TableTest, InterpolationBetweenGridPoints) {
  const int cls = PatternClass::encode(VictimActivity::rise, NeighborActivity::hold,
                                       NeighborActivity::hold);
  const double lo = table_->delay(cls, tech::ProcessCorner::typical, 100.0, 1.10);
  const double hi = table_->delay(cls, tech::ProcessCorner::typical, 100.0, 1.12);
  const double mid = table_->delay(cls, tech::ProcessCorner::typical, 100.0, 1.11);
  EXPECT_NEAR(mid, 0.5 * (lo + hi), 1e-15);
}

TEST_F(TableTest, OutOfRangeVoltageClampsToEnds) {
  const int cls = PatternClass::encode(VictimActivity::rise, NeighborActivity::hold,
                                       NeighborActivity::hold);
  EXPECT_DOUBLE_EQ(table_->delay(cls, tech::ProcessCorner::typical, 100.0, 2.0),
                   table_->delay(cls, tech::ProcessCorner::typical, 100.0, 1.20));
  EXPECT_DOUBLE_EQ(table_->delay(cls, tech::ProcessCorner::typical, 100.0, 0.5),
                   table_->delay(cls, tech::ProcessCorner::typical, 100.0, 1.06));
}

TEST_F(TableTest, SliceMatchesPointLookups) {
  const TableSlice slice = table_->slice(tech::ProcessCorner::typical, 100.0, 1.13);
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    const double d = table_->delay(cls, tech::ProcessCorner::typical, 100.0, 1.13);
    if (std::isnan(d))
      EXPECT_TRUE(std::isnan(slice.delay[cls]));
    else
      EXPECT_DOUBLE_EQ(slice.delay[cls], d);
    EXPECT_DOUBLE_EQ(slice.energy[cls],
                     table_->energy(cls, tech::ProcessCorner::typical, 100.0, 1.13));
  }
}

TEST_F(TableTest, UncharacterisedAxesThrow) {
  const int cls = 0;
  EXPECT_THROW(table_->delay(cls, tech::ProcessCorner::fast, 100.0, 1.1),
               std::out_of_range);
  EXPECT_THROW(table_->delay(cls, tech::ProcessCorner::typical, 25.0, 1.1),
               std::out_of_range);
}

TEST_F(TableTest, SerializationRoundTrip) {
  std::stringstream buffer;
  table_->save(buffer, 0xdeadbeefull);
  const auto loaded = DelayEnergyTable::load(buffer, 0xdeadbeefull);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid().size(), table_->grid().size());
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    const double a = table_->delay(cls, tech::ProcessCorner::slow, 100.0, 1.1);
    const double b = loaded->delay(cls, tech::ProcessCorner::slow, 100.0, 1.1);
    if (std::isnan(a))
      EXPECT_TRUE(std::isnan(b));
    else
      EXPECT_DOUBLE_EQ(a, b);
  }
}

TEST_F(TableTest, LoadRejectsWrongHash) {
  std::stringstream buffer;
  table_->save(buffer, 1);
  EXPECT_FALSE(DelayEnergyTable::load(buffer, 2).has_value());
}

TEST_F(TableTest, LoadRejectsGarbage) {
  std::stringstream buffer("not a table at all");
  EXPECT_FALSE(DelayEnergyTable::load(buffer, 0).has_value());
}

TEST_F(TableTest, LoadRejectsTruncated) {
  std::stringstream buffer;
  table_->save(buffer, 7);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_FALSE(DelayEnergyTable::load(half, 7).has_value());
}

TEST_F(TableTest, MinShadowSafeVoltageIsConsistent) {
  const std::optional<double> v = table_->min_shadow_safe_voltage(
      sized_paper_bus(), tech::ProcessCorner::slow, 100.0);
  ASSERT_TRUE(v.has_value());
  const int worst = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                         NeighborActivity::fall);
  EXPECT_LE(table_->delay(worst, tech::ProcessCorner::slow, 100.0, *v),
            sized_paper_bus().shadow_capture_limit());
}

// Cross-check against first-order analytics: the characterised worst-case
// delay must land within a factor-of-two band around the Elmore estimate
// (Elmore is a known overestimate for distributed RC, ln2-scaled here).
TEST_F(TableTest, WorstDelayConsistentWithElmoreEstimate) {
  const auto& bus = sized_paper_bus();
  const tech::DriverModel driver(bus.node);
  const double r_drv = driver.effective_resistance(
      bus.repeater_size, tech::ProcessCorner::typical, 100.0, 1.2);
  const double estimate = interconnect::repeated_line_delay(
      r_drv, driver.self_capacitance(bus.repeater_size),
      driver.input_capacitance(bus.repeater_size),
      bus.parasitics.r_per_m * bus.segment_length(),
      bus.parasitics.worst_case_c_per_m() * bus.segment_length(),
      driver.input_capacitance(bus.receiver_size), bus.n_segments);

  const int worst = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                         NeighborActivity::fall);
  const double simulated = table_->delay(worst, tech::ProcessCorner::typical, 100.0, 1.2);
  EXPECT_GT(simulated, 0.5 * estimate);
  EXPECT_LT(simulated, 2.0 * estimate);
}

// Monotonicity across ALL classes and both corners: delay never decreases
// as the supply drops (property sweep over the whole table).
TEST_F(TableTest, AllClassesMonotoneInSupply) {
  for (const auto corner : {tech::ProcessCorner::slow, tech::ProcessCorner::typical}) {
    for (int cls = 0; cls < PatternClass::kCount; ++cls) {
      if (!PatternClass::victim_switches(cls)) continue;
      double prev = 0.0;
      for (double v = 1.20; v >= 1.06 - 1e-9; v -= 0.02) {
        const double d = table_->delay(cls, corner, 100.0, v);
        EXPECT_GE(d, prev - 1e-15) << "class " << cls << " at " << v;
        prev = d;
      }
    }
  }
}

// ---------------------------------------------------------------- hashing

TEST(TableHash, SensitiveToDesignChanges) {
  const LutConfig config = small_lut_config();
  const BusDesign a = sized_paper_bus();
  BusDesign b = a;
  b.repeater_size += 1.0;
  BusDesign c = a;
  c.parasitics.cc_per_m *= 1.01;
  EXPECT_NE(table_key_hash(a, config), table_key_hash(b, config));
  EXPECT_NE(table_key_hash(a, config), table_key_hash(c, config));
  EXPECT_EQ(table_key_hash(a, config), table_key_hash(a, config));
}

TEST(TableHash, SensitiveToConfigChanges) {
  const BusDesign bus = sized_paper_bus();
  LutConfig a = small_lut_config();
  LutConfig b = a;
  b.vstep = 0.040;
  EXPECT_NE(table_key_hash(bus, a), table_key_hash(bus, b));
}

// ---------------------------------------------------------------- cache

TEST(Cache, BuildStoreReload) {
  // Use an isolated cache directory for this test.
  const std::string dir = "./.razorbus_cache_test";
  std::filesystem::remove_all(dir);
  setenv("RAZORBUS_CACHE_DIR", dir.c_str(), 1);

  const tech::DriverModel driver(sized_paper_bus().node);
  LutConfig tiny = small_lut_config();
  tiny.vmin = 1.18;  // 2 grid points only: fast build
  tiny.corners = {tech::ProcessCorner::typical};

  int build_calls = 0;
  const auto progress = [&build_calls](int, int) { ++build_calls; };
  const DelayEnergyTable first = build_or_load(sized_paper_bus(), driver, tiny, progress);
  EXPECT_GT(build_calls, 0);  // cache miss: built

  build_calls = 0;
  const DelayEnergyTable second =
      build_or_load(sized_paper_bus(), driver, tiny, progress);
  EXPECT_EQ(build_calls, 0);  // cache hit: loaded

  const int cls = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                       NeighborActivity::fall);
  EXPECT_DOUBLE_EQ(first.delay(cls, tech::ProcessCorner::typical, 100.0, 1.2),
                   second.delay(cls, tech::ProcessCorner::typical, 100.0, 1.2));

  unsetenv("RAZORBUS_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace razorbus::lut

// Lifetime-scale drift (drift::Schedule + the sys::BusSystem drift
// wrapper): schedule math (lerp, clamp, validation, corner quantisation
// and the vth -> IR-drop fold), the ZERO-DRIFT byte-identity contract (a
// disabled or constant-at-the-corner schedule reproduces the static-corner
// run exactly), ramp monotonicity in the expected physical direction, and
// thread-count independence of drift runs (this suite also runs under
// TSan — concurrent drift runs share one characterised table).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/experiments.hpp"
#include "drift/schedule.hpp"
#include "sys/bus_system.hpp"
#include "test_support.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"

using namespace razorbus;

namespace {

constexpr std::size_t kCycles = 30000;

// The drift suite needs a system whose voltage axis reaches the error
// wall — test_support::small_system()'s 1.06 V vmin never yields a
// receiver error at any closed-loop supply, which would make every drift
// schedule invisible. Same cheap single-temperature configuration, with
// the axis extended down to 0.90 V (the shared point store keeps the
// extra grid points from re-simulating anything other builds covered).
const core::DvsBusSystem& drift_system() {
  static const core::DvsBusSystem system = [] {
    core::SystemOptions options;
    options.lut_config = test_support::small_lut_config();
    options.lut_config.vmin = 0.90;
    return core::DvsBusSystem(test_support::sized_paper_bus(), options);
  }();
  return system;
}

trace::SyntheticConfig synth_config(std::size_t cycles, std::uint64_t seed) {
  trace::SyntheticConfig cfg;
  cfg.cycles = cycles;
  cfg.load_rate = 0.5;
  cfg.seed = seed;
  cfg.n_bits = 32;
  return cfg;
}

trace::Trace synth(std::size_t cycles, std::uint64_t seed) {
  return trace::generate_synthetic(synth_config(cycles, seed), "drift");
}

sys::SystemRunConfig run_config(drift::Schedule schedule = {}) {
  sys::SystemRunConfig config;
  config.controller.window_cycles = 2000;
  config.regulator_delay_cycles = 700;
  config.record_series = true;
  config.drift = std::move(schedule);
  return config;
}

void expect_reports_eq(const sys::SystemRunReport& a, const sys::SystemRunReport& b) {
  ASSERT_EQ(a.per_bus.size(), b.per_bus.size());
  for (std::size_t l = 0; l < a.per_bus.size(); ++l) {
    EXPECT_EQ(a.per_bus[l].totals.cycles, b.per_bus[l].totals.cycles);
    EXPECT_EQ(a.per_bus[l].totals.errors, b.per_bus[l].totals.errors);
    EXPECT_EQ(a.per_bus[l].totals.shadow_failures, b.per_bus[l].totals.shadow_failures);
    EXPECT_EQ(a.per_bus[l].totals.bus_energy, b.per_bus[l].totals.bus_energy);
    EXPECT_EQ(a.per_bus[l].totals.overhead_energy,
              b.per_bus[l].totals.overhead_energy);
    EXPECT_EQ(a.per_bus[l].baseline_bus_energy, b.per_bus[l].baseline_bus_energy);
  }
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].end_cycle, b.series[i].end_cycle);
    EXPECT_EQ(a.series[i].supply, b.series[i].supply);
    EXPECT_EQ(a.series[i].error_rate, b.series[i].error_rate);
  }
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.floor_supply, b.floor_supply);
  EXPECT_EQ(a.average_supply, b.average_supply);
  EXPECT_EQ(a.wall_tracking_error, b.wall_tracking_error);
  EXPECT_EQ(a.env_updates, b.env_updates);
}

}  // namespace

// ------------------------------------------------------------- schedule

TEST(DriftSchedule, DefaultConstructedIsDisabled) {
  const drift::Schedule schedule;
  EXPECT_FALSE(schedule.enabled());
}

TEST(DriftSchedule, LinearInterpolatesAndClamps) {
  const auto s = drift::Schedule::linear(1000, 25.0, 100.0, 0.0, 0.1);
  ASSERT_TRUE(s.enabled());
  EXPECT_DOUBLE_EQ(s.at(0).temp_c, 25.0);
  EXPECT_DOUBLE_EQ(s.at(0).vth_shift_v, 0.0);
  EXPECT_DOUBLE_EQ(s.at(500).temp_c, 62.5);
  EXPECT_DOUBLE_EQ(s.at(500).vth_shift_v, 0.05);
  EXPECT_DOUBLE_EQ(s.at(1000).temp_c, 100.0);
  // Clamped past the end: lifetime runs longer than the ramp hold the
  // final state.
  EXPECT_DOUBLE_EQ(s.at(5000).temp_c, 100.0);
  EXPECT_DOUBLE_EQ(s.at(5000).vth_shift_v, 0.1);
}

TEST(DriftSchedule, PiecewiseInterpolatesBetweenBreakpoints) {
  const auto s = drift::Schedule::piecewise(
      {{1000, 30.0, 0.0}, {2000, 50.0, 0.02}, {4000, 50.0, 0.06}});
  EXPECT_DOUBLE_EQ(s.at(0).temp_c, 30.0);    // clamped before the first point
  EXPECT_DOUBLE_EQ(s.at(1500).temp_c, 40.0);
  EXPECT_DOUBLE_EQ(s.at(1500).vth_shift_v, 0.01);
  EXPECT_DOUBLE_EQ(s.at(3000).temp_c, 50.0);
  EXPECT_DOUBLE_EQ(s.at(3000).vth_shift_v, 0.04);
}

TEST(DriftSchedule, Validation) {
  EXPECT_THROW(drift::Schedule::linear(0, 25.0, 100.0, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(drift::Schedule::piecewise({}), std::invalid_argument);
  // Breakpoint cycles must be strictly increasing.
  EXPECT_THROW(drift::Schedule::piecewise({{100, 25.0, 0.0}, {100, 30.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(drift::Schedule::piecewise({{200, 25.0, 0.0}, {100, 30.0, 0.0}}),
               std::invalid_argument);
  // Out-of-range operating states.
  EXPECT_THROW(drift::Schedule::linear(100, 25.0, 400.0, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(drift::Schedule::linear(100, 25.0, 100.0, -0.1, 0.0),
               std::invalid_argument);
}

TEST(DriftSchedule, CornerSnapsToTemperatureAxisAndFoldsVth) {
  const std::vector<double> axis{25.0, 100.0};
  tech::PvtCorner base;
  base.temp_c = 25.0;
  base.ir_drop_fraction = 0.05;

  const auto low = drift::Schedule::linear(100, 40.0, 40.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(low.corner_at(base, 0, 1.2, axis).temp_c, 25.0);
  const auto high = drift::Schedule::linear(100, 80.0, 80.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(high.corner_at(base, 0, 1.2, axis).temp_c, 100.0);

  // dVth/vdd stacks on the base IR drop: 0.05 + 0.06/1.2 = 0.10.
  const auto aged = drift::Schedule::linear(100, 25.0, 25.0, 0.06, 0.06);
  const tech::PvtCorner folded = aged.corner_at(base, 50, 1.2, axis);
  EXPECT_DOUBLE_EQ(folded.ir_drop_fraction, 0.10);
  EXPECT_EQ(folded.process, base.process);

  // A shift that eats the whole supply is rejected.
  const auto fatal = drift::Schedule::linear(100, 25.0, 25.0, 1.3, 1.3);
  EXPECT_THROW(fatal.corner_at(base, 0, 1.2, axis), std::invalid_argument);
}

TEST(DriftSchedule, FromSpecResolvesLinearOverTheCycleBudget) {
  core::DriftSpec spec;
  EXPECT_FALSE(sys::schedule_from_spec(spec, 1000).enabled());

  spec.enabled = true;
  spec.temp_start = 25.0;
  spec.temp_end = 100.0;
  const auto linear = sys::schedule_from_spec(spec, 1000);
  ASSERT_TRUE(linear.enabled());
  EXPECT_DOUBLE_EQ(linear.at(500).temp_c, 62.5);

  spec.points = {{0, 30.0, 0.0}, {500, 90.0, 0.01}};
  const auto piecewise = sys::schedule_from_spec(spec, 1000);
  ASSERT_EQ(piecewise.points().size(), 2u);
  EXPECT_DOUBLE_EQ(piecewise.at(250).temp_c, 60.0);
}

// ------------------------------------------------------- zero-drift parity

// The load-bearing contract (ISSUE acceptance): a schedule that never
// moves the corner must reproduce the static-corner run BYTE-identically.
// Two flavours: a disabled schedule (the wrapper is skipped entirely) and
// a constant schedule pinned at the environment's own operating point
// (the wrapper runs but every re-derivation is a no-op).
TEST(DriftParity, ZeroDriftMatchesStaticRunByteIdentically) {
  const trace::Trace trace = synth(kCycles, 3);
  const sys::BusSystem system({{&drift_system(), 1.0}});
  // typical_corner() is 100C and small_system's axis is {100}, so the
  // constant schedule re-derives exactly the environment corner.
  const auto constant = drift::Schedule::linear(kCycles, 100.0, 100.0, 0.0, 0.0);

  const sys::SystemRunReport plain =
      system.run_closed_loop(tech::typical_corner(), {trace}, run_config());
  const sys::SystemRunReport zero = system.run_closed_loop(
      tech::typical_corner(), {trace}, run_config(constant));
  expect_reports_eq(plain, zero);
  EXPECT_EQ(zero.env_updates, 0u);

  // And both equal the single-bus driver (transitively: drift runs sit on
  // the same N=1-parity loop the system tests pin down).
  core::DvsRunConfig single_cfg;
  single_cfg.controller.window_cycles = 2000;
  single_cfg.regulator_delay_cycles = 700;
  single_cfg.record_series = true;
  const core::DvsRunReport single =
      core::run_closed_loop(drift_system(), tech::typical_corner(), trace, single_cfg);
  EXPECT_EQ(zero.per_bus.front().totals.errors, single.totals.errors);
  EXPECT_EQ(zero.per_bus.front().totals.bus_energy, single.totals.bus_energy);
  EXPECT_EQ(zero.average_supply, single.average_supply);
}

TEST(DriftParity, ZeroDriftStreamedMatchesMaterialized) {
  const auto cfg_src = synth_config(kCycles, 5);
  const sys::BusSystem system({{&drift_system(), 1.0}});
  const auto constant = drift::Schedule::linear(kCycles, 100.0, 100.0, 0.0, 0.0);

  const trace::Trace trace = trace::generate_synthetic(cfg_src, "drift");
  const sys::SystemRunReport materialized = system.run_closed_loop(
      tech::typical_corner(), {trace}, run_config(constant));

  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  sources.push_back(trace::make_synthetic_source(cfg_src, "drift"));
  core::StreamConfig stream;
  stream.block_cycles = 1537;
  const sys::SystemRunReport streamed = system.run_closed_loop_streamed(
      tech::typical_corner(), sources, run_config(constant), stream);
  expect_reports_eq(materialized, streamed);
}

// ----------------------------------------------------------- drift physics

// Threshold-shift aging raises the effective IR drop window by window, so
// the closed loop must hold a higher average supply than the fresh run —
// and must actually have applied corner updates along the way.
TEST(DriftPhysics, AgingRampRaisesTheHeldSupplyMonotonically) {
  const trace::Trace trace = synth(kCycles, 7);
  const sys::BusSystem system({{&drift_system(), 1.0}});

  const sys::SystemRunReport fresh =
      system.run_closed_loop(tech::typical_corner(), {trace}, run_config());
  const auto aging = drift::Schedule::linear(kCycles, 100.0, 100.0, 0.0, 0.08);
  const sys::SystemRunReport aged = system.run_closed_loop(
      tech::typical_corner(), {trace}, run_config(aging));

  EXPECT_GT(aged.env_updates, 0u);
  EXPECT_GT(aged.average_supply, fresh.average_supply);
  // The regulator floor is a property of the base process corner, not the
  // drifted operating point.
  EXPECT_EQ(aged.floor_supply, fresh.floor_supply);

  // Stronger monotonicity: more aging by the end of life, higher supply.
  const auto milder = drift::Schedule::linear(kCycles, 100.0, 100.0, 0.0, 0.04);
  const sys::SystemRunReport mild = system.run_closed_loop(
      tech::typical_corner(), {trace}, run_config(milder));
  EXPECT_GE(aged.average_supply, mild.average_supply);
  EXPECT_GE(mild.average_supply, fresh.average_supply);
}

// Streamed drift runs agree with materialized drift runs even when the
// schedule is active (window boundaries, not block boundaries, drive the
// corner updates).
TEST(DriftPhysics, ActiveDriftStreamedMatchesMaterialized) {
  const auto cfg_src = synth_config(kCycles, 11);
  const sys::BusSystem system({{&drift_system(), 1.0}});
  const auto aging = drift::Schedule::linear(kCycles, 100.0, 100.0, 0.01, 0.06);

  const trace::Trace trace = trace::generate_synthetic(cfg_src, "drift");
  const sys::SystemRunReport materialized = system.run_closed_loop(
      tech::typical_corner(), {trace}, run_config(aging));
  EXPECT_GT(materialized.env_updates, 0u);

  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  sources.push_back(trace::make_synthetic_source(cfg_src, "drift"));
  core::StreamConfig stream;
  stream.block_cycles = 997;
  const sys::SystemRunReport streamed = system.run_closed_loop_streamed(
      tech::typical_corner(), sources, run_config(aging), stream);
  expect_reports_eq(materialized, streamed);
}

// --------------------------------------------------------------- threading

// Drift runs only read the shared characterised table, so N concurrent
// runs over one system must each reproduce the serial report exactly.
// Under TSan (this test is in the sanitizer matrix) this also proves the
// drift path added no unsynchronised shared state.
TEST(DriftThreading, ConcurrentDriftRunsAreThreadCountIndependent) {
  const trace::Trace trace = synth(kCycles / 2, 13);
  const sys::BusSystem system({{&drift_system(), 1.0}});
  const auto aging = drift::Schedule::linear(kCycles / 2, 100.0, 100.0, 0.0, 0.06);

  const sys::SystemRunReport serial = system.run_closed_loop(
      tech::typical_corner(), {trace}, run_config(aging));

  constexpr int kThreads = 4;
  std::vector<sys::SystemRunReport> reports(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      reports[i] = system.run_closed_loop(tech::typical_corner(), {trace},
                                          run_config(aging));
    });
  for (auto& t : threads) t.join();
  for (const auto& report : reports) expect_reports_eq(serial, report);
}

#include <gtest/gtest.h>

#include "dvs/controller.hpp"
#include "dvs/fixed_vs.hpp"
#include "dvs/oracle.hpp"
#include "util/rng.hpp"
#include "dvs/proportional.hpp"
#include "dvs/regulator.hpp"
#include "test_support.hpp"
#include "trace/synthetic.hpp"

namespace razorbus::dvs {
namespace {

using test_support::small_system;

// ---------------------------------------------------------------- regulator

TEST(Regulator, AppliesChangeAfterRampDelay) {
  VoltageRegulator reg(1.2, 0.9, 1.2, 3000);
  EXPECT_TRUE(reg.request_change(-0.020, 0));
  EXPECT_DOUBLE_EQ(reg.advance(2999), 1.2);  // still ramping
  EXPECT_DOUBLE_EQ(reg.advance(3000), 1.18);
  EXPECT_FALSE(reg.change_pending());
}

TEST(Regulator, IgnoresRequestsWhileRamping) {
  VoltageRegulator reg(1.2, 0.9, 1.2, 3000);
  EXPECT_TRUE(reg.request_change(-0.020, 0));
  EXPECT_FALSE(reg.request_change(-0.020, 100));  // in flight
  reg.advance(3000);
  EXPECT_TRUE(reg.request_change(-0.020, 3001));
  EXPECT_DOUBLE_EQ(reg.advance(6001), 1.16);
}

TEST(Regulator, ClampsToFloorAndCeiling) {
  VoltageRegulator reg(0.91, 0.9, 1.2, 10);
  EXPECT_TRUE(reg.request_change(-0.050, 0));
  EXPECT_DOUBLE_EQ(reg.advance(10), 0.90);  // clamped at the floor
  EXPECT_FALSE(reg.request_change(-0.020, 20));  // already at the floor

  VoltageRegulator top(1.2, 0.9, 1.2, 10);
  EXPECT_FALSE(top.request_change(+0.020, 0));  // already at the ceiling
}

TEST(Regulator, InitialVoltageClamped) {
  VoltageRegulator reg(2.0, 0.9, 1.2, 10);
  EXPECT_DOUBLE_EQ(reg.voltage(), 1.2);
  EXPECT_THROW(VoltageRegulator(1.0, 1.2, 0.9, 10), std::invalid_argument);
}

TEST(Regulator, ZeroDelayAppliesOnNextAdvance) {
  VoltageRegulator reg(1.0, 0.9, 1.2, 0);
  reg.request_change(+0.020, 5);
  EXPECT_DOUBLE_EQ(reg.advance(5), 1.02);
}

TEST(Regulator, SubEpsilonResidualDeltaDoesNotBlockRealRequests) {
  // Regression: request_change compared target == voltage_ exactly, so a
  // sub-epsilon residual (e.g. the float dust left after stepping down to a
  // clamp) enqueued a no-op ramp that blocked real requests for the whole
  // ramp delay. The compare is now tolerant, like BusSimulator::set_supply.
  VoltageRegulator reg(0.90 + 2e-10, 0.9, 1.2, 3000);
  EXPECT_FALSE(reg.request_change(-0.020, 0));  // clamps to vmin: no-op delta
  EXPECT_FALSE(reg.change_pending());           // nothing in flight...
  EXPECT_TRUE(reg.request_change(+0.020, 10));  // ...so a real request lands now
  EXPECT_DOUBLE_EQ(reg.advance(3010), 0.90 + 2e-10 + 0.020);
}

// ---------------------------------------------------------------- controller

TEST(Controller, DecisionsFollowThePaperBand) {
  ControllerConfig cfg;
  cfg.window_cycles = 100;
  ThresholdController ctl(cfg);

  // Window 1: no errors -> rate 0 < 1% -> step down.
  VoltageDecision last = VoltageDecision::hold;
  for (int i = 0; i < 100; ++i) last = ctl.observe_cycle(false);
  EXPECT_EQ(last, VoltageDecision::step_down);
  EXPECT_DOUBLE_EQ(ctl.last_window_error_rate(), 0.0);

  // Window 2: 1.5% errors -> inside the band -> hold.
  for (int i = 0; i < 100; ++i)
    last = ctl.observe_cycle(i < 2);  // 2 errors? 2% is > band
  EXPECT_EQ(ctl.windows_completed(), 2u);
  // 2/100 = 2% which is NOT > 2%: hold.
  EXPECT_EQ(last, VoltageDecision::hold);

  // Window 3: 5% errors -> step up.
  for (int i = 0; i < 100; ++i) last = ctl.observe_cycle(i < 5);
  EXPECT_EQ(last, VoltageDecision::step_up);
  EXPECT_DOUBLE_EQ(ctl.last_window_error_rate(), 0.05);
}

TEST(Controller, MidWindowAlwaysHolds) {
  ControllerConfig cfg;
  cfg.window_cycles = 10;
  ThresholdController ctl(cfg);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(ctl.observe_cycle(true), VoltageDecision::hold);
}

TEST(Controller, BoundaryRatesExactlyAtThresholds) {
  ControllerConfig cfg;
  cfg.window_cycles = 100;
  ThresholdController ctl(cfg);
  // Exactly 1%: not < 1% and not > 2% -> hold.
  VoltageDecision last = VoltageDecision::step_up;
  for (int i = 0; i < 100; ++i) last = ctl.observe_cycle(i < 1);
  EXPECT_EQ(last, VoltageDecision::hold);
}

TEST(Controller, ResetClearsState) {
  ControllerConfig cfg;
  cfg.window_cycles = 10;
  ThresholdController ctl(cfg);
  for (int i = 0; i < 10; ++i) ctl.observe_cycle(true);
  EXPECT_EQ(ctl.windows_completed(), 1u);
  ctl.reset();
  EXPECT_EQ(ctl.windows_completed(), 0u);
  EXPECT_DOUBLE_EQ(ctl.last_window_error_rate(), 0.0);
}

TEST(Controller, ValidatesConfig) {
  ControllerConfig bad;
  bad.window_cycles = 0;
  EXPECT_THROW(ThresholdController{bad}, std::invalid_argument);
  bad = ControllerConfig{};
  bad.high_threshold = 0.005;  // below low
  EXPECT_THROW(ThresholdController{bad}, std::invalid_argument);
  bad = ControllerConfig{};
  bad.voltage_step = 0.0;
  EXPECT_THROW(ThresholdController{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------- fixed VS

TEST(FixedVs, SlowProcessCannotScaleAtAll) {
  // The bus is sized so the worst pattern exactly meets timing at the slow
  // corner with worst environment: the fixed-VS baseline stays at nominal
  // (paper Table 1: 0% gains).
  const double v = fixed_vs_voltage(small_system().design(), small_system().table(),
                                    tech::ProcessCorner::slow);
  EXPECT_DOUBLE_EQ(v, 1.2);
}

TEST(FixedVs, TypicalProcessRecoversGlobalMargin) {
  const double v = fixed_vs_voltage(small_system().design(), small_system().table(),
                                    tech::ProcessCorner::typical);
  EXPECT_LT(v, 1.2);
  EXPECT_GT(v, 1.0);  // paper: ~17% energy gain => ~1.09-1.12 V
}

TEST(FixedVs, DvsFloorIsBelowFixedVs) {
  // The shadow latch tolerates ~33% more delay, so the DVS floor must sit
  // clearly below the fixed-VS (error-free) supply. (Evaluated without IR
  // drop so the small test table's narrow grid can resolve both levels;
  // core_test covers the full conservative environment.)
  ConservativeEnvironment env;
  env.ir_drop_fraction = 0.0;
  const auto p = tech::ProcessCorner::slow;  // typical bottoms out the small grid
  const double fixed =
      fixed_vs_voltage(small_system().design(), small_system().table(), p, env);
  const double floor =
      dvs_floor_voltage(small_system().design(), small_system().table(), p, env);
  EXPECT_LT(floor, fixed);
}

TEST(FixedVs, LessConservativeEnvironmentAllowsLowerSupply) {
  ConservativeEnvironment mild;
  mild.ir_drop_fraction = 0.0;
  const double with_ir = fixed_vs_voltage(small_system().design(), small_system().table(),
                                          tech::ProcessCorner::typical);
  const double without_ir =
      fixed_vs_voltage(small_system().design(), small_system().table(),
                       tech::ProcessCorner::typical, mild);
  EXPECT_LT(without_ir, with_ir);
}


TEST(ThresholdControllerSegments, BatchMatchesPerCycleDecisions) {
  ControllerConfig cfg;
  cfg.window_cycles = 100;
  ThresholdController per_cycle(cfg);
  ThresholdController batched(cfg);
  Rng rng(17);

  std::uint64_t pending_cycles = 0, pending_errors = 0;
  for (int i = 0; i < 2500; ++i) {
    const bool error = rng.bernoulli(0.015);
    const VoltageDecision a = per_cycle.observe_cycle(error);
    ++pending_cycles;
    if (error) ++pending_errors;
    // Flush at irregular points; window boundaries always force a flush,
    // so a batch never crosses one. A boundary flush must reproduce the
    // per-cycle decision; a mid-window flush must hold, like a does.
    if (pending_cycles == batched.cycles_remaining_in_window() ||
        rng.bernoulli(0.1)) {
      const VoltageDecision b = batched.observe_segment(pending_cycles, pending_errors);
      EXPECT_EQ(b, a) << "cycle " << i;
      EXPECT_EQ(batched.windows_completed(), per_cycle.windows_completed());
      pending_cycles = 0;
      pending_errors = 0;
    }
  }
  EXPECT_EQ(batched.last_window_error_rate(), per_cycle.last_window_error_rate());
}

TEST(ThresholdControllerSegments, CrossingWindowBoundaryRejected) {
  ControllerConfig cfg;
  cfg.window_cycles = 100;
  ThresholdController ctl(cfg);
  ctl.observe_segment(40, 0);
  EXPECT_EQ(ctl.cycles_remaining_in_window(), 60u);
  EXPECT_THROW(ctl.observe_segment(61, 0), std::invalid_argument);
  EXPECT_THROW(ctl.observe_segment(10, 11), std::invalid_argument);
  EXPECT_EQ(ctl.observe_segment(60, 0), VoltageDecision::step_down);
}

TEST(RegulatorPending, NextChangeCycleTracksPending) {
  VoltageRegulator reg(1.2, 1.0, 1.2, 500);
  EXPECT_EQ(reg.next_change_cycle(), VoltageRegulator::kNoPendingChange);
  EXPECT_TRUE(reg.request_change(-0.02, 100));
  EXPECT_EQ(reg.next_change_cycle(), 600u);
  reg.advance(599);
  EXPECT_DOUBLE_EQ(reg.voltage(), 1.2);
  reg.advance(600);
  EXPECT_DOUBLE_EQ(reg.voltage(), 1.18);
  EXPECT_EQ(reg.next_change_cycle(), VoltageRegulator::kNoPendingChange);
}

// ---------------------------------------------------------------- oracle

class OracleTest : public ::testing::Test {
 protected:
  tech::PvtCorner env_{tech::ProcessCorner::slow, 100.0, 0.0};
  OracleSelector oracle_{small_system().design(), small_system().table(), env_};
};

TEST_F(OracleTest, CriticalIndexZeroForQuietCycle) {
  EXPECT_EQ(oracle_.critical_grid_index(0x0, 0x0), 0u);
}

TEST_F(OracleTest, CriticalIndexHigherForWorsePatterns) {
  // A lone rising wire (quiet neighbors) vs a full opposing checkerboard.
  const auto lone = oracle_.critical_grid_index(0x0, 0x10u);
  const auto checker = oracle_.critical_grid_index(0x55555555u, 0xAAAAAAAAu);
  EXPECT_LE(lone, checker);
  EXPECT_GT(checker, 0u);
}

TEST_F(OracleTest, ClassCriticalIndicesMonotoneInMiller) {
  const auto& idx = oracle_.class_critical_index();
  const int worst = lut::PatternClass::encode(
      lut::VictimActivity::rise, lut::NeighborActivity::fall,
      lut::NeighborActivity::fall);
  const int best = lut::PatternClass::encode(
      lut::VictimActivity::rise, lut::NeighborActivity::rise,
      lut::NeighborActivity::rise);
  EXPECT_GE(idx[static_cast<std::size_t>(worst)], idx[static_cast<std::size_t>(best)]);
}

TEST_F(OracleTest, ZeroTargetPicksVoltageWithNoErrors) {
  trace::SyntheticConfig cfg;
  cfg.style = trace::SyntheticStyle::uniform;
  cfg.cycles = 20000;
  cfg.load_rate = 0.3;
  const trace::Trace t = trace::generate_synthetic(cfg, "uniform");

  OracleConfig ocfg;
  ocfg.window_cycles = 5000;
  ocfg.target_error_rate = 0.0;
  const OracleResult r = oracle_.select(t, ocfg);
  EXPECT_DOUBLE_EQ(r.achieved_error_rate, 0.0);
  ASSERT_EQ(r.window_voltages.size(), 4u);
}

TEST_F(OracleTest, HigherTargetAllowsLowerVoltages) {
  trace::SyntheticConfig cfg;
  cfg.style = trace::SyntheticStyle::uniform;
  cfg.cycles = 40000;
  cfg.load_rate = 0.3;
  const trace::Trace t = trace::generate_synthetic(cfg, "uniform");

  auto average_voltage = [&](double target) {
    OracleConfig ocfg;
    ocfg.window_cycles = 10000;
    ocfg.target_error_rate = target;
    const OracleResult r = oracle_.select(t, ocfg);
    double sum = 0.0;
    for (const double v : r.window_voltages) sum += v;
    return sum / static_cast<double>(r.window_voltages.size());
  };
  EXPECT_LE(average_voltage(0.05), average_voltage(0.02));
  EXPECT_LE(average_voltage(0.02), average_voltage(0.0));
}

TEST_F(OracleTest, AchievedErrorRateRespectsTarget) {
  trace::SyntheticConfig cfg;
  cfg.style = trace::SyntheticStyle::uniform;
  cfg.cycles = 50000;
  cfg.load_rate = 0.4;
  const trace::Trace t = trace::generate_synthetic(cfg, "uniform");

  OracleConfig ocfg;
  ocfg.window_cycles = 10000;
  ocfg.target_error_rate = 0.02;
  const OracleResult r = oracle_.select(t, ocfg);
  EXPECT_LE(r.achieved_error_rate, 0.02 + 1e-9);
}

TEST_F(OracleTest, FloorIsRespected) {
  trace::SyntheticConfig cfg;
  cfg.cycles = 20000;
  cfg.load_rate = 0.05;  // nearly idle: the oracle wants to go very low
  const trace::Trace t = trace::generate_synthetic(cfg, "idle");

  OracleConfig ocfg;
  ocfg.window_cycles = 5000;
  ocfg.target_error_rate = 0.05;
  ocfg.vmin = 1.10;
  const OracleResult r = oracle_.select(t, ocfg);
  for (const double v : r.window_voltages) EXPECT_GE(v, 1.10 - 1e-9);
}

TEST_F(OracleTest, TimeFractionsSumToOne) {
  trace::SyntheticConfig cfg;
  cfg.cycles = 30000;
  cfg.load_rate = 0.3;
  const trace::Trace t = trace::generate_synthetic(cfg, "u");
  OracleConfig ocfg;
  ocfg.target_error_rate = 0.02;
  const OracleResult r = oracle_.select(t, ocfg);
  double total = 0.0;
  for (const auto& [v, frac] : r.time_at_voltage.fractions()) {
    (void)v;
    total += frac;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(OracleTest, ZeroWindowRejected) {
  OracleConfig bad;
  bad.window_cycles = 0;
  trace::Trace t{"t", {1, 2, 3}};
  EXPECT_THROW(oracle_.select(t, bad), std::invalid_argument);
}

// ---------------------------------------------------------- proportional

TEST(Proportional, NoChangeMidWindowOrOnTarget) {
  ProportionalConfig cfg;
  cfg.window_cycles = 100;
  cfg.target_error_rate = 0.02;
  ProportionalController ctl(cfg);
  // Mid-window: always zero.
  for (int i = 0; i < 99; ++i) EXPECT_DOUBLE_EQ(ctl.observe_cycle(true), 0.0);
  // Window closes at exactly 99/100 errors -> huge positive request.
  EXPECT_GT(ctl.observe_cycle(true), 0.0);

  // A window exactly on target requests nothing.
  for (int i = 0; i < 100; ++i) {
    const double delta = ctl.observe_cycle(i < 2);  // 2% = target
    if (i == 99) {
      EXPECT_DOUBLE_EQ(delta, 0.0);
    }
  }
}

TEST(Proportional, RequestScalesWithOvershoot) {
  ProportionalConfig cfg;
  cfg.window_cycles = 1000;
  cfg.target_error_rate = 0.015;
  cfg.gain = 2.0;
  ProportionalController ctl(cfg);
  auto window = [&](int errors) {
    double delta = 0.0;
    for (int i = 0; i < 1000; ++i) delta = ctl.observe_cycle(i < errors);
    return delta;
  };
  // 2.5% (=1pp over target): 2.0 * 0.01 = 20 mV -> one quantum up.
  EXPECT_NEAR(window(25), 0.020, 1e-12);
  // 4.5% (=3pp over): 60 mV.
  EXPECT_NEAR(window(45), 0.060, 1e-12);
  // 0%: 1.5pp under -> -20 mV (truncated toward zero from -30 mV).
  EXPECT_NEAR(window(0), -0.020, 1e-12);
}

TEST(Proportional, ClampedToMaxStep) {
  ProportionalConfig cfg;
  cfg.window_cycles = 100;
  cfg.gain = 10.0;
  cfg.max_step = 0.060;
  ProportionalController ctl(cfg);
  double delta = 0.0;
  for (int i = 0; i < 100; ++i) delta = ctl.observe_cycle(true);  // 100% errors
  EXPECT_NEAR(delta, 0.060, 1e-12);
}

TEST(Proportional, SubQuantumRequestsRoundToZero) {
  ProportionalConfig cfg;
  cfg.window_cycles = 1000;
  cfg.target_error_rate = 0.015;
  cfg.gain = 1.0;  // 0.5pp overshoot -> 5 mV < quantum
  ProportionalController ctl(cfg);
  double delta = 0.0;
  for (int i = 0; i < 1000; ++i) delta = ctl.observe_cycle(i < 20);  // 2.0%
  EXPECT_DOUBLE_EQ(delta, 0.0);
}

TEST(Proportional, ValidatesConfig) {
  ProportionalConfig bad;
  bad.window_cycles = 0;
  EXPECT_THROW(ProportionalController{bad}, std::invalid_argument);
  bad = ProportionalConfig{};
  bad.gain = -1.0;
  EXPECT_THROW(ProportionalController{bad}, std::invalid_argument);
  bad = ProportionalConfig{};
  bad.target_error_rate = 1.5;
  EXPECT_THROW(ProportionalController{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace razorbus::dvs

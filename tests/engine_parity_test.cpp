// Engine parity: the bit-parallel batched engine must reproduce the
// per-wire reference engine cycle for cycle — errors, shadow failures and
// energies bit-identical — at every operating point (see DESIGN.md §5).
//
// The suite sweeps all three process corners, both characterised
// temperatures and a supply ladder from error-free down to shadow-failure
// territory, over traces exercising every structural case: idle runs,
// all-toggle checkerboards, shield-adjacent patterns and random traffic,
// with and without common-mode timing jitter.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bus/simulator.hpp"
#include "core/experiments.hpp"
#include "core/system.hpp"
#include "dvs/regulator.hpp"
#include "interconnect/bus_design.hpp"
#include "lut/pattern.hpp"
#include "test_support.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace razorbus::bus {
namespace {

// Full corner/temperature axes with a supply grid reaching low enough that
// the slow corner produces corrected AND shadow-failed captures. Narrower
// than the paper grid to keep first-run characterization cheap (cached on
// disk afterwards, like every other suite).
const core::DvsBusSystem& parity_system() {
  static const core::DvsBusSystem system = [] {
    core::SystemOptions options;
    options.lut_config.vmin = 0.78;
    options.lut_config.vmax = 1.20;
    options.lut_config.vstep = 0.020;
    options.lut_config.temps = {25.0, 100.0};
    options.lut_config.corners = {tech::ProcessCorner::slow, tech::ProcessCorner::typical,
                                  tech::ProcessCorner::fast};
    return core::DvsBusSystem(test_support::sized_paper_bus(), options);
  }();
  return system;
}

std::vector<std::uint32_t> pattern_trace(const std::string& kind, std::size_t cycles,
                                         std::uint64_t seed) {
  std::vector<std::uint32_t> words;
  words.reserve(cycles);
  Rng rng(seed);
  if (kind == "random") {
    for (std::size_t i = 0; i < cycles; ++i)
      words.push_back(rng.bernoulli(0.45) ? static_cast<std::uint32_t>(rng.next_u64())
                                          : 0u);
  } else if (kind == "idle_runs") {
    std::uint32_t word = 0;
    for (std::size_t i = 0; i < cycles; ++i) {
      if (i % 17 == 0) word = static_cast<std::uint32_t>(rng.next_u64());
      words.push_back(word);  // long holds between bursts
    }
  } else if (kind == "all_toggle") {
    for (std::size_t i = 0; i < cycles; ++i)
      words.push_back(i % 2 ? 0x55555555u : 0xAAAAAAAAu);
  } else if (kind == "shielded") {
    // Only shield-adjacent wires move (bits 0, 3, 4, 7, ... of each group):
    // exercises the shield-mask edges of the bit-parallel classifier.
    for (std::size_t i = 0; i < cycles; ++i)
      words.push_back((i % 3) ? (i % 2 ? 0x99999999u : 0x11111111u) : 0u);
  } else {
    ADD_FAILURE() << "unknown trace kind " << kind;
  }
  return words;
}

void expect_totals_identical(const RunningTotals& a, const RunningTotals& b,
                             const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.errors, b.errors) << what;
  EXPECT_EQ(a.shadow_failures, b.shadow_failures) << what;
  // Exact double equality is intentional: bit-identical is the contract.
  EXPECT_EQ(a.bus_energy, b.bus_energy) << what;
  EXPECT_EQ(a.overhead_energy, b.overhead_energy) << what;
}

struct ParityCounts {
  std::uint64_t errors = 0;
  std::uint64_t shadow_failures = 0;
};

// Step both engines cycle-for-cycle and compare every per-cycle output,
// plus drive a third simulator through the batched entry point in
// irregular chunks. `seen` (optional) accumulates what the run produced so
// sweeps can assert they actually exercised error/shadow territory.
void check_parity(const tech::PvtCorner& env, double supply, double jitter_sigma,
                  const std::vector<std::uint32_t>& words, const std::string& what,
                  ParityCounts* seen = nullptr) {
  BusSimulator fast = parity_system().make_simulator(env);
  BusSimulator ref = parity_system().make_simulator(env);
  BusSimulator batched = parity_system().make_simulator(env);
  ref.set_engine_mode(EngineMode::reference);
  EXPECT_EQ(fast.engine_mode(), EngineMode::bit_parallel);
  for (BusSimulator* sim : {&fast, &ref, &batched}) {
    sim->set_supply(supply);
    if (jitter_sigma > 0.0) sim->set_timing_jitter(jitter_sigma, 0xfeedu);
  }

  for (std::size_t i = 0; i < words.size(); ++i) {
    const CycleResult f = fast.step(words[i]);
    const CycleResult r = ref.step(words[i]);
    ASSERT_EQ(f.error, r.error) << what << " cycle " << i;
    ASSERT_EQ(f.shadow_failure, r.shadow_failure) << what << " cycle " << i;
    ASSERT_EQ(f.bus_energy, r.bus_energy) << what << " cycle " << i;
    ASSERT_EQ(f.overhead_energy, r.overhead_energy) << what << " cycle " << i;
    ASSERT_EQ(f.worst_delay, r.worst_delay) << what << " cycle " << i;
  }
  expect_totals_identical(fast.totals(), ref.totals(), what + " [step totals]");

  // Batched spans of irregular length must not change a single bit either.
  Rng chunk_rng(7);
  std::size_t i = 0;
  while (i < words.size()) {
    const std::size_t n =
        std::min<std::size_t>(words.size() - i, 1 + chunk_rng.next_below(97));
    batched.run(words.data() + i, n);
    i += n;
  }
  expect_totals_identical(batched.totals(), ref.totals(), what + " [batched totals]");

  if (seen) {
    seen->errors += ref.totals().errors;
    seen->shadow_failures += ref.totals().shadow_failures;
  }
}

TEST(EngineParity, AcrossCornersTemperaturesAndSupplies) {
  const std::vector<std::uint32_t> random_words = pattern_trace("random", 1200, 11);
  ParityCounts seen;
  for (const auto process : {tech::ProcessCorner::slow, tech::ProcessCorner::typical,
                             tech::ProcessCorner::fast}) {
    for (const double temp : {25.0, 100.0}) {
      const tech::PvtCorner env{process, temp, 0.0};
      for (const double supply : {0.79, 0.92, 1.00, 1.08, 1.20})
        check_parity(env, supply, 0.0, random_words,
                     env.name() + " @" + std::to_string(supply) + "V", &seen);
    }
  }
  // The sweep must reach both corrected and silently-corrupted captures,
  // otherwise it is not exercising the verdict machinery.
  EXPECT_GT(seen.errors, 0u);
  EXPECT_GT(seen.shadow_failures, 0u);
}

TEST(EngineParity, TracePatternsAtMarginalSupply) {
  const tech::PvtCorner env{tech::ProcessCorner::slow, 100.0, 0.0};
  for (const char* kind : {"random", "idle_runs", "all_toggle", "shielded"}) {
    const auto words = pattern_trace(kind, 1500, 23);
    for (const double supply : {0.94, 1.04, 1.14})
      check_parity(env, supply, 0.0, words,
                   std::string(kind) + " @" + std::to_string(supply) + "V");
  }
}

TEST(EngineParity, WithCommonModeJitter) {
  // Jitter draws one normal per non-idle cycle from the same seeded RNG in
  // both engines; verdicts must still match bit for bit because both
  // compare arrival = delay + jitter against the same limits.
  const std::vector<std::uint32_t> words = pattern_trace("random", 2000, 31);
  for (const auto process : {tech::ProcessCorner::slow, tech::ProcessCorner::typical}) {
    const tech::PvtCorner env{process, 100.0, 0.0};
    for (const double supply : {0.98, 1.06})
      for (const double sigma : {2e-12, 8e-12})
        check_parity(env, supply, sigma, words,
                     env.name() + " jitter " + std::to_string(sigma));
  }
}

TEST(EngineParity, IrDroppedEnvironment) {
  const tech::PvtCorner env{tech::ProcessCorner::typical, 100.0, 0.10};
  check_parity(env, 1.10, 0.0, pattern_trace("random", 1000, 5), "typical + IR drop");
  check_parity(env, 1.10, 4e-12, pattern_trace("all_toggle", 1000, 5),
               "typical + IR drop + jitter");
}

TEST(EngineParity, ModeSwitchMidRunKeepsReceiverState) {
  const tech::PvtCorner env{tech::ProcessCorner::slow, 100.0, 0.0};
  const auto words = pattern_trace("random", 600, 77);

  BusSimulator mixed = parity_system().make_simulator(env);
  BusSimulator ref = parity_system().make_simulator(env);
  ref.set_engine_mode(EngineMode::reference);
  mixed.set_supply(1.00);
  ref.set_supply(1.00);

  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i % 150 == 0)
      mixed.set_engine_mode(i % 300 == 0 ? EngineMode::bit_parallel
                                         : EngineMode::reference);
    const CycleResult m = mixed.step(words[i]);
    const CycleResult r = ref.step(words[i]);
    ASSERT_EQ(m.error, r.error) << "cycle " << i;
    ASSERT_EQ(m.shadow_failure, r.shadow_failure) << "cycle " << i;
    ASSERT_EQ(m.bus_energy, r.bus_energy) << "cycle " << i;
  }
  expect_totals_identical(mixed.totals(), ref.totals(), "mode switching");
}

TEST(EngineParity, BatchedRunReturnsSegmentDelta) {
  const tech::PvtCorner env{tech::ProcessCorner::typical, 100.0, 0.0};
  const auto words = pattern_trace("random", 500, 3);
  BusSimulator sim = parity_system().make_simulator(env);
  sim.set_supply(1.02);

  const RunningTotals first = sim.run(words.data(), 200);
  EXPECT_EQ(first.cycles, 200u);
  const RunningTotals rest = sim.run(words.data() + 200, 300);
  EXPECT_EQ(rest.cycles, 300u);
  EXPECT_EQ(sim.totals().cycles, 500u);
  EXPECT_EQ(sim.totals().errors, first.errors + rest.errors);
  EXPECT_DOUBLE_EQ(sim.totals().bus_energy, first.bus_energy + rest.bus_energy);
}

TEST(EngineParity, ResetSeedsReceiversWithInitialWord) {
  // reset(w) must leave both engines agreeing that the bus already holds w
  // (historically the flop bank was re-seeded with zeros instead).
  const tech::PvtCorner env{tech::ProcessCorner::typical, 100.0, 0.0};
  for (const auto mode : {EngineMode::bit_parallel, EngineMode::reference}) {
    BusSimulator sim = parity_system().make_simulator(env);
    sim.set_engine_mode(mode);
    sim.set_supply(1.20);
    sim.reset(0xFFFFFFFFu);
    const CycleResult idle = sim.step(0xFFFFFFFFu);
    EXPECT_FALSE(idle.error);
    EXPECT_DOUBLE_EQ(idle.worst_delay, 0.0);
  }
}

// The window-batched closed-loop driver must make exactly the decisions the
// historical per-cycle driver made: replicate that driver here (step + one
// observe_cycle/advance per cycle) against the reference engine and compare
// with core::run_closed_loop.
TEST(EngineParity, ClosedLoopMatchesPerCycleDriver) {
  const auto& system = parity_system();
  const tech::PvtCorner env = tech::typical_corner();
  trace::SyntheticConfig cfg;
  cfg.cycles = 60000;
  cfg.load_rate = 0.5;
  cfg.seed = 9;
  const trace::Trace trace = trace::generate_synthetic(cfg, "closed_loop");

  core::DvsRunConfig run_cfg;
  run_cfg.controller.window_cycles = 4000;
  run_cfg.regulator_delay_cycles = 1500;  // lands mid-window on purpose
  run_cfg.record_series = true;
  const core::DvsRunReport batched = core::run_closed_loop(system, env, trace, run_cfg);

  bus::BusSimulator sim = system.make_simulator(env);
  sim.set_engine_mode(EngineMode::reference);
  dvs::VoltageRegulator regulator(system.design().node.vdd_nominal,
                                  system.dvs_floor(env.process),
                                  system.design().node.vdd_nominal,
                                  run_cfg.regulator_delay_cycles);
  dvs::ThresholdController controller(run_cfg.controller);
  sim.set_supply(regulator.voltage());

  std::vector<core::WindowSample> series;
  std::uint64_t prev_windows = 0;
  double supply_sum = 0.0;
  std::uint64_t cycle = 0;
  for (const auto word : trace.words) {
    sim.set_supply(regulator.advance(cycle));
    const CycleResult r = sim.step(word);
    supply_sum += sim.supply();
    const dvs::VoltageDecision decision = controller.observe_cycle(r.error);
    if (decision == dvs::VoltageDecision::step_down)
      regulator.request_change(-run_cfg.controller.voltage_step, cycle);
    else if (decision == dvs::VoltageDecision::step_up)
      regulator.request_change(+run_cfg.controller.voltage_step, cycle);
    if (controller.windows_completed() != prev_windows) {
      prev_windows = controller.windows_completed();
      series.push_back({cycle + 1, sim.supply(), controller.last_window_error_rate()});
    }
    ++cycle;
  }

  expect_totals_identical(batched.totals, sim.totals(), "closed loop vs per-cycle");
  // average_supply is accumulated as supply*span_length in the batched
  // driver vs one add per cycle here: same value up to summation order.
  EXPECT_NEAR(batched.average_supply,
              supply_sum / static_cast<double>(trace.words.size()), 1e-9);
  ASSERT_EQ(batched.series.size(), series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(batched.series[i].end_cycle, series[i].end_cycle) << "window " << i;
    EXPECT_EQ(batched.series[i].supply, series[i].supply) << "window " << i;
    EXPECT_EQ(batched.series[i].error_rate, series[i].error_rate) << "window " << i;
  }
}

// A bus with no internal shields has one 12-wire group — too wide for the
// combo tables — so the bit-parallel engine must take its per-wire
// fallback kernel. Parity must hold there too, with and without jitter.
TEST(EngineParity, WideShieldGroupFallback) {
  static const core::DvsBusSystem wide_system = [] {
    interconnect::BusDesign design = test_support::sized_paper_bus();
    design.n_bits = 12;
    design.shield_group = 12;
    core::SystemOptions options;
    options.lut_config.vmin = 1.00;
    options.lut_config.vmax = 1.20;
    options.lut_config.temps = {100.0};
    options.lut_config.corners = {tech::ProcessCorner::slow};
    return core::DvsBusSystem(design, options);
  }();

  const tech::PvtCorner env{tech::ProcessCorner::slow, 100.0, 0.0};
  const auto words = pattern_trace("random", 1500, 61);
  for (const double supply : {1.02, 1.12})
    for (const double sigma : {0.0, 5e-12}) {
      BusSimulator fast = wide_system.make_simulator(env);
      BusSimulator ref = wide_system.make_simulator(env);
      ref.set_engine_mode(EngineMode::reference);
      for (BusSimulator* sim : {&fast, &ref}) {
        sim->set_supply(supply);
        if (sigma > 0.0) sim->set_timing_jitter(sigma, 0x51deu);
      }
      for (std::size_t i = 0; i < words.size(); ++i) {
        const CycleResult f = fast.step(words[i]);
        const CycleResult r = ref.step(words[i]);
        ASSERT_EQ(f.error, r.error) << "cycle " << i;
        ASSERT_EQ(f.shadow_failure, r.shadow_failure) << "cycle " << i;
        ASSERT_EQ(f.bus_energy, r.bus_energy) << "cycle " << i;
        ASSERT_EQ(f.worst_delay, r.worst_delay) << "cycle " << i;
      }
      expect_totals_identical(fast.totals(), ref.totals(), "wide group fallback");
    }
}

// The bit-parallel mask classifier must agree with the per-bit classifier
// for every wire on random transitions (including narrow buses, where the
// unused upper bits must never leak into the masks).
TEST(EngineParity, MaskClassifierMatchesPerBit) {
  for (const int n_bits : {32, 16, 9}) {
    interconnect::BusDesign design = test_support::sized_paper_bus();
    design.n_bits = n_bits;
    const WireClassifier classifier(design);
    Rng rng(41);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto prev = static_cast<std::uint32_t>(rng.next_u64());
      const auto cur = static_cast<std::uint32_t>(rng.next_u64());
      int counts[lut::PatternClass::kCount] = {};
      for (int bit = 0; bit < n_bits; ++bit)
        ++counts[classifier.classify(prev, cur, bit)];

      const ClassMaskSet s = classifier.masks(prev, cur);
      int mask_total = 0;
      for_each_present_class(s, [&](int cls, std::uint32_t mask) {
        int count = 0;
        for (int bit = 0; bit < 32; ++bit)
          if ((mask >> bit) & 1u) {
            ASSERT_LT(bit, n_bits) << "mask leaks past the bus width";
            ASSERT_EQ(classifier.classify(prev, cur, bit), cls)
                << "bit " << bit << " prev=" << prev << " cur=" << cur;
            ++count;
          }
        ASSERT_EQ(count, counts[cls]) << "class " << cls;
        mask_total += count;
      });
      ASSERT_EQ(mask_total, n_bits);
    }
  }
}

}  // namespace
}  // namespace razorbus::bus

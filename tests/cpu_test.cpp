#include <gtest/gtest.h>

#include "util/bits.hpp"
#include <cmath>
#include <set>

#include "cpu/isa.hpp"
#include "cpu/kernels.hpp"
#include "cpu/machine.hpp"
#include "cpu/program.hpp"
#include "cpu/simpoint.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace razorbus::cpu {
namespace {

// ---------------------------------------------------------------- builder

TEST(ProgramBuilder, ResolvesForwardAndBackwardLabels) {
  ProgramBuilder b("p");
  b.loadi(1, 0)
      .label("top")
      .addi(1, 1, 1)
      .blt(1, 2, "top")  // backward
      .beq(0, 0, "end")  // forward
      .nop()
      .label("end")
      .halt();
  const Program p = b.build();
  EXPECT_EQ(p.code[2].imm, 1);  // "top" -> instruction index 1
  EXPECT_EQ(p.code[3].imm, 5);  // "end" -> index of halt
}

TEST(ProgramBuilder, UndefinedLabelThrows) {
  ProgramBuilder b("p");
  b.jmp("nowhere");
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ProgramBuilder, DuplicateLabelThrows) {
  ProgramBuilder b("p");
  b.label("x");
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(ProgramBuilder, RegisterRangeChecked) {
  ProgramBuilder b("p");
  EXPECT_THROW(b.add(16, 0, 0), std::invalid_argument);
  EXPECT_THROW(b.add(-1, 0, 0), std::invalid_argument);
}

TEST(Disassemble, ProducesReadableText) {
  Instruction add{Opcode::add, 3, 1, 2, 0};
  EXPECT_EQ(disassemble(add), "add r3, r1, r2");
  Instruction ld{Opcode::load, 4, 2, 0, 7};
  EXPECT_EQ(disassemble(ld), "load r4, [r2 + 7]");
  Instruction st{Opcode::store, 0, 2, 5, -3};
  EXPECT_EQ(disassemble(st), "store [r2 + -3], r5");
  Instruction li{Opcode::loadi, 1, 0, 0, 42};
  EXPECT_EQ(disassemble(li), "loadi r1, 42");
}

TEST(Isa, ControlFlowClassification) {
  EXPECT_TRUE(is_control_flow(Opcode::beq));
  EXPECT_TRUE(is_control_flow(Opcode::jmp));
  EXPECT_FALSE(is_control_flow(Opcode::add));
  EXPECT_TRUE(is_load(Opcode::load));
  EXPECT_FALSE(is_load(Opcode::store));
}

// ---------------------------------------------------------------- machine

Machine run_program(ProgramBuilder& b, std::uint64_t max_instr = 1000) {
  Machine m(b.build(), 1u << 12);
  m.run(max_instr);
  return m;
}

TEST(Machine, ArithmeticOps) {
  ProgramBuilder b("arith");
  b.loadi(1, 7).loadi(2, 3);
  b.add(3, 1, 2).sub(4, 1, 2).mul(5, 1, 2).divu(6, 1, 2).halt();
  Machine m = run_program(b);
  EXPECT_EQ(m.reg(3), 10u);
  EXPECT_EQ(m.reg(4), 4u);
  EXPECT_EQ(m.reg(5), 21u);
  EXPECT_EQ(m.reg(6), 2u);
}

TEST(Machine, DivisionByZeroYieldsZero) {
  ProgramBuilder b("div0");
  b.loadi(1, 9).loadi(2, 0).divu(3, 1, 2).halt();
  EXPECT_EQ(run_program(b).reg(3), 0u);
}

TEST(Machine, LogicAndShifts) {
  ProgramBuilder b("logic");
  b.loadi(1, 0xF0F0).loadi(2, 0x0FF0);
  b.and_(3, 1, 2).or_(4, 1, 2).xor_(5, 1, 2);
  b.loadi(6, 4).shl(7, 1, 6).shr(8, 1, 6);
  b.loadi(9, 0x80000000u).loadi(10, 31).sra(11, 9, 10);
  b.halt();
  Machine m = run_program(b);
  EXPECT_EQ(m.reg(3), 0x00F0u);  // 0xF0F0 & 0x0FF0
  EXPECT_EQ(m.reg(4), 0xFFF0u);
  EXPECT_EQ(m.reg(5), 0xFF00u);
  EXPECT_EQ(m.reg(7), 0xF0F00u);
  EXPECT_EQ(m.reg(8), 0x0F0Fu);
  EXPECT_EQ(m.reg(11), 0xFFFFFFFFu);  // arithmetic shift of the sign bit
}

TEST(Machine, ImmediateOps) {
  ProgramBuilder b("imm");
  b.loadi(1, 100);
  b.addi(2, 1, -1).muli(3, 1, 3).andi(4, 1, 0x6).ori(5, 1, 0x1).xori(6, 1, 0xFF);
  b.shli(7, 1, 2).shri(8, 1, 2);
  b.halt();
  Machine m = run_program(b);
  EXPECT_EQ(m.reg(2), 99u);
  EXPECT_EQ(m.reg(3), 300u);
  EXPECT_EQ(m.reg(4), 100u & 0x6u);
  EXPECT_EQ(m.reg(5), 100u | 0x1u);
  EXPECT_EQ(m.reg(6), 100u ^ 0xFFu);
  EXPECT_EQ(m.reg(7), 400u);
  EXPECT_EQ(m.reg(8), 25u);
}

TEST(Machine, PopcountAndMov) {
  ProgramBuilder b("pop");
  b.loadi(1, 0xF00F).popcnt(2, 1).mov(3, 2).halt();
  Machine m = run_program(b);
  EXPECT_EQ(m.reg(2), 8u);
  EXPECT_EQ(m.reg(3), 8u);
}

TEST(Machine, LoadStoreRoundTrip) {
  ProgramBuilder b("mem");
  b.loadi(1, 100).loadi(2, 0xCAFE);
  b.store(1, 5, 2);   // mem[105] = 0xCAFE
  b.load(3, 1, 5);    // r3 = mem[105]
  b.halt();
  Machine m = run_program(b);
  EXPECT_EQ(m.reg(3), 0xCAFEu);
  EXPECT_EQ(m.mem(105), 0xCAFEu);
}

TEST(Machine, MemoryAddressWraps) {
  ProgramBuilder b("wrap");
  b.loadi(1, 0xFFFFFFFFu).loadi(2, 77).store(1, 1, 2).load(3, 1, 1).halt();
  Machine m = run_program(b);  // 4096-word memory: address wraps to 0
  EXPECT_EQ(m.reg(3), 77u);
  EXPECT_EQ(m.mem(0), 77u);
}

TEST(Machine, BranchSemantics) {
  ProgramBuilder b("branch");
  b.loadi(1, 5)
      .loadi(2, 0)
      .label("loop")
      .addi(2, 2, 1)
      .blt(2, 1, "loop")
      .halt();
  Machine m = run_program(b);
  EXPECT_EQ(m.reg(2), 5u);
}

TEST(Machine, SignedVsUnsignedCompare) {
  ProgramBuilder b("cmp");
  b.loadi(1, 0xFFFFFFFFu)  // -1 signed, max unsigned
      .loadi(2, 1)
      .loadi(5, 0)
      .blt(1, 2, "signed_taken")  // -1 < 1 signed: taken
      .halt()
      .label("signed_taken")
      .loadi(5, 1)
      .bltu(1, 2, "unsigned_taken")  // max > 1 unsigned: NOT taken
      .halt()
      .label("unsigned_taken")
      .loadi(5, 2)
      .halt();
  EXPECT_EQ(run_program(b).reg(5), 1u);
}

TEST(Machine, FloatingPointOps) {
  ProgramBuilder b("fp");
  b.loadi(1, razorbus::bit_cast<std::uint32_t>(3.0f));
  b.loadi(2, razorbus::bit_cast<std::uint32_t>(2.0f));
  b.fadd(3, 1, 2).fsub(4, 1, 2).fmul(5, 1, 2).fdiv(6, 1, 2);
  b.halt();
  Machine m = run_program(b);
  EXPECT_FLOAT_EQ(razorbus::bit_cast<float>(m.reg(3)), 5.0f);
  EXPECT_FLOAT_EQ(razorbus::bit_cast<float>(m.reg(4)), 1.0f);
  EXPECT_FLOAT_EQ(razorbus::bit_cast<float>(m.reg(5)), 6.0f);
  EXPECT_FLOAT_EQ(razorbus::bit_cast<float>(m.reg(6)), 1.5f);
}

TEST(Machine, FloatDivByZeroYieldsZero) {
  ProgramBuilder b("fdiv0");
  b.loadi(1, razorbus::bit_cast<std::uint32_t>(3.0f)).loadi(2, 0).fdiv(3, 1, 2).halt();
  EXPECT_FLOAT_EQ(razorbus::bit_cast<float>(run_program(b).reg(3)), 0.0f);
}

TEST(Machine, IntFloatConversions) {
  ProgramBuilder b("cvt");
  b.loadi(1, static_cast<std::uint32_t>(-7)).itof(2, 1).ftoi(3, 2).halt();
  Machine m = run_program(b);
  EXPECT_FLOAT_EQ(razorbus::bit_cast<float>(m.reg(2)), -7.0f);
  EXPECT_EQ(static_cast<std::int32_t>(m.reg(3)), -7);
}

TEST(Machine, HaltStopsExecution) {
  ProgramBuilder b("halt");
  b.loadi(1, 1).halt().loadi(1, 99);
  Machine m = run_program(b);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.reg(1), 1u);
  EXPECT_EQ(m.instructions_executed(), 1u);
}

TEST(Machine, RunStopsAtInstructionBudget) {
  ProgramBuilder b("spin");
  b.label("top").addi(1, 1, 1).jmp("top");
  Machine m(b.build(), 1u << 12);
  EXPECT_EQ(m.run(1000), 1000u);
  EXPECT_FALSE(m.halted());
  EXPECT_EQ(m.reg(1), 500u);  // half the instructions are the addi
}

TEST(Machine, LoadCallbackSeesLoadData) {
  ProgramBuilder b("loads");
  b.loadi(1, 10).loadi(2, 1234).store(1, 0, 2).load(3, 1, 0).load(4, 1, 0).halt();
  Machine m(b.build(), 1u << 12);
  std::vector<std::uint32_t> loads;
  m.run(100, [&loads](std::uint32_t v) { loads.push_back(v); });
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0], 1234u);
  EXPECT_EQ(loads[1], 1234u);
}

TEST(Machine, RejectsBadMemorySize) {
  ProgramBuilder b("x");
  b.halt();
  EXPECT_THROW(Machine(b.build(), 1000), std::invalid_argument);  // not a power of two
  EXPECT_THROW(Machine(b.build(), 0), std::invalid_argument);
  EXPECT_THROW(Machine(Program{}, 1024), std::invalid_argument);  // empty program
}

TEST(Machine, PcFallOffEndHalts) {
  ProgramBuilder b("falloff");
  b.nop();
  Machine m(b.build(), 1024);
  m.run(10);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.instructions_executed(), 1u);
}

// ---------------------------------------------------------------- traces

TEST(BusTrace, HoldsBetweenLoads) {
  ProgramBuilder b("t");
  b.loadi(1, 10).loadi(2, 42).store(1, 0, 2).load(3, 1, 0).nop().nop().halt();
  Machine m(b.build(), 1u << 12);
  const trace::Trace t = capture_bus_trace(m, 100, "t");
  // 6 executed instructions before halt.
  ASSERT_EQ(t.words.size(), 6u);
  EXPECT_EQ(t.words[0], 0u);   // loadi: bus idle
  EXPECT_EQ(t.words[3], 42u);  // the load drives its data
  EXPECT_EQ(t.words[4], 42u);  // nop: bus holds
  EXPECT_EQ(t.words[5], 42u);
}

// ---------------------------------------------------------------- kernels

TEST(Kernels, SuiteHasPaperOrder) {
  const auto suite = spec2000_suite();
  ASSERT_EQ(suite.size(), 10u);
  const char* expected[] = {"crafty", "vortex", "mgrid", "swim",  "mcf",
                            "mesa",   "vpr",    "applu", "gap", "wupwise"};
  for (std::size_t i = 0; i < suite.size(); ++i) EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Kernels, LookupByName) {
  EXPECT_EQ(benchmark_by_name("mcf").name, "mcf");
  EXPECT_THROW(benchmark_by_name("gcc"), std::invalid_argument);
}

class KernelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelSweep, RunsFiftyThousandCyclesWithoutHalting) {
  const Benchmark bench = benchmark_by_name(GetParam());
  Machine m = bench.make_machine();
  const trace::Trace t = capture_bus_trace(m, 50000, bench.name);
  EXPECT_EQ(t.words.size(), 50000u);  // kernels loop forever
  EXPECT_FALSE(m.halted());
}

TEST_P(KernelSweep, ProducesLiveLoadTraffic) {
  const Benchmark bench = benchmark_by_name(GetParam());
  const trace::Trace t = bench.capture(50000);
  const trace::TraceStats stats = trace::compute_stats(t);
  EXPECT_GT(stats.active_cycle_rate, 0.02) << "bus should see fresh data";
  std::set<std::uint32_t> distinct(t.words.begin(), t.words.end());
  EXPECT_GT(distinct.size(), 4u) << "loads should carry varied values";
}

TEST_P(KernelSweep, TraceIsDeterministic) {
  const Benchmark bench = benchmark_by_name(GetParam());
  const trace::Trace a = bench.capture(5000);
  const trace::Trace b = bench.capture(5000);
  EXPECT_EQ(a.words, b.words);
}

INSTANTIATE_TEST_SUITE_P(All, KernelSweep,
                         ::testing::Values("crafty", "vortex", "mgrid", "swim", "mcf",
                                           "mesa", "vpr", "applu", "gap", "wupwise"));

// The suite must span a wide activity range: that diversity is what the
// paper's program-dependent DVS results rest on.
TEST(Kernels, ActivityDiversityAcrossSuite) {
  double min_worst = 1.0;
  double max_worst = 0.0;
  for (const auto& bench : spec2000_suite()) {
    const auto stats = trace::compute_stats(bench.capture(50000));
    min_worst = std::min(min_worst, stats.worst_pattern_rate);
    max_worst = std::max(max_worst, stats.worst_pattern_rate);
  }
  EXPECT_LT(min_worst, 0.01);  // some benchmark is quiet (crafty/mesa-like)
  EXPECT_GT(max_worst, 0.08);  // some benchmark is aggressive (FP stencils)
}

TEST(Kernels, QuietAndNoisyBenchmarksMatchPaperRoles) {
  const auto quiet = trace::compute_stats(benchmark_by_name("crafty").capture(50000));
  const auto noisy = trace::compute_stats(benchmark_by_name("mgrid").capture(50000));
  // Fig. 6: crafty runs at much lower voltage than mgrid -> crafty must see
  // far fewer worst-case coupling patterns.
  EXPECT_LT(quiet.worst_pattern_rate * 5.0, noisy.worst_pattern_rate);
}

// Fuzz: random (but structurally valid) programs must never crash or read
// out of bounds — the machine wraps addresses and treats any register as
// fair game.
class MachineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MachineFuzz, RandomProgramsExecuteSafely) {
  Rng rng(GetParam());
  Program program;
  program.name = "fuzz";
  const int length = 64;
  for (int i = 0; i < length; ++i) {
    Instruction instr;
    // Draw from the full opcode range except halt (index 0) so programs run.
    instr.op = static_cast<Opcode>(1 + rng.next_below(35));
    instr.rd = static_cast<std::uint8_t>(rng.next_below(kRegisterCount));
    instr.ra = static_cast<std::uint8_t>(rng.next_below(kRegisterCount));
    instr.rb = static_cast<std::uint8_t>(rng.next_below(kRegisterCount));
    instr.imm = is_control_flow(instr.op)
                    ? static_cast<std::int64_t>(rng.next_below(length))
                    : static_cast<std::int64_t>(
                          static_cast<std::int32_t>(rng.next_u64()));
    program.code.push_back(instr);
  }
  Machine machine(std::move(program), 1u << 12);
  const std::uint64_t executed = machine.run(20000);
  EXPECT_LE(executed, 20000u);
  EXPECT_LE(machine.pc(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------- simpoint

TEST(SimPoint, WeightsSumToOneAndWindowsValid) {
  const trace::Trace t = benchmark_by_name("vortex").capture(100000);
  SimPointConfig cfg;
  cfg.window_cycles = 5000;
  cfg.clusters = 4;
  const SimPointResult r = select_simpoints(t, cfg);
  ASSERT_FALSE(r.points.empty());
  ASSERT_LE(r.points.size(), 4u);
  double total_weight = 0.0;
  for (const auto& p : r.points) {
    EXPECT_LT(p.window_index, r.total_windows);
    EXPECT_EQ(p.begin_cycle, p.window_index * cfg.window_cycles);
    EXPECT_GT(p.weight, 0.0);
    total_weight += p.weight;
  }
  EXPECT_NEAR(total_weight, 1.0, 1e-9);
  EXPECT_EQ(r.total_windows, 20u);
}

TEST(SimPoint, PhaseChangeDetected) {
  // A trace with two sharply different phases must yield simpoints from
  // both phases.
  trace::SyntheticConfig quiet;
  quiet.style = trace::SyntheticStyle::sparse;
  quiet.cycles = 50000;
  quiet.load_rate = 0.1;
  trace::SyntheticConfig noisy;
  noisy.style = trace::SyntheticStyle::uniform;
  noisy.cycles = 50000;
  noisy.load_rate = 0.8;
  noisy.seed = 9;
  const trace::Trace phased = trace::concatenate(
      {trace::generate_synthetic(quiet, "q"), trace::generate_synthetic(noisy, "n")},
      "phased");

  SimPointConfig cfg;
  cfg.window_cycles = 10000;
  cfg.clusters = 2;
  const SimPointResult r = select_simpoints(phased, cfg);
  ASSERT_EQ(r.points.size(), 2u);
  // One representative from each half.
  EXPECT_LT(r.points.front().window_index, 5u);
  EXPECT_GE(r.points.back().window_index, 5u);
}

TEST(SimPoint, MaterializedTraceApproximatesFullStats) {
  const trace::Trace t = benchmark_by_name("mgrid").capture(200000);
  SimPointConfig cfg;
  cfg.window_cycles = 10000;
  cfg.clusters = 5;
  const SimPointResult r = select_simpoints(t, cfg);
  const trace::Trace reduced = materialize_simpoints(t, r, 10);
  EXPECT_LT(reduced.words.size(), t.words.size());

  const auto full = trace::compute_stats(t);
  const auto approx = trace::compute_stats(reduced);
  EXPECT_NEAR(approx.toggle_rate, full.toggle_rate, 0.25 * full.toggle_rate + 0.01);
  EXPECT_NEAR(approx.worst_pattern_rate, full.worst_pattern_rate,
              0.35 * full.worst_pattern_rate + 0.01);
}

TEST(SimPoint, DeterministicForSeed) {
  const trace::Trace t = benchmark_by_name("vpr").capture(80000);
  SimPointConfig cfg;
  cfg.window_cycles = 8000;
  cfg.clusters = 3;
  const SimPointResult a = select_simpoints(t, cfg);
  const SimPointResult b = select_simpoints(t, cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i)
    EXPECT_EQ(a.points[i].window_index, b.points[i].window_index);
}

TEST(SimPoint, Validation) {
  const trace::Trace t{"t", std::vector<razorbus::BusWord>(100, razorbus::BusWord(1u))};
  SimPointConfig cfg;
  cfg.window_cycles = 0;
  EXPECT_THROW(select_simpoints(t, cfg), std::invalid_argument);
  cfg = SimPointConfig{};
  cfg.clusters = 0;
  EXPECT_THROW(select_simpoints(t, cfg), std::invalid_argument);
  cfg = SimPointConfig{};
  cfg.window_cycles = 1000;  // longer than the trace
  EXPECT_THROW(select_simpoints(t, cfg), std::invalid_argument);
}

TEST(SimPoint, MoreClustersThanWindowsClamps) {
  const trace::Trace t{"t", std::vector<razorbus::BusWord>(30000, razorbus::BusWord(5u))};
  SimPointConfig cfg;
  cfg.window_cycles = 10000;
  cfg.clusters = 16;
  const SimPointResult r = select_simpoints(t, cfg);
  EXPECT_LE(r.points.size(), 3u);
}

TEST(Kernels, FpBenchmarksCarryFloatBitPatterns) {
  const trace::Trace t = benchmark_by_name("mgrid").capture(20000);
  int fp_like = 0;
  int fresh = 0;
  std::uint32_t prev = ~0u;
  for (const auto& word : t.words) {
    const std::uint32_t w = word.low32();
    if (w == prev) continue;
    prev = w;
    ++fresh;
    const float f = razorbus::bit_cast<float>(w);
    if (std::isfinite(f) && std::abs(f) > 1e-3f && std::abs(f) < 1e3f) ++fp_like;
  }
  ASSERT_GT(fresh, 100);
  EXPECT_GT(static_cast<double>(fp_like) / static_cast<double>(fresh), 0.9);
}

}  // namespace
}  // namespace razorbus::cpu

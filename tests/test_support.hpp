// Shared fixtures for the test suites.
//
// Characterising the full paper bus costs thousands of transient runs, so
// tests share two lazily-built singletons:
//   * small_system(): a narrow supply grid / reduced corner set — cheap to
//     build (seconds), good enough for API-level behaviour tests;
//   * paper_system(): the full default characterization, shared with the
//     benches via the on-disk cache — used by end-to-end result tests.
#pragma once

#include "core/system.hpp"
#include "interconnect/bus_design.hpp"
#include "interconnect/rc_builder.hpp"
#include "lut/table.hpp"
#include "tech/device.hpp"

namespace razorbus::test_support {

inline lut::LutConfig small_lut_config() {
  lut::LutConfig config;
  config.vmin = 1.06;
  config.vmax = 1.20;
  config.temps = {100.0};
  config.corners = {tech::ProcessCorner::slow, tech::ProcessCorner::typical};
  return config;
}

// Paper bus with repeaters sized at the worst-case corner.
inline const interconnect::BusDesign& sized_paper_bus() {
  static const interconnect::BusDesign bus = [] {
    interconnect::BusDesign b = interconnect::BusDesign::paper_bus();
    const tech::DriverModel driver(b.node);
    interconnect::size_repeaters(b, driver, tech::worst_case_corner());
    return b;
  }();
  return bus;
}

inline const core::DvsBusSystem& small_system() {
  static const core::DvsBusSystem system = [] {
    core::SystemOptions options;
    options.lut_config = small_lut_config();
    return core::DvsBusSystem(sized_paper_bus(), options);
  }();
  return system;
}

inline const core::DvsBusSystem& paper_system() {
  static const core::DvsBusSystem system{interconnect::BusDesign::paper_bus()};
  return system;
}

}  // namespace razorbus::test_support

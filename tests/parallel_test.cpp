// Executor substrate and the DESIGN.md §9 determinism contract: every
// sharded workload — characterization builds, static sweeps, Monte-Carlo
// PVT sampling, per-trace closed-loop suites — produces bit-identical
// results at any thread count, including 1.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/experiments.hpp"
#include "lut/table.hpp"
#include "test_support.hpp"
#include "trace/synthetic.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"

namespace razorbus {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, ResolvesThreadCounts) {
  EXPECT_EQ(util::ThreadPool(3).threads(), 3u);
  EXPECT_EQ(util::ThreadPool(1).threads(), 1u);
  EXPECT_GE(util::ThreadPool(0).threads(), 1u);  // hardware concurrency
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  util::ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, EveryShardRunsExactlyOnce) {
  util::ThreadPool pool(8);
  constexpr std::size_t kShards = 100;
  std::vector<std::atomic<int>> hits(kShards);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kShards, [&](std::size_t s) { ++hits[s]; });
  for (std::size_t s = 0; s < kShards; ++s) EXPECT_EQ(hits[s].load(), 1) << s;
}

TEST(ThreadPool, MapReturnsResultsInShardOrder) {
  util::ThreadPool pool(8);
  const std::vector<std::size_t> out =
      util::parallel_map(pool, 64, [](std::size_t s) { return s * s; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t s = 0; s < out.size(); ++s) EXPECT_EQ(out[s], s * s);
}

TEST(ThreadPool, PoolIsReusableAcrossJobs) {
  util::ThreadPool pool(4);
  std::atomic<int> calls{0};
  for (int job = 0; job < 50; ++job)
    pool.parallel_for(7, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 50 * 7);
}

TEST(ThreadPool, LowestShardExceptionPropagates) {
  util::ThreadPool pool(4);
  std::atomic<int> calls{0};
  try {
    pool.parallel_for(16, [&](std::size_t s) {
      ++calls;
      if (s == 3 || s == 7) throw std::runtime_error("shard " + std::to_string(s));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 3");
  }
  // Multi-threaded execution never cancels: every shard still ran.
  EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, SingleThreadExceptionPropagates) {
  util::ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t s) {
        if (s == 2) throw std::invalid_argument("boom");
      }),
      std::invalid_argument);
}

TEST(ThreadPool, ConcurrentTopLevelCallersSerialise) {
  // Two application threads submitting to the same pool must not trample
  // each other's job state; every shard of both jobs runs exactly once.
  util::ThreadPool pool(4);
  std::atomic<int> calls_a{0}, calls_b{0};
  std::thread other([&] {
    for (int job = 0; job < 20; ++job)
      pool.parallel_for(13, [&](std::size_t) { ++calls_a; });
  });
  for (int job = 0; job < 20; ++job)
    pool.parallel_for(9, [&](std::size_t) { ++calls_b; });
  other.join();
  EXPECT_EQ(calls_a.load(), 20 * 13);
  EXPECT_EQ(calls_b.load(), 20 * 9);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  util::ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(5, [&](std::size_t) { ++inner_calls; });
  });
  EXPECT_EQ(inner_calls.load(), 8 * 5);
}

TEST(ThreadPool, GlobalPoolIsResizable) {
  util::set_global_threads(3);
  EXPECT_EQ(util::global_threads(), 3u);
  EXPECT_EQ(util::global_pool().threads(), 3u);
  util::set_global_threads(0);
  EXPECT_GE(util::global_threads(), 1u);
  util::set_global_threads(1);
  EXPECT_EQ(util::global_threads(), 1u);
}

TEST(ShardSeed, StreamsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t shard = 0; shard < 100; ++shard)
    seeds.insert(util::shard_seed(42, shard));
  EXPECT_EQ(seeds.size(), 100u);                       // distinct across shards
  EXPECT_NE(util::shard_seed(1, 0), util::shard_seed(2, 0));  // and across seeds
  EXPECT_EQ(util::shard_seed(42, 7), util::shard_seed(42, 7));
}

// ---------------------------------------------------- determinism suite
//
// Each experiment runs at 1, 2 and 8 threads; the 1-thread result is the
// reference and the others must match it bit for bit (exact EXPECT_EQ on
// every double — no tolerances anywhere in this file).

constexpr unsigned kThreadCounts[] = {1, 2, 8};

trace::Trace synthetic_trace(std::size_t cycles, std::uint64_t seed, const char* name) {
  trace::SyntheticConfig cfg;
  cfg.style = trace::SyntheticStyle::uniform;
  cfg.cycles = cycles;
  cfg.load_rate = 0.5;
  cfg.seed = seed;
  return trace::generate_synthetic(cfg, name);
}

void expect_identical(const core::DvsRunReport& a, const core::DvsRunReport& b) {
  EXPECT_EQ(a.totals.cycles, b.totals.cycles);
  EXPECT_EQ(a.totals.errors, b.totals.errors);
  EXPECT_EQ(a.totals.shadow_failures, b.totals.shadow_failures);
  EXPECT_EQ(a.totals.bus_energy, b.totals.bus_energy);
  EXPECT_EQ(a.totals.overhead_energy, b.totals.overhead_energy);
  EXPECT_EQ(a.baseline_bus_energy, b.baseline_bus_energy);
  EXPECT_EQ(a.floor_supply, b.floor_supply);
  EXPECT_EQ(a.average_supply, b.average_supply);
}

TEST(Determinism, LutBuildTablesAreByteIdenticalAcrossThreadCounts) {
  // Tiny grid, full per-point transient sims: 2 corners x 1 temp x 5
  // supplies. Serialized bytes must match exactly.
  lut::LutConfig config;
  config.vmin = 1.12;
  config.vmax = 1.20;
  config.temps = {100.0};
  config.corners = {tech::ProcessCorner::slow, tech::ProcessCorner::typical};
  const interconnect::BusDesign& bus = test_support::sized_paper_bus();
  const tech::DriverModel driver(bus.node);

  std::string reference;
  for (const unsigned threads : kThreadCounts) {
    util::set_global_threads(threads);
    const lut::DelayEnergyTable table = lut::DelayEnergyTable::build(bus, driver, config);
    std::ostringstream bytes;
    table.save(bytes, 0xfeedu);
    if (reference.empty())
      reference = bytes.str();
    else
      EXPECT_EQ(bytes.str(), reference) << "threads=" << threads;
  }
  EXPECT_FALSE(reference.empty());
  util::set_global_threads(1);
}

TEST(Determinism, StaticSweepIsBitIdenticalAcrossThreadCounts) {
  const core::DvsBusSystem& system = test_support::small_system();
  const std::vector<trace::Trace> traces{synthetic_trace(4000, 0xa1, "sweep-a"),
                                         synthetic_trace(4000, 0xb2, "sweep-b")};
  const double jitter_sigma = 2e-12;  // exercises the per-shard jitter Rng

  core::StaticSweepResult reference;
  for (const unsigned threads : kThreadCounts) {
    util::set_global_threads(threads);
    const core::StaticSweepResult sweep =
        core::static_voltage_sweep(system, tech::typical_corner(), traces, jitter_sigma);
    if (threads == 1) {
      reference = sweep;
      ASSERT_GT(reference.points.size(), 1u);
      continue;
    }
    EXPECT_EQ(sweep.floor_supply, reference.floor_supply);
    EXPECT_EQ(sweep.baseline_bus_energy, reference.baseline_bus_energy);
    ASSERT_EQ(sweep.points.size(), reference.points.size());
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      EXPECT_EQ(sweep.points[i].supply, reference.points[i].supply);
      EXPECT_EQ(sweep.points[i].error_rate, reference.points[i].error_rate);
      EXPECT_EQ(sweep.points[i].bus_energy, reference.points[i].bus_energy);
      EXPECT_EQ(sweep.points[i].total_energy, reference.points[i].total_energy);
      EXPECT_EQ(sweep.points[i].norm_bus_energy, reference.points[i].norm_bus_energy);
      EXPECT_EQ(sweep.points[i].norm_total_energy, reference.points[i].norm_total_energy);
    }
  }
  util::set_global_threads(1);
}

TEST(Determinism, GainsForTargetsMatchAcrossThreadCounts) {
  const core::DvsBusSystem& system = test_support::small_system();
  const std::vector<trace::Trace> traces{synthetic_trace(4000, 0xc3, "gains")};
  util::set_global_threads(1);
  const core::StaticSweepResult sweep =
      core::static_voltage_sweep(system, tech::typical_corner(), traces);
  const std::vector<double> targets{0.0, 0.01, 0.02, 0.05};

  const auto reference = core::gains_for_targets(sweep, targets);
  for (const unsigned threads : kThreadCounts) {
    util::set_global_threads(threads);
    const auto gains = core::gains_for_targets(sweep, targets);
    ASSERT_EQ(gains.size(), reference.size());
    for (std::size_t i = 0; i < gains.size(); ++i) {
      EXPECT_EQ(gains[i].target_error_rate, reference[i].target_error_rate);
      EXPECT_EQ(gains[i].chosen_supply, reference[i].chosen_supply);
      EXPECT_EQ(gains[i].achieved_error_rate, reference[i].achieved_error_rate);
      EXPECT_EQ(gains[i].energy_gain, reference[i].energy_gain);
    }
  }
  util::set_global_threads(1);
}

TEST(Determinism, PvtSamplingIsBitIdenticalAcrossThreadCounts) {
  // Sampling draws fast/slow corners and both temperatures, so it needs the
  // full paper tables (loaded from the shared disk cache).
  const core::DvsBusSystem& system = test_support::paper_system();
  const trace::Trace trace = synthetic_trace(20000, 0xd4, "pvt");
  core::PvtSampleConfig config;
  config.samples = 6;
  config.seed = 99;

  core::PvtSampleResult reference;
  for (const unsigned threads : kThreadCounts) {
    util::set_global_threads(threads);
    core::PvtSampleResult result = core::pvt_sample_gains(system, trace, config);
    ASSERT_EQ(result.samples.size(), static_cast<std::size_t>(config.samples));
    if (threads == 1) {
      reference = std::move(result);
      continue;
    }
    for (std::size_t s = 0; s < result.samples.size(); ++s) {
      EXPECT_EQ(result.samples[s].corner, reference.samples[s].corner);
      expect_identical(result.samples[s].report, reference.samples[s].report);
    }
    EXPECT_EQ(result.gain_stats.count(), reference.gain_stats.count());
    EXPECT_EQ(result.gain_stats.mean(), reference.gain_stats.mean());
    EXPECT_EQ(result.gain_stats.stddev(), reference.gain_stats.stddev());
    EXPECT_EQ(result.gain_stats.min(), reference.gain_stats.min());
    EXPECT_EQ(result.gain_stats.max(), reference.gain_stats.max());
    EXPECT_EQ(result.err_stats.mean(), reference.err_stats.mean());
  }
  // The drawn population covers more than one process corner (otherwise
  // this test would not notice a per-shard seeding regression).
  std::set<tech::ProcessCorner> processes;
  for (const auto& s : reference.samples) processes.insert(s.corner.process);
  EXPECT_GT(processes.size(), 1u);
  util::set_global_threads(1);
}

TEST(Determinism, ClosedLoopSuiteMatchesSequentialRuns) {
  const core::DvsBusSystem& system = test_support::paper_system();
  std::vector<trace::Trace> traces;
  for (std::uint64_t t = 0; t < 4; ++t)
    traces.push_back(synthetic_trace(15000, 0xe0 + t, "suite"));
  const core::DvsRunConfig config;
  const tech::PvtCorner corner = tech::typical_corner();

  // Sequential reference: the pre-executor per-trace loop.
  util::set_global_threads(1);
  std::vector<core::DvsRunReport> sequential;
  for (const auto& trace : traces)
    sequential.push_back(core::run_closed_loop(system, corner, trace, config));
  std::vector<core::DvsRunReport> fixed_sequential;
  for (const auto& trace : traces)
    fixed_sequential.push_back(core::run_fixed_vs(system, corner, trace));

  for (const unsigned threads : kThreadCounts) {
    util::set_global_threads(threads);
    const auto suite = core::run_closed_loop_suite(system, corner, traces, config);
    const auto fixed = core::run_fixed_vs_suite(system, corner, traces);
    ASSERT_EQ(suite.size(), traces.size());
    ASSERT_EQ(fixed.size(), traces.size());
    for (std::size_t t = 0; t < traces.size(); ++t) {
      expect_identical(suite[t], sequential[t]);
      expect_identical(fixed[t], fixed_sequential[t]);
    }
  }
  util::set_global_threads(1);
}

TEST(Determinism, SweepJsonReportIsByteIdenticalAcrossThreadCounts) {
  // End-to-end on the reporting path: the numbers formatted into a JSON
  // document (as the bench scenario runner does) match byte for byte.
  const core::DvsBusSystem& system = test_support::small_system();
  const std::vector<trace::Trace> traces{synthetic_trace(4000, 0xf5, "json")};

  std::string reference;
  for (const unsigned threads : kThreadCounts) {
    util::set_global_threads(threads);
    const core::StaticSweepResult sweep =
        core::static_voltage_sweep(system, tech::typical_corner(), traces);
    Json report = Json::object();
    report.set("floor_supply", sweep.floor_supply);
    report.set("baseline_bus_energy", sweep.baseline_bus_energy);
    Json points = Json::array();
    for (const auto& p : sweep.points) {
      Json jp = Json::object();
      jp.set("supply", p.supply);
      jp.set("error_rate", p.error_rate);
      jp.set("bus_energy", p.bus_energy);
      jp.set("total_energy", p.total_energy);
      jp.set("norm_bus_energy", p.norm_bus_energy);
      jp.set("norm_total_energy", p.norm_total_energy);
      points.push(std::move(jp));
    }
    report.set("points", std::move(points));
    const std::string dumped = report.dump(2);
    if (reference.empty())
      reference = dumped;
    else
      EXPECT_EQ(dumped, reference) << "threads=" << threads;
  }
  util::set_global_threads(1);
}

}  // namespace
}  // namespace razorbus

// Campaign service (docs/campaignd.md): content-hash job identity, the
// durable O_EXCL claim queue, the verbatim result cache, and campaignd end
// to end.
//
// The in-process tests drive src/svc directly (the concurrency ones run
// under the TSan CI leg); the end-to-end tests spawn the sibling
// `campaignd` binary from the build directory, like ctest and CI do, and
// assert the acceptance contract: a warm rerun of a campaign performs
// zero simulations and emits byte-identical per-job reports, and a worker
// killed mid-campaign resumes without re-running completed jobs.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/job_hash.hpp"
#include "core/scenario_spec.hpp"
#include "svc/fsio.hpp"
#include "svc/queue.hpp"
#include "svc/result_cache.hpp"
#include "util/json.hpp"

namespace razorbus {
namespace {

namespace fs = std::filesystem;

int run_cmd(const std::string& cmd) { return std::system(cmd.c_str()); }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

core::ScenarioJob make_job(const std::string& name, const std::string& spec_json) {
  core::ScenarioJob job;
  job.name = name;
  job.spec = core::ScenarioSpec::from_json(Json::parse(spec_json));
  return job;
}

// A scratch directory per test, wiped on entry.
std::string scratch(const std::string& name) {
  const std::string dir = "campaignd_test_out/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --------------------------------------------------------- content hashing

TEST(JobHash, SameSpecSameHash) {
  const char* spec = R"({"name": "a", "experiment": "closed_loop",
      "trace": {"source": "synthetic", "style": "uniform", "seed": 5},
      "cycles": 1000, "threads": 1})";
  EXPECT_EQ(core::job_content_hash(make_job("a", spec)),
            core::job_content_hash(make_job("a", spec)));
  EXPECT_EQ(core::job_hash_hex(make_job("a", spec)).size(), 16u);
}

// Any field change — the knobs that pick what gets simulated, how much,
// and with which engine — must move the hash, or the result cache would
// serve stale reports.
TEST(JobHash, AnyFieldChangeChangesHash) {
  const auto base = [](const std::string& patch) {
    Json spec = Json::parse(
        R"({"name": "a", "experiment": "closed_loop",
            "trace": {"source": "synthetic", "style": "uniform", "seed": 5},
            "cycles": 1000, "threads": 1})");
    if (!patch.empty()) {
      const Json extra = Json::parse(patch);
      for (const auto& [key, value] : extra.members()) spec.set(key, value);
    }
    core::ScenarioJob job;
    job.name = "a";
    job.spec = core::ScenarioSpec::from_json(spec);
    return core::job_content_hash(job);
  };
  const std::uint64_t reference = base("");
  const std::vector<std::string> patches = {
      R"({"cycles": 1001})",
      R"({"threads": 2})",
      R"({"widths": [64]})",
      R"({"controllers": ["fixed_vs"]})",
      R"({"engine": "reference"})",
      R"({"stream": true})",
      R"({"lut_tolerance": 0.02})",
      R"({"corners": ["worst"]})",
      R"({"encoding": "bus_invert"})",
      R"({"trace": {"source": "synthetic", "style": "uniform", "seed": 6}})",
      R"({"trace": {"source": "synthetic", "style": "sparse", "seed": 5}})",
  };
  std::set<std::uint64_t> seen{reference};
  for (const auto& patch : patches) {
    const std::uint64_t hash = base(patch);
    EXPECT_NE(hash, reference) << patch;
    EXPECT_TRUE(seen.insert(hash).second) << "collision for " << patch;
  }
  // The job NAME is part of the identity too (distinct axis points).
  core::ScenarioJob renamed = make_job(
      "b", R"({"name": "a", "experiment": "closed_loop",
               "trace": {"source": "synthetic", "style": "uniform", "seed": 5},
               "cycles": 1000, "threads": 1})");
  EXPECT_NE(core::job_content_hash(renamed), reference);
}

// The multi-bus lane list, the arbitration policy and the drift schedule
// all pick what gets simulated, so each must move the content hash — a
// cached one_bus report must never satisfy a two_bus job, and an aged run
// must never replay a fresh one.
TEST(JobHash, MultiBusAndDriftFieldsChangeHash) {
  const auto base = [](const std::string& patch) {
    Json spec = Json::parse(
        R"({"name": "soc", "experiment": "multi_bus",
            "arbitration": "max_error",
            "buses": [
              {"width": 32, "weight": 1.0,
               "trace": {"source": "synthetic", "style": "uniform", "seed": 3}},
              {"width": 32, "weight": 1.0,
               "trace": {"source": "synthetic", "style": "sparse", "seed": 4}}
            ],
            "cycles": 1000, "threads": 1})");
    if (!patch.empty()) {
      const Json extra = Json::parse(patch);
      for (const auto& [key, value] : extra.members()) spec.set(key, value);
    }
    core::ScenarioJob job;
    job.name = "soc";
    job.spec = core::ScenarioSpec::from_json(spec);
    return core::job_content_hash(job);
  };
  const std::uint64_t reference = base("");
  const std::vector<std::string> patches = {
      R"({"arbitration": "sum_error"})",
      R"({"arbitration": "weighted"})",
      // Lane list: width, weight, trace and count all matter.
      R"({"buses": [{"width": 64, "weight": 1.0,
                     "trace": {"source": "synthetic", "style": "uniform", "seed": 3}},
                    {"width": 32, "weight": 1.0,
                     "trace": {"source": "synthetic", "style": "sparse", "seed": 4}}]})",
      R"({"buses": [{"width": 32, "weight": 2.5,
                     "trace": {"source": "synthetic", "style": "uniform", "seed": 3}},
                    {"width": 32, "weight": 1.0,
                     "trace": {"source": "synthetic", "style": "sparse", "seed": 4}}]})",
      R"({"buses": [{"width": 32, "weight": 1.0,
                     "trace": {"source": "synthetic", "style": "uniform", "seed": 9}},
                    {"width": 32, "weight": 1.0,
                     "trace": {"source": "synthetic", "style": "sparse", "seed": 4}}]})",
      R"({"buses": [{"width": 32, "weight": 1.0,
                     "trace": {"source": "synthetic", "style": "uniform", "seed": 3}}]})",
      // Drift: enabling it, each ramp endpoint, and the piecewise form.
      R"({"drift": {"temp_start": 25.0, "temp_end": 100.0}})",
      R"({"drift": {"temp_start": 25.0, "temp_end": 90.0}})",
      R"({"drift": {"temp_start": 25.0, "temp_end": 100.0,
                    "vth_shift_start": 0.0, "vth_shift_end": 0.05}})",
      R"({"drift": {"points": [{"cycle": 0, "temp_c": 25.0},
                               {"cycle": 500, "temp_c": 100.0}]}})",
      R"({"drift": {"points": [{"cycle": 0, "temp_c": 25.0},
                               {"cycle": 600, "temp_c": 100.0}]}})",
  };
  std::set<std::uint64_t> seen{reference};
  for (const auto& patch : patches) {
    const std::uint64_t hash = base(patch);
    EXPECT_NE(hash, reference) << patch;
    EXPECT_TRUE(seen.insert(hash).second) << "collision for " << patch;
  }
}

// File traces hash their BYTES: editing the trace file invalidates the
// cached result even though the spec is unchanged.
TEST(JobHash, TraceFileBytesAreHashed) {
  const std::string dir = scratch("job_hash_trace");
  const std::string trace_path = dir + "/trace.bin";
  const auto job_for = [&] {
    core::ScenarioJob job;
    job.name = "file_job";
    job.spec = core::ScenarioSpec::from_json(Json::parse(
        R"({"name": "file_job", "experiment": "static_sweep",
            "trace": {"source": "file", "path": ")" +
        trace_path + R"("}, "cycles": 100})"));
    return job;
  };
  svc::write_file_atomic(trace_path, "trace-bytes-v1");
  const std::uint64_t first = core::job_content_hash(job_for());
  EXPECT_EQ(first, core::job_content_hash(job_for()));
  svc::write_file_atomic(trace_path, "trace-bytes-v2");
  EXPECT_NE(core::job_content_hash(job_for()), first);
  // Unreadable trace: identity still computes (the job fails at run time).
  fs::remove(trace_path);
  EXPECT_NE(core::job_content_hash(job_for()), first);
}

// ------------------------------------------------------------- job queue

svc::QueueJob queue_job(const std::string& name) {
  svc::QueueJob job;
  job.name = name;
  job.hash_hex = "00000000000000" + name.substr(name.size() - 2);
  job.spec_path = name + ".spec.json";
  job.report_path = "BENCH_" + name + ".json";
  job.log_path = name + ".log";
  return job;
}

TEST(JobQueue, ClaimCompleteDrain) {
  svc::JobQueue queue(scratch("queue_basic"));
  for (const char* name : {"j01", "j02", "j03"}) queue.enqueue(queue_job(name));
  EXPECT_EQ(queue.jobs().size(), 3u);
  EXPECT_FALSE(queue.all_done());

  // Claims hand out distinct jobs in name order; a claimed job is invisible
  // to other claimants until released or completed.
  const auto first = queue.claim("w1");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->name, "j01");
  const auto second = queue.claim("w1");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->name, "j02");

  Json ok = Json::object();
  ok.set("status", "ok");
  queue.complete("j01", ok);
  queue.complete("j02", ok);
  EXPECT_TRUE(queue.is_done("j01"));
  EXPECT_EQ(queue.done_count(), 2u);

  const auto third = queue.claim("w1");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->name, "j03");
  queue.complete("j03", ok);
  EXPECT_TRUE(queue.all_done());
  EXPECT_FALSE(queue.claim("w1").has_value());

  // reset() reopens a done job.
  queue.reset("j02");
  EXPECT_FALSE(queue.all_done());
  const auto again = queue.claim("w2");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->name, "j02");
}

// The kill -9 contract: a claim whose recorded pid is dead is stale, and
// the next claimant steals the job; done jobs stay done.
TEST(JobQueue, DurableAcrossAKilledWorker) {
  const std::string dir = scratch("queue_killed");
  svc::JobQueue queue(dir);
  queue.enqueue(queue_job("j01"));
  queue.enqueue(queue_job("j02"));

  Json ok = Json::object();
  ok.set("status", "ok");
  queue.complete("j01", ok);

  // A worker that died mid-job: its claim records a pid that no longer
  // exists (fork a child that exits immediately and reap it).
  const pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  ASSERT_EQ(waitpid(dead, nullptr, 0), dead);
  Json stale = Json::object();
  stale.set("worker", "killed");
  stale.set("pid", static_cast<long long>(dead));
  svc::write_file_atomic(dir + "/claims/j02.claim", stale.dump(2) + "\n");

  // A fresh queue handle (a new process after the kill) reclaims j02 and
  // does NOT re-run j01.
  svc::JobQueue resumed(dir);
  EXPECT_TRUE(resumed.is_done("j01"));
  const auto claimed = resumed.claim("w2");
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->name, "j02");

  // A LIVE claim (this process) is not stealable.
  svc::JobQueue contender(dir);
  EXPECT_FALSE(contender.claim("w3").has_value());

  // A torn claim file (crash mid-write, before any pid landed) is stale.
  resumed.release("j02");
  svc::write_file_atomic(dir + "/claims/j02.claim", "{\"worker\": \"torn");
  const auto reclaimed = contender.claim("w3");
  ASSERT_TRUE(reclaimed.has_value());
  EXPECT_EQ(reclaimed->name, "j02");
}

// Two workers hammering one queue never claim the same job twice — the
// O_CREAT|O_EXCL gate is the whole mutual-exclusion protocol. Runs under
// the TSan CI leg.
TEST(JobQueue, ConcurrentWorkersNeverDoubleClaim) {
  const std::string dir = scratch("queue_concurrent");
  {
    svc::JobQueue setup(dir);
    for (int i = 0; i < 8; ++i)
      setup.enqueue(queue_job("j0" + std::to_string(i)));
  }
  std::vector<std::string> claimed[2];
  Json ok = Json::object();
  ok.set("status", "ok");
  const auto worker = [&](int lane) {
    svc::JobQueue queue(dir);  // own handle, like a separate process
    while (true) {
      const auto job = queue.claim("w" + std::to_string(lane));
      if (!job) break;
      claimed[lane].push_back(job->name);
      queue.complete(job->name, ok);
    }
  };
  std::thread other([&] { worker(1); });
  worker(0);
  other.join();

  std::set<std::string> all;
  for (const auto& lane : claimed)
    for (const auto& name : lane)
      EXPECT_TRUE(all.insert(name).second) << name << " claimed twice";
  EXPECT_EQ(all.size(), 8u);
  svc::JobQueue queue(dir);
  EXPECT_TRUE(queue.all_done());
}

// ----------------------------------------------------------- result cache

TEST(ResultCache, VerbatimRoundTripAndTornEntryTolerance) {
  svc::ResultCache cache(scratch("cache"));
  const std::string hash = "00c0ffee00c0ffee";
  EXPECT_FALSE(cache.lookup(hash).has_value());

  const std::string report = "{\n  \"scenario\": \"x\",\n  \"cycles\": 7\n}\n";
  cache.insert(hash, report);
  const auto bytes = cache.lookup(hash);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, report);  // verbatim, not re-serialized

  // A torn entry — crash before the atomic publish — is a miss, and the
  // debris is cleared for the next insert.
  svc::write_file_atomic(cache.entry_path(hash), report.substr(0, 10));
  EXPECT_FALSE(cache.lookup(hash).has_value());
  EXPECT_FALSE(fs::exists(cache.entry_path(hash)));
  cache.insert(hash, report);
  EXPECT_TRUE(cache.lookup(hash).has_value());

  // Unparseable bytes must never enter the cache.
  EXPECT_THROW(cache.insert(hash, "not json"), std::exception);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 2u);
}

// ------------------------------------------------------------- end to end

class CampaigndEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!std::ifstream("./campaignd") || !std::ifstream("./campaign"))
      GTEST_SKIP() << "bench binaries not in the working directory; run from build/";
    fs::create_directories("campaignd_test_out");
    std::ofstream spec("campaignd_test_out/tiny.json");
    spec << R"({"name": "tiny", "defaults": {"cycles": 2000, "threads": 1},
      "scenarios": [
        {"name": "uni", "experiment": "closed_loop",
         "trace": {"source": "synthetic", "style": "uniform", "seed": 7},
         "controllers": ["threshold", "fixed_vs"]},
        {"name": "sweep", "experiment": "static_sweep",
         "trace": {"source": "synthetic", "style": "uniform", "seed": 7}}
      ]})";
  }

  static Json status_of(const std::string& out_dir) {
    return Json::parse(slurp(out_dir + "/status.json"));
  }
};

// The acceptance contract: a warm rerun against a shared cache performs
// ZERO simulations (no run-one children, zero simulated cycles) and emits
// byte-identical per-job reports.
TEST_F(CampaigndEndToEnd, WarmRerunIsAllCacheHitsAndByteIdentical) {
  const std::string cold = "campaignd_test_out/cold";
  const std::string warm = "campaignd_test_out/warm";
  fs::remove_all(cold);
  fs::remove_all(warm);
  ASSERT_EQ(run_cmd("./campaignd run campaignd_test_out/tiny.json --out=" + cold +
                    " --workers=2 > " + cold + ".log 2>&1"),
            0);
  const Json cold_status = status_of(cold);
  EXPECT_EQ(cold_status.at("executed").as_int(), 3);
  EXPECT_EQ(cold_status.at("cache_hits").as_int(), 0);

  // Fresh out dir, shared cache: everything replays.
  ASSERT_EQ(run_cmd("./campaignd run campaignd_test_out/tiny.json --out=" + warm +
                    " --cache=" + cold + "/cache > " + warm + ".log 2>&1"),
            0);
  const Json warm_status = status_of(warm);
  EXPECT_EQ(warm_status.at("executed").as_int(), 0);
  EXPECT_EQ(warm_status.at("executed_cycles").as_double(), 0.0);
  EXPECT_EQ(warm_status.at("cache_hits").as_int(), 3);
  EXPECT_EQ(warm_status.at("jobs_total").as_int(), 3);
  EXPECT_DOUBLE_EQ(warm_status.at("cache_hit_rate").as_double(), 1.0);

  for (const char* name : {"uni_threshold", "uni_fixed_vs", "sweep"}) {
    const std::string file = std::string("BENCH_") + name + ".json";
    EXPECT_EQ(slurp(cold + "/" + file), slurp(warm + "/" + file)) << file;
  }

  // The status subcommand reads the same snapshot.
  ASSERT_EQ(run_cmd("./campaignd status --out=" + warm + " > " + warm +
                    "_status.log 2>&1"),
            0);
  const std::string printed = slurp(warm + "_status.log");
  EXPECT_NE(printed.find("hit rate 100%"), std::string::npos) << printed;
}

// A scheduler stopped mid-campaign (here: a one-job budget, the same queue
// state a kill -9 leaves behind) resumes without re-running completed jobs.
TEST_F(CampaigndEndToEnd, InterruptedCampaignResumesWithoutRerunning) {
  const std::string out = "campaignd_test_out/resume";
  fs::remove_all(out);
  ASSERT_EQ(run_cmd("./campaignd run campaignd_test_out/tiny.json --out=" + out +
                    " --max_jobs=1 > " + out + ".log 2>&1"),
            0);
  EXPECT_EQ(status_of(out).at("executed").as_int(), 1);
  EXPECT_NE(slurp(out + ".log").find("queue not drained"), std::string::npos);

  ASSERT_EQ(run_cmd("./campaignd run campaignd_test_out/tiny.json --out=" + out +
                    " > " + out + "2.log 2>&1"),
            0);
  const std::string log = slurp(out + "2.log");
  // The completed job resumed as done; only the remaining two executed.
  EXPECT_NE(log.find("[cached]"), std::string::npos) << log;
  EXPECT_EQ(status_of(out).at("executed").as_int(), 2);
  EXPECT_EQ(status_of(out).at("done").as_int(), 3);
  svc::JobQueue queue(out + "/queue");
  EXPECT_TRUE(queue.all_done());
}

// The checked-in multi-bus and drift campaign files run cold end to end,
// and a warm rerun against the shared cache replays every job without a
// single simulated cycle, byte-identically — the same reuse contract the
// campaign-cache CI leg asserts for quick.json.
TEST_F(CampaigndEndToEnd, SystemAndDriftCampaignsColdThenWarm) {
  for (const std::string campaign : {"system", "drift"}) {
    const std::string file =
        std::string(RAZORBUS_SOURCE_DIR) + "/campaigns/" + campaign + ".json";
    const std::string cold = "campaignd_test_out/" + campaign + "_cold";
    const std::string warm = "campaignd_test_out/" + campaign + "_warm";
    fs::remove_all(cold);
    fs::remove_all(warm);
    ASSERT_EQ(run_cmd("./campaignd run " + file + " --out=" + cold +
                      " --workers=2 > " + cold + ".log 2>&1"),
              0)
        << campaign;
    const Json cold_status = status_of(cold);
    const long long jobs = cold_status.at("jobs_total").as_int();
    EXPECT_GE(jobs, 3) << campaign;
    EXPECT_EQ(cold_status.at("executed").as_int(), jobs) << campaign;
    EXPECT_EQ(cold_status.at("cache_hits").as_int(), 0) << campaign;

    ASSERT_EQ(run_cmd("./campaignd run " + file + " --out=" + warm +
                      " --cache=" + cold + "/cache > " + warm + ".log 2>&1"),
              0)
        << campaign;
    const Json warm_status = status_of(warm);
    EXPECT_EQ(warm_status.at("executed").as_int(), 0) << campaign;
    EXPECT_EQ(warm_status.at("executed_cycles").as_double(), 0.0) << campaign;
    EXPECT_EQ(warm_status.at("cache_hits").as_int(), jobs) << campaign;

    // Every cold per-job report replays byte-identically. (The merged
    // BENCH_campaign.json summary carries wall-clock fields, so it is the
    // one BENCH_*.json file exempt from the byte contract.)
    std::size_t compared = 0;
    for (const auto& entry : fs::directory_iterator(cold)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 || name == "BENCH_campaign.json") continue;
      EXPECT_EQ(slurp(cold + "/" + name), slurp(warm + "/" + name)) << name;
      ++compared;
    }
    EXPECT_EQ(compared, static_cast<std::size_t>(jobs)) << campaign;
  }
}

// `campaignd manifest` splits jobs across shards by content hash:
// exhaustive, disjoint, and stable.
TEST_F(CampaigndEndToEnd, ManifestPartitionsJobsByHash) {
  const std::string out = "campaignd_test_out/manifest";
  fs::remove_all(out);
  ASSERT_EQ(run_cmd("./campaignd manifest campaignd_test_out/tiny.json --shards=2 "
                    "--out=" + out + " > " + out + ".log 2>&1"),
            0);
  std::set<std::string> names;
  std::size_t total = 0;
  for (int s = 0; s < 2; ++s) {
    const Json shard = Json::parse(
        slurp(out + "/shard_" + std::to_string(s) + "_of_2.json"));
    EXPECT_EQ(shard.at("campaign").as_string(), "tiny");
    EXPECT_EQ(shard.at("shards").as_int(), 2);
    for (const auto& entry : shard.at("jobs").items()) {
      EXPECT_TRUE(names.insert(entry.at("name").as_string()).second);
      ++total;
    }
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(names.count("sweep"), 1u);
}

}  // namespace
}  // namespace razorbus

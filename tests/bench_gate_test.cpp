// The CI bench-regression gate (core::compare_bench_reports): the
// acceptance contract is that a synthetic 25% throughput regression fails
// at the default 20% threshold and an unchanged rerun passes.
#include <gtest/gtest.h>

#include "core/bench_gate.hpp"
#include "util/json.hpp"

namespace razorbus {
namespace {

// A BENCH_engine.json-shaped report: throughput metrics ("_cps"), plus the
// fields the gate must ignore (wall clock, thread counts, result metrics).
Json engine_report(double active_cps, double width64_cps) {
  Json metrics = Json::object();
  metrics.set("active_reference_cps", 2.5e6);
  metrics.set("active_bit_parallel_cps", active_cps);
  metrics.set("active_speedup", active_cps / 2.5e6);
  metrics.set("width64_bit_parallel_cps", width64_cps);
  metrics.set("threads", 4.0);
  metrics.set("sweep_seconds_1t", 1.25);

  Json report = Json::object();
  report.set("scenario", "engine");
  report.set("threads", "auto");
  report.set("threads_resolved", 4);
  report.set("wall_seconds", 12.875);
  report.set("metrics", std::move(metrics));
  return report;
}

TEST(BenchGate, UnchangedRerunPasses) {
  const Json report = engine_report(80e6, 60e6);
  const core::BenchGateResult result = core::compare_bench_reports(report, report, 0.20);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions(), 0u);
  // Exactly the three _cps metrics are compared — never wall_seconds,
  // threads, speedups or seconds-per-run fields.
  ASSERT_EQ(result.compared.size(), 3u);
  for (const auto& finding : result.compared) {
    EXPECT_DOUBLE_EQ(finding.ratio, 1.0);
    EXPECT_NE(finding.path.find("_cps"), std::string::npos);
  }
  EXPECT_TRUE(result.missing.empty());
  EXPECT_TRUE(result.added.empty());
}

TEST(BenchGate, SyntheticQuarterRegressionFails) {
  const Json baseline = engine_report(80e6, 60e6);
  const Json current = engine_report(0.75 * 80e6, 60e6);  // injected 25% drop
  const core::BenchGateResult result =
      core::compare_bench_reports(baseline, current, 0.20);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions(), 1u);
  for (const auto& finding : result.compared) {
    if (finding.path == "metrics/active_bit_parallel_cps") {
      EXPECT_TRUE(finding.regression);
      EXPECT_NEAR(finding.ratio, 0.75, 1e-12);
    } else {
      EXPECT_FALSE(finding.regression);
    }
  }
}

TEST(BenchGate, DropWithinThresholdPasses) {
  const Json baseline = engine_report(80e6, 60e6);
  // 15% down and 10% down: noisy runners, not regressions at 20%.
  const Json current = engine_report(0.85 * 80e6, 0.90 * 60e6);
  EXPECT_TRUE(core::compare_bench_reports(baseline, current, 0.20).ok());
  // The same drop IS a regression at a 10% threshold.
  EXPECT_FALSE(core::compare_bench_reports(baseline, current, 0.10).ok());
}

TEST(BenchGate, ImprovementsNeverFail) {
  const Json baseline = engine_report(80e6, 60e6);
  const Json current = engine_report(3.0 * 80e6, 2.0 * 60e6);
  const core::BenchGateResult result =
      core::compare_bench_reports(baseline, current, 0.20);
  EXPECT_TRUE(result.ok());
}

TEST(BenchGate, CampaignNestingIsCompared) {
  // BENCH_campaign.json nests one report per scenario.
  Json baseline = Json::object();
  baseline.set("campaign", "paper");
  Json scenarios = Json::object();
  scenarios.set("engine", engine_report(80e6, 60e6));
  baseline.set("scenarios", std::move(scenarios));

  Json current = Json::object();
  current.set("campaign", "paper");
  Json cur_scenarios = Json::object();
  cur_scenarios.set("engine", engine_report(0.5 * 80e6, 60e6));
  current.set("scenarios", std::move(cur_scenarios));

  const core::BenchGateResult result =
      core::compare_bench_reports(baseline, current, 0.20);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions(), 1u);
  for (const auto& finding : result.compared) {
    if (finding.regression) {
      EXPECT_EQ(finding.path, "scenarios/engine/metrics/active_bit_parallel_cps");
    }
  }
}

TEST(BenchGate, AddedAndRemovedMetricsAreNotedNotFailed) {
  Json baseline = Json::object();
  Json base_metrics = Json::object();
  base_metrics.set("old_scenario_cps", 10e6);
  base_metrics.set("shared_cps", 20e6);
  baseline.set("metrics", std::move(base_metrics));

  Json current = Json::object();
  Json cur_metrics = Json::object();
  cur_metrics.set("shared_cps", 20e6);
  cur_metrics.set("new_scenario_cps", 5e6);
  current.set("metrics", std::move(cur_metrics));

  const core::BenchGateResult result =
      core::compare_bench_reports(baseline, current, 0.20);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.compared.size(), 1u);
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "metrics/old_scenario_cps");
  ASSERT_EQ(result.added.size(), 1u);
  EXPECT_EQ(result.added[0], "metrics/new_scenario_cps");
}

// The multi-point engine metrics (sweep_points_w<W>_p<P>_cps) ride the
// "_cps" suffix convention, so the gate tracks them with no code change —
// while the companion speedup/seconds fields stay ignored.
TEST(BenchGate, MultiPointSweepMetricsAreTracked) {
  const auto report = [](double p20_cps) {
    Json metrics = Json::object();
    metrics.set("sweep_points_w32_p1_cps", 30e6);
    metrics.set("sweep_points_w32_p20_cps", p20_cps);
    metrics.set("sweep_simd_speedup", 4.2);    // not a throughput key
    metrics.set("sweep_simd_seconds", 0.5);    // wall clock: ignored
    metrics.set("sweep_supplies", 20.0);       // result metric: ignored
    Json out = Json::object();
    out.set("metrics", std::move(metrics));
    return out;
  };

  const core::BenchGateResult same =
      core::compare_bench_reports(report(120e6), report(120e6), 0.20);
  EXPECT_TRUE(same.ok());
  ASSERT_EQ(same.compared.size(), 2u);
  EXPECT_EQ(same.compared[0].path, "metrics/sweep_points_w32_p1_cps");
  EXPECT_EQ(same.compared[1].path, "metrics/sweep_points_w32_p20_cps");

  const core::BenchGateResult regressed =
      core::compare_bench_reports(report(120e6), report(0.5 * 120e6), 0.20);
  EXPECT_FALSE(regressed.ok());
  EXPECT_EQ(regressed.regressions(), 1u);
}

// Characterization-cost metrics ("_sims") gate in the opposite direction:
// a RISE in transient-run counts is the regression.
TEST(BenchGate, CostMetricsRegressOnRiseNotDrop) {
  const auto report = [](double build_sims, double warm_sims) {
    Json metrics = Json::object();
    metrics.set("lut_build_sims", build_sims);
    metrics.set("lut_warm_sims", warm_sims);
    metrics.set("lut_build_cps", 150.0);  // throughput companion, gated too
    Json out = Json::object();
    out.set("metrics", std::move(metrics));
    return out;
  };

  const core::BenchGateResult same =
      core::compare_bench_reports(report(400.0, 0.0), report(400.0, 0.0), 0.20);
  EXPECT_TRUE(same.ok());
  ASSERT_EQ(same.compared.size(), 3u);  // both _sims keys plus the _cps key
  EXPECT_EQ(same.compared[0].path, "metrics/lut_build_cps");
  EXPECT_FALSE(same.compared[0].cost);
  EXPECT_EQ(same.compared[1].path, "metrics/lut_build_sims");
  EXPECT_TRUE(same.compared[1].cost);
  EXPECT_TRUE(same.compared[2].cost);

  // 50% MORE sims: regression. 50% fewer: an improvement, never fails.
  EXPECT_FALSE(core::compare_bench_reports(report(400.0, 0.0), report(600.0, 0.0), 0.20).ok());
  EXPECT_TRUE(core::compare_bench_reports(report(400.0, 0.0), report(200.0, 0.0), 0.20).ok());
  // A rise within the threshold is noise, not a regression.
  EXPECT_TRUE(core::compare_bench_reports(report(400.0, 0.0), report(440.0, 0.0), 0.20).ok());
}

TEST(BenchGate, WarmCacheMustStayAtZeroSims) {
  const auto report = [](double warm_sims) {
    Json metrics = Json::object();
    metrics.set("lut_warm_sims", warm_sims);
    Json out = Json::object();
    out.set("metrics", std::move(metrics));
    return out;
  };
  // Zero-sim baseline: ratios are meaningless, so ANY sim at all fails —
  // the fully-warm point store started re-simulating known points.
  EXPECT_TRUE(core::compare_bench_reports(report(0.0), report(0.0), 0.20).ok());
  const core::BenchGateResult broken =
      core::compare_bench_reports(report(0.0), report(3.0), 0.20);
  EXPECT_FALSE(broken.ok());
  EXPECT_EQ(broken.regressions(), 1u);
  EXPECT_TRUE(broken.compared[0].cost);
}

// --------------------------------------------------------------- history

// History gating takes each metric's LOWER MEDIAN across the window, so a
// single anomalously fast main-branch entry (a quiet CI runner) cannot
// raise the bar and fail an honest current run the way diffing the last
// artifact alone would.
TEST(BenchGate, HistoryMedianShrugsOffOneNoisyEntry) {
  const std::vector<Json> history = {
      engine_report(80e6, 60e6),
      engine_report(82e6, 61e6),
      engine_report(160e6, 120e6),  // the noisy outlier, 2x everything
      engine_report(78e6, 59e6),
  };
  const Json current = engine_report(79e6, 60e6);

  // Against the outlier alone, an honest run "regresses" by ~50%.
  EXPECT_FALSE(core::compare_bench_reports(history[2], current, 0.20).ok());
  // Against the window median it passes, with the baseline at an honest
  // entry: 4 values sorted -> lower median is index 1 (78, [80], 82, 160).
  const core::BenchGateResult result =
      core::compare_bench_history(history, current, 0.20);
  EXPECT_TRUE(result.ok());
  for (const auto& finding : result.compared) {
    if (finding.path == "metrics/active_bit_parallel_cps") {
      EXPECT_DOUBLE_EQ(finding.baseline, 80e6);
    }
  }

  // A real 25% drop still fails against the median baseline.
  EXPECT_FALSE(
      core::compare_bench_history(history, engine_report(0.75 * 80e6, 60e6), 0.20)
          .ok());
}

// A single-entry history degenerates to exactly compare_bench_reports.
TEST(BenchGate, SingleEntryHistoryMatchesDirectComparison) {
  const Json baseline = engine_report(80e6, 60e6);
  const Json current = engine_report(0.70 * 80e6, 60e6);
  const core::BenchGateResult direct =
      core::compare_bench_reports(baseline, current, 0.20);
  const core::BenchGateResult history =
      core::compare_bench_history({baseline}, current, 0.20);
  ASSERT_EQ(history.compared.size(), direct.compared.size());
  for (std::size_t i = 0; i < direct.compared.size(); ++i) {
    EXPECT_EQ(history.compared[i].path, direct.compared[i].path);
    EXPECT_DOUBLE_EQ(history.compared[i].baseline, direct.compared[i].baseline);
    EXPECT_EQ(history.compared[i].regression, direct.compared[i].regression);
  }
  EXPECT_FALSE(history.ok());
}

// An empty history compares nothing: ok() is true and the CLI decides
// whether "no baseline" passes (--allow-missing-baseline).
TEST(BenchGate, EmptyHistoryComparesNothing) {
  const core::BenchGateResult result =
      core::compare_bench_history({}, engine_report(80e6, 60e6), 0.20);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.compared.empty());
  // Every current metric is "added" — reported, never failed.
  EXPECT_EQ(result.added.size(), 3u);
}

// A metric that only entered the campaign mid-window is judged on the
// entries that carry it, and the zero-sim cost convention survives the
// median: a majority-zero window keeps the strict any-sim-fails baseline.
TEST(BenchGate, HistoryHandlesPartialWindowsAndZeroSimBaselines) {
  const auto warm_report = [](double warm_sims) {
    Json metrics = Json::object();
    metrics.set("lut_warm_sims", warm_sims);
    Json out = Json::object();
    out.set("metrics", std::move(metrics));
    return out;
  };
  // One cold-cache entry polluted the window; the median stays 0.
  const std::vector<Json> history = {warm_report(0.0), warm_report(417.0),
                                     warm_report(0.0)};
  EXPECT_TRUE(core::compare_bench_history(history, warm_report(0.0), 0.20).ok());
  const core::BenchGateResult broken =
      core::compare_bench_history(history, warm_report(2.0), 0.20);
  EXPECT_FALSE(broken.ok());

  // Metric present in only the newest entry: baseline is that one value.
  std::vector<Json> partial = {engine_report(80e6, 60e6)};
  Json newest = engine_report(80e6, 60e6);
  Json metrics = newest.at("metrics");
  metrics.set("fresh_scenario_cps", 10e6);
  newest.set("metrics", std::move(metrics));
  partial.push_back(newest);
  const core::BenchGateResult fresh = core::compare_bench_history(
      partial, newest, 0.20);
  EXPECT_TRUE(fresh.ok());
  bool saw_fresh = false;
  for (const auto& finding : fresh.compared)
    if (finding.path == "metrics/fresh_scenario_cps") {
      saw_fresh = true;
      EXPECT_DOUBLE_EQ(finding.baseline, 10e6);
    }
  EXPECT_TRUE(saw_fresh);
}

TEST(BenchGate, ZeroBaselineNeverDividesOrFails) {
  Json baseline = Json::object();
  Json base_metrics = Json::object();
  base_metrics.set("broken_cps", 0.0);
  baseline.set("metrics", std::move(base_metrics));
  const core::BenchGateResult result =
      core::compare_bench_reports(baseline, baseline, 0.20);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.compared.size(), 1u);
  EXPECT_DOUBLE_EQ(result.compared[0].ratio, 1.0);
}

}  // namespace
}  // namespace razorbus

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "trace/io.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace razorbus::trace {
namespace {

// ---------------------------------------------------------------- stats

TEST(Stats, EmptyAndSingleWordTraces) {
  // No transition exists in either trace, so EVERY statistic must be its
  // zero default — in particular no division by the zero transition count.
  Trace empty{"e", {}};
  const TraceStats s0 = compute_stats(empty);
  EXPECT_EQ(s0.cycles, 0u);
  EXPECT_DOUBLE_EQ(s0.toggle_rate, 0.0);
  EXPECT_DOUBLE_EQ(s0.active_cycle_rate, 0.0);
  EXPECT_DOUBLE_EQ(s0.worst_pattern_rate, 0.0);
  for (const double p : s0.per_bit_toggle) EXPECT_DOUBLE_EQ(p, 0.0);

  Trace one{"o", {42}};
  const TraceStats s1 = compute_stats(one);
  EXPECT_EQ(s1.cycles, 1u);
  EXPECT_DOUBLE_EQ(s1.toggle_rate, 0.0);
  EXPECT_DOUBLE_EQ(s1.active_cycle_rate, 0.0);
  EXPECT_DOUBLE_EQ(s1.worst_pattern_rate, 0.0);
  for (const double p : s1.per_bit_toggle) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(Stats, ConstantTraceHasNoActivity) {
  Trace t{"c", std::vector<BusWord>(100, BusWord(0xDEADBEEFu))};
  const TraceStats s = compute_stats(t);
  EXPECT_DOUBLE_EQ(s.toggle_rate, 0.0);
  EXPECT_DOUBLE_EQ(s.active_cycle_rate, 0.0);
  EXPECT_DOUBLE_EQ(s.worst_pattern_rate, 0.0);
}

TEST(Stats, CheckerboardIsMaximallyHostile) {
  Trace t{"x", {}};
  for (int i = 0; i < 100; ++i) t.words.push_back(i % 2 ? 0x55555555u : 0xAAAAAAAAu);
  const TraceStats s = compute_stats(t);
  EXPECT_DOUBLE_EQ(s.toggle_rate, 1.0);         // every bit toggles every cycle
  EXPECT_DOUBLE_EQ(s.active_cycle_rate, 1.0);
  EXPECT_DOUBLE_EQ(s.worst_pattern_rate, 1.0);  // opposing neighbors everywhere
}

TEST(Stats, SingleBitToggleCounted) {
  Trace t{"s", {0, 1, 0, 1, 0}};
  const TraceStats s = compute_stats(t);
  EXPECT_NEAR(s.toggle_rate, 1.0 / 32.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.active_cycle_rate, 1.0);
  EXPECT_DOUBLE_EQ(s.per_bit_toggle[0], 1.0);
  EXPECT_DOUBLE_EQ(s.per_bit_toggle[1], 0.0);
  EXPECT_DOUBLE_EQ(s.worst_pattern_rate, 0.0);  // no interior victim pattern
}

TEST(Stats, WorstPatternDetectsOpposingTriple) {
  // Bit 2 rises while bits 1 and 3 fall: pattern I on an interior wire.
  Trace t{"w", {0b01010, 0b00100}};
  const TraceStats s = compute_stats(t);
  EXPECT_DOUBLE_EQ(s.worst_pattern_rate, 1.0);
  // The mirrored case: victim falls while neighbors rise.
  Trace u{"w2", {0b00100, 0b01010}};
  EXPECT_DOUBLE_EQ(compute_stats(u).worst_pattern_rate, 1.0);
}

TEST(Stats, PerBitTogglesSumToToggleRate) {
  Trace t{"r", {}};
  Rng rng(5);
  for (int i = 0; i < 500; ++i)
    t.words.push_back(static_cast<std::uint32_t>(rng.next_u64()));
  const TraceStats s = compute_stats(t);
  double sum = 0.0;
  for (const double p : s.per_bit_toggle) sum += p;
  EXPECT_NEAR(sum / 32.0, s.toggle_rate, 1e-12);
  EXPECT_NEAR(s.toggle_rate, 0.5, 0.02);  // uniform random words
}

TEST(Concatenate, PreservesOrderAndLength) {
  Trace a{"a", {1, 2}};
  Trace b{"b", {3}};
  const Trace c = concatenate({a, b}, "ab");
  EXPECT_EQ(c.name, "ab");
  ASSERT_EQ(c.words.size(), 3u);
  EXPECT_EQ(c.words[0], 1u);
  EXPECT_EQ(c.words[2], 3u);
}

TEST(Concatenate, RejectsMixedWidths) {
  // Regression: concatenate used to adopt the first trace's width and
  // silently mislabel (or effectively truncate) wider inputs; mixed widths
  // must throw instead, whichever order they arrive in.
  Trace narrow{"n", {1, 2}};
  Trace wide{"w", {3}};
  wide.n_bits = 64;
  EXPECT_THROW(concatenate({narrow, wide}, "nw"), std::invalid_argument);
  EXPECT_THROW(concatenate({wide, narrow}, "wn"), std::invalid_argument);
  // Same-width inputs keep working and keep their width.
  Trace wide2{"w2", {4, 5}};
  wide2.n_bits = 64;
  const Trace c = concatenate({wide, wide2}, "ww");
  EXPECT_EQ(c.n_bits, 64);
  EXPECT_EQ(c.words.size(), 3u);
}

// ---------------------------------------------------------------- widen

TEST(Widen, PacksEarliestWordLowest) {
  Trace t{"t", {0x11111111u, 0x22222222u, 0x33333333u, 0x44444444u}};
  const Trace wide = widen(t, 2);
  EXPECT_EQ(wide.n_bits, 64);
  ASSERT_EQ(wide.words.size(), 2u);
  EXPECT_EQ(wide.words[0].low64(), 0x2222222211111111ull);
  EXPECT_EQ(wide.words[1].low64(), 0x4444444433333333ull);
}

TEST(Widen, ZeroPadsTheTail) {
  // 5 words at factor 4: the second flit packs one word and must leave
  // the remaining 96 bits zero.
  Trace t{"t", {1, 2, 3, 4, 0xABCDu}};
  const Trace wide = widen(t, 4);
  EXPECT_EQ(wide.n_bits, 128);
  ASSERT_EQ(wide.words.size(), 2u);
  EXPECT_EQ(wide.words[1].lane(0), 0xABCDull);
  EXPECT_EQ(wide.words[1].lane(1), 0ull);
  // Tail padding also masks garbage above the input width.
  Trace small{"s", {0xFFu, 0xFFu, 0xFFu}};
  small.n_bits = 4;
  const Trace packed = widen(small, 2);
  EXPECT_EQ(packed.n_bits, 8);
  ASSERT_EQ(packed.words.size(), 2u);
  EXPECT_EQ(packed.words[0].low64(), 0xFFull);  // two 4-bit 0xF fields
  EXPECT_EQ(packed.words[1].low64(), 0x0Full);  // zero-padded high half
}

TEST(Widen, ValidatesFactorAndCapacity) {
  Trace t{"t", {1, 2}};
  EXPECT_THROW(widen(t, 0), std::invalid_argument);
  EXPECT_THROW(widen(t, -1), std::invalid_argument);
  EXPECT_THROW(widen(t, 5), std::invalid_argument);  // 160 bits > kMaxBits
  EXPECT_EQ(widen(t, 4).n_bits, 128);
}

// ---------------------------------------------------------------- synthetic

TEST(Synthetic, RespectsCycleCount) {
  SyntheticConfig cfg;
  cfg.cycles = 1234;
  EXPECT_EQ(generate_synthetic(cfg, "t").words.size(), 1234u);
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticConfig cfg;
  cfg.cycles = 1000;
  cfg.seed = 99;
  const Trace a = generate_synthetic(cfg, "a");
  const Trace b = generate_synthetic(cfg, "b");
  EXPECT_EQ(a.words, b.words);
  cfg.seed = 100;
  EXPECT_NE(generate_synthetic(cfg, "c").words, a.words);
}

TEST(Synthetic, LoadRateControlsHolds) {
  SyntheticConfig cfg;
  cfg.cycles = 20000;
  cfg.load_rate = 0.1;
  const TraceStats s = compute_stats(generate_synthetic(cfg, "t"));
  EXPECT_NEAR(s.active_cycle_rate, 0.1, 0.02);

  cfg.load_rate = 0.0;
  const TraceStats idle = compute_stats(generate_synthetic(cfg, "idle"));
  EXPECT_DOUBLE_EQ(idle.active_cycle_rate, 0.0);
}

TEST(Synthetic, LoadRateValidated) {
  SyntheticConfig cfg;
  cfg.load_rate = 1.5;
  EXPECT_THROW(generate_synthetic(cfg, "t"), std::invalid_argument);
}

TEST(Synthetic, StyleActivityOrdering) {
  auto worst_rate = [](SyntheticStyle style, double activity) {
    SyntheticConfig cfg;
    cfg.style = style;
    cfg.cycles = 30000;
    cfg.load_rate = 0.5;
    cfg.activity = activity;
    return compute_stats(generate_synthetic(cfg, "t")).worst_pattern_rate;
  };
  const double sparse = worst_rate(SyntheticStyle::sparse, 0.3);
  const double uniform = worst_rate(SyntheticStyle::uniform, 0.5);
  const double worst = worst_rate(SyntheticStyle::worst_case, 1.0);
  EXPECT_LT(sparse, uniform);
  EXPECT_LT(uniform, worst);
  EXPECT_GT(worst, 0.45);  // alternating checkerboard whenever active
}

TEST(Synthetic, FpLikeKeepsExponentBand) {
  SyntheticConfig cfg;
  cfg.style = SyntheticStyle::fp_like;
  cfg.cycles = 5000;
  cfg.load_rate = 1.0;
  cfg.activity = 0.8;
  const Trace t = generate_synthetic(cfg, "fp");
  const TraceStats s = compute_stats(t);
  // Sign bit never toggles; low mantissa bits toggle heavily.
  EXPECT_DOUBLE_EQ(s.per_bit_toggle[31], 0.0);
  EXPECT_GT(s.per_bit_toggle[2], 0.3);
}

TEST(Synthetic, PointerLikeKeepsHighBitsStable) {
  SyntheticConfig cfg;
  cfg.style = SyntheticStyle::pointer_like;
  cfg.cycles = 5000;
  cfg.load_rate = 1.0;
  const TraceStats s = compute_stats(generate_synthetic(cfg, "ptr"));
  EXPECT_DOUBLE_EQ(s.per_bit_toggle[30], 0.0);  // heap base bits
  EXPECT_DOUBLE_EQ(s.per_bit_toggle[0], 0.0);   // word alignment
  EXPECT_GT(s.per_bit_toggle[4], 0.1);          // offset bits move
}

TEST(Synthetic, SparseWordsHaveFewBits) {
  SyntheticConfig cfg;
  cfg.style = SyntheticStyle::sparse;
  cfg.cycles = 2000;
  cfg.load_rate = 1.0;
  cfg.activity = 0.5;
  const Trace t = generate_synthetic(cfg, "sparse");
  for (const auto& w : t.words) EXPECT_LE(w.popcount(), 6);
}

// ------------------------------------------------- synthetic seed stability
//
// The generated 32-bit streams are pinned: hashes below were captured from
// the pre-width-generic generators, and the width-generic rewrite (or any
// future change) must reproduce them bit for bit. Experiments cite trace
// seeds in reports; silently shifting the streams would silently shift
// every derived result.

std::uint64_t fnv1a_words(const std::vector<BusWord>& words) {
  std::uint64_t h = 1469598103934665603ull;
  for (const BusWord& word : words) {
    const std::uint32_t w = word.low32();
    for (int b = 0; b < 4; ++b) {
      h ^= (w >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct SyntheticGolden {
  SyntheticStyle style;
  std::uint64_t hash;
  std::uint32_t spot[4];  // words 0, 100, 1000, 4095
};

TEST(SyntheticStability, PinnedStreamsNeverShift) {
  // Goldens generated at cycles=4096, load_rate=0.7, activity=0.5,
  // seed=12345 against the pre-refactor std::uint32_t generators.
  const SyntheticGolden goldens[] = {
      {SyntheticStyle::uniform, 0x2d9197f0aff70dd9ull,
       {0x00000000u, 0xe13d6eb2u, 0xf6f265f6u, 0x39e731c8u}},
      {SyntheticStyle::random_walk, 0xe28f8d865fb940faull,
       {0x00000000u, 0x8cc99184u, 0xeab7a9c8u, 0xe0ecde9bu}},
      {SyntheticStyle::fp_like, 0x65e2686a2a24a4fdull,
       {0x00000000u, 0x41000498u, 0x4080066cu, 0x3f8000e4u}},
      {SyntheticStyle::pointer_like, 0x79b4f6be47f6b4c5ull,
       {0x00000000u, 0x40004ac8u, 0x400733d8u, 0x40005f20u}},
      {SyntheticStyle::sparse, 0xb20a269de957307cull,
       {0x00000000u, 0x20200800u, 0x02000002u, 0x00000001u}},
      {SyntheticStyle::worst_case, 0x6b0b2dfe4a14ab17ull,
       {0x00000000u, 0x55555555u, 0xaaaaaaaau, 0x55555555u}},
  };
  for (const auto& golden : goldens) {
    SyntheticConfig cfg;
    cfg.style = golden.style;
    cfg.cycles = 4096;
    cfg.load_rate = 0.7;
    cfg.activity = 0.5;
    cfg.seed = 12345;
    const Trace t = generate_synthetic(cfg, "pinned");
    ASSERT_EQ(t.words.size(), 4096u);
    EXPECT_EQ(fnv1a_words(t.words), golden.hash)
        << "style " << static_cast<int>(golden.style);
    const std::size_t spots[4] = {0, 100, 1000, 4095};
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(t.words[spots[i]].low32(), golden.spot[i])
          << "style " << static_cast<int>(golden.style) << " word " << spots[i];
    // High lanes must stay empty at the default 32-bit width.
    for (const BusWord& w : t.words) ASSERT_EQ(w.lane(1), 0u);
  }
}

TEST(SyntheticStability, WideGeneratorsKeepLowLaneSemantics) {
  // Wide words must populate bits past 32 (uniform/random_walk/sparse
  // spread across the whole word) without disturbing the pinned styles'
  // structural invariants.
  for (const auto style : {SyntheticStyle::uniform, SyntheticStyle::random_walk,
                           SyntheticStyle::sparse, SyntheticStyle::worst_case}) {
    SyntheticConfig cfg;
    cfg.style = style;
    cfg.cycles = 4000;
    cfg.load_rate = 1.0;
    cfg.seed = 5;
    cfg.n_bits = 128;
    const Trace t = generate_synthetic(cfg, "wide");
    EXPECT_EQ(t.n_bits, 128);
    bool high_active = false;
    for (const BusWord& w : t.words)
      if (w.lane(1) != 0) high_active = true;
    EXPECT_TRUE(high_active) << "style " << static_cast<int>(style);
  }
  SyntheticConfig cfg;
  cfg.n_bits = 0;
  EXPECT_THROW(generate_synthetic(cfg, "bad"), std::invalid_argument);
  cfg.n_bits = 129;
  EXPECT_THROW(generate_synthetic(cfg, "bad"), std::invalid_argument);
}

TEST(Synthetic, RandomWalkTogglesFewBitsPerStep) {
  SyntheticConfig cfg;
  cfg.style = SyntheticStyle::random_walk;
  cfg.cycles = 5000;
  cfg.load_rate = 1.0;
  cfg.activity = 0.1;  // at most ~3 flips per step
  const TraceStats s = compute_stats(generate_synthetic(cfg, "walk"));
  EXPECT_LT(s.toggle_rate, 0.12);
  EXPECT_GT(s.toggle_rate, 0.0);
}

// ---------------------------------------------------------------- io

TEST(TraceIo, BinaryRoundTripInMemory) {
  SyntheticConfig cfg;
  cfg.cycles = 3000;
  cfg.seed = 42;
  const Trace original = generate_synthetic(cfg, "roundtrip");
  std::stringstream buffer;
  save_binary(original, buffer);
  const auto loaded = load_binary(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->words, original.words);
}

TEST(TraceIo, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a trace");
  EXPECT_FALSE(load_binary(garbage).has_value());

  const Trace t{"x", {1, 2, 3, 4, 5}};
  std::stringstream buffer;
  save_binary(t, buffer);
  std::string data = buffer.str();
  data.resize(data.size() - 6);
  std::stringstream truncated(data);
  EXPECT_FALSE(load_binary(truncated).has_value());
}

TEST(TraceIo, CorruptWordCountRejectedWithoutGiantAllocation) {
  // Regression: a corrupt header could claim up to 2^33 words and trigger a
  // 32 GiB resize before the read failed. The claim is now bounded by the
  // bytes actually remaining in the stream, so this returns nullopt fast
  // instead of dying in the allocator.
  const Trace t{"victim", {1, 2, 3, 4, 5, 6, 7, 8}};
  std::stringstream buffer;
  save_binary(t, buffer);
  std::string data = buffer.str();

  // The word count is the 8 bytes right before the payload.
  const std::size_t count_offset =
      data.size() - t.words.size() * sizeof(std::uint32_t) - 8;
  const std::uint64_t huge = (1ull << 33) - 1;
  std::memcpy(&data[count_offset], &huge, sizeof(huge));

  std::stringstream corrupt(data);
  EXPECT_FALSE(load_binary(corrupt).has_value());

  // A merely-too-large claim (payload shorter than the count says) is
  // rejected the same way.
  const std::uint64_t plausible = t.words.size() + 1;
  std::memcpy(&data[count_offset], &plausible, sizeof(plausible));
  std::stringstream short_payload(data);
  EXPECT_FALSE(load_binary(short_payload).has_value());
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "./trace_io_test.rbtrace";
  const Trace t{"filetrip", {0xDEADBEEFu, 0, 42}};
  save_trace_file(t, path);
  const Trace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.name, "filetrip");
  EXPECT_EQ(loaded.words, t.words);
  std::filesystem::remove(path);
  EXPECT_THROW(load_trace_file(path), std::runtime_error);
}

TEST(TraceIo, CsvExportFormat) {
  const Trace t{"csv", {0x0000001u, 0xFFFFFFFFu}};
  std::ostringstream os;
  export_csv(t, os);
  EXPECT_EQ(os.str(), "cycle,word_hex\n0,00000001\n1,ffffffff\n");
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const Trace t{"empty", {}};
  std::stringstream buffer;
  save_binary(t, buffer);
  const auto loaded = load_binary(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->words.empty());
  EXPECT_EQ(loaded->name, "empty");
}

}  // namespace
}  // namespace razorbus::trace

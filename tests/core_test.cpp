#include <gtest/gtest.h>

#include <cmath>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "test_support.hpp"
#include "trace/synthetic.hpp"
#include "util/units.hpp"

namespace razorbus::core {
namespace {

using test_support::paper_system;

trace::Trace uniform_trace(std::size_t cycles, double load_rate = 0.4,
                           std::uint64_t seed = 7) {
  trace::SyntheticConfig cfg;
  cfg.style = trace::SyntheticStyle::uniform;
  cfg.cycles = cycles;
  cfg.load_rate = load_rate;
  cfg.seed = seed;
  return trace::generate_synthetic(cfg, "uniform");
}

// ---------------------------------------------------------------- system

TEST(System, SizedAndCharacterised) {
  const DvsBusSystem& sys = paper_system();
  EXPECT_GT(sys.design().repeater_size, 10.0);
  EXPECT_LT(sys.design().repeater_size, 400.0);
  EXPECT_FALSE(sys.table().empty());
}

TEST(System, WorstDelayAtSizingCornerIsThePaperTarget) {
  const double d = paper_system().nominal_worst_delay(tech::worst_case_corner());
  EXPECT_NEAR(to_ps(d), 600.0, 8.0);
}

TEST(System, NominalWorstDelaySpreadAcrossFig5Corners) {
  // Fig. 5 X axis: roughly 420-600 ps from fastest to slowest corner.
  double prev = 1.0;  // seconds; larger than any delay
  for (const auto& corner : tech::fig5_corners()) {
    const double d = paper_system().nominal_worst_delay(corner);
    EXPECT_LT(d, prev) << corner.name();  // strictly faster along the list
    prev = d;
  }
  EXPECT_NEAR(to_ps(paper_system().nominal_worst_delay(tech::fig5_corners()[0])), 600, 8);
  const double fastest =
      to_ps(paper_system().nominal_worst_delay(tech::fig5_corners()[4]));
  EXPECT_GT(fastest, 380);
  EXPECT_LT(fastest, 500);
}

TEST(System, FloorsOrderedByProcessSpeed) {
  const DvsBusSystem& sys = paper_system();
  EXPECT_GT(sys.dvs_floor(tech::ProcessCorner::slow),
            sys.dvs_floor(tech::ProcessCorner::typical));
  EXPECT_GT(sys.dvs_floor(tech::ProcessCorner::typical),
            sys.dvs_floor(tech::ProcessCorner::fast));
  EXPECT_GT(sys.fixed_vs_supply(tech::ProcessCorner::typical),
            sys.dvs_floor(tech::ProcessCorner::typical));
}

TEST(System, ShadowFloorBelowFixedVsForSameCorner) {
  const auto corner = tech::typical_corner();
  EXPECT_LT(paper_system().shadow_floor(corner),
            paper_system().fixed_vs_supply(corner.process));
}

// ---------------------------------------------------------------- sweep

class SweepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    traces_ = new std::vector<trace::Trace>{uniform_trace(40000)};
    sweep_ = new StaticSweepResult(
        static_voltage_sweep(paper_system(), tech::typical_corner(), *traces_));
  }
  static void TearDownTestSuite() {
    delete sweep_;
    delete traces_;
    sweep_ = nullptr;
    traces_ = nullptr;
  }
  static std::vector<trace::Trace>* traces_;
  static StaticSweepResult* sweep_;
};

std::vector<trace::Trace>* SweepTest::traces_ = nullptr;
StaticSweepResult* SweepTest::sweep_ = nullptr;

TEST_F(SweepTest, PointsAscendFromFloorToNominal) {
  ASSERT_FALSE(sweep_->points.empty());
  EXPECT_NEAR(sweep_->points.back().supply, 1.2, 1e-12);
  EXPECT_GE(sweep_->points.front().supply, sweep_->floor_supply - 1e-12);
  for (std::size_t i = 1; i < sweep_->points.size(); ++i)
    EXPECT_GT(sweep_->points[i].supply, sweep_->points[i - 1].supply);
}

TEST_F(SweepTest, ErrorRateDecreasesWithSupply) {
  for (std::size_t i = 1; i < sweep_->points.size(); ++i)
    EXPECT_LE(sweep_->points[i].error_rate, sweep_->points[i - 1].error_rate + 1e-12);
  EXPECT_DOUBLE_EQ(sweep_->points.back().error_rate, 0.0);  // nominal: error free
}

TEST_F(SweepTest, EnergyIncreasesWithSupply) {
  for (std::size_t i = 1; i < sweep_->points.size(); ++i)
    EXPECT_GT(sweep_->points[i].bus_energy, sweep_->points[i - 1].bus_energy);
}

TEST_F(SweepTest, NormalisationAnchorsAtNominal) {
  EXPECT_NEAR(sweep_->points.back().norm_bus_energy, 1.0, 1e-12);
  // Total (with recovery overhead) sits on or slightly above the bus-only
  // curve; strictly above once errors appear.
  for (const auto& p : sweep_->points) {
    EXPECT_GE(p.norm_total_energy, p.norm_bus_energy);
    if (p.error_rate > 0.0) {
      EXPECT_GT(p.norm_total_energy, p.norm_bus_energy);
    }
  }
}

TEST_F(SweepTest, LowestPointSavesSubstantialEnergy) {
  // Scaling from 1.2 V to the typical-corner floor (~0.74 V) saves > 40%.
  EXPECT_LT(sweep_->points.front().norm_bus_energy, 0.6);
}

TEST_F(SweepTest, GainsForTargetsMonotoneInTarget) {
  const auto gains = gains_for_targets(*sweep_, {0.0, 0.02, 0.05});
  ASSERT_EQ(gains.size(), 3u);
  EXPECT_LE(gains[0].energy_gain, gains[1].energy_gain + 1e-12);
  EXPECT_LE(gains[1].energy_gain, gains[2].energy_gain + 1e-12);
  EXPECT_LE(gains[0].achieved_error_rate, 0.0 + 1e-12);
  EXPECT_LE(gains[1].chosen_supply, 1.2);
  // At the typical corner, even 0%-error static scaling recovers the margin
  // (paper: gains of ~1/3 at the typical corner with no errors).
  EXPECT_GT(gains[0].energy_gain, 0.15);
}

TEST_F(SweepTest, GainsEmptySweepRejected) {
  StaticSweepResult empty;
  EXPECT_THROW(gains_for_targets(empty, {0.0}), std::invalid_argument);
}

// ---------------------------------------------------------------- oracle

TEST(OracleDistribution, FractionsSumToOneAndRespectTarget) {
  const VoltageDistribution d = oracle_voltage_distribution(
      paper_system(), tech::typical_corner(), uniform_trace(50000), 0.02);
  double total = 0.0;
  for (const auto& [v, f] : d.time_at_voltage) {
    EXPECT_GE(v, 0.6);
    EXPECT_LE(v, 1.25);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LE(d.achieved_error_rate, 0.02 + 1e-9);
  EXPECT_EQ(d.benchmark, "uniform");
}

// ---------------------------------------------------------------- closed loop

TEST(ClosedLoop, ConvergesToFloorOnIdleTraffic) {
  // Descending from nominal takes one 20 mV step per 10k-cycle window:
  // ~18 windows to the typical-corner floor, so run well past that.
  trace::Trace idle{"idle", std::vector<BusWord>(300000, BusWord())};
  DvsRunConfig cfg;
  cfg.record_series = true;
  const DvsRunReport r =
      run_closed_loop(paper_system(), tech::typical_corner(), idle, cfg);
  // No errors ever: every window steps down 20 mV until the floor.
  EXPECT_EQ(r.totals.errors, 0u);
  EXPECT_NEAR(r.floor_supply, paper_system().dvs_floor(tech::ProcessCorner::typical),
              1e-12);
  ASSERT_FALSE(r.series.empty());
  EXPECT_NEAR(r.series.back().supply, r.floor_supply, 1e-9);  // settled at the floor
  EXPECT_LT(r.average_supply, 1.05);  // average includes the descent
  EXPECT_GT(r.energy_gain(), 0.0);
}

TEST(ClosedLoop, ErrorRateStaysNearTargetBand) {
  const DvsRunReport r = run_closed_loop(paper_system(), tech::typical_corner(),
                                         uniform_trace(200000), DvsRunConfig{});
  EXPECT_LT(r.error_rate(), 0.03);  // average close to the 2% ceiling
  EXPECT_EQ(r.totals.shadow_failures, 0u);
  EXPECT_GT(r.energy_gain(), 0.0);
}

TEST(ClosedLoop, SeriesRecordedWhenRequested) {
  DvsRunConfig cfg;
  cfg.record_series = true;
  const DvsRunReport r = run_closed_loop(paper_system(), tech::typical_corner(),
                                         uniform_trace(50000), cfg);
  ASSERT_EQ(r.series.size(), 5u);  // one sample per 10k window
  for (const auto& s : r.series) {
    EXPECT_GE(s.supply, r.floor_supply - 1e-9);
    EXPECT_LE(s.supply, 1.2 + 1e-9);
    EXPECT_GE(s.error_rate, 0.0);
  }
  // Voltage descends over the first windows (starts at nominal).
  EXPECT_LT(r.series.back().supply, r.series.front().supply);
}

TEST(ClosedLoop, StartSupplyHonoured) {
  DvsRunConfig cfg;
  cfg.start_supply = 1.0;
  cfg.record_series = true;
  const DvsRunReport r = run_closed_loop(paper_system(), tech::typical_corner(),
                                         uniform_trace(20000), cfg);
  ASSERT_FALSE(r.series.empty());
  EXPECT_LE(r.series.front().supply, 1.0 + 1e-9);
}

TEST(ClosedLoop, VoltageNeverLeavesRegulatorRange) {
  DvsRunConfig cfg;
  cfg.record_series = true;
  cfg.timing_jitter_sigma = 4e-12;
  const DvsRunReport r = run_closed_loop(paper_system(), tech::worst_case_corner(),
                                         uniform_trace(150000, 0.6, 3), cfg);
  for (const auto& s : r.series) {
    EXPECT_GE(s.supply, r.floor_supply - 1e-9);
    EXPECT_LE(s.supply, 1.2 + 1e-9);
  }
  EXPECT_EQ(r.totals.shadow_failures, 0u);  // the floor keeps recovery safe
}

TEST(ClosedLoop, ConsecutiveRunsShareRegulatorState) {
  std::vector<trace::Trace> traces{uniform_trace(60000, 0.4, 1),
                                   uniform_trace(60000, 0.4, 2)};
  DvsRunConfig cfg;
  cfg.record_series = true;
  const ConsecutiveRunReport r =
      run_consecutive(paper_system(), tech::typical_corner(), traces, cfg);
  ASSERT_EQ(r.per_trace.size(), 2u);
  EXPECT_EQ(r.per_trace[0].totals.cycles, 60000u);
  EXPECT_EQ(r.per_trace[1].totals.cycles, 60000u);
  // The second trace starts at the first trace's settled voltage, not at
  // nominal: its average supply is lower than the first's (which paid the
  // descent transient).
  EXPECT_LT(r.per_trace[1].average_supply, r.per_trace[0].average_supply);
  EXPECT_EQ(r.series.size(), 12u);  // stitched windows across both traces
}

// ---------------------------------------------------------------- fixed VS

TEST(FixedVsRun, ErrorFreeAndGainsMatchSupplySquared) {
  const DvsRunReport r =
      run_fixed_vs(paper_system(), tech::typical_corner(), uniform_trace(30000));
  EXPECT_EQ(r.totals.errors, 0u);
  const double v = paper_system().fixed_vs_supply(tech::ProcessCorner::typical);
  EXPECT_DOUBLE_EQ(r.average_supply, v);
  // Dynamic energy ~ V^2: the gain should be near 1 - (v/1.2)^2.
  const double expected = 1.0 - (v * v) / (1.2 * 1.2);
  EXPECT_NEAR(r.energy_gain(), expected, 0.05);
}

TEST(FixedVsRun, SlowProcessGainsAreZero) {
  tech::PvtCorner worst = tech::worst_case_corner();
  const DvsRunReport r = run_fixed_vs(paper_system(), worst, uniform_trace(20000));
  EXPECT_DOUBLE_EQ(r.average_supply, 1.2);
  EXPECT_NEAR(r.energy_gain(), 0.0, 1e-9);
  EXPECT_EQ(r.totals.errors, 0u);
}

TEST(FixedVsRun, DvsBeatsFixedVsAtTheTypicalCorner) {
  const trace::Trace t = uniform_trace(200000, 0.3, 11);
  const DvsRunReport fixed = run_fixed_vs(paper_system(), tech::typical_corner(), t);
  const DvsRunReport dvs =
      run_closed_loop(paper_system(), tech::typical_corner(), t, DvsRunConfig{});
  EXPECT_GT(dvs.energy_gain(), fixed.energy_gain());
}

}  // namespace
}  // namespace razorbus::core

#include <gtest/gtest.h>

#include <cmath>

#include "spice/netlist.hpp"
#include "spice/solver.hpp"
#include "spice/transient.hpp"
#include "util/units.hpp"

namespace razorbus::spice {
namespace {

// ---------------------------------------------------------------- solver

TEST(DenseMatrix, StoresAndClears) {
  DenseMatrix m(3);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 0.0);
  m.clear();
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(Lu, SolvesIdentity) {
  DenseMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) m.at(i, i) = 1.0;
  const LuFactorization lu(m);
  const auto x = lu.solve({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Lu, SolvesKnown2x2) {
  DenseMatrix m(2);
  m.at(0, 0) = 2.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 3.0;
  const LuFactorization lu(m);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotsRowsWhenDiagonalIsZero) {
  DenseMatrix m(2);
  m.at(0, 0) = 0.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 0.0;
  const LuFactorization lu(m);  // needs pivoting
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  DenseMatrix m(2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 2.0;
  m.at(1, 1) = 4.0;
  EXPECT_THROW(LuFactorization{m}, std::runtime_error);
}

TEST(Lu, SolveDimensionMismatchThrows) {
  DenseMatrix m(2);
  m.at(0, 0) = m.at(1, 1) = 1.0;
  const LuFactorization lu(m);
  std::vector<double> wrong{1.0};
  EXPECT_THROW(lu.solve_in_place(wrong), std::invalid_argument);
}

TEST(Lu, LargerRandomSystemRoundTrip) {
  // A strictly diagonally dominant random system has a stable solution:
  // verify A * x == b after solving.
  const std::size_t n = 24;
  DenseMatrix m(n);
  std::vector<double> b(n);
  unsigned state = 12345;
  auto rnd = [&state] {
    state = state * 1103515245u + 12345u;
    return static_cast<double>((state >> 16) & 0x7fff) / 32768.0;
  };
  for (std::size_t r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      m.at(r, c) = rnd() - 0.5;
      row_sum += std::abs(m.at(r, c));
    }
    m.at(r, r) = row_sum + 1.0;
    b[r] = rnd() * 10.0;
  }
  const LuFactorization lu(m);
  const auto x = lu.solve(b);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < n; ++c) acc += m.at(r, c) * x[c];
    EXPECT_NEAR(acc, b[r], 1e-9);
  }
}

// ---------------------------------------------------------------- netlist

TEST(Circuit, ValidatesElementNodes) {
  Circuit c;
  const NodeId a = c.add_node("a");
  EXPECT_THROW(c.add_resistor(a, 57, 100.0), std::invalid_argument);
  EXPECT_THROW(c.add_resistor(a, a, -5.0), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor(a, 57, 1e-15), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor(a, a, 0.0), std::invalid_argument);
}

TEST(Circuit, DriverValidation) {
  Circuit c;
  const NodeId out = c.add_node("out");
  const NodeId rail = c.add_fixed_node("vdd", 1.2);

  Driver bad_rail;
  bad_rail.out = out;
  bad_rail.vdd_rail = out;  // not fixed
  bad_rail.r_up = bad_rail.r_dn = 100.0;
  c.add_driver(bad_rail);
  EXPECT_THROW(c.validate(), std::invalid_argument);

  Circuit c2;
  const NodeId out2 = c2.add_node("out");
  const NodeId rail2 = c2.add_fixed_node("vdd", 1.2);
  Driver good;
  good.out = out2;
  good.vdd_rail = rail2;
  good.r_up = good.r_dn = 100.0;
  c2.add_driver(good);
  EXPECT_NO_THROW(c2.validate());
  (void)rail;
}

TEST(Circuit, DriverRejectsNonPositiveResistance) {
  Circuit c;
  const NodeId out = c.add_node("out");
  const NodeId rail = c.add_fixed_node("vdd", 1.2);
  Driver d;
  d.out = out;
  d.vdd_rail = rail;
  d.r_up = 0.0;
  d.r_dn = 100.0;
  EXPECT_THROW(c.add_driver(d), std::invalid_argument);
}

TEST(Circuit, UnsortedScheduleRejected) {
  Circuit c;
  const NodeId out = c.add_node("out");
  const NodeId rail = c.add_fixed_node("vdd", 1.2);
  Driver d;
  d.out = out;
  d.vdd_rail = rail;
  d.r_up = d.r_dn = 100.0;
  d.schedule = {{2e-9, true}, {1e-9, false}};
  c.add_driver(d);
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------- transient

// RC charging step: driver pulls a single capacitor up through R.
// Analytic: v(t) = V (1 - exp(-t/RC)); 50% crossing at t = RC ln 2.
TEST(Transient, RcStepResponseMatchesAnalytic) {
  constexpr double kR = 1000.0;     // ohm
  constexpr double kC = 100e-15;    // F
  constexpr double kV = 1.2;
  constexpr double kTau = kR * kC;  // 100 ps

  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", kV);
  const NodeId out = c.add_node("out");
  c.add_capacitor(out, c.add_fixed_node("gnd", 0.0), kC);
  Driver d;
  d.out = out;
  d.vdd_rail = rail;
  d.r_up = d.r_dn = kR;
  d.initial_up = false;
  d.schedule = {{100e-12, true}};
  c.add_driver(d);

  TransientConfig cfg;
  cfg.t_stop = 1.2e-9;
  cfg.dt = 0.25e-12;
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();

  const auto cross = result.last_rise_crossing(out);
  ASSERT_TRUE(cross.has_value());
  EXPECT_NEAR(*cross - 100e-12, kTau * std::log(2.0), 2e-12);
  // Fully settled at the end.
  EXPECT_NEAR(result.final_voltage(out), kV, 0.001);
}

// Energy drawn from the rail to charge C to V is exactly C V^2 (half stored,
// half dissipated) for a step charge through a resistor.
TEST(Transient, RailEnergyIsCVSquared) {
  constexpr double kC = 200e-15;
  constexpr double kV = 1.0;
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", kV);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId out = c.add_node("out");
  c.add_capacitor(out, gnd, kC);
  Driver d;
  d.out = out;
  d.vdd_rail = rail;
  d.r_up = d.r_dn = 500.0;
  d.initial_up = false;
  d.schedule = {{50e-12, true}};
  c.add_driver(d);

  TransientConfig cfg;
  cfg.t_stop = 1.5e-9;
  cfg.dt = 0.25e-12;
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();
  EXPECT_NEAR(result.rail_energy(), kC * kV * kV, 0.02 * kC * kV * kV);
}

// A discharging driver (pull-down) draws no rail energy.
TEST(Transient, DischargeDrawsNoRailEnergy) {
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", 1.2);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId out = c.add_node("out");
  c.add_capacitor(out, gnd, 100e-15);
  Driver d;
  d.out = out;
  d.vdd_rail = rail;
  d.r_up = d.r_dn = 500.0;
  d.initial_up = true;
  d.schedule = {{50e-12, false}};
  c.add_driver(d);

  TransientConfig cfg;
  cfg.t_stop = 1e-9;
  cfg.dt = 0.5e-12;
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();
  // Only the (tiny) settling current before the event counts.
  EXPECT_LT(result.rail_energy(), 1e-18);
  EXPECT_TRUE(result.last_fall_crossing(out).has_value());
}

// Two cascaded inverters: the second switches only after the first's output
// crosses threshold, so the total delay is about twice the single-stage one.
TEST(Transient, InverterChainPropagates) {
  constexpr double kR = 1000.0;
  constexpr double kC = 100e-15;
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", 1.2);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId n1 = c.add_node("n1");
  const NodeId n2 = c.add_node("n2");
  c.add_capacitor(n1, gnd, kC);
  c.add_capacitor(n2, gnd, kC);

  Driver first;
  first.out = n1;
  first.vdd_rail = rail;
  first.r_up = first.r_dn = kR;
  first.initial_up = false;
  first.schedule = {{100e-12, true}};
  c.add_driver(first);

  Driver second;  // inverter: n2 = NOT(n1)
  second.out = n2;
  second.vdd_rail = rail;
  second.r_up = second.r_dn = kR;
  second.initial_up = true;  // n1 starts low -> n2 high
  second.in = n1;
  c.add_driver(second);

  TransientConfig cfg;
  cfg.t_stop = 2e-9;
  cfg.dt = 0.25e-12;
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();

  const auto rise1 = result.last_rise_crossing(n1);
  const auto fall2 = result.last_fall_crossing(n2);
  ASSERT_TRUE(rise1.has_value());
  ASSERT_TRUE(fall2.has_value());
  EXPECT_GT(*fall2, *rise1);  // second stage lags the first
  const double tau_ln2 = kR * kC * std::log(2.0);
  EXPECT_NEAR(*fall2 - *rise1, tau_ln2, 0.35 * tau_ln2);
  EXPECT_NEAR(result.final_voltage(n2), 0.0, 0.01);
}

// Capacitive coupling: a quiet floating victim capacitively tied to a
// switching aggressor bounces, then is restored by its holding driver.
TEST(Transient, CouplingInjectsGlitchThatDecays) {
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", 1.0);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId victim = c.add_node("victim");
  const NodeId aggressor = c.add_node("aggressor");
  c.add_capacitor(victim, gnd, 50e-15);
  c.add_capacitor(aggressor, gnd, 50e-15);
  c.add_capacitor(victim, aggressor, 100e-15);  // strong coupling

  Driver hold;  // victim held low
  hold.out = victim;
  hold.vdd_rail = rail;
  hold.r_up = hold.r_dn = 2000.0;
  hold.initial_up = false;
  c.add_driver(hold);

  Driver attack;
  attack.out = aggressor;
  attack.vdd_rail = rail;
  attack.r_up = attack.r_dn = 500.0;
  attack.initial_up = false;
  attack.schedule = {{100e-12, true}};
  c.add_driver(attack);

  TransientConfig cfg;
  cfg.t_stop = 2e-9;
  cfg.dt = 0.25e-12;
  cfg.record = {victim};
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();

  double peak = 0.0;
  for (const double v : result.waveform(victim)) peak = std::max(peak, v);
  EXPECT_GT(peak, 0.1);                              // visible glitch
  EXPECT_LT(peak, 1.0);                              // bounded by the rail
  EXPECT_NEAR(result.final_voltage(victim), 0.0, 0.01);  // restored
}

TEST(Transient, DcOperatingPointRespectsInitialDriverStates) {
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", 1.2);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId hi = c.add_node("hi");
  const NodeId lo = c.add_node("lo");
  c.add_capacitor(hi, gnd, 10e-15);
  c.add_capacitor(lo, gnd, 10e-15);
  Driver up;
  up.out = hi;
  up.vdd_rail = rail;
  up.r_up = up.r_dn = 100.0;
  up.initial_up = true;
  c.add_driver(up);
  Driver down;
  down.out = lo;
  down.vdd_rail = rail;
  down.r_up = down.r_dn = 100.0;
  down.initial_up = false;
  c.add_driver(down);

  TransientConfig cfg;
  cfg.t_stop = 100e-12;
  cfg.dt = 1e-12;
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();
  EXPECT_NEAR(result.final_voltage(hi), 1.2, 1e-6);
  EXPECT_NEAR(result.final_voltage(lo), 0.0, 1e-6);
}

TEST(Transient, RejectsBadConfig) {
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", 1.2);
  (void)rail;
  c.add_node("a");
  TransientConfig bad;
  bad.dt = 0.0;
  EXPECT_THROW(TransientSimulator(c, bad), std::invalid_argument);
}

TEST(Transient, ThrowsWithoutUnknownNodes) {
  Circuit c;
  c.add_fixed_node("vdd", 1.2);
  TransientConfig cfg;
  EXPECT_THROW(TransientSimulator(c, cfg), std::invalid_argument);
}

TEST(Transient, WaveformRequestedNodeOnly) {
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", 1.2);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId a = c.add_node("a");
  const NodeId b = c.add_node("b");
  c.add_capacitor(a, gnd, 1e-15);
  c.add_capacitor(b, gnd, 1e-15);
  c.add_resistor(a, b, 100.0);
  Driver d;
  d.out = a;
  d.vdd_rail = rail;
  d.r_up = d.r_dn = 100.0;
  d.initial_up = true;
  c.add_driver(d);

  TransientConfig cfg;
  cfg.t_stop = 50e-12;
  cfg.dt = 1e-12;
  cfg.record = {a};
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();
  EXPECT_EQ(result.waveform(a).size(), result.times().size());
  EXPECT_THROW(result.waveform(b), std::out_of_range);
}

// Trapezoidal integration: second-order accurate, so at a coarse timestep
// its delay error against the analytic RC answer must be clearly smaller
// than backward Euler's.
TEST(Transient, TrapezoidalBeatsBackwardEulerAtCoarseStep) {
  constexpr double kR = 1000.0;
  constexpr double kC = 100e-15;
  constexpr double kTau = kR * kC;
  const double exact = kTau * std::log(2.0);

  auto delay_with = [&](Integrator integrator, double dt) {
    Circuit c;
    const NodeId rail = c.add_fixed_node("vdd", 1.0);
    const NodeId gnd = c.add_fixed_node("gnd", 0.0);
    const NodeId out = c.add_node("out");
    c.add_capacitor(out, gnd, kC);
    Driver d;
    d.out = out;
    d.vdd_rail = rail;
    d.r_up = d.r_dn = kR;
    d.initial_up = false;
    d.schedule = {{100e-12, true}};
    c.add_driver(d);
    TransientConfig cfg;
    cfg.t_stop = 1.5e-9;
    cfg.dt = dt;
    cfg.integrator = integrator;
    TransientSimulator sim(c, cfg);
    const auto cross = sim.run().last_rise_crossing(out);
    EXPECT_TRUE(cross.has_value());
    return *cross - 100e-12;
  };

  const double dt = 4e-12;  // tau / 25: coarse
  const double err_be = std::abs(delay_with(Integrator::backward_euler, dt) - exact);
  const double err_tr = std::abs(delay_with(Integrator::trapezoidal, dt) - exact);
  EXPECT_LT(err_tr, 0.5 * err_be);
  // And at a fine step both are close to exact.
  const double fine_tr = delay_with(Integrator::trapezoidal, 0.25e-12);
  EXPECT_NEAR(fine_tr, exact, 1.5e-12);
}

TEST(Transient, TrapezoidalEnergyStillCVSquared) {
  constexpr double kC = 200e-15;
  constexpr double kV = 1.0;
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", kV);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId out = c.add_node("out");
  c.add_capacitor(out, gnd, kC);
  Driver d;
  d.out = out;
  d.vdd_rail = rail;
  d.r_up = d.r_dn = 500.0;
  d.initial_up = false;
  d.schedule = {{50e-12, true}};
  c.add_driver(d);

  TransientConfig cfg;
  cfg.t_stop = 1.5e-9;
  cfg.dt = 1e-12;
  cfg.integrator = Integrator::trapezoidal;
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();
  EXPECT_NEAR(result.rail_energy(), kC * kV * kV, 0.02 * kC * kV * kV);
}

TEST(Transient, IntegratorsAgreeOnInverterChain) {
  auto final_state = [&](Integrator integrator) {
    Circuit c;
    const NodeId rail = c.add_fixed_node("vdd", 1.2);
    const NodeId gnd = c.add_fixed_node("gnd", 0.0);
    const NodeId n1 = c.add_node("n1");
    const NodeId n2 = c.add_node("n2");
    c.add_capacitor(n1, gnd, 100e-15);
    c.add_capacitor(n2, gnd, 100e-15);
    Driver first;
    first.out = n1;
    first.vdd_rail = rail;
    first.r_up = first.r_dn = 1000.0;
    first.initial_up = false;
    first.schedule = {{100e-12, true}};
    c.add_driver(first);
    Driver second;
    second.out = n2;
    second.vdd_rail = rail;
    second.r_up = second.r_dn = 1000.0;
    second.initial_up = true;
    second.in = n1;
    c.add_driver(second);
    TransientConfig cfg;
    cfg.t_stop = 2e-9;
    cfg.dt = 1e-12;
    cfg.integrator = integrator;
    TransientSimulator sim(c, cfg);
    const TransientResult r = sim.run();
    return std::pair<double, double>(r.final_voltage(n2),
                                     r.last_fall_crossing(n2).value_or(-1.0));
  };
  const auto [v_be, t_be] = final_state(Integrator::backward_euler);
  const auto [v_tr, t_tr] = final_state(Integrator::trapezoidal);
  EXPECT_NEAR(v_be, v_tr, 0.02);
  EXPECT_NEAR(t_be, t_tr, 5e-12);
}

// Crossing counters: a driver toggling twice produces one rise + one fall.
TEST(Transient, CrossingCountsTrackToggles) {
  Circuit c;
  const NodeId rail = c.add_fixed_node("vdd", 1.0);
  const NodeId gnd = c.add_fixed_node("gnd", 0.0);
  const NodeId out = c.add_node("out");
  c.add_capacitor(out, gnd, 20e-15);
  Driver d;
  d.out = out;
  d.vdd_rail = rail;
  d.r_up = d.r_dn = 200.0;
  d.initial_up = false;
  d.schedule = {{50e-12, true}, {500e-12, false}};
  c.add_driver(d);

  TransientConfig cfg;
  cfg.t_stop = 1e-9;
  cfg.dt = 0.5e-12;
  TransientSimulator sim(c, cfg);
  const TransientResult result = sim.run();
  EXPECT_EQ(result.rise_count(out), 1);
  EXPECT_EQ(result.fall_count(out), 1);
  ASSERT_TRUE(result.last_fall_crossing(out).has_value());
  EXPECT_GT(*result.last_fall_crossing(out), *result.last_rise_crossing(out));
}

}  // namespace
}  // namespace razorbus::spice

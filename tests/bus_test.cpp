#include <gtest/gtest.h>

#include <cmath>

#include "bus/businvert.hpp"
#include "bus/classify.hpp"
#include "bus/simulator.hpp"
#include "test_support.hpp"
#include "trace/synthetic.hpp"
#include "util/units.hpp"

namespace razorbus::bus {
namespace {

using lut::NeighborActivity;
using lut::PatternClass;
using lut::VictimActivity;
using test_support::small_system;

// ---------------------------------------------------------------- classify

TEST(Classify, EdgeWiresSeeShields) {
  const WireClassifier classifier(small_system().design());
  // Bit 0: left is a shield; transition 0 -> 1 with bit 1 falling.
  const std::uint32_t prev = 0b010;
  const std::uint32_t cur = 0b001;
  const int cls = classifier.classify(prev, cur, 0);
  EXPECT_EQ(PatternClass::victim_of(cls), VictimActivity::rise);
  EXPECT_EQ(PatternClass::left_of(cls), NeighborActivity::shield);
  EXPECT_EQ(PatternClass::right_of(cls), NeighborActivity::fall);
}

TEST(Classify, GroupBoundaryShields) {
  const WireClassifier classifier(small_system().design());
  // Bit 3 is the last of its shield group: right neighbor is a shield.
  const int cls = classifier.classify(0x0, 0x8, 3);
  EXPECT_EQ(PatternClass::victim_of(cls), VictimActivity::rise);
  EXPECT_EQ(PatternClass::right_of(cls), NeighborActivity::shield);
  // Bit 4 starts the next group: left neighbor is a shield.
  const int cls4 = classifier.classify(0x0, 0x10, 4);
  EXPECT_EQ(PatternClass::left_of(cls4), NeighborActivity::shield);
}

TEST(Classify, InteriorWireSeesBothNeighbors) {
  const WireClassifier classifier(small_system().design());
  // Bit 1 rises while bit 0 falls and bit 2 rises.
  const std::uint32_t prev = 0b001;
  const std::uint32_t cur = 0b110;
  const int cls = classifier.classify(prev, cur, 1);
  EXPECT_EQ(PatternClass::victim_of(cls), VictimActivity::rise);
  EXPECT_EQ(PatternClass::left_of(cls), NeighborActivity::fall);
  EXPECT_EQ(PatternClass::right_of(cls), NeighborActivity::rise);
}

TEST(Classify, HoldStates) {
  const WireClassifier classifier(small_system().design());
  const int low = classifier.classify(0x0, 0x0, 1);
  EXPECT_EQ(PatternClass::victim_of(low), VictimActivity::hold_low);
  const int high = classifier.classify(0x2, 0x2, 1);
  EXPECT_EQ(PatternClass::victim_of(high), VictimActivity::hold_high);
}

TEST(Classify, ClassifyAllMatchesPerBit) {
  const WireClassifier classifier(small_system().design());
  const std::uint32_t prev = 0xDEADBEEF;
  const std::uint32_t cur = 0x12345678;
  int all[32];
  classifier.classify_all(prev, cur, all);
  for (int bit = 0; bit < 32; ++bit)
    EXPECT_EQ(all[bit], classifier.classify(prev, cur, bit)) << "bit " << bit;
}

// ---------------------------------------------------------------- simulator

class BusSimTest : public ::testing::Test {
 protected:
  // Slow corner at 100C with no IR drop: inside the small LUT's axes.
  tech::PvtCorner env_{tech::ProcessCorner::slow, 100.0, 0.0};
};

TEST_F(BusSimTest, NominalSupplyIsErrorFreeOnWorstCaseData) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.2);
  // Alternating checkerboard: every wire switches against both neighbors.
  for (int i = 0; i < 200; ++i) sim.step(i % 2 ? 0x55555555u : 0xAAAAAAAAu);
  EXPECT_EQ(sim.totals().errors, 0u);
  EXPECT_EQ(sim.totals().shadow_failures, 0u);
  EXPECT_EQ(sim.totals().cycles, 200u);
}

TEST_F(BusSimTest, ReducedSupplyProducesErrorsOnWorstCaseData) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.06);  // well below the sizing point at the slow corner
  std::uint64_t errors = 0;
  for (int i = 0; i < 200; ++i)
    if (sim.step(i % 2 ? 0x55555555u : 0xAAAAAAAAu).error) ++errors;
  EXPECT_GT(errors, 150u);  // nearly every switching cycle errs
  EXPECT_EQ(sim.totals().shadow_failures, 0u);  // but all are recoverable
}

TEST_F(BusSimTest, IdleBusNeverErrs) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.06);
  sim.step(0xFFFFFFFFu);  // first transition at low V may err
  const auto errors_before = sim.totals().errors;
  for (int i = 0; i < 100; ++i) {
    const CycleResult r = sim.step(0xFFFFFFFFu);
    EXPECT_FALSE(r.error);
    EXPECT_DOUBLE_EQ(r.worst_delay, 0.0);
  }
  EXPECT_EQ(sim.totals().errors, errors_before);
}

TEST_F(BusSimTest, IdleCyclesBurnOnlyLeakageAndOverhead) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.2);
  sim.step(0);  // no transition from the reset word
  const CycleResult idle = sim.step(0);
  EXPECT_GT(idle.bus_energy, 0.0);
  EXPECT_GE(idle.overhead_energy, 0.0);  // zero with the default (recovery-only) model
  // Leakage only: far below a switching cycle's energy.
  const CycleResult busy = sim.step(0xFFFFFFFFu);
  EXPECT_LT(idle.bus_energy, 0.05 * busy.bus_energy);
}

TEST_F(BusSimTest, SwitchingEnergyScalesWithActivity) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.2);
  sim.step(0);
  const double one_bit = sim.step(0x1u).bus_energy;
  sim.reset(0);
  sim.set_supply(1.2);
  const double many_bits = sim.step(0xFFFFu).bus_energy;
  EXPECT_GT(many_bits, 8.0 * one_bit);
}

TEST_F(BusSimTest, EnergyDropsWithSupply) {
  auto energy_at = [&](double v) {
    BusSimulator sim = small_system().make_simulator(env_);
    sim.set_supply(v);
    sim.step(0);
    double total = 0.0;
    for (int i = 1; i < 64; ++i)
      total += sim.step(0x0F0F0F0Fu ^ (i % 2 ? 0u : ~0u)).bus_energy;
    return total;
  };
  const double hi = energy_at(1.20);
  const double lo = energy_at(1.08);
  EXPECT_LT(lo, hi);
  EXPECT_NEAR(lo / hi, (1.08 * 1.08) / (1.2 * 1.2), 0.08);  // ~quadratic
}

TEST_F(BusSimTest, ErrorCycleAddsRecoveryOverhead) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.2);
  sim.step(0);
  const double clean_overhead = sim.step(0x55555555u).overhead_energy;

  sim.reset(0);
  sim.set_supply(1.06);
  sim.step(0x55555555u);
  const CycleResult err = sim.step(0xAAAAAAAAu);
  ASSERT_TRUE(err.error);
  EXPECT_GT(err.overhead_energy, clean_overhead);
}

TEST_F(BusSimTest, IrDropSlowsTheBus) {
  // Same supply: a 10% droop at the drivers must push delays up.
  tech::PvtCorner droop = env_;
  droop.ir_drop_fraction = 0.10;
  BusSimulator dry = small_system().make_simulator(env_);
  BusSimulator wet = small_system().make_simulator(droop);
  dry.set_supply(1.2);
  wet.set_supply(1.2);
  dry.step(0);
  wet.step(0);
  const double d_dry = dry.step(0x55555555u).worst_delay;
  const double d_wet = wet.step(0x55555555u).worst_delay;
  EXPECT_GT(d_wet, d_dry * 1.03);
}

TEST_F(BusSimTest, WorstDelayMatchesTableWorstClassPresent) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.14);
  sim.step(0);
  const CycleResult r = sim.step(0x55555555u);
  // The cycle's worst delay must equal the max table delay over exactly the
  // classes present on the 32 wires.
  const WireClassifier classifier(small_system().design());
  double expect = 0.0;
  for (int bit = 0; bit < 32; ++bit) {
    const int cls = classifier.classify(0u, 0x55555555u, bit);
    const double d =
        small_system().table().delay(cls, env_.process, env_.temp_c, 1.14);
    if (!std::isnan(d)) expect = std::max(expect, d);
  }
  EXPECT_NEAR(r.worst_delay, expect, 1e-15);
}

TEST_F(BusSimTest, ResetClearsTotalsAndState) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.06);
  for (int i = 0; i < 50; ++i) sim.step(i % 2 ? 0x55555555u : 0xAAAAAAAAu);
  EXPECT_GT(sim.totals().cycles, 0u);
  sim.reset(0);
  EXPECT_EQ(sim.totals().cycles, 0u);
  EXPECT_EQ(sim.totals().errors, 0u);
  EXPECT_DOUBLE_EQ(sim.totals().bus_energy, 0.0);
}

TEST_F(BusSimTest, PeekDoesNotMutate) {
  BusSimulator sim = small_system().make_simulator(env_);
  sim.set_supply(1.2);
  sim.step(0x1234u);
  const auto totals_before = sim.totals().cycles;
  const double peek1 = sim.peek_cycle_energy(0xFFFFu);
  const double peek2 = sim.peek_cycle_energy(0xFFFFu);
  EXPECT_DOUBLE_EQ(peek1, peek2);
  EXPECT_EQ(sim.totals().cycles, totals_before);
  // Stepping the same word matches the peek.
  const CycleResult r = sim.step(0xFFFFu);
  EXPECT_NEAR(r.bus_energy, peek1, 1e-20);
}

TEST_F(BusSimTest, JitterChangesErrorPatternDeterministically) {
  auto run = [&](double sigma, std::uint64_t seed) {
    BusSimulator sim = small_system().make_simulator(env_);
    sim.set_timing_jitter(sigma, seed);
    sim.set_supply(1.10);  // worst-pattern delay sits right at the limit here
    std::uint64_t errors = 0;
    for (int i = 0; i < 2000; ++i)
      if (sim.step(i % 2 ? 0x55555555u : 0xAAAAAAAAu).error) ++errors;
    return errors;
  };
  // Deterministic for a fixed seed.
  EXPECT_EQ(run(5e-12, 1), run(5e-12, 1));
  // At 1.10 V / slow corner the worst pattern is marginal: jitter flips some
  // cycles relative to the jitter-free run.
  EXPECT_NE(run(5e-12, 1), run(0.0, 1));
}

TEST_F(BusSimTest, NegativeJitterSigmaRejected) {
  BusSimulator sim = small_system().make_simulator(env_);
  EXPECT_THROW(sim.set_timing_jitter(-1e-12), std::invalid_argument);
}

TEST_F(BusSimTest, RunReferenceUsesNominalSupply) {
  std::vector<std::uint32_t> words;
  for (int i = 0; i < 100; ++i) words.push_back(i % 2 ? 0x0Fu : 0xF0u);
  const RunningTotals ref = BusSimulator::run_reference(
      small_system().design(), small_system().table(), env_, words);
  EXPECT_EQ(ref.cycles, 100u);
  EXPECT_EQ(ref.errors, 0u);  // nominal supply at a non-worst corner
  EXPECT_GT(ref.bus_energy, 0.0);
}

TEST_F(BusSimTest, SupplyValidation) {
  BusSimulator sim = small_system().make_simulator(env_);
  EXPECT_THROW(sim.set_supply(0.0), std::invalid_argument);
  EXPECT_THROW(sim.set_supply(-1.0), std::invalid_argument);
}

TEST(BusSimConstruction, UnsizedDesignRejected) {
  interconnect::BusDesign unsized = interconnect::BusDesign::paper_bus();
  EXPECT_THROW(
      BusSimulator(unsized, small_system().table(),
                   tech::PvtCorner{tech::ProcessCorner::typical, 100.0, 0.0}),
      std::invalid_argument);
}

// Property sweep: for any random word sequence, totals are consistent and
// no energy is ever negative.
class BusInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusInvariantSweep, TotalsConsistentOnRandomTraffic) {
  Rng rng(GetParam());
  BusSimulator sim = small_system().make_simulator(
      tech::PvtCorner{tech::ProcessCorner::slow, 100.0, 0.0});
  sim.set_supply(1.08);
  std::uint64_t errors = 0;
  double bus_energy = 0.0;
  for (int i = 0; i < 500; ++i) {
    const CycleResult r =
        sim.step(rng.bernoulli(0.4) ? static_cast<std::uint32_t>(rng.next_u64()) : 0u);
    EXPECT_GE(r.bus_energy, 0.0);
    EXPECT_GE(r.overhead_energy, 0.0);
    EXPECT_GE(r.worst_delay, 0.0);
    if (r.error) ++errors;
    bus_energy += r.bus_energy;
  }
  EXPECT_EQ(sim.totals().cycles, 500u);
  EXPECT_EQ(sim.totals().errors, errors);
  EXPECT_NEAR(sim.totals().bus_energy, bus_energy, 1e-18);
  EXPECT_EQ(sim.totals().shadow_failures, 0u);  // 1.08 V is shadow-safe here
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusInvariantSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------- bus-invert

trace::Trace random_trace(std::size_t cycles, std::uint64_t seed) {
  trace::SyntheticConfig cfg;
  cfg.style = trace::SyntheticStyle::uniform;
  cfg.cycles = cycles;
  cfg.load_rate = 1.0;
  cfg.seed = seed;
  return trace::generate_synthetic(cfg, "random");
}

TEST(BusInvert, DecodeInvertsEncode) {
  const trace::Trace raw = random_trace(5000, 3);
  const BusInvertResult enc = bus_invert_encode(raw);
  const trace::Trace decoded = bus_invert_decode(enc.encoded, enc.invert_line);
  EXPECT_EQ(decoded.words, raw.words);
}

TEST(BusInvert, NeverTogglesMoreThanHalfPlusLine) {
  const trace::Trace raw = random_trace(5000, 5);
  const BusInvertResult enc = bus_invert_encode(raw);
  std::uint32_t prev = 0;
  bool prev_line = false;
  for (std::size_t i = 0; i < enc.encoded.words.size(); ++i) {
    const int toggles = __builtin_popcount(prev ^ enc.encoded.words[i]) +
                        (prev_line != static_cast<bool>(enc.invert_line[i]) ? 1 : 0);
    EXPECT_LE(toggles, 17);  // n/2 + 1 for n = 32
    prev = enc.encoded.words[i];
    prev_line = enc.invert_line[i];
  }
}

TEST(BusInvert, ReducesTotalTogglesOnRandomData) {
  const trace::Trace raw = random_trace(20000, 7);
  const BusInvertResult enc = bus_invert_encode(raw);
  const std::uint64_t coded =
      total_toggles(enc.encoded) + invert_line_toggles(enc.invert_line);
  EXPECT_LT(coded, total_toggles(raw));
  EXPECT_GT(enc.inversions, 0u);
}

TEST(BusInvert, QuietTraceNeedsNoInversions) {
  trace::Trace quiet{"quiet", std::vector<BusWord>(1000, BusWord(0x1u))};
  const BusInvertResult enc = bus_invert_encode(quiet);
  EXPECT_EQ(enc.inversions, 0u);
  EXPECT_EQ(enc.encoded.words, quiet.words);
}

TEST(BusInvert, WorstCaseCheckerboardIsNeutralised) {
  trace::Trace hostile{"hostile", {}};
  for (int i = 0; i < 1000; ++i)
    hostile.words.push_back(i % 2 ? 0xFFFFFFFFu : 0x00000000u);  // 32 toggles/cycle
  const BusInvertResult enc = bus_invert_encode(hostile);
  // All-bit flips become invert-line flips only.
  EXPECT_EQ(total_toggles(enc.encoded), 0u);
  EXPECT_GT(enc.inversions, 900u);
}

TEST(BusInvert, EmptyTrace) {
  const BusInvertResult enc = bus_invert_encode(trace::Trace{"e", {}});
  EXPECT_TRUE(enc.encoded.words.empty());
  EXPECT_EQ(enc.inversions, 0u);
}

// ------------------------------------------- bus-invert at non-32 widths

trace::Trace random_wide_trace(int n_bits, std::size_t cycles, std::uint64_t seed) {
  trace::SyntheticConfig cfg;
  cfg.style = trace::SyntheticStyle::uniform;
  cfg.cycles = cycles;
  cfg.load_rate = 1.0;
  cfg.seed = seed;
  cfg.n_bits = n_bits;
  return trace::generate_synthetic(cfg, "random" + std::to_string(n_bits));
}

TEST(BusInvertWidth, RoundTripDecodesAt16And64And128) {
  for (const int width : {16, 64, 128}) {
    const trace::Trace raw = random_wide_trace(width, 4000, 11 + width);
    const BusInvertResult enc = bus_invert_encode(raw);
    EXPECT_EQ(enc.encoded.n_bits, width);
    const trace::Trace decoded = bus_invert_decode(enc.encoded, enc.invert_line);
    EXPECT_EQ(decoded.n_bits, width);
    EXPECT_EQ(decoded.words, raw.words) << "width " << width;
    // Encoded words never exceed the payload width.
    const BusWord mask = BusWord::mask_low(width);
    for (const BusWord& w : enc.encoded.words)
      ASSERT_EQ(w & ~mask, BusWord()) << "width " << width;
  }
}

TEST(BusInvertWidth, InvertDecisionUsesTraceWidth) {
  // A 16-wire bus flipping all 16 wires must invert (16 toggles vs 0+1);
  // the decision threshold is n/2 + 1 at the TRACE width, not at 32.
  trace::Trace hostile{"hostile16", {}, 16};
  for (int i = 0; i < 500; ++i)
    hostile.words.push_back(i % 2 ? 0xFFFFu : 0x0000u);
  const BusInvertResult enc = bus_invert_encode(hostile);
  EXPECT_EQ(total_toggles(enc.encoded), 0u);
  EXPECT_GT(enc.inversions, 450u);

  // Same for 64 wires: toggle bound is n/2 + 1 = 33.
  const trace::Trace raw = random_wide_trace(64, 4000, 21);
  const BusInvertResult enc64 = bus_invert_encode(raw);
  BusWord prev;
  bool prev_line = false;
  for (std::size_t i = 0; i < enc64.encoded.words.size(); ++i) {
    const int toggles = (prev ^ enc64.encoded.words[i]).popcount() +
                        (prev_line != static_cast<bool>(enc64.invert_line[i]) ? 1 : 0);
    ASSERT_LE(toggles, 33) << "cycle " << i;
    prev = enc64.encoded.words[i];
    prev_line = enc64.invert_line[i];
  }
  // And it still pays on random 64-bit data.
  EXPECT_LT(total_toggles(enc64.encoded) + invert_line_toggles(enc64.invert_line),
            total_toggles(raw));
}

TEST(BusInvertWidth, WideEncodedTrafficRunsOnWideBus) {
  // The encoded 64-wire stream must drive a 64-wire simulator end to end
  // (composition of coding + DVS is the ablation_encoding scenario).
  const trace::Trace raw = random_wide_trace(64, 2000, 31);
  const BusInvertResult enc = bus_invert_encode(raw);
  interconnect::BusDesign design = interconnect::BusDesign::wide_bus(64);
  design.repeater_size = small_system().design().repeater_size;
  BusSimulator sim(design, small_system().table(),
                   tech::PvtCorner{tech::ProcessCorner::slow, 100.0, 0.0});
  sim.set_supply(1.2);
  const RunningTotals t = sim.run(enc.encoded.words);
  EXPECT_EQ(t.cycles, enc.encoded.words.size());
  EXPECT_EQ(t.shadow_failures, 0u);
}

}  // namespace
}  // namespace razorbus::bus

// End-to-end reproduction checks: the qualitative claims of each paper
// table/figure, at reduced cycle counts (the bench binaries run the full
// versions; these tests assert the SHAPE of every headline result).
#include <gtest/gtest.h>

#include <map>

#include "core/experiments.hpp"
#include "cpu/kernels.hpp"
#include "test_support.hpp"
#include "trace/trace.hpp"
#include "util/units.hpp"

namespace razorbus::core {
namespace {

using test_support::paper_system;

constexpr std::size_t kCycles = 150000;

const std::vector<trace::Trace>& suite_traces() {
  static const std::vector<trace::Trace> traces = [] {
    std::vector<trace::Trace> out;
    for (const auto& bench : cpu::spec2000_suite()) out.push_back(bench.capture(kCycles));
    return out;
  }();
  return traces;
}

const trace::Trace& trace_of(const std::string& name) {
  for (const auto& t : suite_traces())
    if (t.name == name) return t;
  throw std::runtime_error("no trace " + name);
}

// ------------------------------------------------------------------ Fig. 4

TEST(Fig4, WorstCornerErrorsStartImmediatelyBelowNominal) {
  // Paper: the bus is designed error-free exactly at the worst corner, so
  // error rates rise as soon as the supply drops below 1.2 V.
  const StaticSweepResult sweep = static_voltage_sweep(
      paper_system(), tech::worst_case_corner(), {trace_of("mgrid")});
  const auto& points = sweep.points;
  ASSERT_GE(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points.back().error_rate, 0.0);          // at 1.2 V
  EXPECT_GT(points[points.size() - 2].error_rate, 0.0005);  // at 1.18 V
}

TEST(Fig4, TypicalCornerErrorFreeDownToAbout980mV) {
  const StaticSweepResult sweep = static_voltage_sweep(
      paper_system(), tech::typical_corner(), {trace_of("mgrid")});
  double lowest_error_free = 1.2;
  for (const auto& p : sweep.points)
    // razorlint: allow(float-eq): "error-free" is an exact zero count / count.
    if (p.error_rate == 0.0) lowest_error_free = std::min(lowest_error_free, p.supply);
  EXPECT_NEAR(to_mV(lowest_error_free), 980.0, 45.0);  // paper: 980 mV
}

TEST(Fig4, EnergyCurveIsRoughlyQuadraticInSupply) {
  const StaticSweepResult sweep = static_voltage_sweep(
      paper_system(), tech::typical_corner(), {trace_of("applu")});
  for (const auto& p : sweep.points) {
    const double quadratic = (p.supply * p.supply) / (1.2 * 1.2);
    EXPECT_NEAR(p.norm_bus_energy, quadratic, 0.12) << "at " << p.supply;
  }
}

TEST(Fig4, RecoveryOverheadSmallComparedToSavings) {
  const StaticSweepResult sweep = static_voltage_sweep(
      paper_system(), tech::typical_corner(), {trace_of("swim")});
  for (const auto& p : sweep.points)
    EXPECT_LT(p.norm_total_energy - p.norm_bus_energy, 0.10);
}

// ------------------------------------------------------------------ Fig. 5

TEST(Fig5, GainsGrowAsCornersGetFaster) {
  std::vector<double> gains_at_2pct;
  for (const auto& corner : tech::fig5_corners()) {
    const StaticSweepResult sweep =
        static_voltage_sweep(paper_system(), corner, {trace_of("vortex")});
    gains_at_2pct.push_back(gains_for_targets(sweep, {0.02})[0].energy_gain);
  }
  // Monotone (non-strictly) along the slowest -> fastest corner order.
  for (std::size_t i = 1; i < gains_at_2pct.size(); ++i)
    EXPECT_GE(gains_at_2pct[i], gains_at_2pct[i - 1] - 1e-9) << "corner " << i;
  EXPECT_GT(gains_at_2pct.back(), 0.35);  // fast/25C well above 35%
}

TEST(Fig5, ZeroAndTwoPercentTargetsNearlyIndistinguishable) {
  // Paper: "gains from 0% and 2% error rates are indistinguishable" —
  // error rates jump straight from 0 past 2% on the 20 mV grid.
  const StaticSweepResult sweep = static_voltage_sweep(
      paper_system(), tech::typical_corner(), {trace_of("mgrid")});
  const auto gains = gains_for_targets(sweep, {0.0, 0.02, 0.05});
  EXPECT_NEAR(gains[0].energy_gain, gains[1].energy_gain, 0.06);
  EXPECT_GE(gains[2].energy_gain, gains[1].energy_gain - 1e-12);
}

// ------------------------------------------------------------------ Fig. 6

TEST(Fig6, CraftyRunsAtLowerVoltageThanMgrid) {
  const auto corner = tech::typical_corner();
  const VoltageDistribution crafty =
      oracle_voltage_distribution(paper_system(), corner, trace_of("crafty"), 0.02);
  const VoltageDistribution mgrid =
      oracle_voltage_distribution(paper_system(), corner, trace_of("mgrid"), 0.02);
  auto mean_voltage = [](const VoltageDistribution& d) {
    double acc = 0.0;
    for (const auto& [v, f] : d.time_at_voltage) acc += v * f;
    return acc;
  };
  EXPECT_LT(mean_voltage(crafty) + 0.02, mean_voltage(mgrid));
}

TEST(Fig6, MgridCannotDropMuchEvenAtFivePercent) {
  const VoltageDistribution d = oracle_voltage_distribution(
      paper_system(), tech::typical_corner(), trace_of("mgrid"), 0.05);
  // Paper: mgrid stays at/above ~980 mV even with a 5% error budget.
  for (const auto& [v, f] : d.time_at_voltage) {
    if (f > 0.01) {
      EXPECT_GT(to_mV(v), 925.0);
    }
  }
}

// -------------------------------------------------------------- Table 1

TEST(Table1, WorstCornerFixedVsGainsAreZeroDvsPositive) {
  const auto corner = tech::worst_case_corner();
  const trace::Trace& quiet = trace_of("mesa");

  const DvsRunReport fixed = run_fixed_vs(paper_system(), corner, quiet);
  EXPECT_NEAR(fixed.energy_gain(), 0.0, 1e-9);

  DvsRunConfig cfg;
  const DvsRunReport dvs = run_closed_loop(paper_system(), corner, quiet, cfg);
  EXPECT_GT(dvs.energy_gain(), 0.02);  // program-activity gains even here
  EXPECT_LT(dvs.error_rate(), 0.03);
}

TEST(Table1, TypicalCornerDvsBeatsFixedVsClearly) {
  const auto corner = tech::typical_corner();
  // Long enough that the ~180k-cycle descent from nominal does not dominate
  // the average (the paper runs 10M cycles per benchmark).
  const trace::Trace t = cpu::benchmark_by_name("gap").capture(600000);
  const double fixed_gain = run_fixed_vs(paper_system(), corner, t).energy_gain();
  const double dvs_gain =
      run_closed_loop(paper_system(), corner, t, DvsRunConfig{}).energy_gain();
  EXPECT_GT(fixed_gain, 0.10);             // ~17% in the paper
  EXPECT_GT(dvs_gain, fixed_gain + 0.08);  // 35-45% in the paper
}

TEST(Table1, QuietProgramsGainMoreThanNoisyOnesAtWorstCorner) {
  const auto corner = tech::worst_case_corner();
  DvsRunConfig cfg;
  const double quiet_gain =
      run_closed_loop(paper_system(), corner, trace_of("mesa"), cfg).energy_gain();
  const double noisy_gain =
      run_closed_loop(paper_system(), corner, trace_of("swim"), cfg).energy_gain();
  // Paper Table 1: mesa 17.5% vs swim 1.2% at the worst corner.
  EXPECT_GT(quiet_gain, noisy_gain + 0.02);
}

TEST(Table1, AverageErrorRatesStayNearTheTarget) {
  DvsRunConfig cfg;
  for (const char* name : {"crafty", "vortex", "applu"}) {
    const DvsRunReport r =
        run_closed_loop(paper_system(), tech::typical_corner(), trace_of(name), cfg);
    EXPECT_LT(r.error_rate(), 0.035) << name;  // paper: slightly above 2% possible
    EXPECT_EQ(r.totals.shadow_failures, 0u) << name;
  }
}

// ------------------------------------------------------------------ Fig. 8

TEST(Fig8, InstantaneousErrorRateCanOvershootTarget) {
  // The regulator ramp delay lets windows overshoot the 2% band (paper:
  // spikes up to ~6%) even though the average stays near the target.
  DvsRunConfig cfg;
  cfg.record_series = true;
  const ConsecutiveRunReport r = run_consecutive(
      paper_system(), tech::typical_corner(),
      {trace_of("crafty"), trace_of("mgrid"), trace_of("mesa")}, cfg);

  double max_window_rate = 0.0;
  for (const auto& s : r.series)
    max_window_rate = std::max(max_window_rate, s.error_rate);
  EXPECT_GT(max_window_rate, 0.02);  // overshoot happens...
  for (const auto& t : r.per_trace)
    EXPECT_LT(t.totals.error_rate(), 0.05);  // per-program averages stay close
}

TEST(Fig8, SupplyAdaptsAcrossProgramTransitions) {
  DvsRunConfig cfg;
  cfg.record_series = true;
  const ConsecutiveRunReport r =
      run_consecutive(paper_system(), tech::typical_corner(),
                      {trace_of("mesa"), trace_of("swim")}, cfg);
  ASSERT_EQ(r.per_trace.size(), 2u);
  ASSERT_GE(r.series.size(), 8u);

  // Settled supply = average of each phase's last three windows (the first
  // phase additionally pays the descent from nominal, so averages over the
  // whole phase would mislead).
  auto settled = [&](std::size_t begin_cycle, std::size_t end_cycle) {
    std::vector<double> voltages;
    for (const auto& s : r.series)
      if (s.end_cycle > begin_cycle && s.end_cycle <= end_cycle)
        voltages.push_back(s.supply);
    double acc = 0.0;
    std::size_t n = std::min<std::size_t>(3, voltages.size());
    for (std::size_t i = voltages.size() - n; i < voltages.size(); ++i)
      acc += voltages[i];
    return acc / static_cast<double>(n);
  };
  const double mesa_settled = settled(0, kCycles);
  const double swim_settled = settled(kCycles, 2 * kCycles);
  // mesa (quiet) settles low; swim (noisy FP) forces the supply back up.
  EXPECT_GT(swim_settled, mesa_settled + 0.02);
}

// ----------------------------------------------------- Fig. 10 / Section 6

TEST(Fig10, ModifiedBusGainsAtLeastMatchOriginalAtNonZeroTargets) {
  static const DvsBusSystem modified(interconnect::BusDesign::modified_bus(1.95));

  const auto corner = tech::worst_case_corner();
  const StaticSweepResult orig_sweep =
      static_voltage_sweep(paper_system(), corner, {trace_of("vortex")}, 4e-12);
  const StaticSweepResult mod_sweep =
      static_voltage_sweep(modified, corner, {trace_of("vortex")}, 4e-12);

  const double orig2 = gains_for_targets(orig_sweep, {0.02})[0].energy_gain;
  const double mod2 = gains_for_targets(mod_sweep, {0.02})[0].energy_gain;
  // Paper: the 2%/5% curves of the modified bus sit slightly higher.
  EXPECT_GE(mod2, orig2 - 0.01);

  // Worst-case delay (the 0%-error behaviour at the worst corner) does not
  // improve: the transform holds R and Cg + 4 Cc constant.
  const double d_orig = paper_system().nominal_worst_delay(corner);
  const double d_mod = modified.nominal_worst_delay(corner);
  EXPECT_NEAR(d_mod, d_orig, 0.05 * d_orig);
}

}  // namespace
}  // namespace razorbus::core

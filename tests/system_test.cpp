// Multi-bus shared-supply systems (sys::BusSystem, ISSUE tentpole): the
// load-bearing invariant is N=1 PARITY — a one-bus system must report
// bit-identically to the single-bus closed-loop drivers, materialized and
// streamed, at every width and engine mode — plus arbitration-policy unit
// semantics on hand-built error vectors and a deterministic mixed-width
// 3-bus system whose streamed and materialized runs agree byte for byte.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "dvs/arbitration.hpp"
#include "sys/bus_system.hpp"
#include "test_support.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"

using namespace razorbus;
using test_support::small_system;

namespace {

// One characterised system per width (the width_test idiom): the tables
// depend only on the per-wire design, so all widths share one cached
// small-config characterization.
const core::DvsBusSystem& system_at(int width) {
  if (width == 32) return small_system();
  static std::vector<std::unique_ptr<core::DvsBusSystem>> systems;
  static std::vector<int> widths;
  for (std::size_t i = 0; i < widths.size(); ++i)
    if (widths[i] == width) return *systems[i];
  interconnect::BusDesign design = interconnect::BusDesign::wide_bus(width);
  design.repeater_size = test_support::sized_paper_bus().repeater_size;
  core::SystemOptions options;
  options.lut_config = test_support::small_lut_config();
  systems.push_back(std::make_unique<core::DvsBusSystem>(design, options));
  widths.push_back(width);
  return *systems.back();
}

trace::SyntheticConfig synth_config(std::size_t cycles, std::uint64_t seed,
                                    int n_bits = 32,
                                    trace::SyntheticStyle style =
                                        trace::SyntheticStyle::uniform) {
  trace::SyntheticConfig cfg;
  cfg.style = style;
  cfg.cycles = cycles;
  cfg.load_rate = 0.5;
  cfg.seed = seed;
  cfg.n_bits = n_bits;
  return cfg;
}

trace::Trace synth(std::size_t cycles, std::uint64_t seed, int n_bits = 32,
                   trace::SyntheticStyle style = trace::SyntheticStyle::uniform) {
  return trace::generate_synthetic(synth_config(cycles, seed, n_bits, style),
                                   "w" + std::to_string(n_bits));
}

// Small window so short parity traces exercise many decisions; series on,
// so the per-window samples are part of the parity check.
core::DvsRunConfig single_config() {
  core::DvsRunConfig config;
  config.controller.window_cycles = 2000;
  config.regulator_delay_cycles = 700;
  config.record_series = true;
  return config;
}

sys::SystemRunConfig system_config(
    const core::DvsRunConfig& single,
    dvs::ArbitrationPolicy policy = dvs::ArbitrationPolicy::max_error) {
  sys::SystemRunConfig config;
  config.controller = single.controller;
  config.regulator_delay_cycles = single.regulator_delay_cycles;
  config.start_supply = single.start_supply;
  config.timing_jitter_sigma = single.timing_jitter_sigma;
  config.record_series = single.record_series;
  config.engine = single.engine;
  config.arbitration = policy;
  return config;
}

void expect_totals_eq(const bus::RunningTotals& a, const bus::RunningTotals& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.shadow_failures, b.shadow_failures);
  EXPECT_EQ(a.bus_energy, b.bus_energy);
  EXPECT_EQ(a.overhead_energy, b.overhead_energy);
}

void expect_series_eq(const std::vector<core::WindowSample>& a,
                      const std::vector<core::WindowSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].end_cycle, b[i].end_cycle) << "window " << i;
    EXPECT_EQ(a[i].supply, b[i].supply) << "window " << i;
    EXPECT_EQ(a[i].error_rate, b[i].error_rate) << "window " << i;
  }
}

// The N=1 parity contract: system per_bus[0] + system series vs the
// single-bus DvsRunReport, exact equality on every field.
void expect_one_bus_parity(const sys::SystemRunReport& system,
                           const core::DvsRunReport& single) {
  ASSERT_EQ(system.per_bus.size(), 1u);
  const core::DvsRunReport& lane = system.per_bus.front();
  expect_totals_eq(lane.totals, single.totals);
  EXPECT_EQ(lane.baseline_bus_energy, single.baseline_bus_energy);
  EXPECT_EQ(lane.floor_supply, single.floor_supply);
  EXPECT_EQ(lane.average_supply, single.average_supply);
  EXPECT_EQ(system.floor_supply, single.floor_supply);
  EXPECT_EQ(system.average_supply, single.average_supply);
  EXPECT_EQ(system.cycles, single.totals.cycles);
  expect_series_eq(system.series, single.series);
}

void expect_system_reports_eq(const sys::SystemRunReport& a,
                              const sys::SystemRunReport& b) {
  ASSERT_EQ(a.per_bus.size(), b.per_bus.size());
  for (std::size_t l = 0; l < a.per_bus.size(); ++l) {
    expect_totals_eq(a.per_bus[l].totals, b.per_bus[l].totals);
    EXPECT_EQ(a.per_bus[l].baseline_bus_energy, b.per_bus[l].baseline_bus_energy);
    EXPECT_EQ(a.per_bus[l].floor_supply, b.per_bus[l].floor_supply);
    EXPECT_EQ(a.per_bus[l].average_supply, b.per_bus[l].average_supply);
  }
  expect_series_eq(a.series, b.series);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.floor_supply, b.floor_supply);
  EXPECT_EQ(a.average_supply, b.average_supply);
  EXPECT_EQ(a.wall_tracking_error, b.wall_tracking_error);
  EXPECT_EQ(a.env_updates, b.env_updates);
}

constexpr std::size_t kCycles = 30000;
constexpr std::size_t kOddBlock = 1537;  // coprime to the window on purpose

}  // namespace

// --------------------------------------------------------- arbitration

TEST(Arbitration, PolicySemanticsOnHandBuiltVectors) {
  const std::vector<std::uint64_t> errors{3, 9, 2};
  const std::vector<double> unit{1.0, 1.0, 1.0};
  EXPECT_EQ(dvs::fuse_window_errors(dvs::ArbitrationPolicy::max_error, errors, unit),
            9u);
  EXPECT_EQ(dvs::fuse_window_errors(dvs::ArbitrationPolicy::sum_error, errors, unit),
            14u);
  EXPECT_EQ(dvs::fuse_window_errors(dvs::ArbitrationPolicy::weighted, errors, unit),
            14u);
  // 3*0.5 + 9*2 + 2*1 = 21.5, rounded to the nearest count.
  EXPECT_EQ(dvs::fuse_window_errors(dvs::ArbitrationPolicy::weighted, errors,
                                    {0.5, 2.0, 1.0}),
            22u);
  // max <= sum always; both bound any unit-mean weighting of this vector.
  EXPECT_LE(dvs::fuse_window_errors(dvs::ArbitrationPolicy::max_error, errors, unit),
            dvs::fuse_window_errors(dvs::ArbitrationPolicy::sum_error, errors, unit));
}

TEST(Arbitration, EveryPolicyIsTheIdentityAtOneLaneUnitWeight) {
  for (const auto policy :
       {dvs::ArbitrationPolicy::max_error, dvs::ArbitrationPolicy::sum_error,
        dvs::ArbitrationPolicy::weighted})
    EXPECT_EQ(dvs::fuse_window_errors(policy, {17}, {1.0}), 17u);
}

TEST(Arbitration, ValidationThrows) {
  EXPECT_THROW(dvs::fuse_window_errors(dvs::ArbitrationPolicy::max_error, {}, {}),
               std::invalid_argument);
  EXPECT_THROW(dvs::fuse_window_errors(dvs::ArbitrationPolicy::weighted, {1, 2}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      dvs::fuse_window_errors(dvs::ArbitrationPolicy::weighted, {1, 2}, {1.0, 0.0}),
      std::invalid_argument);
  EXPECT_THROW(dvs::arbitration_policy_from_string("priority"), std::invalid_argument);
}

TEST(Arbitration, NamesRoundTrip) {
  for (const auto policy :
       {dvs::ArbitrationPolicy::max_error, dvs::ArbitrationPolicy::sum_error,
        dvs::ArbitrationPolicy::weighted})
    EXPECT_EQ(dvs::arbitration_policy_from_string(dvs::to_string(policy)), policy);
}

// --------------------------------------------------------- N=1 parity

TEST(SystemParity, OneBusMatchesSingleBusPerWidth) {
  for (const int width : {16, 32, 64, 128}) {
    const auto& sys_w = system_at(width);
    const trace::Trace trace = synth(kCycles, 40 + static_cast<std::uint64_t>(width),
                                     width);
    const core::DvsRunConfig cfg = single_config();
    const core::DvsRunReport single =
        core::run_closed_loop(sys_w, tech::typical_corner(), trace, cfg);

    const sys::BusSystem system({{&sys_w, 1.0}});
    const sys::SystemRunReport report = system.run_closed_loop(
        tech::typical_corner(), {trace}, system_config(cfg));
    SCOPED_TRACE("width " + std::to_string(width));
    expect_one_bus_parity(report, single);
  }
}

TEST(SystemParity, OneBusMatchesSingleBusEveryArbitrationPolicy) {
  const trace::Trace trace = synth(kCycles, 7);
  const core::DvsRunConfig cfg = single_config();
  const core::DvsRunReport single =
      core::run_closed_loop(small_system(), tech::typical_corner(), trace, cfg);
  const sys::BusSystem system({{&small_system(), 1.0}});
  for (const auto policy :
       {dvs::ArbitrationPolicy::max_error, dvs::ArbitrationPolicy::sum_error,
        dvs::ArbitrationPolicy::weighted}) {
    SCOPED_TRACE(dvs::to_string(policy));
    expect_one_bus_parity(system.run_closed_loop(tech::typical_corner(), {trace},
                                                 system_config(cfg, policy)),
                          single);
  }
}

TEST(SystemParity, OneBusMatchesSingleBusEveryEngineMode) {
  const trace::Trace trace = synth(kCycles, 9);
  for (const auto engine :
       {bus::EngineMode::bit_parallel, bus::EngineMode::reference,
        bus::EngineMode::simd}) {
    core::DvsRunConfig cfg = single_config();
    cfg.engine = engine;
    const core::DvsRunReport single =
        core::run_closed_loop(small_system(), tech::typical_corner(), trace, cfg);
    const sys::BusSystem system({{&small_system(), 1.0}});
    SCOPED_TRACE(bus::to_string(engine));
    expect_one_bus_parity(system.run_closed_loop(tech::typical_corner(), {trace},
                                                 system_config(cfg)),
                          single);
  }
}

TEST(SystemParity, OneBusStreamedMatchesSingleBusStreamedWithStats) {
  const auto cfg_src = synth_config(kCycles, 11);
  const auto source = trace::make_synthetic_source(cfg_src, "w32");
  const core::DvsRunConfig cfg = single_config();
  core::StreamConfig stream;
  stream.block_cycles = kOddBlock;

  core::StreamStats single_stats;
  const core::DvsRunReport single = core::run_closed_loop_streamed(
      small_system(), tech::typical_corner(), *source, cfg, stream, &single_stats);

  const sys::BusSystem system({{&small_system(), 1.0}});
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  sources.push_back(source->clone());
  core::StreamStats system_stats;
  const sys::SystemRunReport report = system.run_closed_loop_streamed(
      tech::typical_corner(), sources, system_config(cfg), stream, &system_stats);

  expect_one_bus_parity(report, single);
  EXPECT_EQ(system_stats.block_cycles, single_stats.block_cycles);
  EXPECT_EQ(system_stats.blocks, single_stats.blocks);
  EXPECT_EQ(system_stats.cycles, single_stats.cycles);
  EXPECT_EQ(system_stats.peak_buffer_words, single_stats.peak_buffer_words);
}

// ---------------------------------------------------- multi-bus semantics

// Two lanes carrying the SAME trace produce identical per-window counts,
// so max fusion — and weighted fusion at weights summing to 1 — see the
// exact single-bus signal: the shared supply trajectory must match the
// one-lane run bit for bit, and both lanes must report identically.
TEST(MultiBus, TwoIdenticalLanesUnderMaxMatchOneLane) {
  const trace::Trace trace = synth(kCycles, 13);
  const core::DvsRunConfig cfg = single_config();
  const core::DvsRunReport single =
      core::run_closed_loop(small_system(), tech::typical_corner(), trace, cfg);

  const sys::BusSystem pair(
      {{&small_system(), 1.0}, {&small_system(), 1.0}});
  const sys::SystemRunReport report = pair.run_closed_loop(
      tech::typical_corner(), {trace, trace}, system_config(cfg));

  ASSERT_EQ(report.per_bus.size(), 2u);
  expect_totals_eq(report.per_bus[0].totals, report.per_bus[1].totals);
  expect_totals_eq(report.per_bus[0].totals, single.totals);
  EXPECT_EQ(report.average_supply, single.average_supply);
  EXPECT_EQ(report.floor_supply, single.floor_supply);
  expect_series_eq(report.series, single.series);
}

TEST(MultiBus, HalfWeightsOnIdenticalLanesMatchOneLane) {
  const trace::Trace trace = synth(kCycles, 13);
  const core::DvsRunConfig cfg = single_config();
  const core::DvsRunReport single =
      core::run_closed_loop(small_system(), tech::typical_corner(), trace, cfg);

  // 0.5*e + 0.5*e = e each window: weighted fusion reduces to identity.
  const sys::BusSystem pair(
      {{&small_system(), 0.5}, {&small_system(), 0.5}});
  const sys::SystemRunReport report = pair.run_closed_loop(
      tech::typical_corner(), {trace, trace},
      system_config(cfg, dvs::ArbitrationPolicy::weighted));
  EXPECT_EQ(report.average_supply, single.average_supply);
  expect_series_eq(report.series, single.series);
}

// The deterministic mixed-width golden: a 16/32/64 system must (a) be
// reproducible run to run, (b) agree byte-for-byte between streamed and
// materialized execution, and (c) satisfy the structural invariants.
TEST(MultiBus, ThreeBusMixedWidthGoldenStreamedEqualsMaterialized) {
  const std::vector<int> widths{16, 32, 64};
  std::vector<sys::BusLane> lanes;
  std::vector<trace::Trace> traces;
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  const trace::SyntheticStyle styles[] = {trace::SyntheticStyle::uniform,
                                          trace::SyntheticStyle::pointer_like,
                                          trace::SyntheticStyle::sparse};
  for (std::size_t i = 0; i < widths.size(); ++i) {
    lanes.push_back({&system_at(widths[i]), static_cast<double>(i + 1)});
    const auto cfg = synth_config(kCycles, 100 + i, widths[i], styles[i]);
    traces.push_back(
        trace::generate_synthetic(cfg, "w" + std::to_string(widths[i])));
    sources.push_back(
        trace::make_synthetic_source(cfg, "w" + std::to_string(widths[i])));
  }
  const sys::BusSystem system(lanes);
  sys::SystemRunConfig cfg = system_config(single_config(),
                                           dvs::ArbitrationPolicy::weighted);

  const sys::SystemRunReport a =
      system.run_closed_loop(tech::typical_corner(), traces, cfg);
  const sys::SystemRunReport rerun =
      system.run_closed_loop(tech::typical_corner(), traces, cfg);
  expect_system_reports_eq(a, rerun);  // deterministic golden

  core::StreamConfig stream;
  stream.block_cycles = kOddBlock;
  const sys::SystemRunReport b =
      system.run_closed_loop_streamed(tech::typical_corner(), sources, cfg, stream);
  expect_system_reports_eq(a, b);  // stream parity at N=3

  // Structural invariants of the shared rail.
  ASSERT_EQ(a.per_bus.size(), 3u);
  EXPECT_EQ(a.cycles, kCycles);
  EXPECT_EQ(a.windows, kCycles / cfg.controller.window_cycles);
  EXPECT_EQ(a.series.size(), a.windows);
  double max_floor = 0.0;
  for (const auto& lane : lanes)
    max_floor = std::max(max_floor,
                         lane.system->dvs_floor(tech::typical_corner().process));
  EXPECT_EQ(a.floor_supply, max_floor);
  EXPECT_GE(a.average_supply, a.floor_supply);
  EXPECT_LE(a.average_supply, small_system().design().node.vdd_nominal);
  for (const auto& lane_report : a.per_bus) {
    EXPECT_EQ(lane_report.totals.cycles, a.cycles);
    EXPECT_GT(lane_report.baseline_bus_energy, 0.0);
    // Every lane shares the one rail, so per-lane supply aggregates are
    // the system's.
    EXPECT_EQ(lane_report.average_supply, a.average_supply);
    EXPECT_EQ(lane_report.floor_supply, a.floor_supply);
  }
}

// The sum policy sees at least the max policy's count every window; on
// identical lanes it sees exactly twice the single-bus signal, which can
// only hold the supply at or above the max-policy trajectory on average.
TEST(MultiBus, SumPolicyIsAtLeastAsConservativeAsMaxOnIdenticalLanes) {
  const trace::Trace trace = synth(kCycles, 17);
  const core::DvsRunConfig cfg = single_config();
  const sys::BusSystem pair(
      {{&small_system(), 1.0}, {&small_system(), 1.0}});
  const sys::SystemRunReport max_run = pair.run_closed_loop(
      tech::typical_corner(), {trace, trace}, system_config(cfg));
  const sys::SystemRunReport sum_run = pair.run_closed_loop(
      tech::typical_corner(), {trace, trace},
      system_config(cfg, dvs::ArbitrationPolicy::sum_error));
  EXPECT_GE(sum_run.average_supply, max_run.average_supply);
}

// ------------------------------------------------------------- validation

TEST(BusSystem, ConstructorValidation) {
  EXPECT_THROW(sys::BusSystem({}), std::invalid_argument);
  EXPECT_THROW(sys::BusSystem({{nullptr, 1.0}}), std::invalid_argument);
  EXPECT_THROW(sys::BusSystem({{&small_system(), 0.0}}), std::invalid_argument);
}

TEST(BusSystem, RunValidation) {
  const sys::BusSystem system({{&small_system(), 1.0}});
  // Lane/trace count mismatch.
  EXPECT_THROW(system.run_closed_loop(tech::typical_corner(),
                                      {synth(100, 1), synth(100, 2)}),
               std::invalid_argument);
  // A trace wider than its lane (the single-bus width rule, per lane).
  EXPECT_THROW(
      system.run_closed_loop(tech::typical_corner(), {synth(100, 1, 64)}),
      std::invalid_argument);
}

// Lockstep ends at the shortest trace: mismatched lengths simulate
// exactly min(len) cycles on every lane.
TEST(BusSystem, LockstepEndsAtShortestTrace) {
  const sys::BusSystem pair(
      {{&small_system(), 1.0}, {&small_system(), 1.0}});
  const sys::SystemRunReport report = pair.run_closed_loop(
      tech::typical_corner(), {synth(5000, 1), synth(3000, 2)},
      system_config(single_config()));
  EXPECT_EQ(report.cycles, 3000u);
  EXPECT_EQ(report.per_bus[0].totals.cycles, 3000u);
  EXPECT_EQ(report.per_bus[1].totals.cycles, 3000u);
}

#include <gtest/gtest.h>

#include <limits>

#include <cmath>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace razorbus {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, LiteralSuffixesScaleCorrectly) {
  EXPECT_DOUBLE_EQ(600.0_ps, 600e-12);
  EXPECT_DOUBLE_EQ(1.5_ns, 1.5e-9);
  EXPECT_DOUBLE_EQ(2.0_us, 2e-6);
  EXPECT_DOUBLE_EQ(1.2_V, 1.2);
  EXPECT_DOUBLE_EQ(20.0_mV, 0.020);
  EXPECT_DOUBLE_EQ(6.0_mm, 6e-3);
  EXPECT_DOUBLE_EQ(0.8_um, 0.8e-6);
  EXPECT_DOUBLE_EQ(1.5_GHz, 1.5e9);
  EXPECT_DOUBLE_EQ(92.0_ohm, 92.0);
  EXPECT_DOUBLE_EQ(12.0_kohm, 12000.0);
  EXPECT_DOUBLE_EQ(1.0_fF, 1e-15);
  EXPECT_DOUBLE_EQ(1.0_pJ, 1e-12);
}

TEST(Units, ConversionHelpersRoundTrip) {
  EXPECT_NEAR(to_ps(600.0_ps), 600.0, 1e-9);
  EXPECT_NEAR(to_mV(1.08_V), 1080.0, 1e-9);
  EXPECT_NEAR(to_fF(0.5_pF), 500.0, 1e-9);
  EXPECT_NEAR(to_um(6.0_mm), 6000.0, 1e-9);
  EXPECT_NEAR(to_fJ(2.0_pJ), 2000.0, 1e-9);
}

TEST(Units, ThermalVoltage) {
  EXPECT_NEAR(thermal_voltage(25.0), 0.0257, 5e-4);
  EXPECT_NEAR(thermal_voltage(100.0), 0.0322, 5e-4);
  EXPECT_GT(thermal_voltage(100.0), thermal_voltage(25.0));
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit
}

TEST(Rng, NextBelowZeroAndOne) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, UniformRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, RandomWordBitDensity) {
  Rng rng(23);
  std::uint64_t ones = 0;
  for (int i = 0; i < 10000; ++i) ones += __builtin_popcount(rng.random_word(0.25));
  EXPECT_NEAR(static_cast<double>(ones) / (10000.0 * 32.0), 0.25, 0.01);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(31);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, BinningAndTotals) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, NanSamplesAreDroppedNotBinned) {
  // Regression: bin_index used to cast NaN to std::size_t (undefined
  // behavior — both range guards compare false for NaN).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_index(nan), h.bins());  // defined one-past-the-end flag
  h.add(nan);
  h.add(nan, 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  EXPECT_DOUBLE_EQ(h.dropped(), 3.5);
  for (std::size_t i = 0; i < h.bins(); ++i) EXPECT_DOUBLE_EQ(h.count(i), 0.0);

  h.add(0.5);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);  // real samples still bin normally
  EXPECT_DOUBLE_EQ(h.fraction(2), 1.0);
}

TEST(DiscreteHistogram, NanKeysAreDropped) {
  DiscreteHistogram h;
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
  EXPECT_DOUBLE_EQ(h.dropped(), 1.0);
  ASSERT_EQ(h.fractions().size(), 1u);
  EXPECT_DOUBLE_EQ(h.fractions()[0].second, 1.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, WeightsAccumulate) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 2.5);
  h.add(0.9, 1.5);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.5 / 4.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 3.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(DiscreteHistogram, FractionsSortedByKey) {
  DiscreteHistogram h;
  h.add(1.00, 3.0);
  h.add(0.98, 1.0);
  h.add(1.00, 1.0);
  const auto f = h.fractions();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f[0].first, 0.98);
  EXPECT_DOUBLE_EQ(f[0].second, 0.2);
  EXPECT_DOUBLE_EQ(f[1].first, 1.00);
  EXPECT_DOUBLE_EQ(f[1].second, 0.8);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 75), 3.0);
}

// ---------------------------------------------------------------- table

TEST(Table, AlignedOutputContainsCells) {
  Table t({"name", "value"});
  t.row().add("alpha").add(1.25, 2);
  t.row().add("b").add(42LL);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add("x").add(3LL);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,3\n");
}

TEST(Table, AddBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add("oops"), std::logic_error);
}

TEST(Table, EmptyHeaderThrows) { EXPECT_THROW(Table({}), std::invalid_argument); }

TEST(Table, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

// ---------------------------------------------------------------- cli

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(CliFlags, ParsesValuesAndBooleans) {
  auto args = argv_of({"--cycles=5000", "--verbose", "--name=fig4"});
  CliFlags flags(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(flags.get_int("cycles", 0), 5000);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get("name", ""), "fig4");
}

TEST(CliFlags, FallbacksWhenAbsent) {
  auto args = argv_of({});
  CliFlags flags(static_cast<int>(args.size()), args.data());
  EXPECT_EQ(flags.get_int("cycles", 123), 123);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.has("anything"));
}

TEST(CliFlags, PositionalArguments) {
  auto args = argv_of({"input.txt", "--k=1", "more"});
  CliFlags flags(static_cast<int>(args.size()), args.data());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.get_int("k", 0), 1);
}

TEST(CliFlags, RejectUnusedFlagsTypoDetection) {
  auto args = argv_of({"--cycels=10"});
  CliFlags flags(static_cast<int>(args.size()), args.data());
  flags.get_int("cycles", 0);  // the real flag name
  EXPECT_THROW(flags.reject_unused(), std::invalid_argument);
}

TEST(CliFlags, RejectUnusedPassesWhenAllQueried) {
  auto args = argv_of({"--cycles=10"});
  CliFlags flags(static_cast<int>(args.size()), args.data());
  flags.get_int("cycles", 0);
  EXPECT_NO_THROW(flags.reject_unused());
}

TEST(CliFlags, GetDoubleParses) {
  auto args = argv_of({"--jitter=4e-12"});
  CliFlags flags(static_cast<int>(args.size()), args.data());
  EXPECT_DOUBLE_EQ(flags.get_double("jitter", 0.0), 4e-12);
}


// ---------------------------------------------------------------- json

TEST(Json, ScalarsAndShortestRoundTrip) {
  Json j = Json::object();
  j.set("int", 42)
      .set("neg", -7)
      .set("flag", true)
      .set("ratio", 0.1)
      .set("name", "razor\"bus\"");
  const std::string out = j.dump(0);
  EXPECT_EQ(out,
            "{\"int\":42,\"neg\":-7,\"flag\":true,\"ratio\":0.1,"
            "\"name\":\"razor\\\"bus\\\"\"}");
}

TEST(Json, NestedArraysAndObjects) {
  Json j = Json::object();
  Json rows = Json::array();
  rows.push(Json::array().push(1).push(2.5));
  j.set("rows", std::move(rows));
  EXPECT_EQ(j.dump(0), "{\"rows\":[[1,2.5]]}");
}

TEST(Json, OverwriteKeepsInsertionOrder) {
  Json j = Json::object();
  j.set("a", 1).set("b", 2).set("a", 3);
  EXPECT_EQ(j.dump(0), "{\"a\":3,\"b\":2}");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  Json j = Json::object();
  j.set("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(j.dump(0), "{\"inf\":null}");
}

TEST(Json, TypeMisuseThrows) {
  Json arr = Json::array();
  EXPECT_THROW(arr.set("x", 1), std::logic_error);
  Json obj = Json::object();
  EXPECT_THROW(obj.push(1), std::logic_error);
}

// ------------------------------------------------- json parser / round-trip

TEST(JsonParse, ScalarsAndContainers) {
  const Json j = Json::parse(
      R"({"int": -42, "num": 2.5, "flag": true, "off": false, "nil": null,)"
      R"( "arr": [1, [2]], "obj": {"k": "v"}})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.at("int").as_int(), -42);
  EXPECT_DOUBLE_EQ(j.at("num").as_double(), 2.5);
  EXPECT_TRUE(j.at("flag").as_bool());
  EXPECT_FALSE(j.at("off").as_bool());
  EXPECT_TRUE(j.at("nil").is_null());
  ASSERT_EQ(j.at("arr").size(), 2u);
  EXPECT_EQ(j.at("arr").at(0).as_int(), 1);
  EXPECT_EQ(j.at("arr").at(1).at(0).as_int(), 2);
  EXPECT_EQ(j.at("obj").at("k").as_string(), "v");
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.at("missing"), std::out_of_range);
}

TEST(JsonParse, IntegerAndDoubleStayDistinct) {
  EXPECT_TRUE(Json::parse("7").is_integer());
  EXPECT_FALSE(Json::parse("7.0").is_integer());
  EXPECT_TRUE(Json::parse("7.0").is_number());
  EXPECT_TRUE(Json::parse("1e3").is_number());
  EXPECT_FALSE(Json::parse("1e3").is_integer());
  // Integers past the long long range degrade to double rather than failing.
  EXPECT_TRUE(Json::parse("123456789012345678901234567890").is_number());
}

// parse(dump(x)) must reproduce x exactly: the ScenarioSpec loader and the
// bench-regression gate both read numbers the emitter wrote.
TEST(JsonParse, DumpParseRoundTripIsExact) {
  Json j = Json::object();
  j.set("third", 1.0 / 3.0)
      .set("tiny", 5e-324)
      .set("huge", 1.7976931348623157e308)
      .set("neg_zero", -0.0)
      .set("pi", 3.141592653589793)
      .set("max_ll", 9223372036854775807LL)
      .set("min_ll", -9223372036854775807LL - 1)
      .set("ratio", 0.1);
  for (int indent : {0, 2}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_DOUBLE_EQ(back.at("third").as_double(), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(back.at("tiny").as_double(), 5e-324);
    EXPECT_DOUBLE_EQ(back.at("huge").as_double(), 1.7976931348623157e308);
    EXPECT_EQ(back.at("neg_zero").as_double(), 0.0);
    EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.141592653589793);
    EXPECT_EQ(back.at("max_ll").as_int(), 9223372036854775807LL);
    EXPECT_EQ(back.at("min_ll").as_int(), -9223372036854775807LL - 1);
    EXPECT_DOUBLE_EQ(back.at("ratio").as_double(), 0.1);
    // Second round trip is byte-stable.
    EXPECT_EQ(back.dump(indent), j.dump(indent));
  }
}

TEST(JsonParse, EscapesAndUtf8RoundTrip) {
  Json j = Json::object();
  j.set("quotes", "a\"b\\c");
  j.set("control", std::string("line\nreturn\rtab\tbell\x07"));
  j.set("utf8", "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97");  // café 漢字 as raw UTF-8
  const Json back = Json::parse(j.dump(0));
  EXPECT_EQ(back.at("quotes").as_string(), "a\"b\\c");
  EXPECT_EQ(back.at("control").as_string(), "line\nreturn\rtab\tbell\x07");
  EXPECT_EQ(back.at("utf8").as_string(), "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97");
  EXPECT_EQ(Json::parse(back.dump(2)).dump(0), back.dump(0));
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse(R"("\u0041\u00e9\u6f22")").as_string(),
            "A\xc3\xa9\xe6\xbc\xa2");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
  EXPECT_EQ(Json::parse(R"("\b\f\/")").as_string(), "\b\f/");
}

TEST(JsonParse, MalformedInputsThrowWithPosition) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "nul", "01", "1.", "1e", "-",
        "\"unterminated", "\"bad\\q\"", "\"\\ud800\"", "\"\\ud800\\u0041\"",
        "{\"a\":1,}", "[1 2]", "{\"a\" 1}", "{1: 2}", "1 2", "\"tab\there\""}) {
    EXPECT_THROW(Json::parse(bad), JsonParseError) << "input: " << bad;
  }
  try {
    Json::parse("{\"a\": 1, }");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonParse, WhitespaceAndDuplicateKeys) {
  const Json j = Json::parse("  \r\n\t{ \"a\" : 1 , \"a\" : 2 }  ");
  EXPECT_EQ(j.size(), 1u);  // duplicate keys: last wins
  EXPECT_EQ(j.at("a").as_int(), 2);
}

TEST(JsonParse, DeepNestingIsRejectedNotACrash) {
  std::string deep(5000, '[');
  deep += std::string(5000, ']');
  EXPECT_THROW(Json::parse(deep), JsonParseError);
}

TEST(Json, EraseRemovesMember) {
  Json j = Json::object();
  j.set("keep", 1).set("drop", 2);
  EXPECT_TRUE(j.erase("drop"));
  EXPECT_FALSE(j.erase("drop"));
  EXPECT_EQ(j.dump(0), "{\"keep\":1}");
}

}  // namespace
}  // namespace razorbus

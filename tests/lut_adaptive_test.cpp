// Adaptive error-bounded characterization (docs/characterization.md):
// convergence to the dense table as the tolerance goes to zero, bounded
// interpolation error and sim-count savings at the default tolerance, and
// lazy on-demand refinement below a sweep's characterised range.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "core/experiments.hpp"
#include "core/system.hpp"
#include "lut/cache.hpp"
#include "lut/pattern.hpp"
#include "lut/table.hpp"
#include "test_support.hpp"
#include "trace/synthetic.hpp"

namespace razorbus::lut {
namespace {

using test_support::small_lut_config;
using test_support::sized_paper_bus;

// One pinned (corner, temperature) band over the FULL paper voltage range
// so the adaptive builder sees both the steep low-voltage region and the
// flat top of the curves.
LutConfig pinned_dense_config() {
  LutConfig cfg;  // default vmin/vmax/vstep: 0.66..1.20 in 20 mV
  cfg.temps = {100.0};
  cfg.corners = {tech::ProcessCorner::typical};
  return cfg;
}

TEST(Adaptive, TolZeroReproducesDenseBitIdentically) {
  const tech::DriverModel driver(sized_paper_bus().node);
  LutConfig cfg = small_lut_config();
  cfg.corners = {tech::ProcessCorner::typical};

  const DelayEnergyTable dense = DelayEnergyTable::build(sized_paper_bus(), driver, cfg);

  LutConfig exact = cfg;
  exact.tolerance.relative = 1e-12;  // nothing real interpolates this well
  const DelayEnergyTable adaptive =
      DelayEnergyTable::build(sized_paper_bus(), driver, exact);
  ASSERT_TRUE(adaptive.adaptive());
  ASSERT_FALSE(dense.adaptive());

  // Full refinement: every dense grid index survives as a breakpoint, with
  // the same voltage doubles and the same simulated values, bit for bit.
  const tech::SupplyBreakpoints& axis = adaptive.breakpoints(0, 0);
  ASSERT_EQ(axis.size(), dense.grid().size());
  for (std::size_t vi = 0; vi < axis.size(); ++vi) {
    EXPECT_EQ(axis.voltage(vi), dense.grid().voltage(vi)) << "index " << vi;
    for (int cls = 0; cls < PatternClass::kCount; ++cls) {
      const double dd = dense.delay_at(cls, 0, 0, vi);
      const double ad = adaptive.delay_at(cls, 0, 0, vi);
      if (std::isnan(dd))
        EXPECT_TRUE(std::isnan(ad)) << "class " << cls << " index " << vi;
      else
        EXPECT_EQ(dd, ad) << "class " << cls << " index " << vi;
      EXPECT_EQ(dense.energy_at(cls, 0, 0, vi), adaptive.energy_at(cls, 0, 0, vi))
          << "class " << cls << " index " << vi;
    }
  }
}

TEST(Adaptive, MatchesDenseWithinToleranceAtHalfTheSims) {
  const tech::DriverModel driver(sized_paper_bus().node);
  const LutConfig dense_cfg = pinned_dense_config();
  const LutConfig adaptive_cfg =
      core::lut_config_for_tolerance(core::kDefaultLutTolerance, dense_cfg);

  BuildStats dense_stats, adaptive_stats;
  const DelayEnergyTable dense = DelayEnergyTable::build(
      sized_paper_bus(), driver, dense_cfg, {}, nullptr, &dense_stats);
  const DelayEnergyTable adaptive = DelayEnergyTable::build(
      sized_paper_bus(), driver, adaptive_cfg, {}, nullptr, &adaptive_stats);

  // The headline acceptance bound: the adaptive build costs at most half
  // the dense build's transient runs at the default tolerance.
  ASSERT_GT(adaptive_stats.transient_sims, 0u);
  EXPECT_LE(adaptive_stats.transient_sims * 2, dense_stats.transient_sims)
      << "adaptive build no longer saves half the transient runs";

  // Interpolated lookups at every dense grid voltage agree within a small
  // multiple of the configured tolerance (accepted intervals are validated
  // at their probed midpoints; unprobed interior points carry a little
  // extra lerp error, hence the slack factor).
  const LutTolerance& tol = adaptive_cfg.tolerance;
  const double kSlack = 5.0;
  const tech::ProcessCorner corner = tech::ProcessCorner::typical;
  for (std::size_t vi = 0; vi < dense.grid().size(); ++vi) {
    const double v = dense.grid().voltage(vi);
    for (int cls = 0; cls < PatternClass::kCount; ++cls) {
      const double dd = dense.delay(cls, corner, 100.0, v);
      const double ad = adaptive.delay(cls, corner, 100.0, v);
      if (std::isnan(dd)) {
        EXPECT_TRUE(std::isnan(ad)) << "class " << cls << " v " << v;
      } else if (std::isinf(dd)) {
        // Non-conducting boundary: refinement pins it to adjacent grid
        // indices, so the classification must agree exactly.
        EXPECT_TRUE(std::isinf(ad)) << "class " << cls << " v " << v;
      } else {
        ASSERT_TRUE(std::isfinite(ad)) << "class " << cls << " v " << v;
        EXPECT_NEAR(ad, dd, kSlack * (tol.delay_abs_s + tol.relative * std::abs(dd)))
            << "class " << cls << " v " << v;
      }
      const double de = dense.energy(cls, corner, 100.0, v);
      const double ae = adaptive.energy(cls, corner, 100.0, v);
      EXPECT_NEAR(ae, de, kSlack * (tol.energy_abs_j + tol.relative * std::abs(de)))
          << "class " << cls << " v " << v;
    }
  }
}

TEST(Adaptive, SweepReportsMatchDenseWithinTolerance) {
  // End to end on a pinned corner: static sweep reports from an
  // adaptively-characterised system track the dense system's.
  core::SystemOptions dense_opts;
  dense_opts.lut_config = small_lut_config();
  dense_opts.use_cache = false;
  const core::DvsBusSystem dense_system(sized_paper_bus(), dense_opts);

  core::SystemOptions adaptive_opts = dense_opts;
  adaptive_opts.lut_config =
      core::lut_config_for_tolerance(core::kDefaultLutTolerance, dense_opts.lut_config);
  const core::DvsBusSystem adaptive_system(sized_paper_bus(), adaptive_opts);

  trace::SyntheticConfig tc;
  tc.cycles = 4000;
  tc.seed = 0x5eed;
  const std::vector<trace::Trace> traces{trace::generate_synthetic(tc, "adaptive")};
  const auto env = tech::typical_corner();

  const core::StaticSweepResult ds =
      core::static_voltage_sweep(dense_system, env, traces);
  const core::StaticSweepResult as =
      core::static_voltage_sweep(adaptive_system, env, traces);

  EXPECT_NEAR(as.floor_supply, ds.floor_supply, 0.021);  // at most one grid step
  ASSERT_GT(ds.points.size(), 1u);
  ASSERT_GT(as.points.size(), 1u);

  // Compare points at matching supplies (floors may differ by a step, so
  // the lists can be offset).
  std::size_t matched = 0;
  for (const auto& ap : as.points) {
    const core::SweepPoint* dp = nullptr;
    for (const auto& p : ds.points)
      if (std::abs(p.supply - ap.supply) < 1e-9) dp = &p;
    if (!dp) continue;
    ++matched;
    EXPECT_NEAR(ap.norm_bus_energy, dp->norm_bus_energy,
                0.05 * std::abs(dp->norm_bus_energy) + 1e-6)
        << "supply " << ap.supply;
    // Error rates live on a cliff: a within-tolerance delay shift can move
    // the cliff by one grid step, so bracket against the dense neighbours.
    double lo = 1.0, hi = 0.0;  // error rate falls as supply rises
    for (std::size_t i = 0; i < ds.points.size(); ++i) {
      if (std::abs(ds.points[i].supply - ap.supply) < 1e-9) {
        lo = i + 1 < ds.points.size() ? ds.points[i + 1].error_rate : ds.points[i].error_rate;
        hi = i > 0 ? ds.points[i - 1].error_rate : ds.points[i].error_rate;
      }
    }
    EXPECT_GE(ap.error_rate, lo - 0.02) << "supply " << ap.supply;
    EXPECT_LE(ap.error_rate, hi + 0.02) << "supply " << ap.supply;
  }
  EXPECT_GE(matched + 1, as.points.size());  // at most the floor point unmatched
  EXPECT_GE(matched, 2u);
}

TEST(Adaptive, LazyRefinementBelowCharacterisedRange) {
  const std::string dir = "./.razorbus_lazy_refine_test";
  const char* prev = std::getenv("RAZORBUS_CACHE_DIR");
  const std::string prev_dir = prev ? prev : "";
  std::filesystem::remove_all(dir);
  setenv("RAZORBUS_CACHE_DIR", dir.c_str(), 1);

  const tech::DriverModel driver(sized_paper_bus().node);
  LutConfig narrow;
  narrow.vmin = 1.10;
  narrow.vmax = 1.20;
  narrow.temps = {100.0};
  narrow.corners = {tech::ProcessCorner::typical};
  narrow = core::lut_config_for_tolerance(core::kDefaultLutTolerance, narrow);

  // build_or_load attaches the lazy refiner to adaptive tables.
  const DelayEnergyTable table =
      build_or_load(sized_paper_bus(), driver, narrow, {});
  ASSERT_TRUE(table.adaptive());
  EXPECT_EQ(table.refiner_sims(), 0u);

  // A query 70 mV below the sweep range triggers on-demand anchors instead
  // of clamping to the 1.10 V edge values.
  const int cls = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                       NeighborActivity::fall);
  const double v_below = 1.03;
  const double d_below = table.delay(cls, tech::ProcessCorner::typical, 100.0, v_below);
  const double e_below = table.energy(cls, tech::ProcessCorner::typical, 100.0, v_below);
  const std::uint64_t sims_after_first = table.refiner_sims();
  EXPECT_GT(sims_after_first, 0u);

  // Against a dense reference that covers the point for real: anchors sit
  // on the same 20 mV pitch (extended downward from 1.10 V), so the values
  // must be close — and far from the clamped 1.10 V edge value.
  LutConfig wide;
  wide.vmin = 1.00;
  wide.vmax = 1.20;
  wide.temps = {100.0};
  wide.corners = {tech::ProcessCorner::typical};
  const DelayEnergyTable reference =
      DelayEnergyTable::build(sized_paper_bus(), driver, wide);
  const double d_ref = reference.delay(cls, tech::ProcessCorner::typical, 100.0, v_below);
  const double e_ref = reference.energy(cls, tech::ProcessCorner::typical, 100.0, v_below);
  ASSERT_TRUE(std::isfinite(d_ref));
  EXPECT_NEAR(d_below, d_ref, 0.10 * std::abs(d_ref));
  EXPECT_NEAR(e_below, e_ref, 0.10 * std::abs(e_ref));
  const double d_edge = table.delay(cls, tech::ProcessCorner::typical, 100.0, 1.10);
  EXPECT_GT(d_below, d_edge);  // lower supply really is slower, not clamped

  // Repeating the query (and its whole slice) reuses the cached anchors:
  // no new transient runs.
  const double d_again = table.delay(cls, tech::ProcessCorner::typical, 100.0, v_below);
  EXPECT_EQ(d_again, d_below);
  const TableSlice s = table.slice(tech::ProcessCorner::typical, 100.0, v_below);
  EXPECT_EQ(s.delay[cls], d_below);
  EXPECT_EQ(s.energy[cls], e_below);
  EXPECT_EQ(table.refiner_sims(), sims_after_first);

  if (prev)
    setenv("RAZORBUS_CACHE_DIR", prev_dir.c_str(), 1);
  else
    unsetenv("RAZORBUS_CACHE_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace razorbus::lut

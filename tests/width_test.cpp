// Width-generic datapath: 16-, 64- and 128-wire buses run end to end —
// characterise (shared width-independent tables), static sweep, closed-loop
// DVS — and the bit-parallel engine must match EngineMode::reference bit
// for bit at every width, exactly as the 32-wire parity suite demands
// (DESIGN.md §5/§10).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bus/businvert.hpp"
#include "bus/simulator.hpp"
#include "core/experiments.hpp"
#include "core/system.hpp"
#include "dvs/oracle.hpp"
#include "test_support.hpp"
#include "trace/io.hpp"
#include "trace/synthetic.hpp"

namespace razorbus {
namespace {

// One characterised system per width. The delay/energy tables depend only
// on the per-wire electrical design, so all widths share one cached build
// (the table hash excludes n_bits/shield_group).
const core::DvsBusSystem& system_at(int width) {
  static std::vector<std::unique_ptr<core::DvsBusSystem>> systems;
  static std::vector<int> widths;
  for (std::size_t i = 0; i < widths.size(); ++i)
    if (widths[i] == width) return *systems[i];
  interconnect::BusDesign design = interconnect::BusDesign::wide_bus(width);
  design.repeater_size = test_support::sized_paper_bus().repeater_size;
  core::SystemOptions options;
  options.lut_config = test_support::small_lut_config();
  systems.push_back(std::make_unique<core::DvsBusSystem>(design, options));
  widths.push_back(width);
  return *systems.back();
}

trace::Trace wide_trace(int width, std::size_t cycles, std::uint64_t seed,
                        trace::SyntheticStyle style = trace::SyntheticStyle::uniform) {
  trace::SyntheticConfig cfg;
  cfg.style = style;
  cfg.cycles = cycles;
  cfg.load_rate = 0.5;
  cfg.seed = seed;
  cfg.n_bits = width;
  return trace::generate_synthetic(cfg, "w" + std::to_string(width));
}

constexpr int kWidths[] = {16, 64, 128};

void expect_totals_identical(const bus::RunningTotals& a, const bus::RunningTotals& b,
                             const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.errors, b.errors) << what;
  EXPECT_EQ(a.shadow_failures, b.shadow_failures) << what;
  EXPECT_EQ(a.bus_energy, b.bus_energy) << what;
  EXPECT_EQ(a.overhead_energy, b.overhead_energy) << what;
}

TEST(Width, DesignAndClassifierAcceptWideBuses) {
  for (const int width : kWidths) {
    const interconnect::BusDesign design = interconnect::BusDesign::wide_bus(width);
    EXPECT_EQ(design.n_bits, width);
    EXPECT_NO_THROW(design.validate());
    const bus::WireClassifier classifier(design);
    EXPECT_EQ(classifier.n_bits(), width);
    EXPECT_EQ(classifier.bits_mask().popcount(), width);
  }
  EXPECT_THROW(interconnect::BusDesign::wide_bus(129), std::invalid_argument);
}

// The mask classifier must agree with the per-bit classifier on every wire
// at every width, including lane-boundary-straddling shield groups.
TEST(Width, MaskClassifierMatchesPerBitAtWideWidths) {
  for (const int width : kWidths) {
    interconnect::BusDesign design = interconnect::BusDesign::wide_bus(width);
    design.shield_group = 6;  // groups straddle the 64-bit lane boundary
    const bus::WireClassifier classifier(design);
    Rng rng(17);
    for (int trial = 0; trial < 500; ++trial) {
      const BusWord prev = BusWord::from_lanes(rng.next_u64(), rng.next_u64()) &
                           BusWord::mask_low(width);
      const BusWord cur = BusWord::from_lanes(rng.next_u64(), rng.next_u64()) &
                          BusWord::mask_low(width);
      const bus::ClassMaskSet s = classifier.masks(prev, cur);
      int mask_total = 0;
      bus::for_each_present_class(s, [&](int cls, const BusWord& mask) {
        for (int bit = 0; bit < BusWord::kMaxBits; ++bit)
          if (mask.test(bit)) {
            ASSERT_LT(bit, width) << "mask leaks past the bus width";
            ASSERT_EQ(classifier.classify(prev, cur, bit), cls) << "bit " << bit;
            ++mask_total;
          }
      });
      ASSERT_EQ(mask_total, width);
    }
  }
}

// Engine cross-check per width: bit-parallel (stepped AND batched) must be
// bit-identical to the reference engine, with and without jitter.
TEST(Width, EngineParityAtEveryWidth) {
  for (const int width : kWidths) {
    const auto& system = system_at(width);
    const tech::PvtCorner env{tech::ProcessCorner::slow, 100.0, 0.0};
    const trace::Trace trace = wide_trace(width, 1500, 0x5eedu + width);
    for (const double supply : {1.08, 1.14, 1.20}) {
      for (const double sigma : {0.0, 5e-12}) {
        bus::BusSimulator fast = system.make_simulator(env);
        bus::BusSimulator ref = system.make_simulator(env);
        bus::BusSimulator batched = system.make_simulator(env);
        ref.set_engine_mode(bus::EngineMode::reference);
        for (bus::BusSimulator* sim : {&fast, &ref, &batched}) {
          sim->set_supply(supply);
          if (sigma > 0.0) sim->set_timing_jitter(sigma, 0xabcdu);
        }
        for (std::size_t i = 0; i < trace.words.size(); ++i) {
          const bus::CycleResult f = fast.step(trace.words[i]);
          const bus::CycleResult r = ref.step(trace.words[i]);
          ASSERT_EQ(f.error, r.error) << width << " cycle " << i;
          ASSERT_EQ(f.shadow_failure, r.shadow_failure) << width << " cycle " << i;
          ASSERT_EQ(f.bus_energy, r.bus_energy) << width << " cycle " << i;
          ASSERT_EQ(f.worst_delay, r.worst_delay) << width << " cycle " << i;
        }
        Rng chunk(3);
        std::size_t i = 0;
        while (i < trace.words.size()) {
          const std::size_t n =
              std::min<std::size_t>(trace.words.size() - i, 1 + chunk.next_below(97));
          batched.run(trace.words.data() + i, n);
          i += n;
        }
        const std::string what =
            "width " + std::to_string(width) + " @" + std::to_string(supply);
        expect_totals_identical(fast.totals(), ref.totals(), what);
        expect_totals_identical(batched.totals(), ref.totals(), what + " [batched]");
      }
    }
  }
}

// At the marginal supply, a wide bus's error rate tracks the 32-wire bus's
// per-wire behaviour: the same shield-group structure just repeats. Sanity
// check: errors occur at low supply and vanish at nominal, at every width.
TEST(Width, ErrorOnsetBehavesAcrossWidths) {
  const tech::PvtCorner env{tech::ProcessCorner::slow, 100.0, 0.0};
  for (const int width : kWidths) {
    const auto& system = system_at(width);
    const trace::Trace trace = wide_trace(width, 2000, 7,
                                          trace::SyntheticStyle::worst_case);
    bus::BusSimulator low = system.make_simulator(env);
    low.set_supply(1.06);
    low.run(trace.words);
    EXPECT_GT(low.totals().errors, 0u) << "width " << width;
    bus::BusSimulator nom = system.make_simulator(env);
    nom.set_supply(1.20);
    nom.run(trace.words);
    EXPECT_EQ(nom.totals().errors, 0u) << "width " << width;
  }
}

// End to end: characterise -> static sweep -> closed-loop DVS at each
// width. The sweep's error rate must fall monotonically with supply and
// the closed loop must scale below nominal with bounded errors.
TEST(Width, EndToEndSweepAndClosedLoop) {
  const tech::PvtCorner env{tech::ProcessCorner::typical, 100.0, 0.0};
  for (const int width : kWidths) {
    const auto& system = system_at(width);
    const trace::Trace trace = wide_trace(width, 30000, 0xc0ffee + width);

    const core::StaticSweepResult sweep =
        core::static_voltage_sweep(system, env, {trace});
    ASSERT_GT(sweep.points.size(), 1u) << "width " << width;
    for (std::size_t i = 1; i < sweep.points.size(); ++i) {
      EXPECT_LE(sweep.points[i].error_rate, sweep.points[i - 1].error_rate + 1e-12)
          << "width " << width << " point " << i;
      EXPECT_GT(sweep.points[i].bus_energy, sweep.points[i - 1].bus_energy)
          << "width " << width << " point " << i;
    }
    EXPECT_EQ(sweep.points.back().error_rate, 0.0) << "nominal must be clean";

    core::DvsRunConfig cfg;
    cfg.controller.window_cycles = 2000;
    cfg.regulator_delay_cycles = 500;
    const core::DvsRunReport report = core::run_closed_loop(system, env, trace, cfg);
    EXPECT_EQ(report.totals.cycles, trace.words.size()) << "width " << width;
    EXPECT_EQ(report.totals.shadow_failures, 0u) << "width " << width;
    EXPECT_LT(report.average_supply, system.design().node.vdd_nominal)
        << "width " << width;
    EXPECT_GE(report.average_supply, report.floor_supply - 1e-9) << "width " << width;
    EXPECT_GT(report.energy_gain(), 0.0) << "width " << width;
    EXPECT_LT(report.error_rate(), 0.05) << "width " << width;
  }
}

// The oracle selector classifies wide transitions bit-parallel; its
// critical index must equal the max over per-wire classes.
TEST(Width, OracleCriticalIndexMatchesPerWire) {
  for (const int width : kWidths) {
    const auto& system = system_at(width);
    const tech::PvtCorner env{tech::ProcessCorner::typical, 100.0, 0.0};
    const dvs::OracleSelector oracle(system.design(), system.table(), env);
    const bus::WireClassifier classifier(system.design());
    Rng rng(29);
    for (int trial = 0; trial < 200; ++trial) {
      const BusWord prev = BusWord::from_lanes(rng.next_u64(), rng.next_u64()) &
                           BusWord::mask_low(width);
      const BusWord cur = BusWord::from_lanes(rng.next_u64(), rng.next_u64()) &
                          BusWord::mask_low(width);
      std::size_t expect = 0;
      for (int bit = 0; bit < width; ++bit)
        expect = std::max(expect,
                          oracle.class_critical_index()[static_cast<std::size_t>(
                              classifier.classify(prev, cur, bit))]);
      EXPECT_EQ(oracle.critical_grid_index(prev, cur), expect);
    }
  }
}

// A 32-bit CPU trace widened 2x/4x drives the 64-/128-wire buses end to
// end, and the trace file format round-trips the wide words (format v2).
TEST(Width, WidenedTracesRoundTripAndRun) {
  trace::SyntheticConfig cfg;
  cfg.cycles = 8000;
  cfg.load_rate = 0.8;
  cfg.seed = 77;
  const trace::Trace narrow = trace::generate_synthetic(cfg, "narrow");

  for (const int factor : {2, 4}) {
    const trace::Trace wide = trace::widen(narrow, factor);
    EXPECT_EQ(wide.n_bits, 32 * factor);
    EXPECT_EQ(wide.words.size(), narrow.words.size() / static_cast<std::size_t>(factor));
    // Lane content: word k of the packed trace carries words k*factor...
    for (int k : {0, 5, 100}) {
      for (int j = 0; j < factor; ++j) {
        const BusWord part =
            (wide.words[static_cast<std::size_t>(k)] >> (32 * j)) & 0xffffffffull;
        EXPECT_EQ(part,
                  narrow.words[static_cast<std::size_t>(k * factor + j)]);
      }
    }

    std::stringstream buffer;
    trace::save_binary(wide, buffer);
    const auto loaded = trace::load_binary(buffer);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->n_bits, wide.n_bits);
    EXPECT_EQ(loaded->words, wide.words);

    const auto& system = system_at(32 * factor);
    const core::DvsRunReport report = core::run_closed_loop(
        system, tech::PvtCorner{tech::ProcessCorner::typical, 100.0, 0.0}, wide);
    EXPECT_EQ(report.totals.cycles, wide.words.size());
  }
}

// Traces wider than the bus must be rejected loudly, not truncated.
TEST(Width, OverwideTraceRejected) {
  const trace::Trace wide = wide_trace(64, 100, 3);
  EXPECT_THROW(core::run_closed_loop(system_at(16), tech::typical_corner(), wide),
               std::invalid_argument);
}

}  // namespace
}  // namespace razorbus

#include <gtest/gtest.h>

#include "gatesim/dsff.hpp"
#include "gatesim/gatesim.hpp"
#include "util/units.hpp"

namespace razorbus::gatesim {
namespace {

// ---------------------------------------------------------------- gates

TEST(GateSim, CombinationalGatesEvaluate) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId o_and = nl.add_net("and");
  const NetId o_or = nl.add_net("or");
  const NetId o_xor = nl.add_net("xor");
  const NetId o_nand = nl.add_net("nand", true);  // !(0&0) = 1 initially
  const NetId o_inv = nl.add_net("inv", true);
  nl.add_gate(GateKind::and2, o_and, a, b);
  nl.add_gate(GateKind::or2, o_or, a, b);
  nl.add_gate(GateKind::xor2, o_xor, a, b);
  nl.add_gate(GateKind::nand2, o_nand, a, b);
  nl.add_gate(GateKind::inv, o_inv, a);

  Simulator sim(nl);
  sim.schedule(a, 100.0_ps, true);
  sim.schedule(b, 200.0_ps, true);
  sim.run(1.0_ns);
  EXPECT_TRUE(sim.value(o_and));
  EXPECT_TRUE(sim.value(o_or));
  EXPECT_FALSE(sim.value(o_xor));  // 1 ^ 1
  EXPECT_FALSE(sim.value(o_nand));
  EXPECT_FALSE(sim.value(o_inv));
  // Mid-simulation: only `a` high at 150 ps (+delay).
  EXPECT_TRUE(sim.value_at(o_xor, 180.0_ps));
}

TEST(GateSim, PropagationDelayRespected) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId o = nl.add_net("o");
  nl.add_gate(GateKind::buf, o, a, kNoNet, kNoNet, 25.0_ps);
  Simulator sim(nl);
  sim.schedule(a, 100.0_ps, true);
  sim.run(1.0_ns);
  ASSERT_EQ(sim.history(o).size(), 2u);  // initial + one rise
  EXPECT_NEAR(sim.history(o)[1].time, 125.0_ps, 1e-15);
}

TEST(GateSim, MuxSelects) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b", true);
  const NetId sel = nl.add_net("sel");
  const NetId o = nl.add_net("o");
  nl.add_gate(GateKind::mux2, o, a, b, sel);
  Simulator sim(nl);
  sim.run(50.0_ps);
  EXPECT_FALSE(sim.value(o));  // sel=0 -> a=0
  sim.schedule(sel, 100.0_ps, true);
  sim.run(200.0_ps);
  EXPECT_TRUE(sim.value(o));  // sel=1 -> b=1
}

TEST(GateSim, LatchTransparencyAndHold) {
  Netlist nl;
  const NetId d = nl.add_net("d");
  const NetId en = nl.add_net("en");
  const NetId q = nl.add_net("q");
  nl.add_gate(GateKind::latch, q, d, en);
  Simulator sim(nl);

  sim.schedule(en, 100.0_ps, true);   // open
  sim.schedule(d, 200.0_ps, true);    // q follows
  sim.schedule(en, 300.0_ps, false);  // close
  sim.schedule(d, 400.0_ps, false);   // must NOT propagate
  sim.run(1.0_ns);
  EXPECT_TRUE(sim.value(q));  // held the captured 1
  // While open it followed.
  EXPECT_TRUE(sim.value_at(q, 250.0_ps));
  EXPECT_FALSE(sim.value_at(q, 150.0_ps));
}

TEST(GateSim, LatchCapturesValuePresentAtClose) {
  Netlist nl;
  const NetId d = nl.add_net("d", true);
  const NetId en = nl.add_net("en", true);
  const NetId q = nl.add_net("q", true);
  nl.add_gate(GateKind::latch, q, d, en);
  Simulator sim(nl);
  sim.schedule(d, 90.0_ps, false);   // change just before close
  sim.schedule(en, 120.0_ps, false);
  sim.run(1.0_ns);
  EXPECT_FALSE(sim.value(q));
}

TEST(GateSim, Validation) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  EXPECT_THROW(nl.add_gate(GateKind::and2, a, a), std::invalid_argument);  // missing b
  EXPECT_THROW(nl.add_gate(GateKind::buf, 99, a), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateKind::buf, a, a, kNoNet, kNoNet, 0.0),
               std::invalid_argument);
  Simulator sim(nl);
  EXPECT_THROW(sim.schedule(99, 0.0, true), std::invalid_argument);
  EXPECT_THROW(sim.schedule_clock(a, 0.0, 0.0, 1.0), std::invalid_argument);
}

// --------------------------------------------------- double-sampling flop

class DsffTest : public ::testing::Test {
 protected:
  static constexpr double kPeriod = 666.7e-12;     // 1.5 GHz
  static constexpr double kShadowDelay = 222.2e-12;  // 33% of the cycle
  static constexpr double kFirstRise = 1.0e-9;

  DsffTest() : nets_(build_dsff(netlist_)), sim_(netlist_) {
    drive_dsff_clocks(sim_, nets_, kPeriod, kShadowDelay, 12.0e-9, kFirstRise);
  }

  // Time of the n-th rising clock edge (n = 0 for the first).
  static double edge(int n) { return kFirstRise + n * kPeriod; }

  Netlist netlist_;
  DsffNets nets_;
  Simulator sim_;
};

TEST_F(DsffTest, CleanCaptureWhenSetupMet) {
  // D rises well before the second edge.
  sim_.schedule(nets_.d, edge(1) - 300.0_ps, true);
  sim_.run(edge(2) - 50.0_ps);
  EXPECT_TRUE(sim_.value(nets_.q));
  EXPECT_TRUE(sim_.value(nets_.shadow));
  EXPECT_FALSE(sim_.value(nets_.error_l));
}

TEST_F(DsffTest, LateArrivalRaisesErrorAndShadowIsCorrect) {
  // D rises 100 ps AFTER the second edge: the main path misses it, the
  // shadow latch (still open for 222 ps) catches it.
  sim_.schedule(nets_.d, edge(1) + 100.0_ps, true);
  sim_.run(edge(1) + kShadowDelay + 60.0_ps);
  EXPECT_TRUE(sim_.value(nets_.shadow));   // correct value
  EXPECT_TRUE(sim_.value(nets_.error_l));  // Q != shadow -> error flagged
}

TEST_F(DsffTest, RestoreCompletesByTheNextEdge) {
  sim_.schedule(nets_.d, edge(1) + 100.0_ps, true);
  // Run through the recovery cycle: after the NEXT rising edge the slave
  // must publish the restored (shadow) value and the error must clear.
  sim_.run(edge(2) + 100.0_ps);
  EXPECT_TRUE(sim_.value(nets_.q));
  EXPECT_FALSE(sim_.value(nets_.error_l));
}

TEST_F(DsffTest, ArrivalAfterShadowWindowIsMissedByBoth) {
  // D rises after the delayed clock closed: this cycle's samples both hold
  // the old value — the silent-corruption case the voltage floor forbids.
  sim_.schedule(nets_.d, edge(1) + kShadowDelay + 80.0_ps, true);
  sim_.run(edge(1) + kPeriod / 2.0 - 20.0_ps);  // before clk falls
  EXPECT_FALSE(sim_.value(nets_.q));
  EXPECT_FALSE(sim_.value(nets_.shadow));
  EXPECT_FALSE(sim_.value(nets_.error_l));  // agreement on the WRONG value
}

TEST_F(DsffTest, BackToBackCleanTransitionsNeverRaiseError) {
  // Alternate D each cycle with comfortable setup.
  for (int cycle = 1; cycle <= 10; ++cycle)
    sim_.schedule(nets_.d, edge(cycle) - 250.0_ps, cycle % 2 == 1);
  for (int cycle = 1; cycle <= 10; ++cycle) {
    sim_.run(edge(cycle) + kShadowDelay + 80.0_ps);
    EXPECT_FALSE(sim_.value(nets_.error_l)) << "cycle " << cycle;
    EXPECT_EQ(sim_.value(nets_.q), cycle % 2 == 1) << "cycle " << cycle;
  }
}

TEST_F(DsffTest, BehaviouralModelAgreesWithGateLevel) {
  // Cross-validation: sweep the arrival offset and compare the gate-level
  // flop's outcome with the behavioural razor::DoubleSamplingFlop contract:
  // before the edge -> clean; within the shadow window -> error+restore.
  struct Case {
    double offset;  // relative to edge(1)
    bool expect_error;
  };
  for (const Case c : {Case{-200.0_ps, false}, Case{-80.0_ps, false},
                       Case{+60.0_ps, true}, Case{+180.0_ps, true}}) {
    Netlist nl;
    const DsffNets nets = build_dsff(nl);
    Simulator sim(nl);
    drive_dsff_clocks(sim, nets, kPeriod, kShadowDelay, 8.0e-9, kFirstRise);
    sim.schedule(nets.d, edge(1) + c.offset, true);
    sim.run(edge(1) + kShadowDelay + 60.0_ps);
    EXPECT_EQ(sim.value(nets.error_l), c.expect_error) << "offset " << c.offset;
    EXPECT_TRUE(sim.value(nets.shadow)) << "offset " << c.offset;
    // Either way the value is recovered by the next edge.
    sim.run(edge(2) + 100.0_ps);
    EXPECT_TRUE(sim.value(nets.q)) << "offset " << c.offset;
    EXPECT_FALSE(sim.value(nets.error_l)) << "offset " << c.offset;
  }
}

}  // namespace
}  // namespace razorbus::gatesim

// razorlint fixture: iterating an ORDERED map and point lookups into an
// unordered one are both clean. Never compiled; lint input only.
#include <map>
#include <string>
#include <unordered_map>

double sum_sorted(const std::map<std::string, double>& weights) {
  double acc = 0.0;
  for (const auto& [key, w] : weights) acc += w;
  return acc;
}

int lookup(const std::unordered_map<int, int>& histogram, int key) {
  const auto it = histogram.find(key);
  return it == histogram.end() ? 0 : it->second;
}

// razorlint fixture: legal include edges, linted as a src/razor/ file —
// its own layer plus the lut/tech/util layers below it; angle includes are
// never layer edges. Never compiled; lint input only.
#include <vector>

#include "lut/table.hpp"
#include "razor/flop.hpp"
#include "tech/corner.hpp"
#include "util/rng.hpp"

int never_compiled();

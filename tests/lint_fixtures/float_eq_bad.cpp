// razorlint fixture: raw floating-point ==/!= against literals must fire.
// Never compiled; lint input only (see tests/lint_test.cpp).
bool near_zero(double x) { return x == 0.0; }
bool not_half(double x) { return 0.5 != x; }
bool negated(double x) { return x == -1.0; }

// razorlint fixture: the seeded util Rng idiom, member calls named rand,
// and a justified allow() are all clean. Never compiled; lint input only.
#include <cstdint>
#include <random>

struct Rng {
  std::uint64_t next_u64();
  int rand();
};

std::uint64_t draw(Rng& rng) { return rng.next_u64(); }
int member_named_rand(Rng& r) { return r.rand(); }

// razorlint: allow(no-raw-random): naming entropy for a temp-file suffix,
// never a simulation draw — results are identical whatever it yields.
unsigned entropy_token() { return std::random_device{}(); }

// razorlint fixture: std:: engines, std::random_device and C rand() must
// fire. Never compiled; lint input only.
#include <cstdlib>
#include <random>

int draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
unsigned seed_entropy() {
  std::random_device rd;
  return rd();
}
int legacy() { return rand(); }

// razorlint fixture: integer compares, the tolerance idiom, and a justified
// allow() are all clean. Never compiled; lint input only.
#include <cmath>

bool eq_int(int a, int b) { return a == b; }
bool close(double a, double b) { return std::fabs(a - b) < 1e-9; }

// razorlint: allow(float-eq): exact sentinel — 0.0 is assigned, never computed.
bool is_unset(double x) { return x == 0.0; }

// razorlint fixture: range-for over an unordered container feeds hash-order
// into downstream state — must fire. Never compiled; lint input only.
#include <string>
#include <unordered_map>

double sum_hash_order(const std::unordered_map<std::string, double>& weights) {
  double acc = 0.0;
  for (const auto& [key, w] : weights) acc += w;
  return acc;
}

// razorlint fixture: mutable statics in library code (linted under a src/
// virtual path) must fire in all three shapes — function-local static,
// namespace-scope thread_local, class-scope static data member.
// Never compiled; lint input only.
int counter() {
  static int calls = 0;
  return ++calls;
}

thread_local int t_scratch = 0;

struct Registry {
  static int live_count;
};

// razorlint fixture: methods NAMED clock/time (declarations and member
// calls) are the simulator's own accessors, not wall clocks — clean.
// Never compiled; lint input only.
struct Bank {
  int clock(int cycle);  // declaration: the return type precedes the name
  int time(int cycle);
};

int poll(Bank& b) { return b.clock(0) + b.time(1); }
int poll_ptr(Bank* b) { return b->clock(2); }

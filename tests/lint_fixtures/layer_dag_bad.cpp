// razorlint fixture: forbidden include edges, linted as a src/util/ file.
// util sits at the bottom of the layer DAG and may include nothing above
// itself; an unprefixed quoted include and a non-layer target also fire.
// Never compiled; lint input only.
#include "bus/simulator.hpp"
#include "support.hpp"
#include "vendor/widget.hpp"

int never_compiled();

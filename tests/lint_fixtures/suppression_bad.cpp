// razorlint fixture: malformed allow() comments are themselves diagnostics
// (rule "suppression") and suppress nothing. Never compiled; lint input only.
// razorlint: allow(float-eq):
bool unjustified(double x) { return x == 0.0; }

// razorlint: allow(not-a-rule): this rule name does not exist.
int unknown_rule();

// razorlint fixture: wall-clock reads must fire (chrono clock types, the C
// library time()/clock() calls). Never compiled; lint input only.
#include <chrono>
#include <ctime>

long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
long now_s() { return time(nullptr); }
long ticks() { return clock(); }

// razorlint fixture: constants in every spelling plus a justified allow()
// are clean under a src/ virtual path. Never compiled; lint input only.
int compute();

constexpr double kScale = 1.25;
const char* const kName = "razorbus";
static const int kTableSize = 64;

struct Codec {
  static constexpr int kWidth = 32;
};

int with_allow() {
  // razorlint: allow(no-mutable-static): memoised pure value — identical on
  // every call, so sharing it across shards cannot change results.
  static int cached = compute();
  return cached;
}

#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/bus_design.hpp"
#include "interconnect/elmore.hpp"
#include "interconnect/geometry.hpp"
#include "interconnect/rc_builder.hpp"
#include "tech/device.hpp"
#include "util/units.hpp"

namespace razorbus::interconnect {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Geometry, PaperWireParasiticsInPlausibleRange) {
  const WireParasitics p =
      extract_parasitics(WireGeometry::from_node(tech::node_130nm()));
  // Global-layer 0.4 um Cu wire: tens of ohm/mm.
  EXPECT_GT(p.r_per_m, 20e3);
  EXPECT_LT(p.r_per_m, 200e3);
  // Total capacitance around 0.15-0.35 fF/um.
  const double c_total = p.cg_per_m + 2.0 * p.cc_per_m;
  EXPECT_GT(c_total, 0.10e-9);
  EXPECT_LT(c_total, 0.50e-9);
  EXPECT_GT(p.cc_to_cg_ratio(), 0.2);
}

TEST(Geometry, CouplingGrowsAsSpacingShrinks) {
  WireGeometry g = WireGeometry::from_node(tech::node_130nm());
  const double cc_wide = extract_parasitics(g).cc_per_m;
  g.spacing *= 0.5;
  const double cc_tight = extract_parasitics(g).cc_per_m;
  EXPECT_GT(cc_tight, 1.5 * cc_wide);
}

TEST(Geometry, GroundCapGrowsWithWidth) {
  WireGeometry g = WireGeometry::from_node(tech::node_130nm());
  const double cg_narrow = extract_parasitics(g).cg_per_m;
  g.width *= 2.0;
  const double cg_wide = extract_parasitics(g).cg_per_m;
  EXPECT_GT(cg_wide, cg_narrow);
}

TEST(Geometry, ResistanceFollowsCrossSection) {
  WireGeometry g = WireGeometry::from_node(tech::node_130nm());
  const double r0 = extract_parasitics(g).r_per_m;
  g.width *= 2.0;
  EXPECT_NEAR(extract_parasitics(g).r_per_m, r0 / 2.0, r0 * 1e-9);
}

TEST(Geometry, RejectsNonPositiveDimensions) {
  WireGeometry g = WireGeometry::from_node(tech::node_130nm());
  g.width = 0.0;
  EXPECT_THROW(extract_parasitics(g), std::invalid_argument);
}

// The Section 6 transform: Cc/Cg ratio x1.95, worst-case load and R constant.
TEST(Geometry, CouplingRatioTransformInvariants) {
  const WireParasitics p =
      extract_parasitics(WireGeometry::from_node(tech::node_130nm()));
  const WireParasitics q = scale_coupling_ratio(p, 1.95);
  EXPECT_NEAR(q.cc_to_cg_ratio(), 1.95 * p.cc_to_cg_ratio(), 1e-12);
  EXPECT_NEAR(q.worst_case_c_per_m(), p.worst_case_c_per_m(), 1e-20);
  EXPECT_DOUBLE_EQ(q.r_per_m, p.r_per_m);
  // Best-case (both neighbors in-phase) load DROPS: that is the whole point.
  EXPECT_LT(q.cg_per_m, p.cg_per_m);
}

TEST(Geometry, CouplingRatioIdentityAtOne) {
  const WireParasitics p =
      extract_parasitics(WireGeometry::from_node(tech::node_130nm()));
  const WireParasitics q = scale_coupling_ratio(p, 1.0);
  EXPECT_NEAR(q.cg_per_m, p.cg_per_m, 1e-20);
  EXPECT_NEAR(q.cc_per_m, p.cc_per_m, 1e-20);
}

TEST(Geometry, CouplingRatioRejectsNonPositive) {
  const WireParasitics p =
      extract_parasitics(WireGeometry::from_node(tech::node_130nm()));
  EXPECT_THROW(scale_coupling_ratio(p, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------- Elmore

TEST(Elmore, PaperEquationOne) {
  // t = R (Cg + 4 Cc) for the worst-case pattern.
  EXPECT_DOUBLE_EQ(pattern_worst_delay(100.0, 1e-12, 2e-12), 100.0 * 9e-12);
}

TEST(Elmore, PaperEquationTwo) {
  // Delta t per Miller step = R * Cc.
  EXPECT_DOUBLE_EQ(pattern_delay_step(100.0, 2e-12), 2e-10);
}

TEST(Elmore, SwitchedCapacitanceMillerFactors) {
  const WireParasitics p{60e3, 0.1e-9, 0.07e-9};
  // Both in phase: Cg only.
  EXPECT_DOUBLE_EQ(switched_capacitance_per_m(p, 0, 0), p.cg_per_m);
  // Both quiet: Cg + 2 Cc.
  EXPECT_DOUBLE_EQ(switched_capacitance_per_m(p, 1, 1), p.cg_per_m + 2.0 * p.cc_per_m);
  // Both opposing: Cg + 4 Cc (eq. 1).
  EXPECT_DOUBLE_EQ(switched_capacitance_per_m(p, 2, 2), p.cg_per_m + 4.0 * p.cc_per_m);
}

TEST(Elmore, StageDelayMonotonicInLoad) {
  const double base = stage_elmore_delay(300.0, 50e-15, 90.0, 500e-15, 100e-15);
  const double more_load = stage_elmore_delay(300.0, 50e-15, 90.0, 500e-15, 200e-15);
  EXPECT_GT(more_load, base);
}

TEST(Elmore, RepeatedLineScalesWithSegments) {
  const double one =
      repeated_line_delay(300.0, 50e-15, 120e-15, 90.0, 500e-15, 10e-15, 1);
  const double four =
      repeated_line_delay(300.0, 50e-15, 120e-15, 90.0, 500e-15, 10e-15, 4);
  EXPECT_GT(four, 3.0 * one);
  EXPECT_LT(four, 5.0 * one);
  EXPECT_THROW(repeated_line_delay(300.0, 50e-15, 120e-15, 90.0, 500e-15, 10e-15, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------- bus design

TEST(BusDesign, PaperTimingBudget) {
  const BusDesign bus = BusDesign::paper_bus();
  EXPECT_NEAR(to_ps(bus.clock_period()), 666.7, 0.1);   // 1.5 GHz
  EXPECT_NEAR(to_ps(bus.main_capture_limit()), 600.0, 0.1);  // 10% slack
  EXPECT_NEAR(to_ps(bus.shadow_capture_limit()), 822.2, 0.5);  // +33% of cycle
  EXPECT_NEAR(to_mm(bus.segment_length()), 1.5, 1e-9);  // repeater every 1.5 mm
}

TEST(BusDesign, ShieldEveryFourWires) {
  const BusDesign bus = BusDesign::paper_bus();
  // Group layout: [shield] w0 w1 w2 w3 [shield] w4 ... (Fig. 3).
  EXPECT_EQ(bus.left_neighbor(0), NeighborKind::shield);
  EXPECT_EQ(bus.right_neighbor(0), NeighborKind::signal);
  EXPECT_EQ(bus.left_neighbor(1), NeighborKind::signal);
  EXPECT_EQ(bus.right_neighbor(3), NeighborKind::shield);
  EXPECT_EQ(bus.left_neighbor(4), NeighborKind::shield);
  EXPECT_EQ(bus.right_neighbor(31), NeighborKind::shield);
  EXPECT_THROW(bus.left_neighbor(32), std::out_of_range);
  EXPECT_THROW(bus.right_neighbor(-1), std::out_of_range);
}

TEST(BusDesign, TrackCountIncludesShields) {
  const BusDesign bus = BusDesign::paper_bus();
  // 32 signals + 8 group shields + 1 leading shield.
  EXPECT_EQ(bus.total_tracks(), 41);
}

TEST(BusDesign, ModifiedBusKeepsWorstCaseLoad) {
  const BusDesign original = BusDesign::paper_bus();
  const BusDesign modified = BusDesign::modified_bus(1.95);
  EXPECT_NEAR(modified.parasitics.worst_case_c_per_m(),
              original.parasitics.worst_case_c_per_m(), 1e-20);
  EXPECT_NEAR(modified.parasitics.cc_to_cg_ratio(),
              1.95 * original.parasitics.cc_to_cg_ratio(), 1e-9);
}

TEST(BusDesign, ValidateCatchesInconsistencies) {
  BusDesign bus = BusDesign::paper_bus();
  bus.n_bits = 0;
  EXPECT_THROW(bus.validate(), std::invalid_argument);
  bus = BusDesign::paper_bus();
  bus.shadow_delay_fraction = 1.5;
  EXPECT_THROW(bus.validate(), std::invalid_argument);
  bus = BusDesign::paper_bus();
  bus.parasitics.cc_per_m = 0.0;
  EXPECT_THROW(bus.validate(), std::invalid_argument);
}

TEST(BusDesign, ScaledBusUsesNodeGeometry) {
  const BusDesign b90 = BusDesign::scaled_bus(tech::node_90nm());
  const BusDesign b130 = BusDesign::paper_bus();
  EXPECT_GT(b90.parasitics.r_per_m, b130.parasitics.r_per_m);
}

// ---------------------------------------------------------------- cluster

class ClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bus_ = new BusDesign(BusDesign::paper_bus());
    driver_ = new tech::DriverModel(bus_->node);
    size_repeaters(*bus_, *driver_, tech::worst_case_corner());
    characterizer_ = new ClusterCharacterizer(*bus_, *driver_);
  }
  static void TearDownTestSuite() {
    delete characterizer_;
    delete driver_;
    delete bus_;
    characterizer_ = nullptr;
    driver_ = nullptr;
    bus_ = nullptr;
  }

  static BusDesign* bus_;
  static tech::DriverModel* driver_;
  static ClusterCharacterizer* characterizer_;
};

BusDesign* ClusterTest::bus_ = nullptr;
tech::DriverModel* ClusterTest::driver_ = nullptr;
ClusterCharacterizer* ClusterTest::characterizer_ = nullptr;

TEST_F(ClusterTest, SizingHitsThePaperTarget) {
  // Worst pattern, worst corner, nominal supply net of IR drop -> 600 ps.
  const auto corner = tech::worst_case_corner();
  const double d = characterizer_->worst_case_delay(corner.effective_supply(1.2),
                                                    corner.process, corner.temp_c);
  EXPECT_NEAR(to_ps(d), to_ps(bus_->main_capture_limit()), 6.0);  // within 1%
}

TEST_F(ClusterTest, MillerOrderingOfPatternDelays) {
  // Delay must increase with the aggressors' opposition.
  auto delay_for = [&](WireActivity l, WireActivity r) {
    ClusterSpec spec;
    spec.victim = WireActivity::rise;
    spec.left = l;
    spec.right = r;
    spec.vdd = 1.2;
    spec.corner = tech::ProcessCorner::typical;
    spec.temp_c = 100.0;
    return characterizer_->run(spec).delay;
  };
  const double both_same = delay_for(WireActivity::rise, WireActivity::rise);
  const double quiet = delay_for(WireActivity::hold, WireActivity::hold);
  const double one_opposing = delay_for(WireActivity::fall, WireActivity::hold);
  const double both_opposing = delay_for(WireActivity::fall, WireActivity::fall);
  EXPECT_LT(both_same, quiet);
  EXPECT_LT(quiet, one_opposing);
  EXPECT_LT(one_opposing, both_opposing);
}

TEST_F(ClusterTest, ShieldBehavesLikeQuietNeighbor) {
  auto delay_for = [&](WireActivity l, WireActivity r) {
    ClusterSpec spec;
    spec.victim = WireActivity::rise;
    spec.left = l;
    spec.right = r;
    spec.vdd = 1.2;
    spec.corner = tech::ProcessCorner::typical;
    spec.temp_c = 100.0;
    return characterizer_->run(spec).delay;
  };
  const double shield = delay_for(WireActivity::shield, WireActivity::shield);
  const double hold = delay_for(WireActivity::hold, WireActivity::hold);
  // A shield is a stiffer "quiet neighbor" (tied to the rail, not through a
  // driver), so it should be at least as fast, and close.
  EXPECT_LE(shield, hold * 1.05);
  EXPECT_GT(shield, hold * 0.7);
}

TEST_F(ClusterTest, DelayGrowsAsSupplyDrops) {
  double prev = 0.0;
  for (double v : {1.2, 1.1, 1.0, 0.9}) {
    const double d =
        characterizer_->worst_case_delay(v, tech::ProcessCorner::typical, 100.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST_F(ClusterTest, NeighborSymmetry) {
  ClusterSpec a;
  a.victim = WireActivity::rise;
  a.left = WireActivity::fall;
  a.right = WireActivity::hold;
  a.vdd = 1.1;
  a.corner = tech::ProcessCorner::typical;
  a.temp_c = 100.0;
  ClusterSpec b = a;
  std::swap(b.left, b.right);
  EXPECT_NEAR(characterizer_->run(a).delay, characterizer_->run(b).delay, 1.5e-12);
}

TEST_F(ClusterTest, RiseAndFallDelaysMatchForSymmetricDrivers) {
  ClusterSpec rise;
  rise.victim = WireActivity::rise;
  rise.left = WireActivity::fall;
  rise.right = WireActivity::fall;
  rise.vdd = 1.1;
  rise.corner = tech::ProcessCorner::typical;
  rise.temp_c = 100.0;
  ClusterSpec fall = rise;
  fall.victim = WireActivity::fall;
  fall.left = WireActivity::rise;
  fall.right = WireActivity::rise;
  EXPECT_NEAR(characterizer_->run(rise).delay, characterizer_->run(fall).delay, 2e-12);
}

TEST_F(ClusterTest, RisingVictimDrawsFullSwingEnergy) {
  ClusterSpec spec;
  spec.victim = WireActivity::rise;
  spec.left = WireActivity::hold;
  spec.right = WireActivity::hold;
  spec.vdd = 1.2;
  spec.corner = tech::ProcessCorner::typical;
  spec.temp_c = 100.0;
  const ClusterResult r = characterizer_->run(spec);
  EXPECT_TRUE(r.settled);
  // Roughly C_wire * V^2 for 6 mm at ~0.25 fF/um effective: order 1-4 pJ.
  EXPECT_GT(r.victim_energy, 0.5e-12);
  EXPECT_LT(r.victim_energy, 8e-12);
}

TEST_F(ClusterTest, HeldVictimDrawsLittleEnergy) {
  ClusterSpec spec;
  spec.victim = WireActivity::hold_high;  // held high: recharges droop
  spec.left = WireActivity::fall;
  spec.right = WireActivity::fall;
  spec.vdd = 1.2;
  spec.corner = tech::ProcessCorner::typical;
  spec.temp_c = 100.0;
  const ClusterResult held = characterizer_->run(spec);
  EXPECT_LT(held.delay, 0.0);  // no victim transition -> no delay

  ClusterSpec swing = spec;
  swing.victim = WireActivity::rise;
  const ClusterResult full = characterizer_->run(swing);
  EXPECT_LT(held.victim_energy, 0.5 * full.victim_energy);
}

TEST_F(ClusterTest, EnergyDropsWithSupply) {
  auto energy_at = [&](double v) {
    ClusterSpec spec;
    spec.victim = WireActivity::rise;
    spec.left = WireActivity::hold;
    spec.right = WireActivity::hold;
    spec.vdd = v;
    spec.corner = tech::ProcessCorner::typical;
    spec.temp_c = 100.0;
    return characterizer_->run(spec).victim_energy;
  };
  const double e_nom = energy_at(1.2);
  const double e_low = energy_at(0.9);
  // Approximately quadratic: (0.9/1.2)^2 = 0.5625.
  EXPECT_NEAR(e_low / e_nom, 0.5625, 0.08);
}

TEST_F(ClusterTest, VictimShieldRejected) {
  ClusterSpec spec;
  spec.victim = WireActivity::shield;
  EXPECT_THROW(characterizer_->run(spec), std::invalid_argument);
}

TEST_F(ClusterTest, ModifiedBusImprovesTypicalPatternsOnly) {
  BusDesign modified = BusDesign::modified_bus(1.95);
  modified.repeater_size = bus_->repeater_size;  // same repeaters (same worst delay)
  const ClusterCharacterizer chr(modified, *driver_);

  const double worst_orig =
      characterizer_->worst_case_delay(1.2, tech::ProcessCorner::typical, 100.0);
  const double worst_mod = chr.worst_case_delay(1.2, tech::ProcessCorner::typical, 100.0);
  EXPECT_NEAR(worst_mod, worst_orig, 0.04 * worst_orig);  // unchanged worst case

  const double best_orig =
      characterizer_->best_case_delay(1.2, tech::ProcessCorner::typical, 100.0);
  const double best_mod = chr.best_case_delay(1.2, tech::ProcessCorner::typical, 100.0);
  EXPECT_LT(best_mod, 0.92 * best_orig);  // typical case clearly faster
}

TEST(SizeRepeaters, ThrowsWhenUnsized) {
  const BusDesign bus = BusDesign::paper_bus();  // repeater_size unset
  const tech::DriverModel driver(bus.node);
  EXPECT_THROW(ClusterCharacterizer(bus, driver), std::invalid_argument);
}

TEST(SizeRepeaters, InfeasibleTargetThrows) {
  BusDesign bus = BusDesign::paper_bus();
  bus.clock_freq = 40e9;  // 25 ps period: impossible for a 6 mm wire
  const tech::DriverModel driver(bus.node);
  EXPECT_THROW(size_repeaters(bus, driver, tech::worst_case_corner()),
               std::runtime_error);
}

}  // namespace
}  // namespace razorbus::interconnect

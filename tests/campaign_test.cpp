// Scenario-campaign subsystem (DESIGN.md §11).
//
// Two layers under test:
//  * core::ScenarioSpec / CampaignSpec — strict JSON parsing (unknown key,
//    wrong type, out-of-range width all throw), to_json round trips, and
//    the scenarios x widths x controllers cross-product expansion.
//  * The campaign runner end to end — the acceptance contract that a
//    campaign job referencing a registered bench produces a report
//    byte-identical to the standalone binary's (modulo wall-clock fields),
//    and that a finished campaign resumes from its result files. These
//    spawn the sibling binaries from the build directory, like CI does.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/scenario_spec.hpp"
#include "util/json.hpp"

namespace razorbus {
namespace {

core::ScenarioSpec parse_scenario(const std::string& text) {
  return core::ScenarioSpec::from_json(Json::parse(text));
}

core::CampaignSpec parse_campaign(const std::string& text) {
  return core::CampaignSpec::from_json(Json::parse(text));
}

// ------------------------------------------------------------ spec parsing

TEST(ScenarioSpec, BenchShorthandAndObjectForms) {
  const core::ScenarioSpec shorthand = parse_scenario("\"fig4_voltage_sweep\"");
  EXPECT_EQ(shorthand.kind, core::ScenarioSpec::Kind::bench);
  EXPECT_EQ(shorthand.bench, "fig4_voltage_sweep");
  EXPECT_EQ(shorthand.name, "fig4_voltage_sweep");

  const core::ScenarioSpec full = parse_scenario(
      R"({"bench": "fig8_dvs_trace", "cycles": 20000, "threads": 1,
          "flags": {"max_rows": 16}})");
  EXPECT_EQ(full.kind, core::ScenarioSpec::Kind::bench);
  EXPECT_EQ(full.cycles, 20000u);
  EXPECT_EQ(full.threads, 1u);
  ASSERT_EQ(full.flags.size(), 1u);
  EXPECT_EQ(full.flags[0].first, "max_rows");
  EXPECT_EQ(full.flags[0].second, "16");
}

TEST(ScenarioSpec, DeclarativeClosedLoopParses) {
  const core::ScenarioSpec spec = parse_scenario(
      R"({"name": "uniform_dvs", "experiment": "closed_loop",
          "trace": {"source": "synthetic", "style": "pointer_like",
                    "load_rate": 0.7, "seed": 42},
          "widths": [16, 64], "controllers": ["threshold", "fixed_vs"],
          "corners": ["typical", "worst"], "engine": "reference",
          "encoding": "bus_invert", "cycles": 50000})");
  EXPECT_EQ(spec.kind, core::ScenarioSpec::Kind::closed_loop);
  EXPECT_EQ(spec.trace.style, trace::SyntheticStyle::pointer_like);
  EXPECT_DOUBLE_EQ(spec.trace.load_rate, 0.7);
  EXPECT_EQ(spec.trace.seed, 42u);
  EXPECT_EQ(spec.widths, (std::vector<int>{16, 64}));
  ASSERT_EQ(spec.controllers.size(), 2u);
  EXPECT_EQ(spec.controllers[0].kind, dvs::ControllerKind::threshold);
  EXPECT_EQ(spec.controllers[1].kind, dvs::ControllerKind::fixed_vs);
  ASSERT_EQ(spec.corners.size(), 2u);
  EXPECT_EQ(spec.corners[1], tech::worst_case_corner());
  EXPECT_EQ(spec.engine, bus::EngineMode::reference);
  EXPECT_TRUE(spec.bus_invert);
}

// "simd" selects the multi-point batch engine for the job's point loops
// (DESIGN.md §13); anything else but the three engine names is rejected
// before characterization starts.
TEST(ScenarioSpec, SimdEngineParses) {
  const core::ScenarioSpec spec = parse_scenario(
      R"({"name": "sweep_simd", "experiment": "static_sweep",
          "engine": "simd", "stream": true})");
  EXPECT_EQ(spec.engine, bus::EngineMode::simd);
  EXPECT_TRUE(spec.stream);
  const core::ScenarioSpec back = core::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back.engine, bus::EngineMode::simd);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "static_sweep",
                                  "engine": "vector"})"),
               std::invalid_argument);
}

TEST(ScenarioSpec, ControllerTuningKnobs) {
  const core::ScenarioSpec spec = parse_scenario(
      R"({"name": "tuned", "experiment": "closed_loop",
          "controllers": [{"kind": "threshold", "low": 0.005, "high": 0.01,
                           "window": 2000},
                          {"kind": "proportional", "gain": 6.0}]})");
  ASSERT_EQ(spec.controllers.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.controllers[0].threshold.low_threshold, 0.005);
  EXPECT_DOUBLE_EQ(spec.controllers[0].threshold.high_threshold, 0.01);
  EXPECT_EQ(spec.controllers[0].threshold.window_cycles, 2000u);
  EXPECT_DOUBLE_EQ(spec.controllers[1].proportional.gain, 6.0);
}

// The malformed-spec error paths the loader must catch BEFORE any
// characterization work starts.
TEST(ScenarioSpec, MalformedSpecsThrow) {
  // Unknown key (typo'd "cycels").
  EXPECT_THROW(parse_scenario(R"({"bench": "fig4_voltage_sweep", "cycels": 10})"),
               std::invalid_argument);
  // Wrong type.
  EXPECT_THROW(parse_scenario(R"({"bench": "fig4_voltage_sweep", "cycles": "many"})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "widths": ["wide"]})"),
               std::invalid_argument);
  // Runner-owned flags cannot be shadowed through "flags".
  EXPECT_THROW(parse_scenario(R"({"bench": "fig4_voltage_sweep",
                                  "flags": {"json": "elsewhere.json"}})"),
               std::invalid_argument);
  // Negative cycle budgets must not wrap to a huge std::size_t.
  EXPECT_THROW(parse_scenario(R"({"bench": "fig4_voltage_sweep", "cycles": -1})"),
               std::invalid_argument);
  EXPECT_THROW(parse_campaign(R"({"name": "x", "defaults": {"cycles": -5},
                                  "scenarios": ["engine"]})"),
               std::invalid_argument);
  // Out-of-range widths (BusWord holds 1..128 wires).
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "widths": [0]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "widths": [256]})"),
               std::invalid_argument);
  // Neither bench nor experiment / both at once.
  EXPECT_THROW(parse_scenario(R"({"name": "x"})"), std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "bench": "engine",
                                  "experiment": "closed_loop"})"),
               std::invalid_argument);
  // Unknown enum values.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "warp_speed"})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "controllers": ["pid"]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "trace": {"source": "synthetic", "style": "plaid"}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "corners": ["mars"]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "encoding": "gray"})"),
               std::invalid_argument);
  // controllers on a static sweep (closed-loop-only axis).
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "static_sweep",
                                  "controllers": ["threshold"]})"),
               std::invalid_argument);
  // Names become file names / subprocess args: shell metachars rejected.
  EXPECT_THROW(parse_scenario(R"({"name": "rm -rf", "experiment": "closed_loop"})"),
               std::invalid_argument);
  // Trace sources with missing required fields.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "trace": {"source": "file"}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "trace": {"source": "benchmark"}})"),
               std::invalid_argument);
}

TEST(CampaignSpec, ParsesDefaultsAndRejectsEmpty) {
  const core::CampaignSpec campaign = parse_campaign(
      R"({"name": "quick", "defaults": {"cycles": 20000, "threads": 2},
          "scenarios": ["fig4_voltage_sweep"]})");
  EXPECT_EQ(campaign.default_cycles, 20000u);
  EXPECT_EQ(campaign.default_threads, 2u);
  ASSERT_EQ(campaign.scenarios.size(), 1u);

  EXPECT_THROW(parse_campaign(R"({"name": "empty", "scenarios": []})"),
               std::invalid_argument);
  EXPECT_THROW(parse_campaign(R"({"name": "x", "scenarios": ["engine"], "typo": 1})"),
               std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"name\": \"x\",}"), JsonParseError);
}

TEST(ScenarioSpec, ToJsonRoundTrips) {
  const std::string text =
      R"({"name": "uniform_dvs", "experiment": "closed_loop",
          "trace": {"source": "synthetic", "style": "sparse", "load_rate": 0.1,
                    "seed": 7},
          "widths": [32, 128],
          "controllers": [{"kind": "proportional", "gain": 3.5}],
          "corners": [{"process": "fast", "temp_c": 25.0, "ir_drop": 0.05}],
          "engine": "reference", "cycles": 123456, "threads": 3})";
  const core::ScenarioSpec spec = parse_scenario(text);
  const core::ScenarioSpec back = core::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back.to_json().dump(0), spec.to_json().dump(0));
  EXPECT_EQ(back.trace.seed, 7u);
  EXPECT_DOUBLE_EQ(back.controllers.at(0).proportional.gain, 3.5);
  EXPECT_EQ(back.corners.at(0).process, tech::ProcessCorner::fast);
  EXPECT_DOUBLE_EQ(back.corners.at(0).ir_drop_fraction, 0.05);
}

// ------------------------------------------------- multi_bus and drift

// What from_json actually threw, so the strict-validation tests can pin
// the full message (a typo'd campaign should say exactly what's wrong).
std::string thrown_message(const std::string& text) {
  try {
    parse_scenario(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioSpec, MultiBusParses) {
  const core::ScenarioSpec spec = parse_scenario(
      R"({"name": "soc", "experiment": "multi_bus", "arbitration": "weighted",
          "buses": [
            {"width": 16, "weight": 0.5,
             "trace": {"source": "synthetic", "style": "uniform", "seed": 1}},
            {"width": 64, "weight": 2.0,
             "trace": {"source": "synthetic", "style": "sparse", "seed": 2}}
          ],
          "cycles": 30000})");
  EXPECT_EQ(spec.kind, core::ScenarioSpec::Kind::multi_bus);
  EXPECT_EQ(spec.arbitration, dvs::ArbitrationPolicy::weighted);
  ASSERT_EQ(spec.buses.size(), 2u);
  EXPECT_EQ(spec.buses[0].width, 16);
  EXPECT_DOUBLE_EQ(spec.buses[0].weight, 0.5);
  EXPECT_EQ(spec.buses[1].trace.style, trace::SyntheticStyle::sparse);
  // The default controller axis is a single threshold controller.
  ASSERT_EQ(spec.controllers.size(), 1u);
  EXPECT_EQ(spec.controllers[0].kind, dvs::ControllerKind::threshold);
}

TEST(ScenarioSpec, DriftParses) {
  const core::ScenarioSpec linear = parse_scenario(
      R"({"name": "aging", "experiment": "closed_loop",
          "drift": {"temp_start": 25.0, "temp_end": 100.0,
                    "vth_shift_start": 0.0, "vth_shift_end": 0.05}})");
  EXPECT_TRUE(linear.drift.enabled);
  EXPECT_DOUBLE_EQ(linear.drift.temp_end, 100.0);
  EXPECT_DOUBLE_EQ(linear.drift.vth_shift_end, 0.05);

  const core::ScenarioSpec piecewise = parse_scenario(
      R"({"name": "steps", "experiment": "closed_loop",
          "drift": {"points": [{"cycle": 0, "temp_c": 25.0},
                               {"cycle": 5000, "temp_c": 100.0,
                                "vth_shift": 0.02}]}})");
  ASSERT_EQ(piecewise.drift.points.size(), 2u);
  EXPECT_EQ(piecewise.drift.points[1].cycle, 5000u);
  EXPECT_DOUBLE_EQ(piecewise.drift.points[1].vth_shift, 0.02);
}

// The new keys must fail with PRECISE messages (ISSUE satellite): the
// offending object and field, not a generic parse error.
TEST(ScenarioSpec, MultiBusAndDriftValidationMessages) {
  EXPECT_EQ(thrown_message(
                R"({"name": "x", "experiment": "multi_bus",
                    "arbitration": "priority",
                    "buses": [{"width": 32}]})"),
            "scenario spec: scenario: unknown arbitration policy 'priority' "
            "(expected max_error, sum_error or weighted)");
  EXPECT_EQ(thrown_message(
                R"({"name": "x", "experiment": "closed_loop",
                    "drift": {"points": [{"cycle": 500, "temp_c": 25.0},
                                         {"cycle": 500, "temp_c": 50.0}]}})"),
            "scenario spec: drift: 'points' cycles must be strictly increasing");
  EXPECT_EQ(thrown_message(
                R"({"name": "x", "experiment": "multi_bus",
                    "buses": [{"width": 16,
                               "trace": {"source": "benchmark", "name": "gzip"}}]})"),
            "scenario spec: buses: benchmark trace 'gzip' is 32 bits wide but "
            "the bus width 16 is not a multiple of 32");
}

TEST(ScenarioSpec, MultiBusAndDriftMisuseThrows) {
  // multi_bus takes per-bus traces and widths, not the scenario axes.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "multi_bus",
                                  "buses": [{"width": 32}],
                                  "trace": {"source": "synthetic"}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "multi_bus",
                                  "buses": [{"width": 32}], "widths": [16]})"),
               std::invalid_argument);
  // buses only on multi_bus; multi_bus requires buses.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "buses": [{"width": 32}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "multi_bus"})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "multi_bus",
                                  "buses": []})"),
               std::invalid_argument);
  // One stream per bus: a whole-suite lane makes no sense.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "multi_bus",
                                  "buses": [{"width": 32,
                                             "trace": {"source": "suite"}}]})"),
               std::invalid_argument);
  // Arbitration fuses into ONE threshold controller input.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "multi_bus",
                                  "buses": [{"width": 32}],
                                  "controllers": ["fixed_vs"]})"),
               std::invalid_argument);
  // Drift needs a closed-loop kind and threshold controllers.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "static_sweep",
                                  "drift": {"temp_start": 25.0}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "controllers": ["fixed_vs"],
                                  "drift": {"temp_start": 25.0}})"),
               std::invalid_argument);
  // Out-of-range drift states.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "drift": {"temp_end": 400.0}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "closed_loop",
                                  "drift": {"vth_shift_end": 0.5}})"),
               std::invalid_argument);
  // Bad lane weights.
  EXPECT_THROW(parse_scenario(R"({"name": "x", "experiment": "multi_bus",
                                  "buses": [{"width": 32, "weight": 0}]})"),
               std::invalid_argument);
}

TEST(ScenarioSpec, MultiBusAndDriftRoundTrip) {
  const std::string text =
      R"({"name": "soc_drift", "experiment": "multi_bus",
          "arbitration": "sum_error",
          "buses": [
            {"width": 16, "weight": 0.5,
             "trace": {"source": "synthetic", "style": "uniform", "seed": 1}},
            {"width": 64,
             "trace": {"source": "synthetic", "style": "sparse", "seed": 2}}
          ],
          "drift": {"temp_start": 25.0, "temp_end": 100.0,
                    "vth_shift_start": 0.0, "vth_shift_end": 0.05},
          "cycles": 30000, "stream": true})";
  const core::ScenarioSpec spec = parse_scenario(text);
  const core::ScenarioSpec back = core::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(back.to_json().dump(0), spec.to_json().dump(0));
  EXPECT_EQ(back.arbitration, dvs::ArbitrationPolicy::sum_error);
  ASSERT_EQ(back.buses.size(), 2u);
  EXPECT_DOUBLE_EQ(back.buses[0].weight, 0.5);
  EXPECT_TRUE(back.drift.enabled);
  EXPECT_DOUBLE_EQ(back.drift.vth_shift_end, 0.05);

  // Piecewise drift survives the round trip too.
  const core::ScenarioSpec steps = parse_scenario(
      R"({"name": "steps", "experiment": "closed_loop",
          "drift": {"points": [{"cycle": 0, "temp_c": 25.0},
                               {"cycle": 9000, "temp_c": 100.0,
                                "vth_shift": 0.03}]}})");
  const core::ScenarioSpec steps_back =
      core::ScenarioSpec::from_json(steps.to_json());
  EXPECT_EQ(steps_back.to_json().dump(0), steps.to_json().dump(0));
  ASSERT_EQ(steps_back.drift.points.size(), 2u);
  EXPECT_DOUBLE_EQ(steps_back.drift.points[1].vth_shift, 0.03);
}

// ------------------------------------------------------------- expansion

TEST(CampaignExpansion, CrossProductWithAxisSuffixes) {
  const core::CampaignSpec campaign = parse_campaign(
      R"({"name": "grid", "defaults": {"cycles": 1000},
          "scenarios": [
            {"bench": "fig4_voltage_sweep"},
            {"name": "grid_dvs", "experiment": "closed_loop",
             "widths": [16, 64], "controllers": ["threshold", "fixed_vs"]},
            {"name": "solo", "experiment": "static_sweep"}
          ]})");
  const auto jobs = core::expand_campaign(campaign);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].name, "fig4_voltage_sweep");
  EXPECT_EQ(jobs[1].name, "grid_dvs_w16_threshold");
  EXPECT_EQ(jobs[2].name, "grid_dvs_w16_fixed_vs");
  EXPECT_EQ(jobs[3].name, "grid_dvs_w64_threshold");
  EXPECT_EQ(jobs[4].name, "grid_dvs_w64_fixed_vs");
  EXPECT_EQ(jobs[5].name, "solo");
  // Each job collapsed to a single point with the defaults applied.
  EXPECT_EQ(jobs[1].spec.widths, std::vector<int>{16});
  ASSERT_EQ(jobs[1].spec.controllers.size(), 1u);
  EXPECT_EQ(jobs[1].spec.cycles, 1000u);
  // Single-axis scenarios keep their plain name (no suffix).
  EXPECT_EQ(jobs[5].spec.widths, std::vector<int>{32});
}

// A tuning sweep repeats one controller kind; unlabelled duplicates get
// occurrence suffixes and explicit labels name the axis point directly.
TEST(CampaignExpansion, ControllerTuningSweepsKeepDistinctJobNames) {
  const core::CampaignSpec campaign = parse_campaign(
      R"({"name": "tuning", "defaults": {"cycles": 1000}, "scenarios": [
            {"name": "band", "experiment": "closed_loop",
             "controllers": [{"kind": "threshold", "low": 0.005, "high": 0.01},
                             {"kind": "threshold", "low": 0.02, "high": 0.05},
                             {"kind": "threshold", "label": "paper_band"}]}
          ]})");
  const auto jobs = core::expand_campaign(campaign);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].name, "band_threshold");
  EXPECT_EQ(jobs[1].name, "band_threshold_2");
  EXPECT_EQ(jobs[2].name, "band_paper_band");
  EXPECT_DOUBLE_EQ(jobs[1].spec.controllers.at(0).threshold.low_threshold, 0.02);
}

// multi_bus has no widths axis, but the controllers (tuning) axis still
// multiplies out — each job keeps the full lane list.
TEST(CampaignExpansion, MultiBusControllerAxisExpands) {
  const core::CampaignSpec campaign = parse_campaign(
      R"({"name": "soc", "defaults": {"cycles": 1000}, "scenarios": [
            {"name": "fabric", "experiment": "multi_bus",
             "arbitration": "sum_error",
             "buses": [{"width": 16}, {"width": 64, "weight": 2.0}],
             "controllers": [{"kind": "threshold", "low": 0.005, "high": 0.01},
                             {"kind": "threshold", "label": "paper_band"}]}
          ]})");
  const auto jobs = core::expand_campaign(campaign);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "fabric_threshold");
  EXPECT_EQ(jobs[1].name, "fabric_paper_band");
  for (const auto& job : jobs) {
    EXPECT_EQ(job.spec.kind, core::ScenarioSpec::Kind::multi_bus);
    EXPECT_EQ(job.spec.arbitration, dvs::ArbitrationPolicy::sum_error);
    ASSERT_EQ(job.spec.buses.size(), 2u);
    ASSERT_EQ(job.spec.controllers.size(), 1u);
    EXPECT_EQ(job.spec.cycles, 1000u);
  }
  EXPECT_DOUBLE_EQ(jobs[0].spec.controllers.at(0).threshold.low_threshold, 0.005);
}

TEST(CampaignExpansion, DuplicateJobNamesAreRejected) {
  const core::CampaignSpec campaign = parse_campaign(
      R"({"name": "dup", "scenarios": [
            {"name": "same", "experiment": "static_sweep", "cycles": 10},
            {"name": "same", "experiment": "closed_loop", "cycles": 10}
          ]})");
  EXPECT_THROW(core::expand_campaign(campaign), std::invalid_argument);
}

// ----------------------------------------------- end-to-end byte identity

// Everything below spawns the sibling binaries, so it runs from the build
// directory (as ctest and CI do).

int run_cmd(const std::string& cmd) { return std::system(cmd.c_str()); }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "missing " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// A report with the wall-clock field dropped; everything else — metrics,
// notes, tables, cycles, threads — must match exactly.
std::string normalized_report(const std::string& path) {
  Json report = Json::parse(slurp(path));
  report.erase("wall_seconds");
  return report.dump(2);
}

class CampaignEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!std::ifstream("./campaign") || !std::ifstream("./fig4_voltage_sweep"))
      GTEST_SKIP() << "bench binaries not in the working directory; run from build/";
    ASSERT_EQ(run_cmd("rm -rf campaign_test_out && mkdir -p campaign_test_out"), 0);
  }
};

TEST_F(CampaignEndToEnd, ReportsMatchLegacyBinariesByteForByte) {
  // The acceptance scenarios: fig4, fig8 and table1, at budgets small
  // enough for CI but large enough to exercise sweeps, the consecutive
  // closed-loop driver and the per-trace suite driver.
  ASSERT_EQ(run_cmd("./fig4_voltage_sweep --cycles=3000 --threads=1 "
                    "--json=campaign_test_out/legacy_fig4.json "
                    "> campaign_test_out/legacy_fig4.log 2>&1"),
            0);
  ASSERT_EQ(run_cmd("./fig8_dvs_trace --cycles=20000 --threads=1 --max_rows=16 "
                    "--json=campaign_test_out/legacy_fig8.json "
                    "> campaign_test_out/legacy_fig8.log 2>&1"),
            0);
  ASSERT_EQ(run_cmd("./table1_dvs_gains --cycles=10000 --threads=1 "
                    "--json=campaign_test_out/legacy_table1.json "
                    "> campaign_test_out/legacy_table1.log 2>&1"),
            0);

  std::ofstream spec("campaign_test_out/paper_small.json");
  spec << R"({
    "name": "paper_small",
    "defaults": {"threads": 1},
    "scenarios": [
      {"bench": "fig4_voltage_sweep", "cycles": 3000},
      {"bench": "fig8_dvs_trace", "cycles": 20000, "flags": {"max_rows": 16}},
      {"bench": "table1_dvs_gains", "cycles": 10000}
    ]
  })";
  spec.close();

  ASSERT_EQ(run_cmd("./campaign run campaign_test_out/paper_small.json "
                    "--out=campaign_test_out/run "
                    "--json=campaign_test_out/BENCH_campaign.json "
                    "> campaign_test_out/campaign.log 2>&1"),
            0);

  EXPECT_EQ(normalized_report("campaign_test_out/legacy_fig4.json"),
            normalized_report("campaign_test_out/run/BENCH_fig4_voltage_sweep.json"));
  EXPECT_EQ(normalized_report("campaign_test_out/legacy_fig8.json"),
            normalized_report("campaign_test_out/run/BENCH_fig8_dvs_trace.json"));
  EXPECT_EQ(normalized_report("campaign_test_out/legacy_table1.json"),
            normalized_report("campaign_test_out/run/BENCH_table1_dvs_gains.json"));

  // The consolidated report aggregates all three per-job reports.
  const Json aggregate = Json::parse(slurp("campaign_test_out/BENCH_campaign.json"));
  EXPECT_EQ(aggregate.at("campaign").as_string(), "paper_small");
  EXPECT_EQ(aggregate.at("jobs").as_int(), 3);
  ASSERT_TRUE(aggregate.at("scenarios").has("table1_dvs_gains"));
  EXPECT_EQ(aggregate.at("scenarios").at("fig4_voltage_sweep").at("cycles").as_int(),
            3000);

  // Resume: a second run must execute nothing (all jobs cached) and still
  // rewrite the same consolidated report.
  ASSERT_EQ(run_cmd("./campaign run campaign_test_out/paper_small.json "
                    "--out=campaign_test_out/run "
                    "--json=campaign_test_out/BENCH_campaign2.json "
                    "> campaign_test_out/campaign2.log 2>&1"),
            0);
  const std::string log = slurp("campaign_test_out/campaign2.log");
  EXPECT_NE(log.find("3 cached"), std::string::npos) << log;
  // Scheduling accounting (wall clock, cache traffic, executed counts)
  // legitimately differs between the cold run and the resumed run; the
  // scenario payloads must not.
  const auto normalized_aggregate = [&](const std::string& path) {
    Json doc = Json::parse(slurp(path));
    for (const char* key :
         {"wall_seconds", "cached", "cache", "executed", "executed_cycles"})
      doc.erase(key);
    return doc.dump(2);
  };
  EXPECT_EQ(normalized_aggregate("campaign_test_out/BENCH_campaign.json"),
            normalized_aggregate("campaign_test_out/BENCH_campaign2.json"));
}

TEST_F(CampaignEndToEnd, DeclarativeJobRunsAndReports) {
  std::ofstream spec("campaign_test_out/decl.json");
  spec << R"({
    "name": "decl",
    "scenarios": [
      {"name": "sparse_dvs", "experiment": "closed_loop",
       "trace": {"source": "synthetic", "style": "sparse", "load_rate": 0.1,
                 "seed": 11},
       "widths": [16], "cycles": 30000, "threads": 1}
    ]
  })";
  spec.close();
  ASSERT_EQ(run_cmd("./campaign run campaign_test_out/decl.json "
                    "--out=campaign_test_out/decl_run "
                    "--json=campaign_test_out/BENCH_decl.json "
                    "> campaign_test_out/decl.log 2>&1"),
            0);
  const Json report =
      Json::parse(slurp("campaign_test_out/decl_run/BENCH_sparse_dvs.json"));
  EXPECT_EQ(report.at("scenario").as_string(), "sparse_dvs");
  EXPECT_EQ(report.at("cycles").as_int(), 30000);
  EXPECT_TRUE(report.at("metrics").has("typical_100C_sparse_gain"));
  EXPECT_EQ(report.at("notes").at("width").as_string(), "16");
}

TEST_F(CampaignEndToEnd, EditedSpecInvalidatesResume) {
  const auto write_spec = [](int cycles) {
    std::ofstream spec("campaign_test_out/edit.json");
    spec << R"({"name": "edit", "scenarios": [
      {"name": "sweep", "experiment": "static_sweep",
       "trace": {"source": "synthetic", "style": "uniform", "seed": 3},
       "cycles": )"
         << cycles << R"(, "threads": 1}]})";
  };
  const std::string cmd =
      "./campaign run campaign_test_out/edit.json --out=campaign_test_out/edit_run "
      "--json=campaign_test_out/BENCH_edit.json > campaign_test_out/edit.log 2>&1";
  write_spec(2000);
  ASSERT_EQ(run_cmd(cmd), 0);
  // Unchanged rerun: cached.
  ASSERT_EQ(run_cmd(cmd), 0);
  EXPECT_NE(slurp("campaign_test_out/edit.log").find("1 cached"), std::string::npos);
  // Edited cycle budget, same job name: must NOT resume from the stale
  // report — the rerun executes and the aggregate carries the new budget.
  write_spec(4000);
  ASSERT_EQ(run_cmd(cmd), 0);
  EXPECT_NE(slurp("campaign_test_out/edit.log").find("0 cached"), std::string::npos);
  const Json aggregate = Json::parse(slurp("campaign_test_out/BENCH_edit.json"));
  EXPECT_EQ(aggregate.at("scenarios").at("sweep").at("cycles").as_int(), 4000);
}

// Torn-file tolerance (the PointStore contract, applied to job results): a
// BENCH_<job>.json truncated by a crash mid-write must not wedge resume —
// the job is skipped as done and re-run, restoring a byte-identical report.
TEST_F(CampaignEndToEnd, TornReportIsSkippedAndRerun) {
  std::ofstream spec("campaign_test_out/torn.json");
  spec << R"({"name": "torn", "scenarios": [
    {"name": "sweep", "experiment": "static_sweep",
     "trace": {"source": "synthetic", "style": "uniform", "seed": 3},
     "cycles": 2000, "threads": 1}]})";
  spec.close();
  const std::string cmd =
      "./campaign run campaign_test_out/torn.json --out=campaign_test_out/torn_run "
      "--json=campaign_test_out/BENCH_torn.json > campaign_test_out/torn.log 2>&1";
  ASSERT_EQ(run_cmd(cmd), 0);
  const std::string report_path = "campaign_test_out/torn_run/BENCH_sweep.json";
  const std::string intact = slurp(report_path);
  ASSERT_GT(intact.size(), 64u);

  // Tear the report in half: the result cache still holds the full bytes,
  // so the re-run replays them without simulating.
  {
    std::ofstream torn(report_path, std::ios::trunc | std::ios::binary);
    torn << intact.substr(0, intact.size() / 2);
  }
  ASSERT_EQ(run_cmd(cmd), 0);
  // Not resumed-as-done (the torn report was rejected) — replayed from the
  // result cache instead of simulated.
  EXPECT_NE(slurp("campaign_test_out/torn.log").find("cache-hit sweep"),
            std::string::npos);
  EXPECT_EQ(slurp(report_path), intact);

  // Tear the report AND its cache entry: the re-run must fall all the way
  // back to simulation and restore identical results — byte-identical up
  // to wall_seconds, the one field a fresh simulation legitimately moves.
  {
    std::ofstream torn(report_path, std::ios::trunc | std::ios::binary);
    torn << intact.substr(0, intact.size() / 2);
  }
  ASSERT_EQ(run_cmd("sh -c 'for f in campaign_test_out/torn_run/cache/r_*.json; do "
                    "head -c 16 \"$f\" > \"$f.t\" && mv \"$f.t\" \"$f\"; done'"),
            0);
  ASSERT_EQ(run_cmd(cmd), 0);
  EXPECT_NE(slurp("campaign_test_out/torn.log").find("done sweep"), std::string::npos);
  const auto without_wall = [](const std::string& text) {
    Json doc = Json::parse(text);
    doc.erase("wall_seconds");
    return doc.dump(2);
  };
  EXPECT_EQ(without_wall(slurp(report_path)), without_wall(intact));
}

TEST_F(CampaignEndToEnd, MalformedCampaignFailsBeforeAnyWork) {
  std::ofstream spec("campaign_test_out/bad.json");
  spec << R"({"name": "bad", "scenarios": [{"bench": "fig4_voltage_sweep",
              "cycels": 10}]})";
  spec.close();
  EXPECT_NE(run_cmd("./campaign run campaign_test_out/bad.json "
                    "--out=campaign_test_out/bad_run "
                    "> campaign_test_out/bad.log 2>&1"),
            0);
  const std::string log = slurp("campaign_test_out/bad.log");
  EXPECT_NE(log.find("unknown key 'cycels'"), std::string::npos) << log;
  // Nothing ran: the output directory was never created.
  EXPECT_FALSE(std::ifstream("campaign_test_out/bad_run/campaign.json").good());

  // A typo'd bench NAME must also fail before any job executes, even when
  // it sits behind other (expensive) scenarios in the campaign.
  std::ofstream typo("campaign_test_out/typo.json");
  typo << R"({"name": "typo", "scenarios": [
              {"bench": "fig4_voltage_sweep", "cycles": 1000},
              {"bench": "fig4_voltage_swep"}]})";
  typo.close();
  EXPECT_NE(run_cmd("./campaign run campaign_test_out/typo.json "
                    "--out=campaign_test_out/typo_run "
                    "> campaign_test_out/typo.log 2>&1"),
            0);
  const std::string typo_log = slurp("campaign_test_out/typo.log");
  EXPECT_NE(typo_log.find("unknown scenario 'fig4_voltage_swep'"), std::string::npos)
      << typo_log;
  EXPECT_FALSE(std::ifstream("campaign_test_out/typo_run/campaign.json").good());
}

}  // namespace
}  // namespace razorbus

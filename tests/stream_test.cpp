// Streaming trace pipeline (DESIGN.md §12): producers must emit the exact
// word sequence of their materialized twins, and every streamed experiment
// driver must report BIT-identically to the materialized golden path —
// equal integer counts and exactly equal doubles, for every campaign job
// kind (closed_loop under each controller, static_sweep, consecutive runs,
// PVT sampling) — while touching only block-bounded trace memory.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bus/businvert.hpp"
#include "core/experiments.hpp"
#include "cpu/kernels.hpp"
#include "dvs/oracle.hpp"
#include "test_support.hpp"
#include "trace/io.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"

using namespace razorbus;
using test_support::small_system;

namespace {

trace::SyntheticConfig synth_config(std::size_t cycles, std::uint64_t seed,
                                    trace::SyntheticStyle style =
                                        trace::SyntheticStyle::uniform,
                                    int n_bits = 32) {
  trace::SyntheticConfig cfg;
  cfg.style = style;
  cfg.cycles = cycles;
  cfg.seed = seed;
  cfg.n_bits = n_bits;
  return cfg;
}

// Drain `source` through deliberately awkward (prime-sized) blocks and
// require the exact word sequence of `expected`.
void expect_stream_equals(const trace::Trace& expected, trace::TraceSource& source,
                          std::size_t block = 997) {
  EXPECT_EQ(source.n_bits(), expected.n_bits);
  EXPECT_EQ(source.name(), expected.name);
  const trace::Trace streamed = trace::materialize(source, block);
  ASSERT_EQ(streamed.words.size(), expected.words.size());
  for (std::size_t i = 0; i < expected.words.size(); ++i)
    ASSERT_EQ(streamed.words[i], expected.words[i]) << "word " << i;
  // Exhausted for good: the contract says 0 forever after the end.
  BusWord scratch;
  EXPECT_EQ(source.next_block(&scratch, 1), 0u);
}

void expect_totals_eq(const bus::RunningTotals& a, const bus::RunningTotals& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.shadow_failures, b.shadow_failures);
  EXPECT_EQ(a.bus_energy, b.bus_energy);
  EXPECT_EQ(a.overhead_energy, b.overhead_energy);
}

void expect_report_eq(const core::DvsRunReport& a, const core::DvsRunReport& b) {
  expect_totals_eq(a.totals, b.totals);
  EXPECT_EQ(a.baseline_bus_energy, b.baseline_bus_energy);
  EXPECT_EQ(a.floor_supply, b.floor_supply);
  EXPECT_EQ(a.average_supply, b.average_supply);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].end_cycle, b.series[i].end_cycle);
    EXPECT_EQ(a.series[i].supply, b.series[i].supply);
    EXPECT_EQ(a.series[i].error_rate, b.series[i].error_rate);
  }
}

// Small controller window so short parity traces exercise many decisions,
// and a block size that is deliberately coprime to it.
core::DvsRunConfig parity_config() {
  core::DvsRunConfig config;
  config.controller.window_cycles = 2000;
  config.regulator_delay_cycles = 700;
  return config;
}

constexpr std::size_t kOddBlock = 1537;

}  // namespace

// ------------------------------------------------------------- producers

TEST(TraceSource, SyntheticMatchesGenerator) {
  for (const auto style :
       {trace::SyntheticStyle::uniform, trace::SyntheticStyle::random_walk,
        trace::SyntheticStyle::fp_like, trace::SyntheticStyle::pointer_like,
        trace::SyntheticStyle::sparse, trace::SyntheticStyle::worst_case}) {
    for (const int n_bits : {32, 64}) {
      const auto cfg = synth_config(5000, 7, style, n_bits);
      const trace::Trace expected = trace::generate_synthetic(cfg, "t");
      const auto source = trace::make_synthetic_source(cfg, "t");
      ASSERT_TRUE(source->length().has_value());
      EXPECT_EQ(*source->length(), 5000u);
      expect_stream_equals(expected, *source);
    }
  }
}

TEST(TraceSource, CloneRestartsFromTheBeginning) {
  const auto cfg = synth_config(4000, 11);
  const trace::Trace expected = trace::generate_synthetic(cfg, "t");
  const auto source = trace::make_synthetic_source(cfg, "t");
  std::vector<BusWord> scratch(1234);
  ASSERT_GT(source->next_block(scratch.data(), scratch.size()), 0u);
  const auto fresh = source->clone();
  expect_stream_equals(expected, *fresh);
}

TEST(TraceSource, MaterializedAndViewSources) {
  const trace::Trace t = trace::generate_synthetic(synth_config(3000, 3), "t");
  const auto owning = trace::make_trace_source(t);
  expect_stream_equals(t, *owning);
  const auto view = trace::make_trace_view_source(t);
  expect_stream_equals(t, *view);
}

TEST(TraceSource, ConcatenateMatchesMaterializedConcatenate) {
  const trace::Trace a = trace::generate_synthetic(synth_config(2500, 1), "a");
  const trace::Trace b = trace::generate_synthetic(synth_config(1700, 2), "b");
  const trace::Trace expected = trace::concatenate({a, b}, "ab");
  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  parts.push_back(trace::make_trace_source(a));
  parts.push_back(trace::make_trace_source(b));
  auto source = trace::concatenate_sources(std::move(parts), "ab");
  ASSERT_TRUE(source->length().has_value());
  EXPECT_EQ(*source->length(), expected.words.size());
  expect_stream_equals(expected, *source);
}

TEST(TraceSource, ConcatenateRejectsMixedWidths) {
  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  parts.push_back(trace::make_synthetic_source(synth_config(10, 1), "narrow"));
  parts.push_back(trace::make_synthetic_source(
      synth_config(10, 1, trace::SyntheticStyle::uniform, 64), "wide"));
  EXPECT_THROW(trace::concatenate_sources(std::move(parts), "mixed"),
               std::invalid_argument);
}

TEST(TraceSource, ShortBlocksAtPartBoundariesAreNotEof) {
  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  parts.push_back(trace::make_synthetic_source(synth_config(10, 1), "a"));
  parts.push_back(trace::make_synthetic_source(synth_config(10, 2), "b"));
  auto source = trace::concatenate_sources(std::move(parts), "ab");
  std::vector<BusWord> block(64);
  EXPECT_EQ(source->next_block(block.data(), block.size()), 10u);  // short, not EOF
  EXPECT_EQ(source->next_block(block.data(), block.size()), 10u);
  EXPECT_EQ(source->next_block(block.data(), block.size()), 0u);
}

TEST(TraceSource, WidenMatchesIncludingZeroPaddedTail) {
  // 4099 is not a multiple of 2 or 4: the tail word must be zero-padded
  // exactly like trace::widen's.
  const trace::Trace narrow = trace::generate_synthetic(synth_config(4099, 5), "n");
  for (const int factor : {2, 4}) {
    const trace::Trace expected = trace::widen(narrow, factor);
    auto source = trace::widen_source(trace::make_trace_source(narrow), factor);
    ASSERT_TRUE(source->length().has_value());
    EXPECT_EQ(*source->length(), expected.words.size());
    expect_stream_equals(expected, *source, 61);
  }
}

TEST(TraceSource, BenchmarkStreamMatchesCapture) {
  const cpu::Benchmark bench = cpu::benchmark_by_name("crafty");
  const trace::Trace expected = bench.capture(5000);
  const auto source = bench.stream(5000);
  expect_stream_equals(expected, *source, 773);
  // Clone replays the deterministic kernel from a fresh machine.
  const auto fresh = source->clone();
  expect_stream_equals(expected, *fresh, 2048);
}

TEST(TraceSource, FileStreamMatchesLoad) {
  for (const int n_bits : {32, 128}) {  // v1 and v2 on-disk formats
    const trace::Trace t = trace::generate_synthetic(
        synth_config(3000, 9, trace::SyntheticStyle::random_walk, n_bits), "archived");
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("stream_test_" + std::to_string(n_bits) + ".rbtrace"))
            .string();
    trace::save_trace_file(t, path);
    auto source = trace::open_trace_stream(path);
    ASSERT_TRUE(source->length().has_value());
    EXPECT_EQ(*source->length(), t.words.size());
    expect_stream_equals(t, *source, 499);
    const auto reopened = source->clone();
    expect_stream_equals(t, *reopened, 1001);
    std::filesystem::remove(path);
  }
}

TEST(TraceSource, FileStreamRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "stream_test_garbage.rbtrace").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a trace", f);
  std::fclose(f);
  EXPECT_THROW(trace::open_trace_stream(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceSource, BusInvertStreamMatchesEncoder) {
  const trace::Trace raw = trace::generate_synthetic(synth_config(4000, 13), "raw");
  const trace::Trace expected = bus::bus_invert_encode(raw).encoded;
  auto source = bus::bus_invert_encode_source(trace::make_trace_source(raw));
  expect_stream_equals(expected, *source, 311);
}

// ------------------------------------------------------------- simulator

TEST(StreamSimulator, RunSourceMatchesRunWords) {
  const trace::Trace t = trace::generate_synthetic(synth_config(20000, 21), "t");
  const auto& system = small_system();
  const auto corner = tech::typical_corner();

  bus::BusSimulator on_words = system.make_simulator(corner);
  const bus::RunningTotals a = on_words.run(t.words);

  bus::BusSimulator on_stream = system.make_simulator(corner);
  auto source = trace::make_trace_view_source(t);
  const bus::RunningTotals b = on_stream.run(*source, kOddBlock);
  expect_totals_eq(a, b);
}

TEST(StreamSimulator, RejectsStreamsWiderThanTheBus) {
  bus::BusSimulator sim = small_system().make_simulator(tech::typical_corner());
  const auto wide = trace::make_synthetic_source(
      synth_config(10, 1, trace::SyntheticStyle::uniform, 64), "wide");
  EXPECT_THROW(sim.run(*wide), std::invalid_argument);
}

// ------------------------------------- experiment drivers (parity suite)

TEST(StreamParity, ClosedLoopThresholdBitIdentical) {
  const trace::Trace t = trace::generate_synthetic(synth_config(60000, 42), "t");
  const auto& system = small_system();
  const auto corner = tech::typical_corner();
  core::DvsRunConfig config = parity_config();
  config.record_series = true;

  const core::DvsRunReport golden = core::run_closed_loop(system, corner, t, config);
  for (const std::size_t block : {kOddBlock, trace::kDefaultBlockCycles}) {
    const auto source = trace::make_trace_view_source(t);
    core::StreamStats stats;
    const core::DvsRunReport streamed = core::run_closed_loop_streamed(
        system, corner, *source, config, core::StreamConfig{block}, &stats);
    expect_report_eq(golden, streamed);
    EXPECT_EQ(stats.cycles, t.words.size());
    EXPECT_EQ(stats.peak_buffer_words, block);
  }
}

TEST(StreamParity, ClosedLoopProportionalBitIdentical) {
  const trace::Trace t = trace::generate_synthetic(synth_config(50000, 43), "t");
  const auto& system = small_system();
  const auto corner = tech::typical_corner();
  core::ProportionalRunConfig config;
  config.controller.window_cycles = 2000;
  config.regulator_delay_cycles = 700;

  const core::DvsRunReport golden =
      core::run_closed_loop_proportional(system, corner, t, config);
  const auto source = trace::make_trace_view_source(t);
  const core::DvsRunReport streamed = core::run_closed_loop_proportional_streamed(
      system, corner, *source, config, core::StreamConfig{kOddBlock});
  expect_report_eq(golden, streamed);
}

TEST(StreamParity, FixedVsBitIdenticalWithJitter) {
  const trace::Trace t = trace::generate_synthetic(synth_config(30000, 44), "t");
  const auto& system = small_system();
  const auto corner = tech::typical_corner();
  const double jitter = 3e-12;

  const core::DvsRunReport golden =
      core::run_fixed_vs(system, corner, t, bus::EngineMode::bit_parallel, jitter);
  const auto source = trace::make_trace_view_source(t);
  const core::DvsRunReport streamed = core::run_fixed_vs_streamed(
      system, corner, *source, bus::EngineMode::bit_parallel, jitter,
      core::StreamConfig{kOddBlock});
  expect_report_eq(golden, streamed);
}

TEST(StreamParity, ConsecutiveRunBitIdentical) {
  const std::vector<trace::Trace> traces = {
      trace::generate_synthetic(synth_config(25000, 45), "a"),
      trace::generate_synthetic(synth_config(31000, 46), "b")};
  const auto& system = small_system();
  const auto corner = tech::typical_corner();
  core::DvsRunConfig config = parity_config();
  config.record_series = true;

  const core::ConsecutiveRunReport golden =
      core::run_consecutive(system, corner, traces, config);
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  for (const auto& t : traces) sources.push_back(trace::make_trace_view_source(t));
  const core::ConsecutiveRunReport streamed = core::run_consecutive_streamed(
      system, corner, sources, config, core::StreamConfig{kOddBlock});

  ASSERT_EQ(golden.per_trace.size(), streamed.per_trace.size());
  for (std::size_t i = 0; i < golden.per_trace.size(); ++i)
    expect_report_eq(golden.per_trace[i], streamed.per_trace[i]);
  ASSERT_EQ(golden.series.size(), streamed.series.size());
  for (std::size_t i = 0; i < golden.series.size(); ++i) {
    EXPECT_EQ(golden.series[i].end_cycle, streamed.series[i].end_cycle);
    EXPECT_EQ(golden.series[i].supply, streamed.series[i].supply);
    EXPECT_EQ(golden.series[i].error_rate, streamed.series[i].error_rate);
  }
}

TEST(StreamParity, StaticSweepBitIdentical) {
  const std::vector<trace::Trace> traces = {
      trace::generate_synthetic(synth_config(12000, 47), "a"),
      trace::generate_synthetic(synth_config(9000, 48), "b")};
  const auto& system = small_system();
  const auto corner = tech::typical_corner();

  const core::StaticSweepResult golden =
      core::static_voltage_sweep(system, corner, traces);
  // The materialized sweep runs the traces back to back through one
  // simulator, so the streamed equivalent is their concatenation.
  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  for (const auto& t : traces) parts.push_back(trace::make_trace_view_source(t));
  const auto source = trace::concatenate_sources(std::move(parts), "ab");
  core::StreamStats stats;
  const core::StaticSweepResult streamed = core::static_voltage_sweep_streamed(
      system, corner, *source, 0.0, bus::EngineMode::bit_parallel,
      core::StreamConfig{kOddBlock}, &stats);

  EXPECT_EQ(golden.baseline_bus_energy, streamed.baseline_bus_energy);
  EXPECT_EQ(golden.floor_supply, streamed.floor_supply);
  ASSERT_EQ(golden.points.size(), streamed.points.size());
  for (std::size_t i = 0; i < golden.points.size(); ++i) {
    EXPECT_EQ(golden.points[i].supply, streamed.points[i].supply);
    EXPECT_EQ(golden.points[i].error_rate, streamed.points[i].error_rate);
    EXPECT_EQ(golden.points[i].bus_energy, streamed.points[i].bus_energy);
    EXPECT_EQ(golden.points[i].total_energy, streamed.points[i].total_energy);
    EXPECT_EQ(golden.points[i].norm_bus_energy, streamed.points[i].norm_bus_energy);
    EXPECT_EQ(golden.points[i].norm_total_energy, streamed.points[i].norm_total_energy);
  }
  // Every supply shard drained its own clone of the whole stream.
  const std::size_t total = traces[0].words.size() + traces[1].words.size();
  EXPECT_EQ(stats.cycles, golden.points.size() * total);
}

TEST(StreamParity, SuiteDriversBitIdentical) {
  const std::vector<trace::Trace> traces = {
      trace::generate_synthetic(synth_config(22000, 49), "a"),
      trace::generate_synthetic(synth_config(18000, 50), "b")};
  const auto& system = small_system();
  const auto corner = tech::typical_corner();
  const core::DvsRunConfig config = parity_config();

  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  for (const auto& t : traces) sources.push_back(trace::make_trace_view_source(t));

  const auto golden_cl = core::run_closed_loop_suite(system, corner, traces, config);
  const auto streamed_cl = core::run_closed_loop_suite_streamed(
      system, corner, sources, config, core::StreamConfig{kOddBlock});
  ASSERT_EQ(golden_cl.size(), streamed_cl.size());
  for (std::size_t i = 0; i < golden_cl.size(); ++i)
    expect_report_eq(golden_cl[i], streamed_cl[i]);

  const auto golden_fv = core::run_fixed_vs_suite(system, corner, traces);
  const auto streamed_fv = core::run_fixed_vs_suite_streamed(
      system, corner, sources, bus::EngineMode::bit_parallel, 0.0,
      core::StreamConfig{kOddBlock});
  ASSERT_EQ(golden_fv.size(), streamed_fv.size());
  for (std::size_t i = 0; i < golden_fv.size(); ++i)
    expect_report_eq(golden_fv[i], streamed_fv[i]);
}

TEST(StreamParity, PvtSamplingBitIdentical) {
  const trace::Trace t = trace::generate_synthetic(synth_config(20000, 51), "t");
  // Monte-Carlo corners span both characterised temperatures and all three
  // process corners: needs the full paper characterization (disk-cached).
  const auto& system = test_support::paper_system();
  core::PvtSampleConfig config;
  config.samples = 3;
  config.run = parity_config();

  const core::PvtSampleResult golden = core::pvt_sample_gains(system, t, config);
  const auto source = trace::make_trace_view_source(t);
  const core::PvtSampleResult streamed = core::pvt_sample_gains_streamed(
      system, *source, config, core::StreamConfig{kOddBlock});

  ASSERT_EQ(golden.samples.size(), streamed.samples.size());
  for (std::size_t i = 0; i < golden.samples.size(); ++i) {
    EXPECT_EQ(golden.samples[i].corner.process, streamed.samples[i].corner.process);
    EXPECT_EQ(golden.samples[i].corner.temp_c, streamed.samples[i].corner.temp_c);
    EXPECT_EQ(golden.samples[i].corner.ir_drop_fraction,
              streamed.samples[i].corner.ir_drop_fraction);
    expect_report_eq(golden.samples[i].report, streamed.samples[i].report);
  }
  EXPECT_EQ(golden.gain_stats.mean(), streamed.gain_stats.mean());
  EXPECT_EQ(golden.err_stats.mean(), streamed.err_stats.mean());
}

TEST(StreamParity, OracleSelectMatches) {
  const trace::Trace t = trace::generate_synthetic(synth_config(30000, 52), "t");
  const auto& system = small_system();
  const auto corner = tech::typical_corner();
  dvs::OracleSelector oracle(system.design(), system.table(), corner);
  dvs::OracleConfig config;
  config.window_cycles = 2500;
  config.target_error_rate = 0.02;

  const dvs::OracleResult golden = oracle.select(t, config);
  auto source = trace::make_trace_view_source(t);
  const dvs::OracleResult streamed = oracle.select(*source, config, kOddBlock);

  EXPECT_EQ(golden.achieved_error_rate, streamed.achieved_error_rate);
  ASSERT_EQ(golden.window_voltages.size(), streamed.window_voltages.size());
  for (std::size_t i = 0; i < golden.window_voltages.size(); ++i)
    EXPECT_EQ(golden.window_voltages[i], streamed.window_voltages[i]);
}

// ---------------------------------------------------- memory accounting

TEST(StreamAccounting, TraceMemoryIsBlockBounded) {
  // A run 100x longer than the block must never grow the trace buffer
  // beyond the configured block: this is the structural guarantee that
  // lets `cycles` exceed materializable length.
  const std::size_t block = 4096;
  const std::size_t cycles = 100 * block + 17;
  const auto source =
      trace::make_synthetic_source(synth_config(cycles, 53), "long");
  const auto& system = small_system();
  core::StreamStats stats;
  const core::DvsRunReport report = core::run_closed_loop_streamed(
      system, tech::typical_corner(), *source, parity_config(),
      core::StreamConfig{block}, &stats);
  EXPECT_EQ(report.totals.cycles, cycles);
  EXPECT_EQ(stats.cycles, cycles);
  EXPECT_EQ(stats.peak_buffer_words, block);
  EXPECT_GE(stats.blocks, cycles / block);
  EXPECT_EQ(stats.block_cycles, block);
}

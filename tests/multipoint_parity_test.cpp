// Multi-point engine parity (DESIGN.md §13): MultiPointEngine evaluates N
// operating points against one trace in a single pass, and every point's
// totals must be bit-identical to running the single-point bit-parallel
// engine once per point — across widths, with and without jitter, on
// materialized and streamed traces, for SoA rows of any occupancy
// (including the degenerate 1-point batch) and for untabulatable layouts
// (general-kernel path). These hold with ANY util/simd.hpp backend, which
// is why CI runs this suite with RAZORBUS_SIMD=OFF too.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bus/simulator.hpp"
#include "core/experiments.hpp"
#include "core/system.hpp"
#include "test_support.hpp"
#include "trace/source.hpp"
#include "trace/synthetic.hpp"

namespace razorbus {
namespace {

// One characterised system per width (same sharing trick as width_test:
// the tables depend only on the per-wire electrical design).
const core::DvsBusSystem& system_at(int width) {
  static std::vector<std::unique_ptr<core::DvsBusSystem>> systems;
  static std::vector<int> widths;
  for (std::size_t i = 0; i < widths.size(); ++i)
    if (widths[i] == width) return *systems[i];
  interconnect::BusDesign design = interconnect::BusDesign::wide_bus(width);
  design.repeater_size = test_support::sized_paper_bus().repeater_size;
  core::SystemOptions options;
  options.lut_config = test_support::small_lut_config();
  systems.push_back(std::make_unique<core::DvsBusSystem>(design, options));
  widths.push_back(width);
  return *systems.back();
}

trace::SyntheticConfig trace_config(int width, std::size_t cycles, std::uint64_t seed) {
  trace::SyntheticConfig cfg;
  cfg.cycles = cycles;
  cfg.load_rate = 0.5;
  cfg.seed = seed;
  cfg.n_bits = width;
  return cfg;
}

// A point grid exercising the supply axis plus both characterised corners
// and a nonzero IR drop — 8 points, deliberately not a multiple of the
// SIMD row granule so the padding slots are exercised.
std::vector<bus::OperatingPoint> point_grid() {
  const tech::PvtCorner slow{tech::ProcessCorner::slow, 100.0, 0.0};
  const tech::PvtCorner typical{tech::ProcessCorner::typical, 100.0, 0.0};
  const tech::PvtCorner drooped{tech::ProcessCorner::typical, 100.0, 0.02};
  std::vector<bus::OperatingPoint> points;
  for (const double v : {1.08, 1.14, 1.20}) {
    points.push_back({v, slow});
    points.push_back({v, typical});
  }
  points.push_back({1.14, drooped});
  points.push_back({1.20, drooped});
  return points;
}

// Golden: the per-point scalar loop the drivers used before batching —
// one BusSimulator per point, same jitter seed, traces back to back.
bus::RunningTotals scalar_totals(const interconnect::BusDesign& design,
                                 const lut::DelayEnergyTable& table,
                                 const bus::OperatingPoint& point, double sigma,
                                 const std::vector<std::vector<BusWord>>& traces) {
  bus::BusSimulator sim(design, table, point.environment);
  if (sigma > 0.0) sim.set_timing_jitter(sigma);
  sim.set_supply(point.supply);
  for (const auto& words : traces) sim.run(words);
  return sim.totals();
}

void expect_totals_identical(const bus::RunningTotals& a, const bus::RunningTotals& b,
                             const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.errors, b.errors) << what;
  EXPECT_EQ(a.shadow_failures, b.shadow_failures) << what;
  EXPECT_EQ(a.bus_energy, b.bus_energy) << what;
  EXPECT_EQ(a.overhead_energy, b.overhead_energy) << what;
}

void expect_batch_matches_scalar(const interconnect::BusDesign& design,
                                 const lut::DelayEnergyTable& table,
                                 const std::vector<bus::OperatingPoint>& points,
                                 double sigma,
                                 const std::vector<std::vector<BusWord>>& traces,
                                 const std::string& what) {
  bus::MultiPointConfig config;
  config.timing_jitter_sigma = sigma;
  bus::MultiPointEngine engine(design, table, points, config);
  for (const auto& words : traces) engine.run(words);
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_totals_identical(
        engine.totals(p), scalar_totals(design, table, points[p], sigma, traces),
        what + " point " + std::to_string(p) + " @" + std::to_string(points[p].supply));
  }
}

TEST(MultiPoint, MatchesScalarAcrossWidthsAndJitter) {
  for (const int width : {16, 32, 64, 128}) {
    const auto& system = system_at(width);
    const trace::Trace trace =
        trace::generate_synthetic(trace_config(width, 1500, 0x5eedu + width), "mp");
    for (const double sigma : {0.0, 5e-12}) {
      expect_batch_matches_scalar(
          system.design(), system.table(), point_grid(), sigma, {trace.words},
          "width " + std::to_string(width) + " sigma " + std::to_string(sigma));
    }
  }
}

// The drivers run several traces back to back through one engine (no reset
// between them, receiver state carries over) — exactly like the scalar
// per-point simulators do.
TEST(MultiPoint, AccumulatesAcrossTraces) {
  const auto& system = system_at(32);
  const trace::Trace a = trace::generate_synthetic(trace_config(32, 900, 11), "a");
  const trace::Trace b = trace::generate_synthetic(trace_config(32, 700, 12), "b");
  expect_batch_matches_scalar(system.design(), system.table(), point_grid(), 0.0,
                              {a.words, b.words}, "two traces");
}

// Streamed input: draining a TraceSource through the block buffer must be
// bit-identical to one run over the materialized words (any block split),
// and both must match the scalar loop.
TEST(MultiPoint, StreamedMatchesMaterialized) {
  for (const int width : {32, 64}) {
    const auto& system = system_at(width);
    const auto cfg = trace_config(width, 2000, 0xbeefu + width);
    const trace::Trace materialized = trace::generate_synthetic(cfg, "mp_stream");
    for (const double sigma : {0.0, 5e-12}) {
      bus::MultiPointConfig config;
      config.timing_jitter_sigma = sigma;
      const std::vector<bus::OperatingPoint> points = point_grid();

      bus::MultiPointEngine batch(system.design(), system.table(), points, config);
      batch.run(materialized.words);

      const auto source = trace::make_synthetic_source(cfg, "mp_stream");
      bus::MultiPointEngine streamed(system.design(), system.table(), points, config);
      streamed.run(*source, 256);

      for (std::size_t p = 0; p < points.size(); ++p) {
        const std::string what = "width " + std::to_string(width) + " sigma " +
                                 std::to_string(sigma) + " point " + std::to_string(p);
        expect_totals_identical(streamed.totals(p), batch.totals(p), what);
        expect_totals_identical(batch.totals(p),
                                scalar_totals(system.design(), system.table(),
                                              points[p], sigma, {materialized.words}),
                                what + " [vs scalar]");
      }
    }
  }
}

// Degenerate 1-point batch: the SoA machinery with a single occupied slot.
TEST(MultiPoint, SinglePointBatchMatchesScalar) {
  const auto& system = system_at(32);
  const trace::Trace trace = trace::generate_synthetic(trace_config(32, 1200, 21), "one");
  const std::vector<bus::OperatingPoint> one = {
      {1.10, tech::PvtCorner{tech::ProcessCorner::slow, 100.0, 0.0}}};
  for (const double sigma : {0.0, 5e-12})
    expect_batch_matches_scalar(system.design(), system.table(), one, sigma,
                                {trace.words}, "1-point sigma " + std::to_string(sigma));
}

// A shield group wider than the tabulatable maximum forces the per-wire
// general kernel in both engines; parity must hold there too.
TEST(MultiPoint, GeneralKernelParityOnUntabulatableLayout) {
  interconnect::BusDesign design = interconnect::BusDesign::wide_bus(32);
  design.shield_group = 7;  // > GroupLayout::kMaxTableWidth
  design.repeater_size = test_support::sized_paper_bus().repeater_size;
  core::SystemOptions options;
  options.lut_config = test_support::small_lut_config();
  const core::DvsBusSystem system(design, options);
  const trace::Trace trace = trace::generate_synthetic(trace_config(32, 800, 31), "wide");
  for (const double sigma : {0.0, 5e-12})
    expect_batch_matches_scalar(system.design(), system.table(), point_grid(), sigma,
                                {trace.words},
                                "untabulatable sigma " + std::to_string(sigma));
}

// The one-shot wrappers return per-point totals in point order.
TEST(MultiPoint, RunWrapperMatchesEngine) {
  const auto& system = system_at(32);
  const trace::Trace trace = trace::generate_synthetic(trace_config(32, 600, 41), "w");
  const std::vector<bus::OperatingPoint> points = point_grid();
  const auto totals =
      bus::multi_point_run(system.design(), system.table(), points, trace.words);
  ASSERT_EQ(totals.size(), points.size());
  bus::MultiPointEngine engine(system.design(), system.table(), points);
  engine.run(trace.words);
  for (std::size_t p = 0; p < points.size(); ++p)
    expect_totals_identical(totals[p], engine.totals(p), "wrapper " + std::to_string(p));
}

TEST(MultiPoint, RejectsBadInputs) {
  const auto& system = system_at(32);
  EXPECT_THROW(bus::MultiPointEngine(system.design(), system.table(), {}),
               std::invalid_argument);
  EXPECT_THROW(bus::MultiPointEngine(
                   system.design(), system.table(),
                   {{-1.0, tech::PvtCorner{tech::ProcessCorner::typical, 100.0, 0.0}}}),
               std::invalid_argument);
  // Streams wider than the bus are rejected loudly, not truncated.
  const auto& narrow = system_at(16);
  const auto wide_source = trace::make_synthetic_source(trace_config(32, 100, 5), "w32");
  bus::MultiPointEngine engine(
      narrow.design(), narrow.table(),
      {{1.14, tech::PvtCorner{tech::ProcessCorner::typical, 100.0, 0.0}}});
  EXPECT_THROW(engine.run(*wide_source), std::invalid_argument);
}

// "simd" is a first-class engine-mode name, and on a single simulator it
// behaves exactly like bit_parallel.
TEST(MultiPoint, SimdEngineModeRoundTripsAndAliasesBitParallel) {
  EXPECT_EQ(bus::to_string(bus::EngineMode::simd), "simd");
  EXPECT_EQ(bus::engine_mode_from_string("simd"), bus::EngineMode::simd);
  EXPECT_THROW(bus::engine_mode_from_string("vector"), std::invalid_argument);

  const auto& system = system_at(32);
  const trace::Trace trace = trace::generate_synthetic(trace_config(32, 1000, 51), "s");
  const tech::PvtCorner env{tech::ProcessCorner::slow, 100.0, 0.0};
  bus::BusSimulator a = system.make_simulator(env);
  bus::BusSimulator b = system.make_simulator(env);
  b.set_engine_mode(bus::EngineMode::simd);
  a.set_supply(1.10);
  b.set_supply(1.10);
  a.run(trace.words);
  b.run(trace.words);
  expect_totals_identical(a.totals(), b.totals(), "simd == bit_parallel");
}

// ------------------------------------------------------------ driver parity
// EngineMode::simd routes the core drivers' point loops through the batch
// engine; every REPORT field must stay bit-identical to the per-point
// scalar sharding (the acceptance contract: same bytes, fewer passes).

void expect_sweeps_identical(const core::StaticSweepResult& a,
                             const core::StaticSweepResult& b,
                             const std::string& what) {
  EXPECT_EQ(a.baseline_bus_energy, b.baseline_bus_energy) << what;
  EXPECT_EQ(a.floor_supply, b.floor_supply) << what;
  ASSERT_EQ(a.points.size(), b.points.size()) << what;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const std::string at = what + " point " + std::to_string(i);
    EXPECT_EQ(a.points[i].supply, b.points[i].supply) << at;
    EXPECT_EQ(a.points[i].error_rate, b.points[i].error_rate) << at;
    EXPECT_EQ(a.points[i].bus_energy, b.points[i].bus_energy) << at;
    EXPECT_EQ(a.points[i].total_energy, b.points[i].total_energy) << at;
    EXPECT_EQ(a.points[i].norm_bus_energy, b.points[i].norm_bus_energy) << at;
    EXPECT_EQ(a.points[i].norm_total_energy, b.points[i].norm_total_energy) << at;
  }
}

void expect_reports_identical(const core::DvsRunReport& a, const core::DvsRunReport& b,
                              const std::string& what) {
  expect_totals_identical(a.totals, b.totals, what);
  EXPECT_EQ(a.baseline_bus_energy, b.baseline_bus_energy) << what;
  EXPECT_EQ(a.floor_supply, b.floor_supply) << what;
  EXPECT_EQ(a.average_supply, b.average_supply) << what;
}

TEST(MultiPointDrivers, StaticSweepSimdMatchesBitParallel) {
  const auto& system = system_at(32);
  const tech::PvtCorner env{tech::ProcessCorner::typical, 100.0, 0.0};
  const std::vector<trace::Trace> traces = {
      trace::generate_synthetic(trace_config(32, 1200, 61), "sa"),
      trace::generate_synthetic(trace_config(32, 800, 62), "sb")};
  for (const double sigma : {0.0, 5e-12}) {
    const auto scalar =
        core::static_voltage_sweep(system, env, traces, sigma,
                                   bus::EngineMode::bit_parallel);
    const auto batched =
        core::static_voltage_sweep(system, env, traces, sigma, bus::EngineMode::simd);
    expect_sweeps_identical(scalar, batched, "sweep sigma " + std::to_string(sigma));
  }
}

TEST(MultiPointDrivers, StreamedSweepSimdMatchesScalarAndMaterialized) {
  const auto& system = system_at(32);
  const tech::PvtCorner env{tech::ProcessCorner::typical, 100.0, 0.0};
  const auto cfg = trace_config(32, 2000, 63);
  const trace::Trace materialized = trace::generate_synthetic(cfg, "ss");
  const auto source = trace::make_synthetic_source(cfg, "ss");
  core::StreamConfig stream;
  stream.block_cycles = 512;

  const auto scalar_streamed = core::static_voltage_sweep_streamed(
      system, env, *source, 0.0, bus::EngineMode::bit_parallel, stream);
  const auto simd_streamed = core::static_voltage_sweep_streamed(
      system, env, *source, 0.0, bus::EngineMode::simd, stream);
  const auto simd_materialized = core::static_voltage_sweep(
      system, env, {materialized}, 0.0, bus::EngineMode::simd);
  expect_sweeps_identical(scalar_streamed, simd_streamed, "streamed scalar vs simd");
  expect_sweeps_identical(simd_streamed, simd_materialized,
                          "simd streamed vs materialized");
}

// Monte-Carlo corners span both characterised temperatures and all three
// process corners: needs the full paper characterization (disk-cached),
// like stream_test's PVT parity case.
core::PvtSampleConfig pvt_config() {
  core::PvtSampleConfig config;
  config.samples = 5;  // not a multiple of the SIMD row granule
  config.seed = 77;
  config.run.controller.window_cycles = 2000;
  config.run.regulator_delay_cycles = 700;
  return config;
}

TEST(MultiPointDrivers, PvtSampleGainsSimdMatchesBitParallel) {
  const auto& system = test_support::paper_system();
  const trace::Trace trace = trace::generate_synthetic(trace_config(32, 8000, 64), "pv");
  const core::PvtSampleConfig config = pvt_config();
  auto simd_config = config;
  simd_config.run.engine = bus::EngineMode::simd;

  const auto scalar = core::pvt_sample_gains(system, trace, config);
  const auto batched = core::pvt_sample_gains(system, trace, simd_config);
  ASSERT_EQ(scalar.samples.size(), batched.samples.size());
  for (std::size_t s = 0; s < scalar.samples.size(); ++s) {
    const std::string what = "pvt sample " + std::to_string(s);
    EXPECT_EQ(scalar.samples[s].corner.process, batched.samples[s].corner.process) << what;
    EXPECT_EQ(scalar.samples[s].corner.temp_c, batched.samples[s].corner.temp_c) << what;
    EXPECT_EQ(scalar.samples[s].corner.ir_drop_fraction,
              batched.samples[s].corner.ir_drop_fraction)
        << what;
    expect_reports_identical(scalar.samples[s].report, batched.samples[s].report, what);
  }
  EXPECT_EQ(scalar.gain_stats.mean(), batched.gain_stats.mean());
  EXPECT_EQ(scalar.err_stats.mean(), batched.err_stats.mean());
}

TEST(MultiPointDrivers, PvtSampleGainsStreamedSimdMatchesMaterialized) {
  const auto& system = test_support::paper_system();
  const auto cfg = trace_config(32, 8000, 64);
  const trace::Trace materialized = trace::generate_synthetic(cfg, "pv");
  const auto source = trace::make_synthetic_source(cfg, "pv");
  core::PvtSampleConfig config = pvt_config();
  config.run.engine = bus::EngineMode::simd;
  core::StreamConfig stream;
  stream.block_cycles = 512;

  const auto batched = core::pvt_sample_gains(system, materialized, config);
  const auto streamed = core::pvt_sample_gains_streamed(system, *source, config, stream);
  ASSERT_EQ(batched.samples.size(), streamed.samples.size());
  for (std::size_t s = 0; s < batched.samples.size(); ++s)
    expect_reports_identical(batched.samples[s].report, streamed.samples[s].report,
                             "streamed pvt sample " + std::to_string(s));
}

}  // namespace
}  // namespace razorbus

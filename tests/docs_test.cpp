// docs/campaigns.md must document EXACTLY the keys the strict campaign
// parser accepts — no more, no less. The parser throws on unknown keys, so
// the set of keys it LOOKS UP equals the set it accepts;
// core::record_accepted_keys captures that set while parsing an exemplar
// campaign that exercises every branch, and this test diffs it against the
// keys extracted from the schema tables in docs/campaigns.md (the blocks
// fenced by `<!-- schema:NAME -->` / `<!-- /schema -->` markers). Adding a
// spec key without a doc row — or documenting a key the parser would
// reject — fails here, which is what keeps the schema reference honest.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/scenario_spec.hpp"
#include "util/json.hpp"

using namespace razorbus;

namespace {

// One campaign that walks every parser branch: a bench reference with
// flags, a closed_loop with every declarative knob and both tunable
// controller kinds, a static_sweep, a multi_bus with lanes + arbitration +
// a linear drift ramp, a piecewise drift schedule, and every trace source
// / corner form.
const char* kExemplarCampaign = R"JSON({
  "name": "exemplar",
  "description": "covers every schema branch",
  "defaults": {"cycles": 1000, "threads": 2},
  "scenarios": [
    {"bench": "fig4_voltage_sweep", "name": "bench_job", "cycles": 500,
     "threads": 1, "flags": {"max_rows": 4}},
    {"name": "cl", "experiment": "closed_loop",
     "trace": {"source": "synthetic", "style": "uniform", "load_rate": 0.4,
               "activity": 0.5, "seed": 7},
     "widths": [16, 32],
     "controllers": ["fixed_vs",
                     {"kind": "threshold", "label": "tight", "low": 0.005,
                      "high": 0.01, "window": 5000, "step": 0.02},
                     {"kind": "proportional", "target": 0.015, "gain": 2.0,
                      "window": 5000, "max_step": 0.04}],
     "corners": ["typical", {"process": "fast", "temp_c": 25, "ir_drop": 0.05}],
     "encoding": "bus_invert", "engine": "reference",
     "timing_jitter_sigma": 3e-12, "stream": true, "lut_tolerance": 0.02},
    {"name": "sweep_bench_trace", "experiment": "static_sweep",
     "trace": {"source": "benchmark", "name": "crafty"}},
    {"name": "sweep_suite", "experiment": "static_sweep",
     "trace": {"source": "suite"}},
    {"name": "sweep_file", "experiment": "static_sweep",
     "trace": {"source": "file", "path": "some.rbtrace"}},
    {"name": "soc", "experiment": "multi_bus", "arbitration": "weighted",
     "buses": [{"width": 16, "weight": 0.5,
                "trace": {"source": "synthetic", "style": "sparse", "seed": 2}},
               {"width": 64}],
     "drift": {"temp_start": 25.0, "temp_end": 100.0,
               "vth_shift_start": 0.0, "vth_shift_end": 0.05}},
    {"name": "cl_aging", "experiment": "closed_loop",
     "drift": {"points": [{"cycle": 0, "temp_c": 25.0, "vth_shift": 0.0},
                          {"cycle": 900, "temp_c": 100.0, "vth_shift": 0.03}]}}
  ]
})JSON";

std::string docs_path() {
  return std::string(RAZORBUS_SOURCE_DIR) + "/docs/campaigns.md";
}

// Keys per schema block: first backticked token of each table row inside
// `<!-- schema:NAME -->` ... `<!-- /schema -->`.
std::map<std::string, std::set<std::string>> documented_keys(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::map<std::string, std::set<std::string>> keys;
  std::string section;
  for (std::string line; std::getline(in, line);) {
    const std::string open = "<!-- schema:";
    const auto at = line.find(open);
    if (at != std::string::npos) {
      const auto end = line.find(" -->", at);
      EXPECT_NE(end, std::string::npos) << "malformed marker: " << line;
      section = line.substr(at + open.size(), end - at - open.size());
      keys[section];  // a block may legitimately document zero keys
      continue;
    }
    if (line.find("<!-- /schema -->") != std::string::npos) {
      section.clear();
      continue;
    }
    if (section.empty()) continue;
    // Table rows look like: | `key` | type | ...
    const auto tick = line.find("| `");
    if (tick == std::string::npos) continue;
    const auto start = tick + 3;
    const auto close = line.find('`', start);
    if (close == std::string::npos) continue;
    keys[section].insert(line.substr(start, close - start));
  }
  EXPECT_TRUE(section.empty()) << "unclosed schema block '" << section << "'";
  return keys;
}

std::string join(const std::set<std::string>& keys) {
  std::ostringstream out;
  for (const auto& key : keys) out << key << " ";
  return out.str();
}

}  // namespace

TEST(DocsSchema, ExemplarExercisesEveryObject) {
  const auto accepted = core::record_accepted_keys(Json::parse(kExemplarCampaign));
  for (const char* section : {"campaign", "defaults", "scenario", "trace",
                              "controllers", "corners", "buses", "drift",
                              "drift_points"})
    EXPECT_TRUE(accepted.count(section))
        << "exemplar campaign never parsed a '" << section << "' object";
}

TEST(DocsSchema, DocumentedKeysMatchParserExactly) {
  const auto accepted = core::record_accepted_keys(Json::parse(kExemplarCampaign));
  const auto documented = documented_keys(docs_path());

  for (const auto& [section, keys] : accepted) {
    ASSERT_TRUE(documented.count(section))
        << "docs/campaigns.md has no `<!-- schema:" << section << " -->` block";
    EXPECT_EQ(documented.at(section), keys)
        << "section '" << section << "': parser accepts [" << join(keys)
        << "] but docs/campaigns.md documents [" << join(documented.at(section)) << "]";
  }
  for (const auto& [section, keys] : documented)
    EXPECT_TRUE(accepted.count(section))
        << "docs/campaigns.md documents unknown schema block '" << section << "'";
}

TEST(DocsSchema, ParserStaysStrict) {
  // The equivalence above rests on "looked up == accepted": verify the
  // strict half still holds by smuggling one unknown key into an
  // otherwise-valid document.
  Json campaign = Json::parse(kExemplarCampaign);
  campaign.set("cycels", 42);  // the canonical typo
  EXPECT_THROW(core::record_accepted_keys(campaign), std::invalid_argument);
  EXPECT_THROW(core::CampaignSpec::from_json(campaign), std::invalid_argument);
}

// razorlint's own contract: every rule fires on its positive fixture, stays
// silent on its negative fixture, scoping and suppression semantics hold,
// the layer map is a DAG — and the real tree is clean, which is what lets
// CI fail the build on any new unsuppressed diagnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "razorlint.hpp"

namespace {

using razorlint::Diagnostic;

std::string fixture(const std::string& name) {
  return std::string(RAZORBUS_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

// Lint a fixture under a chosen virtual path (rule scoping and the wallclock
// whitelist key off the repo-relative path, not the on-disk location).
std::vector<Diagnostic> lint_as(const std::string& name, const std::string& vpath) {
  return razorlint::lint_path(fixture(name), vpath);
}

int count_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

std::string render(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) out += razorlint::format(d) + "\n";
  return out;
}

// ----------------------------------------------------------------- float-eq

TEST(FloatEq, FiresOnLiteralComparisons) {
  const auto diags = lint_as("float_eq_bad.cpp", "tests/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "float-eq"), 3) << render(diags);
  EXPECT_EQ(diags.size(), 3u) << render(diags);
}

TEST(FloatEq, SilentOnToleranceIdiomAndJustifiedAllow) {
  const auto diags = lint_as("float_eq_ok.cpp", "tests/fixture.cpp");
  EXPECT_TRUE(diags.empty()) << render(diags);
}

// ------------------------------------------------------------- no-wallclock

TEST(NoWallclock, FiresOnChronoClocksAndCTimeCalls) {
  const auto diags = lint_as("wallclock_bad.cpp", "tests/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "no-wallclock"), 3) << render(diags);
}

TEST(NoWallclock, SilentOnMethodsNamedClockOrTime) {
  const auto diags = lint_as("wallclock_ok.cpp", "tests/fixture.cpp");
  EXPECT_TRUE(diags.empty()) << render(diags);
}

TEST(NoWallclock, WhitelistedBenchTimerPathIsExempt) {
  // The same violating content is clean under a whitelisted virtual path:
  // the bench harness is SUPPOSED to read steady_clock.
  const auto diags = lint_as("wallclock_bad.cpp", "bench/bench_common.cpp");
  EXPECT_EQ(count_rule(diags, "no-wallclock"), 0) << render(diags);
}

// ------------------------------------------------------------ no-raw-random

TEST(NoRawRandom, FiresOnStdEnginesRandomDeviceAndCRand) {
  const auto diags = lint_as("raw_random_bad.cpp", "tests/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "no-raw-random"), 3) << render(diags);
}

TEST(NoRawRandom, SilentOnUtilRngIdiomAndJustifiedAllow) {
  const auto diags = lint_as("raw_random_ok.cpp", "tests/fixture.cpp");
  EXPECT_TRUE(diags.empty()) << render(diags);
}

// --------------------------------------------------- no-unordered-iteration

TEST(NoUnorderedIteration, FiresOnRangeForOverUnorderedMap) {
  const auto diags = lint_as("unordered_iteration_bad.cpp", "tests/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "no-unordered-iteration"), 1) << render(diags);
}

TEST(NoUnorderedIteration, SilentOnOrderedIterationAndPointLookups) {
  const auto diags = lint_as("unordered_iteration_ok.cpp", "tests/fixture.cpp");
  EXPECT_TRUE(diags.empty()) << render(diags);
}

// -------------------------------------------------------- no-mutable-static

TEST(NoMutableStatic, FiresOnAllThreeShapesInLibraryCode) {
  const auto diags = lint_as("mutable_static_bad.cpp", "src/util/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "no-mutable-static"), 3) << render(diags);
}

TEST(NoMutableStatic, SilentOnConstantsAndJustifiedAllow) {
  const auto diags = lint_as("mutable_static_ok.cpp", "src/util/fixture.cpp");
  EXPECT_TRUE(diags.empty()) << render(diags);
}

TEST(NoMutableStatic, ScopedToLibraryCodeOnly) {
  // The same content outside src/ is a test/bench concern, not a library
  // one — the rule stays silent there.
  const auto diags = lint_as("mutable_static_bad.cpp", "tests/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "no-mutable-static"), 0) << render(diags);
}

// ---------------------------------------------------------------- layer-dag

TEST(LayerDag, FiresOnUpwardUnprefixedAndForeignIncludes) {
  const auto diags = lint_as("layer_dag_bad.cpp", "src/util/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "layer-dag"), 3) << render(diags);
}

TEST(LayerDag, SilentOnDownwardEdges) {
  const auto diags = lint_as("layer_dag_ok.cpp", "src/razor/fixture.cpp");
  EXPECT_TRUE(diags.empty()) << render(diags);
}

TEST(LayerDag, ScopedToLibraryCodeOnly) {
  // bench/tests/examples/tools sit above the library and may include any
  // layer.
  const auto diags = lint_as("layer_dag_bad.cpp", "bench/fixture.cpp");
  EXPECT_EQ(count_rule(diags, "layer-dag"), 0) << render(diags);
}

TEST(LayerDag, LayerMapIsAcyclic) {
  EXPECT_EQ(razorlint::layer_dag_cycle(), "");
}

// ------------------------------------------------------------- suppressions

TEST(Suppressions, MalformedAllowsAreDiagnosedAndSuppressNothing) {
  const auto diags = lint_as("suppression_bad.cpp", "tests/fixture.cpp");
  // Two bad allow() comments (missing justification, unknown rule) — and the
  // float-eq they failed to cover still fires.
  EXPECT_EQ(count_rule(diags, "suppression"), 2) << render(diags);
  EXPECT_EQ(count_rule(diags, "float-eq"), 1) << render(diags);
}

// -------------------------------------------------------------- whole tree

TEST(Tree, AllSixRulesAreRegistered) {
  const auto& names = razorlint::rule_names();
  ASSERT_EQ(names.size(), 6u);
  for (const char* expected :
       {"float-eq", "no-wallclock", "no-raw-random", "no-unordered-iteration",
        "no-mutable-static", "layer-dag"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(Tree, FixturesAreExcludedFromTheWalk) {
  const auto sources = razorlint::collect_sources(RAZORBUS_SOURCE_DIR);
  ASSERT_FALSE(sources.empty());
  for (const std::string& path : sources)
    EXPECT_EQ(path.find("lint_fixtures"), std::string::npos) << path;
  // The walk does cover this very test and the library proper.
  EXPECT_NE(std::find(sources.begin(), sources.end(), "tests/lint_test.cpp"),
            sources.end());
  EXPECT_NE(std::find(sources.begin(), sources.end(), "src/bus/simulator.cpp"),
            sources.end());
}

TEST(Tree, RepositoryIsCleanUnderAllRules) {
  // The acceptance gate: the full tree lints clean, so any new diagnostic is
  // a regression this test (and the CI lint job) catches.
  const auto diags = razorlint::lint_tree(RAZORBUS_SOURCE_DIR);
  EXPECT_TRUE(diags.empty()) << render(diags);
}

}  // namespace

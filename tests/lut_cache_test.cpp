// The LUT cache stack: the in-memory memo behind build_or_load, the
// RAZORBUS_CACHE_DIR disk cache with its key-hash check, and the
// incremental content-addressed point store that makes overlapping
// characterizations free (docs/characterization.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "lut/cache.hpp"
#include "lut/pattern.hpp"
#include "lut/point_store.hpp"
#include "lut/table.hpp"
#include "test_support.hpp"

namespace razorbus::lut {
namespace {

using test_support::small_lut_config;
using test_support::sized_paper_bus;

// Points RAZORBUS_CACHE_DIR at an isolated per-test directory for the
// guard's lifetime; restores the previous value and removes the directory
// on destruction.
class CacheDirGuard {
 public:
  explicit CacheDirGuard(const std::string& dir) : dir_(dir) {
    const char* prev = std::getenv("RAZORBUS_CACHE_DIR");
    had_prev_ = prev != nullptr;
    if (prev) prev_ = prev;
    std::filesystem::remove_all(dir_);
    setenv("RAZORBUS_CACHE_DIR", dir_.c_str(), 1);
  }
  ~CacheDirGuard() {
    if (had_prev_)
      setenv("RAZORBUS_CACHE_DIR", prev_.c_str(), 1);
    else
      unsetenv("RAZORBUS_CACHE_DIR");
    std::filesystem::remove_all(dir_);
  }

 private:
  std::string dir_;
  std::string prev_;
  bool had_prev_ = false;
};

// A few dense grid points only: fast to characterise.
LutConfig tiny_config(double vmin) {
  LutConfig cfg = small_lut_config();
  cfg.vmin = vmin;
  cfg.corners = {tech::ProcessCorner::typical};
  return cfg;
}

// The small grid with adaptive refinement enabled at the default bounds.
LutConfig tiny_adaptive_config() {
  LutConfig cfg = small_lut_config();
  cfg.corners = {tech::ProcessCorner::typical};
  cfg.tolerance.relative = 0.02;
  cfg.tolerance.delay_abs_s = 2e-12;
  cfg.tolerance.energy_abs_j = 2e-15;
  return cfg;
}

std::string table_path(const std::string& dir, const LutConfig& cfg) {
  std::ostringstream name;
  name << dir << "/lut_" << std::hex << table_key_hash(sized_paper_bus(), cfg)
       << ".bin";
  return name.str();
}

TEST(LutCache, MemoHitSkipsDisk) {
  CacheDirGuard guard("./.razorbus_cache_memo_test");
  const tech::DriverModel driver(sized_paper_bus().node);
  const LutConfig cfg = tiny_config(1.16);

  int first_progress = 0;
  const DelayEnergyTable first = build_or_load(
      sized_paper_bus(), driver, cfg, [&](int, int) { ++first_progress; });
  EXPECT_GT(first_progress, 0);  // cold: characterised for real

  // Wipe the disk cache entirely: a repeat call must be served by the
  // in-memory memo — no rebuild (progress stays silent), no sims.
  std::filesystem::remove_all(cache_directory());
  int second_progress = 0;
  BuildStats stats;
  stats.transient_sims = 99;  // must be overwritten, not accumulated
  const DelayEnergyTable second = build_or_load(
      sized_paper_bus(), driver, cfg, [&](int, int) { ++second_progress; }, &stats);
  EXPECT_EQ(second_progress, 0);
  EXPECT_EQ(stats.transient_sims, 0u);
  EXPECT_EQ(stats.store_hits, 0u);
  ASSERT_FALSE(second.empty());

  const int cls = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                       NeighborActivity::fall);
  EXPECT_EQ(first.delay_at(cls, 0, 0, 0), second.delay_at(cls, 0, 0, 0));
  EXPECT_EQ(first.energy_at(cls, 0, 0, 0), second.energy_at(cls, 0, 0, 0));
}

TEST(LutCache, HashMismatchRebuildsCleanly) {
  CacheDirGuard guard("./.razorbus_cache_mismatch_test");
  const tech::DriverModel driver(sized_paper_bus().node);
  const LutConfig cfg_a = tiny_config(1.16);
  const LutConfig cfg_b = tiny_config(1.18);
  ASSERT_NE(table_key_hash(sized_paper_bus(), cfg_a),
            table_key_hash(sized_paper_bus(), cfg_b));

  build_or_load(sized_paper_bus(), driver, cfg_a);
  const std::string dir = cache_directory();

  // Plant config A's bytes at config B's expected path — the stale-entry
  // shape a config change leaves behind. Its embedded hash cannot match
  // B's key, so build_or_load must rebuild instead of trusting the file.
  std::filesystem::copy_file(table_path(dir, cfg_a), table_path(dir, cfg_b));
  int progress_calls = 0;
  const DelayEnergyTable b = build_or_load(sized_paper_bus(), driver, cfg_b,
                                           [&](int, int) { ++progress_calls; });
  EXPECT_GT(progress_calls, 0);  // rebuilt, not loaded from the planted file
  EXPECT_DOUBLE_EQ(b.grid().vmin(), cfg_b.vmin);

  // The rebuild replaced the planted file with a loadable one.
  std::ifstream in(table_path(dir, cfg_b), std::ios::binary);
  ASSERT_TRUE(in.good());
  EXPECT_TRUE(
      DelayEnergyTable::load(in, table_key_hash(sized_paper_bus(), cfg_b)).has_value());
}

TEST(LutCache, PointStoreEliminatesRedundantSims) {
  CacheDirGuard guard("./.razorbus_cache_store_test");
  const tech::DriverModel driver(sized_paper_bus().node);
  const LutConfig cfg = tiny_adaptive_config();

  BuildStats cold;
  const DelayEnergyTable first =
      build_or_load(sized_paper_bus(), driver, cfg, {}, &cold);
  EXPECT_TRUE(first.adaptive());
  EXPECT_GT(cold.transient_sims, 0u);

  // A second campaign re-characterising the same candidate points against
  // the shared store performs ZERO redundant transient runs: every point
  // is a store hit. (Built directly — build_or_load's memo would answer
  // without exercising the store at all.)
  const auto store =
      PointStore::open(cache_directory(), design_content_hash(sized_paper_bus()));
  BuildStats warm;
  const DelayEnergyTable second = DelayEnergyTable::build(sized_paper_bus(), driver,
                                                          cfg, {}, store.get(), &warm);
  EXPECT_EQ(warm.transient_sims, 0u);
  EXPECT_GT(warm.store_hits, 0u);
  ASSERT_EQ(first.breakpoints(0, 0).size(), second.breakpoints(0, 0).size());
  const int cls = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                       NeighborActivity::fall);
  for (std::size_t vi = 0; vi < first.breakpoints(0, 0).size(); ++vi) {
    EXPECT_EQ(first.breakpoints(0, 0).voltage(vi), second.breakpoints(0, 0).voltage(vi));
    EXPECT_EQ(first.delay_at(cls, 0, 0, vi), second.delay_at(cls, 0, 0, vi));
    EXPECT_EQ(first.energy_at(cls, 0, 0, vi), second.energy_at(cls, 0, 0, vi));
  }

  // An overlapping sub-range campaign only pays for points it never
  // simulated before.
  LutConfig sub = cfg;
  sub.vmax = cfg.vmax - cfg.vstep;
  BuildStats sub_stats;
  build_or_load(sized_paper_bus(), driver, sub, {}, &sub_stats);
  EXPECT_GT(sub_stats.store_hits, 0u);
  EXPECT_LT(sub_stats.transient_sims, cold.transient_sims);
}

TEST(PointStoreTest, PersistsAndReloads) {
  const std::string dir_a = "./.razorbus_pts_reload_a_test";
  const std::string dir_b = "./.razorbus_pts_reload_b_test";
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
  std::filesystem::create_directories(dir_a);
  std::filesystem::create_directories(dir_b);

  const std::uint64_t design_hash = 0x1234;
  const std::uint64_t key_1 =
      point_key(design_hash, tech::ProcessCorner::typical, 100.0, 1.10, 7);
  const std::uint64_t key_2 =
      point_key(design_hash, tech::ProcessCorner::slow, 25.0, 0.90, 12);
  ASSERT_NE(key_1, key_2);

  const auto store = PointStore::open(dir_a, design_hash);
  EXPECT_EQ(store->size(), 0u);
  EXPECT_FALSE(store->lookup(key_1).has_value());
  store->insert(key_1, {1e-10, 2e-13});
  store->insert(key_2, {-1.0, 5e-14});  // raw "victim did not switch" result
  store->flush();

  // The flushed bytes under a fresh directory model a cold process: the
  // store loads both points and answers lookups from them.
  std::filesystem::copy_file(store->path(), dir_b + "/points_1234.bin");
  const auto reloaded = PointStore::open(dir_b, design_hash);
  EXPECT_EQ(reloaded->size(), 2u);
  const auto hit = reloaded->lookup(key_1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->delay, 1e-10);
  EXPECT_DOUBLE_EQ(hit->energy, 2e-13);
  const auto raw = reloaded->lookup(key_2);
  ASSERT_TRUE(raw.has_value());
  EXPECT_DOUBLE_EQ(raw->delay, -1.0);
  EXPECT_EQ(reloaded->stats().hits, 2u);
  EXPECT_EQ(reloaded->stats().misses, 0u);

  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(PointStoreTest, GarbageFileStartsColdAndIsReplaced) {
  const std::string dir = "./.razorbus_pts_garbage_test";
  const std::string dir_check = "./.razorbus_pts_garbage_check_test";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir_check);
  std::filesystem::create_directories(dir);
  std::filesystem::create_directories(dir_check);

  const std::uint64_t design_hash = 0xbeef;
  {
    std::ofstream out(dir + "/points_beef.bin", std::ios::binary);
    out << "not a point store at all";
  }
  const auto store = PointStore::open(dir, design_hash);
  EXPECT_EQ(store->size(), 0u);  // foreign bytes: start cold, don't throw

  store->insert(point_key(design_hash, tech::ProcessCorner::fast, 25.0, 1.0, 3),
                {3e-11, 4e-14});
  store->flush();  // atomically replaces the garbage

  std::filesystem::copy_file(store->path(), dir_check + "/points_beef.bin");
  EXPECT_EQ(PointStore::open(dir_check, design_hash)->size(), 1u);

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir_check);
}

// TSan-facing hammer (build_or_load is called from sharded
// characterization, so the store must take concurrent lookup/insert/flush
// traffic). Values are pure functions of the key, so whatever the
// interleaving, the surviving contents are identical.
TEST(PointStoreTest, ConcurrentLookupInsertFlush) {
  const std::string dir = "./.razorbus_pts_hammer_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const std::uint64_t design_hash = 0x77;
  const auto store = PointStore::open(dir, design_hash);
  const auto worker = [&](int base) {
    for (int i = 0; i < 200; ++i) {
      const int cls = (base + i) % 64;
      const std::uint64_t key = point_key(design_hash, tech::ProcessCorner::slow,
                                          100.0, 1.0 + 0.001 * cls, cls);
      store->lookup(key);
      store->insert(key, {1e-12 * cls, 1e-15});
      if (i % 50 == 0) store->flush();
    }
  };
  std::thread a(worker, 0);
  std::thread b(worker, 100);
  a.join();
  b.join();
  store->flush();

  EXPECT_EQ(store->size(), 64u);  // one entry per distinct key
  EXPECT_EQ(store->stats().inserts, 64u);
  for (int cls = 0; cls < 64; ++cls) {
    const auto hit = store->lookup(point_key(design_hash, tech::ProcessCorner::slow,
                                             100.0, 1.0 + 0.001 * cls, cls));
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(hit->delay, 1e-12 * cls);
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace razorbus::lut

// Lifetime-scale environmental drift: slow temperature ramps and
// aging-style threshold shift over a closed-loop run (docs/campaigns.md
// `drift`).
//
// A Schedule maps an absolute cycle to a (temperature, vth shift)
// operating state — either a single linear ramp over the run or explicit
// piecewise-linear breakpoints — and `corner_at` folds that state into
// the tech::PvtCorner the simulator already understands:
//
//  * Temperature snaps to the nearest characterised axis entry (the
//    tables are built at discrete temperatures and lut::temp_index
//    rejects anything off-axis), mirroring the Monte-Carlo sampler's
//    quantisation in core::draw_pvt_corner.
//  * A threshold shift dVth folds into ir_drop_fraction as dVth/vdd: in
//    the alpha-power delay model (tech/device.hpp) delay is set by the
//    gate overdrive V - Vth, so raising Vth by dV at fixed V slows the
//    drivers exactly like losing dV of supply — which is what the IR-drop
//    fraction already models, and what the tables are characterised over
//    via effective_supply. Aging therefore reuses the existing
//    characterisation instead of adding a table axis.
//
// Drivers apply the schedule as a lazy corner-modulating wrapper at
// controller-window granularity (sys::BusSystem), so a 10^9-cycle drift
// run re-slices the tables ~10^5 times and never materialises anything:
// streamed drift campaigns stay in O(block) memory.
#pragma once

#include <cstdint>
#include <vector>

#include "tech/corner.hpp"

namespace razorbus::drift {

// One breakpoint of a piecewise-linear schedule. `vth_shift_v` is the
// aging-induced threshold increase in volts (>= 0).
struct Breakpoint {
  std::uint64_t cycle = 0;
  double temp_c = 25.0;
  double vth_shift_v = 0.0;
};

class Schedule {
 public:
  // Default-constructed schedule is disabled: at() is meaningless and
  // drivers skip the wrapper entirely, keeping zero-drift runs
  // byte-identical to static-corner runs.
  Schedule() = default;

  // Linear ramp from (temp_start, vth_start) at cycle 0 to
  // (temp_end, vth_end) at `cycles`, clamped afterwards. Throws
  // std::invalid_argument when cycles == 0 or a value is out of range.
  static Schedule linear(std::uint64_t cycles, double temp_start,
                         double temp_end, double vth_start, double vth_end);

  // Explicit breakpoints; linear between them, clamped outside. Throws
  // std::invalid_argument on an empty list, cycles that are not strictly
  // increasing, or out-of-range values.
  static Schedule piecewise(std::vector<Breakpoint> points);

  bool enabled() const { return !points_.empty(); }
  const std::vector<Breakpoint>& points() const { return points_; }

  // Interpolated state at `cycle` (the returned Breakpoint's cycle field
  // echoes the query). Requires enabled().
  Breakpoint at(std::uint64_t cycle) const;

  // The corner a simulator should run the window starting at `cycle`:
  // `base` with the schedule's temperature (snapped to the nearest entry
  // of `temp_axis`, the characterised temperatures of the job's table)
  // and its vth shift folded into ir_drop_fraction as vth/vdd_nominal.
  // Throws std::invalid_argument if the folded IR drop reaches 1 (no
  // effective supply left). Requires enabled().
  tech::PvtCorner corner_at(const tech::PvtCorner& base, std::uint64_t cycle,
                            double vdd_nominal,
                            const std::vector<double>& temp_axis) const;

 private:
  explicit Schedule(std::vector<Breakpoint> points);

  std::vector<Breakpoint> points_;
};

}  // namespace razorbus::drift

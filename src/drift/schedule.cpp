#include "drift/schedule.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace razorbus::drift {

namespace {

void validate_state(double temp_c, double vth_shift_v) {
  if (!(temp_c >= -55.0 && temp_c <= 150.0))
    throw std::invalid_argument(
        "drift schedule: temperature " + std::to_string(temp_c) +
        " C out of range [-55, 150]");
  if (!(vth_shift_v >= 0.0))
    throw std::invalid_argument("drift schedule: vth shift must be >= 0");
}

}  // namespace

Schedule::Schedule(std::vector<Breakpoint> points)
    : points_(std::move(points)) {}

Schedule Schedule::linear(std::uint64_t cycles, double temp_start,
                          double temp_end, double vth_start, double vth_end) {
  if (cycles == 0)
    throw std::invalid_argument("drift schedule: linear ramp needs cycles > 0");
  return piecewise({{0, temp_start, vth_start}, {cycles, temp_end, vth_end}});
}

Schedule Schedule::piecewise(std::vector<Breakpoint> points) {
  if (points.empty())
    throw std::invalid_argument("drift schedule: no breakpoints");
  for (std::size_t i = 0; i < points.size(); ++i) {
    validate_state(points[i].temp_c, points[i].vth_shift_v);
    if (i > 0 && points[i].cycle <= points[i - 1].cycle)
      throw std::invalid_argument(
          "drift schedule: breakpoint cycles must be strictly increasing");
  }
  return Schedule(std::move(points));
}

Breakpoint Schedule::at(std::uint64_t cycle) const {
  if (!enabled())
    throw std::logic_error("drift schedule: at() on a disabled schedule");
  Breakpoint out;
  out.cycle = cycle;
  if (cycle <= points_.front().cycle) {
    out.temp_c = points_.front().temp_c;
    out.vth_shift_v = points_.front().vth_shift_v;
    return out;
  }
  if (cycle >= points_.back().cycle) {
    out.temp_c = points_.back().temp_c;
    out.vth_shift_v = points_.back().vth_shift_v;
    return out;
  }
  std::size_t hi = 1;
  while (points_[hi].cycle < cycle) ++hi;
  const Breakpoint& a = points_[hi - 1];
  const Breakpoint& b = points_[hi];
  const double t = static_cast<double>(cycle - a.cycle) /
                   static_cast<double>(b.cycle - a.cycle);
  out.temp_c = a.temp_c + t * (b.temp_c - a.temp_c);
  out.vth_shift_v = a.vth_shift_v + t * (b.vth_shift_v - a.vth_shift_v);
  return out;
}

tech::PvtCorner Schedule::corner_at(const tech::PvtCorner& base,
                                    std::uint64_t cycle, double vdd_nominal,
                                    const std::vector<double>& temp_axis) const {
  const Breakpoint state = at(cycle);
  tech::PvtCorner corner = base;
  if (!temp_axis.empty()) {
    // Nearest characterised temperature (ties resolve to the lower entry),
    // mirroring core::draw_pvt_corner's quantisation.
    double best = temp_axis.front();
    for (double t : temp_axis)
      if (std::abs(t - state.temp_c) < std::abs(best - state.temp_c)) best = t;
    corner.temp_c = best;
  } else {
    corner.temp_c = state.temp_c;
  }
  if (!(vdd_nominal > 0.0))
    throw std::invalid_argument("drift schedule: vdd_nominal must be > 0");
  corner.ir_drop_fraction += state.vth_shift_v / vdd_nominal;
  if (corner.ir_drop_fraction >= 1.0)
    throw std::invalid_argument(
        "drift schedule: aged IR drop fraction reaches 1 (no supply left)");
  return corner;
}

}  // namespace razorbus::drift

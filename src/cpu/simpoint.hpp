// SimPoint-style representative window selection.
//
// The paper uses the SimPoint toolset's Early SimPoints to pick 10M-
// instruction windows that represent whole SPEC2000 runs. We provide the
// same capability for bus traces: split the trace into fixed windows,
// build a per-window feature vector (bit-toggle profile + activity +
// worst-pattern density — the bus-level analogue of basic-block vectors),
// cluster with k-means, and return one medoid window per cluster with a
// weight proportional to its cluster's size. Running experiments on the
// weighted simpoints approximates the full trace at a fraction of the
// cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace razorbus::cpu {

struct SimPointConfig {
  std::size_t window_cycles = 10000;
  std::size_t clusters = 4;       // k
  int kmeans_iterations = 25;
  std::uint64_t seed = 1;         // k-means++ style seeding
};

struct SimPoint {
  std::size_t window_index = 0;  // which window of the trace
  std::size_t begin_cycle = 0;
  double weight = 0.0;           // fraction of windows this point represents
};

struct SimPointResult {
  std::vector<SimPoint> points;        // sorted by window index
  std::size_t window_cycles = 0;
  std::size_t total_windows = 0;
};

// Selects simpoints for `trace`. Requires at least one full window; the
// trailing partial window is ignored (as SimPoint does). Throws
// std::invalid_argument on bad configs.
SimPointResult select_simpoints(const trace::Trace& trace, const SimPointConfig& config);

// Builds the weighted sub-trace: the selected windows concatenated, each
// replicated in proportion to its weight so that the output is roughly
// `target_windows` windows long. This keeps downstream tooling
// trace-agnostic while honouring the cluster weights.
trace::Trace materialize_simpoints(const trace::Trace& trace,
                                   const SimPointResult& result,
                                   std::size_t target_windows = 10);

// Per-window feature vector (exposed for tests): 32 per-bit toggle rates,
// the active-cycle rate and the worst-pattern rate — 34 dimensions.
std::vector<double> window_features(const trace::Trace& trace, std::size_t begin,
                                    std::size_t cycles);

}  // namespace razorbus::cpu

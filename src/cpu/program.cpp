#include "cpu/program.hpp"

#include <stdexcept>

namespace razorbus::cpu {

void ProgramBuilder::check_register(int r) {
  if (r < 0 || r >= kRegisterCount)
    throw std::invalid_argument("ProgramBuilder: register out of range");
}

ProgramBuilder& ProgramBuilder::emit(Opcode op, int rd, int ra, int rb,
                                     std::int64_t imm) {
  check_register(rd);
  check_register(ra);
  check_register(rb);
  code_.push_back({op, static_cast<std::uint8_t>(rd), static_cast<std::uint8_t>(ra),
                   static_cast<std::uint8_t>(rb), imm});
  return *this;
}

ProgramBuilder& ProgramBuilder::emit_branch(Opcode op, int ra, int rb,
                                            const std::string& target) {
  fixups_.emplace_back(code_.size(), target);
  return emit(op, 0, ra, rb, -1);
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  if (!labels_.emplace(name, code_.size()).second)
    throw std::invalid_argument("ProgramBuilder: duplicate label " + name);
  return *this;
}

ProgramBuilder& ProgramBuilder::halt() { return emit(Opcode::halt); }
ProgramBuilder& ProgramBuilder::nop() { return emit(Opcode::nop); }
ProgramBuilder& ProgramBuilder::loadi(int rd, std::uint32_t imm) {
  return emit(Opcode::loadi, rd, 0, 0, static_cast<std::int64_t>(imm));
}
ProgramBuilder& ProgramBuilder::mov(int rd, int ra) { return emit(Opcode::mov, rd, ra); }
ProgramBuilder& ProgramBuilder::add(int rd, int ra, int rb) {
  return emit(Opcode::add, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::sub(int rd, int ra, int rb) {
  return emit(Opcode::sub, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::mul(int rd, int ra, int rb) {
  return emit(Opcode::mul, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::divu(int rd, int ra, int rb) {
  return emit(Opcode::divu, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::and_(int rd, int ra, int rb) {
  return emit(Opcode::and_, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::or_(int rd, int ra, int rb) {
  return emit(Opcode::or_, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::xor_(int rd, int ra, int rb) {
  return emit(Opcode::xor_, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::shl(int rd, int ra, int rb) {
  return emit(Opcode::shl, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::shr(int rd, int ra, int rb) {
  return emit(Opcode::shr, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::sra(int rd, int ra, int rb) {
  return emit(Opcode::sra, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::addi(int rd, int ra, std::int32_t imm) {
  return emit(Opcode::addi, rd, ra, 0, imm);
}
ProgramBuilder& ProgramBuilder::muli(int rd, int ra, std::int32_t imm) {
  return emit(Opcode::muli, rd, ra, 0, imm);
}
ProgramBuilder& ProgramBuilder::andi(int rd, int ra, std::uint32_t imm) {
  return emit(Opcode::andi, rd, ra, 0, static_cast<std::int64_t>(imm));
}
ProgramBuilder& ProgramBuilder::ori(int rd, int ra, std::uint32_t imm) {
  return emit(Opcode::ori, rd, ra, 0, static_cast<std::int64_t>(imm));
}
ProgramBuilder& ProgramBuilder::xori(int rd, int ra, std::uint32_t imm) {
  return emit(Opcode::xori, rd, ra, 0, static_cast<std::int64_t>(imm));
}
ProgramBuilder& ProgramBuilder::shli(int rd, int ra, int amount) {
  return emit(Opcode::shli, rd, ra, 0, amount);
}
ProgramBuilder& ProgramBuilder::shri(int rd, int ra, int amount) {
  return emit(Opcode::shri, rd, ra, 0, amount);
}
ProgramBuilder& ProgramBuilder::popcnt(int rd, int ra) {
  return emit(Opcode::popcnt, rd, ra);
}
ProgramBuilder& ProgramBuilder::load(int rd, int ra, std::int32_t offset) {
  return emit(Opcode::load, rd, ra, 0, offset);
}
ProgramBuilder& ProgramBuilder::store(int ra, std::int32_t offset, int rb) {
  return emit(Opcode::store, 0, ra, rb, offset);
}
ProgramBuilder& ProgramBuilder::beq(int ra, int rb, const std::string& t) {
  return emit_branch(Opcode::beq, ra, rb, t);
}
ProgramBuilder& ProgramBuilder::bne(int ra, int rb, const std::string& t) {
  return emit_branch(Opcode::bne, ra, rb, t);
}
ProgramBuilder& ProgramBuilder::blt(int ra, int rb, const std::string& t) {
  return emit_branch(Opcode::blt, ra, rb, t);
}
ProgramBuilder& ProgramBuilder::bge(int ra, int rb, const std::string& t) {
  return emit_branch(Opcode::bge, ra, rb, t);
}
ProgramBuilder& ProgramBuilder::bltu(int ra, int rb, const std::string& t) {
  return emit_branch(Opcode::bltu, ra, rb, t);
}
ProgramBuilder& ProgramBuilder::jmp(const std::string& t) {
  return emit_branch(Opcode::jmp, 0, 0, t);
}
ProgramBuilder& ProgramBuilder::fadd(int rd, int ra, int rb) {
  return emit(Opcode::fadd, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::fsub(int rd, int ra, int rb) {
  return emit(Opcode::fsub, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::fmul(int rd, int ra, int rb) {
  return emit(Opcode::fmul, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::fdiv(int rd, int ra, int rb) {
  return emit(Opcode::fdiv, rd, ra, rb);
}
ProgramBuilder& ProgramBuilder::itof(int rd, int ra) {
  return emit(Opcode::itof, rd, ra);
}
ProgramBuilder& ProgramBuilder::ftoi(int rd, int ra) {
  return emit(Opcode::ftoi, rd, ra);
}

Program ProgramBuilder::build() {
  for (const auto& [index, label] : fixups_) {
    const auto it = labels_.find(label);
    if (it == labels_.end())
      throw std::invalid_argument("ProgramBuilder: undefined label " + label);
    code_[index].imm = static_cast<std::int64_t>(it->second);
  }
  Program p;
  p.name = name_;
  p.code = code_;
  return p;
}

}  // namespace razorbus::cpu

#include "cpu/machine.hpp"

#include "util/bits.hpp"
#include <cmath>
#include <stdexcept>

namespace razorbus::cpu {

namespace {

float as_float(std::uint32_t bits) { return razorbus::bit_cast<float>(bits); }
std::uint32_t as_bits(float value) { return razorbus::bit_cast<std::uint32_t>(value); }

}  // namespace

Machine::Machine(Program program, std::size_t memory_words)
    : program_(std::move(program)), memory_(memory_words, 0) {
  if (memory_words == 0 || (memory_words & (memory_words - 1)) != 0)
    throw std::invalid_argument("Machine: memory size must be a power of two");
  if (program_.code.empty()) throw std::invalid_argument("Machine: empty program");
  addr_mask_ = static_cast<std::uint32_t>(memory_words - 1);
}

bool Machine::step(std::uint32_t& load_data) {
  if (halted_) return false;
  if (pc_ >= program_.code.size()) {
    halted_ = true;
    return false;
  }
  const Instruction& in = program_.code[pc_];
  std::uint64_t next_pc = pc_ + 1;
  bool is_load_instr = false;

  const std::uint32_t a = regs_[in.ra];
  const std::uint32_t b = regs_[in.rb];
  auto& d = regs_[in.rd];
  const auto imm32 = static_cast<std::uint32_t>(in.imm);

  switch (in.op) {
    case Opcode::halt: halted_ = true; return false;
    case Opcode::nop: break;
    case Opcode::loadi: d = imm32; break;
    case Opcode::mov: d = a; break;
    case Opcode::add: d = a + b; break;
    case Opcode::sub: d = a - b; break;
    case Opcode::mul: d = a * b; break;
    case Opcode::divu: d = b ? a / b : 0; break;
    case Opcode::and_: d = a & b; break;
    case Opcode::or_: d = a | b; break;
    case Opcode::xor_: d = a ^ b; break;
    case Opcode::shl: d = a << (b & 31u); break;
    case Opcode::shr: d = a >> (b & 31u); break;
    case Opcode::sra: d = static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                                     (b & 31u)); break;
    case Opcode::addi: d = a + imm32; break;
    case Opcode::muli: d = a * imm32; break;
    case Opcode::andi: d = a & imm32; break;
    case Opcode::ori: d = a | imm32; break;
    case Opcode::xori: d = a ^ imm32; break;
    case Opcode::shli: d = a << (imm32 & 31u); break;
    case Opcode::shri: d = a >> (imm32 & 31u); break;
    case Opcode::popcnt: d = static_cast<std::uint32_t>(razorbus::popcount32(a)); break;
    case Opcode::load: {
      const std::uint32_t addr = (a + imm32) & addr_mask_;
      d = memory_[addr];
      load_data = d;
      is_load_instr = true;
      break;
    }
    case Opcode::store: {
      const std::uint32_t addr = (a + imm32) & addr_mask_;
      memory_[addr] = b;
      break;
    }
    case Opcode::beq: if (a == b) next_pc = static_cast<std::uint64_t>(in.imm); break;
    case Opcode::bne: if (a != b) next_pc = static_cast<std::uint64_t>(in.imm); break;
    case Opcode::blt:
      if (static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b))
        next_pc = static_cast<std::uint64_t>(in.imm);
      break;
    case Opcode::bge:
      if (static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b))
        next_pc = static_cast<std::uint64_t>(in.imm);
      break;
    case Opcode::bltu: if (a < b) next_pc = static_cast<std::uint64_t>(in.imm); break;
    case Opcode::jmp: next_pc = static_cast<std::uint64_t>(in.imm); break;
    case Opcode::fadd: d = as_bits(as_float(a) + as_float(b)); break;
    case Opcode::fsub: d = as_bits(as_float(a) - as_float(b)); break;
    case Opcode::fmul: d = as_bits(as_float(a) * as_float(b)); break;
    case Opcode::fdiv: {
      const float fb = as_float(b);
      // razorlint: allow(float-eq): architectural divide-by-zero guard — the
      // ISA defines x/±0.0 as exactly 0.0, so the test must be exact IEEE.
      d = as_bits(fb == 0.0f ? 0.0f : as_float(a) / fb);
      break;
    }
    case Opcode::itof:
      d = as_bits(static_cast<float>(static_cast<std::int32_t>(a)));
      break;
    case Opcode::ftoi: {
      const float f = as_float(a);
      d = std::isfinite(f) ? static_cast<std::uint32_t>(static_cast<std::int32_t>(f)) : 0;
      break;
    }
  }

  pc_ = next_pc;
  ++executed_;
  return is_load_instr;
}

std::uint64_t Machine::run(std::uint64_t max_instructions,
                           const std::function<void(std::uint32_t)>& on_load) {
  std::uint64_t count = 0;
  std::uint32_t data = 0;
  while (count < max_instructions && !halted_) {
    const std::uint64_t before = executed_;
    const bool loaded = step(data);
    if (executed_ == before) break;  // halted without executing
    ++count;
    if (loaded && on_load) on_load(data);
  }
  return count;
}

trace::Trace capture_bus_trace(Machine& machine, std::size_t cycles,
                               const std::string& trace_name) {
  trace::Trace out;
  out.name = trace_name;
  out.words.reserve(cycles);
  std::uint32_t bus_word = 0;
  std::uint32_t data = 0;
  while (out.words.size() < cycles && !machine.halted()) {
    const std::uint64_t before = machine.instructions_executed();
    const bool loaded = machine.step(data);
    if (machine.instructions_executed() == before) break;  // halted on entry
    if (loaded) bus_word = data;
    out.words.push_back(bus_word);
  }
  return out;
}

}  // namespace razorbus::cpu

// Functional simulator (the sim-safe substitute).
//
// Executes one instruction per call; every LOAD reports its data word —
// that word is what travels over the memory read bus to the execution
// core. Memory is word-addressed and wraps at its (power-of-two) size, so
// benchmark kernels cannot fault.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/program.hpp"
#include "trace/trace.hpp"

namespace razorbus::cpu {

class Machine {
 public:
  // `memory_words` must be a power of two (default 1 Mi words = 4 MiB).
  explicit Machine(Program program, std::size_t memory_words = 1u << 20);

  // State accessors.
  std::uint32_t reg(int index) const { return regs_.at(static_cast<std::size_t>(index)); }
  void set_reg(int index, std::uint32_t value) {
    regs_.at(static_cast<std::size_t>(index)) = value;
  }
  std::uint32_t mem(std::uint32_t addr) const { return memory_[addr & addr_mask_]; }
  void set_mem(std::uint32_t addr, std::uint32_t value) {
    memory_[addr & addr_mask_] = value;
  }
  std::size_t memory_words() const { return memory_.size(); }
  std::uint64_t pc() const { return pc_; }
  bool halted() const { return halted_; }
  std::uint64_t instructions_executed() const { return executed_; }
  const Program& program() const { return program_; }

  // Execute one instruction. Returns true and sets `load_data` when the
  // instruction was a LOAD (false otherwise). No-op once halted.
  bool step(std::uint32_t& load_data);

  // Run up to `max_instructions` (or until HALT); calls `on_load` for each
  // load's data word. Returns the number of instructions executed.
  std::uint64_t run(std::uint64_t max_instructions,
                    const std::function<void(std::uint32_t)>& on_load = {});

 private:
  Program program_;
  std::vector<std::uint32_t> memory_;
  std::uint32_t addr_mask_;
  std::array<std::uint32_t, kRegisterCount> regs_{};
  std::uint64_t pc_ = 0;
  std::uint64_t executed_ = 0;
  bool halted_ = false;
};

// Run `program` for `cycles` instructions and capture the per-cycle memory
// read bus trace: a LOAD drives its data word, any other instruction leaves
// the bus holding the previous word (IPC = 1). If the program halts early
// the trace is truncated to the executed length.
trace::Trace capture_bus_trace(Machine& machine, std::size_t cycles,
                               const std::string& trace_name);

}  // namespace razorbus::cpu

// Program construction with symbolic labels.
//
// Benchmarks are written directly against this builder (there is no binary
// encoding — the functional simulator executes Instruction structs, just as
// sim-safe interprets decoded instructions).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cpu/isa.hpp"

namespace razorbus::cpu {

struct Program {
  std::string name;
  std::vector<Instruction> code;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : name_(std::move(name)) {}

  // --- label management ---
  ProgramBuilder& label(const std::string& name);

  // --- instructions (fluent interface) ---
  ProgramBuilder& halt();
  ProgramBuilder& nop();
  ProgramBuilder& loadi(int rd, std::uint32_t imm);
  ProgramBuilder& mov(int rd, int ra);
  ProgramBuilder& add(int rd, int ra, int rb);
  ProgramBuilder& sub(int rd, int ra, int rb);
  ProgramBuilder& mul(int rd, int ra, int rb);
  ProgramBuilder& divu(int rd, int ra, int rb);
  ProgramBuilder& and_(int rd, int ra, int rb);
  ProgramBuilder& or_(int rd, int ra, int rb);
  ProgramBuilder& xor_(int rd, int ra, int rb);
  ProgramBuilder& shl(int rd, int ra, int rb);
  ProgramBuilder& shr(int rd, int ra, int rb);
  ProgramBuilder& sra(int rd, int ra, int rb);
  ProgramBuilder& addi(int rd, int ra, std::int32_t imm);
  ProgramBuilder& muli(int rd, int ra, std::int32_t imm);
  ProgramBuilder& andi(int rd, int ra, std::uint32_t imm);
  ProgramBuilder& ori(int rd, int ra, std::uint32_t imm);
  ProgramBuilder& xori(int rd, int ra, std::uint32_t imm);
  ProgramBuilder& shli(int rd, int ra, int amount);
  ProgramBuilder& shri(int rd, int ra, int amount);
  ProgramBuilder& popcnt(int rd, int ra);
  ProgramBuilder& load(int rd, int ra, std::int32_t offset = 0);
  ProgramBuilder& store(int ra, std::int32_t offset, int rb);
  ProgramBuilder& beq(int ra, int rb, const std::string& target);
  ProgramBuilder& bne(int ra, int rb, const std::string& target);
  ProgramBuilder& blt(int ra, int rb, const std::string& target);
  ProgramBuilder& bge(int ra, int rb, const std::string& target);
  ProgramBuilder& bltu(int ra, int rb, const std::string& target);
  ProgramBuilder& jmp(const std::string& target);
  ProgramBuilder& fadd(int rd, int ra, int rb);
  ProgramBuilder& fsub(int rd, int ra, int rb);
  ProgramBuilder& fmul(int rd, int ra, int rb);
  ProgramBuilder& fdiv(int rd, int ra, int rb);
  ProgramBuilder& itof(int rd, int ra);
  ProgramBuilder& ftoi(int rd, int ra);

  // Resolve all labels and return the program. Throws std::invalid_argument
  // on undefined/duplicate labels or bad register indices.
  Program build();

 private:
  ProgramBuilder& emit(Opcode op, int rd = 0, int ra = 0, int rb = 0,
                       std::int64_t imm = 0);
  ProgramBuilder& emit_branch(Opcode op, int ra, int rb, const std::string& target);
  static void check_register(int r);

  std::string name_;
  std::vector<Instruction> code_;
  std::map<std::string, std::size_t> labels_;
  // (instruction index, label) pairs awaiting resolution.
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

}  // namespace razorbus::cpu

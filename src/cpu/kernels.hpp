// Benchmark kernels: SPEC2000 substitutes.
//
// The paper traces the memory read bus for 10 SPEC2000 benchmarks. We
// provide 10 kernels for the mini-ISA whose LOAD data streams mimic each
// benchmark's character on the bus:
//
//   crafty   - chess bitboards: sparse mask words, popcounts       (low activity)
//   vortex   - OO database: records with mixed-entropy fields      (medium)
//   mgrid    - 3D multigrid stencil: smooth FP field               (high, FP)
//   swim     - shallow-water 2D sweeps over FP arrays              (high, FP)
//   mcf      - network simplex: pointer/index chasing, small ints  (low)
//   mesa     - rasteriser inner loop: uniform constants reloaded   (lowest)
//   vpr      - placement swaps: packed 16-bit coordinates          (medium-low)
//   applu    - dense 5x5 block LU sweeps: dense FP                 (high, FP)
//   gap      - permutation group composition: small ints           (low-medium)
//   wupwise  - complex matrix-vector products: dense FP pairs      (high, FP)
//
// What matters for the experiments is the per-program DIVERSITY of
// switching activity and worst-pattern frequency, which is exactly what
// distinguishes the paper's benchmarks (Fig. 6: crafty runs at 900 mV
// where mgrid cannot drop below 980 mV).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/machine.hpp"
#include "cpu/program.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace razorbus::cpu {

struct Benchmark {
  std::string name;
  Program program;
  // Fills memory and seeds registers before execution.
  std::function<void(Machine&)> initialize;

  // Fresh machine ready to run.
  Machine make_machine(std::size_t memory_words = 1u << 20) const;
  // Convenience: run and capture `cycles` of memory-read-bus trace.
  trace::Trace capture(std::size_t cycles, std::size_t memory_words = 1u << 20) const;
  // Streaming capture (DESIGN.md §12): executes the kernel ON DEMAND, one
  // block of bus cycles at a time, instead of materializing the trace —
  // the word sequence is identical to capture(cycles) (same hold-last-word
  // semantics, same early-halt truncation), but the resident memory is the
  // machine image plus the consumer's block buffer, independent of
  // `cycles`. `length()` is unknown (a kernel may halt early); `clone()`
  // restarts execution from a fresh machine.
  std::unique_ptr<trace::TraceSource> stream(
      std::size_t cycles, std::size_t memory_words = 1u << 20) const;
};

// All 10 benchmarks in the paper's Table 1 order:
// crafty, vortex, mgrid, swim, mcf, mesa, vpr, applu, gap, wupwise.
std::vector<Benchmark> spec2000_suite();

// Lookup a single benchmark by name; throws std::invalid_argument.
Benchmark benchmark_by_name(const std::string& name);

}  // namespace razorbus::cpu

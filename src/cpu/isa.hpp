// Mini load/store ISA for the benchmark substrate.
//
// The paper obtains memory-read-bus data traces from SPEC2000 binaries run
// under SimpleScalar's functional simulator (sim-safe). We replace that
// with a small RISC-style ISA, a functional simulator, and ten benchmark
// kernels whose load-data streams mimic the published benchmarks'
// character. One instruction per cycle (IPC = 1), exactly as the paper
// assumes; every executed LOAD drives its data word onto the bus.
//
// 16 general registers, 32-bit words, word-addressed memory. Floating
// point ops operate on IEEE-754 single bit patterns held in the integer
// registers (bit-cast), which is what puts realistic FP bit patterns on
// the bus for the FP benchmarks.
#pragma once

#include <cstdint>
#include <string>

namespace razorbus::cpu {

enum class Opcode : std::uint8_t {
  halt,
  nop,
  loadi,  // rd <- imm (full 32-bit immediate)
  mov,    // rd <- ra
  add, sub, mul, divu,          // rd <- ra op rb (divu: rb==0 -> 0)
  and_, or_, xor_,              // rd <- ra op rb
  shl, shr, sra,                // rd <- ra shifted by rb & 31
  addi, muli, andi, ori, xori,  // rd <- ra op imm
  shli, shri,                   // rd <- ra shifted by imm & 31
  popcnt,                       // rd <- number of set bits in ra
  load,   // rd <- mem[ra + imm]   (drives the memory read bus)
  store,  // mem[ra + imm] <- rb
  beq, bne, blt, bge, bltu,     // if (ra cmp rb) pc <- target
  jmp,    // pc <- target
  fadd, fsub, fmul, fdiv,       // IEEE-754 single on register bit patterns
  itof,   // rd <- float(int32(ra)) bit pattern
  ftoi,   // rd <- int32(truncate(float bit pattern in ra))
};

struct Instruction {
  Opcode op = Opcode::nop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int64_t imm = 0;  // immediate or resolved branch target (instruction index)
};

constexpr int kRegisterCount = 16;

// Human-readable form, e.g. "add r3, r1, r2" (debugging and tests).
std::string disassemble(const Instruction& instr);

// True for the branch/jump opcodes whose imm is an instruction index.
bool is_control_flow(Opcode op);
// True for opcodes that read memory (drive the bus).
inline bool is_load(Opcode op) { return op == Opcode::load; }

}  // namespace razorbus::cpu

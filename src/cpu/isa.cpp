#include "cpu/isa.hpp"

#include <sstream>

namespace razorbus::cpu {

namespace {

const char* mnemonic(Opcode op) {
  switch (op) {
    case Opcode::halt: return "halt";
    case Opcode::nop: return "nop";
    case Opcode::loadi: return "loadi";
    case Opcode::mov: return "mov";
    case Opcode::add: return "add";
    case Opcode::sub: return "sub";
    case Opcode::mul: return "mul";
    case Opcode::divu: return "divu";
    case Opcode::and_: return "and";
    case Opcode::or_: return "or";
    case Opcode::xor_: return "xor";
    case Opcode::shl: return "shl";
    case Opcode::shr: return "shr";
    case Opcode::sra: return "sra";
    case Opcode::addi: return "addi";
    case Opcode::muli: return "muli";
    case Opcode::andi: return "andi";
    case Opcode::ori: return "ori";
    case Opcode::xori: return "xori";
    case Opcode::shli: return "shli";
    case Opcode::shri: return "shri";
    case Opcode::popcnt: return "popcnt";
    case Opcode::load: return "load";
    case Opcode::store: return "store";
    case Opcode::beq: return "beq";
    case Opcode::bne: return "bne";
    case Opcode::blt: return "blt";
    case Opcode::bge: return "bge";
    case Opcode::bltu: return "bltu";
    case Opcode::jmp: return "jmp";
    case Opcode::fadd: return "fadd";
    case Opcode::fsub: return "fsub";
    case Opcode::fmul: return "fmul";
    case Opcode::fdiv: return "fdiv";
    case Opcode::itof: return "itof";
    case Opcode::ftoi: return "ftoi";
  }
  return "?";
}

}  // namespace

bool is_control_flow(Opcode op) {
  switch (op) {
    case Opcode::beq:
    case Opcode::bne:
    case Opcode::blt:
    case Opcode::bge:
    case Opcode::bltu:
    case Opcode::jmp: return true;
    default: return false;
  }
}

std::string disassemble(const Instruction& instr) {
  std::ostringstream ss;
  ss << mnemonic(instr.op);
  auto reg = [](int r) { return "r" + std::to_string(r); };
  switch (instr.op) {
    case Opcode::halt:
    case Opcode::nop: break;
    case Opcode::loadi: ss << ' ' << reg(instr.rd) << ", " << instr.imm; break;
    case Opcode::mov:
    case Opcode::popcnt:
    case Opcode::itof:
    case Opcode::ftoi: ss << ' ' << reg(instr.rd) << ", " << reg(instr.ra); break;
    case Opcode::add:
    case Opcode::sub:
    case Opcode::mul:
    case Opcode::divu:
    case Opcode::and_:
    case Opcode::or_:
    case Opcode::xor_:
    case Opcode::shl:
    case Opcode::shr:
    case Opcode::sra:
    case Opcode::fadd:
    case Opcode::fsub:
    case Opcode::fmul:
    case Opcode::fdiv:
      ss << ' ' << reg(instr.rd) << ", " << reg(instr.ra) << ", " << reg(instr.rb);
      break;
    case Opcode::addi:
    case Opcode::muli:
    case Opcode::andi:
    case Opcode::ori:
    case Opcode::xori:
    case Opcode::shli:
    case Opcode::shri:
      ss << ' ' << reg(instr.rd) << ", " << reg(instr.ra) << ", " << instr.imm;
      break;
    case Opcode::load:
      ss << ' ' << reg(instr.rd) << ", [" << reg(instr.ra) << " + " << instr.imm << ']';
      break;
    case Opcode::store:
      ss << " [" << reg(instr.ra) << " + " << instr.imm << "], " << reg(instr.rb);
      break;
    case Opcode::beq:
    case Opcode::bne:
    case Opcode::blt:
    case Opcode::bge:
    case Opcode::bltu:
      ss << ' ' << reg(instr.ra) << ", " << reg(instr.rb) << ", @" << instr.imm;
      break;
    case Opcode::jmp: ss << " @" << instr.imm; break;
  }
  return ss.str();
}

}  // namespace razorbus::cpu

#include "cpu/simpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace razorbus::cpu {

namespace {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

std::vector<double> window_features(const trace::Trace& trace, std::size_t begin,
                                    std::size_t cycles) {
  trace::Trace window;
  window.n_bits = trace.n_bits;
  window.words.assign(trace.words.begin() + static_cast<std::ptrdiff_t>(begin),
                      trace.words.begin() + static_cast<std::ptrdiff_t>(begin + cycles));
  const trace::TraceStats stats = trace::compute_stats(window);

  std::vector<double> features;
  features.reserve(static_cast<std::size_t>(trace.n_bits) + 2);
  for (int b = 0; b < trace.n_bits; ++b)
    features.push_back(stats.per_bit_toggle[static_cast<std::size_t>(b)]);
  features.push_back(stats.active_cycle_rate);
  features.push_back(stats.worst_pattern_rate);
  return features;
}

SimPointResult select_simpoints(const trace::Trace& trace, const SimPointConfig& config) {
  if (config.window_cycles == 0) throw std::invalid_argument("simpoint: zero window");
  if (config.clusters == 0) throw std::invalid_argument("simpoint: zero clusters");
  const std::size_t n_windows = trace.words.size() / config.window_cycles;
  if (n_windows == 0)
    throw std::invalid_argument("simpoint: trace shorter than one window");
  const std::size_t k = std::min(config.clusters, n_windows);

  // Feature matrix.
  std::vector<std::vector<double>> features;
  features.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w)
    features.push_back(window_features(trace, w * config.window_cycles,
                                       config.window_cycles));

  // k-means++ style seeding: first center uniform, then proportional to
  // squared distance from the nearest chosen center.
  Rng rng(config.seed);
  std::vector<std::vector<double>> centers;
  centers.push_back(features[rng.next_below(n_windows)]);
  std::vector<double> nearest(n_windows, 0.0);
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t w = 0; w < n_windows; ++w) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centers)
        best = std::min(best, squared_distance(features[w], c));
      nearest[w] = best;
      total += best;
    }
    if (total <= 0.0) break;  // all windows identical to a center
    double pick = rng.next_double() * total;
    std::size_t chosen = n_windows - 1;
    for (std::size_t w = 0; w < n_windows; ++w) {
      pick -= nearest[w];
      if (pick <= 0.0) {
        chosen = w;
        break;
      }
    }
    centers.push_back(features[chosen]);
  }

  // Lloyd iterations.
  std::vector<std::size_t> assignment(n_windows, 0);
  for (int iter = 0; iter < config.kmeans_iterations; ++iter) {
    bool changed = false;
    for (std::size_t w = 0; w < n_windows; ++w) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < centers.size(); ++c) {
        const double d = squared_distance(features[w], centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[w] != best) {
        assignment[w] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Recompute means.
    const std::size_t dims = features.front().size();
    std::vector<std::vector<double>> sums(centers.size(), std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(centers.size(), 0);
    for (std::size_t w = 0; w < n_windows; ++w) {
      ++counts[assignment[w]];
      for (std::size_t d = 0; d < dims; ++d) sums[assignment[w]][d] += features[w][d];
    }
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (counts[c] == 0) continue;  // keep the stale center
      for (std::size_t d = 0; d < dims; ++d)
        centers[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
  }

  // Medoid per (non-empty) cluster, weight = cluster share.
  SimPointResult result;
  result.window_cycles = config.window_cycles;
  result.total_windows = n_windows;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    std::size_t medoid = n_windows;
    double best_d = std::numeric_limits<double>::max();
    std::size_t members = 0;
    for (std::size_t w = 0; w < n_windows; ++w) {
      if (assignment[w] != c) continue;
      ++members;
      const double d = squared_distance(features[w], centers[c]);
      if (d < best_d) {
        best_d = d;
        medoid = w;
      }
    }
    if (medoid == n_windows) continue;  // empty cluster
    SimPoint point;
    point.window_index = medoid;
    point.begin_cycle = medoid * config.window_cycles;
    point.weight = static_cast<double>(members) / static_cast<double>(n_windows);
    result.points.push_back(point);
  }
  std::sort(result.points.begin(), result.points.end(),
            [](const SimPoint& a, const SimPoint& b) {
              return a.window_index < b.window_index;
            });
  return result;
}

trace::Trace materialize_simpoints(const trace::Trace& trace,
                                   const SimPointResult& result,
                                   std::size_t target_windows) {
  if (result.points.empty())
    throw std::invalid_argument("materialize_simpoints: empty selection");
  trace::Trace out;
  out.name = trace.name + "+simpoints";
  out.n_bits = trace.n_bits;

  // Replicate each window round(weight * target_windows) times, at least once.
  for (const auto& point : result.points) {
    const auto copies = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(point.weight * static_cast<double>(target_windows))));
    const auto begin =
        trace.words.begin() + static_cast<std::ptrdiff_t>(point.begin_cycle);
    const auto end = begin + static_cast<std::ptrdiff_t>(result.window_cycles);
    for (std::size_t r = 0; r < copies; ++r)
      out.words.insert(out.words.end(), begin, end);
  }
  return out;
}

}  // namespace razorbus::cpu

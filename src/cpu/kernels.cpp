#include "cpu/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace razorbus::cpu {

namespace {

std::uint32_t fbits(float f) { return razorbus::bit_cast<std::uint32_t>(f); }

// --- Memory layout bases (word addresses) -------------------------------
constexpr std::uint32_t kTableBase = 0x00000;   // crafty bitboards
constexpr std::uint32_t kRecordBase = 0x10000;  // vortex records
constexpr std::uint32_t kGridBase = 0x20000;    // mgrid source grid
constexpr std::uint32_t kGridOut = 0x30000;     // mgrid destination grid
constexpr std::uint32_t kArcBase = 0x40000;     // mcf arcs
constexpr std::uint32_t kUniformBase = 0x50000; // mesa uniforms
constexpr std::uint32_t kCellBase = 0x60000;    // vpr cells
constexpr std::uint32_t kBlockBase = 0x70000;   // applu blocks
constexpr std::uint32_t kPermBase = 0x80000;    // gap permutations
constexpr std::uint32_t kCplxBase = 0x90000;    // wupwise complex arrays
constexpr std::uint32_t kSwimBase = 0xa0000;    // swim u/v/p arrays

// =========================================================================
// crafty: sparse bitboard tables, AND/OR/popcount evaluation.
// =========================================================================
Benchmark make_crafty() {
  ProgramBuilder b("crafty");
  // r1 = LCG state, r2 = table base, r7 = score accumulator.
  b.label("loop")
      .muli(1, 1, 1664525)
      .addi(1, 1, 1013904223)
      .shri(3, 1, 16)
      .andi(3, 3, 4095)
      .add(3, 3, 2)
      .load(4, 3, 0)        // attack bitboard (sparse)
      .load(5, 3, 1)        // companion board
      .and_(6, 4, 5)
      .popcnt(6, 6)
      .add(7, 7, 6)
      .or_(8, 4, 5)
      .popcnt(8, 8)
      .add(7, 7, 8)
      .jmp("loop");

  Benchmark bench;
  bench.name = "crafty";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0xc4af7u);
    for (std::uint32_t i = 0; i < 4096 + 2; ++i) {
      // 1-4 set bits: sparse occupancy/attack masks.
      std::uint32_t w = 0;
      const int bits = 1 + static_cast<int>(rng.next_below(4));
      for (int k = 0; k < bits; ++k) w |= 1u << rng.next_below(32);
      if (rng.bernoulli(0.15)) w = 0;  // empty boards are common
      m.set_mem(kTableBase + i, w);
    }
    m.set_reg(1, 12345);
    m.set_reg(2, kTableBase);
  };
  return bench;
}

// =========================================================================
// vortex: object database traversal over 8-word records.
// Record: [id, flags, name0, name1, next_ptr, value, balance, checksum]
// =========================================================================
Benchmark make_vortex() {
  ProgramBuilder b("vortex");
  // r1 = current record address, r7/r8 accumulators.
  b.label("loop")
      .load(3, 1, 0)   // id (sequential small int)
      .load(4, 1, 1)   // flags (few low bits)
      .load(5, 1, 2)   // packed ASCII name chars
      .add(7, 7, 3)
      .xor_(8, 8, 5)
      .load(6, 1, 5)   // value (16-bit entropy)
      .add(7, 7, 6)
      .andi(9, 4, 3)
      .bne(9, 0, "skip_audit")
      .load(10, 1, 7)  // checksum (full-entropy word, flag-gated)
      .xor_(8, 8, 10)
      .label("skip_audit")
      .load(1, 1, 4)   // follow next_ptr
      .jmp("loop");

  Benchmark bench;
  bench.name = "vortex";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0x40e7e8u);
    constexpr std::uint32_t kRecords = 1024;
    // Random cyclic permutation for the next pointers.
    std::vector<std::uint32_t> order(kRecords);
    for (std::uint32_t i = 0; i < kRecords; ++i) order[i] = i;
    for (std::uint32_t i = kRecords - 1; i > 0; --i) {
      const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
      std::swap(order[i], order[j]);
    }
    for (std::uint32_t i = 0; i < kRecords; ++i) {
      const std::uint32_t addr = kRecordBase + order[i] * 8;
      const std::uint32_t next = kRecordBase + order[(i + 1) % kRecords] * 8;
      auto ascii = [&rng] {
        std::uint32_t w = 0;
        for (int c = 0; c < 4; ++c)
          w |= (0x41u + static_cast<std::uint32_t>(rng.next_below(26))) << (8 * c);
        return w;
      };
      m.set_mem(addr + 0, order[i]);                     // id
      m.set_mem(addr + 1, static_cast<std::uint32_t>(rng.next_below(8)));  // flags
      m.set_mem(addr + 2, ascii());                      // name chars
      m.set_mem(addr + 3, ascii());
      m.set_mem(addr + 4, next);                         // pointer (stable high bits)
      m.set_mem(addr + 5, static_cast<std::uint32_t>(rng.next_below(65536)));
      m.set_mem(addr + 6, static_cast<std::uint32_t>(rng.next_below(10000)));
      m.set_mem(addr + 7, static_cast<std::uint32_t>(rng.next_u64()));
    }
    m.set_reg(1, kRecordBase);
  };
  return bench;
}

// =========================================================================
// mgrid: 7-point stencil over a smooth 32x32x32 FP field.
// =========================================================================
Benchmark make_mgrid() {
  ProgramBuilder b("mgrid");
  // r1 = linear index, r2 = in base, r3 = current address, r9 = out base,
  // r10 = 1/7 weight, r12 = wrap limit, r13 = wrap reset value.
  b.label("loop")
      .add(3, 2, 1)
      .load(4, 3, 0)        // center
      .load(5, 3, 1)        // +x
      .fadd(4, 4, 5)
      .load(5, 3, -1)       // -x
      .fadd(4, 4, 5)
      .load(5, 3, 32)       // +y
      .fadd(4, 4, 5)
      .load(5, 3, -32)      // -y
      .fadd(4, 4, 5)
      .load(5, 3, 1024)     // +z
      .fadd(4, 4, 5)
      .load(5, 3, -1024)    // -z
      .fadd(4, 4, 5)
      .fmul(4, 4, 10)       // * (1/7)
      .add(6, 9, 1)
      .store(6, 0, 4)
      .addi(1, 1, 1)
      .blt(1, 12, "loop")
      .mov(1, 13)           // wrap back to the first interior point
      .jmp("loop");

  Benchmark bench;
  bench.name = "mgrid";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0x316d9du);
    for (std::uint32_t i = 0; i < 32768; ++i) {
      const double x = static_cast<double>(i % 32);
      const double y = static_cast<double>((i / 32) % 32);
      const double z = static_cast<double>(i / 1024);
      const double smooth =
          std::sin(0.21 * x) * std::cos(0.17 * y) + 0.5 * std::sin(0.13 * z);
      const double noise = 0.05 * (rng.next_double() - 0.5);
      m.set_mem(kGridBase + i, fbits(static_cast<float>(1.0 + smooth + noise)));
    }
    m.set_reg(1, 1025);               // first interior point
    m.set_reg(2, kGridBase);
    m.set_reg(9, kGridOut);
    m.set_reg(10, fbits(1.0f / 7.0f));
    m.set_reg(12, 31743);             // last interior point
    m.set_reg(13, 1025);
  };
  return bench;
}

// =========================================================================
// swim: shallow-water style sweeps over u/v/p arrays (128x128 floats).
// =========================================================================
Benchmark make_swim() {
  ProgramBuilder b("swim");
  // r1 = index, r2 = u base, r3 = v base, r4 = p base, r10 = dt coefficient,
  // r12 = limit.
  b.label("loop")
      .add(5, 2, 1)
      .load(6, 5, 0)      // u[i]
      .add(7, 3, 1)
      .load(8, 7, 0)      // v[i]
      .load(9, 7, 1)      // v[i+1]
      .fsub(8, 9, 8)      // dv
      .add(7, 4, 1)
      .load(9, 7, 0)      // p[i]
      .load(11, 7, 128)   // p[i+128]
      .fsub(9, 11, 9)     // dp
      .fadd(8, 8, 9)
      .fmul(8, 8, 10)
      .fadd(6, 6, 8)
      .store(5, 0, 6)     // u[i] updated in place
      .addi(1, 1, 1)
      .blt(1, 12, "loop")
      .loadi(1, 0)
      .jmp("loop");

  Benchmark bench;
  bench.name = "swim";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0x5717u);
    constexpr std::uint32_t kN = 128 * 128;
    for (std::uint32_t i = 0; i < kN; ++i) {
      const double x = static_cast<double>(i % 128);
      const double y = static_cast<double>(i / 128);
      const double wave = std::sin(0.10 * x + 0.07 * y);
      m.set_mem(kSwimBase + i, fbits(static_cast<float>(10.0 + wave)));            // u
      m.set_mem(kSwimBase + kN + i,
                fbits(static_cast<float>(2.0 * std::cos(0.08 * x) +
                                         0.1 * rng.next_double())));               // v
      m.set_mem(kSwimBase + 2 * kN + i,
                fbits(static_cast<float>(100.0 + 5.0 * wave + rng.next_double())));// p
    }
    m.set_reg(1, 0);
    m.set_reg(2, kSwimBase);
    m.set_reg(3, kSwimBase + kN);
    m.set_reg(4, kSwimBase + 2 * kN);
    m.set_reg(10, fbits(0.01f));
    m.set_reg(12, kN - 129);
  };
  return bench;
}

// =========================================================================
// mcf: network-simplex pointer chasing over arc records (small integers).
// Arc: [next_index, cost, flow, capacity]
// =========================================================================
Benchmark make_mcf() {
  ProgramBuilder b("mcf");
  // r1 = arc index, r2 = base, r7 = cost accumulator, r8 = flow accumulator.
  b.label("loop")
      .shli(3, 1, 2)
      .add(3, 3, 2)
      .load(4, 3, 0)   // next index (0..8191)
      .load(5, 3, 1)   // cost (0..1000)
      .add(7, 7, 5)
      .load(6, 3, 2)   // flow (0..100)
      .add(8, 8, 6)
      .mov(1, 4)
      .jmp("loop");

  Benchmark bench;
  bench.name = "mcf";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0x3cfc0u);
    constexpr std::uint32_t kArcs = 8192;
    for (std::uint32_t i = 0; i < kArcs; ++i) {
      const std::uint32_t addr = kArcBase + i * 4;
      // The basis-tree walk sweeps arcs mostly in storage order (index
      // values increment: very low toggle), with occasional rebalancing
      // jumps; costs/flows cluster in a narrow band (residual arcs in mcf
      // largely carry unit costs). The loaded words are low entropy, which
      // is what puts mcf near the top of Table 1.
      const bool jump = (i % 512) == 511;
      const std::uint32_t next =
          jump ? static_cast<std::uint32_t>(rng.next_below(kArcs)) : (i + 1) % kArcs;
      m.set_mem(addr + 0, next);
      m.set_mem(addr + 1, 64 + (i & 3));  // near-constant unit costs
      m.set_mem(addr + 2, i & 1);
      m.set_mem(addr + 3, 96);
    }
    m.set_reg(1, 0);
    m.set_reg(2, kArcBase);
  };
  return bench;
}

// =========================================================================
// mesa: rasteriser inner loop; uniforms reloaded every pixel (the bus
// mostly carries repeated words -> the quietest benchmark).
// =========================================================================
Benchmark make_mesa() {
  ProgramBuilder b("mesa");
  // r1 = pixel x (slowly increasing), r2 = uniform base, r9 = frame buffer.
  b.label("loop")
      .load(3, 2, 0)   // uniform: color scale  (identical every iteration)
      .load(4, 2, 1)   // uniform: z offset
      .load(5, 2, 2)   // uniform: texture base
      .mul(6, 1, 3)
      .add(6, 6, 4)
      .shri(6, 6, 8)
      .andi(7, 1, 255)
      .add(8, 5, 7)
      .load(8, 8, 0)   // texel (slow gradient)
      .add(6, 6, 8)
      .add(10, 9, 7)
      .store(10, 0, 6)
      .addi(1, 1, 1)
      .jmp("loop");

  Benchmark bench;
  bench.name = "mesa";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    m.set_mem(kUniformBase + 0, 0x00000100u);  // color scale
    m.set_mem(kUniformBase + 1, 0x00001000u);  // z offset
    m.set_mem(kUniformBase + 2, kUniformBase + 16);
    // Texture: smooth 8-bit gradient (adjacent texels differ slightly).
    for (std::uint32_t i = 0; i < 256; ++i)
      m.set_mem(kUniformBase + 16 + i, 0x80u + ((i * 3) & 0x3fu));
    m.set_reg(1, 0);
    m.set_reg(2, kUniformBase);
    m.set_reg(9, kUniformBase + 0x1000);
  };
  return bench;
}

// =========================================================================
// vpr: simulated-annealing placement swaps over packed 16-bit coordinates.
// =========================================================================
Benchmark make_vpr() {
  ProgramBuilder b("vpr");
  // r1 = LCG state, r2 = cell base, r9 = cost table base, r7 = cost accum.
  b.label("loop")
      .muli(1, 1, 1664525)
      .addi(1, 1, 1013904223)
      .shri(3, 1, 18)
      .andi(3, 3, 4095)
      .add(4, 2, 3)
      .load(5, 4, 0)    // cell A coords (x<<8|y)
      .xori(6, 3, 2047)
      .add(6, 2, 6)
      .load(7, 6, 0)    // cell B coords
      .xor_(8, 5, 7)
      .andi(8, 8, 255)
      .add(10, 9, 8)
      .load(11, 10, 0)  // wiring cost (small int)
      .add(12, 12, 11)
      .bne(11, 0, "no_swap")
      .store(4, 0, 7)   // accept swap
      .store(6, 0, 5)
      .label("no_swap")
      .jmp("loop");

  Benchmark bench;
  bench.name = "vpr";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0x879e6u);
    for (std::uint32_t i = 0; i < 4096; ++i) {
      const std::uint32_t x = static_cast<std::uint32_t>(rng.next_below(64));
      const std::uint32_t y = static_cast<std::uint32_t>(rng.next_below(64));
      m.set_mem(kCellBase + i, (x << 8) | y);
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      m.set_mem(kCellBase + 0x1000 + i, static_cast<std::uint32_t>(rng.next_below(32)));
    m.set_reg(1, 777);
    m.set_reg(2, kCellBase);
    m.set_reg(9, kCellBase + 0x1000);
  };
  return bench;
}

// =========================================================================
// applu: 5x5 block LU-style elimination sweeps over dense FP blocks.
// =========================================================================
Benchmark make_applu() {
  ProgramBuilder b("applu");
  // r1 = element index, r2 = block array base, r10 = relaxation factor,
  // r12 = wrap limit.
  b.label("loop")
      .add(3, 2, 1)
      .load(4, 3, 0)     // a[i]
      .load(5, 3, 5)     // a[i+5] (next block row)
      .load(6, 3, 1)     // a[i+1]
      .fdiv(7, 5, 4)     // multiplier = row2/pivot
      .fmul(7, 7, 6)
      .load(8, 3, 6)     // a[i+6]
      .fsub(8, 8, 7)     // eliminate
      .fmul(8, 8, 10)    // relax
      .store(3, 6, 8)
      .addi(1, 1, 1)
      .blt(1, 12, "loop")
      .loadi(1, 0)
      .jmp("loop");

  Benchmark bench;
  bench.name = "applu";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0xa991au);
    for (std::uint32_t i = 0; i < 512 * 25; ++i)
      m.set_mem(kBlockBase + i,
                fbits(static_cast<float>(1.0 + rng.next_double())));  // [1, 2)
    m.set_reg(1, 0);
    m.set_reg(2, kBlockBase);
    m.set_reg(10, fbits(0.9f));
    m.set_reg(12, 512 * 25 - 7);
  };
  return bench;
}

// =========================================================================
// gap: permutation composition over small-integer arrays, r = q o p.
// =========================================================================
Benchmark make_gap() {
  ProgramBuilder b("gap");
  // r1 = index, r2 = p base, r3 = q base, r9 = r base, r12 = size.
  b.label("loop")
      .add(4, 2, 1)
      .load(5, 4, 0)    // p[i] (0..4095)
      .add(6, 3, 5)
      .load(7, 6, 0)    // q[p[i]]
      .add(8, 9, 1)
      .store(8, 0, 7)
      .add(10, 10, 7)   // order accumulator
      .addi(1, 1, 1)
      .blt(1, 12, "loop")
      .loadi(1, 0)
      .jmp("loop");

  Benchmark bench;
  bench.name = "gap";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0x9a6u);
    constexpr std::uint32_t kN = 4096;
    // Group-theory permutations are highly structured (products of cyclic
    // generators), not uniform shuffles: mostly rotations with sparse local
    // swaps, so the loaded values step smoothly (low bus entropy).
    auto structured_perm_into = [&](std::uint32_t base, std::uint32_t rotation) {
      std::vector<std::uint32_t> v(kN);
      for (std::uint32_t i = 0; i < kN; ++i) v[i] = (i + rotation) % kN;
      for (std::uint32_t s = 0; s < kN / 64; ++s) {
        const auto i = static_cast<std::uint32_t>(rng.next_below(kN - 1));
        std::swap(v[i], v[i + 1]);
      }
      for (std::uint32_t i = 0; i < kN; ++i) m.set_mem(base + i, v[i]);
    };
    structured_perm_into(kPermBase, 17);
    // Second table: cycle-index bookkeeping (value = position within a
    // 64-element orbit). Loading p[i] then q[p[i]] therefore transitions
    // from a counter-like word to its own low bits: the high bits all fall
    // together, which is the benign same-direction switching pattern.
    for (std::uint32_t i = 0; i < kN; ++i) m.set_mem(kPermBase + kN + i, i & 63);
    m.set_reg(1, 0);
    m.set_reg(2, kPermBase);
    m.set_reg(3, kPermBase + kN);
    m.set_reg(9, kPermBase + 2 * kN);
    m.set_reg(12, kN);
  };
  return bench;
}

// =========================================================================
// wupwise: complex matrix-vector inner products (interleaved re/im floats).
// =========================================================================
Benchmark make_wupwise() {
  ProgramBuilder b("wupwise");
  // r1 = index, r2 = matrix base, r3 = vector base, r12 = wrap limit.
  b.label("loop")
      .add(4, 2, 1)
      .load(5, 4, 0)    // a.re
      .load(6, 4, 1)    // a.im
      .andi(7, 1, 510)
      .add(7, 3, 7)
      .load(8, 7, 0)    // x.re
      .load(9, 7, 1)    // x.im
      .fmul(10, 5, 8)   // re*re
      .fmul(11, 6, 9)   // im*im
      .fsub(10, 10, 11) // real part
      .fmul(11, 5, 9)
      .fmul(13, 6, 8)
      .fadd(11, 11, 13) // imag part
      .fadd(14, 14, 10)
      .fadd(15, 15, 11)
      .addi(1, 1, 2)
      .blt(1, 12, "loop")
      .loadi(1, 0)
      .jmp("loop");

  Benchmark bench;
  bench.name = "wupwise";
  bench.program = b.build();
  bench.initialize = [](Machine& m) {
    Rng rng(0x3b93eu);
    for (std::uint32_t i = 0; i < 32768; ++i)
      m.set_mem(kCplxBase + i,
                fbits(static_cast<float>(rng.normal(0.0, 1.0))));
    for (std::uint32_t i = 0; i < 512; ++i)
      m.set_mem(kCplxBase + 0x10000 + i,
                fbits(static_cast<float>(rng.normal(0.0, 1.0))));
    m.set_reg(1, 0);
    m.set_reg(2, kCplxBase);
    m.set_reg(3, kCplxBase + 0x10000);
    m.set_reg(12, 32766);
  };
  return bench;
}

// Executes a benchmark kernel block by block: exactly capture_bus_trace's
// loop (a LOAD drives its data word, anything else holds, an early halt
// truncates), with the (machine, held word, cycles left) triple carried
// across blocks. Cloning rebuilds a fresh machine from the Benchmark, so
// every clone replays the identical deterministic instruction stream.
class BenchmarkTraceSource final : public trace::TraceSource {
 public:
  BenchmarkTraceSource(Benchmark bench, std::size_t cycles, std::size_t memory_words)
      : bench_(std::move(bench)),
        machine_(bench_.make_machine(memory_words)),
        memory_words_(memory_words),
        cycles_(cycles),
        remaining_(cycles) {}

  std::size_t next_block(BusWord* dst, std::size_t max) override {
    std::size_t written = 0;
    std::uint32_t data = 0;
    while (written < std::min(max, remaining_) && !machine_.halted()) {
      const std::uint64_t before = machine_.instructions_executed();
      const bool loaded = machine_.step(data);
      if (machine_.instructions_executed() == before) break;  // halted on entry
      if (loaded) bus_word_ = data;
      dst[written++] = BusWord(bus_word_);
    }
    remaining_ -= written;
    return written;
  }

  int n_bits() const override { return 32; }
  const std::string& name() const override { return bench_.name; }
  std::unique_ptr<trace::TraceSource> clone() const override {
    return std::make_unique<BenchmarkTraceSource>(bench_, cycles_, memory_words_);
  }

 private:
  Benchmark bench_;
  Machine machine_;
  std::size_t memory_words_;
  std::size_t cycles_;
  std::size_t remaining_;
  std::uint32_t bus_word_ = 0;
};

}  // namespace

Machine Benchmark::make_machine(std::size_t memory_words) const {
  Machine m(program, memory_words);
  if (initialize) initialize(m);
  return m;
}

trace::Trace Benchmark::capture(std::size_t cycles, std::size_t memory_words) const {
  Machine m = make_machine(memory_words);
  return capture_bus_trace(m, cycles, name);
}

std::unique_ptr<trace::TraceSource> Benchmark::stream(std::size_t cycles,
                                                      std::size_t memory_words) const {
  return std::make_unique<BenchmarkTraceSource>(*this, cycles, memory_words);
}

std::vector<Benchmark> spec2000_suite() {
  std::vector<Benchmark> suite;
  suite.push_back(make_crafty());
  suite.push_back(make_vortex());
  suite.push_back(make_mgrid());
  suite.push_back(make_swim());
  suite.push_back(make_mcf());
  suite.push_back(make_mesa());
  suite.push_back(make_vpr());
  suite.push_back(make_applu());
  suite.push_back(make_gap());
  suite.push_back(make_wupwise());
  return suite;
}

Benchmark benchmark_by_name(const std::string& name) {
  for (auto& bench : spec2000_suite())
    if (bench.name == name) return bench;
  throw std::invalid_argument("unknown benchmark: " + name);
}

}  // namespace razorbus::cpu

// Trace serialization.
//
// Binary format for fast reload of long captures (magic + name + words) and
// CSV export for external analysis. Capturing 10M-cycle traces from the
// mini-CPU is cheap, but storing them lets experiments share exact inputs
// across processes and makes third-party traces usable.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace razorbus::trace {

// Stream-level primitives.
void save_binary(const Trace& trace, std::ostream& os);
std::optional<Trace> load_binary(std::istream& is);

// File-level helpers; throw std::runtime_error on I/O failure, and
// load_trace_file also throws on a corrupt/unrecognised file.
void save_trace_file(const Trace& trace, const std::string& path);
Trace load_trace_file(const std::string& path);

// Streaming reader over a saved trace file (DESIGN.md §12): parses the
// RBTRACE1/RBTRACE2 header up front (width, name, word count — the count
// is bounds-checked against the file size before any read, like
// load_binary) and then serves the words block by block, so a multi-GB
// archive never has to fit in RAM. The word sequence is identical to
// load_trace_file's; `length()` reports the header's word count; `clone()`
// reopens the file. Throws std::runtime_error on open/parse failure and on
// a file truncated mid-stream.
std::unique_ptr<TraceSource> open_trace_stream(const std::string& path);

// One word per line, with a header row ("cycle,word_hex").
void export_csv(const Trace& trace, std::ostream& os);

}  // namespace razorbus::trace

// Trace serialization.
//
// Binary format for fast reload of long captures (magic + name + words) and
// CSV export for external analysis. Capturing 10M-cycle traces from the
// mini-CPU is cheap, but storing them lets experiments share exact inputs
// across processes and makes third-party traces usable.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace razorbus::trace {

// Stream-level primitives.
void save_binary(const Trace& trace, std::ostream& os);
std::optional<Trace> load_binary(std::istream& is);

// File-level helpers; throw std::runtime_error on I/O failure, and
// load_trace_file also throws on a corrupt/unrecognised file.
void save_trace_file(const Trace& trace, const std::string& path);
Trace load_trace_file(const std::string& path);

// One word per line, with a header row ("cycle,word_hex").
void export_csv(const Trace& trace, std::ostream& os);

}  // namespace razorbus::trace

#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace razorbus::trace {

namespace {
constexpr char kMagic[8] = {'R', 'B', 'T', 'R', 'A', 'C', 'E', '1'};
}

void save_binary(const Trace& trace, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  const std::uint64_t name_len = trace.name.size();
  os.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  os.write(trace.name.data(), static_cast<std::streamsize>(name_len));
  const std::uint64_t n = trace.words.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(trace.words.data()),
           static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
}

std::optional<Trace> load_binary(std::istream& is) {
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return std::nullopt;
  std::uint64_t name_len = 0;
  if (!is.read(reinterpret_cast<char*>(&name_len), sizeof(name_len)) || name_len > 4096)
    return std::nullopt;
  Trace trace;
  trace.name.resize(name_len);
  if (!is.read(trace.name.data(), static_cast<std::streamsize>(name_len)))
    return std::nullopt;
  std::uint64_t n = 0;
  if (!is.read(reinterpret_cast<char*>(&n), sizeof(n)) || n > (1ull << 33))
    return std::nullopt;
  // A corrupt/truncated header can claim up to 2^33 words; bound the claim
  // by the bytes actually left in the stream before resize() commits
  // gigabytes for a read that is guaranteed to fail.
  const std::istream::pos_type data_pos = is.tellg();
  if (data_pos != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = is.tellg();
    is.seekg(data_pos);
    if (!is || end_pos < data_pos) return std::nullopt;
    const auto remaining = static_cast<std::uint64_t>(end_pos - data_pos);
    if (n > remaining / sizeof(std::uint32_t)) return std::nullopt;
  }
  trace.words.resize(n);
  if (!is.read(reinterpret_cast<char*>(trace.words.data()),
               static_cast<std::streamsize>(n * sizeof(std::uint32_t))))
    return std::nullopt;
  return trace;
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_binary(trace, os);
  if (!os) throw std::runtime_error("save_trace_file: write failed for " + path);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_trace_file: cannot open " + path);
  auto trace = load_binary(is);
  if (!trace) throw std::runtime_error("load_trace_file: not a trace file: " + path);
  return *std::move(trace);
}

void export_csv(const Trace& trace, std::ostream& os) {
  os << "cycle,word_hex\n";
  char buffer[24];
  for (std::size_t i = 0; i < trace.words.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%zu,%08x\n", i, trace.words[i]);
    os << buffer;
  }
}

}  // namespace razorbus::trace

#include "trace/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace razorbus::trace {

namespace {
// Version 1: the legacy fixed-32-wire format (magic + name + uint32
// words). Still written for 32-wire traces so archives produced before the
// width-generic datapath stay byte-identical, and always readable.
constexpr char kMagicV1[8] = {'R', 'B', 'T', 'R', 'A', 'C', 'E', '1'};
// Version 2: width-tagged. Layout after the magic: uint32 n_bits, uint64
// name length, name bytes, uint64 word count, then per word
// ceil(n_bits / 64) little-endian uint64 lanes (low lane first).
constexpr char kMagicV2[8] = {'R', 'B', 'T', 'R', 'A', 'C', 'E', '2'};

int lanes_per_word(int n_bits) { return (n_bits + 63) / 64; }

// Stage per-word payload elements through a chunk buffer so that
// multi-million-cycle traces cost a handful of stream writes, not one per
// word. `emit(word, chunk)` appends word's elements to the chunk.
template <typename Elem, typename Emit>
void write_chunked(std::ostream& os, const std::vector<BusWord>& words, Emit emit) {
  constexpr std::size_t kChunkElems = 1 << 17;
  std::vector<Elem> chunk;
  chunk.reserve(std::min<std::size_t>(words.size() * 2, kChunkElems));
  const auto flush = [&os, &chunk] {
    os.write(reinterpret_cast<const char*>(chunk.data()),
             static_cast<std::streamsize>(chunk.size() * sizeof(Elem)));
    chunk.clear();
  };
  for (const BusWord& word : words) {
    emit(word, chunk);
    if (chunk.size() >= kChunkElems) flush();
  }
  if (!chunk.empty()) flush();
}

// Bound a claimed element count by the bytes actually left in the stream,
// so a corrupt header cannot commit a giant resize for a read that is
// guaranteed to fail. Returns false when the stream is unseekable-clean
// but the claim exceeds the remaining payload.
bool claim_fits_stream(std::istream& is, std::uint64_t count, std::size_t elem_size) {
  const std::istream::pos_type data_pos = is.tellg();
  if (data_pos == std::istream::pos_type(-1)) return true;  // unseekable: let read fail
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end_pos = is.tellg();
  is.seekg(data_pos);
  if (!is || end_pos < data_pos) return false;
  const auto remaining = static_cast<std::uint64_t>(end_pos - data_pos);
  return count <= remaining / elem_size;
}

std::optional<Trace> load_v1_body(std::istream& is) {
  std::uint64_t name_len = 0;
  if (!is.read(reinterpret_cast<char*>(&name_len), sizeof(name_len)) || name_len > 4096)
    return std::nullopt;
  Trace trace;
  trace.name.resize(name_len);
  if (!is.read(trace.name.data(), static_cast<std::streamsize>(name_len)))
    return std::nullopt;
  std::uint64_t n = 0;
  if (!is.read(reinterpret_cast<char*>(&n), sizeof(n)) || n > (1ull << 33))
    return std::nullopt;
  if (!claim_fits_stream(is, n, sizeof(std::uint32_t))) return std::nullopt;
  std::vector<std::uint32_t> raw(n);
  if (!is.read(reinterpret_cast<char*>(raw.data()),
               static_cast<std::streamsize>(n * sizeof(std::uint32_t))))
    return std::nullopt;
  trace.n_bits = 32;
  trace.words.assign(raw.begin(), raw.end());
  return trace;
}

std::optional<Trace> load_v2_body(std::istream& is) {
  std::uint32_t n_bits = 0;
  if (!is.read(reinterpret_cast<char*>(&n_bits), sizeof(n_bits)) || n_bits == 0 ||
      n_bits > static_cast<std::uint32_t>(BusWord::kMaxBits))
    return std::nullopt;
  std::uint64_t name_len = 0;
  if (!is.read(reinterpret_cast<char*>(&name_len), sizeof(name_len)) || name_len > 4096)
    return std::nullopt;
  Trace trace;
  trace.n_bits = static_cast<int>(n_bits);
  trace.name.resize(name_len);
  if (!is.read(trace.name.data(), static_cast<std::streamsize>(name_len)))
    return std::nullopt;
  std::uint64_t n = 0;
  if (!is.read(reinterpret_cast<char*>(&n), sizeof(n)) || n > (1ull << 33))
    return std::nullopt;
  const auto lanes = static_cast<std::size_t>(lanes_per_word(trace.n_bits));
  if (!claim_fits_stream(is, n, lanes * sizeof(std::uint64_t))) return std::nullopt;
  trace.words.reserve(n);
  // Bulk-read the lane stream in chunks, then assemble words.
  constexpr std::size_t kChunkWords = 1 << 16;
  std::vector<std::uint64_t> chunk;
  std::uint64_t remaining = n;
  while (remaining > 0) {
    const std::size_t batch =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunkWords));
    chunk.resize(batch * lanes);
    if (!is.read(reinterpret_cast<char*>(chunk.data()),
                 static_cast<std::streamsize>(chunk.size() * sizeof(std::uint64_t))))
      return std::nullopt;
    for (std::size_t w = 0; w < batch; ++w)
      trace.words.push_back(BusWord::from_lanes(chunk[w * lanes],
                                                lanes > 1 ? chunk[w * lanes + 1] : 0));
    remaining -= batch;
  }
  return trace;
}

// Incremental reader behind open_trace_stream: the header is parsed once
// at construction (with the same claimed-count-vs-file-size defence as
// load_binary), after which each next_block reads and assembles at most
// `max` words' worth of payload.
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(std::string path) : path_(std::move(path)) {
    is_.open(path_, std::ios::binary);
    if (!is_) throw std::runtime_error("open_trace_stream: cannot open " + path_);

    char magic[sizeof(kMagicV1)];
    if (!is_.read(magic, sizeof(magic)))
      throw std::runtime_error("open_trace_stream: not a trace file: " + path_);
    std::uint32_t n_bits = 32;
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
      v1_ = true;
    } else if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
      if (!is_.read(reinterpret_cast<char*>(&n_bits), sizeof(n_bits)) || n_bits == 0 ||
          n_bits > static_cast<std::uint32_t>(BusWord::kMaxBits))
        throw std::runtime_error("open_trace_stream: not a trace file: " + path_);
    } else {
      throw std::runtime_error("open_trace_stream: not a trace file: " + path_);
    }
    n_bits_ = static_cast<int>(n_bits);
    lanes_ = static_cast<std::size_t>(lanes_per_word(n_bits_));

    std::uint64_t name_len = 0;
    if (!is_.read(reinterpret_cast<char*>(&name_len), sizeof(name_len)) ||
        name_len > 4096)
      throw std::runtime_error("open_trace_stream: not a trace file: " + path_);
    name_.resize(name_len);
    if (!is_.read(name_.data(), static_cast<std::streamsize>(name_len)))
      throw std::runtime_error("open_trace_stream: not a trace file: " + path_);
    if (!is_.read(reinterpret_cast<char*>(&remaining_), sizeof(remaining_)) ||
        remaining_ > (1ull << 33) ||
        !claim_fits_stream(is_, remaining_,
                           v1_ ? sizeof(std::uint32_t)
                               : lanes_ * sizeof(std::uint64_t)))
      throw std::runtime_error("open_trace_stream: not a trace file: " + path_);
    total_ = remaining_;
  }

  std::size_t next_block(BusWord* dst, std::size_t max) override {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(max, remaining_));
    if (n == 0) return 0;
    if (v1_) {
      raw32_.resize(n);
      if (!is_.read(reinterpret_cast<char*>(raw32_.data()),
                    static_cast<std::streamsize>(n * sizeof(std::uint32_t))))
        throw std::runtime_error("open_trace_stream: truncated trace file: " + path_);
      for (std::size_t w = 0; w < n; ++w) dst[w] = BusWord(raw32_[w]);
    } else {
      raw64_.resize(n * lanes_);
      if (!is_.read(reinterpret_cast<char*>(raw64_.data()),
                    static_cast<std::streamsize>(raw64_.size() * sizeof(std::uint64_t))))
        throw std::runtime_error("open_trace_stream: truncated trace file: " + path_);
      for (std::size_t w = 0; w < n; ++w)
        dst[w] = BusWord::from_lanes(raw64_[w * lanes_],
                                     lanes_ > 1 ? raw64_[w * lanes_ + 1] : 0);
    }
    remaining_ -= n;
    return n;
  }

  int n_bits() const override { return n_bits_; }
  const std::string& name() const override { return name_; }
  std::optional<std::uint64_t> length() const override { return total_; }
  std::unique_ptr<TraceSource> clone() const override {
    return std::make_unique<FileTraceSource>(path_);
  }

 private:
  std::string path_;
  std::ifstream is_;
  bool v1_ = false;
  int n_bits_ = 32;
  std::size_t lanes_ = 1;
  std::string name_;
  std::uint64_t remaining_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::uint32_t> raw32_;
  std::vector<std::uint64_t> raw64_;
};

}  // namespace

std::unique_ptr<TraceSource> open_trace_stream(const std::string& path) {
  return std::make_unique<FileTraceSource>(path);
}

void save_binary(const Trace& trace, std::ostream& os) {
  const std::uint64_t name_len = trace.name.size();
  const std::uint64_t n = trace.words.size();
  if (trace.n_bits == 32) {
    os.write(kMagicV1, sizeof(kMagicV1));
    os.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    os.write(trace.name.data(), static_cast<std::streamsize>(name_len));
    os.write(reinterpret_cast<const char*>(&n), sizeof(n));
    write_chunked<std::uint32_t>(
        os, trace.words, [](const BusWord& word, std::vector<std::uint32_t>& chunk) {
          chunk.push_back(word.low32());
        });
    return;
  }
  os.write(kMagicV2, sizeof(kMagicV2));
  const auto n_bits = static_cast<std::uint32_t>(trace.n_bits);
  os.write(reinterpret_cast<const char*>(&n_bits), sizeof(n_bits));
  os.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  os.write(trace.name.data(), static_cast<std::streamsize>(name_len));
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  const int lanes = lanes_per_word(trace.n_bits);
  write_chunked<std::uint64_t>(
      os, trace.words, [lanes](const BusWord& word, std::vector<std::uint64_t>& chunk) {
        for (int l = 0; l < lanes; ++l) chunk.push_back(word.lane(l));
      });
}

std::optional<Trace> load_binary(std::istream& is) {
  char magic[sizeof(kMagicV1)];
  if (!is.read(magic, sizeof(magic))) return std::nullopt;
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) return load_v1_body(is);
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) return load_v2_body(is);
  return std::nullopt;
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_binary(trace, os);
  if (!os) throw std::runtime_error("save_trace_file: write failed for " + path);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_trace_file: cannot open " + path);
  auto trace = load_binary(is);
  if (!trace) throw std::runtime_error("load_trace_file: not a trace file: " + path);
  return *std::move(trace);
}

void export_csv(const Trace& trace, std::ostream& os) {
  os << "cycle,word_hex\n";
  const int digits = (trace.n_bits + 3) / 4;
  char buffer[64];
  for (std::size_t i = 0; i < trace.words.size(); ++i) {
    const BusWord& w = trace.words[i];
    if (digits <= 16) {
      std::snprintf(buffer, sizeof(buffer), "%zu,%0*llx\n", i, digits,
                    static_cast<unsigned long long>(w.low64()));
    } else {
      std::snprintf(buffer, sizeof(buffer), "%zu,%0*llx%016llx\n", i, digits - 16,
                    static_cast<unsigned long long>(w.lane(1)),
                    static_cast<unsigned long long>(w.lane(0)));
    }
    os << buffer;
  }
}

}  // namespace razorbus::trace

#include "trace/synthetic.hpp"

#include <algorithm>
#include <stdexcept>

namespace razorbus::trace {

namespace {

std::uint32_t next_word(SyntheticStyle style, std::uint32_t prev, double activity, Rng& rng) {
  switch (style) {
    case SyntheticStyle::uniform:
      return static_cast<std::uint32_t>(rng.next_u64());
    case SyntheticStyle::random_walk: {
      // Flip a binomial number of random bit positions.
      std::uint32_t word = prev;
      const int max_flips = std::max(1, static_cast<int>(32.0 * activity));
      const auto flips = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_flips)) + 1);
      for (int i = 0; i < flips; ++i) word ^= 1u << rng.next_below(32);
      return word;
    }
    case SyntheticStyle::fp_like: {
      // IEEE-754 single: keep sign+exponent in a narrow band, randomize the
      // mantissa (high `activity` = more mantissa entropy).
      const std::uint32_t exponent = 0x3f000000u + (static_cast<std::uint32_t>(rng.next_below(8)) << 23);
      const auto mantissa_bits = static_cast<std::uint32_t>(23.0 * activity);
      const std::uint32_t mantissa_mask = mantissa_bits >= 23 ? 0x7fffffu
                                          : ((1u << mantissa_bits) - 1u);
      return exponent | (static_cast<std::uint32_t>(rng.next_u64()) & mantissa_mask);
    }
    case SyntheticStyle::pointer_like: {
      // 1 MiB heap at a fixed base; word-aligned addresses with locality.
      const std::uint32_t base = 0x40000000u;
      const auto span = static_cast<std::uint32_t>(256.0 + activity * (1u << 18));
      const std::uint32_t offset = static_cast<std::uint32_t>(rng.next_below(span)) << 2;
      return base + offset;
    }
    case SyntheticStyle::sparse: {
      std::uint32_t word = 0;
      const auto set_bits = static_cast<int>(1 + rng.next_below(
                                static_cast<std::uint64_t>(std::max(1.0, activity * 6.0))));
      for (int i = 0; i < set_bits; ++i) word |= 1u << rng.next_below(32);
      return word;
    }
    case SyntheticStyle::worst_case:
      return prev == 0x55555555u ? 0xaaaaaaaau : 0x55555555u;
  }
  throw std::invalid_argument("generate_synthetic: unknown style");
}

}  // namespace

Trace generate_synthetic(const SyntheticConfig& config, const std::string& name) {
  if (config.load_rate < 0.0 || config.load_rate > 1.0)
    throw std::invalid_argument("generate_synthetic: load_rate must be in [0,1]");
  Trace out;
  out.name = name;
  out.words.reserve(config.cycles);
  Rng rng(config.seed);
  std::uint32_t word = 0;
  for (std::size_t i = 0; i < config.cycles; ++i) {
    if (rng.bernoulli(config.load_rate))
      word = next_word(config.style, word, config.activity, rng);
    out.words.push_back(word);
  }
  return out;
}

}  // namespace razorbus::trace

#include "trace/synthetic.hpp"

#include <algorithm>
#include <stdexcept>

namespace razorbus::trace {

namespace {

// The checkerboard pair, truncated to the bus width.
BusWord checker_word(int n_bits, bool odd) {
  const BusWord pattern =
      BusWord::from_lanes(0x5555555555555555ull, 0x5555555555555555ull);
  return (odd ? pattern << 1 : pattern) & BusWord::mask_low(n_bits);
}

// One uniform word of `n_bits` bits. For n_bits <= 64 this is a single
// next_u64 draw (so the 32-bit stream keeps its historical draw order);
// wider words draw the low lane first.
BusWord uniform_word(int n_bits, Rng& rng) {
  const std::uint64_t lo = rng.next_u64();
  const std::uint64_t hi = n_bits > 64 ? rng.next_u64() : 0;
  return BusWord::from_lanes(lo, hi) & BusWord::mask_low(n_bits);
}

BusWord next_word(SyntheticStyle style, const BusWord& prev, int n_bits, double activity,
                  Rng& rng) {
  switch (style) {
    case SyntheticStyle::uniform:
      return uniform_word(n_bits, rng);
    case SyntheticStyle::random_walk: {
      // Flip a binomial number of random bit positions.
      BusWord word = prev;
      const int max_flips = std::max(1, static_cast<int>(n_bits * activity));
      const auto flips = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(max_flips)) + 1);
      for (int i = 0; i < flips; ++i)
        word ^= BusWord(1)
                << static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n_bits)));
      return word;
    }
    case SyntheticStyle::fp_like: {
      // IEEE-754 single per 32-bit sub-word: keep sign+exponent in a narrow
      // band, randomize the mantissa (high `activity` = more mantissa
      // entropy). Wider buses tile independent fp words, each drawing its
      // exponent then its mantissa — chunk 0 is the historical 32-bit
      // stream.
      const auto mantissa_bits = static_cast<std::uint32_t>(23.0 * activity);
      const std::uint32_t mantissa_mask = mantissa_bits >= 23 ? 0x7fffffu
                                          : ((1u << mantissa_bits) - 1u);
      BusWord word;
      for (int base = 0; base < n_bits; base += 32) {
        const std::uint32_t exponent =
            0x3f000000u + (static_cast<std::uint32_t>(rng.next_below(8)) << 23);
        const std::uint32_t sub =
            exponent | (static_cast<std::uint32_t>(rng.next_u64()) & mantissa_mask);
        word |= BusWord(sub) << base;
      }
      return word & BusWord::mask_low(n_bits);
    }
    case SyntheticStyle::pointer_like: {
      // 1 MiB heap at a fixed base; word-aligned addresses with locality.
      // On buses wider than 32 the pointer stays in the low 32 bits and a
      // constant "upper address" bit marks the high half (constant bits
      // never toggle, so the switching statistics are width-honest).
      const std::uint32_t base = 0x40000000u;
      const auto span = static_cast<std::uint32_t>(256.0 + activity * (1u << 18));
      const std::uint32_t offset = static_cast<std::uint32_t>(rng.next_below(span)) << 2;
      BusWord word(base + offset);
      if (n_bits > 32) word.set(n_bits - 2);
      // Narrow buses keep only the in-width address bits (the heap-base
      // bit sits above wire 15 on a 16-wire bus).
      return word & BusWord::mask_low(n_bits);
    }
    case SyntheticStyle::sparse: {
      BusWord word;
      const auto set_bits = static_cast<int>(
          1 + rng.next_below(static_cast<std::uint64_t>(std::max(1.0, activity * 6.0))));
      for (int i = 0; i < set_bits; ++i)
        word |= BusWord(1)
                << static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n_bits)));
      return word;
    }
    case SyntheticStyle::worst_case:
      return prev == checker_word(n_bits, false) ? checker_word(n_bits, true)
                                                 : checker_word(n_bits, false);
  }
  throw std::invalid_argument("generate_synthetic: unknown style");
}

void check_synthetic_config(const SyntheticConfig& config) {
  if (config.load_rate < 0.0 || config.load_rate > 1.0)
    throw std::invalid_argument("generate_synthetic: load_rate must be in [0,1]");
  if (config.n_bits <= 0 || config.n_bits > BusWord::kMaxBits)
    throw std::invalid_argument("generate_synthetic: n_bits must be in 1..128");
}

// Streams the generate_synthetic sequence without materializing it: the
// (Rng, previous word) pair IS the whole generator state, so each block is
// the exact continuation of the last (the parity suite diffs streamed
// blocks against the materialized vector word for word).
class SyntheticSource final : public TraceSource {
 public:
  SyntheticSource(const SyntheticConfig& config, std::string name)
      : config_(config), name_(std::move(name)), rng_(config.seed) {
    check_synthetic_config(config_);
  }

  std::size_t next_block(BusWord* dst, std::size_t max) override {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(max, remaining()));
    for (std::size_t i = 0; i < n; ++i) {
      if (rng_.bernoulli(config_.load_rate))
        word_ = next_word(config_.style, word_, config_.n_bits, config_.activity, rng_);
      dst[i] = word_;
    }
    produced_ += n;
    return n;
  }

  int n_bits() const override { return config_.n_bits; }
  const std::string& name() const override { return name_; }
  std::optional<std::uint64_t> length() const override { return config_.cycles; }
  std::unique_ptr<TraceSource> clone() const override {
    return std::make_unique<SyntheticSource>(config_, name_);
  }

 private:
  std::uint64_t remaining() const { return config_.cycles - produced_; }

  SyntheticConfig config_;
  std::string name_;
  Rng rng_;
  BusWord word_;
  std::uint64_t produced_ = 0;
};

}  // namespace

Trace generate_synthetic(const SyntheticConfig& config, const std::string& name) {
  check_synthetic_config(config);
  Trace out;
  out.name = name;
  out.n_bits = config.n_bits;
  out.words.reserve(config.cycles);
  Rng rng(config.seed);
  BusWord word;
  for (std::size_t i = 0; i < config.cycles; ++i) {
    if (rng.bernoulli(config.load_rate))
      word = next_word(config.style, word, config.n_bits, config.activity, rng);
    out.words.push_back(word);
  }
  return out;
}

std::unique_ptr<TraceSource> make_synthetic_source(const SyntheticConfig& config,
                                                   const std::string& name) {
  return std::make_unique<SyntheticSource>(config, name);
}

std::string to_string(SyntheticStyle style) {
  switch (style) {
    case SyntheticStyle::uniform: return "uniform";
    case SyntheticStyle::random_walk: return "random_walk";
    case SyntheticStyle::fp_like: return "fp_like";
    case SyntheticStyle::pointer_like: return "pointer_like";
    case SyntheticStyle::sparse: return "sparse";
    case SyntheticStyle::worst_case: return "worst_case";
  }
  throw std::invalid_argument("to_string: unknown SyntheticStyle");
}

SyntheticStyle synthetic_style_from_string(const std::string& name) {
  for (const SyntheticStyle style :
       {SyntheticStyle::uniform, SyntheticStyle::random_walk, SyntheticStyle::fp_like,
        SyntheticStyle::pointer_like, SyntheticStyle::sparse, SyntheticStyle::worst_case})
    if (to_string(style) == name) return style;
  throw std::invalid_argument("unknown synthetic trace style '" + name +
                              "' (expected uniform, random_walk, fp_like, pointer_like, "
                              "sparse or worst_case)");
}

}  // namespace razorbus::trace

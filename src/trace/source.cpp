#include "trace/source.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace razorbus::trace {

namespace {

// Serves a materialized word vector block by block. Shared ownership keeps
// clone() allocation-free beyond the source object itself; the view
// factory passes a non-owning aliasing pointer instead.
class MaterializedSource final : public TraceSource {
 public:
  explicit MaterializedSource(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)) {
    if (!trace_) throw std::invalid_argument("make_trace_source: null trace");
  }

  std::size_t next_block(BusWord* dst, std::size_t max) override {
    const std::size_t n = std::min(max, trace_->words.size() - pos_);
    std::copy_n(trace_->words.data() + pos_, n, dst);
    pos_ += n;
    return n;
  }

  int n_bits() const override { return trace_->n_bits; }
  const std::string& name() const override { return trace_->name; }
  std::optional<std::uint64_t> length() const override {
    return trace_->words.size();
  }
  std::unique_ptr<TraceSource> clone() const override {
    return std::make_unique<MaterializedSource>(trace_);
  }

 private:
  std::shared_ptr<const Trace> trace_;
  std::size_t pos_ = 0;
};

class ConcatenatedSource final : public TraceSource {
 public:
  ConcatenatedSource(std::vector<std::unique_ptr<TraceSource>> parts,
                     std::string name)
      : parts_(std::move(parts)), name_(std::move(name)) {
    n_bits_ = parts_.empty() ? 32 : parts_.front()->n_bits();
    for (const auto& part : parts_) {
      if (!part)
        throw std::invalid_argument("concatenate_sources: null part (" + name_ + ")");
      if (part->n_bits() != n_bits_)
        throw std::invalid_argument("concatenate: mixed trace widths (" + name_ + ")");
    }
  }

  std::size_t next_block(BusWord* dst, std::size_t max) override {
    // Serve from the current part only; a short return at a part boundary
    // is legal by the next_block contract and keeps parts' own block
    // shapes intact.
    while (current_ < parts_.size()) {
      const std::size_t n = parts_[current_]->next_block(dst, max);
      if (n > 0) return n;
      ++current_;
    }
    return 0;
  }

  int n_bits() const override { return n_bits_; }
  const std::string& name() const override { return name_; }

  std::optional<std::uint64_t> length() const override {
    std::uint64_t total = 0;
    for (const auto& part : parts_) {
      const auto n = part->length();
      if (!n) return std::nullopt;
      total += *n;
    }
    return total;
  }

  std::unique_ptr<TraceSource> clone() const override {
    std::vector<std::unique_ptr<TraceSource>> parts;
    parts.reserve(parts_.size());
    for (const auto& part : parts_) parts.push_back(part->clone());
    return std::make_unique<ConcatenatedSource>(std::move(parts), name_);
  }

 private:
  std::vector<std::unique_ptr<TraceSource>> parts_;
  std::string name_;
  int n_bits_ = 32;
  std::size_t current_ = 0;
};

class WidenedSource final : public TraceSource {
 public:
  WidenedSource(std::unique_ptr<TraceSource> narrow, int factor)
      : narrow_(std::move(narrow)), factor_(factor) {
    if (!narrow_) throw std::invalid_argument("widen_source: null source");
    if (factor_ <= 0) throw std::invalid_argument("widen: factor must be positive");
    if (narrow_->n_bits() * factor_ > BusWord::kMaxBits)
      throw std::invalid_argument("widen: result exceeds BusWord capacity");
    narrow_bits_ = narrow_->n_bits();
    in_mask_ = BusWord::mask_low(narrow_bits_);
  }

  std::size_t next_block(BusWord* dst, std::size_t max) override {
    std::size_t written = 0;
    while (written < max) {
      if (chunk_pos_ == chunk_len_) {
        if (eof_) break;
        chunk_len_ = narrow_->next_block(chunk_, kChunkWords);
        chunk_pos_ = 0;
        if (chunk_len_ == 0) {
          eof_ = true;
          break;
        }
      }
      while (chunk_pos_ < chunk_len_ && written < max) {
        wide_ |= (chunk_[chunk_pos_++] & in_mask_) << (packed_ * narrow_bits_);
        if (++packed_ == factor_) {
          dst[written++] = wide_;
          wide_ = BusWord();
          packed_ = 0;
        }
      }
    }
    // The narrow stream ended mid-pack: flush the zero-padded tail word
    // (exactly trace::widen's tail semantics).
    if (eof_ && packed_ > 0 && written < max) {
      dst[written++] = wide_;
      wide_ = BusWord();
      packed_ = 0;
    }
    return written;
  }

  int n_bits() const override { return narrow_bits_ * factor_; }
  const std::string& name() const override { return narrow_->name(); }

  std::optional<std::uint64_t> length() const override {
    const auto n = narrow_->length();
    if (!n) return std::nullopt;
    return (*n + static_cast<std::uint64_t>(factor_) - 1) /
           static_cast<std::uint64_t>(factor_);
  }

  std::unique_ptr<TraceSource> clone() const override {
    return std::make_unique<WidenedSource>(narrow_->clone(), factor_);
  }

 private:
  // Staging buffer for narrow pulls; a fixed few KiB keeps the adaptor's
  // footprint bounded regardless of the consumer's block size.
  static constexpr std::size_t kChunkWords = 1024;

  std::unique_ptr<TraceSource> narrow_;
  int factor_;
  int narrow_bits_;
  BusWord in_mask_;
  BusWord chunk_[kChunkWords];
  std::size_t chunk_pos_ = 0;
  std::size_t chunk_len_ = 0;
  BusWord wide_;
  int packed_ = 0;
  bool eof_ = false;
};

}  // namespace

std::unique_ptr<TraceSource> make_trace_source(Trace trace) {
  return std::make_unique<MaterializedSource>(
      std::make_shared<const Trace>(std::move(trace)));
}

std::unique_ptr<TraceSource> make_trace_source(std::shared_ptr<const Trace> trace) {
  return std::make_unique<MaterializedSource>(std::move(trace));
}

std::unique_ptr<TraceSource> make_trace_view_source(const Trace& trace) {
  // Aliasing shared_ptr with an empty control block: no ownership, no
  // copy; the caller keeps `trace` alive (see source.hpp).
  return std::make_unique<MaterializedSource>(
      std::shared_ptr<const Trace>(std::shared_ptr<const Trace>(), &trace));
}

std::unique_ptr<TraceSource> concatenate_sources(
    std::vector<std::unique_ptr<TraceSource>> parts, const std::string& name) {
  return std::make_unique<ConcatenatedSource>(std::move(parts), name);
}

std::unique_ptr<TraceSource> widen_source(std::unique_ptr<TraceSource> narrow,
                                          int factor) {
  return std::make_unique<WidenedSource>(std::move(narrow), factor);
}

Trace materialize(TraceSource& source, std::size_t block_cycles) {
  if (block_cycles == 0)
    throw std::invalid_argument("materialize: block_cycles must be > 0");
  Trace out;
  out.name = source.name();
  out.n_bits = source.n_bits();
  if (const auto n = source.length())
    out.words.reserve(static_cast<std::size_t>(*n));
  std::vector<BusWord> block(block_cycles);
  for (;;) {
    const std::size_t n = source.next_block(block.data(), block.size());
    if (n == 0) break;
    out.words.insert(out.words.end(), block.data(), block.data() + n);
  }
  return out;
}

}  // namespace razorbus::trace

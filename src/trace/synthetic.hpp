// Statistical trace generators.
//
// These complement the mini-CPU benchmark kernels: they give experiments a
// way to dial in exact switching statistics (activity sweeps, worst-case
// stress, idle buses) and provide property tests with controlled inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/source.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace razorbus::trace {

enum class SyntheticStyle {
  uniform,       // fresh uniform word whenever the bus is active
  random_walk,   // flip a few random bits of the previous word
  fp_like,       // stable sign/exponent bits, noisy mantissa
  pointer_like,  // stable upper bits (heap base), noisy low bits
  sparse,        // mostly-zero words with a few set bits
  worst_case,    // alternating 0101.../1010... (max opposing transitions)
};

struct SyntheticConfig {
  SyntheticStyle style = SyntheticStyle::uniform;
  std::size_t cycles = 100000;
  // Probability per cycle that a new word is driven (otherwise hold).
  double load_rate = 0.4;
  // Style knobs (interpreted per style, see the generator).
  double activity = 0.5;  // 0..1, relative aggressiveness of bit flips
  std::uint64_t seed = 1;
  // Bus width of the generated words (1..BusWord::kMaxBits). The 32-bit
  // streams are pinned: for n_bits == 32 every style draws from the Rng in
  // exactly the historical order, so existing experiment inputs never
  // shift (enforced by the seed-stability suite in tests/trace_test.cpp).
  int n_bits = 32;
};

Trace generate_synthetic(const SyntheticConfig& config, const std::string& name);

// Streaming twin of generate_synthetic (DESIGN.md §12): produces the
// IDENTICAL word sequence — same Rng draw order, same hold decisions — one
// block at a time, so `config.cycles` may exceed what a materialized Trace
// could hold (a 10^8-cycle stream is ~1 MiB of buffer instead of ~1.6 GB
// of vector). `length()` reports config.cycles; `clone()` restarts from
// the seed. Validation matches generate_synthetic and throws up front.
std::unique_ptr<TraceSource> make_synthetic_source(const SyntheticConfig& config,
                                                   const std::string& name);

// Style names as used by the declarative scenario specs (DESIGN.md §11):
// "uniform", "random_walk", "fp_like", "pointer_like", "sparse",
// "worst_case". from_string throws std::invalid_argument on unknown names.
std::string to_string(SyntheticStyle style);
SyntheticStyle synthetic_style_from_string(const std::string& name);

}  // namespace razorbus::trace

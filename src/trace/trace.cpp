#include "trace/trace.hpp"

namespace razorbus::trace {

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.cycles = trace.cycles();
  if (trace.words.size() < 2) return stats;

  std::array<std::uint64_t, 32> bit_toggles{};
  std::uint64_t toggles = 0;
  std::uint64_t active_cycles = 0;
  std::uint64_t worst_pattern_cycles = 0;

  for (std::size_t i = 1; i < trace.words.size(); ++i) {
    const std::uint32_t prev = trace.words[i - 1];
    const std::uint32_t cur = trace.words[i];
    const std::uint32_t diff = prev ^ cur;
    if (diff) ++active_cycles;
    toggles += static_cast<std::uint64_t>(__builtin_popcount(diff));
    for (int b = 0; b < 32; ++b)
      if ((diff >> b) & 1u) ++bit_toggles[static_cast<std::size_t>(b)];

    // Worst-case pattern: an interior victim rising while both neighbors
    // fall, or vice versa.
    const std::uint32_t rise = ~prev & cur;
    const std::uint32_t fall = prev & ~cur;
    bool worst = false;
    for (int b = 1; b < 31 && !worst; ++b) {
      const bool vr = (rise >> b) & 1u;
      const bool vf = (fall >> b) & 1u;
      const bool lf = (fall >> (b - 1)) & 1u;
      const bool rf = (fall >> (b + 1)) & 1u;
      const bool lr = (rise >> (b - 1)) & 1u;
      const bool rr = (rise >> (b + 1)) & 1u;
      worst = (vr && lf && rf) || (vf && lr && rr);
    }
    if (worst) ++worst_pattern_cycles;
  }

  const auto transitions = static_cast<double>(trace.words.size() - 1);
  stats.toggle_rate = static_cast<double>(toggles) / (transitions * 32.0);
  stats.active_cycle_rate = static_cast<double>(active_cycles) / transitions;
  stats.worst_pattern_rate = static_cast<double>(worst_pattern_cycles) / transitions;
  for (int b = 0; b < 32; ++b)
    stats.per_bit_toggle[static_cast<std::size_t>(b)] =
        static_cast<double>(bit_toggles[static_cast<std::size_t>(b)]) / transitions;
  return stats;
}

Trace concatenate(const std::vector<Trace>& traces, const std::string& name) {
  Trace out;
  out.name = name;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.words.size();
  out.words.reserve(total);
  for (const auto& t : traces) out.words.insert(out.words.end(), t.words.begin(), t.words.end());
  return out;
}

}  // namespace razorbus::trace

#include "trace/trace.hpp"

#include <stdexcept>

namespace razorbus::trace {

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.cycles = trace.cycles();
  if (trace.words.size() < 2) return stats;
  const int n = trace.n_bits;

  std::array<std::uint64_t, BusWord::kMaxBits> bit_toggles{};
  std::uint64_t toggles = 0;
  std::uint64_t active_cycles = 0;
  std::uint64_t worst_pattern_cycles = 0;

  for (std::size_t i = 1; i < trace.words.size(); ++i) {
    const BusWord& prev = trace.words[i - 1];
    const BusWord& cur = trace.words[i];
    const BusWord diff = prev ^ cur;
    if (diff.any()) ++active_cycles;
    toggles += static_cast<std::uint64_t>(diff.popcount());
    for (int b = 0; b < n; ++b)
      if (diff.test(b)) ++bit_toggles[static_cast<std::size_t>(b)];

    // Worst-case pattern: an interior victim rising while both neighbors
    // fall, or vice versa.
    const BusWord rise = ~prev & cur;
    const BusWord fall = prev & ~cur;
    bool worst = false;
    for (int b = 1; b + 1 < n && !worst; ++b) {
      const bool vr = rise.test(b);
      const bool vf = fall.test(b);
      const bool lf = fall.test(b - 1);
      const bool rf = fall.test(b + 1);
      const bool lr = rise.test(b - 1);
      const bool rr = rise.test(b + 1);
      worst = (vr && lf && rf) || (vf && lr && rr);
    }
    if (worst) ++worst_pattern_cycles;
  }

  const auto transitions = static_cast<double>(trace.words.size() - 1);
  stats.toggle_rate =
      static_cast<double>(toggles) / (transitions * static_cast<double>(n));
  stats.active_cycle_rate = static_cast<double>(active_cycles) / transitions;
  stats.worst_pattern_rate = static_cast<double>(worst_pattern_cycles) / transitions;
  for (int b = 0; b < n; ++b)
    stats.per_bit_toggle[static_cast<std::size_t>(b)] =
        static_cast<double>(bit_toggles[static_cast<std::size_t>(b)]) / transitions;
  return stats;
}

Trace concatenate(const std::vector<Trace>& traces, const std::string& name) {
  Trace out;
  out.name = name;
  if (!traces.empty()) out.n_bits = traces.front().n_bits;
  for (const auto& t : traces)
    if (t.n_bits != out.n_bits)
      throw std::invalid_argument("concatenate: mixed trace widths (" + name + ")");
  std::size_t total = 0;
  for (const auto& t : traces) total += t.words.size();
  out.words.reserve(total);
  for (const auto& t : traces)
    out.words.insert(out.words.end(), t.words.begin(), t.words.end());
  return out;
}

Trace widen(const Trace& trace, int factor) {
  if (factor <= 0) throw std::invalid_argument("widen: factor must be positive");
  if (trace.n_bits * factor > BusWord::kMaxBits)
    throw std::invalid_argument("widen: result exceeds BusWord capacity");
  Trace out;
  out.name = trace.name;
  out.n_bits = trace.n_bits * factor;
  out.words.reserve((trace.words.size() + static_cast<std::size_t>(factor) - 1) /
                    static_cast<std::size_t>(factor));
  const BusWord in_mask = BusWord::mask_low(trace.n_bits);
  for (std::size_t i = 0; i < trace.words.size(); i += static_cast<std::size_t>(factor)) {
    BusWord wide;
    for (int k = 0; k < factor && i + static_cast<std::size_t>(k) < trace.words.size();
         ++k)
      wide |= (trace.words[i + static_cast<std::size_t>(k)] & in_mask)
              << (k * trace.n_bits);
    out.words.push_back(wide);
  }
  return out;
}

}  // namespace razorbus::trace

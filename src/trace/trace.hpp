// Bus data traces and their statistics.
//
// A trace is the per-cycle sequence of 32-bit words observed on the memory
// read bus (one word per cycle, IPC = 1 as in the paper; cycles without a
// new load repeat the previous word — the bus holds).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace razorbus::trace {

struct Trace {
  std::string name;
  std::vector<std::uint32_t> words;

  std::size_t cycles() const { return words.size(); }
};

// Aggregate switching statistics of a trace; used to sanity-check that the
// benchmark substitutes span the activity range the experiments rely on.
struct TraceStats {
  std::size_t cycles = 0;
  // Fraction of bit positions toggling per cycle, averaged over the trace.
  double toggle_rate = 0.0;
  // Fraction of cycles in which at least one bit toggles.
  double active_cycle_rate = 0.0;
  // Per-cycle probability that some interior wire switches against BOTH its
  // neighbors (the worst-case Miller pattern, paper Fig. 9 pattern I).
  double worst_pattern_rate = 0.0;
  // Per-bit toggle probability.
  std::array<double, 32> per_bit_toggle{};
};

TraceStats compute_stats(const Trace& trace);

// Concatenate traces back to back (Fig. 8 runs the 10 benchmarks
// consecutively).
Trace concatenate(const std::vector<Trace>& traces, const std::string& name);

}  // namespace razorbus::trace

// Bus data traces and their statistics.
//
// A trace is the per-cycle sequence of bus words observed on a bus (one
// word per cycle, IPC = 1 as in the paper; cycles without a new load
// repeat the previous word — the bus HOLDS, and the hold is materialized
// as a repeated word, so `words[i] == words[i-1]` is the idle-cycle test
// everywhere). Words are width-generic BusWords; `n_bits` records how many
// wires the trace drives (the paper's memory read bus is 32, memory buses
// 64, cacheline flits 128). Width rules: experiment drivers reject traces
// WIDER than their bus (the high lanes would be dropped silently);
// narrower traces are legal — the surplus wires hold. Producers keep bits
// at or above n_bits clear.
//
// Memory contract: a Trace materializes every cycle (16 bytes each), so
// campaign length is RAM-bound — 10^8 cycles is ~1.6 GB resident. For
// longer runs, stream the same word sequence in bounded-memory blocks
// through trace::TraceSource (source.hpp, DESIGN.md §12) instead; the
// experiment results are bit-identical either way.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/busword.hpp"

namespace razorbus::trace {

struct Trace {
  std::string name;
  std::vector<BusWord> words;
  int n_bits = 32;

  std::size_t cycles() const { return words.size(); }
};

// Aggregate switching statistics of a trace; used to sanity-check that the
// benchmark substitutes span the activity range the experiments rely on.
struct TraceStats {
  std::size_t cycles = 0;
  // Fraction of bit positions toggling per cycle, averaged over the trace.
  double toggle_rate = 0.0;
  // Fraction of cycles in which at least one bit toggles.
  double active_cycle_rate = 0.0;
  // Per-cycle probability that some interior wire switches against BOTH its
  // neighbors (the worst-case Miller pattern, paper Fig. 9 pattern I).
  double worst_pattern_rate = 0.0;
  // Per-bit toggle probability (entries past n_bits stay zero).
  std::array<double, BusWord::kMaxBits> per_bit_toggle{};
};

TraceStats compute_stats(const Trace& trace);

// Concatenate traces back to back (Fig. 8 runs the 10 benchmarks
// consecutively). All inputs must share one n_bits — mixed widths throw
// std::invalid_argument (a silently adopted first-trace width would
// mislabel the wider inputs). An empty list yields an empty 32-wire trace.
Trace concatenate(const std::vector<Trace>& traces, const std::string& name);

// Pack `factor` consecutive words into one wide word (earliest word in the
// lowest bits): a 32-bit CPU load stream becomes the flit sequence of a
// 64- or 128-wire memory bus. The tail is zero-padded when the cycle count
// is not a multiple of `factor`. Requires n_bits * factor <= 128.
Trace widen(const Trace& trace, int factor);

}  // namespace razorbus::trace

// Streaming trace pipeline (DESIGN.md §12).
//
// A `Trace` materializes every cycle in RAM (16 bytes per cycle), which
// caps campaign length by memory: a 10^9-cycle consecutive-benchmark run
// would need ~16 GB before the first simulated cycle. `TraceSource` is the
// bounded-memory alternative: a pull-based block iterator over the same
// per-cycle word sequence. Consumers drain it through a fixed-size buffer
// (`kDefaultBlockCycles` words by default), so the resident trace memory of
// a streamed experiment is O(block), independent of campaign length.
//
// Contracts every source maintains:
//
//   * Word semantics are identical to `Trace`: one word per cycle, and a
//     cycle without a new load REPEATS the previous word (the bus holds).
//     Hold cycles are materialized in the stream — consumers never have to
//     ask "was this a hold?"; `word == prev` is the hold test, exactly as
//     on the vector path.
//   * `next_block` may return FEWER than `max` words even before the end
//     (producers flush at internal boundaries, e.g. between concatenated
//     parts); only a return of 0 means the stream is exhausted, and every
//     call after that returns 0.
//   * `n_bits` is fixed for the lifetime of the stream and every word has
//     bits at or above it cleared by the producer that introduced them
//     (mirror of the width rules in trace.hpp).
//   * `clone()` yields an INDEPENDENT stream positioned at the first word
//     producing the identical word sequence — this is what lets sharded
//     drivers (one supply / trace / Monte-Carlo sample per shard,
//     DESIGN.md §9) stream the same input concurrently.
//
// Producers live next to what they stream: synthetic streams in
// synthetic.hpp (`make_synthetic_source`), mini-CPU benchmark execution in
// cpu/kernels.hpp (`Benchmark::stream`), RBTRACE1/2 file readers in io.hpp
// (`open_trace_stream`), bus-invert re-coding in bus/businvert.hpp. This
// header holds the interface plus the generic adaptors.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace razorbus::trace {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Write up to `max` consecutive words into `dst` and return how many
  // were written. Short (but non-zero) returns are legal mid-stream; 0
  // means exhausted, permanently. `max` must be at least 1.
  virtual std::size_t next_block(BusWord* dst, std::size_t max) = 0;

  // Wire count of every word in the stream (1..BusWord::kMaxBits).
  virtual int n_bits() const = 0;

  // Trace name, used for report keys exactly like Trace::name.
  virtual const std::string& name() const = 0;

  // Total words this stream will produce, when known up front (synthetic
  // budgets, file word counts). Unknown for e.g. halt-dependent CPU
  // streams; consumers must treat it as a hint, never a promise.
  virtual std::optional<std::uint64_t> length() const { return std::nullopt; }

  // Fresh, independent stream over the same word sequence, positioned at
  // the first word. Cloning never disturbs this stream's position.
  virtual std::unique_ptr<TraceSource> clone() const = 0;
};

// Default consumer block size: 64 Ki words = 1 MiB of BusWord buffer. Big
// enough that the per-block bookkeeping vanishes against the cycle kernel,
// small enough that dozens of concurrent shards stay cache- and RAM-cheap.
inline constexpr std::size_t kDefaultBlockCycles = std::size_t{1} << 16;

// Stream over a materialized trace (the golden-reference bridge: parity
// tests stream the exact vector the legacy path indexes). The owning
// overloads keep the trace alive via shared ownership, so clones are
// cheap; the view overload does NOT copy or own — the caller guarantees
// `trace` outlives the source and every clone.
std::unique_ptr<TraceSource> make_trace_source(Trace trace);
std::unique_ptr<TraceSource> make_trace_source(std::shared_ptr<const Trace> trace);
std::unique_ptr<TraceSource> make_trace_view_source(const Trace& trace);

// Back-to-back concatenation (the Fig. 8 consecutive-benchmark stream).
// All parts must share one width — mixed widths throw std::invalid_argument
// exactly like trace::concatenate. An empty part list yields an empty
// 32-wire stream, mirroring concatenate({}).
std::unique_ptr<TraceSource> concatenate_sources(
    std::vector<std::unique_ptr<TraceSource>> parts, const std::string& name);

// Streaming counterpart of trace::widen: packs `factor` consecutive narrow
// words into one wide word (earliest word in the lowest bits), zero-padding
// the final word when the narrow stream ends mid-pack. Requires
// narrow->n_bits() * factor <= BusWord::kMaxBits.
std::unique_ptr<TraceSource> widen_source(std::unique_ptr<TraceSource> narrow,
                                          int factor);

// Drain a source into a materialized Trace (tests, small captures). This
// re-introduces the O(length) memory cost streaming exists to avoid — use
// it only when the result is known to fit.
Trace materialize(TraceSource& source,
                  std::size_t block_cycles = kDefaultBlockCycles);

}  // namespace razorbus::trace

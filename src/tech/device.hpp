// Alpha-power-law driver (repeater) model.
//
// A repeater is a CMOS inverter of size S (multiples of the unit inverter).
// Its switching behaviour is reduced to an effective resistance
//
//   R_eff(V) = r_unit / S * (V / Vnom) / ((V - Vth_eff) / (Vnom - Vth_nom))^alpha
//              / drive_multiplier(corner) * (T / T0)^mobility_exponent
//
// following Sakurai-Newton's alpha-power MOSFET model: saturation current
// I_dsat ~ (Vgs - Vth)^alpha, effective resistance ~ V / I_dsat. Vth_eff
// includes the corner shift, the temperature coefficient and a DIBL term.
// This captures exactly the supply/corner/temperature delay sensitivities
// the paper's HSPICE tables encode.
#pragma once

#include "tech/corner.hpp"
#include "tech/node.hpp"

namespace razorbus::tech {

class DriverModel {
 public:
  explicit DriverModel(TechnologyNode node) : node_(std::move(node)) {}

  const TechnologyNode& node() const { return node_; }

  // Effective threshold voltage under the given conditions.
  double vth_eff(ProcessCorner corner, double temp_c, double vdd) const;

  // True when the device still switches usefully: supply comfortably above
  // threshold. Delay diverges as vdd -> vth; callers must not evaluate below.
  bool conducts(ProcessCorner corner, double temp_c, double vdd) const;

  // Effective switching resistance of a size-`size` driver at supply `vdd`
  // (already net of IR drop). Throws std::domain_error if the device does
  // not conduct at this point.
  double effective_resistance(double size, ProcessCorner corner, double temp_c,
                              double vdd) const;

  // Input gate capacitance / self (drain) capacitance of a size-`size` driver.
  double input_capacitance(double size) const { return node_.c_in_unit * size; }
  double self_capacitance(double size) const { return node_.c_self_unit * size; }

  // Short-circuit energy per output transition (scales with size and V^2).
  double short_circuit_energy(double size, double vdd) const;

 private:
  TechnologyNode node_;
};

}  // namespace razorbus::tech

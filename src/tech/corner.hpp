// Process / voltage-drop / temperature (PVT) corner definitions.
//
// The paper sweeps: process in {slow, typical, fast}, temperature in
// {25C, 100C}, and local IR drop in {0%, 10%} of the supply seen by the
// repeaters. Figure 5 uses five named corners spanning the delay range of
// a non-DVS bus; `fig5_corners()` returns them in the paper's order.
#pragma once

#include <array>
#include <string>

namespace razorbus::tech {

enum class ProcessCorner { slow, typical, fast };

std::string to_string(ProcessCorner corner);
ProcessCorner process_corner_from_string(const std::string& name);

// Per-corner device adjustments applied on top of the typical model.
struct CornerParams {
  double drive_multiplier;  // relative saturation current
  double vth_shift;         // V added to vth0
};

CornerParams corner_params(ProcessCorner corner);

struct PvtCorner {
  ProcessCorner process = ProcessCorner::typical;
  double temp_c = 25.0;
  double ir_drop_fraction = 0.0;  // fraction of supply lost at the repeaters

  std::string name() const;

  // Supply actually seen by drivers after IR drop.
  double effective_supply(double vdd) const { return vdd * (1.0 - ir_drop_fraction); }

  friend bool operator==(const PvtCorner& a, const PvtCorner& b) {
    return a.process == b.process && a.temp_c == b.temp_c &&
           a.ir_drop_fraction == b.ir_drop_fraction;
  }
  friend bool operator!=(const PvtCorner& a, const PvtCorner& b) { return !(a == b); }
};

// Worst-case corner the bus is sized for: slow process, 100C, 10% IR drop.
PvtCorner worst_case_corner();
// Typical evaluation corner of Fig. 4(b) / Table 1: typical, 100C, no IR drop.
PvtCorner typical_corner();

// The five corners of Fig. 5, ordered slowest to fastest:
// 1 slow/100C/10%IR, 2 slow/100C/noIR, 3 typical/100C/noIR,
// 4 fast/100C/noIR, 5 fast/25C/noIR.
std::array<PvtCorner, 5> fig5_corners();

}  // namespace razorbus::tech

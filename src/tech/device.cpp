#include "tech/device.hpp"

#include <cmath>
#include <stdexcept>

namespace razorbus::tech {

namespace {
constexpr double kT0Kelvin = 298.15;  // 25C reference
}

double DriverModel::vth_eff(ProcessCorner corner, double temp_c, double vdd) const {
  const CornerParams cp = corner_params(corner);
  return node_.vth0 + cp.vth_shift + node_.vth_temp_coeff * (temp_c - 25.0) -
         node_.dibl * (vdd - node_.vdd_nominal);
}

bool DriverModel::conducts(ProcessCorner corner, double temp_c, double vdd) const {
  // Require at least 100 mV of overdrive; below that the alpha-power model
  // (and any realistically clocked bus) is far out of its useful range.
  return vdd - vth_eff(corner, temp_c, vdd) > 0.1;
}

double DriverModel::effective_resistance(double size, ProcessCorner corner, double temp_c,
                                         double vdd) const {
  if (size <= 0.0) throw std::invalid_argument("driver size must be positive");
  if (!conducts(corner, temp_c, vdd))
    throw std::domain_error("driver does not conduct at vdd=" + std::to_string(vdd));

  const CornerParams cp = corner_params(corner);
  const double vth_nom = node_.vth0;  // typical corner, 25C, nominal supply
  const double overdrive = vdd - vth_eff(corner, temp_c, vdd);
  const double overdrive_nom = node_.vdd_nominal - vth_nom;

  const double voltage_factor =
      (vdd / node_.vdd_nominal) / std::pow(overdrive / overdrive_nom, node_.alpha);
  const double temp_factor =
      std::pow((temp_c + 273.15) / kT0Kelvin, node_.mobility_temp_exponent);

  return node_.r_unit / size * voltage_factor * temp_factor / cp.drive_multiplier;
}

double DriverModel::short_circuit_energy(double size, double vdd) const {
  const double v_ratio = vdd / node_.vdd_nominal;
  return node_.e_short_unit * size * v_ratio * v_ratio;
}

}  // namespace razorbus::tech

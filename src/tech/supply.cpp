#include "tech/supply.hpp"

#include <cmath>
#include <stdexcept>

namespace razorbus::tech {

SupplyGrid::SupplyGrid(double vmin, double vmax, double step)
    : vmin_(vmin), vmax_(vmax), step_(step) {
  if (step <= 0.0 || vmax < vmin)
    throw std::invalid_argument("SupplyGrid: bad range/step");
  count_ = static_cast<std::size_t>(std::floor((vmax - vmin) / step + 1e-9)) + 1;
  vmax_ = vmin_ + step_ * static_cast<double>(count_ - 1);
}

double SupplyGrid::voltage(std::size_t index) const {
  if (index >= count_) throw std::out_of_range("SupplyGrid::voltage");
  return vmin_ + step_ * static_cast<double>(index);
}

std::size_t SupplyGrid::index_of(double v) const {
  if (v <= vmin_) return 0;
  if (v >= vmax_) return count_ - 1;
  const double raw = (v - vmin_) / step_;
  auto idx = static_cast<std::size_t>(std::lround(raw));
  if (idx >= count_) idx = count_ - 1;
  return idx;
}

double SupplyGrid::step_up(double v) const {
  const std::size_t idx = index_of(v);
  return idx + 1 < count_ ? voltage(idx + 1) : vmax_;
}

double SupplyGrid::step_down(double v) const {
  const std::size_t idx = index_of(v);
  return idx > 0 ? voltage(idx - 1) : vmin_;
}

std::vector<double> SupplyGrid::voltages() const {
  std::vector<double> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) out.push_back(voltage(i));
  return out;
}

}  // namespace razorbus::tech

#include "tech/corner.hpp"

#include <sstream>
#include <stdexcept>

namespace razorbus::tech {

std::string to_string(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::slow: return "slow";
    case ProcessCorner::typical: return "typical";
    case ProcessCorner::fast: return "fast";
  }
  return "?";
}

ProcessCorner process_corner_from_string(const std::string& name) {
  if (name == "slow") return ProcessCorner::slow;
  if (name == "typical") return ProcessCorner::typical;
  if (name == "fast") return ProcessCorner::fast;
  throw std::invalid_argument("unknown process corner: " + name);
}

CornerParams corner_params(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::slow: return {0.93, +0.02};
    case ProcessCorner::typical: return {1.0, 0.0};
    case ProcessCorner::fast: return {1.08, -0.02};
  }
  return {1.0, 0.0};
}

std::string PvtCorner::name() const {
  std::ostringstream ss;
  ss << to_string(process) << " process, " << static_cast<int>(temp_c) << "C, ";
  if (ir_drop_fraction > 0.0)
    ss << static_cast<int>(ir_drop_fraction * 100.0 + 0.5) << "% IR drop";
  else
    ss << "no IR drop";
  return ss.str();
}

PvtCorner worst_case_corner() { return {ProcessCorner::slow, 100.0, 0.10}; }
PvtCorner typical_corner() { return {ProcessCorner::typical, 100.0, 0.0}; }

std::array<PvtCorner, 5> fig5_corners() {
  return {{{ProcessCorner::slow, 100.0, 0.10},
           {ProcessCorner::slow, 100.0, 0.0},
           {ProcessCorner::typical, 100.0, 0.0},
           {ProcessCorner::fast, 100.0, 0.0},
           {ProcessCorner::fast, 25.0, 0.0}}};
}

}  // namespace razorbus::tech

#include "tech/leakage.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace razorbus::tech {

LeakageModel::LeakageModel(TechnologyNode node) : node_(std::move(node)) {
  const double vt = thermal_voltage(25.0);
  const double nominal_shape = std::exp(-node_.vth0 / (node_.leak_n * vt)) *
                               (1.0 - std::exp(-node_.vdd_nominal / vt));
  i0_ = node_.i_leak_unit / nominal_shape;
}

double LeakageModel::vth_eff(ProcessCorner corner, double temp_c, double vdd) const {
  const CornerParams cp = corner_params(corner);
  return node_.vth0 + cp.vth_shift + node_.vth_temp_coeff * (temp_c - 25.0) -
         node_.dibl * (vdd - node_.vdd_nominal);
}

double LeakageModel::current(double size, ProcessCorner corner, double temp_c,
                             double vdd) const {
  if (size <= 0.0) throw std::invalid_argument("driver size must be positive");
  if (vdd <= 0.0) return 0.0;
  const double vt = thermal_voltage(temp_c);
  return i0_ * size * std::exp(-vth_eff(corner, temp_c, vdd) / (node_.leak_n * vt)) *
         (1.0 - std::exp(-vdd / vt));
}

double LeakageModel::energy(double size, ProcessCorner corner, double temp_c, double vdd,
                            double duration) const {
  return current(size, corner, temp_c, vdd) * vdd * duration;
}

}  // namespace razorbus::tech

#include "tech/node.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace razorbus::tech {

TechnologyNode node_130nm() {
  TechnologyNode n;
  n.name = "130nm";
  n.vdd_nominal = 1.2_V;
  n.vth0 = 0.35_V;
  n.alpha = 1.3;
  n.vth_temp_coeff = -0.5e-3;        // -0.5 mV/K
  n.mobility_temp_exponent = 0.7;    // net drive-vs-T slope after Vth(T) offset
  n.dibl = 0.08;
  n.r_unit = 12.0_kohm;
  n.c_in_unit = 1.8_fF;
  n.c_self_unit = 1.2_fF;
  n.e_short_unit = 0.05_fJ;
  n.i_leak_unit = 2e-9;              // 2 nA per unit size at (1.2 V, typical, 25C)
  n.leak_n = 1.5;
  n.wire_width = 0.4_um;             // 0.8 um minimum pitch
  n.wire_spacing = 0.4_um;
  n.wire_thickness = 0.9_um;
  n.ild_height = 0.8_um;
  n.resistivity = 2.2e-8;            // Cu + barrier
  n.eps_r = 3.6;                     // FSG-era dielectric
  return n;
}

TechnologyNode node_90nm() {
  TechnologyNode n = node_130nm();
  n.name = "90nm";
  n.vdd_nominal = 1.0_V;
  n.vth0 = 0.32_V;
  n.alpha = 1.25;
  n.r_unit = 10.0_kohm;
  n.c_in_unit = 1.2_fF;
  n.c_self_unit = 0.8_fF;
  n.i_leak_unit = 8e-9;
  n.wire_width = 0.3_um;
  n.wire_spacing = 0.3_um;
  n.wire_thickness = 0.75_um;
  n.ild_height = 0.65_um;
  n.resistivity = 2.5e-8;            // more barrier/scattering impact
  n.eps_r = 3.2;                     // early low-k
  return n;
}

TechnologyNode node_65nm() {
  TechnologyNode n = node_130nm();
  n.name = "65nm";
  n.vdd_nominal = 1.0_V;
  n.vth0 = 0.30_V;
  n.alpha = 1.2;
  n.r_unit = 9.0_kohm;
  n.c_in_unit = 0.8_fF;
  n.c_self_unit = 0.55_fF;
  n.i_leak_unit = 25e-9;
  n.wire_width = 0.2_um;
  n.wire_spacing = 0.2_um;
  n.wire_thickness = 0.55_um;
  n.ild_height = 0.5_um;
  n.resistivity = 3.0e-8;
  n.eps_r = 2.9;
  return n;
}

TechnologyNode node_by_name(const std::string& name) {
  if (name == "130nm") return node_130nm();
  if (name == "90nm") return node_90nm();
  if (name == "65nm") return node_65nm();
  throw std::invalid_argument("unknown technology node: " + name);
}

}  // namespace razorbus::tech

// Subthreshold leakage model for the bus repeaters.
//
// The paper tabulates repeater leakage per supply voltage and environment
// condition and adds it to total bus energy. We model the standard
// subthreshold current
//
//   I_leak = I0 * S * exp(-Vth_eff / (n * kT/q)) * (1 - exp(-V / kT/q))
//
// normalised so that a unit driver leaks `node.i_leak_unit` amps at
// (Vnom, typical, 25C). Vth_eff carries the corner shift, temperature
// coefficient and DIBL, which produces the expected strong growth of
// leakage with temperature and supply.
#pragma once

#include "tech/corner.hpp"
#include "tech/node.hpp"

namespace razorbus::tech {

class LeakageModel {
 public:
  explicit LeakageModel(TechnologyNode node);

  // Leakage current (A) of a size-`size` driver.
  double current(double size, ProcessCorner corner, double temp_c, double vdd) const;

  // Leakage energy (J) burned by a size-`size` driver over `duration` seconds.
  double energy(double size, ProcessCorner corner, double temp_c, double vdd,
                double duration) const;

 private:
  double vth_eff(ProcessCorner corner, double temp_c, double vdd) const;

  TechnologyNode node_;
  double i0_;  // prefactor calibrated to node_.i_leak_unit at nominal conditions
};

}  // namespace razorbus::tech

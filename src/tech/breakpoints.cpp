#include "tech/breakpoints.hpp"

#include <algorithm>
#include <stdexcept>

namespace razorbus::tech {

SupplyBreakpoints::SupplyBreakpoints(std::vector<double> voltages)
    : voltages_(std::move(voltages)) {
  if (voltages_.empty())
    throw std::invalid_argument("SupplyBreakpoints: empty voltage list");
  for (std::size_t i = 1; i < voltages_.size(); ++i)
    if (!(voltages_[i - 1] < voltages_[i]))
      throw std::invalid_argument(
          "SupplyBreakpoints: voltages must be strictly ascending");
}

double SupplyBreakpoints::voltage(std::size_t index) const {
  if (index >= voltages_.size())
    throw std::out_of_range("SupplyBreakpoints::voltage");
  return voltages_[index];
}

double SupplyBreakpoints::vmin() const {
  if (voltages_.empty()) throw std::out_of_range("SupplyBreakpoints::vmin");
  return voltages_.front();
}

double SupplyBreakpoints::vmax() const {
  if (voltages_.empty()) throw std::out_of_range("SupplyBreakpoints::vmax");
  return voltages_.back();
}

SupplyBreakpoints::Segment SupplyBreakpoints::locate(double v) const {
  if (voltages_.empty()) throw std::out_of_range("SupplyBreakpoints::locate");
  const std::size_t n = voltages_.size();
  if (v <= voltages_.front()) return {0, 0, 0.0};
  if (v >= voltages_.back()) return {n - 1, n - 1, 0.0};
  // First breakpoint strictly above v; v < back() guarantees it exists and
  // v > front() guarantees it is not the first.
  const auto it = std::upper_bound(voltages_.begin(), voltages_.end(), v);
  const auto hi = static_cast<std::size_t>(it - voltages_.begin());
  const std::size_t lo = hi - 1;
  const double span = voltages_[hi] - voltages_[lo];
  return {lo, hi, span > 0.0 ? (v - voltages_[lo]) / span : 0.0};
}

}  // namespace razorbus::tech

// Discrete supply-voltage grid.
//
// The paper characterises the bus and steps the regulator on a 20 mV grid.
// SupplyGrid owns that discretisation: snapping, clamping and iteration over
// grid points. Grid indices are stable identifiers used by the lookup tables.
#pragma once

#include <cstddef>
#include <vector>

namespace razorbus::tech {

class SupplyGrid {
 public:
  // Grid of voltages {vmin, vmin+step, ..., vmax}; vmax must be reachable
  // from vmin in whole steps (within tolerance) or it is rounded down.
  SupplyGrid(double vmin, double vmax, double step = 0.020);

  double vmin() const { return vmin_; }
  double vmax() const { return vmax_; }
  double step() const { return step_; }
  std::size_t size() const { return count_; }

  double voltage(std::size_t index) const;
  // Nearest grid index for `v` (clamped to the grid range).
  std::size_t index_of(double v) const;
  // Snap `v` to the nearest grid voltage (clamped).
  double snap(double v) const { return voltage(index_of(v)); }
  // Clamp then move one step up/down, saturating at the ends.
  double step_up(double v) const;
  double step_down(double v) const;

  std::vector<double> voltages() const;

 private:
  double vmin_;
  double vmax_;
  double step_;
  std::size_t count_;
};

}  // namespace razorbus::tech

// Non-uniform supply breakpoints.
//
// SupplyGrid (supply.hpp) is the REGULATOR's discretisation: a uniform
// 20 mV ladder whose indices are stable identifiers. Adaptive
// characterization (docs/characterization.md) does not sample that ladder
// densely — it keeps only the voltages where the delay/energy surfaces
// actually bend. SupplyBreakpoints owns that non-uniform axis: a sorted
// list of voltages with binary-search segment lookup for interpolation.
// The two classes deliberately coexist: regulators step on the grid,
// tables interpolate on breakpoints.
#pragma once

#include <cstddef>
#include <vector>

namespace razorbus::tech {

class SupplyBreakpoints {
 public:
  // Empty axis; assign before use. locate() on an empty axis throws.
  SupplyBreakpoints() = default;
  // `voltages` must be strictly ascending and non-empty; throws otherwise.
  explicit SupplyBreakpoints(std::vector<double> voltages);

  bool empty() const { return voltages_.empty(); }
  std::size_t size() const { return voltages_.size(); }
  double voltage(std::size_t index) const;
  double vmin() const;
  double vmax() const;
  const std::vector<double>& voltages() const { return voltages_; }

  // The segment [lo, hi] containing `v` plus the interpolation fraction;
  // clamped at the ends (v <= vmin -> {0, 0, 0}, v >= vmax -> {n-1, n-1, 0}).
  struct Segment {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double frac = 0.0;
  };
  Segment locate(double v) const;

 private:
  std::vector<double> voltages_;
};

}  // namespace razorbus::tech

// Technology node description.
//
// The paper uses a 0.13 um CMOS process with global-layer wires at 0.8 um
// minimum pitch and a 1.2 V nominal supply. We additionally define scaled
// 90 nm and 65 nm nodes for the Section 6 technology-scaling study: wire
// capacitance per unit length stays roughly constant while resistance per
// unit length grows (narrower/thinner wires, higher effective resistivity
// from barriers and surface scattering), cf. Ho et al., "The Future of
// Wires".
#pragma once

#include <string>

namespace razorbus::tech {

struct TechnologyNode {
  std::string name;

  // --- Supply / device ---
  double vdd_nominal;     // V
  double vth0;            // zero-bias threshold voltage at 25C, typical corner (V)
  double alpha;           // alpha-power-law velocity saturation index
  double vth_temp_coeff;  // dVth/dT (V per degree C, negative)
  double mobility_temp_exponent;  // drive ~ (T0/T)^exp, T in kelvin
  double dibl;            // Vth reduction per volt of supply above/below nominal

  // Unit-sized inverter characteristics at (vdd_nominal, typical, 25C).
  double r_unit;          // effective switching resistance of a size-1 driver (ohm)
  double c_in_unit;       // gate input capacitance of a size-1 driver (F)
  double c_self_unit;     // drain/self-load capacitance of a size-1 driver (F)
  double e_short_unit;    // short-circuit energy per transition per unit size at Vnom (J)
  double i_leak_unit;     // leakage current of a size-1 driver at nominal conditions (A)
  double leak_n;          // subthreshold slope factor n (I ~ exp(-Vth/(n kT/q)))

  // --- Global wiring layer ---
  double wire_width;      // minimum width (m)
  double wire_spacing;    // minimum spacing (m)
  double wire_thickness;  // metal thickness (m)
  double ild_height;      // dielectric height to the plane below (m)
  double resistivity;     // effective resistivity including barriers (ohm * m)
  double eps_r;           // inter-layer dielectric relative permittivity

  double min_pitch() const { return wire_width + wire_spacing; }
};

// The paper's process: 0.13 um, 1.2 V, 0.8 um global pitch.
TechnologyNode node_130nm();
// Scaled nodes used by the Section 6 technology-scaling study.
TechnologyNode node_90nm();
TechnologyNode node_65nm();

// Lookup by name ("130nm", "90nm", "65nm"); throws on unknown names.
TechnologyNode node_by_name(const std::string& name);

}  // namespace razorbus::tech

#include "razor/flop.hpp"

namespace razorbus::razor {

CaptureOutcome DoubleSamplingFlop::clock(bool next_value, double arrival,
                                         const FlopTiming& timing) {
  if (timing.main_capture_limit <= 0.0 ||
      timing.shadow_capture_limit < timing.main_capture_limit)
    throw std::invalid_argument("DoubleSamplingFlop: inconsistent timing limits");

  error_ = false;

  if (next_value == line_ || arrival <= 0.0) {
    // Wire held its value: both samples agree trivially.
    q_ = line_;
    shadow_ = line_;
    return CaptureOutcome::clean;
  }

  if (timing.min_path_limit > 0.0 && arrival < timing.min_path_limit) {
    // Short-path violation: the new value raced into the shadow latch
    // before the delayed clock closed on the PREVIOUS value. The shadow
    // latch content is corrupt, which is indistinguishable from a shadow
    // capture failure at the architecture level.
    line_ = next_value;
    q_ = next_value;  // main latch did capture (it was fast), but...
    shadow_ = next_value;
    return CaptureOutcome::shadow_failure;
  }

  line_ = next_value;
  if (arrival <= timing.main_capture_limit) {
    q_ = next_value;
    shadow_ = next_value;
    return CaptureOutcome::clean;
  }
  if (arrival <= timing.shadow_capture_limit) {
    // Main edge sampled the old value; shadow got the new one.
    q_ = line_;          // after Error_L-driven restore, Q holds the correct value
    shadow_ = next_value;
    error_ = true;
    return CaptureOutcome::corrected;
  }
  // Neither latch saw the transition in time.
  q_ = next_value;  // eventually settles, but the cycle consumed wrong data
  shadow_ = next_value;
  return CaptureOutcome::shadow_failure;
}

}  // namespace razorbus::razor

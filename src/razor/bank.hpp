// Bank of double-sampling flip-flops at the bus receiver plus the error
// recovery cost model.
//
// The local Error_L signals of all flops between two pipeline stages are
// ORed into a single bank error (paper Section 2). On an error the
// architecture takes a one-cycle penalty (flush + retransmit from the
// shadow latch, handled like a cache miss), and pays an energy overhead
// dominated by clocking the whole flop bank for the extra cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "razor/flop.hpp"
#include "util/busword.hpp"

namespace razorbus::razor {

struct BankCycleResult {
  bool error = false;            // OR of all Error_L signals
  bool shadow_failure = false;   // any bit missed even the shadow latch
  BusWord captured;              // word in the main latches after recovery
  int corrected_bits = 0;        // number of flops that asserted Error_L
};

class FlopBank {
 public:
  // `initial_word` seeds every latch (main, shadow, line) so a bank can be
  // constructed consistent with a bus that resets to a non-zero word.
  FlopBank(int n_bits, FlopTiming timing, const BusWord& initial_word = BusWord());

  // Clock the bank: bit i of `word` arrives with delay `arrivals[i]`
  // (seconds; <= 0 for held wires). `arrivals` must have n_bits entries.
  BankCycleResult clock(const BusWord& word, const std::vector<double>& arrivals);

  // Clock the bank on a cycle where every wire held its value: no flop can
  // err, only the cycle counter advances. (Fast path for idle bus cycles.)
  void tick_hold() { ++cycles_; }

  int n_bits() const { return static_cast<int>(flops_.size()); }
  const FlopTiming& timing() const { return timing_; }
  BusWord word() const;

  // Cumulative counters since construction.
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t error_cycles() const { return error_cycles_; }
  std::uint64_t shadow_failures() const { return shadow_failures_; }

 private:
  std::vector<DoubleSamplingFlop> flops_;
  FlopTiming timing_;
  std::uint64_t cycles_ = 0;
  std::uint64_t error_cycles_ = 0;
  std::uint64_t shadow_failures_ = 0;
};

// Energy overheads of error detection and recovery (paper Sections 2/4),
// expressed as EXTRA energy relative to a conventional receiver (which also
// clocks ordinary flip-flops every cycle — that part is common to both
// designs and cancels out of the gains).
struct RecoveryCostModel {
  // Clock energy of one conventional flip-flop per cycle. Receiver flops
  // sit on the core supply, not on the scaled bus supply.
  double flop_clock_energy = 10e-15;  // J
  // The double-sampling flop additionally clocks the shadow latch and the
  // XOR: extra energy per flop per cycle as a fraction of a standard flop.
  // The paper's recovery-overhead accounting ignores this standing term
  // (its Fig. 4 overhead is the per-error recovery energy), so it defaults
  // to zero; raise it to ablate the assumption.
  double shadow_extra_fraction = 0.0;
  // Extra energy of the bank-level OR tree / error polling per cycle.
  double detection_energy_per_cycle = 0.0;  // J
  // Recovery: the whole bank clocks one extra cycle, plus mux restore and
  // pipeline-control energy (paper: "most of the extra energy comes from
  // clocking all the flip-flops for an extra cycle").
  double recovery_multiplier = 1.5;  // of one full-bank standard clock cycle

  // Per-cycle overhead energy of a bank of `n_bits` double-sampling flops
  // over the conventional design.
  double cycle_overhead(int n_bits) const {
    return static_cast<double>(n_bits) * flop_clock_energy * shadow_extra_fraction +
           detection_energy_per_cycle;
  }
  // Additional energy paid on an error cycle.
  double error_overhead(int n_bits) const {
    return recovery_multiplier * static_cast<double>(n_bits) * flop_clock_energy;
  }
};

}  // namespace razorbus::razor

#include "razor/bank.hpp"

#include <stdexcept>

namespace razorbus::razor {

FlopBank::FlopBank(int n_bits, FlopTiming timing, const BusWord& initial_word)
    : timing_(timing) {
  if (n_bits <= 0 || n_bits > BusWord::kMaxBits)
    throw std::invalid_argument("FlopBank: 1..128 bits");
  flops_.reserve(static_cast<std::size_t>(n_bits));
  for (int i = 0; i < n_bits; ++i) flops_.emplace_back(initial_word.test(i));
}

BankCycleResult FlopBank::clock(const BusWord& word,
                                const std::vector<double>& arrivals) {
  if (arrivals.size() != flops_.size())
    throw std::invalid_argument("FlopBank::clock: arrival count mismatch");

  BankCycleResult result;
  for (std::size_t i = 0; i < flops_.size(); ++i) {
    const bool bit = word.test(static_cast<int>(i));
    const CaptureOutcome outcome = flops_[i].clock(bit, arrivals[i], timing_);
    if (outcome == CaptureOutcome::corrected) {
      result.error = true;
      ++result.corrected_bits;
    } else if (outcome == CaptureOutcome::shadow_failure) {
      result.shadow_failure = true;
    }
  }
  result.captured = this->word();
  ++cycles_;
  if (result.error) ++error_cycles_;
  if (result.shadow_failure) ++shadow_failures_;
  return result;
}

BusWord FlopBank::word() const {
  BusWord w;
  for (std::size_t i = 0; i < flops_.size(); ++i)
    if (flops_[i].q()) w.set(static_cast<int>(i));
  return w;
}

}  // namespace razorbus::razor

// Behavioural model of the double-sampling (Razor) flip-flop of Fig. 2.
//
// The flop samples its input D at the main clock edge and again at a clock
// delayed by `shadow_delay`. If the two samples differ, Error_L is asserted
// and the shadow value — which is correct by construction as long as the
// data arrived before the delayed clock — is restored into the main latch
// through the mux in the master feedback path.
//
// At the architectural level the relevant question each cycle is: did the
// new value arrive before the main edge (clean capture), between the main
// and shadow edges (timing error, recoverable), or after the shadow edge
// (shadow capture failure — a silent data corruption the voltage floor must
// make impossible)?
#pragma once

#include <cstdint>
#include <stdexcept>

namespace razorbus::razor {

enum class CaptureOutcome : std::uint8_t {
  clean,           // main latch captured the correct value
  corrected,       // main missed, shadow caught it: Error_L asserted
  shadow_failure,  // data arrived after even the delayed clock
};

struct FlopTiming {
  double main_capture_limit;    // max arrival for clean capture (s)
  double shadow_capture_limit;  // max arrival for the shadow latch (s)
  // Arrivals EARLIER than this violate the shadow latch's hold constraint
  // (short-path limit: next cycle's data racing through). 0 disables.
  double min_path_limit = 0.0;
};

// One double-sampling flip-flop bit.
class DoubleSamplingFlop {
 public:
  explicit DoubleSamplingFlop(bool initial = false)
      : q_(initial), shadow_(initial), line_(initial) {}

  // Clock one cycle. `next_value` is the value the bus wire is switching to
  // this cycle; `arrival` is its in-to-out delay (<=0 means the wire held,
  // so the old value is stably present). Returns the capture outcome and
  // updates Q (visible output after any correction).
  CaptureOutcome clock(bool next_value, double arrival, const FlopTiming& timing);

  bool q() const { return q_; }
  bool shadow() const { return shadow_; }
  // Error_L as produced by the XOR of slave and shadow latches for the
  // previous cycle.
  bool error_signal() const { return error_; }

 private:
  bool q_;
  bool shadow_;
  bool line_;   // stable value currently on the wire
  bool error_ = false;
};

}  // namespace razorbus::razor

#include "lut/cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace razorbus::lut {

std::string cache_directory() {
  const char* env = std::getenv("RAZORBUS_CACHE_DIR");
  const std::string dir = env && *env ? env : ".razorbus_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

DelayEnergyTable build_or_load(const interconnect::BusDesign& design,
                               const tech::DriverModel& driver, const LutConfig& config,
                               const std::function<void(int, int)>& progress) {
  const std::uint64_t hash = table_key_hash(design, config);
  std::ostringstream name;
  name << cache_directory() << "/lut_" << std::hex << hash << ".bin";
  const std::string path = name.str();

  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      if (auto table = DelayEnergyTable::load(in, hash)) return *std::move(table);
    }
  }

  DelayEnergyTable table = DelayEnergyTable::build(design, driver, config, progress);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) table.save(out, hash);
  return table;
}

}  // namespace razorbus::lut

#include "lut/cache.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <system_error>

namespace razorbus::lut {

std::string cache_directory() {
  const char* env = std::getenv("RAZORBUS_CACHE_DIR");
  const std::string dir = env && *env ? env : ".razorbus_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

DelayEnergyTable build_or_load(const interconnect::BusDesign& design,
                               const tech::DriverModel& driver, const LutConfig& config,
                               const std::function<void(int, int)>& progress) {
  const std::uint64_t hash = table_key_hash(design, config);
  std::ostringstream name;
  name << cache_directory() << "/lut_" << std::hex << hash << ".bin";
  const std::string path = name.str();

  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      if (auto table = DelayEnergyTable::load(in, hash)) return *std::move(table);
    }
  }

  DelayEnergyTable table = DelayEnergyTable::build(design, driver, config, progress);

  // Publish atomically: write a private temp file in the same directory,
  // then rename over the final path. A crash mid-write or a concurrent
  // second writer (parallel test binaries share this cache) can then never
  // leave a torn lut_*.bin — readers see the old file, the new file, or no
  // file, all of which load() handles. The temp name carries a random
  // per-process token (cross-process uniqueness; simulation results never
  // depend on it) and a process-local counter (two threads of one process
  // building the same entry must not share a temp file).
  static const std::uint64_t tmp_token =
      (static_cast<std::uint64_t>(std::random_device{}()) << 32) ^ std::random_device{}();
  static std::atomic<unsigned> tmp_serial{0};
  std::error_code ec;
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << std::hex << tmp_token << "." << tmp_serial++;
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return table;
    table.save(out, hash);
    if (!out) {
      std::filesystem::remove(tmp_path, ec);
      return table;
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);  // cache is best-effort
  return table;
}

}  // namespace razorbus::lut

#include "lut/cache.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <system_error>
#include <utility>

#include "lut/point_store.hpp"
#include "util/thread_annotations.hpp"

namespace razorbus::lut {

namespace {

// Random per-process token for temp-file names. Entropy is exactly what
// cross-process uniqueness needs here, and the token never reaches
// simulation state — results are identical whatever it draws.
std::uint64_t process_token() {
  // razorlint: allow(no-raw-random): naming entropy, not a simulation draw.
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

// In-memory memo of every table this process has built or loaded, keyed by
// (cache directory, table hash). Repeat build_or_load calls — each test
// binary, bench scenario and experiment driver asks for the same paper bus —
// return the memoised table instead of re-reading (or re-building) the disk
// file. The directory is part of the key because tests point
// RAZORBUS_CACHE_DIR at isolated directories and expect a fresh build there.
// Entries are never evicted: a process touches a handful of (design, config)
// pairs and each table is small. Contents depend only on the key, never on
// timing, so the memo cannot perturb determinism.
// razorlint: allow(no-mutable-static): process-wide memo guarded by the
// annotated Mutex; see the determinism note above.
util::Mutex g_memo_mutex;
// razorlint: allow(no-mutable-static): guarded by g_memo_mutex above.
std::map<std::pair<std::string, std::uint64_t>, DelayEnergyTable> g_memo
    GUARDED_BY(g_memo_mutex);

// Publish atomically: write a private temp file in the same directory,
// then rename over the final path. A crash mid-write or a concurrent
// second writer (parallel test binaries share this cache) can then never
// leave a torn lut_*.bin — readers see the old file, the new file, or no
// file, all of which load() handles. The temp name carries a random
// per-process token (cross-process uniqueness; simulation results never
// depend on it) and a process-local counter (two threads of one process
// building the same entry must not share a temp file). Best-effort: a
// failed write only costs the next process a rebuild.
void write_cache_file(const std::string& path, const DelayEnergyTable& table,
                      std::uint64_t hash) {
  static const std::uint64_t tmp_token = process_token();
  // razorlint: allow(no-mutable-static): atomic counter for temp-file name
  // uniqueness within the process; file contents are identical regardless.
  static std::atomic<unsigned> tmp_serial{0};
  std::error_code ec;
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << std::hex << tmp_token << "." << tmp_serial++;
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    table.save(out, hash);
    if (!out) {
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);
}

}  // namespace

std::string cache_directory() {
  const char* env = std::getenv("RAZORBUS_CACHE_DIR");
  const std::string dir = env && *env ? env : ".razorbus_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

DelayEnergyTable build_or_load(const interconnect::BusDesign& design,
                               const tech::DriverModel& driver, const LutConfig& config,
                               const std::function<void(int, int)>& progress,
                               BuildStats* stats) {
  if (stats) *stats = BuildStats{};  // memo/disk hits perform zero sims
  const std::uint64_t hash = table_key_hash(design, config);
  const std::string dir = cache_directory();
  const std::pair<std::string, std::uint64_t> key{dir, hash};
  {
    util::MutexLock lock(g_memo_mutex);
    const auto it = g_memo.find(key);
    if (it != g_memo.end()) return it->second;
  }

  std::ostringstream name;
  name << dir << "/lut_" << std::hex << hash << ".bin";
  const std::string path = name.str();

  // The design's shared point store: loads answer nothing from it, but
  // tables loaded from disk still attach the lazy refiner to it, and
  // builds fetch every already-simulated point instead of re-running the
  // transient solver.
  const std::shared_ptr<PointStore> store =
      PointStore::open(dir, design_content_hash(design));

  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      if (auto table = DelayEnergyTable::load(in, hash)) {
        table->attach_refiner(design, driver, store);  // no-op for dense tables
        util::MutexLock lock(g_memo_mutex);
        // emplace keeps the incumbent if another thread raced us here; both
        // tables are bit-identical (same key), so either copy is the answer.
        return g_memo.emplace(key, *std::move(table)).first->second;
      }
    }
  }

  DelayEnergyTable table =
      DelayEnergyTable::build(design, driver, config, progress, store.get(), stats);
  store->flush();
  table.attach_refiner(design, driver, store);
  write_cache_file(path, table, hash);
  util::MutexLock lock(g_memo_mutex);
  return g_memo.emplace(key, std::move(table)).first->second;
}

}  // namespace razorbus::lut

#include "lut/point_store.hpp"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <system_error>
#include <utility>

#include "interconnect/rc_builder.hpp"

namespace razorbus::lut {

namespace {

constexpr char kMagic[8] = {'R', 'B', 'P', 'T', 'S', '0', '0', '1'};

// Random per-process token for temp-file names — same idiom and same
// rationale as the table cache writer (cache.cpp): entropy is exactly what
// cross-process uniqueness needs, and the token never reaches simulation
// state.
std::uint64_t process_token() {
  // razorlint: allow(no-raw-random): naming entropy, not a simulation draw.
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

// Process-wide registry of open stores keyed by (cache directory, design
// hash): every table build in the process shares one instance per design,
// which is what makes overlapping campaigns hit instead of re-simulate.
// Entries are never evicted — a process touches a handful of designs and
// each store is tens of kilobytes. Contents depend only on keys, never on
// timing, so the registry cannot perturb determinism.
// razorlint: allow(no-mutable-static): process-wide registry guarded by the
// annotated Mutex; see the determinism note above.
util::Mutex g_registry_mutex;
// razorlint: allow(no-mutable-static): guarded by g_registry_mutex above.
std::map<std::pair<std::string, std::uint64_t>, std::shared_ptr<PointStore>> g_registry
    GUARDED_BY(g_registry_mutex);

}  // namespace

std::uint64_t design_content_hash(const interconnect::BusDesign& design) {
  Fnv1a fnv;
  const auto& n = design.node;
  fnv.mix(n.name.data(), n.name.size());
  for (double v : {n.vdd_nominal, n.vth0, n.alpha, n.vth_temp_coeff,
                   n.mobility_temp_exponent, n.dibl, n.r_unit, n.c_in_unit,
                   n.c_self_unit, n.e_short_unit, n.i_leak_unit, n.leak_n})
    fnv.mix_double(v);
  for (double v : {design.parasitics.r_per_m, design.parasitics.cg_per_m,
                   design.parasitics.cc_per_m, design.length, design.clock_freq,
                   design.setup_slack_fraction, design.shadow_delay_fraction,
                   design.repeater_size, design.receiver_size})
    fnv.mix_double(v);
  // n_bits and shield_group deliberately omitted (DESIGN.md §10).
  fnv.mix_int(design.n_segments);
  fnv.mix_int(interconnect::ClusterCharacterizer::kSectionsPerSegment);
  fnv.mix_int(static_cast<std::int64_t>(kSimulatorVersion));
  return fnv.h;
}

std::uint64_t point_key(std::uint64_t design_hash, tech::ProcessCorner corner,
                        double temp_c, double vdd, int pattern_class) {
  Fnv1a fnv;
  fnv.mix(&design_hash, sizeof(design_hash));
  fnv.mix_int(static_cast<std::int64_t>(corner));
  fnv.mix_double(temp_c);
  fnv.mix_double(vdd);
  fnv.mix_int(pattern_class);
  return fnv.h;
}

PointStore::PointStore(std::string path) : path_(std::move(path)) {}

std::shared_ptr<PointStore> PointStore::open(const std::string& dir,
                                             std::uint64_t design_hash) {
  const std::pair<std::string, std::uint64_t> key{dir, design_hash};
  util::MutexLock registry_lock(g_registry_mutex);
  auto it = g_registry.find(key);
  if (it != g_registry.end()) return it->second;

  std::ostringstream name;
  name << dir << "/points_" << std::hex << design_hash << ".bin";
  std::shared_ptr<PointStore> store(new PointStore(name.str()));
  {
    util::MutexLock lock(store->mutex_);
    store->load_file();
  }
  g_registry.emplace(key, store);
  return store;
}

void PointStore::load_file() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // cold store
  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return;  // foreign or torn file: start cold, flush() will replace it
  std::uint64_t count = 0;
  if (!in.read(reinterpret_cast<char*>(&count), sizeof(count))) return;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t key = 0;
    StoredPoint point;
    in.read(reinterpret_cast<char*>(&key), sizeof(key));
    in.read(reinterpret_cast<char*>(&point.delay), sizeof(point.delay));
    in.read(reinterpret_cast<char*>(&point.energy), sizeof(point.energy));
    if (!in) {  // truncated tail: keep the complete prefix
      break;
    }
    points_.emplace(key, point);
  }
  persisted_ = points_.size();
}

std::optional<StoredPoint> PointStore::lookup(std::uint64_t key) {
  util::MutexLock lock(mutex_);
  const auto it = points_.find(key);
  if (it == points_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void PointStore::insert(std::uint64_t key, StoredPoint point) {
  util::MutexLock lock(mutex_);
  // emplace keeps the incumbent when two shards simulated the same point
  // concurrently; both results are bit-identical (same key), so either
  // copy is the answer.
  if (points_.emplace(key, point).second) ++stats_.inserts;
}

void PointStore::flush() {
  util::MutexLock lock(mutex_);
  if (points_.size() == persisted_) return;  // nothing new since last flush

  // Publish atomically: private temp file, then rename over the final
  // path — a crash or a concurrent second writer can never leave a torn
  // points_*.bin (same contract as the table cache, cache.cpp).
  static const std::uint64_t tmp_token = process_token();
  // razorlint: allow(no-mutable-static): atomic counter for temp-file name
  // uniqueness within the process; file contents are identical regardless.
  static std::atomic<unsigned> tmp_serial{0};
  std::error_code ec;
  std::ostringstream tmp_name;
  tmp_name << path_ << ".tmp." << std::hex << tmp_token << "." << tmp_serial++;
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(kMagic, sizeof(kMagic));
    const std::uint64_t count = points_.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& [key, point] : points_) {
      out.write(reinterpret_cast<const char*>(&key), sizeof(key));
      out.write(reinterpret_cast<const char*>(&point.delay), sizeof(point.delay));
      out.write(reinterpret_cast<const char*>(&point.energy), sizeof(point.energy));
    }
    if (!out) {
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return;
  }
  persisted_ = points_.size();
}

PointStore::Stats PointStore::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::size_t PointStore::size() const {
  util::MutexLock lock(mutex_);
  return points_.size();
}

}  // namespace razorbus::lut

// Incremental, content-addressed store of simulated characterization points.
//
// One transient run characterises one (corner, temperature, voltage,
// pattern class) of one electrical design. That result never changes —
// the simulator is deterministic — so it is worth exactly one simulation
// per process FLEET, not one per table. The point store keys every raw
// simulator result by an FNV-1a content hash of everything the result
// depends on (design content, simulator version, corner, temperature,
// voltage, class) and persists the accumulated points per design in the
// cache directory. Tables then characterise only the points they are
// missing: a second campaign whose grid overlaps a first one performs
// zero redundant transient runs, and adaptive refinement
// (docs/characterization.md) can extend a table below its sweep range
// without re-paying for anything already simulated.
//
// The store holds RAW ClusterResult quantities (delay as the simulator
// reported it, including the -1.0 "victim did not switch" convention).
// Interpretation — NaN for hold victims, +inf for non-conducting points —
// stays in the table builder, so the store is simulator-faithful and
// table-policy-free.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "interconnect/bus_design.hpp"
#include "tech/corner.hpp"
#include "util/thread_annotations.hpp"

namespace razorbus::lut {

// Bump when the transient solver, netlist construction or device models
// change in a way that alters simulated values: every stored point is
// keyed under the version, so stale points are simply never hit again.
constexpr std::uint32_t kSimulatorVersion = 1;

// FNV-1a accumulator: the content-hash primitive shared by the table
// cache key (table_key_hash) and the per-point keys.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;  // offset basis

  void mix(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;  // FNV prime
    }
  }
  void mix_double(double v) { mix(&v, sizeof(v)); }
  void mix_int(std::int64_t v) { mix(&v, sizeof(v)); }
};

// Hash of every design/model parameter a transient result depends on:
// node electricals, parasitics, geometry, repeater sizing, the RC section
// discretisation and the simulator version. Deliberately EXCLUDES n_bits
// and shield_group (the 3-wire cluster sees one wire's electricals, so all
// bus widths share points — DESIGN.md §10) and the LUT grid/tolerance
// (those choose WHICH points exist, not their values).
std::uint64_t design_content_hash(const interconnect::BusDesign& design);

// Content key of one simulated point under a design hash.
std::uint64_t point_key(std::uint64_t design_hash, tech::ProcessCorner corner,
                        double temp_c, double vdd, int pattern_class);

// One raw simulator result (see the header comment for conventions).
struct StoredPoint {
  double delay = -1.0;
  double energy = 0.0;
};

// Thread-safe, process-shared point store for one design in one cache
// directory. All state is guarded by one mutex; values are pure functions
// of their key, so concurrent access can never perturb simulation results
// (DESIGN.md §9) — the only race is benign duplicated work.
class PointStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;     // lookups answered from the store
    std::uint64_t misses = 0;   // lookups that required a transient run
    std::uint64_t inserts = 0;  // new points added since open/flush
  };

  // Opens (or creates) the store for `design_hash` under `dir`, loading
  // any previously persisted points. One instance per (dir, design hash)
  // is shared process-wide, like the table memo — that sharing is what
  // makes a second overlapping campaign free.
  static std::shared_ptr<PointStore> open(const std::string& dir,
                                          std::uint64_t design_hash);

  std::optional<StoredPoint> lookup(std::uint64_t key);
  void insert(std::uint64_t key, StoredPoint point);

  // Persists the current contents via the atomic temp+rename path (same
  // crash/concurrency contract as the table cache files). Best-effort: a
  // failed write only costs a later process re-simulation.
  void flush();

  Stats stats() const;
  std::size_t size() const;

  // Test hook: path of the backing file.
  const std::string& path() const { return path_; }

 private:
  PointStore(std::string path);

  void load_file() REQUIRES(mutex_);

  std::string path_;
  mutable util::Mutex mutex_;
  // std::map: deterministic iteration order for the persisted file bytes.
  std::map<std::uint64_t, StoredPoint> points_ GUARDED_BY(mutex_);
  std::uint64_t persisted_ GUARDED_BY(mutex_) = 0;  // entries already on disk
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace razorbus::lut

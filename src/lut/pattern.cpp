#include "lut/pattern.hpp"

#include <stdexcept>

namespace razorbus::lut {

int PatternClass::canonical(int cls) {
  if (cls < 0 || cls >= kCount) throw std::out_of_range("PatternClass::canonical");
  const auto v = victim_of(cls);
  const auto l = left_of(cls);
  const auto r = right_of(cls);
  return static_cast<int>(l) <= static_cast<int>(r) ? cls : encode(v, r, l);
}

bool PatternClass::any_switching(int cls) {
  if (victim_switches(cls)) return true;
  const auto l = left_of(cls);
  const auto r = right_of(cls);
  auto moves = [](NeighborActivity n) {
    return n == NeighborActivity::rise || n == NeighborActivity::fall;
  };
  return moves(l) || moves(r);
}

VictimActivity classify_victim(bool prev, bool cur) {
  if (prev == cur) return cur ? VictimActivity::hold_high : VictimActivity::hold_low;
  return cur ? VictimActivity::rise : VictimActivity::fall;
}

NeighborActivity classify_neighbor(bool prev, bool cur) {
  if (prev == cur) return NeighborActivity::hold;
  return cur ? NeighborActivity::rise : NeighborActivity::fall;
}

WireActivity to_wire_activity(VictimActivity v) {
  switch (v) {
    case VictimActivity::rise: return WireActivity::rise;
    case VictimActivity::fall: return WireActivity::fall;
    case VictimActivity::hold_low: return WireActivity::hold;
    case VictimActivity::hold_high: return WireActivity::hold_high;
  }
  throw std::invalid_argument("to_wire_activity: bad victim");
}

WireActivity to_wire_activity(NeighborActivity n) {
  switch (n) {
    case NeighborActivity::rise: return WireActivity::rise;
    case NeighborActivity::fall: return WireActivity::fall;
    case NeighborActivity::hold: return WireActivity::hold;
    case NeighborActivity::shield: return WireActivity::shield;
  }
  throw std::invalid_argument("to_wire_activity: bad neighbor");
}

double miller_factor_sum(int cls) {
  const auto v = PatternClass::victim_of(cls);
  if (v != VictimActivity::rise && v != VictimActivity::fall) return 0.0;
  const bool victim_rises = v == VictimActivity::rise;
  auto factor = [victim_rises](NeighborActivity n) {
    switch (n) {
      case NeighborActivity::rise: return victim_rises ? 0.0 : 2.0;
      case NeighborActivity::fall: return victim_rises ? 2.0 : 0.0;
      case NeighborActivity::hold:
      case NeighborActivity::shield: return 1.0;
    }
    return 1.0;
  };
  return factor(PatternClass::left_of(cls)) + factor(PatternClass::right_of(cls));
}

}  // namespace razorbus::lut

// Disk cache for characterised lookup tables.
//
// Building a table costs thousands of transient simulations (tens of
// seconds); every bench and example would otherwise pay that. The cache
// stores tables keyed by a hash of everything they depend on, so a change
// to any design or model parameter transparently re-characterises.
#pragma once

#include <functional>
#include <string>

#include "lut/table.hpp"

namespace razorbus::lut {

// Returns the cache directory, creating it if needed. Honours the
// RAZORBUS_CACHE_DIR environment variable; defaults to ".razorbus_cache"
// in the current working directory.
std::string cache_directory();

// Loads the table for (design, config) from the cache, or builds and stores
// it. `progress` forwards to DelayEnergyTable::build on a cache miss.
//
// Builds consult the design's incremental point store (point_store.hpp) in
// the same cache directory, so only points no table has ever simulated cost
// transient runs; adaptive tables additionally get the lazy refiner
// attached for lookups below their characterised range. `stats` (optional)
// receives the build's cost counters — all zero on a memo or disk hit.
DelayEnergyTable build_or_load(const interconnect::BusDesign& design,
                               const tech::DriverModel& driver, const LutConfig& config,
                               const std::function<void(int, int)>& progress = {},
                               BuildStats* stats = nullptr);

}  // namespace razorbus::lut

// Switching-pattern classification.
//
// The per-cycle behaviour of one bus wire is fully described (for the
// linear characterization model) by the triple
//   (victim transition, left-neighbor activity, right-neighbor activity)
// with victim in {rise, fall, hold_low, hold_high} and each neighbor in
// {rise, fall, hold, shield}. That yields 64 pattern classes. The lookup
// tables index delay and energy by this class, replicating the paper's
// "delays and energy tabulated for all possible data input combinations".
#pragma once

#include "interconnect/rc_builder.hpp"

namespace razorbus::lut {

using interconnect::WireActivity;

// Victim axis (4 values).
enum class VictimActivity : int { rise = 0, fall = 1, hold_low = 2, hold_high = 3 };
// Neighbor axis (4 values).
enum class NeighborActivity : int { rise = 0, fall = 1, hold = 2, shield = 3 };

struct PatternClass {
  static constexpr int kCount = 64;

  static int encode(VictimActivity v, NeighborActivity l, NeighborActivity r) {
    return static_cast<int>(v) * 16 + static_cast<int>(l) * 4 + static_cast<int>(r);
  }
  static VictimActivity victim_of(int cls) {
    return static_cast<VictimActivity>(cls / 16);
  }
  static NeighborActivity left_of(int cls) {
    return static_cast<NeighborActivity>((cls / 4) % 4);
  }
  static NeighborActivity right_of(int cls) {
    return static_cast<NeighborActivity>(cls % 4);
  }

  // Victim delay/energy are symmetric under swapping the two neighbors, so
  // only classes with left <= right need characterization; the rest map to
  // their mirror.
  static int canonical(int cls);
  static bool is_canonical(int cls) { return canonical(cls) == cls; }

  // Does the victim switch in this class (i.e. does a delay exist)?
  static bool victim_switches(int cls) {
    const auto v = victim_of(cls);
    return v == VictimActivity::rise || v == VictimActivity::fall;
  }
  // Does anything switch at all? Quiet classes burn no dynamic energy.
  static bool any_switching(int cls);
};

// Classify a victim bit from its previous/current logic values.
VictimActivity classify_victim(bool prev, bool cur);
// Classify a signal neighbor from its previous/current logic values.
NeighborActivity classify_neighbor(bool prev, bool cur);

// Conversions to the characterization cluster vocabulary.
WireActivity to_wire_activity(VictimActivity v);
WireActivity to_wire_activity(NeighborActivity n);

// Sum of the Elmore Miller factors this class' neighbors impose on the
// victim's coupling caps (0, 1 or 2 per side). Used for analytic checks.
double miller_factor_sum(int cls);

}  // namespace razorbus::lut

// Delay / energy lookup tables.
//
// DelayEnergyTable stores, for every (process corner, temperature, supply
// grid point, pattern class):
//   * the victim's in-to-out delay (seconds; NaN when the victim holds) and
//   * the energy drawn from the supply rail by the victim's repeaters (J),
// characterised by transient simulation of the 3-wire cluster. The table is
// the bridge between circuit-level fidelity and architectural simulation
// speed: building it costs thousands of transient runs (done once, cached
// on disk), after which millions of bus cycles evaluate via table lookups —
// exactly the methodology of the paper's Section 3.
//
// Two build modes share this type (docs/characterization.md):
//   * dense — every uniform grid voltage is simulated (the original mode;
//     LutConfig::tolerance disabled). Storage is flat per-voltage arrays.
//   * adaptive — recursive bisection keeps only the grid voltages where
//     linear interpolation misses the simulated surface by more than the
//     configured tolerance. Storage is a non-uniform breakpoint band per
//     (corner, temperature). Candidate voltages are exactly the dense
//     grid's voltages, so tolerance -> 0 reproduces the dense table
//     bit-identically and the point store gets exact key matches.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "interconnect/bus_design.hpp"
#include "lut/pattern.hpp"
#include "tech/breakpoints.hpp"
#include "tech/corner.hpp"
#include "tech/device.hpp"
#include "tech/supply.hpp"

namespace razorbus::lut {

class PointStore;
class LazyRefiner;

// Error bound for adaptive characterization. An interval [lo, hi] of the
// reference grid is accepted when, for every canonical switching class,
// the simulated midpoint is within
//     |sim - lerp(lo, hi)| <= abs + relative * |sim|
// for both delay (abs = delay_abs_s) and energy (abs = energy_abs_j);
// otherwise the midpoint becomes a breakpoint and both halves recurse.
// All-zero bounds (the default) disable adaptive mode entirely.
struct LutTolerance {
  double relative = 0.0;      // fraction of the simulated value
  double delay_abs_s = 0.0;   // absolute delay floor (seconds)
  double energy_abs_j = 0.0;  // absolute energy floor (joules)
  // Stop splitting intervals narrower than 2 * min_step volts (0 means
  // refine down to the reference grid's resolution).
  double min_step = 0.0;
  // Initial uniform seed intervals per (corner, temperature) band.
  int seed_intervals = 4;

  bool enabled() const {
    return relative > 0.0 || delay_abs_s > 0.0 || energy_abs_j > 0.0;
  }
};

struct LutConfig {
  // Grid of DRIVER-EFFECTIVE voltages. It must extend below the regulator
  // minimum by the worst IR drop so droopy lookups stay in range.
  double vmin = 0.66;
  double vmax = 1.20;
  double vstep = 0.020;
  std::vector<double> temps{25.0, 100.0};
  std::vector<tech::ProcessCorner> corners{
      tech::ProcessCorner::slow, tech::ProcessCorner::typical, tech::ProcessCorner::fast};
  // Disabled by default: dense characterization, bit-identical to the
  // original builder. See lut_config_for_tolerance() in core/experiments.
  LutTolerance tolerance{};

  // The uniform voltage axis implied by vmin/vmax/vstep. Single source of
  // truth for the grid constants — DelayEnergyTable's default grid and the
  // adaptive candidate set both derive from it.
  tech::SupplyGrid reference_grid() const {
    return tech::SupplyGrid(vmin, vmax, vstep);
  }
};

// Cost counters for one build() call. transient_sims is the number of
// actual transient runs performed; store_hits counts per-class values
// answered by the point store instead.
struct BuildStats {
  std::uint64_t transient_sims = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t points = 0;  // characterised (corner, temp, voltage) points
};

// One (corner, temperature, voltage) slice: per-class arrays used in the
// bus simulator's hot loop.
struct TableSlice {
  double delay[PatternClass::kCount];   // seconds; NaN where victim holds
  double energy[PatternClass::kCount];  // joules
};

class DelayEnergyTable {
 public:
  // Empty table (no characterised values); assign from build()/load()
  // before use. Lookups on an empty table throw.
  DelayEnergyTable() : grid_(LutConfig{}.reference_grid()) {}
  bool empty() const { return delays_.empty() && bands_.empty(); }
  // True when built with adaptive (non-uniform breakpoint) storage.
  bool adaptive() const { return !bands_.empty(); }

  // Characterise `design` (repeaters must be sized) with transient runs.
  // `progress` (optional) is called with (done, total) as sims complete;
  // `total` is always the dense-grid upper bound, so adaptive builds
  // finish early and report (total, total) once at the end.
  // `store` (optional) answers already-simulated points without transient
  // runs and accumulates new ones; `stats` (optional) receives the cost
  // counters for this build.
  static DelayEnergyTable build(const interconnect::BusDesign& design,
                                const tech::DriverModel& driver, const LutConfig& config,
                                const std::function<void(int, int)>& progress = {},
                                PointStore* store = nullptr,
                                BuildStats* stats = nullptr);

  // Uniform reference grid (regulators and sweeps step on this axis in
  // both modes; adaptive storage interpolates its breakpoint bands).
  const tech::SupplyGrid& grid() const { return grid_; }
  const std::vector<double>& temps() const { return temps_; }
  const std::vector<tech::ProcessCorner>& corners() const { return corners_; }

  // Breakpoint axis of one (corner, temp) band; empty axis in dense mode.
  const tech::SupplyBreakpoints& breakpoints(std::size_t corner_idx,
                                             std::size_t temp_idx) const;

  // Voltage-interpolated lookups (v is the driver-effective supply).
  // Delay is NaN for victim-hold classes; energy is always defined.
  double delay(int pattern_class, tech::ProcessCorner corner, double temp_c,
               double v) const;
  double energy(int pattern_class, tech::ProcessCorner corner, double temp_c,
                double v) const;

  // Interpolated slice for a whole operating point: one call per regulator
  // voltage change instead of per cycle.
  TableSlice slice(tech::ProcessCorner corner, double temp_c, double v) const;

  // Lowest characterised voltage at which the worst-case pattern still
  // meets the shadow-latch capture limit (the paper's conservative
  // regulator floor). nullopt when even vmax fails; vmin if all pass.
  std::optional<double> min_shadow_safe_voltage(const interconnect::BusDesign& design,
                                                tech::ProcessCorner corner,
                                                double temp_c) const;

  // Attach on-demand refinement: lookups below the characterised range
  // (e.g. a drift campaign wandering under a sweep's vmin) simulate fixed
  // extension anchors lazily instead of clamping. Adaptive tables only;
  // results are independent of query order and thread count.
  void attach_refiner(const interconnect::BusDesign& design,
                      const tech::DriverModel& driver,
                      std::shared_ptr<PointStore> store);
  // Transient runs performed by the attached refiner so far (0 if none).
  std::uint64_t refiner_sims() const;

  // --- Serialization (versioned binary format with config hash) ---
  void save(std::ostream& os, std::uint64_t key_hash) const;
  // Empty when the stream is not a valid table or the hash mismatches.
  static std::optional<DelayEnergyTable> load(std::istream& is,
                                              std::uint64_t expected_hash);

  // Raw (non-interpolated) accessors used by tests. In dense mode v_idx
  // indexes the uniform grid; in adaptive mode it indexes the band's
  // breakpoints (see breakpoints()).
  double delay_at(int pattern_class, std::size_t corner_idx, std::size_t temp_idx,
                  std::size_t v_idx) const;
  double energy_at(int pattern_class, std::size_t corner_idx, std::size_t temp_idx,
                   std::size_t v_idx) const;

 private:
  // Non-uniform storage for one (corner, temperature): values laid out
  // [breakpoint][class], parallel to points.voltages().
  struct Band {
    tech::SupplyBreakpoints points;
    std::vector<double> delays;
    std::vector<double> energies;
  };

  static DelayEnergyTable build_adaptive(const interconnect::BusDesign& design,
                                         const tech::DriverModel& driver,
                                         const LutConfig& config,
                                         const std::function<void(int, int)>& progress,
                                         PointStore* store, BuildStats* stats);

  std::size_t corner_index(tech::ProcessCorner corner) const;
  std::size_t temp_index(double temp_c) const;
  std::size_t flat_index(std::size_t corner, std::size_t temp, std::size_t v,
                         int cls) const;
  const Band& band(std::size_t corner_idx, std::size_t temp_idx) const;

  tech::SupplyGrid grid_;
  std::vector<double> temps_;
  std::vector<tech::ProcessCorner> corners_;
  std::vector<double> delays_;    // dense mode: [corner][temp][voltage][class]
  std::vector<double> energies_;  // same layout
  std::vector<Band> bands_;       // adaptive mode: [corner * temps + temp]
  std::shared_ptr<LazyRefiner> refiner_;  // optional; adaptive mode only
};

// Stable FNV-1a hash of everything the table depends on: the design
// content hash (point_store.hpp) plus the LUT config — grid extent, temps,
// corners, and the tolerance when adaptive mode is enabled. Used as the
// disk-cache key.
std::uint64_t table_key_hash(const interconnect::BusDesign& design,
                             const LutConfig& config);

}  // namespace razorbus::lut

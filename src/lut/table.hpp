// Delay / energy lookup tables.
//
// DelayEnergyTable stores, for every (process corner, temperature, supply
// grid point, pattern class):
//   * the victim's in-to-out delay (seconds; NaN when the victim holds) and
//   * the energy drawn from the supply rail by the victim's repeaters (J),
// characterised by transient simulation of the 3-wire cluster. The table is
// the bridge between circuit-level fidelity and architectural simulation
// speed: building it costs thousands of transient runs (done once, cached
// on disk), after which millions of bus cycles evaluate via table lookups —
// exactly the methodology of the paper's Section 3.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "interconnect/bus_design.hpp"
#include "lut/pattern.hpp"
#include "tech/corner.hpp"
#include "tech/device.hpp"
#include "tech/supply.hpp"

namespace razorbus::lut {

struct LutConfig {
  // Grid of DRIVER-EFFECTIVE voltages. It must extend below the regulator
  // minimum by the worst IR drop so droopy lookups stay in range.
  double vmin = 0.66;
  double vmax = 1.20;
  double vstep = 0.020;
  std::vector<double> temps{25.0, 100.0};
  std::vector<tech::ProcessCorner> corners{
      tech::ProcessCorner::slow, tech::ProcessCorner::typical, tech::ProcessCorner::fast};
};

// One (corner, temperature, voltage) slice: per-class arrays used in the
// bus simulator's hot loop.
struct TableSlice {
  double delay[PatternClass::kCount];   // seconds; NaN where victim holds
  double energy[PatternClass::kCount];  // joules
};

class DelayEnergyTable {
 public:
  // Empty table (no characterised values); assign from build()/load()
  // before use. Lookups on an empty table throw.
  DelayEnergyTable() : grid_(0.66, 1.20, 0.02) {}
  bool empty() const { return delays_.empty(); }

  // Characterise `design` (repeaters must be sized) with transient runs.
  // `progress` (optional) is called with (done, total) as sims complete.
  static DelayEnergyTable build(const interconnect::BusDesign& design,
                                const tech::DriverModel& driver, const LutConfig& config,
                                const std::function<void(int, int)>& progress = {});

  const tech::SupplyGrid& grid() const { return grid_; }
  const std::vector<double>& temps() const { return temps_; }
  const std::vector<tech::ProcessCorner>& corners() const { return corners_; }

  // Voltage-interpolated lookups (v is the driver-effective supply).
  // Delay is NaN for victim-hold classes; energy is always defined.
  double delay(int pattern_class, tech::ProcessCorner corner, double temp_c,
               double v) const;
  double energy(int pattern_class, tech::ProcessCorner corner, double temp_c,
                double v) const;

  // Interpolated slice for a whole operating point: one call per regulator
  // voltage change instead of per cycle.
  TableSlice slice(tech::ProcessCorner corner, double temp_c, double v) const;

  // Lowest grid voltage at which the worst-case pattern still meets the
  // shadow-latch capture limit (the paper's conservative regulator floor).
  // Returns vmax+step if even vmax fails; vmin if everything passes.
  double min_shadow_safe_voltage(const interconnect::BusDesign& design,
                                 tech::ProcessCorner corner, double temp_c) const;

  // --- Serialization (versioned binary format with config hash) ---
  void save(std::ostream& os, std::uint64_t key_hash) const;
  // Empty when the stream is not a valid table or the hash mismatches.
  static std::optional<DelayEnergyTable> load(std::istream& is,
                                              std::uint64_t expected_hash);

  // Raw (non-interpolated) accessors used by tests.
  double delay_at(int pattern_class, std::size_t corner_idx, std::size_t temp_idx,
                  std::size_t v_idx) const;
  double energy_at(int pattern_class, std::size_t corner_idx, std::size_t temp_idx,
                   std::size_t v_idx) const;

 private:
  std::size_t corner_index(tech::ProcessCorner corner) const;
  std::size_t temp_index(double temp_c) const;
  std::size_t flat_index(std::size_t corner, std::size_t temp, std::size_t v,
                         int cls) const;

  tech::SupplyGrid grid_;
  std::vector<double> temps_;
  std::vector<tech::ProcessCorner> corners_;
  std::vector<double> delays_;    // [corner][temp][voltage][class]
  std::vector<double> energies_;  // same layout
};

// Stable FNV-1a hash of everything the table depends on (bus design, node
// parameters, LUT config). Used as the disk-cache key.
std::uint64_t table_key_hash(const interconnect::BusDesign& design,
                             const LutConfig& config);

}  // namespace razorbus::lut

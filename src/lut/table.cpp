#include "lut/table.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/thread_annotations.hpp"

namespace razorbus::lut {

namespace {

constexpr char kMagic[8] = {'R', 'B', 'L', 'U', 'T', '0', '0', '2'};
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

void hash_mix(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;  // FNV prime
  }
}

void hash_double(std::uint64_t& h, double v) { hash_mix(h, &v, sizeof(v)); }
void hash_int(std::uint64_t& h, std::int64_t v) { hash_mix(h, &v, sizeof(v)); }

}  // namespace

std::uint64_t table_key_hash(const interconnect::BusDesign& design,
                             const LutConfig& config) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  const auto& n = design.node;
  hash_mix(h, n.name.data(), n.name.size());
  for (double v : {n.vdd_nominal, n.vth0, n.alpha, n.vth_temp_coeff,
                   n.mobility_temp_exponent, n.dibl, n.r_unit, n.c_in_unit, n.c_self_unit,
                   n.e_short_unit, n.i_leak_unit, n.leak_n})
    hash_double(h, v);
  for (double v : {design.parasitics.r_per_m, design.parasitics.cg_per_m,
                   design.parasitics.cc_per_m, design.length, design.clock_freq,
                   design.setup_slack_fraction, design.shadow_delay_fraction,
                   design.repeater_size, design.receiver_size})
    hash_double(h, v);
  // n_bits and shield_group are deliberately NOT hashed: the 3-wire
  // cluster characterization depends only on the per-wire electrical
  // design, so every bus width (16..128 wires) of the same wire/repeater
  // design shares one cached table (DESIGN.md §10).
  hash_int(h, design.n_segments);
  for (double v : {config.vmin, config.vmax, config.vstep}) hash_double(h, v);
  for (double t : config.temps) hash_double(h, t);
  for (auto c : config.corners) hash_int(h, static_cast<std::int64_t>(c));
  hash_int(h, interconnect::ClusterCharacterizer::kSectionsPerSegment);
  return h;
}

DelayEnergyTable DelayEnergyTable::build(const interconnect::BusDesign& design,
                                         const tech::DriverModel& driver,
                                         const LutConfig& config,
                                         const std::function<void(int, int)>& progress) {
  DelayEnergyTable table;
  table.grid_ = tech::SupplyGrid(config.vmin, config.vmax, config.vstep);
  table.temps_ = config.temps;
  table.corners_ = config.corners;
  const std::size_t total_slots =
      table.corners_.size() * table.temps_.size() * table.grid_.size() *
      static_cast<std::size_t>(PatternClass::kCount);
  table.delays_.assign(total_slots, kNan);
  table.energies_.assign(total_slots, 0.0);

  const interconnect::ClusterCharacterizer characterizer(design, driver);

  // Count canonical classes that need simulation (for progress reporting).
  int sims_per_point = 0;
  for (int cls = 0; cls < PatternClass::kCount; ++cls)
    if (PatternClass::is_canonical(cls) && PatternClass::any_switching(cls))
      ++sims_per_point;
  const int total = static_cast<int>(table.corners_.size() * table.temps_.size() *
                                     table.grid_.size()) *
                    sims_per_point;
  std::atomic<int> done{0};
  util::Mutex progress_mutex;
  int reported = 0;  // monotonic max of done counts already reported

  // The dominant cold-start cost: thousands of independent transient runs.
  // Sharded one (corner, temperature, voltage) grid point per shard — each
  // point owns the contiguous per-class range [flat_index(ci,ti,vi,0),
  // flat_index(ci,ti,vi,kCount)) of delays_/energies_, so shards write
  // disjoint memory and the table contents are bit-identical at any thread
  // count (DESIGN.md §9).
  const std::size_t points_per_corner = table.temps_.size() * table.grid_.size();
  util::global_pool().parallel_for(
      table.corners_.size() * points_per_corner, [&](std::size_t point) {
        const std::size_t ci = point / points_per_corner;
        const std::size_t ti = (point % points_per_corner) / table.grid_.size();
        const std::size_t vi = point % table.grid_.size();
        const double vdd = table.grid_.voltage(vi);
        const bool conducts =
            driver.conducts(table.corners_[ci], table.temps_[ti], vdd);
        for (int cls = 0; cls < PatternClass::kCount; ++cls) {
          if (!PatternClass::is_canonical(cls)) continue;
          const std::size_t idx = table.flat_index(ci, ti, vi, cls);
          if (!PatternClass::any_switching(cls)) {
            table.energies_[idx] = 0.0;  // quiet cycle: no dynamic energy
            continue;
          }
          if (!conducts) {
            // Below the conduction limit the wire cannot switch in any
            // bounded time; mark as unreachable (infinite delay).
            if (PatternClass::victim_switches(cls))
              table.delays_[idx] = std::numeric_limits<double>::infinity();
            table.energies_[idx] = 0.0;
            ++done;
            continue;
          }

          interconnect::ClusterSpec spec;
          spec.victim = to_wire_activity(PatternClass::victim_of(cls));
          spec.left = to_wire_activity(PatternClass::left_of(cls));
          spec.right = to_wire_activity(PatternClass::right_of(cls));
          spec.vdd = vdd;
          spec.corner = table.corners_[ci];
          spec.temp_c = table.temps_[ti];
          const interconnect::ClusterResult r = characterizer.run(spec);

          if (PatternClass::victim_switches(cls))
            table.delays_[idx] =
                r.delay >= 0.0 ? r.delay : std::numeric_limits<double>::infinity();
          table.energies_[idx] = r.victim_energy;
          const int now_done = ++done;
          if (progress) {
            // Report only monotonically increasing counts: two shards can
            // increment in one order and acquire this mutex in the other,
            // and progress printers assume done never goes backwards. The
            // shard that increments to `total` always reports it.
            util::MutexLock lock(progress_mutex);
            if (now_done > reported) {
              reported = now_done;
              progress(now_done, total);
            }
          }
        }
        // Mirror non-canonical classes.
        for (int cls = 0; cls < PatternClass::kCount; ++cls) {
          if (PatternClass::is_canonical(cls)) continue;
          const std::size_t src =
              table.flat_index(ci, ti, vi, PatternClass::canonical(cls));
          const std::size_t dst = table.flat_index(ci, ti, vi, cls);
          table.delays_[dst] = table.delays_[src];
          table.energies_[dst] = table.energies_[src];
        }
      });
  return table;
}

std::size_t DelayEnergyTable::corner_index(tech::ProcessCorner corner) const {
  for (std::size_t i = 0; i < corners_.size(); ++i)
    if (corners_[i] == corner) return i;
  throw std::out_of_range("DelayEnergyTable: corner not characterised");
}

std::size_t DelayEnergyTable::temp_index(double temp_c) const {
  for (std::size_t i = 0; i < temps_.size(); ++i)
    if (std::abs(temps_[i] - temp_c) < 0.5) return i;
  throw std::out_of_range("DelayEnergyTable: temperature not characterised");
}

std::size_t DelayEnergyTable::flat_index(std::size_t corner, std::size_t temp,
                                         std::size_t v, int cls) const {
  return ((corner * temps_.size() + temp) * grid_.size() + v) *
             static_cast<std::size_t>(PatternClass::kCount) +
         static_cast<std::size_t>(cls);
}

namespace {
// Linear interpolation helper shared by delay() / energy() / slice().
struct InterpPoint {
  std::size_t lo;
  std::size_t hi;
  double frac;
};

InterpPoint interp_point(const tech::SupplyGrid& grid, double v) {
  if (v <= grid.vmin()) return {0, 0, 0.0};
  if (v >= grid.vmax()) return {grid.size() - 1, grid.size() - 1, 0.0};
  const double raw = (v - grid.vmin()) / grid.step();
  const auto lo = static_cast<std::size_t>(raw);
  const std::size_t hi = std::min(lo + 1, grid.size() - 1);
  return {lo, hi, raw - static_cast<double>(lo)};
}

double lerp(double a, double b, double f) {
  if (std::isinf(a) || std::isinf(b)) return f < 1.0 ? a : b;
  return a + (b - a) * f;
}
}  // namespace

double DelayEnergyTable::delay(int cls, tech::ProcessCorner corner, double temp_c,
                               double v) const {
  const std::size_t ci = corner_index(corner);
  const std::size_t ti = temp_index(temp_c);
  const InterpPoint p = interp_point(grid_, v);
  return lerp(delays_[flat_index(ci, ti, p.lo, cls)],
              delays_[flat_index(ci, ti, p.hi, cls)], p.frac);
}

double DelayEnergyTable::energy(int cls, tech::ProcessCorner corner, double temp_c,
                                double v) const {
  const std::size_t ci = corner_index(corner);
  const std::size_t ti = temp_index(temp_c);
  const InterpPoint p = interp_point(grid_, v);
  return lerp(energies_[flat_index(ci, ti, p.lo, cls)],
              energies_[flat_index(ci, ti, p.hi, cls)], p.frac);
}

TableSlice DelayEnergyTable::slice(tech::ProcessCorner corner, double temp_c,
                                   double v) const {
  const std::size_t ci = corner_index(corner);
  const std::size_t ti = temp_index(temp_c);
  const InterpPoint p = interp_point(grid_, v);
  TableSlice s{};
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    s.delay[cls] = lerp(delays_[flat_index(ci, ti, p.lo, cls)],
                        delays_[flat_index(ci, ti, p.hi, cls)], p.frac);
    s.energy[cls] = lerp(energies_[flat_index(ci, ti, p.lo, cls)],
                         energies_[flat_index(ci, ti, p.hi, cls)], p.frac);
  }
  return s;
}

double DelayEnergyTable::min_shadow_safe_voltage(const interconnect::BusDesign& design,
                                                 tech::ProcessCorner corner,
                                                 double temp_c) const {
  const int worst = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                         NeighborActivity::fall);
  const double limit = design.shadow_capture_limit();
  for (std::size_t vi = 0; vi < grid_.size(); ++vi) {
    const double d = delay_at(worst, corner_index(corner), temp_index(temp_c), vi);
    if (d <= limit) return grid_.voltage(vi);
  }
  return grid_.vmax() + grid_.step();
}

double DelayEnergyTable::delay_at(int cls, std::size_t ci, std::size_t ti,
                                  std::size_t vi) const {
  return delays_.at(flat_index(ci, ti, vi, cls));
}

double DelayEnergyTable::energy_at(int cls, std::size_t ci, std::size_t ti,
                                   std::size_t vi) const {
  return energies_.at(flat_index(ci, ti, vi, cls));
}

void DelayEnergyTable::save(std::ostream& os, std::uint64_t key_hash) const {
  os.write(kMagic, sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&key_hash), sizeof(key_hash));
  const double vmin = grid_.vmin();
  const double vmax = grid_.vmax();
  const double step = grid_.step();
  os.write(reinterpret_cast<const char*>(&vmin), sizeof(vmin));
  os.write(reinterpret_cast<const char*>(&vmax), sizeof(vmax));
  os.write(reinterpret_cast<const char*>(&step), sizeof(step));

  const std::uint64_t n_temps = temps_.size();
  const std::uint64_t n_corners = corners_.size();
  os.write(reinterpret_cast<const char*>(&n_temps), sizeof(n_temps));
  os.write(reinterpret_cast<const char*>(&n_corners), sizeof(n_corners));
  os.write(reinterpret_cast<const char*>(temps_.data()),
           static_cast<std::streamsize>(temps_.size() * sizeof(double)));
  for (auto c : corners_) {
    const std::int32_t v = static_cast<std::int32_t>(c);
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  const std::uint64_t n_values = delays_.size();
  os.write(reinterpret_cast<const char*>(&n_values), sizeof(n_values));
  os.write(reinterpret_cast<const char*>(delays_.data()),
           static_cast<std::streamsize>(delays_.size() * sizeof(double)));
  os.write(reinterpret_cast<const char*>(energies_.data()),
           static_cast<std::streamsize>(energies_.size() * sizeof(double)));
}

std::optional<DelayEnergyTable> DelayEnergyTable::load(std::istream& is,
                                                       std::uint64_t expected_hash) {
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return std::nullopt;
  std::uint64_t hash = 0;
  if (!is.read(reinterpret_cast<char*>(&hash), sizeof(hash)) || hash != expected_hash)
    return std::nullopt;

  double vmin = 0, vmax = 0, step = 0;
  is.read(reinterpret_cast<char*>(&vmin), sizeof(vmin));
  is.read(reinterpret_cast<char*>(&vmax), sizeof(vmax));
  is.read(reinterpret_cast<char*>(&step), sizeof(step));
  std::uint64_t n_temps = 0, n_corners = 0;
  is.read(reinterpret_cast<char*>(&n_temps), sizeof(n_temps));
  is.read(reinterpret_cast<char*>(&n_corners), sizeof(n_corners));
  if (!is || n_temps == 0 || n_temps > 16 || n_corners == 0 || n_corners > 8)
    return std::nullopt;

  DelayEnergyTable table;
  table.grid_ = tech::SupplyGrid(vmin, vmax, step);
  table.temps_.resize(n_temps);
  is.read(reinterpret_cast<char*>(table.temps_.data()),
          static_cast<std::streamsize>(n_temps * sizeof(double)));
  table.corners_.resize(n_corners);
  for (auto& c : table.corners_) {
    std::int32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    c = static_cast<tech::ProcessCorner>(v);
  }
  std::uint64_t n_values = 0;
  is.read(reinterpret_cast<char*>(&n_values), sizeof(n_values));
  const std::uint64_t expected_values = n_corners * n_temps * table.grid_.size() *
                                        static_cast<std::uint64_t>(PatternClass::kCount);
  if (!is || n_values != expected_values) return std::nullopt;
  table.delays_.resize(n_values);
  table.energies_.resize(n_values);
  is.read(reinterpret_cast<char*>(table.delays_.data()),
          static_cast<std::streamsize>(n_values * sizeof(double)));
  is.read(reinterpret_cast<char*>(table.energies_.data()),
          static_cast<std::streamsize>(n_values * sizeof(double)));
  if (!is) return std::nullopt;
  return table;
}

}  // namespace razorbus::lut

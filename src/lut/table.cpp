#include "lut/table.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <tuple>

#include "lut/point_store.hpp"
#include "util/parallel.hpp"
#include "util/thread_annotations.hpp"

namespace razorbus::lut {

namespace {

constexpr char kMagic[8] = {'R', 'B', 'L', 'U', 'T', '0', '0', '2'};
// Adaptive tables (non-uniform breakpoint bands) use their own magic so a
// dense cache file and an adaptive one can never be confused for each
// other. Dense files stay bit-identical to the RBLUT002 format.
constexpr char kMagicAdaptive[8] = {'R', 'B', 'L', 'U', 'T', '0', '0', '3'};
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kClassCount = static_cast<std::size_t>(PatternClass::kCount);

const tech::SupplyBreakpoints kEmptyAxis{};

// Linear interpolation helper shared by delay() / energy() / slice().
double lerp(double a, double b, double f) {
  if (std::isinf(a) || std::isinf(b)) return f < 1.0 ? a : b;
  return a + (b - a) * f;
}

struct InterpPoint {
  std::size_t lo;
  std::size_t hi;
  double frac;
};

InterpPoint interp_point(const tech::SupplyGrid& grid, double v) {
  if (v <= grid.vmin()) return {0, 0, 0.0};
  if (v >= grid.vmax()) return {grid.size() - 1, grid.size() - 1, 0.0};
  const double raw = (v - grid.vmin()) / grid.step();
  const auto lo = static_cast<std::size_t>(raw);
  const std::size_t hi = std::min(lo + 1, grid.size() - 1);
  return {lo, hi, raw - static_cast<double>(lo)};
}

// All pattern classes of one characterised (corner, temp, voltage) point.
struct ClassPoint {
  double delay[PatternClass::kCount];
  double energy[PatternClass::kCount];
};

struct CostCounters {
  std::atomic<std::uint64_t> transient_sims{0};
  std::atomic<std::uint64_t> store_hits{0};
};

// One class's raw result: answered by the point store when it already
// holds the key, otherwise simulated and inserted. Stored values came
// from the identical deterministic simulation (the key covers everything
// the result depends on), so consulting the store can never change table
// contents — only skip work.
interconnect::ClusterResult simulate_or_fetch(
    const interconnect::ClusterCharacterizer& characterizer,
    const interconnect::ClusterSpec& spec, int cls, PointStore* store,
    std::uint64_t design_hash, CostCounters& counters) {
  if (store) {
    const std::uint64_t key =
        point_key(design_hash, spec.corner, spec.temp_c, spec.vdd, cls);
    if (const auto hit = store->lookup(key)) {
      ++counters.store_hits;
      interconnect::ClusterResult r;
      r.delay = hit->delay;
      r.victim_energy = hit->energy;
      r.settled = true;
      return r;
    }
    const interconnect::ClusterResult r = characterizer.run(spec);
    ++counters.transient_sims;
    store->insert(key, {r.delay, r.victim_energy});
    return r;
  }
  ++counters.transient_sims;
  return characterizer.run(spec);
}

// Characterise every pattern class at one (corner, temp, voltage): the
// same per-class policy as the dense builder — quiet canonical classes
// get zero energy, non-conducting points get infinite delay with no
// simulation, mirrors are copied — factored out so the adaptive builder
// and the lazy refiner produce bit-identical values. `per_unit` (optional)
// is invoked once per completed switching canonical class.
ClassPoint characterize_classes(const interconnect::ClusterCharacterizer& characterizer,
                                const tech::DriverModel& driver,
                                tech::ProcessCorner corner, double temp_c, double vdd,
                                PointStore* store, std::uint64_t design_hash,
                                CostCounters& counters,
                                const std::function<void()>& per_unit) {
  ClassPoint p;
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    p.delay[cls] = kNan;
    p.energy[cls] = 0.0;
  }
  const bool conducts = driver.conducts(corner, temp_c, vdd);
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    if (!PatternClass::is_canonical(cls)) continue;
    if (!PatternClass::any_switching(cls)) continue;  // quiet: zero energy
    if (!conducts) {
      if (PatternClass::victim_switches(cls))
        p.delay[cls] = std::numeric_limits<double>::infinity();
      if (per_unit) per_unit();
      continue;
    }
    interconnect::ClusterSpec spec;
    spec.victim = to_wire_activity(PatternClass::victim_of(cls));
    spec.left = to_wire_activity(PatternClass::left_of(cls));
    spec.right = to_wire_activity(PatternClass::right_of(cls));
    spec.vdd = vdd;
    spec.corner = corner;
    spec.temp_c = temp_c;
    const interconnect::ClusterResult r =
        simulate_or_fetch(characterizer, spec, cls, store, design_hash, counters);
    if (PatternClass::victim_switches(cls))
      p.delay[cls] = r.delay >= 0.0 ? r.delay : std::numeric_limits<double>::infinity();
    p.energy[cls] = r.victim_energy;
    if (per_unit) per_unit();
  }
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    if (PatternClass::is_canonical(cls)) continue;
    const int src = PatternClass::canonical(cls);
    p.delay[cls] = p.delay[src];
    p.energy[cls] = p.energy[src];
  }
  return p;
}

int switching_canonical_count() {
  int n = 0;
  for (int cls = 0; cls < PatternClass::kCount; ++cls)
    if (PatternClass::is_canonical(cls) && PatternClass::any_switching(cls)) ++n;
  return n;
}

}  // namespace

// On-demand extension of an adaptive table below its characterised range.
// Queries under the band's vmin interpolate between fixed anchor voltages
// `vmin - j * step` (j = 1..kMaxAnchors, simulated lazily and memoised),
// instead of clamping as dense tables do. Anchor values are pure functions
// of (corner, temp, anchor index), so results are independent of query
// order and thread count (DESIGN.md §9).
class LazyRefiner {
 public:
  static constexpr int kMaxAnchors = 64;

  LazyRefiner(const interconnect::BusDesign& design, const tech::DriverModel& driver,
              std::shared_ptr<PointStore> store,
              std::vector<tech::ProcessCorner> corners, std::vector<double> temps,
              double vmin, double step)
      : characterizer_(design, driver),
        driver_(driver),
        store_(std::move(store)),
        corners_(std::move(corners)),
        temps_(std::move(temps)),
        vmin_(vmin),
        step_(step),
        design_hash_(design_content_hash(design)) {}

  double delay(int cls, std::size_t ci, std::size_t ti, double v) {
    const Bracket b = bracket(ci, ti, v);
    return lerp(b.lo->delay[cls], b.hi->delay[cls], b.frac);
  }

  double energy(int cls, std::size_t ci, std::size_t ti, double v) {
    const Bracket b = bracket(ci, ti, v);
    return lerp(b.lo->energy[cls], b.hi->energy[cls], b.frac);
  }

  void fill_slice(TableSlice& s, std::size_t ci, std::size_t ti, double v) {
    const Bracket b = bracket(ci, ti, v);
    for (int cls = 0; cls < PatternClass::kCount; ++cls) {
      s.delay[cls] = lerp(b.lo->delay[cls], b.hi->delay[cls], b.frac);
      s.energy[cls] = lerp(b.lo->energy[cls], b.hi->energy[cls], b.frac);
    }
  }

  std::uint64_t transient_sims() const { return counters_.transient_sims.load(); }

 private:
  struct Bracket {
    const ClassPoint* lo;
    const ClassPoint* hi;
    double frac;
  };

  // Anchor values are inserted once and never mutated, and std::map nodes
  // are stable, so the returned reference outlives the lock safely.
  const ClassPoint& anchor(std::size_t ci, std::size_t ti, int j) {
    util::MutexLock lock(mutex_);
    const auto key = std::make_tuple(ci, ti, j);
    const auto it = anchors_.find(key);
    if (it != anchors_.end()) return it->second;
    const double vdd = vmin_ - static_cast<double>(j) * step_;
    ClassPoint p = characterize_classes(characterizer_, driver_, corners_.at(ci),
                                        temps_.at(ti), vdd, store_.get(), design_hash_,
                                        counters_, {});
    return anchors_.emplace(key, p).first->second;
  }

  Bracket bracket(std::size_t ci, std::size_t ti, double v) {
    int j = static_cast<int>(std::ceil((vmin_ - v) / step_ - 1e-9));
    if (j < 1) j = 1;
    if (j > kMaxAnchors) {
      // Beyond the deepest anchor: clamp (the driver is far below
      // conduction there anyway).
      const ClassPoint& p = anchor(ci, ti, kMaxAnchors);
      return {&p, &p, 0.0};
    }
    const ClassPoint& lo = anchor(ci, ti, j);
    const ClassPoint& hi = anchor(ci, ti, j - 1);
    const double v_lo = vmin_ - static_cast<double>(j) * step_;
    return {&lo, &hi, (v - v_lo) / step_};
  }

  const interconnect::ClusterCharacterizer characterizer_;
  const tech::DriverModel driver_;
  const std::shared_ptr<PointStore> store_;
  const std::vector<tech::ProcessCorner> corners_;
  const std::vector<double> temps_;
  const double vmin_;
  const double step_;
  const std::uint64_t design_hash_;

  mutable util::Mutex mutex_;
  std::map<std::tuple<std::size_t, std::size_t, int>, ClassPoint> anchors_
      GUARDED_BY(mutex_);
  CostCounters counters_;
};

std::uint64_t table_key_hash(const interconnect::BusDesign& design,
                             const LutConfig& config) {
  // Design/model/simulator content (including the n_bits / shield_group
  // exclusions) lives in design_content_hash — the same hash that keys the
  // point store — so the table key and the point keys can never disagree
  // about what "the same design" means.
  Fnv1a fnv;
  fnv.h = design_content_hash(design);
  for (double v : {config.vmin, config.vmax, config.vstep}) fnv.mix_double(v);
  for (double t : config.temps) fnv.mix_double(t);
  for (auto c : config.corners) fnv.mix_int(static_cast<std::int64_t>(c));
  if (config.tolerance.enabled()) {
    // Only mixed when adaptive: dense configs keep one stable key whether
    // or not the tolerance struct exists in this build of the library.
    const LutTolerance& tol = config.tolerance;
    fnv.mix_int(3);  // adaptive format revision (matches RBLUT003)
    for (double v : {tol.relative, tol.delay_abs_s, tol.energy_abs_j, tol.min_step})
      fnv.mix_double(v);
    fnv.mix_int(tol.seed_intervals);
  }
  return fnv.h;
}

DelayEnergyTable DelayEnergyTable::build(const interconnect::BusDesign& design,
                                         const tech::DriverModel& driver,
                                         const LutConfig& config,
                                         const std::function<void(int, int)>& progress,
                                         PointStore* store, BuildStats* stats) {
  if (config.tolerance.enabled())
    return build_adaptive(design, driver, config, progress, store, stats);

  DelayEnergyTable table;
  table.grid_ = config.reference_grid();
  table.temps_ = config.temps;
  table.corners_ = config.corners;
  const std::size_t total_slots =
      table.corners_.size() * table.temps_.size() * table.grid_.size() *
      static_cast<std::size_t>(PatternClass::kCount);
  table.delays_.assign(total_slots, kNan);
  table.energies_.assign(total_slots, 0.0);

  const interconnect::ClusterCharacterizer characterizer(design, driver);
  const std::uint64_t design_hash = design_content_hash(design);
  CostCounters counters;

  // Count canonical classes that need simulation (for progress reporting).
  const int sims_per_point = switching_canonical_count();
  const int total = static_cast<int>(table.corners_.size() * table.temps_.size() *
                                     table.grid_.size()) *
                    sims_per_point;
  std::atomic<int> done{0};
  util::Mutex progress_mutex;
  int reported = 0;  // monotonic max of done counts already reported

  // The dominant cold-start cost: thousands of independent transient runs.
  // Sharded one (corner, temperature, voltage) grid point per shard — each
  // point owns the contiguous per-class range [flat_index(ci,ti,vi,0),
  // flat_index(ci,ti,vi,kCount)) of delays_/energies_, so shards write
  // disjoint memory and the table contents are bit-identical at any thread
  // count (DESIGN.md §9).
  const std::size_t points_per_corner = table.temps_.size() * table.grid_.size();
  util::global_pool().parallel_for(
      table.corners_.size() * points_per_corner, [&](std::size_t point) {
        const std::size_t ci = point / points_per_corner;
        const std::size_t ti = (point % points_per_corner) / table.grid_.size();
        const std::size_t vi = point % table.grid_.size();
        const double vdd = table.grid_.voltage(vi);
        const bool conducts =
            driver.conducts(table.corners_[ci], table.temps_[ti], vdd);
        for (int cls = 0; cls < PatternClass::kCount; ++cls) {
          if (!PatternClass::is_canonical(cls)) continue;
          const std::size_t idx = table.flat_index(ci, ti, vi, cls);
          if (!PatternClass::any_switching(cls)) {
            table.energies_[idx] = 0.0;  // quiet cycle: no dynamic energy
            continue;
          }
          if (!conducts) {
            // Below the conduction limit the wire cannot switch in any
            // bounded time; mark as unreachable (infinite delay).
            if (PatternClass::victim_switches(cls))
              table.delays_[idx] = std::numeric_limits<double>::infinity();
            table.energies_[idx] = 0.0;
            ++done;
            continue;
          }

          interconnect::ClusterSpec spec;
          spec.victim = to_wire_activity(PatternClass::victim_of(cls));
          spec.left = to_wire_activity(PatternClass::left_of(cls));
          spec.right = to_wire_activity(PatternClass::right_of(cls));
          spec.vdd = vdd;
          spec.corner = table.corners_[ci];
          spec.temp_c = table.temps_[ti];
          const interconnect::ClusterResult r =
              simulate_or_fetch(characterizer, spec, cls, store, design_hash, counters);

          if (PatternClass::victim_switches(cls))
            table.delays_[idx] =
                r.delay >= 0.0 ? r.delay : std::numeric_limits<double>::infinity();
          table.energies_[idx] = r.victim_energy;
          const int now_done = ++done;
          if (progress) {
            // Report only monotonically increasing counts: two shards can
            // increment in one order and acquire this mutex in the other,
            // and progress printers assume done never goes backwards. The
            // shard that increments to `total` always reports it.
            util::MutexLock lock(progress_mutex);
            if (now_done > reported) {
              reported = now_done;
              progress(now_done, total);
            }
          }
        }
        // Mirror non-canonical classes.
        for (int cls = 0; cls < PatternClass::kCount; ++cls) {
          if (PatternClass::is_canonical(cls)) continue;
          const std::size_t src =
              table.flat_index(ci, ti, vi, PatternClass::canonical(cls));
          const std::size_t dst = table.flat_index(ci, ti, vi, cls);
          table.delays_[dst] = table.delays_[src];
          table.energies_[dst] = table.energies_[src];
        }
      });
  if (stats) {
    stats->transient_sims = counters.transient_sims.load();
    stats->store_hits = counters.store_hits.load();
    stats->points = table.corners_.size() * points_per_corner;
  }
  return table;
}

DelayEnergyTable DelayEnergyTable::build_adaptive(
    const interconnect::BusDesign& design, const tech::DriverModel& driver,
    const LutConfig& config, const std::function<void(int, int)>& progress,
    PointStore* store, BuildStats* stats) {
  DelayEnergyTable table;
  table.grid_ = config.reference_grid();
  table.temps_ = config.temps;
  table.corners_ = config.corners;
  const std::size_t n_bands = table.corners_.size() * table.temps_.size();
  table.bands_.resize(n_bands);

  const interconnect::ClusterCharacterizer characterizer(design, driver);
  const std::uint64_t design_hash = design_content_hash(design);
  const LutTolerance& tol = config.tolerance;
  CostCounters counters;
  std::atomic<std::uint64_t> points_done{0};

  // Progress is reported against the dense-grid upper bound so callers see
  // the same scale in both modes; adaptive builds finish early and close
  // with one final (total, total) report.
  const int sims_per_point = switching_canonical_count();
  const int total =
      static_cast<int>(n_bands * table.grid_.size()) * sims_per_point;
  std::atomic<int> done{0};
  util::Mutex progress_mutex;
  int reported = 0;

  const std::size_t n = table.grid_.size();

  // One shard per (corner, temperature) band: each shard owns its
  // bands_[bi] slot exclusively, and the recursion inside a band is
  // sequential, so the chosen breakpoints and their values are
  // bit-identical at any thread count (DESIGN.md §9).
  util::global_pool().parallel_for(n_bands, [&](std::size_t bi) {
    const std::size_t ci = bi / table.temps_.size();
    const std::size_t ti = bi % table.temps_.size();
    const tech::ProcessCorner corner = table.corners_[ci];
    const double temp_c = table.temps_[ti];

    const auto per_unit = [&]() {
      const int now_done = ++done;
      if (progress) {
        util::MutexLock lock(progress_mutex);
        if (now_done > reported) {
          reported = now_done;
          progress(now_done, total);
        }
      }
    };

    // Candidate voltages are exactly the reference grid's indices:
    // tolerance -> 0 refines every index and reproduces the dense table
    // bit-identically, and point-store keys match across configs whose
    // grids share voltages.
    std::map<std::size_t, ClassPoint> pts;
    const auto ensure = [&](std::size_t vi) -> const ClassPoint& {
      const auto it = pts.find(vi);
      if (it != pts.end()) return it->second;
      ClassPoint p =
          characterize_classes(characterizer, driver, corner, temp_c,
                               table.grid_.voltage(vi), store, design_hash,
                               counters, per_unit);
      ++points_done;
      return pts.emplace(vi, p).first->second;
    };

    // Accept [lo, hi] when the simulated midpoint is inside the tolerance
    // envelope of the chord for EVERY switching canonical class. Infinite
    // (non-conducting) delays pass only when lo, mid and hi all agree —
    // a finite/infinite mix means the conduction boundary is inside the
    // interval and must be localised.
    const auto interval_ok = [&](std::size_t lo, std::size_t mid, std::size_t hi) {
      const ClassPoint& a = pts.at(lo);
      const ClassPoint& m = pts.at(mid);
      const ClassPoint& b = pts.at(hi);
      const double v_lo = table.grid_.voltage(lo);
      const double f =
          (table.grid_.voltage(mid) - v_lo) / (table.grid_.voltage(hi) - v_lo);
      for (int cls = 0; cls < PatternClass::kCount; ++cls) {
        if (!PatternClass::is_canonical(cls)) continue;
        if (!PatternClass::any_switching(cls)) continue;
        const double es = m.energy[cls];
        const double ei = a.energy[cls] + (b.energy[cls] - a.energy[cls]) * f;
        if (std::abs(es - ei) > tol.energy_abs_j + tol.relative * std::abs(es))
          return false;
        if (!PatternClass::victim_switches(cls)) continue;
        const double dl = a.delay[cls];
        const double dh = b.delay[cls];
        const double dm = m.delay[cls];
        if (std::isinf(dl) || std::isinf(dh) || std::isinf(dm)) {
          if (!(std::isinf(dl) && std::isinf(dh) && std::isinf(dm))) return false;
          continue;
        }
        const double di = dl + (dh - dl) * f;
        if (std::abs(dm - di) > tol.delay_abs_s + tol.relative * std::abs(dm))
          return false;
      }
      return true;
    };

    const std::function<void(std::size_t, std::size_t)> refine =
        [&](std::size_t lo, std::size_t hi) {
          if (hi - lo < 2) return;  // grid resolution reached
          if (tol.min_step > 0.0 &&
              table.grid_.voltage(hi) - table.grid_.voltage(lo) < 2.0 * tol.min_step)
            return;
          const std::size_t mid = lo + (hi - lo) / 2;
          ensure(mid);  // probe cost is paid; the point is kept either way
          if (interval_ok(lo, mid, hi)) return;
          refine(lo, mid);
          refine(mid, hi);
        };

    const int seed_intervals = tol.seed_intervals > 0 ? tol.seed_intervals : 1;
    std::vector<std::size_t> seeds;
    for (int j = 0; j <= seed_intervals; ++j) {
      const auto vi = n == 1
                          ? std::size_t{0}
                          : static_cast<std::size_t>(std::llround(
                                static_cast<double>(j) * static_cast<double>(n - 1) /
                                static_cast<double>(seed_intervals)));
      if (seeds.empty() || vi != seeds.back()) seeds.push_back(vi);
    }
    for (const std::size_t vi : seeds) ensure(vi);
    for (std::size_t k = 0; k + 1 < seeds.size(); ++k) refine(seeds[k], seeds[k + 1]);

    Band& band = table.bands_[bi];
    std::vector<double> voltages;
    voltages.reserve(pts.size());
    band.delays.reserve(pts.size() * kClassCount);
    band.energies.reserve(pts.size() * kClassCount);
    for (const auto& [vi, p] : pts) {  // std::map: ascending voltage order
      voltages.push_back(table.grid_.voltage(vi));
      for (int cls = 0; cls < PatternClass::kCount; ++cls) {
        band.delays.push_back(p.delay[cls]);
        band.energies.push_back(p.energy[cls]);
      }
    }
    band.points = tech::SupplyBreakpoints(std::move(voltages));
  });

  if (progress) {
    util::MutexLock lock(progress_mutex);
    if (reported < total) progress(total, total);
  }
  if (stats) {
    stats->transient_sims = counters.transient_sims.load();
    stats->store_hits = counters.store_hits.load();
    stats->points = points_done.load();
  }
  return table;
}

std::size_t DelayEnergyTable::corner_index(tech::ProcessCorner corner) const {
  for (std::size_t i = 0; i < corners_.size(); ++i)
    if (corners_[i] == corner) return i;
  throw std::out_of_range("DelayEnergyTable: corner not characterised");
}

std::size_t DelayEnergyTable::temp_index(double temp_c) const {
  for (std::size_t i = 0; i < temps_.size(); ++i)
    if (std::abs(temps_[i] - temp_c) < 0.5) return i;
  throw std::out_of_range("DelayEnergyTable: temperature not characterised");
}

std::size_t DelayEnergyTable::flat_index(std::size_t corner, std::size_t temp,
                                         std::size_t v, int cls) const {
  return ((corner * temps_.size() + temp) * grid_.size() + v) *
             static_cast<std::size_t>(PatternClass::kCount) +
         static_cast<std::size_t>(cls);
}

const DelayEnergyTable::Band& DelayEnergyTable::band(std::size_t corner_idx,
                                                     std::size_t temp_idx) const {
  return bands_.at(corner_idx * temps_.size() + temp_idx);
}

const tech::SupplyBreakpoints& DelayEnergyTable::breakpoints(
    std::size_t corner_idx, std::size_t temp_idx) const {
  if (bands_.empty()) return kEmptyAxis;
  return band(corner_idx, temp_idx).points;
}

double DelayEnergyTable::delay(int cls, tech::ProcessCorner corner, double temp_c,
                               double v) const {
  const std::size_t ci = corner_index(corner);
  const std::size_t ti = temp_index(temp_c);
  if (!bands_.empty()) {
    const Band& b = band(ci, ti);
    if (refiner_ && v < b.points.vmin()) return refiner_->delay(cls, ci, ti, v);
    const auto seg = b.points.locate(v);
    return lerp(b.delays[seg.lo * kClassCount + static_cast<std::size_t>(cls)],
                b.delays[seg.hi * kClassCount + static_cast<std::size_t>(cls)],
                seg.frac);
  }
  const InterpPoint p = interp_point(grid_, v);
  return lerp(delays_[flat_index(ci, ti, p.lo, cls)],
              delays_[flat_index(ci, ti, p.hi, cls)], p.frac);
}

double DelayEnergyTable::energy(int cls, tech::ProcessCorner corner, double temp_c,
                                double v) const {
  const std::size_t ci = corner_index(corner);
  const std::size_t ti = temp_index(temp_c);
  if (!bands_.empty()) {
    const Band& b = band(ci, ti);
    if (refiner_ && v < b.points.vmin()) return refiner_->energy(cls, ci, ti, v);
    const auto seg = b.points.locate(v);
    return lerp(b.energies[seg.lo * kClassCount + static_cast<std::size_t>(cls)],
                b.energies[seg.hi * kClassCount + static_cast<std::size_t>(cls)],
                seg.frac);
  }
  const InterpPoint p = interp_point(grid_, v);
  return lerp(energies_[flat_index(ci, ti, p.lo, cls)],
              energies_[flat_index(ci, ti, p.hi, cls)], p.frac);
}

TableSlice DelayEnergyTable::slice(tech::ProcessCorner corner, double temp_c,
                                   double v) const {
  const std::size_t ci = corner_index(corner);
  const std::size_t ti = temp_index(temp_c);
  TableSlice s{};
  if (!bands_.empty()) {
    const Band& b = band(ci, ti);
    if (refiner_ && v < b.points.vmin()) {
      refiner_->fill_slice(s, ci, ti, v);
      return s;
    }
    const auto seg = b.points.locate(v);
    for (int cls = 0; cls < PatternClass::kCount; ++cls) {
      const std::size_t c = static_cast<std::size_t>(cls);
      s.delay[cls] = lerp(b.delays[seg.lo * kClassCount + c],
                          b.delays[seg.hi * kClassCount + c], seg.frac);
      s.energy[cls] = lerp(b.energies[seg.lo * kClassCount + c],
                           b.energies[seg.hi * kClassCount + c], seg.frac);
    }
    return s;
  }
  const InterpPoint p = interp_point(grid_, v);
  for (int cls = 0; cls < PatternClass::kCount; ++cls) {
    s.delay[cls] = lerp(delays_[flat_index(ci, ti, p.lo, cls)],
                        delays_[flat_index(ci, ti, p.hi, cls)], p.frac);
    s.energy[cls] = lerp(energies_[flat_index(ci, ti, p.lo, cls)],
                         energies_[flat_index(ci, ti, p.hi, cls)], p.frac);
  }
  return s;
}

std::optional<double> DelayEnergyTable::min_shadow_safe_voltage(
    const interconnect::BusDesign& design, tech::ProcessCorner corner,
    double temp_c) const {
  const int worst = PatternClass::encode(VictimActivity::rise, NeighborActivity::fall,
                                         NeighborActivity::fall);
  const double limit = design.shadow_capture_limit();
  const std::size_t ci = corner_index(corner);
  const std::size_t ti = temp_index(temp_c);
  if (!bands_.empty()) {
    const Band& b = band(ci, ti);
    for (std::size_t vi = 0; vi < b.points.size(); ++vi) {
      const double d = b.delays[vi * kClassCount + static_cast<std::size_t>(worst)];
      if (d <= limit) return b.points.voltage(vi);
    }
    return std::nullopt;
  }
  for (std::size_t vi = 0; vi < grid_.size(); ++vi) {
    const double d = delay_at(worst, ci, ti, vi);
    if (d <= limit) return grid_.voltage(vi);
  }
  return std::nullopt;
}

void DelayEnergyTable::attach_refiner(const interconnect::BusDesign& design,
                                      const tech::DriverModel& driver,
                                      std::shared_ptr<PointStore> store) {
  if (bands_.empty()) return;  // dense tables keep clamp semantics
  refiner_ = std::make_shared<LazyRefiner>(design, driver, std::move(store), corners_,
                                           temps_, grid_.vmin(), grid_.step());
}

std::uint64_t DelayEnergyTable::refiner_sims() const {
  return refiner_ ? refiner_->transient_sims() : 0;
}

double DelayEnergyTable::delay_at(int cls, std::size_t ci, std::size_t ti,
                                  std::size_t vi) const {
  if (!bands_.empty())
    return band(ci, ti).delays.at(vi * kClassCount + static_cast<std::size_t>(cls));
  return delays_.at(flat_index(ci, ti, vi, cls));
}

double DelayEnergyTable::energy_at(int cls, std::size_t ci, std::size_t ti,
                                   std::size_t vi) const {
  if (!bands_.empty())
    return band(ci, ti).energies.at(vi * kClassCount + static_cast<std::size_t>(cls));
  return energies_.at(flat_index(ci, ti, vi, cls));
}

void DelayEnergyTable::save(std::ostream& os, std::uint64_t key_hash) const {
  os.write(bands_.empty() ? kMagic : kMagicAdaptive, sizeof(kMagic));
  os.write(reinterpret_cast<const char*>(&key_hash), sizeof(key_hash));
  const double vmin = grid_.vmin();
  const double vmax = grid_.vmax();
  const double step = grid_.step();
  os.write(reinterpret_cast<const char*>(&vmin), sizeof(vmin));
  os.write(reinterpret_cast<const char*>(&vmax), sizeof(vmax));
  os.write(reinterpret_cast<const char*>(&step), sizeof(step));

  const std::uint64_t n_temps = temps_.size();
  const std::uint64_t n_corners = corners_.size();
  os.write(reinterpret_cast<const char*>(&n_temps), sizeof(n_temps));
  os.write(reinterpret_cast<const char*>(&n_corners), sizeof(n_corners));
  os.write(reinterpret_cast<const char*>(temps_.data()),
           static_cast<std::streamsize>(temps_.size() * sizeof(double)));
  for (auto c : corners_) {
    const std::int32_t v = static_cast<std::int32_t>(c);
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  if (bands_.empty()) {
    const std::uint64_t n_values = delays_.size();
    os.write(reinterpret_cast<const char*>(&n_values), sizeof(n_values));
    os.write(reinterpret_cast<const char*>(delays_.data()),
             static_cast<std::streamsize>(delays_.size() * sizeof(double)));
    os.write(reinterpret_cast<const char*>(energies_.data()),
             static_cast<std::streamsize>(energies_.size() * sizeof(double)));
    return;
  }
  for (const Band& b : bands_) {
    const std::uint64_t n_points = b.points.size();
    os.write(reinterpret_cast<const char*>(&n_points), sizeof(n_points));
    os.write(reinterpret_cast<const char*>(b.points.voltages().data()),
             static_cast<std::streamsize>(n_points * sizeof(double)));
    os.write(reinterpret_cast<const char*>(b.delays.data()),
             static_cast<std::streamsize>(b.delays.size() * sizeof(double)));
    os.write(reinterpret_cast<const char*>(b.energies.data()),
             static_cast<std::streamsize>(b.energies.size() * sizeof(double)));
  }
}

std::optional<DelayEnergyTable> DelayEnergyTable::load(std::istream& is,
                                                       std::uint64_t expected_hash) {
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic))) return std::nullopt;
  const bool dense = std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  const bool adaptive = std::memcmp(magic, kMagicAdaptive, sizeof(kMagic)) == 0;
  if (!dense && !adaptive) return std::nullopt;
  std::uint64_t hash = 0;
  if (!is.read(reinterpret_cast<char*>(&hash), sizeof(hash)) || hash != expected_hash)
    return std::nullopt;

  double vmin = 0, vmax = 0, step = 0;
  is.read(reinterpret_cast<char*>(&vmin), sizeof(vmin));
  is.read(reinterpret_cast<char*>(&vmax), sizeof(vmax));
  is.read(reinterpret_cast<char*>(&step), sizeof(step));
  std::uint64_t n_temps = 0, n_corners = 0;
  is.read(reinterpret_cast<char*>(&n_temps), sizeof(n_temps));
  is.read(reinterpret_cast<char*>(&n_corners), sizeof(n_corners));
  if (!is || n_temps == 0 || n_temps > 16 || n_corners == 0 || n_corners > 8)
    return std::nullopt;

  DelayEnergyTable table;
  table.grid_ = tech::SupplyGrid(vmin, vmax, step);
  table.temps_.resize(n_temps);
  is.read(reinterpret_cast<char*>(table.temps_.data()),
          static_cast<std::streamsize>(n_temps * sizeof(double)));
  table.corners_.resize(n_corners);
  for (auto& c : table.corners_) {
    std::int32_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    c = static_cast<tech::ProcessCorner>(v);
  }
  if (dense) {
    std::uint64_t n_values = 0;
    is.read(reinterpret_cast<char*>(&n_values), sizeof(n_values));
    const std::uint64_t expected_values =
        n_corners * n_temps * table.grid_.size() *
        static_cast<std::uint64_t>(PatternClass::kCount);
    if (!is || n_values != expected_values) return std::nullopt;
    table.delays_.resize(n_values);
    table.energies_.resize(n_values);
    is.read(reinterpret_cast<char*>(table.delays_.data()),
            static_cast<std::streamsize>(n_values * sizeof(double)));
    is.read(reinterpret_cast<char*>(table.energies_.data()),
            static_cast<std::streamsize>(n_values * sizeof(double)));
    if (!is) return std::nullopt;
    return table;
  }

  table.bands_.resize(n_corners * n_temps);
  for (Band& b : table.bands_) {
    std::uint64_t n_points = 0;
    is.read(reinterpret_cast<char*>(&n_points), sizeof(n_points));
    // A band cannot hold more breakpoints than the reference grid.
    if (!is || n_points == 0 || n_points > table.grid_.size()) return std::nullopt;
    std::vector<double> voltages(n_points);
    is.read(reinterpret_cast<char*>(voltages.data()),
            static_cast<std::streamsize>(n_points * sizeof(double)));
    const std::size_t n_values = static_cast<std::size_t>(n_points) * kClassCount;
    b.delays.resize(n_values);
    b.energies.resize(n_values);
    is.read(reinterpret_cast<char*>(b.delays.data()),
            static_cast<std::streamsize>(n_values * sizeof(double)));
    is.read(reinterpret_cast<char*>(b.energies.data()),
            static_cast<std::streamsize>(n_values * sizeof(double)));
    if (!is) return std::nullopt;
    for (std::size_t i = 1; i < voltages.size(); ++i)
      if (!(voltages[i - 1] < voltages[i])) return std::nullopt;
    b.points = tech::SupplyBreakpoints(std::move(voltages));
  }
  if (!is) return std::nullopt;
  return table;
}

}  // namespace razorbus::lut

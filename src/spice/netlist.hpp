// Circuit netlist for the mini transient simulator.
//
// The simulator supports exactly what bus characterisation needs:
//   * resistors (wire segments, driver on-resistance),
//   * capacitors to ground and coupling capacitors between nets,
//   * fixed-potential nodes (supply rails, ground, shield wires),
//   * switch-level drivers: an output pulled to VDD or GND through an
//     on-resistance, toggled either by an explicit event schedule or as an
//     inverter following another node (input crossing half swing).
//
// This is the "HSPICE substitute": the lookup tables of per-pattern wire
// delay and energy are produced by transient runs of circuits built here.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace razorbus::spice {

using NodeId = std::size_t;
constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

struct Resistor {
  NodeId a;
  NodeId b;
  double ohms;
};

struct Capacitor {
  NodeId a;
  NodeId b;
  double farads;
};

// One scheduled logic transition of a driver output.
struct DriverEvent {
  double time;    // seconds
  bool drive_up;  // true: pull to VDD rail; false: pull to ground
};

struct Driver {
  NodeId out = kNoNode;
  NodeId vdd_rail = kNoNode;  // fixed node providing the pull-up potential
  double r_up = 0.0;          // on-resistance when pulling up (ohm)
  double r_dn = 0.0;          // on-resistance when pulling down (ohm)
  bool initial_up = false;    // DC state before any event

  // Inverter mode: when `in` is a valid node, the driver output follows the
  // logical complement of `in`, switching when v(in) crosses half the rail
  // potential in the appropriate direction. Used to chain repeater stages.
  NodeId in = kNoNode;

  // Schedule mode: explicit transitions (used for the first stage).
  std::vector<DriverEvent> schedule;
};

class Circuit {
 public:
  // Creates a floating (unknown-potential) node.
  NodeId add_node(std::string name);
  // Creates a fixed-potential node (rail / ground / shield).
  NodeId add_fixed_node(std::string name, double potential);

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  // Returns the driver index (for per-driver energy queries).
  std::size_t add_driver(Driver driver);

  std::size_t node_count() const { return nodes_.size(); }
  bool is_fixed(NodeId n) const { return nodes_[n].fixed; }
  double fixed_potential(NodeId n) const { return nodes_[n].potential; }
  const std::string& node_name(NodeId n) const { return nodes_[n].name; }

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Driver>& drivers() const { return drivers_; }

  // Sanity checks: element nodes valid, resistances/capacitances positive,
  // driver rails fixed. Throws std::invalid_argument on violation.
  void validate() const;

 private:
  struct Node {
    std::string name;
    bool fixed;
    double potential;
  };

  void check_node(NodeId n, const char* what) const;

  std::vector<Node> nodes_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Driver> drivers_;
};

}  // namespace razorbus::spice

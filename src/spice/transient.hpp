// Fixed-step transient analysis.
//
// Backward-Euler companion models for capacitors keep the step robust across
// the conductance discontinuities introduced by switch-level drivers. The
// conductance matrix only changes when a driver toggles, so the dense LU
// factorization is reused between events. Delay measurements are taken as
// threshold crossings of node waveforms; energy is the charge delivered by
// the pull-up rails times the rail voltage (the standard definition used
// when characterising bus energy per cycle).
#pragma once

#include <optional>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/solver.hpp"

namespace razorbus::spice {

// Companion-model choice for capacitors. Backward Euler is robust across
// the conductance discontinuities of switch-level drivers (it damps the
// step); trapezoidal is second-order accurate for the same dt (useful when
// trading step size for speed). Driver events toggle from settled states
// here (capacitor currents near zero), which keeps the trapezoidal history
// consistent across the discontinuity.
enum class Integrator { backward_euler, trapezoidal };

struct TransientConfig {
  double t_stop = 2e-9;   // seconds
  double dt = 0.5e-12;    // timestep
  Integrator integrator = Integrator::backward_euler;
  // Nodes whose full waveforms should be recorded (tests/debugging only;
  // crossing detection works for all nodes regardless).
  std::vector<NodeId> record;
};

// Crossing bookkeeping for one node and one threshold.
struct CrossingRecord {
  int rise_count = 0;
  int fall_count = 0;
  double last_rise = -1.0;  // seconds; negative = never crossed
  double last_fall = -1.0;
};

class TransientResult {
 public:
  // Last time v(node) crossed `threshold` going up / down; nullopt if never.
  std::optional<double> last_rise_crossing(NodeId node) const;
  std::optional<double> last_fall_crossing(NodeId node) const;
  int rise_count(NodeId node) const { return crossings_[node].rise_count; }
  int fall_count(NodeId node) const { return crossings_[node].fall_count; }

  // Total energy delivered by all pull-up rails over the run (J).
  double rail_energy() const { return rail_energy_; }
  // Energy delivered through one driver's pull-up path (J).
  double driver_rail_energy(std::size_t driver_index) const;

  double final_voltage(NodeId node) const { return final_voltages_[node]; }

  // Recorded waveform samples for nodes listed in TransientConfig::record.
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& waveform(NodeId node) const;

 private:
  friend class TransientSimulator;
  std::vector<CrossingRecord> crossings_;
  std::vector<double> final_voltages_;
  double rail_energy_ = 0.0;
  std::vector<double> driver_energy_;
  std::vector<double> times_;
  std::vector<NodeId> recorded_nodes_;
  std::vector<std::vector<double>> recorded_waves_;
};

class TransientSimulator {
 public:
  // The crossing threshold for every node is `threshold_fraction` times the
  // highest rail potential in the circuit (default: half swing).
  TransientSimulator(const Circuit& circuit, TransientConfig config,
                     double threshold_fraction = 0.5);

  TransientResult run();

 private:
  struct DriverState {
    bool up;
    std::size_t next_event;
  };

  void build_matrix();
  void dc_operating_point();
  double node_voltage(NodeId n) const;
  double driver_threshold(const Driver& d) const;
  double cap_conductance_scale() const;

  const Circuit& circuit_;
  TransientConfig config_;
  double threshold_fraction_;
  double max_rail_;

  // Mapping from circuit nodes to matrix rows (fixed nodes excluded).
  std::vector<std::size_t> matrix_index_;   // per node; kNoNode-like for fixed
  std::vector<NodeId> unknown_nodes_;       // matrix row -> node

  std::vector<double> voltages_;            // per node, current values
  std::vector<DriverState> driver_states_;
  std::vector<double> cap_currents_;        // per capacitor (trapezoidal state)
  bool be_step_pending_ = true;             // BE step at discontinuities (TR mode)
  DenseMatrix conductance_;
  LuFactorization lu_;
};

}  // namespace razorbus::spice

#include "spice/netlist.hpp"

#include <stdexcept>

namespace razorbus::spice {

NodeId Circuit::add_node(std::string name) {
  nodes_.push_back({std::move(name), false, 0.0});
  return nodes_.size() - 1;
}

NodeId Circuit::add_fixed_node(std::string name, double potential) {
  nodes_.push_back({std::move(name), true, potential});
  return nodes_.size() - 1;
}

void Circuit::check_node(NodeId n, const char* what) const {
  if (n >= nodes_.size())
    throw std::invalid_argument(std::string(what) + ": bad node id");
}

void Circuit::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a, "resistor");
  check_node(b, "resistor");
  if (ohms <= 0.0) throw std::invalid_argument("resistor: non-positive resistance");
  resistors_.push_back({a, b, ohms});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a, "capacitor");
  check_node(b, "capacitor");
  if (farads <= 0.0) throw std::invalid_argument("capacitor: non-positive capacitance");
  capacitors_.push_back({a, b, farads});
}

std::size_t Circuit::add_driver(Driver driver) {
  check_node(driver.out, "driver out");
  check_node(driver.vdd_rail, "driver rail");
  if (driver.in != kNoNode) check_node(driver.in, "driver in");
  if (driver.r_up <= 0.0 || driver.r_dn <= 0.0)
    throw std::invalid_argument("driver: non-positive on-resistance");
  drivers_.push_back(std::move(driver));
  return drivers_.size() - 1;
}

void Circuit::validate() const {
  for (const auto& d : drivers_) {
    if (!is_fixed(d.vdd_rail)) throw std::invalid_argument("driver rail must be fixed");
    if (is_fixed(d.out)) throw std::invalid_argument("driver output must not be fixed");
    if (d.in != kNoNode && !d.schedule.empty())
      throw std::invalid_argument("driver: inverter mode and schedule are exclusive");
    for (std::size_t i = 1; i < d.schedule.size(); ++i)
      if (d.schedule[i].time < d.schedule[i - 1].time)
        throw std::invalid_argument("driver: schedule not sorted by time");
  }
}

}  // namespace razorbus::spice

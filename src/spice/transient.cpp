#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace razorbus::spice {

namespace {
// Minimum conductance from every unknown node to ground. Keeps the matrix
// non-singular for momentarily floating nodes (standard SPICE gmin).
constexpr double kGmin = 1e-12;
}  // namespace

std::optional<double> TransientResult::last_rise_crossing(NodeId node) const {
  const auto& c = crossings_.at(node);
  if (c.last_rise < 0.0) return std::nullopt;
  return c.last_rise;
}

std::optional<double> TransientResult::last_fall_crossing(NodeId node) const {
  const auto& c = crossings_.at(node);
  if (c.last_fall < 0.0) return std::nullopt;
  return c.last_fall;
}

double TransientResult::driver_rail_energy(std::size_t driver_index) const {
  return driver_energy_.at(driver_index);
}

const std::vector<double>& TransientResult::waveform(NodeId node) const {
  for (std::size_t i = 0; i < recorded_nodes_.size(); ++i)
    if (recorded_nodes_[i] == node) return recorded_waves_[i];
  throw std::out_of_range("waveform: node was not recorded");
}

TransientSimulator::TransientSimulator(const Circuit& circuit, TransientConfig config,
                                       double threshold_fraction)
    : circuit_(circuit),
      config_(std::move(config)),
      threshold_fraction_(threshold_fraction) {
  circuit_.validate();
  if (config_.dt <= 0.0 || config_.t_stop <= 0.0)
    throw std::invalid_argument("transient: dt and t_stop must be positive");

  matrix_index_.assign(circuit_.node_count(), kNoNode);
  for (NodeId n = 0; n < circuit_.node_count(); ++n) {
    if (!circuit_.is_fixed(n)) {
      matrix_index_[n] = unknown_nodes_.size();
      unknown_nodes_.push_back(n);
    }
  }
  if (unknown_nodes_.empty()) throw std::invalid_argument("transient: no unknown nodes");

  max_rail_ = 0.0;
  for (NodeId n = 0; n < circuit_.node_count(); ++n)
    if (circuit_.is_fixed(n))
      max_rail_ = std::max(max_rail_, circuit_.fixed_potential(n));

  voltages_.assign(circuit_.node_count(), 0.0);
  for (NodeId n = 0; n < circuit_.node_count(); ++n)
    if (circuit_.is_fixed(n)) voltages_[n] = circuit_.fixed_potential(n);

  driver_states_.reserve(circuit_.drivers().size());
  for (const auto& d : circuit_.drivers()) driver_states_.push_back({d.initial_up, 0});
}

double TransientSimulator::node_voltage(NodeId n) const { return voltages_[n]; }

double TransientSimulator::driver_threshold(const Driver& d) const {
  return threshold_fraction_ * circuit_.fixed_potential(d.vdd_rail);
}

double TransientSimulator::cap_conductance_scale() const {
  // Companion conductance per farad: C/h for backward Euler, 2C/h for
  // trapezoidal. The step during which a driver toggles uses BE even in
  // trapezoidal mode: the capacitor current is discontinuous there and the
  // trapezoid rule would halve the initial charging current (the classic
  // reason simulators take one BE step at discontinuities).
  if (config_.integrator == Integrator::trapezoidal && !be_step_pending_)
    return 2.0 / config_.dt;
  return 1.0 / config_.dt;
}

void TransientSimulator::build_matrix() {
  const std::size_t n = unknown_nodes_.size();
  conductance_ = DenseMatrix(n);
  const double g_cap_scale = cap_conductance_scale();

  auto stamp = [&](NodeId a, NodeId b, double g) {
    const std::size_t ia = matrix_index_[a];
    const std::size_t ib = matrix_index_[b];
    if (ia != kNoNode) conductance_.at(ia, ia) += g;
    if (ib != kNoNode) conductance_.at(ib, ib) += g;
    if (ia != kNoNode && ib != kNoNode) {
      conductance_.at(ia, ib) -= g;
      conductance_.at(ib, ia) -= g;
    }
  };

  for (std::size_t i = 0; i < n; ++i) conductance_.at(i, i) += kGmin;
  for (const auto& r : circuit_.resistors()) stamp(r.a, r.b, 1.0 / r.ohms);
  for (const auto& c : circuit_.capacitors()) stamp(c.a, c.b, c.farads * g_cap_scale);
  for (std::size_t i = 0; i < circuit_.drivers().size(); ++i) {
    const auto& d = circuit_.drivers()[i];
    const bool up = driver_states_[i].up;
    // Pull-up connects to the rail node; pull-down to an implicit 0 V ground:
    // stamp only the diagonal, the RHS contribution of ground is zero.
    const double g = 1.0 / (up ? d.r_up : d.r_dn);
    const std::size_t io = matrix_index_[d.out];
    conductance_.at(io, io) += g;
    if (up) {
      // Off-diagonal to the rail handled via RHS (rail potential is fixed).
    }
  }
  lu_ = LuFactorization(conductance_);
}

void TransientSimulator::dc_operating_point() {
  // Steady state: capacitor currents are zero, so solve the resistive
  // network only (cap stamps omitted).
  const std::size_t n = unknown_nodes_.size();
  DenseMatrix g_dc(n);
  std::vector<double> rhs(n, 0.0);

  auto stamp = [&](NodeId a, NodeId b, double g) {
    const std::size_t ia = matrix_index_[a];
    const std::size_t ib = matrix_index_[b];
    if (ia != kNoNode) g_dc.at(ia, ia) += g;
    if (ib != kNoNode) g_dc.at(ib, ib) += g;
    if (ia != kNoNode && ib != kNoNode) {
      g_dc.at(ia, ib) -= g;
      g_dc.at(ib, ia) -= g;
    } else if (ia != kNoNode && ib == kNoNode) {
      rhs[ia] += g * circuit_.fixed_potential(b);
    } else if (ib != kNoNode && ia == kNoNode) {
      rhs[ib] += g * circuit_.fixed_potential(a);
    }
  };

  for (std::size_t i = 0; i < n; ++i) g_dc.at(i, i) += kGmin;
  for (const auto& r : circuit_.resistors()) stamp(r.a, r.b, 1.0 / r.ohms);
  for (std::size_t i = 0; i < circuit_.drivers().size(); ++i) {
    const auto& d = circuit_.drivers()[i];
    const bool up = driver_states_[i].up;
    const double g = 1.0 / (up ? d.r_up : d.r_dn);
    const std::size_t io = matrix_index_[d.out];
    g_dc.at(io, io) += g;
    if (up) rhs[io] += g * circuit_.fixed_potential(d.vdd_rail);
  }

  const LuFactorization lu(g_dc);
  const std::vector<double> x = lu.solve(rhs);
  for (std::size_t i = 0; i < n; ++i) voltages_[unknown_nodes_[i]] = x[i];
}

TransientResult TransientSimulator::run() {
  TransientResult result;
  result.crossings_.assign(circuit_.node_count(), CrossingRecord{});
  result.driver_energy_.assign(circuit_.drivers().size(), 0.0);
  result.recorded_nodes_ = config_.record;
  result.recorded_waves_.assign(config_.record.size(), {});

  dc_operating_point();
  be_step_pending_ = true;  // first step from the (steady) operating point
  build_matrix();
  cap_currents_.assign(circuit_.capacitors().size(), 0.0);

  const double h = config_.dt;
  const double threshold = threshold_fraction_ * max_rail_;
  const std::size_t n = unknown_nodes_.size();
  std::vector<double> rhs(n);
  std::vector<double> prev = voltages_;
  bool matrix_is_be = true;

  const auto steps = static_cast<std::size_t>(std::ceil(config_.t_stop / h));
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * h;

    // Apply driver events and inverter toggles due at the START of this
    // step (time t-h), so a toggle scheduled at time T first affects the
    // integration interval [T, T+h).
    bool topology_changed = false;
    for (std::size_t i = 0; i < circuit_.drivers().size(); ++i) {
      const auto& d = circuit_.drivers()[i];
      auto& st = driver_states_[i];
      while (st.next_event < d.schedule.size() &&
             d.schedule[st.next_event].time <= t - h + 1e-18) {
        if (st.up != d.schedule[st.next_event].drive_up) {
          st.up = d.schedule[st.next_event].drive_up;
          topology_changed = true;
        }
        ++st.next_event;
      }
      if (d.in != kNoNode) {
        const double vin = voltages_[d.in];
        const double th = driver_threshold(d);
        if (st.up && vin > th) {
          st.up = false;  // input went high -> inverter pulls down
          topology_changed = true;
        } else if (!st.up && vin < th) {
          st.up = true;  // input went low -> inverter pulls up
          topology_changed = true;
        }
      }
    }
    if (topology_changed) be_step_pending_ = true;
    const bool use_be =
        config_.integrator == Integrator::backward_euler || be_step_pending_;
    if (topology_changed || use_be != matrix_is_be) {
      build_matrix();
      matrix_is_be = use_be;
    }
    const double g_scale = cap_conductance_scale();

    // Right-hand side: driver rail injections + capacitor history currents.
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (std::size_t i = 0; i < circuit_.drivers().size(); ++i) {
      const auto& d = circuit_.drivers()[i];
      if (driver_states_[i].up)
        rhs[matrix_index_[d.out]] +=
            circuit_.fixed_potential(d.vdd_rail) / d.r_up;
    }
    for (std::size_t ci = 0; ci < circuit_.capacitors().size(); ++ci) {
      const auto& c = circuit_.capacitors()[ci];
      // History current: g * v_prev for BE, g * v_prev + i_prev for TR.
      double i_hist = c.farads * g_scale * (voltages_[c.a] - voltages_[c.b]);
      if (!use_be) i_hist += cap_currents_[ci];
      const std::size_t ia = matrix_index_[c.a];
      const std::size_t ib = matrix_index_[c.b];
      if (ia != kNoNode) rhs[ia] += i_hist;
      if (ib != kNoNode) rhs[ib] -= i_hist;
      // Fixed-side contribution: the cap stamp in build_matrix() has no
      // off-diagonal to fixed nodes, so add g * V_fixed here.
      if (ia != kNoNode && circuit_.is_fixed(c.b))
        rhs[ia] += c.farads * g_scale * circuit_.fixed_potential(c.b);
      if (ib != kNoNode && circuit_.is_fixed(c.a))
        rhs[ib] += c.farads * g_scale * circuit_.fixed_potential(c.a);
    }

    lu_.solve_in_place(rhs);
    prev.swap(voltages_);
    for (std::size_t i = 0; i < n; ++i) voltages_[unknown_nodes_[i]] = rhs[i];
    for (NodeId nd = 0; nd < circuit_.node_count(); ++nd)
      if (circuit_.is_fixed(nd)) voltages_[nd] = circuit_.fixed_potential(nd);

    // Update capacitor branch currents (trapezoidal state; cheap enough to
    // track always).
    for (std::size_t ci = 0; ci < circuit_.capacitors().size(); ++ci) {
      const auto& c = circuit_.capacitors()[ci];
      const double dv =
          (voltages_[c.a] - voltages_[c.b]) - (prev[c.a] - prev[c.b]);
      if (use_be)
        cap_currents_[ci] = c.farads / h * dv;
      else
        cap_currents_[ci] = 2.0 * c.farads / h * dv - cap_currents_[ci];
    }
    be_step_pending_ = false;

    // Rail energy accounting (signed: charge pushed back reduces the total).
    for (std::size_t i = 0; i < circuit_.drivers().size(); ++i) {
      const auto& d = circuit_.drivers()[i];
      if (!driver_states_[i].up) continue;
      const double v_rail = circuit_.fixed_potential(d.vdd_rail);
      const double current = (v_rail - voltages_[d.out]) / d.r_up;
      const double e = v_rail * current * h;
      result.rail_energy_ += e;
      result.driver_energy_[i] += e;
    }

    // Threshold crossings with linear interpolation inside the step.
    for (NodeId nd = 0; nd < circuit_.node_count(); ++nd) {
      if (circuit_.is_fixed(nd)) continue;
      const double v0 = prev[nd];
      const double v1 = voltages_[nd];
      auto& rec = result.crossings_[nd];
      if (v0 < threshold && v1 >= threshold) {
        const double frac = (threshold - v0) / (v1 - v0);
        rec.last_rise = t - h + frac * h;
        ++rec.rise_count;
      } else if (v0 > threshold && v1 <= threshold) {
        const double frac = (v0 - threshold) / (v0 - v1);
        rec.last_fall = t - h + frac * h;
        ++rec.fall_count;
      }
    }

    if (!config_.record.empty()) {
      result.times_.push_back(t);
      for (std::size_t i = 0; i < config_.record.size(); ++i)
        result.recorded_waves_[i].push_back(voltages_[config_.record[i]]);
    }
  }

  result.final_voltages_ = voltages_;
  return result;
}

}  // namespace razorbus::spice

#include "spice/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace razorbus::spice {

void DenseMatrix::clear() { std::fill(data_.begin(), data_.end(), 0.0); }

LuFactorization::LuFactorization(const DenseMatrix& m) : lu_(m), pivot_(m.size()) {
  const std::size_t n = lu_.size();
  for (std::size_t i = 0; i < n; ++i) pivot_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t best = k;
    double best_mag = std::abs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_.at(r, k));
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    if (best_mag < 1e-30) throw std::runtime_error("LU: singular conductance matrix");
    if (best != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_.at(k, c), lu_.at(best, c));
      std::swap(pivot_[k], pivot_[best]);
    }
    const double inv_diag = 1.0 / lu_.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_.at(r, k) * inv_diag;
      lu_.at(r, k) = factor;
      // razorlint: allow(float-eq): structural-zero skip — eliminating with an
      // exactly-zero factor is a no-op, and RC matrices are mostly zeros.
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_.at(r, c) -= factor * lu_.at(k, c);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  std::vector<double> x = b;
  solve_in_place(x);
  return x;
}

void LuFactorization::solve_in_place(std::vector<double>& x) const {
  const std::size_t n = lu_.size();
  if (x.size() != n) throw std::invalid_argument("LU::solve: dimension mismatch");

  // Apply row permutation.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x[pivot_[i]];

  // Forward substitution (unit lower triangle).
  for (std::size_t r = 1; r < n; ++r) {
    double acc = y[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_.at(r, c) * y[c];
    y[r] = acc;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_.at(ri, c) * y[c];
    y[ri] = acc / lu_.at(ri, ri);
  }
  x = std::move(y);
}

}  // namespace razorbus::spice

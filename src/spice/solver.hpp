// Dense linear algebra for the circuit simulator.
//
// Circuits in this library are small (a few dozen to a few hundred nodes),
// so a dense LU with partial pivoting is simpler and faster than a sparse
// solver at this scale. The factorization is reused across timesteps; it is
// only recomputed when the conductance matrix changes (driver switching).
#pragma once

#include <cstddef>
#include <vector>

namespace razorbus::spice {

// Row-major dense square matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const { return n_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }
  void clear();

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

// LU factorization with partial pivoting. Throws std::runtime_error if the
// matrix is singular to working precision.
class LuFactorization {
 public:
  LuFactorization() = default;
  explicit LuFactorization(const DenseMatrix& m);

  // Solve A x = b; b.size() must equal the matrix dimension.
  std::vector<double> solve(const std::vector<double>& b) const;
  void solve_in_place(std::vector<double>& x) const;

  std::size_t size() const { return lu_.size(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> pivot_;
};

}  // namespace razorbus::spice

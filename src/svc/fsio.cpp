#include "svc/fsio.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace razorbus::svc {

namespace {

// Random per-process token for temp-file names — same idiom and rationale
// as the point store and table cache writers: entropy is exactly what
// cross-process uniqueness needs, and the token never reaches simulation
// state.
std::uint64_t process_token() {
  // razorlint: allow(no-raw-random): naming entropy, not a simulation draw.
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file_atomic(const std::string& path, const std::string& content) {
  static const std::uint64_t tmp_token = process_token();
  // razorlint: allow(no-mutable-static): temp-name serial — naming only,
  // never simulation state (same precedent as lut::PointStore::flush).
  static std::atomic<unsigned> tmp_serial{0};
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << std::hex << tmp_token << "." << tmp_serial++;
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp_path);
    out << content;
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      throw std::runtime_error("short write to " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::error_code ignore;
    std::filesystem::remove(tmp_path, ignore);
    throw std::runtime_error("cannot rename " + tmp_path + " -> " + path + ": " +
                             ec.message());
  }
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

}  // namespace razorbus::svc

#include "svc/queue.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <system_error>

#include "svc/fsio.hpp"

namespace razorbus::svc {

namespace fs = std::filesystem;

namespace {

// Claim-file names derive from the job name (filesystem-safe by the
// ScenarioSpec name validation), so claim/job/done files line up 1:1.
std::string claim_name(const std::string& job) { return job + ".claim"; }

// Is the process that wrote a claim still alive? Signal 0 probes without
// delivering: ESRCH means the pid is gone and the claim is stale. EPERM
// (pid exists but owned by another user) counts as alive — stealing a
// running job is worse than waiting. Per-host only, by construction.
bool pid_alive(long long pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

}  // namespace

Json QueueJob::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  j.set("hash", hash_hex);
  j.set("spec", spec_path);
  j.set("report", report_path);
  j.set("log", log_path);
  return j;
}

QueueJob QueueJob::from_json(const Json& json) {
  QueueJob job;
  job.name = json.at("name").as_string();
  job.hash_hex = json.at("hash").as_string();
  job.spec_path = json.at("spec").as_string();
  job.report_path = json.at("report").as_string();
  job.log_path = json.at("log").as_string();
  return job;
}

JobQueue::JobQueue(std::string dir) : dir_(std::move(dir)) {
  jobs_dir_ = (fs::path(dir_) / "jobs").string();
  claims_dir_ = (fs::path(dir_) / "claims").string();
  done_dir_ = (fs::path(dir_) / "done").string();
  fs::create_directories(jobs_dir_);
  fs::create_directories(claims_dir_);
  fs::create_directories(done_dir_);
}

void JobQueue::enqueue(const QueueJob& job) {
  write_file_atomic((fs::path(jobs_dir_) / (job.name + ".json")).string(),
                    job.to_json().dump(2) + "\n");
}

std::vector<QueueJob> JobQueue::jobs() const {
  std::vector<QueueJob> out;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(jobs_dir_)) {
    if (entry.path().extension() == ".json") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    try {
      out.push_back(QueueJob::from_json(Json::parse_file(path)));
    } catch (const std::exception&) {
      // Torn or foreign file: not a job. (Publishes are atomic, so this
      // can only be debris; skipping matches the PointStore contract.)
    }
  }
  return out;
}

std::optional<QueueJob> JobQueue::claim(const std::string& worker_id) {
  for (const QueueJob& job : jobs()) {
    if (is_done(job.name)) continue;
    const std::string claim_path =
        (fs::path(claims_dir_) / claim_name(job.name)).string();

    // Up to two O_EXCL attempts: the first loses either to a live claim
    // (skip the job) or to a stale one (remove it, try once more). The
    // second attempt can still lose — another worker reclaimed first —
    // and then this worker simply moves on; the filesystem's exclusivity
    // guarantee is what makes double-claiming impossible.
    for (int attempt = 0; attempt < 2; ++attempt) {
      const int fd = ::open(claim_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
      if (fd >= 0) {
        Json claim = Json::object();
        claim.set("worker", worker_id);
        claim.set("pid", static_cast<long long>(::getpid()));
        claim.set("job", job.name);
        const std::string text = claim.dump(2) + "\n";
        // Best-effort body: an empty/torn claim body is treated as stale
        // by other workers only once this pid exits, which is exactly the
        // abandoned-claim semantics we want.
        (void)!::write(fd, text.data(), text.size());
        ::close(fd);
        return job;
      }
      if (errno != EEXIST) break;  // unwritable claims dir: skip the job

      // Existing claim: stale (dead pid / unreadable) or live?
      bool stale = false;
      try {
        const Json claim = Json::parse_file(claim_path);
        stale = !pid_alive(claim.at("pid").as_int());
      } catch (const std::exception&) {
        stale = true;  // torn claim from a crashed worker
      }
      if (!stale) break;
      std::error_code ec;
      fs::remove(claim_path, ec);  // then retry the O_EXCL gate once
    }
  }
  return std::nullopt;
}

void JobQueue::complete(const std::string& name, const Json& record) {
  write_file_atomic((fs::path(done_dir_) / (name + ".json")).string(),
                    record.dump(2) + "\n");
  release(name);
}

void JobQueue::release(const std::string& name) {
  std::error_code ec;
  fs::remove(fs::path(claims_dir_) / claim_name(name), ec);
}

bool JobQueue::is_done(const std::string& name) const {
  return done_record(name).has_value();
}

std::optional<Json> JobQueue::done_record(const std::string& name) const {
  try {
    return Json::parse_file((fs::path(done_dir_) / (name + ".json")).string());
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void JobQueue::reset(const std::string& name) {
  std::error_code ec;
  fs::remove(fs::path(done_dir_) / (name + ".json"), ec);
  fs::remove(fs::path(claims_dir_) / claim_name(name), ec);
}

void JobQueue::remove(const std::string& name) {
  reset(name);
  std::error_code ec;
  fs::remove(fs::path(jobs_dir_) / (name + ".json"), ec);
}

std::size_t JobQueue::done_count() const {
  std::size_t n = 0;
  for (const QueueJob& job : jobs())
    if (is_done(job.name)) ++n;
  return n;
}

bool JobQueue::all_done() const {
  for (const QueueJob& job : jobs())
    if (!is_done(job.name)) return false;
  return true;
}

}  // namespace razorbus::svc

// campaignd's scheduler: durable queue + content-hash result cache over
// the core::CampaignSpec job expansion (docs/campaignd.md).
//
// CampaignService turns a campaign's expanded ScenarioJobs into queue
// records keyed by core::job_content_hash, then drives worker lanes that
// each loop {claim -> cache lookup -> run-one subprocess -> record}. A
// cache hit replays the stored report bytes verbatim (zero simulated
// cycles, byte-identical BENCH_<job>.json); a miss shells out to the
// runner binary's `run-one`, records the fresh report and inserts it into
// the cache. All queue and cache state lives on disk, so a killed worker
// resumes without re-running completed jobs, additional `campaignd
// worker` processes can attach to the same queue and steal work, and CI
// runs share results through the cache directory.
//
// The service's own accounting (wall time, throughput, status snapshots)
// reads the host clock; simulation results never do — they come from the
// run-one children, whose determinism contract (DESIGN.md §9) is exactly
// what makes the result cache sound.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/scenario_spec.hpp"
#include "svc/queue.hpp"
#include "svc/result_cache.hpp"
#include "util/thread_annotations.hpp"

namespace razorbus::svc {

struct ServiceConfig {
  std::string out_dir;     // spec/report/log files land here
  std::string queue_dir;   // default <out_dir>/queue
  std::string cache_dir;   // default <out_dir>/cache
  std::string status_path; // default <out_dir>/status.json
  // Binary whose `run-one <spec> --json=<report>` executes one job (the
  // `campaign` client passes itself; campaignd defaults to its sibling).
  std::string runner;
  unsigned workers = 1;    // claim loops (ThreadPool lanes) in this process
  bool force = false;      // ignore done records AND cache entries
  std::size_t max_jobs = 0;  // stop after claiming this many jobs (0 = all)
  // Shard-manifest mode for multi-host splits: keep only jobs with
  // hash % shard_count == shard_index. Hosts share the result cache (rsync
  // or a shared mount), not the queue (docs/campaignd.md).
  int shard_index = -1;
  int shard_count = 0;
  bool verbose = true;     // per-job progress lines on stdout
};

class CampaignService {
 public:
  // What a run() accomplished, for summaries and exit codes.
  struct Summary {
    std::size_t jobs_total = 0;    // queued jobs (after shard filtering)
    std::size_t cached_prior = 0;  // already done when prepare() reconciled
    std::uint64_t cache_hits = 0;  // replayed from the result cache
    std::uint64_t cache_misses = 0;
    std::size_t executed = 0;      // run-one children actually spawned
    std::size_t failed = 0;        // jobs whose outcome is "failed"
    double executed_cycles = 0.0;  // sum of "cycles" over executed reports
    double wall_seconds = 0.0;
    bool drained = false;          // every queued job has an outcome
  };

  // Full mode: owns the campaign, writes spec files, reconciles and
  // enqueues. `jobs` is the core::expand_campaign cross product.
  CampaignService(core::CampaignSpec campaign, std::vector<core::ScenarioJob> jobs,
                  ServiceConfig config);

  // Attach mode (`campaignd worker`): joins the queue another process
  // prepared and steals work from it. No campaign spec, no prepare().
  explicit CampaignService(ServiceConfig config);

  // Reconciles the queue with the expanded jobs and enqueues them:
  //  - a valid done record (status ok, hash matches, report parses) keeps
  //    the job done — the resume path, counted as cached_prior;
  //  - --force, a hash mismatch (spec or trace or code version drift), a
  //    failed outcome, or a missing/torn report resets the job to pending
  //    (torn-report tolerance: skip + re-run, like PointStore);
  //  - queue records for jobs no longer in the campaign are dropped.
  // Returns the number of jobs resumed as already-done.
  std::size_t prepare();

  // Drives `workers` claim loops until the queue drains or the max_jobs
  // budget is exhausted, writing a status snapshot on every transition.
  Summary run();

  // Consolidated campaign report (BENCH_campaign.json shape: campaign /
  // description / out_dir / jobs / cached / wall_seconds / cache stats /
  // scenarios), built from the done records and per-job report files.
  // Full mode only.
  Json aggregate() const;

  // The machine-readable status surface (docs/campaignd.md): per-job
  // states plus cache hit rate and throughput. Also written atomically to
  // `status_path` while running.
  Json status_json() const;

  const ServiceConfig& config() const { return config_; }
  JobQueue& queue() { return queue_; }
  ResultCache& cache() { return cache_; }

 private:
  enum class JobState { pending, running, ok, failed };

  void run_job(const QueueJob& job, const std::string& worker_id);
  void set_state(const std::string& name, JobState state, bool cached);
  void write_status() const;
  Json status_json_locked() const REQUIRES(mutex_);

  core::CampaignSpec campaign_;
  std::vector<core::ScenarioJob> jobs_;  // shard-filtered in full mode
  ServiceConfig config_;
  JobQueue queue_;
  ResultCache cache_;
  bool attached_ = false;

  mutable util::Mutex mutex_;
  // std::map: status snapshots iterate deterministically.
  std::map<std::string, std::pair<JobState, bool>> states_ GUARDED_BY(mutex_);
  Summary summary_ GUARDED_BY(mutex_);
  std::size_t claims_ GUARDED_BY(mutex_) = 0;    // max_jobs budget accounting
  std::size_t finished_ GUARDED_BY(mutex_) = 0;  // progress-line numerator
  double started_at_ GUARDED_BY(mutex_) = -1.0;  // monotonic seconds; -1 = not run
};

}  // namespace razorbus::svc

// Content-addressed cache of completed campaign-job reports
// (docs/campaignd.md).
//
// Entries are keyed by core::job_content_hash — a hash of the resolved
// spec JSON, any trace-file bytes, the simulator version and the hash
// scheme version — and hold the report bytes VERBATIM. Because job results
// are bit-identical across hosts, thread counts and reruns (DESIGN.md §9),
// a hit can be replayed by copying the stored bytes to the report path:
// the replayed BENCH_<job>.json is byte-identical to what a fresh
// simulation would have written, which tests and the CI campaign-cache leg
// assert. This is lut::PointStore's entry-format idea lifted from single
// characterization points to whole campaign jobs; the directory is shared
// across campaigns, CI runs (via actions/cache) and — rsynced — hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/thread_annotations.hpp"

namespace razorbus::svc {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;     // lookups answered from the cache
    std::uint64_t misses = 0;   // lookups that required a simulation
    std::uint64_t inserts = 0;  // reports stored after fresh runs
  };

  // Opens (or creates) the cache directory. Entries live as
  // <dir>/r_<hash_hex>.json, written atomically.
  explicit ResultCache(std::string dir);

  // The stored report bytes for a job hash, or nullopt on miss. A torn or
  // corrupt entry (crash before an atomic publish, foreign debris) fails
  // JSON validation and counts as a miss — it is removed so the fresh
  // result can replace it.
  std::optional<std::string> lookup(const std::string& hash_hex);

  // Stores a completed report's bytes under its job hash (atomic,
  // last-writer-wins; both writers hold identical bytes by determinism).
  // Rejects bytes that do not parse as JSON — a torn source file must not
  // poison the cache.
  void insert(const std::string& hash_hex, const std::string& report_bytes);

  Stats stats() const;

  std::string entry_path(const std::string& hash_hex) const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  mutable util::Mutex mutex_;
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace razorbus::svc

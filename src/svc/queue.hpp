// Durable on-disk job queue for the campaign service (docs/campaignd.md).
//
// The queue is a directory of small JSON files — no daemon state, no locks
// held across crashes — organised so that every transition is one atomic
// filesystem operation:
//
//   <dir>/jobs/<name>.json     the job record (atomic temp+rename)
//   <dir>/claims/<name>.claim  exclusive claim (O_CREAT|O_EXCL) by a worker
//   <dir>/done/<name>.json     outcome record (atomic temp+rename)
//
// A job is PENDING when it has a record but no done file, RUNNING while a
// live worker holds its claim, and DONE once the outcome record exists.
// Claim creation uses O_CREAT|O_EXCL, which the filesystem guarantees to
// succeed for exactly one contender — that single syscall is the whole
// work-stealing protocol: any number of worker processes can point at one
// queue directory and each job runs exactly once. A claim whose recorded
// pid is dead (worker killed mid-job) is stale; the next claimant removes
// it and re-claims through the same O_EXCL gate, which is what makes a
// campaign resumable after `kill -9`.
//
// Liveness probing is per-host (kill(pid, 0)), so one queue directory
// serves the workers of ONE host. Multi-host splits partition jobs by
// content hash instead (`campaignd manifest`) — hosts share the result
// cache, not the queue.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace razorbus::svc {

// One enqueued unit of work: a named job plus the file locations its
// execution reads and writes. The content hash ties the job to its result
// cache entry and lets a resumed queue detect spec drift.
struct QueueJob {
  std::string name;
  std::string hash_hex;     // core::job_hash_hex of the expanded job
  std::string spec_path;    // resolved ScenarioSpec JSON for `run-one`
  std::string report_path;  // BENCH_<name>.json destination
  std::string log_path;     // captured stdout/stderr of the worker child

  Json to_json() const;
  static QueueJob from_json(const Json& json);
};

class JobQueue {
 public:
  // Opens (or creates) the queue rooted at `dir`.
  explicit JobQueue(std::string dir);

  // Publishes (or overwrites) a job record. Idempotent: re-enqueueing the
  // same name replaces the record atomically without touching its claim or
  // done state.
  void enqueue(const QueueJob& job);

  // Every parseable job record, sorted by name (deterministic order). A
  // torn record — crash before its first atomic publish completed — is
  // skipped, matching the PointStore load contract.
  std::vector<QueueJob> jobs() const;

  // Claims the first (by name) job that is neither done nor claimed by a
  // live worker, recording `worker_id` and this process's pid in the claim
  // file. Returns nullopt when nothing is claimable right now (all done,
  // or every remaining job is claimed by live workers).
  std::optional<QueueJob> claim(const std::string& worker_id);

  // Records a job's outcome (atomic) and releases its claim. `record`
  // must at least carry "status": "ok" | "failed".
  void complete(const std::string& name, const Json& record);

  // Drops a claim without recording an outcome (tests / error unwinding).
  void release(const std::string& name);

  bool is_done(const std::string& name) const;
  // The outcome record, or nullopt when missing or torn.
  std::optional<Json> done_record(const std::string& name) const;

  // Clears a job's done + claim state so it runs again (spec drift,
  // --force, or a done record whose report went missing).
  void reset(const std::string& name);

  // Drops the job record itself along with its claim/done state — used
  // when reconciling a queue against a campaign that no longer contains
  // the job.
  void remove(const std::string& name);

  std::size_t done_count() const;
  bool all_done() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::string jobs_dir_;
  std::string claims_dir_;
  std::string done_dir_;
};

}  // namespace razorbus::svc

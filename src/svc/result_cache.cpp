#include "svc/result_cache.hpp"

#include <filesystem>
#include <system_error>

#include "svc/fsio.hpp"
#include "util/json.hpp"

namespace razorbus::svc {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
}

std::string ResultCache::entry_path(const std::string& hash_hex) const {
  return (fs::path(dir_) / ("r_" + hash_hex + ".json")).string();
}

std::optional<std::string> ResultCache::lookup(const std::string& hash_hex) {
  const std::string path = entry_path(hash_hex);
  std::optional<std::string> bytes;
  try {
    std::string content = read_file(path);
    Json::parse(content);  // torn/corrupt entry -> miss
    bytes = std::move(content);
  } catch (const std::exception&) {
    bytes = std::nullopt;
  }
  if (!bytes) {
    // Remove debris so insert()'s atomic rename lands on a clean slot.
    std::error_code ec;
    fs::remove(path, ec);
  }
  util::MutexLock lock(mutex_);
  if (bytes)
    ++stats_.hits;
  else
    ++stats_.misses;
  return bytes;
}

void ResultCache::insert(const std::string& hash_hex,
                         const std::string& report_bytes) {
  Json::parse(report_bytes);  // throws: never cache an unparseable report
  write_file_atomic(entry_path(hash_hex), report_bytes);
  util::MutexLock lock(mutex_);
  ++stats_.inserts;
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace razorbus::svc

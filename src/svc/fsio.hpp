// Filesystem primitives shared by the campaign service (docs/campaignd.md).
//
// Everything campaignd persists — queue records, claims, done records,
// cache entries, status snapshots, replayed reports — goes through
// write_file_atomic: a private temp file renamed over the final path, the
// same crash/concurrency contract as the LUT table cache and point store.
// A reader therefore sees either the previous complete file or the new
// complete file, never a torn one; torn files can only be left by a crash
// BEFORE the rename, and every campaignd reader tolerates those by
// treating an unparseable file as absent.
#pragma once

#include <string>

namespace razorbus::svc {

// Reads a whole file; throws std::runtime_error when it cannot be opened.
std::string read_file(const std::string& path);

// Writes `content` to a sibling temp file and renames it over `path`.
// Throws std::runtime_error when the write or rename fails.
void write_file_atomic(const std::string& path, const std::string& content);

// POSIX-shell single-quoting: inhibits every expansion, survives spaces,
// '$', backticks and double quotes in operator-supplied paths.
std::string shell_quote(const std::string& s);

}  // namespace razorbus::svc

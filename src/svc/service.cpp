#include "svc/service.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <system_error>
#include <thread>
#include <utility>

#include "core/job_hash.hpp"
#include "svc/fsio.hpp"
#include "util/parallel.hpp"

namespace razorbus::svc {

namespace fs = std::filesystem;

namespace {

// razorlint: allow(no-wallclock): service wall-time/throughput accounting —
// reported in status files and summaries, never fed into simulation state.
using ServiceClock = std::chrono::steady_clock;

// Seconds on a monotonic clock with an arbitrary origin; only differences
// are ever reported.
double now_seconds() {
  return std::chrono::duration<double>(ServiceClock::now().time_since_epoch()).count();
}

void print_log_tail(const std::string& log_path) {
  std::ifstream log(log_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(log, line);) lines.push_back(line);
  for (std::size_t i = lines.size() > 10 ? lines.size() - 10 : 0; i < lines.size(); ++i)
    std::printf("    %s\n", lines[i].c_str());
}

ServiceConfig resolve(ServiceConfig config) {
  if (config.out_dir.empty()) config.out_dir = "campaign_out";
  if (config.queue_dir.empty())
    config.queue_dir = (fs::path(config.out_dir) / "queue").string();
  if (config.cache_dir.empty())
    config.cache_dir = (fs::path(config.out_dir) / "cache").string();
  if (config.status_path.empty())
    config.status_path = (fs::path(config.out_dir) / "status.json").string();
  if (config.workers == 0) config.workers = 1;
  return config;
}

}  // namespace

CampaignService::CampaignService(core::CampaignSpec campaign,
                                 std::vector<core::ScenarioJob> jobs,
                                 ServiceConfig config)
    : campaign_(std::move(campaign)),
      config_(resolve(std::move(config))),
      queue_(config_.queue_dir),
      cache_(config_.cache_dir) {
  // Shard-manifest mode: this host keeps only its hash-assigned subset.
  if (config_.shard_count > 0) {
    for (auto& job : jobs) {
      const auto shard = static_cast<int>(core::job_content_hash(job) %
                                          static_cast<std::uint64_t>(config_.shard_count));
      if (shard == config_.shard_index) jobs_.push_back(std::move(job));
    }
  } else {
    jobs_ = std::move(jobs);
  }
}

CampaignService::CampaignService(ServiceConfig config)
    : config_(resolve(std::move(config))),
      queue_(config_.queue_dir),
      cache_(config_.cache_dir),
      attached_(true) {}

std::size_t CampaignService::prepare() {
  fs::create_directories(config_.out_dir);
  if (!attached_)
    write_file_atomic((fs::path(config_.out_dir) / "campaign.json").string(),
                      campaign_.to_json().dump(2) + "\n");

  // Drop queue records for jobs the (possibly edited) campaign no longer
  // expands to, so all_done() converges on the current job set.
  std::set<std::string> wanted;
  for (const auto& job : jobs_) wanted.insert(job.name);
  for (const QueueJob& stale : queue_.jobs())
    if (!wanted.count(stale.name)) queue_.remove(stale.name);

  std::size_t cached_prior = 0;
  for (const auto& job : jobs_) {
    QueueJob record;
    record.name = job.name;
    record.hash_hex = core::job_hash_hex(job);
    record.spec_path =
        (fs::path(config_.out_dir) / (job.name + ".spec.json")).string();
    record.report_path =
        (fs::path(config_.out_dir) / ("BENCH_" + job.name + ".json")).string();
    record.log_path = (fs::path(config_.out_dir) / (job.name + ".log")).string();
    write_file_atomic(record.spec_path, job.spec.to_json().dump(2) + "\n");

    // Reconcile this job's previous outcome, if any. A job resumes as done
    // only when its recorded content hash still matches (the spec, its
    // trace bytes and the code version are unchanged) AND its report file
    // parses — a truncated/corrupt partial report is skipped and re-run,
    // the same tolerance PointStore applies to its cache files.
    bool done = false;
    if (!config_.force) {
      if (const auto outcome = queue_.done_record(job.name)) {
        const Json* status = outcome->find("status");
        const Json* hash = outcome->find("hash");
        const bool ok = status != nullptr && status->is_string() &&
                        status->as_string() == "ok" && hash != nullptr &&
                        hash->is_string() && hash->as_string() == record.hash_hex;
        bool report_parses = false;
        if (ok) {
          try {
            Json::parse_file(record.report_path);
            report_parses = true;
          } catch (const std::exception&) {
            report_parses = false;
          }
        }
        done = ok && report_parses;
      }
    }
    if (!done) {
      queue_.reset(job.name);
      std::error_code ec;
      fs::remove(record.report_path, ec);
    } else {
      ++cached_prior;
      if (config_.verbose) std::printf("  [cached] %s\n", job.name.c_str());
    }
    queue_.enqueue(record);

    util::MutexLock lock(mutex_);
    states_[job.name] = {done ? JobState::ok : JobState::pending, done};
  }

  {
    util::MutexLock lock(mutex_);
    summary_.jobs_total = jobs_.size();
    summary_.cached_prior = cached_prior;
  }
  write_status();
  return cached_prior;
}

CampaignService::Summary CampaignService::run() {
  {
    util::MutexLock lock(mutex_);
    if (attached_) summary_.jobs_total = queue_.jobs().size();
    started_at_ = now_seconds();
  }
  write_status();

  const std::string worker_stem = "pid" + std::to_string(::getpid());
  util::ThreadPool pool(config_.workers);
  pool.parallel_for(config_.workers, [&](std::size_t lane) {
    const std::string worker_id = worker_stem + ".lane" + std::to_string(lane);
    while (true) {
      {
        util::MutexLock lock(mutex_);
        if (config_.max_jobs > 0 && claims_ >= config_.max_jobs) break;
      }
      std::optional<QueueJob> job = queue_.claim(worker_id);
      if (!job) {
        if (queue_.all_done()) break;
        // Jobs remain but are claimed by live workers (this process's
        // other lanes or attached campaignd workers): wait for outcomes.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      {
        util::MutexLock lock(mutex_);
        ++claims_;
      }
      run_job(*job, worker_id);
    }
  });

  Summary out;
  {
    util::MutexLock lock(mutex_);
    summary_.wall_seconds = now_seconds() - started_at_;
    summary_.drained = queue_.all_done();
    out = summary_;
  }
  write_status();
  return out;
}

void CampaignService::run_job(const QueueJob& job, const std::string& worker_id) {
  set_state(job.name, JobState::running, false);

  // Result-cache fast path: a prior run of this exact job (any campaign,
  // any host, any CI run sharing the cache dir) already produced the
  // report — replay its bytes verbatim. Byte-identity is guaranteed by
  // the determinism contract, asserted by tests and the CI cache leg.
  if (!config_.force) {
    if (const auto bytes = cache_.lookup(job.hash_hex)) {
      write_file_atomic(job.report_path, *bytes);
      Json outcome = Json::object();
      outcome.set("name", job.name);
      outcome.set("hash", job.hash_hex);
      outcome.set("status", "ok");
      outcome.set("cached", true);
      outcome.set("worker", worker_id);
      queue_.complete(job.name, outcome);
      std::size_t finished = 0, total = 0;
      {
        util::MutexLock lock(mutex_);
        ++summary_.cache_hits;
        finished = ++finished_;
        total = summary_.jobs_total;
      }
      set_state(job.name, JobState::ok, true);
      if (config_.verbose) {
        std::printf("  [%zu/%zu] cache-hit %s\n", finished, total, job.name.c_str());
        std::fflush(stdout);
      }
      return;
    }
    util::MutexLock lock(mutex_);
    ++summary_.cache_misses;
  }

  const std::string cmd = shell_quote(config_.runner) + " run-one " +
                          shell_quote(job.spec_path) + " " +
                          shell_quote("--json=" + job.report_path) + " > " +
                          shell_quote(job.log_path) + " 2>&1";
  const int status = std::system(cmd.c_str());

  bool ok = status == 0;
  std::string report_bytes;
  double cycles = 0.0;
  if (ok) {
    try {
      report_bytes = read_file(job.report_path);
      const Json report = Json::parse(report_bytes);
      if (const Json* c = report.find("cycles"); c != nullptr && c->is_number())
        cycles = c->as_double();
    } catch (const std::exception&) {
      ok = false;  // child exited 0 but left no parseable report
    }
  }
  if (ok) cache_.insert(job.hash_hex, report_bytes);

  Json outcome = Json::object();
  outcome.set("name", job.name);
  outcome.set("hash", job.hash_hex);
  outcome.set("status", ok ? "ok" : "failed");
  outcome.set("cached", false);
  outcome.set("worker", worker_id);
  if (ok) outcome.set("cycles", cycles);
  queue_.complete(job.name, outcome);

  std::size_t finished = 0, total = 0;
  {
    util::MutexLock lock(mutex_);
    ++summary_.executed;
    if (!ok) ++summary_.failed;
    summary_.executed_cycles += cycles;
    finished = ++finished_;
    total = summary_.jobs_total;
  }
  set_state(job.name, ok ? JobState::ok : JobState::failed, false);
  if (config_.verbose) {
    std::printf("  [%zu/%zu] %s %s\n", finished, total, ok ? "done" : "FAILED",
                job.name.c_str());
    std::fflush(stdout);
    if (!ok) {
      std::printf("\n%s failed; last lines of %s:\n", job.name.c_str(),
                  job.log_path.c_str());
      print_log_tail(job.log_path);
    }
  }
}

Json CampaignService::aggregate() const {
  Json aggregate = Json::object();
  Json scenarios = Json::object();
  {
    util::MutexLock lock(mutex_);
    aggregate.set("campaign", campaign_.name);
    if (!campaign_.description.empty())
      aggregate.set("description", campaign_.description);
    aggregate.set("out_dir", config_.out_dir);
    aggregate.set("jobs", static_cast<long long>(summary_.jobs_total));
    // "cached" counts every job that produced its report without running a
    // simulation this invocation: resumed-as-done plus result-cache hits.
    aggregate.set("cached", static_cast<long long>(summary_.cached_prior +
                                                   summary_.cache_hits));
    aggregate.set("wall_seconds", summary_.wall_seconds);
    Json cache = Json::object();
    cache.set("prior_done", static_cast<long long>(summary_.cached_prior));
    cache.set("hits", static_cast<long long>(summary_.cache_hits));
    cache.set("misses", static_cast<long long>(summary_.cache_misses));
    aggregate.set("cache", std::move(cache));
    aggregate.set("executed", static_cast<long long>(summary_.executed));
    aggregate.set("failed", static_cast<long long>(summary_.failed));
    aggregate.set("executed_cycles", summary_.executed_cycles);
  }
  for (const QueueJob& job : queue_.jobs()) {
    const auto outcome = queue_.done_record(job.name);
    if (!outcome) continue;
    const Json* status = outcome->find("status");
    if (status == nullptr || !status->is_string() || status->as_string() != "ok")
      continue;
    try {
      scenarios.set(job.name, Json::parse_file(job.report_path));
    } catch (const std::exception&) {
      // Report vanished between completion and aggregation; leave it out.
    }
  }
  aggregate.set("scenarios", std::move(scenarios));
  return aggregate;
}

Json CampaignService::status_json() const {
  util::MutexLock lock(mutex_);
  return status_json_locked();
}

Json CampaignService::status_json_locked() const {
  std::size_t pending = 0, running = 0, done = 0, failed = 0;
  Json jobs = Json::object();
  for (const auto& [name, state] : states_) {
    const char* label = "pending";
    switch (state.first) {
      case JobState::pending: ++pending; label = "pending"; break;
      case JobState::running: ++running; label = "running"; break;
      case JobState::ok: ++done; label = state.second ? "done (cached)" : "done"; break;
      case JobState::failed: ++failed; label = "failed"; break;
    }
    jobs.set(name, label);
  }

  const double wall = started_at_ >= 0.0 ? now_seconds() - started_at_ : 0.0;
  const auto finished = static_cast<double>(summary_.cache_hits) +
                        static_cast<double>(summary_.executed);
  const double lookups = static_cast<double>(summary_.cache_hits) +
                         static_cast<double>(summary_.cache_misses);

  Json status = Json::object();
  status.set("campaign", campaign_.name);
  status.set("out_dir", config_.out_dir);
  status.set("queue_dir", config_.queue_dir);
  status.set("cache_dir", config_.cache_dir);
  status.set("jobs_total", static_cast<long long>(summary_.jobs_total));
  status.set("pending", static_cast<long long>(pending));
  status.set("running", static_cast<long long>(running));
  status.set("done", static_cast<long long>(done));
  status.set("failed", static_cast<long long>(failed));
  status.set("cached_prior", static_cast<long long>(summary_.cached_prior));
  status.set("cache_hits", static_cast<long long>(summary_.cache_hits));
  status.set("cache_misses", static_cast<long long>(summary_.cache_misses));
  status.set("cache_hit_rate", lookups > 0.0
                                   ? static_cast<double>(summary_.cache_hits) / lookups
                                   : 0.0);
  status.set("executed", static_cast<long long>(summary_.executed));
  status.set("executed_cycles", summary_.executed_cycles);
  status.set("wall_seconds", wall);
  status.set("jobs_per_second", wall > 0.0 ? finished / wall : 0.0);
  status.set("jobs", std::move(jobs));
  return status;
}

void CampaignService::set_state(const std::string& name, JobState state,
                                bool cached) {
  {
    util::MutexLock lock(mutex_);
    states_[name] = {state, cached};
  }
  write_status();
}

void CampaignService::write_status() const {
  std::string text;
  {
    util::MutexLock lock(mutex_);
    text = status_json_locked().dump(2) + "\n";
  }
  try {
    write_file_atomic(config_.status_path, text);
  } catch (const std::exception&) {
    // Best-effort surface: an unwritable status file must not fail jobs.
  }
}

}  // namespace razorbus::svc

#include "gatesim/gatesim.hpp"

#include <stdexcept>

namespace razorbus::gatesim {

NetId Netlist::add_net(std::string name, bool initial) {
  nets_.push_back({std::move(name), initial, {}});
  return nets_.size() - 1;
}

std::size_t Netlist::add_gate(GateKind kind, NetId out, NetId a, NetId b, NetId c,
                              double delay) {
  if (out >= nets_.size()) throw std::invalid_argument("gate: bad output net");
  if (delay <= 0.0) throw std::invalid_argument("gate: non-positive delay");
  Gate gate{kind, out, {a, b, c}, delay};
  const std::size_t index = gates_.size();
  for (const NetId in : gate.in) {
    if (in == kNoNet) continue;
    if (in >= nets_.size()) throw std::invalid_argument("gate: bad input net");
    nets_[in].fanout.push_back(index);
  }
  // Validate arity.
  const int needed = (kind == GateKind::buf || kind == GateKind::inv) ? 1
                     : (kind == GateKind::mux2) ? 3
                                                : 2;
  for (int i = 0; i < needed; ++i)
    if (gate.in[static_cast<std::size_t>(i)] == kNoNet)
      throw std::invalid_argument("gate: missing input");
  gates_.push_back(gate);
  return index;
}

Simulator::Simulator(const Netlist& netlist) : netlist_(netlist) {
  values_.resize(netlist_.net_count());
  history_.resize(netlist_.net_count());
  for (NetId n = 0; n < netlist_.net_count(); ++n) {
    values_[n] = netlist_.initial_value(n);
    history_[n].push_back({0.0, values_[n]});
  }
}

bool Simulator::evaluate(const Gate& gate) const {
  const bool a = gate.in[0] != kNoNet && values_[gate.in[0]];
  const bool b = gate.in[1] != kNoNet && values_[gate.in[1]];
  const bool c = gate.in[2] != kNoNet && values_[gate.in[2]];
  switch (gate.kind) {
    case GateKind::buf: return a;
    case GateKind::inv: return !a;
    case GateKind::and2: return a && b;
    case GateKind::or2: return a || b;
    case GateKind::xor2: return a != b;
    case GateKind::nand2: return !(a && b);
    case GateKind::mux2: return c ? b : a;
    case GateKind::latch: return b ? a : values_[gate.out];  // transparent on en
  }
  return false;
}

void Simulator::enqueue_external(NetId net, double time, bool value) {
  queue_.push(Event{time, seq_++, false, 0, net, value});
}

void Simulator::enqueue_gate(std::size_t gate, double time) {
  queue_.push(Event{time, seq_++, true, gate, 0, false});
}

void Simulator::schedule(NetId net, double time, bool value) {
  if (net >= netlist_.net_count()) throw std::invalid_argument("schedule: bad net");
  enqueue_external(net, time, value);
}

void Simulator::schedule_clock(NetId net, double period, double first_rise,
                               double t_stop) {
  if (period <= 0.0) throw std::invalid_argument("schedule_clock: bad period");
  for (double t = first_rise; t < t_stop; t += period) {
    enqueue_external(net, t, true);
    enqueue_external(net, t + period / 2.0, false);
  }
}

void Simulator::apply(NetId net, bool value) {
  if (values_[net] == value) return;
  values_[net] = value;
  history_[net].push_back({now_, value});
  for (const std::size_t gi : netlist_.fanout(net)) {
    const Gate& gate = netlist_.gates()[gi];
    // Re-evaluated when the event fires; here we only check whether a
    // change is plausible to keep the queue small.
    if (evaluate(gate) != values_[gate.out]) enqueue_gate(gi, now_ + gate.delay);
  }
}

void Simulator::run(double t_stop) {
  while (!queue_.empty() && queue_.top().time <= t_stop) {
    const Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    if (event.is_gate) {
      const Gate& gate = netlist_.gates()[event.gate];
      apply(gate.out, evaluate(gate));
    } else {
      apply(event.net, event.value);
    }
  }
  now_ = t_stop;
}

bool Simulator::value_at(NetId net, double time) const {
  const auto& events = history_.at(net);
  bool value = events.front().value;
  for (const auto& tr : events) {
    if (tr.time > time) break;
    value = tr.value;
  }
  return value;
}

}  // namespace razorbus::gatesim

// Gate-level double-sampling flip-flop (paper Fig. 2).
//
// Structure:
//   * master latch — transparent while clk is LOW; its data input comes
//     through the restore mux (normal path: D; restore path: shadow value,
//     selected by Error_L);
//   * slave latch — transparent while clk is HIGH; its output is Q;
//   * shadow latch — transparent while the DELAYED clock is low, so it
//     keeps sampling D for `shadow delay` after the main rising edge;
//   * Error_L = XOR(Q, shadow).
//
// When D meets setup at the rising edge, master/slave/shadow agree and
// Error_L stays low. When D arrives after the edge but before the delayed
// clock closes, the shadow latch has the right value, Error_L rises, the
// mux steers the shadow value into the master during the next low phase,
// and the following rising edge publishes the corrected Q — exactly the
// recovery sequence of the paper.
#pragma once

#include "gatesim/gatesim.hpp"

namespace razorbus::gatesim {

struct DsffNets {
  NetId d;        // data input (primary input)
  NetId clk;      // main clock (primary input)
  NetId clk_del;  // delayed clock (primary input)
  NetId q;        // slave output
  NetId shadow;   // shadow latch output
  NetId error_l;  // local error signal
  NetId master;   // master latch output (internal, exposed for tests)
};

// Builds the flop into `netlist` and returns its nets. `gate_delay` applies
// to every latch/gate in the flop.
DsffNets build_dsff(Netlist& netlist, double gate_delay = 10e-12);

// Drives clk/clk_del with the paper's timing (clock `period`, shadow clock
// delayed by `shadow_delay`) until `t_stop`.
void drive_dsff_clocks(Simulator& sim, const DsffNets& nets, double period,
                       double shadow_delay, double t_stop, double first_rise);

}  // namespace razorbus::gatesim

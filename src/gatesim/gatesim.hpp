// Event-driven gate-level logic simulator.
//
// Small digital substrate used to validate the double-sampling flip-flop of
// paper Fig. 2 at the latch/gate level (the architectural experiments use
// the behavioural model in src/razor; this module demonstrates that the
// behavioural contract — clean capture / corrected / restore-through-mux —
// follows from the circuit structure itself).
//
// Semantics: two-valued logic, per-gate inertial-free propagation delays,
// last-write-wins event queue. Level-sensitive latches are first-class
// (they are the heart of the Razor flop).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <vector>

namespace razorbus::gatesim {

using NetId = std::size_t;
constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

enum class GateKind {
  buf,    // out = a
  inv,    // out = !a
  and2,   // out = a & b
  or2,    // out = a | b
  xor2,   // out = a ^ b
  nand2,  // out = !(a & b)
  mux2,   // out = sel ? b : a     (inputs: a, b, sel)
  latch,  // out follows d while en is high, holds while en is low (inputs: d, en)
};

struct Gate {
  GateKind kind;
  NetId out;
  std::array<NetId, 3> in{kNoNet, kNoNet, kNoNet};
  double delay;  // seconds from input change to output change
};

class Netlist {
 public:
  NetId add_net(std::string name, bool initial = false);
  // Returns the gate index. Unused inputs stay kNoNet.
  std::size_t add_gate(GateKind kind, NetId out, NetId a, NetId b = kNoNet,
                       NetId c = kNoNet, double delay = 10e-12);

  std::size_t net_count() const { return nets_.size(); }
  bool initial_value(NetId n) const { return nets_[n].initial; }
  const std::string& net_name(NetId n) const { return nets_[n].name; }
  const std::vector<Gate>& gates() const { return gates_; }

  // Gate indices that read net `n` (fanout list).
  const std::vector<std::size_t>& fanout(NetId n) const { return nets_[n].fanout; }

 private:
  struct Net {
    std::string name;
    bool initial;
    std::vector<std::size_t> fanout;
  };
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
};

// A recorded value change on a net.
struct Transition {
  double time;
  bool value;
};

class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  // External stimulus: drive `net` to `value` at `time` (overrides gates —
  // use only for primary inputs).
  void schedule(NetId net, double time, bool value);
  // Convenience: a square clock on `net`, first rising edge at `first_rise`.
  void schedule_clock(NetId net, double period, double first_rise, double t_stop);

  // Run until `t_stop` (events beyond it stay queued).
  void run(double t_stop);

  bool value(NetId net) const { return values_[net]; }
  // Value the net held at `time` (from the recorded history).
  bool value_at(NetId net, double time) const;
  const std::vector<Transition>& history(NetId net) const { return history_[net]; }

 private:
  // Two event kinds: external pin drives (net + value fixed at schedule
  // time) and gate re-evaluations (the gate's output is computed at FIRE
  // time from the then-current input values, so stale intermediate values
  // cannot propagate).
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for equal times
    bool is_gate;
    std::size_t gate;  // when is_gate
    NetId net;         // when !is_gate
    bool value;        // when !is_gate
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  bool evaluate(const Gate& gate) const;
  void apply(NetId net, bool value);
  void enqueue_external(NetId net, double time, bool value);
  void enqueue_gate(std::size_t gate, double time);

  const Netlist& netlist_;
  std::vector<bool> values_;
  std::vector<std::vector<Transition>> history_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

}  // namespace razorbus::gatesim

#include "gatesim/dsff.hpp"

namespace razorbus::gatesim {

DsffNets build_dsff(Netlist& netlist, double gate_delay) {
  DsffNets nets;
  nets.d = netlist.add_net("d");
  nets.clk = netlist.add_net("clk");
  nets.clk_del = netlist.add_net("clk_del");

  const NetId clk_b = netlist.add_net("clk_b", true);        // !clk (clk starts low)
  const NetId clk_del_b = netlist.add_net("clk_del_b", true);
  const NetId mux_out = netlist.add_net("mux_out");
  nets.master = netlist.add_net("master");
  nets.q = netlist.add_net("q");
  nets.shadow = netlist.add_net("shadow");
  nets.error_l = netlist.add_net("error_l");

  netlist.add_gate(GateKind::inv, clk_b, nets.clk, kNoNet, kNoNet, gate_delay / 2.0);
  netlist.add_gate(GateKind::inv, clk_del_b, nets.clk_del, kNoNet, kNoNet,
                   gate_delay / 2.0);

  // Restore mux in the master's data path: Error_L selects the shadow value.
  netlist.add_gate(GateKind::mux2, mux_out, nets.d, nets.shadow, nets.error_l,
                   gate_delay);
  // Master latch: transparent while clk low.
  netlist.add_gate(GateKind::latch, nets.master, mux_out, clk_b, kNoNet, gate_delay);
  // Slave latch: transparent while clk high; output is Q.
  netlist.add_gate(GateKind::latch, nets.q, nets.master, nets.clk, kNoNet, gate_delay);
  // Shadow latch: transparent while the delayed clock is low, closing at
  // (rising edge + shadow delay).
  netlist.add_gate(GateKind::latch, nets.shadow, nets.d, clk_del_b, kNoNet, gate_delay);
  // Error_L = XOR of slave and shadow contents.
  netlist.add_gate(GateKind::xor2, nets.error_l, nets.q, nets.shadow, kNoNet, gate_delay);
  return nets;
}

void drive_dsff_clocks(Simulator& sim, const DsffNets& nets, double period,
                       double shadow_delay, double t_stop, double first_rise) {
  sim.schedule_clock(nets.clk, period, first_rise, t_stop);
  sim.schedule_clock(nets.clk_del, period, first_rise + shadow_delay, t_stop);
}

}  // namespace razorbus::gatesim

// Voltage regulator with ramp delay (paper Fig. 7).
//
// Regulators adjust slowly (~1 us per 10 mV); the paper models this as the
// 20 mV step taking effect 2 us (3000 cycles at 1.5 GHz) after the
// controller's decision. Until then the bus keeps running at the old
// voltage — which is why instantaneous error rates can overshoot the
// target band (Fig. 8).
#pragma once

#include <cstdint>
#include <optional>

namespace razorbus::dvs {

class VoltageRegulator {
 public:
  // `delay_cycles`: cycles between a request and the new voltage taking
  // effect. `vmin`/`vmax`: hard output clamps (vmin is the shadow-latch
  // safety floor, vmax the nominal supply).
  VoltageRegulator(double initial, double vmin, double vmax,
                   std::uint64_t delay_cycles);

  double voltage() const { return voltage_; }
  double vmin() const { return vmin_; }
  double vmax() const { return vmax_; }
  bool change_pending() const { return pending_.has_value(); }

  // Cycle at which the pending change takes effect; kNoPendingChange when
  // none is in flight. Lets batched drivers run the span up to the next
  // voltage event in one go.
  static constexpr std::uint64_t kNoPendingChange = ~0ull;
  std::uint64_t next_change_cycle() const {
    return pending_ ? pending_->apply_at : kNoPendingChange;
  }

  // Request a voltage change of `delta` volts at cycle `now`. Ignored when
  // a change is already in flight (the paper's controller polls every
  // 10,000 cycles with a 3,000-cycle ramp, so this cannot happen there).
  // The applied target is clamped to [vmin, vmax]. Returns whether the
  // request was accepted.
  bool request_change(double delta, std::uint64_t now);

  // Advance to cycle `now`; applies a pending change when due. Returns the
  // (possibly updated) output voltage.
  double advance(std::uint64_t now);

 private:
  struct Pending {
    std::uint64_t apply_at;
    double target;
  };

  double voltage_;
  double vmin_;
  double vmax_;
  std::uint64_t delay_cycles_;
  std::optional<Pending> pending_;
};

}  // namespace razorbus::dvs

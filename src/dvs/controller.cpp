#include "dvs/controller.hpp"

#include <stdexcept>

namespace razorbus::dvs {

ThresholdController::ThresholdController(ControllerConfig config) : config_(config) {
  if (config_.window_cycles == 0)
    throw std::invalid_argument("ThresholdController: zero window");
  if (config_.low_threshold < 0 || config_.high_threshold < config_.low_threshold)
    throw std::invalid_argument("ThresholdController: bad thresholds");
  if (config_.voltage_step <= 0)
    throw std::invalid_argument("ThresholdController: non-positive step");
}

VoltageDecision ThresholdController::observe_cycle(bool error) {
  if (error) ++errors_in_window_;
  if (++cycle_in_window_ < config_.window_cycles) return VoltageDecision::hold;

  last_rate_ = static_cast<double>(errors_in_window_) /
               static_cast<double>(config_.window_cycles);
  cycle_in_window_ = 0;
  errors_in_window_ = 0;
  ++windows_;

  if (last_rate_ < config_.low_threshold) return VoltageDecision::step_down;
  if (last_rate_ > config_.high_threshold) return VoltageDecision::step_up;
  return VoltageDecision::hold;
}

void ThresholdController::reset() {
  cycle_in_window_ = 0;
  errors_in_window_ = 0;
  last_rate_ = 0.0;
  windows_ = 0;
}

}  // namespace razorbus::dvs

#include "dvs/controller.hpp"

#include <stdexcept>

namespace razorbus::dvs {

std::string to_string(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::threshold: return "threshold";
    case ControllerKind::proportional: return "proportional";
    case ControllerKind::fixed_vs: return "fixed_vs";
  }
  throw std::invalid_argument("to_string: unknown ControllerKind");
}

ControllerKind controller_kind_from_string(const std::string& name) {
  if (name == "threshold") return ControllerKind::threshold;
  if (name == "proportional") return ControllerKind::proportional;
  if (name == "fixed_vs") return ControllerKind::fixed_vs;
  throw std::invalid_argument("unknown controller '" + name +
                              "' (expected threshold, proportional or fixed_vs)");
}

ThresholdController::ThresholdController(ControllerConfig config) : config_(config) {
  if (config_.window_cycles == 0)
    throw std::invalid_argument("ThresholdController: zero window");
  if (config_.low_threshold < 0 || config_.high_threshold < config_.low_threshold)
    throw std::invalid_argument("ThresholdController: bad thresholds");
  if (config_.voltage_step <= 0)
    throw std::invalid_argument("ThresholdController: non-positive step");
}

VoltageDecision ThresholdController::observe_segment(std::uint64_t cycles,
                                                     std::uint64_t errors) {
  if (cycles == 0) return VoltageDecision::hold;
  if (cycles > cycles_remaining_in_window())
    throw std::invalid_argument("ThresholdController: segment crosses window boundary");
  if (errors > cycles)
    throw std::invalid_argument("ThresholdController: more errors than cycles");
  errors_in_window_ += errors;
  cycle_in_window_ += cycles;
  if (cycle_in_window_ < config_.window_cycles) return VoltageDecision::hold;

  last_rate_ = static_cast<double>(errors_in_window_) /
               static_cast<double>(config_.window_cycles);
  cycle_in_window_ = 0;
  errors_in_window_ = 0;
  ++windows_;

  if (last_rate_ < config_.low_threshold) return VoltageDecision::step_down;
  if (last_rate_ > config_.high_threshold) return VoltageDecision::step_up;
  return VoltageDecision::hold;
}

void ThresholdController::reset() {
  cycle_in_window_ = 0;
  errors_in_window_ = 0;
  last_rate_ = 0.0;
  windows_ = 0;
}

}  // namespace razorbus::dvs

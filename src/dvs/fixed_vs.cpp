#include "dvs/fixed_vs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace razorbus::dvs {

namespace {

// Shared search: lowest supply on the 20 mV grid whose worst-pattern delay
// (evaluated at the IR-drooped driver voltage) meets `delay_limit`.
double lowest_safe_supply(const interconnect::BusDesign& design,
                          const lut::DelayEnergyTable& table, tech::ProcessCorner process,
                          const ConservativeEnvironment& env, double delay_limit) {
  const int worst = lut::PatternClass::encode(lut::VictimActivity::rise,
                                              lut::NeighborActivity::fall,
                                              lut::NeighborActivity::fall);
  const double vnom = design.node.vdd_nominal;
  // Search the regulator's 20 mV grid anchored at the nominal supply.
  const double step = 0.020;
  double best = vnom;
  bool found = false;
  for (double v = vnom; v > table.grid().vmin() - 1e-9; v -= step) {
    const double v_eff = v * (1.0 - env.ir_drop_fraction);
    if (v_eff < table.grid().vmin() - 1e-9) break;
    const double d = table.delay(worst, process, env.temp_c, v_eff);
    if (std::isnan(d) || std::isinf(d) || d > delay_limit) break;
    best = v;
    found = true;
  }
  if (!found)
    throw std::runtime_error(
        "lowest_safe_supply: bus misses timing even at the nominal supply");
  return best;
}

}  // namespace

double fixed_vs_voltage(const interconnect::BusDesign& design,
                        const lut::DelayEnergyTable& table, tech::ProcessCorner process,
                        const ConservativeEnvironment& env) {
  return lowest_safe_supply(design, table, process, env, design.main_capture_limit());
}

double dvs_floor_voltage(const interconnect::BusDesign& design,
                         const lut::DelayEnergyTable& table, tech::ProcessCorner process,
                         const ConservativeEnvironment& env) {
  return lowest_safe_supply(design, table, process, env, design.shadow_capture_limit());
}

}  // namespace razorbus::dvs

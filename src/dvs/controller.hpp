// Error-rate-band threshold controller (paper Fig. 7).
//
// Counts bank errors over a fixed window (10,000 cycles). At each window
// boundary: error rate < low  -> request -20 mV; error rate > high ->
// request +20 mV; otherwise hold. The paper argues this simple scheme is
// preferable to a proportional controller because the error-rate-vs-voltage
// transfer function of the bus is strongly non-linear and program-
// dependent.
#pragma once

#include <cstdint>
#include <string>

namespace razorbus::dvs {

// The supply-control schemes a scenario spec can ask for (DESIGN.md §11):
// the paper's threshold controller, the proportional controller it rejects,
// and the fixed-VS (process-corner-aware static) baseline.
enum class ControllerKind { threshold, proportional, fixed_vs };

// Spec names: "threshold", "proportional", "fixed_vs". from_string throws
// std::invalid_argument on unknown names.
std::string to_string(ControllerKind kind);
ControllerKind controller_kind_from_string(const std::string& name);

struct ControllerConfig {
  std::uint64_t window_cycles = 10000;
  double low_threshold = 0.01;   // below: scale down
  double high_threshold = 0.02;  // above: scale up
  double voltage_step = 0.020;   // V per decision
};

// Decision produced at a window boundary.
enum class VoltageDecision { hold, step_down, step_up };

class ThresholdController {
 public:
  explicit ThresholdController(ControllerConfig config);

  const ControllerConfig& config() const { return config_; }

  // Feed one cycle's error flag. Returns a decision exactly at window
  // boundaries (hold otherwise mid-window).
  VoltageDecision observe_cycle(bool error) { return observe_segment(1, error ? 1 : 0); }

  // Batched feed for the window-granular simulation drivers: `cycles`
  // cycles containing `errors` error cycles. The segment must not cross a
  // window boundary (cycles <= cycles_remaining_in_window()); decisions are
  // then identical to feeding the cycles one at a time.
  VoltageDecision observe_segment(std::uint64_t cycles, std::uint64_t errors);

  // Cycles until the current window closes (never zero).
  std::uint64_t cycles_remaining_in_window() const {
    return config_.window_cycles - cycle_in_window_;
  }

  // Error rate of the last full window.
  double last_window_error_rate() const { return last_rate_; }
  std::uint64_t windows_completed() const { return windows_; }

  void reset();

 private:
  ControllerConfig config_;
  std::uint64_t cycle_in_window_ = 0;
  std::uint64_t errors_in_window_ = 0;
  double last_rate_ = 0.0;
  std::uint64_t windows_ = 0;
};

}  // namespace razorbus::dvs

#include "dvs/regulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace razorbus::dvs {

VoltageRegulator::VoltageRegulator(double initial, double vmin, double vmax,
                                   std::uint64_t delay_cycles)
    : voltage_(initial), vmin_(vmin), vmax_(vmax), delay_cycles_(delay_cycles) {
  if (vmin > vmax) throw std::invalid_argument("VoltageRegulator: vmin > vmax");
  voltage_ = std::clamp(voltage_, vmin_, vmax_);
}

bool VoltageRegulator::request_change(double delta, std::uint64_t now) {
  if (pending_) return false;
  const double target = std::clamp(voltage_ + delta, vmin_, vmax_);
  // Tolerant compare, matching BusSimulator::set_supply: a sub-epsilon
  // residual delta (e.g. a clamp at vmin that is itself a float sum) must
  // not enqueue a no-op ramp that blocks real requests for delay_cycles.
  if (std::fabs(target - voltage_) <= kSupplyToleranceVolts) return false;
  pending_ = Pending{now + delay_cycles_, target};
  return true;
}

double VoltageRegulator::advance(std::uint64_t now) {
  if (pending_ && now >= pending_->apply_at) {
    voltage_ = pending_->target;
    pending_.reset();
  }
  return voltage_;
}

}  // namespace razorbus::dvs

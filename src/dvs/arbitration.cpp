#include "dvs/arbitration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace razorbus::dvs {

std::string to_string(ArbitrationPolicy policy) {
  switch (policy) {
    case ArbitrationPolicy::max_error: return "max_error";
    case ArbitrationPolicy::sum_error: return "sum_error";
    case ArbitrationPolicy::weighted: return "weighted";
  }
  throw std::invalid_argument("unknown ArbitrationPolicy");
}

ArbitrationPolicy arbitration_policy_from_string(const std::string& name) {
  if (name == "max_error") return ArbitrationPolicy::max_error;
  if (name == "sum_error") return ArbitrationPolicy::sum_error;
  if (name == "weighted") return ArbitrationPolicy::weighted;
  throw std::invalid_argument("unknown arbitration policy '" + name +
                              "' (expected max_error, sum_error or weighted)");
}

std::uint64_t fuse_window_errors(ArbitrationPolicy policy,
                                 const std::vector<std::uint64_t>& errors,
                                 const std::vector<double>& weights) {
  if (errors.empty())
    throw std::invalid_argument("fuse_window_errors: no error counts");
  switch (policy) {
    case ArbitrationPolicy::max_error:
      return *std::max_element(errors.begin(), errors.end());
    case ArbitrationPolicy::sum_error: {
      std::uint64_t sum = 0;
      for (std::uint64_t e : errors) sum += e;
      return sum;
    }
    case ArbitrationPolicy::weighted: {
      if (weights.size() != errors.size())
        throw std::invalid_argument(
            "fuse_window_errors: one weight per bus required");
      double sum = 0.0;
      for (std::size_t i = 0; i < errors.size(); ++i) {
        if (!(weights[i] > 0.0))
          throw std::invalid_argument(
              "fuse_window_errors: weights must be > 0");
        sum += weights[i] * static_cast<double>(errors[i]);
      }
      // floor(x + 0.5): deterministic nearest-count rounding, no
      // libm rounding-mode dependence.
      return static_cast<std::uint64_t>(sum + 0.5);
    }
  }
  throw std::invalid_argument("unknown ArbitrationPolicy");
}

}  // namespace razorbus::dvs

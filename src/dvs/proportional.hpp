// Proportional error-rate controller (paper Section 5, discussed and
// rejected).
//
// The paper notes a proportional controller — voltage change proportional
// to the difference between target and sampled error rate — could react
// faster, but argues the bus's strongly non-linear, program-dependent
// error-vs-voltage transfer function makes its gain constant impossible to
// derive, and shows the simple threshold scheme suffices. We implement it
// so the claim can be tested (see bench/ablation_controller).
#pragma once

#include <cstdint>

#include "dvs/controller.hpp"

namespace razorbus::dvs {

struct ProportionalConfig {
  std::uint64_t window_cycles = 10000;
  double target_error_rate = 0.015;  // middle of the paper's [1%, 2%] band
  // Volts of requested change per unit of error-rate difference. With 2.0,
  // a one-percentage-point overshoot requests +20 mV. The paper's point is
  // precisely that no single value of this constant works well across
  // programs (the transfer function is non-linear and program-dependent).
  double gain = 2.0;
  // Requested steps are quantised to the regulator grid and clamped.
  double step_quantum = 0.020;
  double max_step = 0.060;
};

class ProportionalController {
 public:
  explicit ProportionalController(ProportionalConfig config);

  const ProportionalConfig& config() const { return config_; }

  // Feed one cycle's error flag. Returns the requested voltage delta at
  // window boundaries (0 mid-window or when the window is on target).
  // Positive = raise the supply.
  double observe_cycle(bool error) { return observe_segment(1, error ? 1 : 0); }

  // Batched feed (see ThresholdController::observe_segment): a segment of
  // `cycles` cycles with `errors` errors, not crossing a window boundary.
  double observe_segment(std::uint64_t cycles, std::uint64_t errors);

  // Cycles until the current window closes (never zero).
  std::uint64_t cycles_remaining_in_window() const {
    return config_.window_cycles - cycle_in_window_;
  }

  double last_window_error_rate() const { return last_rate_; }
  std::uint64_t windows_completed() const { return windows_; }

 private:
  ProportionalConfig config_;
  std::uint64_t cycle_in_window_ = 0;
  std::uint64_t errors_in_window_ = 0;
  double last_rate_ = 0.0;
  std::uint64_t windows_ = 0;
};

}  // namespace razorbus::dvs

#include "dvs/proportional.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace razorbus::dvs {

ProportionalController::ProportionalController(ProportionalConfig config)
    : config_(config) {
  if (config_.window_cycles == 0)
    throw std::invalid_argument("proportional: zero window");
  if (config_.target_error_rate < 0.0 || config_.target_error_rate > 1.0)
    throw std::invalid_argument("proportional: bad target");
  if (config_.gain <= 0.0 || config_.step_quantum <= 0.0 || config_.max_step <= 0.0)
    throw std::invalid_argument("proportional: non-positive gain/step");
}

double ProportionalController::observe_segment(std::uint64_t cycles,
                                               std::uint64_t errors) {
  if (cycles == 0) return 0.0;
  if (cycles > cycles_remaining_in_window())
    throw std::invalid_argument(
        "ProportionalController: segment crosses window boundary");
  if (errors > cycles)
    throw std::invalid_argument("ProportionalController: more errors than cycles");
  errors_in_window_ += errors;
  cycle_in_window_ += cycles;
  if (cycle_in_window_ < config_.window_cycles) return 0.0;

  last_rate_ = static_cast<double>(errors_in_window_) /
               static_cast<double>(config_.window_cycles);
  cycle_in_window_ = 0;
  errors_in_window_ = 0;
  ++windows_;

  // Error above target -> raise the voltage (positive delta).
  const double raw = config_.gain * (last_rate_ - config_.target_error_rate);
  const double clamped = std::clamp(raw, -config_.max_step, config_.max_step);
  // Quantise to whole regulator steps (toward zero: don't overreact).
  const double steps = std::trunc(clamped / config_.step_quantum);
  return steps * config_.step_quantum;
}

}  // namespace razorbus::dvs

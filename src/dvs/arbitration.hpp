// Cross-bus arbitration: fusing per-bus error counts into the one
// controller input of a shared-supply system (docs/campaigns.md
// `arbitration`, sys::BusSystem).
//
// When N buses share a regulator there is still exactly one threshold
// controller, so the N per-window error counts must be fused into a
// single count before the window decision. The policies trade how
// conservative the shared supply is: `max_error` lets the worst bus set
// the pace (no bus is starved below the band), `sum_error` treats the
// system as one wide bus (cheap buses subsidise expensive ones), and
// `weighted` interpolates with per-bus weights. Every policy reduces to
// the identity for N=1 (at the default unit weight) — the load-bearing
// parity invariant that keeps a one-bus sys::BusSystem bit-identical to
// the single-bus closed loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace razorbus::dvs {

// Spec names: "max_error", "sum_error", "weighted" (DESIGN.md §11).
enum class ArbitrationPolicy { max_error, sum_error, weighted };

// from_string throws std::invalid_argument on unknown names.
std::string to_string(ArbitrationPolicy policy);
ArbitrationPolicy arbitration_policy_from_string(const std::string& name);

// Fuse one controller window's per-bus error counts. `weights` is only
// read by `weighted` (rounded to the nearest integer count so the fused
// signal stays a count); it must then match `errors` in size and be > 0
// per entry. Throws std::invalid_argument on empty input or bad weights.
std::uint64_t fuse_window_errors(ArbitrationPolicy policy,
                                 const std::vector<std::uint64_t>& errors,
                                 const std::vector<double>& weights);

}  // namespace razorbus::dvs

#include "dvs/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace razorbus::dvs {

OracleSelector::OracleSelector(const interconnect::BusDesign& design,
                               const lut::DelayEnergyTable& table,
                               tech::PvtCorner environment)
    : design_(design), table_(table), environment_(environment), classifier_(design) {
  const auto& grid = table_.grid();
  const double limit = design_.main_capture_limit();
  class_critical_index_.assign(lut::PatternClass::kCount, 0);

  // For each class, find the lowest REGULATOR voltage (we reuse the table
  // grid for regulator settings) whose IR-drooped driver voltage still
  // meets the main capture limit.
  for (int cls = 0; cls < lut::PatternClass::kCount; ++cls) {
    if (!lut::PatternClass::victim_switches(cls)) {
      class_critical_index_[static_cast<std::size_t>(cls)] = 0;
      continue;
    }
    std::size_t critical = grid.size();  // pessimistic: fails everywhere
    for (std::size_t vi = 0; vi < grid.size(); ++vi) {
      const double v_eff = environment_.effective_supply(grid.voltage(vi));
      const double d =
          table_.delay(cls, environment_.process, environment_.temp_c, v_eff);
      if (!std::isnan(d) && !std::isinf(d) && d <= limit) {
        critical = vi;
        break;
      }
    }
    class_critical_index_[static_cast<std::size_t>(cls)] = critical;
  }
}

std::size_t OracleSelector::critical_grid_index(const BusWord& prev,
                                                const BusWord& cur) const {
  // Bit-parallel: the max over wires is the max over the classes present
  // in the transition's mask set (hold-victim classes carry a critical
  // index of 0, so visiting them never changes the max).
  std::size_t critical = 0;
  bus::for_each_present_class(
      classifier_.masks(prev, cur), [&](int cls, const BusWord&) {
        critical =
            std::max(critical, class_critical_index_[static_cast<std::size_t>(cls)]);
      });
  return critical;
}

OracleResult OracleSelector::select(const trace::Trace& trace,
                                    const OracleConfig& config) const {
  // One implementation serves both forms: the materialized trace is viewed
  // as a (non-owning) stream, whose per-word visit order is identical to
  // the historical vector loop.
  const auto view = trace::make_trace_view_source(trace);
  return select(*view, config);
}

OracleResult OracleSelector::select(trace::TraceSource& source,
                                    const OracleConfig& config,
                                    std::size_t block_cycles) const {
  if (config.window_cycles == 0) throw std::invalid_argument("oracle: zero window");
  if (block_cycles == 0)
    throw std::invalid_argument("oracle: block_cycles must be > 0");
  // Same guard as the core experiment drivers: a trace wider than the bus
  // would silently drop its high lanes in the classifier masks.
  if (source.n_bits() > design_.n_bits)
    throw std::invalid_argument("oracle: trace '" + source.name() +
                                "' is wider than the bus");
  const auto& grid = table_.grid();
  const std::size_t floor_index = config.vmin > 0.0 ? grid.index_of(config.vmin) : 0;

  OracleResult result;
  std::uint64_t total_errors = 0;
  std::uint64_t total_cycles = 0;

  std::vector<std::size_t> histogram(grid.size() + 1, 0);
  BusWord prev;
  std::size_t in_window = 0;
  std::fill(histogram.begin(), histogram.end(), 0);

  auto close_window = [&](std::size_t cycles_in_window) {
    if (cycles_in_window == 0) return;
    const auto budget = static_cast<std::uint64_t>(
        config.target_error_rate * static_cast<double>(cycles_in_window));
    // Count, from the top of the grid downward, how many cycles would err
    // at each voltage; stop at the lowest voltage within budget.
    std::uint64_t errors_above = 0;
    std::size_t chosen = grid.size() - 1;
    for (std::size_t vi = grid.size(); vi-- > 0;) {
      // Cycles whose critical index exceeds vi error at voltage vi.
      errors_above += histogram[vi + 1];
      if (vi < floor_index) break;
      if (errors_above <= budget)
        chosen = vi;
      else
        break;
    }
    // Errors actually incurred at the chosen voltage.
    std::uint64_t errors = 0;
    for (std::size_t ci = chosen + 1; ci <= grid.size(); ++ci) errors += histogram[ci];
    total_errors += errors;
    total_cycles += cycles_in_window;

    const double v = grid.voltage(chosen);
    result.window_voltages.push_back(v);
    result.time_at_voltage.add(v, static_cast<double>(cycles_in_window));
    std::fill(histogram.begin(), histogram.end(), 0);
  };

  std::vector<BusWord> block(block_cycles);
  for (;;) {
    const std::size_t n = source.next_block(block.data(), block.size());
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      const BusWord& cur = block[i];
      ++histogram[critical_grid_index(prev, cur)];
      prev = cur;
      if (++in_window == config.window_cycles) {
        close_window(in_window);
        in_window = 0;
      }
    }
  }
  close_window(in_window);

  result.achieved_error_rate =
      total_cycles ? static_cast<double>(total_errors) / static_cast<double>(total_cycles)
                   : 0.0;
  return result;
}

}  // namespace razorbus::dvs

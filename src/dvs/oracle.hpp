// Oracle (future-knowledge) optimal voltage selection — paper Fig. 6.
//
// To expose how much of the opportunity a real controller captures, the
// paper first selects, per execution window, the lowest supply voltage that
// keeps that window's error rate at or below a target — using knowledge of
// the future switching activity. We implement this exactly: per cycle the
// bus has a "critical supply" (the lowest grid voltage at which no wire
// misses the main flop); a window's optimal voltage is the lowest grid
// point at which the number of cycles whose critical supply lies above it
// stays within the target error budget.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/classify.hpp"
#include "interconnect/bus_design.hpp"
#include "lut/table.hpp"
#include "tech/corner.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace razorbus::dvs {

struct OracleConfig {
  std::uint64_t window_cycles = 10000;
  double target_error_rate = 0.02;
  // Regulator floor (shadow-latch safety); voltages below are never chosen.
  double vmin = 0.0;
};

struct OracleResult {
  // Chosen supply per window, in execution order.
  std::vector<double> window_voltages;
  // Fraction of execution time spent at each chosen grid voltage (Fig. 6).
  DiscreteHistogram time_at_voltage;
  // Overall error rate actually incurred at the chosen voltages.
  double achieved_error_rate = 0.0;
};

class OracleSelector {
 public:
  OracleSelector(const interconnect::BusDesign& design,
                 const lut::DelayEnergyTable& table, tech::PvtCorner environment);

  // Per-cycle critical grid index: the smallest grid voltage index at which
  // this prev->cur transition produces no timing error. Index grid.size()
  // means "errors even at the top grid voltage".
  std::size_t critical_grid_index(const BusWord& prev, const BusWord& cur) const;

  OracleResult select(const trace::Trace& trace, const OracleConfig& config) const;

  // Streamed form (DESIGN.md §12): identical window accounting over a
  // block-buffered stream — per-window histograms are the only state, so
  // the oracle windows arbitrarily long captures in O(block) memory. The
  // result matches select() on the same word sequence exactly. The source
  // is consumed (not cloned); per-window voltages still accumulate
  // O(windows) entries.
  OracleResult select(trace::TraceSource& source, const OracleConfig& config,
                      std::size_t block_cycles = trace::kDefaultBlockCycles) const;

  // Lowest passing grid voltage per pattern class (exposed for tests).
  const std::vector<std::size_t>& class_critical_index() const {
    return class_critical_index_;
  }

 private:
  const interconnect::BusDesign& design_;
  const lut::DelayEnergyTable& table_;
  tech::PvtCorner environment_;
  bus::WireClassifier classifier_;
  std::vector<std::size_t> class_critical_index_;  // per pattern class
};

}  // namespace razorbus::dvs

// Voltage floors and the fixed voltage scaling (VS) baseline.
//
// Fixed VS (paper Table 1) stands in for conventional self-tuning schemes
// (correlating VCO, delay-line speed detectors, triple-latch monitors):
// they can measure the global process corner but must remain conservative
// about everything else, because a timing error is fatal for them. Their
// supply is therefore the lowest voltage at which the WORST-CASE pattern
// still meets the main flop's setup at the worst environment (100C, 10%
// IR drop) for the measured process corner.
//
// The proposed DVS scheme only needs the shadow latch to be safe under the
// same conservative assumptions — a much lower floor, with the gap between
// the two floors recovered through error correction.
#pragma once

#include "interconnect/bus_design.hpp"
#include "lut/table.hpp"
#include "tech/corner.hpp"

namespace razorbus::dvs {

// Environment assumed when only the process corner is known.
struct ConservativeEnvironment {
  double temp_c = 100.0;
  double ir_drop_fraction = 0.10;
};

// Lowest grid supply at which the worst-case switching pattern meets the
// MAIN flip-flop capture limit under the conservative environment: the
// fixed-VS baseline operating point. Never exceeds the nominal supply.
double fixed_vs_voltage(const interconnect::BusDesign& design,
                        const lut::DelayEnergyTable& table, tech::ProcessCorner process,
                        const ConservativeEnvironment& env = {});

// Lowest grid supply at which the worst-case pattern still meets the
// SHADOW latch capture limit under the conservative environment: the
// regulator floor of the proposed DVS scheme ("the only tuning factor is
// the process corner; otherwise worst-case temperature and IR drop are
// assumed").
double dvs_floor_voltage(const interconnect::BusDesign& design,
                         const lut::DelayEnergyTable& table, tech::ProcessCorner process,
                         const ConservativeEnvironment& env = {});

}  // namespace razorbus::dvs

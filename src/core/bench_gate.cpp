#include "core/bench_gate.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace razorbus::core {

namespace {

bool has_suffix(const std::string& key, const std::string& suffix) {
  return key.size() > suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_throughput_key(const std::string& key) { return has_suffix(key, "_cps"); }

// Cost convention: transient-run counts of the characterization build
// ("lut_build_sims" and friends). Lower is better, so the regression
// predicate is inverted relative to throughput keys.
bool is_cost_key(const std::string& key) { return has_suffix(key, "_sims"); }

// Flattens every numeric gated leaf ("_cps" or "_sims") of a report into
// path -> value. std::map keeps the comparison output in a stable,
// runner-independent order.
void collect_gated(const Json& json, const std::string& prefix,
                   std::map<std::string, double>& out) {
  if (!json.is_object()) return;
  for (const auto& [key, value] : json.members()) {
    const std::string path = prefix.empty() ? key : prefix + "/" + key;
    if (value.is_object())
      collect_gated(value, path, out);
    else if (value.is_number() && (is_throughput_key(key) || is_cost_key(key)))
      out[path] = value.as_double();
  }
}

// Shared comparison core: gates a flattened current-metric map against a
// flattened baseline map (however the baseline was derived — one report or
// a history median).
BenchGateResult compare_gated_maps(const std::map<std::string, double>& base_metrics,
                                   const std::map<std::string, double>& cur_metrics,
                                   double threshold);

}  // namespace

BenchGateResult compare_bench_reports(const Json& baseline, const Json& current,
                                      double threshold) {
  std::map<std::string, double> base_metrics, cur_metrics;
  collect_gated(baseline, "", base_metrics);
  collect_gated(current, "", cur_metrics);
  return compare_gated_maps(base_metrics, cur_metrics, threshold);
}

BenchGateResult compare_bench_history(const std::vector<Json>& history,
                                      const Json& current, double threshold) {
  // Per-metric value series across the window; a metric missing from some
  // entries (scenario added mid-window) is judged on the entries it has.
  std::map<std::string, std::vector<double>> series;
  for (const Json& entry : history) {
    std::map<std::string, double> metrics;
    collect_gated(entry, "", metrics);
    for (const auto& [path, value] : metrics) series[path].push_back(value);
  }
  std::map<std::string, double> base_metrics;
  for (auto& [path, values] : series) {
    std::sort(values.begin(), values.end());
    base_metrics[path] = values[(values.size() - 1) / 2];  // lower median
  }
  std::map<std::string, double> cur_metrics;
  collect_gated(current, "", cur_metrics);
  return compare_gated_maps(base_metrics, cur_metrics, threshold);
}

namespace {

BenchGateResult compare_gated_maps(const std::map<std::string, double>& base_metrics,
                                   const std::map<std::string, double>& cur_metrics,
                                   double threshold) {
  BenchGateResult result;
  result.threshold = threshold;
  for (const auto& [path, base_value] : base_metrics) {
    const auto cur = cur_metrics.find(path);
    if (cur == cur_metrics.end()) {
      result.missing.push_back(path);
      continue;
    }
    // The leaf key decides the convention; the path segments above it are
    // scenario names.
    const std::size_t slash = path.rfind('/');
    const std::string leaf = slash == std::string::npos ? path : path.substr(slash + 1);
    BenchGateFinding finding;
    finding.path = path;
    finding.baseline = base_value;
    finding.current = cur->second;
    finding.ratio = base_value > 0.0 ? cur->second / base_value : 1.0;
    finding.cost = is_cost_key(leaf);
    if (finding.cost) {
      // A zero baseline means a fully warm run (lut_warm_sims): any sim at
      // all is a regression, not a ratio question.
      finding.regression = base_value > 0.0
                               ? cur->second > base_value * (1.0 + threshold)
                               : cur->second > 0.0;
    } else {
      finding.regression =
          base_value > 0.0 && cur->second < base_value * (1.0 - threshold);
    }
    result.compared.push_back(std::move(finding));
  }
  for (const auto& [path, value] : cur_metrics) {
    (void)value;
    if (base_metrics.find(path) == base_metrics.end()) result.added.push_back(path);
  }
  return result;
}

}  // namespace

}  // namespace razorbus::core

#include "core/bench_gate.hpp"

#include <map>

namespace razorbus::core {

namespace {

bool is_throughput_key(const std::string& key) {
  static const std::string suffix = "_cps";
  return key.size() > suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Flattens every numeric "_cps" leaf of a report into path -> value.
// std::map keeps the comparison output in a stable, runner-independent
// order.
void collect_throughput(const Json& json, const std::string& prefix,
                        std::map<std::string, double>& out) {
  if (!json.is_object()) return;
  for (const auto& [key, value] : json.members()) {
    const std::string path = prefix.empty() ? key : prefix + "/" + key;
    if (value.is_object())
      collect_throughput(value, path, out);
    else if (value.is_number() && is_throughput_key(key))
      out[path] = value.as_double();
  }
}

}  // namespace

BenchGateResult compare_bench_reports(const Json& baseline, const Json& current,
                                      double threshold) {
  std::map<std::string, double> base_metrics, cur_metrics;
  collect_throughput(baseline, "", base_metrics);
  collect_throughput(current, "", cur_metrics);

  BenchGateResult result;
  result.threshold = threshold;
  for (const auto& [path, base_value] : base_metrics) {
    const auto cur = cur_metrics.find(path);
    if (cur == cur_metrics.end()) {
      result.missing.push_back(path);
      continue;
    }
    BenchGateFinding finding;
    finding.path = path;
    finding.baseline = base_value;
    finding.current = cur->second;
    finding.ratio = base_value > 0.0 ? cur->second / base_value : 1.0;
    finding.regression = base_value > 0.0 && cur->second < base_value * (1.0 - threshold);
    result.compared.push_back(std::move(finding));
  }
  for (const auto& [path, value] : cur_metrics) {
    (void)value;
    if (base_metrics.find(path) == base_metrics.end()) result.added.push_back(path);
  }
  return result;
}

}  // namespace razorbus::core
